#!/bin/sh
# CI gate: formatting, vet, race tests on the serving-path packages, and
# the shape linter over the example schemas — clean ones must be silent,
# the examples/lint/ corpus must be flagged. Run from anywhere; the script
# cd's to the repository root. `make check` is the local entry point.
set -eu

cd "$(dirname "$0")/.."
GO=${GO:-go}

echo "== gofmt"
unformatted=$(gofmt -l . 2>/dev/null || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
$GO vet ./...

echo "== go build"
$GO build ./...

echo "== go test -race (serving path)"
$GO test -race ./internal/core ./internal/rdfgraph ./internal/fragserver ./internal/live ./internal/shapelint

echo "== update/subscription storm (-race, -short)"
# The carry-race pin (stale cache entries resurrected by racing updates)
# and the concurrent apply/notify/fanout storms, re-run on their own so a
# flake here names the tier that guards the write path.
$GO test -race -short -count=1 \
    -run 'TestUpdateCarryStormParity|TestUpdateRejectionPathsCounted|TestSubscribe|TestStormParity|TestSlowSubscriberEviction' \
    ./internal/fragserver ./internal/live

echo "== go test -race (store tier, -short)"
# -short downsizes the loader scale test; the full 1M load runs race-free
# in the everything-else pass below.
$GO test -race -short ./internal/store

echo "== go test (everything else)"
$GO test ./...

echo "== sharded byte-parity and scale smoke"
# Frag(G, H) through every backend, shard count and scheduling path must
# stay byte-identical to serial single-graph extraction, and a streamed
# 1M-triple load must come up serving.
$GO test -count=1 -run 'TestShardedFragmentParity|TestShardedParityAfterUpdate|TestShardedServerParity|TestLoaderScale' \
    ./internal/store ./internal/fragserver

echo "== shaclfrag lint"
bin=$(mktemp -d)/shaclfrag
trap 'rm -rf "$(dirname "$bin")"' EXIT
$GO build -o "$bin" ./cmd/shaclfrag

# Clean example schemas must produce zero findings.
for f in examples/shapes/*.ttl; do
    out=$("$bin" lint "$f")
    if echo "$out" | grep -q 'SL0'; then
        echo "clean schema $f has findings:" >&2
        echo "$out" >&2
        exit 1
    fi
done

# Every file in the broken corpus must be flagged with an SL-code.
for f in examples/lint/*.ttl; do
    out=$("$bin" lint "$f" || true)
    if ! echo "$out" | grep -q 'SL0'; then
        echo "broken schema $f was not flagged:" >&2
        echo "$out" >&2
        exit 1
    fi
done

echo "== containment soundness property gate"
# A Contained verdict must never be refuted by randomized model search —
# over the example schemas, random shape pairs, and the benchmark schema.
$GO test -count=1 -run TestContainmentSoundness ./internal/contain

echo "== shaclfrag schema-diff goldens"
# The diff of the committed example versions covers every change kind;
# its breaking changes must keep forcing exit 1, and both renderings must
# match the goldens byte-for-byte (witness search is seeded, so the
# output is reproducible).
if out=$("$bin" schema-diff examples/diff/old.ttl examples/diff/new.ttl); then
    echo "schema-diff exited 0 despite breaking changes" >&2
    exit 1
fi
echo "$out" | diff -u examples/diff/report.golden -
if out=$("$bin" schema-diff -json examples/diff/old.ttl examples/diff/new.ttl); then
    echo "schema-diff -json exited 0 despite breaking changes" >&2
    exit 1
fi
echo "$out" | diff -u examples/diff/report.json.golden -

echo "== shaclfrag explain goldens"
# The tourism walkthrough quoted in the README must keep matching the
# committed goldens byte-for-byte (rendering and blank-node labels alike).
explain() {
    "$bin" explain -data examples/data/tourism.ttl \
        -shapes examples/shapes/tourism.ttl "$@"
}
explain -node http://tourism.example/alpenhof -shape HotelShape \
    | diff -u examples/explain/alpenhof-hotel.golden -
explain -node http://tourism.example/grandhotel -shape HotelShape \
    | diff -u examples/explain/grandhotel-hotel.golden -
explain -node http://tourism.example/seehof -json \
    | diff -u examples/explain/seehof.json.golden -

echo "== docs lint"
# Intra-repo markdown links must resolve and documented -flags must be
# defined by some command (same engine as `make docs-check`).
$GO run ./cmd/doclint

echo "== benchjson smoke"
$GO run ./cmd/benchjson -smoke -bench 'Fig|Tab|Containment|Traced|Live'

echo "== nil-tracer alloc parity"
# Span tracing must cost nothing when disabled: the untraced variant of
# BenchmarkTracedExtraction runs the exact BenchmarkFragmentParallel
# workers=4 workload through the span-threaded code, so its allocs/op
# must match the baseline. The 3% tolerance absorbs run-to-run noise in
# the extractor's own map growth under work stealing (observed spread is
# under 2% on an identical binary); the tracing plumbing itself would add
# several allocations per extracted node if the nil-checks regressed —
# far beyond it.
status=0
parity=$($GO test -run '^$' -bench 'BenchmarkFragmentParallel/workers=4$|BenchmarkTracedExtraction/trace=off' \
    -benchtime 2x -benchmem . | awk '
    $1 ~ /^BenchmarkFragmentParallel\/workers=4(-[0-9]+)?$/ { base = $(NF-1) }
    $1 ~ /^BenchmarkTracedExtraction\/trace=off(-[0-9]+)?$/ { off = $(NF-1) }
    END {
        if (base == "" || off == "") { print "missing benchmark output"; exit 1 }
        delta = off - base; if (delta < 0) delta = -delta
        printf "baseline=%d nil-tracer=%d delta=%d\n", base, off, delta
        if (delta > base * 0.03) exit 1
    }') || status=$?
echo "$parity"
if [ "$status" -ne 0 ]; then
    echo "nil-tracer hot path allocates differently from the untraced baseline" >&2
    exit 1
fi

echo "== benchmark trajectory present"
# The perf trajectory lives in repo-root BENCH_<n>.json snapshots
# (written by `make bench-json`); an empty trajectory means regressions
# have no baseline to diff against.
if ! ls BENCH_*.json >/dev/null 2>&1; then
    echo "no repo-root BENCH_*.json snapshot; run 'make bench-json'" >&2
    exit 1
fi

echo "== turtle round-trip fuzz (5s smoke)"
$GO test -run '^$' -fuzz FuzzParseSerialize -fuzztime 5s ./internal/turtle

echo "check: OK"
