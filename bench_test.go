// Benchmarks regenerating the paper's evaluation artifacts in testing.B
// form. Each figure/table of the evaluation section has a corresponding
// bench; `cmd/paperbench` prints the same series as human-readable tables.
//
//	Figure 1  → BenchmarkFig1Validation / BenchmarkFig1Extraction
//	Figure 2  → BenchmarkFig2SPARQLProvenance
//	Figure 3  → BenchmarkFig3HubDistance3
//	§4.1      → BenchmarkTabQueriesFragments
//	Prop 6.2  → BenchmarkTabTPF
//
// The Ablation benches quantify the design choices DESIGN.md calls out:
// direct extraction vs. SPARQL translation, and NFA product tracing on
// atomic vs. star paths.
package shaclfrag_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	shaclfrag "shaclfrag"
	"shaclfrag/internal/contain"
	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/live"
	"shaclfrag/internal/obs"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/sparql"
	"shaclfrag/internal/sparqltrans"
	"shaclfrag/internal/store"
	"shaclfrag/internal/tpf"
	"shaclfrag/internal/validator"
)

// benchSizes are the individuals counts for the Figure 1/2 size sweeps,
// scaled to keep `go test -bench=.` in the minutes range.
var benchSizes = []int{500, 1000, 2000}

func tyrolGraph(individuals int) *rdfgraph.Graph {
	return datagen.Tyrol(datagen.TyrolConfig{Individuals: individuals, Seed: 42})
}

// BenchmarkFig1Validation is the Figure 1 baseline: validation alone, over
// the whole 57-shape suite.
func BenchmarkFig1Validation(b *testing.B) {
	defs := datagen.BenchmarkShapes()
	for _, size := range benchSizes {
		g := tyrolGraph(size)
		b.Run(fmt.Sprintf("triples=%d", g.Len()), func(b *testing.B) {
			h := schema.MustNew(defs...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				validator.Validate(g, h, validator.Options{})
			}
		})
	}
}

// BenchmarkFig1Extraction is Figure 1's instrumented run: validation plus
// neighborhood extraction for every conforming focus node. The overhead is
// the gap to BenchmarkFig1Validation.
func BenchmarkFig1Extraction(b *testing.B) {
	defs := datagen.BenchmarkShapes()
	for _, size := range benchSizes {
		g := tyrolGraph(size)
		b.Run(fmt.Sprintf("triples=%d", g.Len()), func(b *testing.B) {
			h := schema.MustNew(defs...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				validator.Validate(g, h, validator.Options{CollectProvenance: true})
			}
		})
	}
}

// BenchmarkFig2SPARQLProvenance computes shape fragments through the SPARQL
// translation (Proposition 5.3 / Corollary 5.5) for a cross-section of the
// benchmark shapes, as in Figure 2.
func BenchmarkFig2SPARQLProvenance(b *testing.B) {
	defs := datagen.BenchmarkShapes()
	indices := []int{0, 7, 30, 46}
	for _, size := range benchSizes[:2] {
		g := tyrolGraph(size)
		for _, i := range indices {
			d := defs[i]
			request := shape.AndOf(d.Shape, d.Target)
			b.Run(fmt.Sprintf("shape=S%02d/triples=%d", i+1, g.Len()), func(b *testing.B) {
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					tr := sparqltrans.New(nil)
					op := tr.FragmentQuery([]shape.Shape{request}, "s", "p", "o")
					sparql.Select(op, g, "s", "p", "o")
				}
			})
		}
	}
}

// BenchmarkFig3HubDistance3 runs the Figure 3 analytic query over growing
// coauthorship slices, with all three computation strategies: the AST
// walker, the SPARQL translation, and the compiled instruction plan.
func BenchmarkFig3HubDistance3(b *testing.B) {
	corpus := datagen.NewCoauthor(datagen.CoauthorConfig{Papers: 1200, Seed: 42})
	request := datagen.HubDistance3Shape()
	for _, since := range []int{2020, 2017, 2014} {
		g := corpus.Graph(since)
		b.Run(fmt.Sprintf("direct/since=%d/triples=%d", since, g.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.NewExtractor(g, nil).Fragment([]shape.Shape{request})
			}
		})
		b.Run(fmt.Sprintf("sparql/since=%d/triples=%d", since, g.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := sparqltrans.New(nil)
				op := tr.FragmentQuery([]shape.Shape{request}, "s", "p", "o")
				sparql.Select(op, g, "s", "p", "o")
			}
		})
		b.Run(fmt.Sprintf("plan/since=%d/triples=%d", since, g.Len()), func(b *testing.B) {
			prog := plan.Compile(request, nil) // once per schema in production
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bd := prog.Bind(g)
				out := rdfgraph.NewIDTripleSet()
				for _, v := range g.NodeIDs() {
					bd.CollectInto(v, out)
				}
				out.Triples(g.Dict())
			}
		})
	}
}

// BenchmarkPlanExtraction isolates the compiled-plan extractor on the
// whole benchmark schema: bind+extract is the cold path a fresh epoch
// pays, steady-state re-extracts with dense memo and visited rows already
// allocated — the approaches-zero-allocs regime the plan design targets.
func BenchmarkPlanExtraction(b *testing.B) {
	g := tyrolGraph(1000)
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	store.WarmDictionary(g, h)
	g.Freeze()
	requests := core.SchemaRequests(h)
	plans := plan.CompileAll(requests, h)
	nodes := g.NodeIDs()

	b.Run("bind+extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := rdfgraph.NewIDTripleSet()
			for _, p := range plans.Programs {
				bd := p.Bind(g)
				for _, v := range nodes {
					bd.CollectInto(v, out)
				}
			}
			out.Triples(g.Dict())
		}
	})
	b.Run("steady-state", func(b *testing.B) {
		bounds := make([]*plan.Bound, len(plans.Programs))
		out := rdfgraph.NewIDTripleSet()
		for i, p := range plans.Programs {
			bounds[i] = p.Bind(g)
			for _, v := range nodes {
				bounds[i].CollectInto(v, out) // warm rows and accumulator
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, bd := range bounds {
				bd.ResetVisited()
				for _, v := range nodes {
					bd.CollectInto(v, out)
				}
			}
		}
	})
}

// BenchmarkTabQueriesFragments evaluates every expressible benchmark query
// of the §4.1 study as a shape fragment.
func BenchmarkTabQueriesFragments(b *testing.B) {
	g := tyrolGraph(500)
	queries := datagen.BenchmarkQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := core.NewExtractor(g, nil)
		for _, q := range queries {
			if q.Expressible {
				x.Fragment([]shape.Shape{q.Request})
			}
		}
	}
}

// BenchmarkTabTPF compares a raw triple-pattern scan against the equivalent
// shape fragment (Proposition 6.2).
func BenchmarkTabTPF(b *testing.B) {
	g := tyrolGraph(1000)
	pattern := tpf.Pattern{
		S: tpf.V("x"),
		P: tpf.C(shaclfrag.IRI(datagen.PropName)),
		O: tpf.V("y"),
	}
	phi, ok := pattern.RequestShape()
	if !ok {
		b.Fatal("pattern must be expressible")
	}
	b.Run("tpf-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pattern.Eval(g)
		}
	})
	b.Run("shape-fragment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NewExtractor(g, nil).Fragment([]shape.Shape{phi})
		}
	})
}

// BenchmarkAblationStrategies compares the neighborhood computation
// strategies head-to-head on one shape: the two of Section 5 plus the
// compiled instruction plan the strategy planner routes to.
func BenchmarkAblationStrategies(b *testing.B) {
	g := tyrolGraph(1000)
	defs := datagen.BenchmarkShapes()
	request := shape.AndOf(defs[0].Shape, defs[0].Target)
	b.Run("direct-extractor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NewExtractor(g, nil).Fragment([]shape.Shape{request})
		}
	})
	b.Run("sparql-translation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := sparqltrans.New(nil)
			op := tr.FragmentQuery([]shape.Shape{request}, "s", "p", "o")
			sparql.Select(op, g, "s", "p", "o")
		}
	})
	b.Run("compiled-plan", func(b *testing.B) {
		prog := plan.Compile(request, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bd := prog.Bind(g)
			out := rdfgraph.NewIDTripleSet()
			for _, v := range g.NodeIDs() {
				bd.CollectInto(v, out)
			}
			out.Triples(g.Dict())
		}
	})
}

// BenchmarkAblationPathTracing isolates graph(paths(E,G,a,b)) computation:
// the atomic fast path versus the product-automaton search on star paths.
func BenchmarkAblationPathTracing(b *testing.B) {
	g := tyrolGraph(1000)
	sources := g.NodeIDs()
	if len(sources) > 200 {
		sources = sources[:200]
	}
	run := func(b *testing.B, e paths.Expr) {
		for i := 0; i < b.N; i++ {
			ev := paths.NewEvaluator(e, g)
			for _, s := range sources {
				targets := ev.Eval(s)
				ev.TraceUnionIDs(s, targets)
			}
		}
	}
	b.Run("atomic", func(b *testing.B) {
		run(b, paths.P(datagen.PropKnows))
	})
	b.Run("star", func(b *testing.B) {
		run(b, paths.Star{X: paths.P(datagen.PropKnows)})
	})
	b.Run("sequence-star", func(b *testing.B) {
		run(b, paths.SeqOf(paths.P(datagen.PropInDistrict),
			paths.Star{X: paths.P(datagen.PropInDistrict)}))
	})
}

// BenchmarkFragmentParallel compares serial Fragment against
// FragmentParallel at increasing worker counts, over the whole benchmark
// schema. The serial baseline uses the same extractor entry point the
// fragserver subsystem did before parallelization; speedups materialize on
// multi-core hosts (workers beyond GOMAXPROCS only add coordination cost).
func BenchmarkFragmentParallel(b *testing.B) {
	g := tyrolGraph(1000)
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	requests := core.SchemaRequests(h)
	g.Freeze() // serving configuration: immutable graph shared by workers

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NewExtractor(g, h).Fragment(requests)
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewExtractor(g, h).FragmentParallel(requests,
					core.ParallelOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("workers=4/cached", func(b *testing.B) {
		cache := core.NewNeighborhoodCache(1 << 22)
		opts := core.ParallelOptions{Workers: 4, Cache: cache}
		if _, err := core.NewExtractor(g, h).FragmentParallel(requests, opts); err != nil {
			b.Fatal(err) // warm the cache before timing
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewExtractor(g, h).FragmentParallel(requests, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracedExtraction prices hierarchical span tracing against the
// untraced hot path on the identical workload: off passes a nil span (the
// production default — every span call must compile to a nil-check), on
// roots a fresh SpanTrace per op, so the delta is the full cost of growing
// and timing the request's span tree. check.sh separately gates that the
// off variant's allocs/op match BenchmarkFragmentParallel's — the tracing
// plumbing must cost nothing when disabled.
func BenchmarkTracedExtraction(b *testing.B) {
	g := tyrolGraph(1000)
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	requests := core.SchemaRequests(h)
	g.Freeze()

	b.Run("trace=off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewExtractor(g, h).FragmentParallel(requests,
				core.ParallelOptions{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trace=on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trace := obs.NewSpanTrace("bench", obs.SpanContext{})
			if _, err := core.NewExtractor(g, h).FragmentParallel(requests,
				core.ParallelOptions{Workers: 4, Span: trace.Root()}); err != nil {
				b.Fatal(err)
			}
			trace.Root().End()
		}
	})
}

// BenchmarkWhyNot measures why-not provenance extraction across a whole
// violation report (Remark 3.7).
func BenchmarkWhyNot(b *testing.B) {
	g := tyrolGraph(500)
	defs := datagen.BenchmarkShapes()
	h := schema.MustNew(defs...)
	report := h.Validate(g)
	violations := report.Violations()
	if len(violations) == 0 {
		b.Fatal("expected violations")
	}
	byName := map[string]schema.Definition{}
	for _, d := range defs {
		byName[d.Name.Value] = d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := core.NewExtractor(g, h)
		for _, v := range violations {
			d := byName[v.ShapeName.Value]
			x.WhyNot(v.Focus, shape.AndOf(d.Shape, d.Target))
		}
	}
}

// BenchmarkFragmentSharded sweeps the store tier's shard counts: the same
// whole-schema extraction as BenchmarkFragmentParallel, but reading
// through the sharded backend so FragmentParallel switches to
// scatter-gather scheduling. The single backend is the baseline; the
// sweep's value on a one-core runner is the scheduling overhead (shard
// partitioning cannot buy parallel speedup without cores), on a multicore
// one the scaling curve.
func BenchmarkFragmentSharded(b *testing.B) {
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	requests := core.SchemaRequests(h)
	build := func(cfg store.Config) store.Store {
		g := tyrolGraph(1000)
		store.WarmDictionary(g, h)
		st, err := store.New(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	run := func(b *testing.B, st store.Store) {
		r := st.Current().Reader()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewExtractor(r, h).FragmentParallel(requests,
				core.ParallelOptions{Workers: 2}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("backend=single", func(b *testing.B) { run(b, build(store.Config{})) })
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			run(b, build(store.Config{Backend: store.BackendSharded, Shards: shards}))
		})
	}
}

// BenchmarkSharded10M is the scale acceptance run behind the committed
// trajectory snapshots: a 10M-triple synthetic graph streamed into the
// sharded backend (load sub-benchmark, reporting triples/s) and served
// from it (extract sub-benchmarks at 1, 4 and 16 shards, one-shape
// whole-graph extraction per op — the full 57-shape suite at 10M triples
// is hours per op and adds nothing to the backend comparison). Gated
// behind SHACLFRAG_SCALE_10M=1: a full run needs ~15 GiB of heap and tens
// of minutes. `make bench-sharded-10m` runs it and snapshots the result.
func BenchmarkSharded10M(b *testing.B) {
	if os.Getenv("SHACLFRAG_SCALE_10M") != "1" {
		b.Skip("set SHACLFRAG_SCALE_10M=1 to run the 10M-triple scale benchmarks")
	}
	const target = 10_000_000
	individuals := datagen.IndividualsForTriples(target)
	h := schema.MustNew(datagen.BenchmarkShapes()[:1]...)
	requests := core.SchemaRequests(h)

	b.Run("load/shards=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loader, err := store.NewLoader(store.Config{Backend: store.BackendSharded, Shards: 4})
			if err != nil {
				b.Fatal(err)
			}
			datagen.TyrolStream(datagen.TyrolConfig{Individuals: individuals, Seed: 1},
				func(t rdf.Triple) { loader.Add(t) })
			if loader.Len() < target*97/100 {
				b.Fatalf("loaded only %d triples", loader.Len())
			}
			b.ReportMetric(float64(loader.Len())*float64(b.N)/b.Elapsed().Seconds(), "triples/s")
		}
	})

	// One shared base graph; each shard count repartitions it against the
	// same dictionary, so the extract series differ only in the backend.
	base := rdfgraph.New()
	datagen.TyrolStream(datagen.TyrolConfig{Individuals: individuals, Seed: 1},
		func(t rdf.Triple) { base.Add(t) })
	store.WarmDictionary(base, h)
	for _, shards := range []int{1, 4, 16} {
		st, err := store.New(base, store.Config{Backend: store.BackendSharded, Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("extract/shards=%d", shards), func(b *testing.B) {
			r := st.Current().Reader()
			var triples int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				frag, err := core.NewExtractor(r, h).FragmentParallel(requests,
					core.ParallelOptions{Workers: 2})
				if err != nil {
					b.Fatal(err)
				}
				triples = len(frag)
			}
			b.ReportMetric(float64(r.Len())*float64(b.N)/b.Elapsed().Seconds(), "triples/s")
			b.ReportMetric(float64(triples), "frag-triples")
		})
	}
}

// BenchmarkContainment measures the static containment analysis that
// backs cache sharing, schema diffing and the subsumption lints: building
// a checker and answering every pairwise Contains question over a schema,
// plus the per-epoch equivalence-class computation fragserver runs
// alongside the planner.
func BenchmarkContainment(b *testing.B) {
	schemas := []struct {
		name string
		defs []schema.Definition
	}{
		{"benchmark57", datagen.BenchmarkShapes()},
	}
	for _, path := range []string{"examples/shapes/tourism.ttl", "examples/shapes/workshop.ttl"} {
		src, err := os.ReadFile(path)
		if err != nil {
			b.Fatal(err)
		}
		h, err := shaclsyn.ParseSchema(string(src))
		if err != nil {
			b.Fatal(err)
		}
		schemas = append(schemas, struct {
			name string
			defs []schema.Definition
		}{name: pathBase(path), defs: h.Definitions()})
	}

	for _, sc := range schemas {
		h := schema.MustNew(sc.defs...)
		defs := h.Definitions()
		b.Run("pairs/"+sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := contain.New(h, h)
				n := 0
				for x := range defs {
					for y := range defs {
						if x != y && c.Contains(defs[x].Shape, defs[y].Shape) == contain.Contained {
							n++
						}
					}
				}
				_ = n
			}
		})
		requests := core.SchemaRequests(h)
		b.Run("classes/"+sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				contain.ComputeClasses(h, requests)
			}
		})
	}
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// BenchmarkLiveUpdates is the write-heavy serving benchmark behind the
// /subscribe feature: one op is one effective update (Apply + incremental
// fragment maintenance + fanout) against a Tyrol background graph, with
// the given number of open subscriptions draining their streams. Because
// re-extraction is restricted to the delta's weakly-connected component,
// updates/s should be nearly flat in graph size; the subs sweep prices
// the fanout. heap-MB reports the post-run live heap — the materialized
// fragment, replay rings and queues must stay bounded as subscriptions
// scale to 1000+.
func BenchmarkLiveUpdates(b *testing.B) {
	hot := rdf.NewIRI("http://live.example/hot")
	vi := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://live.example/v%d", i)) }
	for _, subs := range []int{0, 100, 1000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			hasP := shape.Min(1, paths.P("http://live.example/p"), shape.TrueShape())
			h := schema.MustNew(schema.Definition{Name: rdf.NewIRI("http://live.example/S"), Shape: hasP, Target: hasP})
			g := tyrolGraph(1000)
			g.Add(rdf.Triple{S: hot, P: rdf.NewIRI("http://live.example/p"), O: vi(0)})
			store.WarmDictionary(g, h)
			st := store.NewSingle(g)
			m := live.NewMaintainer(live.Config{
				Schema:         h,
				Requests:       core.SchemaRequests(h),
				MaxSubscribers: subs + 1,
				Queue:          256,
			}, st.Current())
			var wg sync.WaitGroup
			for i := 0; i < subs; i++ {
				sub, _, err := m.Subscribe(0, 0)
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range sub.Events() {
					}
				}()
			}
			b.ResetTimer()
			for i := 1; i <= b.N; i++ {
				res := st.Apply(rdfgraph.Delta{
					Add: []rdf.Triple{{S: hot, P: rdf.NewIRI("http://live.example/p"), O: vi(i)}},
					Del: []rdf.Triple{{S: hot, P: rdf.NewIRI("http://live.example/p"), O: vi(i - 1)}},
				})
				if !res.Changed {
					b.Fatal("update was a no-op")
				}
				m.Notify(res, nil)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heap-MB")
			if ev := m.Stats().Evicted; ev > 0 {
				b.ReportMetric(float64(ev), "evicted-subs")
			}
			m.Drain()
			wg.Wait()
		})
	}
}
