// Command fragserver serves shape fragments over HTTP: /validate,
// /fragment (whole schema, per-shape), /node (per-node neighborhoods
// B(v, G, φ)), /explain (per-triple provenance justifications, JSON),
// and /tpf triple pattern fragments, streaming N-Triples. POST /update
// applies live Turtle/N-Triples deltas: each effective update publishes a
// new immutable snapshot epoch while in-flight requests keep reading the
// one they pinned (see the X-Epoch response header). GET /subscribe streams
// live per-epoch fragment deltas (Server-Sent Events, resumable via
// Last-Event-ID) maintained incrementally: each update re-extracts only the
// focus nodes whose weakly-connected component the delta touched.
//
// Serve your own data:
//
//	fragserver -addr :8077 -data data.ttl -shapes shapes.ttl
//
// or, with no files, a synthetic tourism graph plus benchmark shapes:
//
//	fragserver -addr :8077 -individuals 2000
//
// The server installs a per-request timeout, bounds in-flight requests,
// caches neighborhoods in a bounded LRU, extracts fragments in parallel,
// logs structured access lines, and drains in-flight requests on SIGINT or
// SIGTERM before exiting.
//
// Observability: /metrics (Prometheus text), /healthz, /readyz and /stats
// are served on the main address; -debug-addr starts a second, unthrottled
// listener with /debug/pprof/*, /debug/vars (expvar, including the metric
// registry) and /metrics and /debug/traces mirrors, so profiling, scraping
// and trace retrieval keep working while the main listener sheds load.
// -trace-sample 1-in-N head sampling records hierarchical span traces on
// /debug/traces (OTLP-shaped JSON), links them to the latency histograms
// via OpenMetrics exemplars, and -slow-request flags outliers in the log.
// docs/OPERATIONS.md is the operator guide: every flag, endpoint and
// metric.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/fragserver"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/store"
	"shaclfrag/internal/turtle"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	debugAddr := flag.String("debug-addr", "", "debug listen address for pprof/expvar/metrics (empty disables)")
	dataPath := flag.String("data", "", "data graph (Turtle); empty serves a synthetic graph")
	shapesPath := flag.String("shapes", "", "SHACL shapes graph (Turtle); empty uses the benchmark shapes")
	individuals := flag.Int("individuals", 2000, "size of the synthetic graph when -data is empty")
	scale := flag.Int("scale", 0, "approximate synthetic graph size in triples (overrides -individuals; streams into the store, so 10M+ loads within bounded memory)")
	nshapes := flag.Int("shapes-count", 8, "number of benchmark shape definitions when -shapes is empty")
	backend := flag.String("backend", "single", "storage backend: single or sharded")
	shards := flag.Int("shards", 0, "shard count for -backend sharded (0 = default)")
	workers := flag.Int("workers", 0, "parallel extraction workers (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 64, "maximum concurrently served requests")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request compute budget")
	cacheTriples := flag.Int("cache", 1<<20, "neighborhood LRU budget in triples (negative disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	logFormat := flag.String("log-format", "text", "log encoding: text or json (applies to access and lifecycle logs alike)")
	allowLintErrors := flag.Bool("allow-lint-errors", false, "serve schemas that shapelint flags with error-severity findings")
	noExplain := flag.Bool("no-explain", false, "disable the /explain route")
	attrSample := flag.Int("attribution-sample", 0, "attribute 1 in N extraction requests into the fragserver_attribution_* counters (0 disables; sampled requests bypass the neighborhood cache)")
	maxUpdateBytes := flag.Int64("max-update-bytes", 8<<20, "largest delta body POST /update accepts")
	maxSubscribers := flag.Int("max-subscribers", 4096, "maximum concurrently open /subscribe streams")
	subQueue := flag.Int("subscribe-queue", 32, "per-subscriber event buffer; a subscriber whose buffer overflows is evicted")
	subReplay := flag.Int("subscribe-replay", 64, "per-shape delta ring for Last-Event-ID resume; older resumers get a full snapshot")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "idle /subscribe stream heartbeat interval")
	traceSample := flag.Int("trace-sample", 0, "record a hierarchical span trace for 1 in N requests, served on /debug/traces (0 disables; requests with a sampled traceparent header are always traced)")
	traceBuffer := flag.Int("trace-buffer", 0, "trace ring capacity for /debug/traces (0 = default 128)")
	slowRequest := flag.Duration("slow-request", 0, "latency threshold for the structured slow-request warning; sampled slow traces are kept as notable (0 disables)")
	jsonLogs := flag.Bool("json-logs", false, "deprecated alias for -log-format json")
	flag.Parse()

	if *jsonLogs {
		*logFormat = "json"
	}
	logger, err := newLogger(*logFormat)
	if err != nil {
		// The one message that cannot go through the structured logger is
		// the one saying we could not build it.
		fmt.Fprintln(os.Stderr, "fragserver:", err)
		os.Exit(2)
	}

	st, h, err := load(*dataPath, *shapesPath, *individuals, *scale, *nshapes, store.Config{Backend: *backend, Shards: *shards})
	if err != nil {
		fatal(logger, "loading graph and schema failed", err)
	}

	srv, err := fragserver.New(fragserver.Config{
		Store:             st,
		Schema:            h,
		Workers:           *workers,
		MaxInflight:       *maxInflight,
		RequestTimeout:    *timeout,
		CacheTriples:      *cacheTriples,
		Logger:            logger,
		AllowLintErrors:   *allowLintErrors,
		DisableExplain:    *noExplain,
		AttributionSample: *attrSample,
		MaxUpdateBytes:    *maxUpdateBytes,
		MaxSubscribers:    *maxSubscribers,
		SubscribeQueue:    *subQueue,
		SubscribeReplay:   *subReplay,
		Heartbeat:         *heartbeat,
		TraceSample:       *traceSample,
		TraceBuffer:       *traceBuffer,
		SlowRequest:       *slowRequest,
	})
	if err != nil {
		fatal(logger, "building server failed", err)
	}
	srv.Metrics().PublishExpvar("fragserver")

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listening failed", err)
	}
	logger.Info("serving shape fragments",
		"addr", ln.Addr().String(), "triples", st.Current().Reader().Len(),
		"shapes", h.Len(), "backend", st.Backend(), "shards", st.NumShards())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		shutdownDebug, err := serveDebug(*debugAddr, srv, logger)
		if err != nil {
			fatal(logger, "debug listener failed", err)
		}
		defer shutdownDebug()
	}

	if err := srv.Serve(ctx, ln, *drain); err != nil {
		fatal(logger, "serving failed", err)
	}
	logger.Info("shutdown complete")
}

// fatal routes a startup/shutdown failure through the same structured
// logger as everything else, then exits nonzero.
func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err.Error())
	os.Exit(1)
}

func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// serveDebug starts the debug listener: pprof, expvar and a /metrics
// mirror, deliberately outside the main listener's in-flight limiter and
// request timeout so a saturated or wedged server can still be profiled
// and scraped. Bind it to localhost or an operations network only — pprof
// exposes heap contents. The returned function shuts the listener down.
func serveDebug(addr string, srv *fragserver.Server, logger *slog.Logger) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	// The mirrors serve the same registry and trace ring as the main
	// listener — exemplars, runtime telemetry and span trees included —
	// so scraping and trace retrieval survive a saturated server.
	mux.Handle("/metrics", srv.Metrics().Handler())
	mux.Handle("/debug/traces", srv.Traces().Handler("fragserver"))
	mux.Handle("/debug/traces/", srv.Traces().Handler("fragserver"))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("debug listener stopped", "err", err.Error())
		}
	}()
	logger.Info("debug listener up", "addr", ln.Addr().String())
	return func() { hs.Close() }, nil //nolint:errcheck — best-effort teardown
}

// load builds the schema and the store. Synthetic graphs stream through a
// store.Loader — triples go straight into the backend's indexes, never
// through an intermediate slice — so -scale 10000000 loads within bounded
// memory; Turtle files still parse into one graph first (the parser needs
// the document in memory anyway) and are then wrapped in the backend.
func load(dataPath, shapesPath string, individuals, scale, nshapes int, scfg store.Config) (store.Store, *schema.Schema, error) {
	var h *schema.Schema
	if shapesPath != "" {
		src, err := os.ReadFile(shapesPath)
		if err != nil {
			return nil, nil, err
		}
		h, err = shaclsyn.ParseSchema(string(src))
		if err != nil {
			return nil, nil, err
		}
	} else {
		defs := datagen.BenchmarkShapes()
		if nshapes > 0 && nshapes < len(defs) {
			defs = defs[:nshapes]
		}
		var err error
		h, err = schema.New(defs...)
		if err != nil {
			return nil, nil, err
		}
	}

	if dataPath != "" {
		src, err := os.ReadFile(dataPath)
		if err != nil {
			return nil, nil, err
		}
		g, err := turtle.Parse(string(src))
		if err != nil {
			return nil, nil, err
		}
		store.WarmDictionary(g, h)
		st, err := store.New(g, scfg)
		if err != nil {
			return nil, nil, err
		}
		return st, h, nil
	}

	if scale > 0 {
		individuals = datagen.IndividualsForTriples(scale)
	}
	loader, err := store.NewLoader(scfg)
	if err != nil {
		return nil, nil, err
	}
	datagen.TyrolStream(datagen.TyrolConfig{Individuals: individuals, Seed: 1},
		func(t rdf.Triple) { loader.Add(t) })
	store.WarmDictionary(loader.Reader(), h)
	return loader.Finish(), h, nil
}
