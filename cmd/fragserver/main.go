// Command fragserver serves shape fragments over HTTP: /validate,
// /fragment (whole schema, per-shape), /node (per-node neighborhoods
// B(v, G, φ)), and /tpf triple pattern fragments, streaming N-Triples.
//
// Serve your own data:
//
//	fragserver -addr :8077 -data data.ttl -shapes shapes.ttl
//
// or, with no files, a synthetic tourism graph plus benchmark shapes:
//
//	fragserver -addr :8077 -individuals 2000
//
// The server installs a per-request timeout, bounds in-flight requests,
// caches neighborhoods in a bounded LRU, extracts fragments in parallel,
// logs structured access lines, and drains in-flight requests on SIGINT or
// SIGTERM before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/fragserver"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/turtle"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	dataPath := flag.String("data", "", "data graph (Turtle); empty serves a synthetic graph")
	shapesPath := flag.String("shapes", "", "SHACL shapes graph (Turtle); empty uses the benchmark shapes")
	individuals := flag.Int("individuals", 2000, "size of the synthetic graph when -data is empty")
	nshapes := flag.Int("shapes-count", 8, "number of benchmark shape definitions when -shapes is empty")
	workers := flag.Int("workers", 0, "parallel extraction workers (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 64, "maximum concurrently served requests")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request compute budget")
	cacheTriples := flag.Int("cache", 1<<20, "neighborhood LRU budget in triples (negative disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	jsonLogs := flag.Bool("json-logs", false, "emit access logs as JSON instead of text")
	flag.Parse()

	logger := newLogger(*jsonLogs)
	g, h, err := load(*dataPath, *shapesPath, *individuals, *nshapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fragserver:", err)
		os.Exit(1)
	}

	srv, err := fragserver.New(fragserver.Config{
		Graph:          g,
		Schema:         h,
		Workers:        *workers,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		CacheTriples:   *cacheTriples,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fragserver:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fragserver:", err)
		os.Exit(1)
	}
	logger.Info("serving shape fragments",
		"addr", ln.Addr().String(), "triples", g.Len(), "shapes", h.Len())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "fragserver:", err)
		os.Exit(1)
	}
	logger.Info("shutdown complete")
}

func newLogger(json bool) *slog.Logger {
	if json {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func load(dataPath, shapesPath string, individuals, nshapes int) (*rdfgraph.Graph, *schema.Schema, error) {
	var g *rdfgraph.Graph
	if dataPath != "" {
		src, err := os.ReadFile(dataPath)
		if err != nil {
			return nil, nil, err
		}
		g, err = turtle.Parse(string(src))
		if err != nil {
			return nil, nil, err
		}
	} else {
		g = datagen.Tyrol(datagen.TyrolConfig{Individuals: individuals, Seed: 1})
	}

	var h *schema.Schema
	if shapesPath != "" {
		src, err := os.ReadFile(shapesPath)
		if err != nil {
			return nil, nil, err
		}
		h, err = shaclsyn.ParseSchema(string(src))
		if err != nil {
			return nil, nil, err
		}
	} else {
		defs := datagen.BenchmarkShapes()
		if nshapes > 0 && nshapes < len(defs) {
			defs = defs[:nshapes]
		}
		var err error
		h, err = schema.New(defs...)
		if err != nil {
			return nil, nil, err
		}
	}
	return g, h, nil
}
