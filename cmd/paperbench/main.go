// Command paperbench regenerates every table and figure of the evaluation
// section of "Data Provenance for SHACL" (EDBT 2023) on the synthetic
// workloads of internal/datagen (see DESIGN.md for the substitutions):
//
//	paperbench fig1        — Figure 1: extraction overhead, 57 shapes × sizes
//	paperbench fig1 -summary — §5.3.1: average overheads
//	paperbench fig2        — Figure 2: SPARQL-translated provenance runtimes
//	paperbench fig3        — Figure 3: hub-distance-3 fragment vs. slices
//	paperbench tab-queries — §4.1: 39/46 benchmark queries expressible
//	paperbench tab-tpf     — Prop 6.2: TPF forms expressible as fragments
//
// Absolute numbers depend on the machine; the paper's claims are about the
// relationships (overhead small and size-stable; SPARQL translation
// feasible but heavier; fragment time growing with slice size).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/sparql"
	"shaclfrag/internal/sparqltrans"
	"shaclfrag/internal/tpf"
	"shaclfrag/internal/validator"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "fig1":
		err = fig1(os.Args[2:])
	case "fig2":
		err = fig2(os.Args[2:])
	case "fig3":
		err = fig3(os.Args[2:])
	case "tab-queries":
		err = tabQueries(os.Args[2:])
	case "tab-tpf":
		err = tabTPF(os.Args[2:])
	case "all":
		for _, cmd := range []func([]string) error{fig1, fig2, fig3, tabQueries, tabTPF} {
			if err = cmd(nil); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: paperbench fig1|fig2|fig3|tab-queries|tab-tpf|all [flags]")
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// fig1 reproduces Figure 1: for each of the 57 benchmark shapes and each
// graph size, the percent increase in time of provenance extraction over
// mere validation.
func fig1(args []string) error {
	fs := flag.NewFlagSet("fig1", flag.ExitOnError)
	sizesFlag := fs.String("sizes", "2000,4000,6000,8000", "graph sizes (individuals)")
	reps := fs.Int("reps", 3, "runs per measurement (paper: 3)")
	summary := fs.Bool("summary", false, "print only the §5.3.1 aggregate numbers")
	slowMs := fs.Float64("slow-ms", 0, "threshold (ms) for the 'slow shapes' aggregate; 0 = top quartile")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	defs := datagen.BenchmarkShapes()
	fmt.Println("# Figure 1 — provenance extraction overhead (percent over validation)")
	fmt.Println("# one line per shape; columns are graph sizes (triples)")
	type cell struct {
		overhead   float64
		validateMs float64
	}
	table := make([][]cell, len(defs))
	var header []string
	for _, size := range sizes {
		g := datagen.Tyrol(datagen.TyrolConfig{Individuals: size, Seed: 42})
		header = append(header, fmt.Sprintf("%dK-triples", g.Len()/1000))
		for i, d := range defs {
			m := validator.MeasureOverhead(g, d, *reps)
			table[i] = append(table[i], cell{
				overhead:   m.Percent,
				validateMs: float64(m.ValidateOnly.Microseconds()) / 1000,
			})
		}
	}
	if !*summary {
		fmt.Printf("%-12s", "shape")
		for _, h := range header {
			fmt.Printf(" %14s", h)
		}
		fmt.Println()
		for i, d := range defs {
			fmt.Printf("%-12s", shortName(d.Name))
			for _, c := range table[i] {
				fmt.Printf(" %13.1f%%", c.overhead)
			}
			fmt.Println()
		}
	}
	// §5.3.1 aggregates on the largest size.
	last := len(sizes) - 1
	var all, slow []float64
	threshold := *slowMs
	if threshold == 0 {
		var times []float64
		for i := range defs {
			times = append(times, table[i][last].validateMs)
		}
		threshold = quantile(times, 0.75)
	}
	for i := range defs {
		all = append(all, table[i][last].overhead)
		if table[i][last].validateMs >= threshold {
			slow = append(slow, table[i][last].overhead)
		}
	}
	fmt.Printf("\n# §5.3.1 aggregates at the largest size (%s):\n", header[last])
	fmt.Printf("average overhead, all 57 shapes:        %.1f%%  (paper: well below 10%%)\n", mean(all))
	fmt.Printf("average overhead, slow shapes (≥%.2fms): %.1f%%  (paper: 15.6%% on >1s shapes)\n",
		threshold, mean(slow))
	return nil
}

func shortName(t rdf.Term) string {
	if i := strings.LastIndexByte(t.Value, '/'); i >= 0 {
		return t.Value[i+1:]
	}
	return t.Value
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// reduceTests substitutes ⊤ for node tests, the reduction the paper applies
// before running the translated queries ("preserves the graph-navigational
// nature of the queries").
func reduceTests(phi shape.Shape) shape.Shape {
	switch x := phi.(type) {
	case *shape.Test:
		return shape.TrueShape()
	case *shape.Not:
		return shape.Neg(reduceTests(x.X))
	case *shape.And:
		out := make([]shape.Shape, len(x.Xs))
		for i, c := range x.Xs {
			out[i] = reduceTests(c)
		}
		return shape.AndOf(out...)
	case *shape.Or:
		out := make([]shape.Shape, len(x.Xs))
		for i, c := range x.Xs {
			out[i] = reduceTests(c)
		}
		return shape.OrOf(out...)
	case *shape.MinCount:
		return shape.Min(x.N, x.Path, reduceTests(x.X))
	case *shape.MaxCount:
		return shape.Max(x.N, x.Path, reduceTests(x.X))
	case *shape.Forall:
		return shape.All(x.Path, reduceTests(x.X))
	default:
		return phi
	}
}

// fig2 reproduces Figure 2: execution times of provenance computation via
// the SPARQL translation for 12 shapes over four graph sizes. As in the
// paper, node tests are reduced to ⊤ first.
func fig2(args []string) error {
	fs := flag.NewFlagSet("fig2", flag.ExitOnError)
	sizesFlag := fs.String("sizes", "500,1000,1500,2000", "graph sizes (individuals)")
	reps := fs.Int("reps", 3, "runs per measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	defs := datagen.BenchmarkShapes()
	// The 12 shapes whose translated queries the paper's setup could run:
	// a cross-section of the constraint families.
	indices := []int{0, 3, 7, 8, 14, 26, 30, 34, 40, 46, 52, 55}
	fmt.Println("# Figure 2 — SPARQL-translated provenance computation time (ms)")
	fmt.Printf("%-12s", "shape")
	type sized struct {
		graph *rdfgraph.Graph
		label string
	}
	var graphs []sized
	for _, size := range sizes {
		g := datagen.Tyrol(datagen.TyrolConfig{Individuals: size, Seed: 42})
		graphs = append(graphs, sized{g, fmt.Sprintf("%dK-triples", g.Len()/1000)})
	}
	for _, g := range graphs {
		fmt.Printf(" %14s", g.label)
	}
	fmt.Println()
	for _, i := range indices {
		d := defs[i]
		request := reduceTests(shape.AndOf(d.Shape, d.Target))
		fmt.Printf("%-12s", shortName(d.Name))
		for _, sg := range graphs {
			tr := sparqltrans.New(nil)
			op := tr.FragmentQuery([]shape.Shape{request}, "s", "p", "o")
			var total time.Duration
			for r := 0; r < *reps; r++ {
				start := time.Now()
				sparql.Select(op, sg.graph, "s", "p", "o")
				total += time.Since(start)
			}
			fmt.Printf(" %12.1fms", float64(total.Microseconds())/float64(*reps)/1000)
		}
		fmt.Println()
	}
	return nil
}

// fig3 reproduces Figure 3: the hub-distance-3 coauthorship fragment over
// growing year slices, computed via the SPARQL translation (the paper's
// store-based setting) and via the direct extractor for comparison.
func fig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	papers := fs.Int("papers", 4000, "papers in the synthetic DBLP substitute")
	reps := fs.Int("reps", 3, "runs per measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := datagen.NewCoauthor(datagen.CoauthorConfig{Papers: *papers, Seed: 42})
	request := datagen.HubDistance3Shape()
	fmt.Println("# Figure 3 — hub-distance-3 shape fragment over growing slices")
	fmt.Printf("%-10s %10s %12s %12s %12s\n",
		"since", "triples", "sparql-ms", "direct-ms", "fragment")
	for year := c.YearMax(); year >= c.YearMin(); year-- {
		g := c.Graph(year)
		tr := sparqltrans.New(nil)
		op := tr.FragmentQuery([]shape.Shape{request}, "s", "p", "o")
		var sparqlTotal, directTotal time.Duration
		var fragSize int
		for r := 0; r < *reps; r++ {
			start := time.Now()
			rows := sparql.Select(op, g, "s", "p", "o")
			sparqlTotal += time.Since(start)
			fragSize = len(rows)

			start = time.Now()
			core.NewExtractor(g, nil).Fragment([]shape.Shape{request})
			directTotal += time.Since(start)
		}
		fmt.Printf("%-10d %10d %12.1f %12.1f %12d\n",
			year, g.Len(),
			float64(sparqlTotal.Microseconds())/float64(*reps)/1000,
			float64(directTotal.Microseconds())/float64(*reps)/1000,
			fragSize)
	}
	return nil
}

// tabQueries reproduces the §4.1 study: which of the 46 benchmark queries
// are expressible as shape fragments.
func tabQueries(args []string) error {
	fs := flag.NewFlagSet("tab-queries", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print the SPARQL text and request shapes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	qs := datagen.BenchmarkQueries()
	expressible := 0
	fmt.Println("# §4.1 — benchmark queries expressible as shape fragments")
	for _, q := range qs {
		status := "no "
		detail := q.Reason
		if q.Expressible {
			expressible++
			status = "yes"
			detail = q.Request.String()
		}
		if !*verbose && len(detail) > 90 {
			detail = detail[:87] + "..."
		}
		fmt.Printf("%-4s %-7s %-4s %s\n", q.Name, q.Source, status, detail)
		if *verbose {
			fmt.Println(indentLines(q.SPARQL, "     "))
		}
	}
	fmt.Printf("\nexpressible: %d of %d (paper: 39 of 46)\n", expressible, len(qs))
	return nil
}

func indentLines(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

// tabTPF reproduces Proposition 6.2: the TPF forms expressible as shape
// fragments.
func tabTPF(args []string) error {
	c := rdf.NewIRI("http://tyrol.example/c")
	d := rdf.NewIRI("http://tyrol.example/d")
	p := rdf.NewIRI(datagen.PropName)
	forms := []tpf.Pattern{
		{S: tpf.V("x"), P: tpf.C(p), O: tpf.V("y")},
		{S: tpf.V("x"), P: tpf.C(p), O: tpf.C(c)},
		{S: tpf.C(c), P: tpf.C(p), O: tpf.V("x")},
		{S: tpf.C(c), P: tpf.C(p), O: tpf.C(d)},
		{S: tpf.V("x"), P: tpf.C(p), O: tpf.V("x")},
		{S: tpf.V("x"), P: tpf.V("y"), O: tpf.V("z")},
		{S: tpf.C(c), P: tpf.V("y"), O: tpf.V("z")},
		{S: tpf.V("x"), P: tpf.V("y"), O: tpf.V("x")},
		{S: tpf.V("x"), P: tpf.V("y"), O: tpf.V("y")},
		{S: tpf.V("x"), P: tpf.V("x"), O: tpf.V("x")},
		{S: tpf.V("x"), P: tpf.V("y"), O: tpf.C(c)},
		{S: tpf.V("x"), P: tpf.V("x"), O: tpf.C(c)},
		{S: tpf.C(c), P: tpf.V("x"), O: tpf.V("x")},
		{S: tpf.C(c), P: tpf.V("x"), O: tpf.C(d)},
	}
	fmt.Println("# Proposition 6.2 — TPFs expressible as shape fragments")
	yes := 0
	for _, f := range forms {
		if phi, ok := f.RequestShape(); ok {
			yes++
			fmt.Printf("%-22s yes   %s\n", f, phi)
		} else {
			fmt.Printf("%-22s no\n", f)
		}
	}
	fmt.Printf("\nexpressible forms: %d (paper: the 7 forms of Prop 6.2)\n", yes)
	return nil
}
