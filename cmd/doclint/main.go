// Command doclint checks the repository's markdown documentation
// against the code: intra-repo links (including #heading anchors) must
// resolve, every `-flag` documented in an inline code span must be
// defined by some command under cmd/, and every `cmd sub` invocation in
// a code span must name a subcommand that command's dispatch switch
// accepts. It is the engine behind `make docs-check` and exits 1 when
// any finding is reported.
//
// Usage:
//
//	doclint [-root dir] [files ...]
//
// With no file arguments it lints README.md, DESIGN.md, EXPERIMENTS.md
// and docs/*.md under the root (default: the current directory).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"shaclfrag/internal/doclint"
)

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		for _, f := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"} {
			if _, err := os.Stat(filepath.Join(*root, f)); err == nil {
				files = append(files, f)
			}
		}
		docs, err := filepath.Glob(filepath.Join(*root, "docs", "*.md"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		for _, d := range docs {
			rel, err := filepath.Rel(*root, d)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doclint:", err)
				os.Exit(1)
			}
			files = append(files, rel)
		}
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "doclint: no markdown files to lint")
		os.Exit(1)
	}

	defined, err := doclint.DefinedFlags(*root, "cmd")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}
	subs, err := doclint.DefinedSubcommands(*root, "cmd")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}
	findings := append(doclint.Links(*root, files), doclint.Flags(*root, files, defined)...)
	findings = append(findings, doclint.Subcommands(*root, files, subs)...)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s) in %d file(s)\n", len(findings), len(files))
		os.Exit(1)
	}
	fmt.Printf("doclint: %d file(s) clean\n", len(files))
}
