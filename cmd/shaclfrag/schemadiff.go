package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"shaclfrag/internal/contain"
	"shaclfrag/internal/schema"
)

// diffChange is one definition's verdict in `schema-diff -json` output.
// The schema is stable: kinds are the documented six-value set
// (equivalent, weakened, strengthened, incomparable, added, removed) and
// fields are append-only.
type diffChange struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Breaking bool   `json:"breaking"`
	OldToNew string `json:"oldToNew,omitempty"`
	NewToOld string `json:"newToOld,omitempty"`
	Witness  string `json:"witness,omitempty"`
}

// cmdSchemaDiff compares two shapes-graph versions definition by
// definition using the containment checker, classifying each IRI-named
// definition as equivalent, weakened (non-breaking), strengthened,
// incomparable, added, or removed. Strengthened, incomparable and added
// changes are breaking: data valid under the old schema has no validity
// guarantee under the new one.
//
// Exit status: 0 when no change is breaking, 1 when at least one is,
// 2 on usage errors (missing or unreadable inputs).
func cmdSchemaDiff(args []string) error {
	fs := flag.NewFlagSet("schema-diff", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	graphs := fs.Int("graphs", 0, "random graphs per unproven direction for refutation search (0 = default)")
	seed := fs.Int64("seed", 0, "base seed for refutation search (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: shaclfrag schema-diff [-json] [-graphs N] [-seed N] old.ttl new.ttl")
		os.Exit(2)
	}
	oldH, err := loadSchemaOrUsage(fs.Arg(0))
	if err != nil {
		return err
	}
	newH, err := loadSchemaOrUsage(fs.Arg(1))
	if err != nil {
		return err
	}

	rep := contain.Diff(oldH, newH, contain.RefuteConfig{Graphs: *graphs, Seed: *seed})
	breaking := rep.Breaking()

	if *asJSON {
		out := struct {
			Old      string       `json:"old"`
			New      string       `json:"new"`
			Changes  []diffChange `json:"changes"`
			Breaking int          `json:"breaking"`
		}{Old: fs.Arg(0), New: fs.Arg(1), Changes: []diffChange{}, Breaking: len(breaking)}
		for _, ch := range rep.Changes {
			jc := diffChange{
				Name:     ch.Name.String(),
				Kind:     ch.Kind.String(),
				Breaking: ch.Kind.Breaking(),
			}
			if ch.Kind != contain.ChangeAdded && ch.Kind != contain.ChangeRemoved {
				jc.OldToNew = ch.OldToNew.String()
				jc.NewToOld = ch.NewToOld.String()
			}
			if ch.Witness != nil {
				jc.Witness = ch.Witness.Node.String()
			}
			out.Changes = append(out.Changes, jc)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, ch := range rep.Changes {
			line := fmt.Sprintf("%-13s %s", ch.Kind, ch.Name)
			if ch.Kind.Breaking() {
				line += " (breaking)"
			}
			if ch.Witness != nil {
				line += fmt.Sprintf(" [witness node %s]", ch.Witness.Node)
			}
			fmt.Println(line)
		}
		fmt.Printf("%d definition(s) compared, %d breaking change(s)\n",
			len(rep.Changes), len(breaking))
	}
	if len(breaking) > 0 {
		os.Exit(1)
	}
	return nil
}

// loadSchemaOrUsage loads a shapes graph, exiting with the usage status
// when the input cannot be read or parsed — bad inputs are an invocation
// problem, distinct from the breaking-change exit 1.
func loadSchemaOrUsage(path string) (*schema.Schema, error) {
	h, err := loadSchema(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shaclfrag: schema-diff:", err)
		os.Exit(2)
	}
	return h, nil
}
