package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const testData = `
@prefix ex: <http://x/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:p1 rdf:type ex:Paper ; ex:author ex:bob .
ex:p2 rdf:type ex:Paper ; ex:author ex:anne .
ex:bob rdf:type ex:Student .
ex:anne rdf:type ex:Professor .
`

const testShapes = `
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://x/> .
ex:WorkshopShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [
    sh:path ex:author ; sh:qualifiedMinCount 1 ;
    sh:qualifiedValueShape [ sh:class ex:Student ] ] .
`

// buildCLI compiles the shaclfrag binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "shaclfrag")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeInputs(t *testing.T) (dataPath, shapesPath string) {
	t.Helper()
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "data.ttl")
	shapesPath = filepath.Join(dir, "shapes.ttl")
	if err := os.WriteFile(dataPath, []byte(testData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shapesPath, []byte(testShapes), 0o644); err != nil {
		t.Fatal(err)
	}
	return dataPath, shapesPath
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	data, shapes := writeInputs(t)

	run := func(wantExit int, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		if exit != wantExit {
			t.Fatalf("%v: exit %d, want %d\n%s", args, exit, wantExit, out)
		}
		return string(out)
	}

	// validate: the graph has one violation (p2), so exit code 1.
	out := run(1, "validate", "-data", data, "-shapes", shapes)
	if !strings.Contains(out, "VIOLATION") || !strings.Contains(out, "conforms: false") {
		t.Errorf("validate output: %s", out)
	}

	// fragment via schema.
	out = run(0, "fragment", "-data", data, "-shapes", shapes)
	if !strings.Contains(out, "Student") || strings.Contains(out, "Professor") {
		t.Errorf("fragment output: %s", out)
	}

	// fragment via the SPARQL strategy must agree.
	sparqlOut := run(0, "fragment", "-data", data, "-shapes", shapes, "-sparql")
	if sparqlOut != out {
		t.Errorf("strategies disagree:\n%s\nvs\n%s", out, sparqlOut)
	}

	// fragment via an ad-hoc request shape.
	out = run(0, "fragment", "-data", data, "-request", ">=1 author.top", "-base", "http://x/")
	if strings.Count(out, "author") != 2 {
		t.Errorf("request fragment: %s", out)
	}

	// neighborhood of the conforming paper.
	out = run(0, "neighborhood", "-data", data, "-shapes", shapes,
		"-node", "http://x/p1", "-shape", "WorkshopShape")
	if !strings.Contains(out, "conforms: true") || !strings.Contains(out, "bob") {
		t.Errorf("neighborhood output: %s", out)
	}

	// whynot of the violating paper.
	out = run(0, "whynot", "-data", data, "-shapes", shapes,
		"-node", "http://x/p2", "-shape", "WorkshopShape")
	if !strings.Contains(out, "conforms: false") {
		t.Errorf("whynot output: %s", out)
	}

	// translate renders SPARQL.
	out = run(0, "translate", "-shapes", shapes)
	if !strings.Contains(out, "SELECT ?s ?p ?o") {
		t.Errorf("translate output: %s", out)
	}

	// tpf evaluation plus request shape.
	out = run(0, "tpf", "-data", data, "-pattern", "?x <http://x/author> ?y")
	if !strings.Contains(out, "# request shape: ≥1") || strings.Count(out, "author") < 3 {
		t.Errorf("tpf output: %s", out)
	}

	// error handling: missing files and bad patterns.
	run(1, "validate", "-data", "/nonexistent.ttl", "-shapes", shapes)
	run(1, "tpf", "-data", data, "-pattern", "only two")
	run(2, "nonsense")
}

// TestCLIExplainGolden locks the annotated-N-Triples and JSON renderings
// of `shaclfrag explain` against the committed tourism example. The golden
// files double as the walkthrough output quoted in the README, so a
// rendering change must update both.
func TestCLIExplainGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	data := filepath.Join("..", "..", "examples", "data", "tourism.ttl")
	shapes := filepath.Join("..", "..", "examples", "shapes", "tourism.ttl")

	cases := []struct {
		golden string
		args   []string
	}{
		{"alpenhof-hotel.golden", []string{
			"-node", "http://tourism.example/alpenhof", "-shape", "HotelShape"}},
		{"grandhotel-hotel.golden", []string{
			"-node", "http://tourism.example/grandhotel", "-shape", "HotelShape"}},
		{"seehof.json.golden", []string{
			"-node", "http://tourism.example/seehof", "-json"}},
	}
	for _, tc := range cases {
		args := append([]string{"explain", "-data", data, "-shapes", shapes}, tc.args...)
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		want, err := os.ReadFile(filepath.Join("..", "..", "examples", "explain", tc.golden))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(want) {
			t.Errorf("%s: output drifted from golden\n--- got ---\n%s--- want ---\n%s", tc.golden, out, want)
		}
	}
}

func TestCLIExplainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	data, shapes := writeInputs(t)

	run := func(wantExit int, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		if exit != wantExit {
			t.Fatalf("%v: exit %d, want %d\n%s", args, exit, wantExit, out)
		}
		return string(out)
	}

	// The conforming paper: every neighborhood triple carries a rendered
	// justification comment.
	out := run(0, "explain", "-data", data, "-shapes", shapes,
		"-node", "http://x/p1", "-shape", "WorkshopShape")
	if !strings.Contains(out, "conforms: true") || !strings.Contains(out, "⇐") {
		t.Errorf("explain output missing justifications: %s", out)
	}
	if !strings.Contains(out, "bob") || strings.Contains(out, "anne") {
		t.Errorf("explain must cover exactly the p1 neighborhood: %s", out)
	}

	// Explaining a shape against itself leaves no diff.
	out = run(0, "explain", "-data", data, "-shapes", shapes,
		"-node", "http://x/p1", "-shape", "WorkshopShape", "-diff", "WorkshopShape")
	if !strings.Contains(out, "0 explained triples") {
		t.Errorf("self-diff should be empty: %s", out)
	}

	// Error paths: missing node, unknown shapes.
	run(1, "explain", "-data", data, "-shapes", shapes)
	run(1, "explain", "-data", data, "-shapes", shapes, "-node", "http://x/p1", "-shape", "Nope")
	run(1, "explain", "-data", data, "-shapes", shapes, "-node", "http://x/p1", "-diff", "Nope")
}

func TestParsePatternUnit(t *testing.T) {
	p, err := parsePattern(`?x <http://x/p> "lit"`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.S.IsVar() || p.P.IsVar() || p.O.IsVar() {
		t.Errorf("pattern positions wrong: %+v", p)
	}
	if _, err := parsePattern("?x ?y"); err == nil {
		t.Error("two components must fail")
	}
	if _, err := parsePattern("?x [bad] ?y"); err == nil {
		t.Error("unparsable component must fail")
	}
}

func TestCLILint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	broken := filepath.Join(dir, "broken.ttl")
	if err := os.WriteFile(broken, []byte(`
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://x/> .
ex:BadShape a sh:NodeShape ;
  sh:targetClass ex:Thing ;
  sh:property [ sh:path ex:p ; sh:minCount 2 ; sh:maxCount 1 ] .
`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, clean := writeInputs(t)

	run := func(wantExit int, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		if exit != wantExit {
			t.Fatalf("%v: exit %d, want %d\n%s", args, exit, wantExit, out)
		}
		return string(out)
	}

	// A clean schema: no findings, zero summary, exit 0.
	out := run(0, "lint", clean)
	if !strings.Contains(out, "0 error(s), 0 warning(s)") {
		t.Errorf("clean lint output: %s", out)
	}

	// A broken schema: SL-coded findings and exit 1.
	out = run(1, "lint", broken)
	if !strings.Contains(out, "SL003") || !strings.Contains(out, "SL001") {
		t.Errorf("broken lint output should carry SL-codes: %s", out)
	}

	// -q prints summaries only; errors still fail the run.
	out = run(1, "lint", "-q", broken)
	if strings.Contains(out, "SL003") || !strings.Contains(out, "error(s)") {
		t.Errorf("-q output: %s", out)
	}

	// Multiple files: one bad file fails the whole run, every file gets a
	// summary line. The -shapes flag form is accepted too.
	out = run(1, "lint", "-shapes", clean, broken)
	if strings.Count(out, "error(s)") != 2 {
		t.Errorf("per-file summaries missing: %s", out)
	}

	// No inputs or unreadable inputs are usage/IO errors.
	run(1, "lint")
	run(1, "lint", filepath.Join(dir, "nope.ttl"))

	// The committed corpus: every broken example fails, every clean
	// example passes — the CLI half of the golden tests.
	lintDir := filepath.Join("..", "..", "examples", "lint")
	ttl, err := filepath.Glob(filepath.Join(lintDir, "*.ttl"))
	if err != nil || len(ttl) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(ttl))
	}
	for _, f := range ttl {
		out, _ := exec.Command(bin, "lint", f).CombinedOutput()
		if !strings.Contains(string(out), "SL0") {
			t.Errorf("%s: no SL-coded findings:\n%s", f, out)
		}
	}
	clean2, err := filepath.Glob(filepath.Join("..", "..", "examples", "shapes", "*.ttl"))
	if err != nil || len(clean2) == 0 {
		t.Fatalf("clean glob: %v (%d files)", err, len(clean2))
	}
	args := append([]string{"lint"}, clean2...)
	if out, err := exec.Command(bin, args...).CombinedOutput(); err != nil || strings.Contains(string(out), "SL0") {
		t.Errorf("clean examples must lint silent and exit 0: %v\n%s", err, out)
	}
}
