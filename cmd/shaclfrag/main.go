// Command shaclfrag validates RDF graphs against SHACL shapes graphs and
// extracts provenance: neighborhoods, why-not explanations, and shape
// fragments. It also renders the SPARQL translation of shapes.
//
// Usage:
//
//	shaclfrag validate     -data data.ttl -shapes shapes.ttl
//	shaclfrag fragment     -data data.ttl -shapes shapes.ttl [-o out.nt]
//	shaclfrag neighborhood -data data.ttl -shapes shapes.ttl -node <iri> [-shape <name>]
//	shaclfrag explain      -data data.ttl -shapes shapes.ttl -node <iri> [-shape <name>] [-json] [-diff <name>]
//	shaclfrag whynot       -data data.ttl -shapes shapes.ttl -node <iri> [-shape <name>]
//	shaclfrag translate    -shapes shapes.ttl [-shape <name>]
//	shaclfrag plan         -shapes shapes.ttl [-shape <name>] [-data data.ttl]
//	shaclfrag lint         shapes.ttl [more.ttl ...] [-json]
//	shaclfrag schema-diff  old.ttl new.ttl [-json] [-graphs N] [-seed N]
//	shaclfrag tpf          -data data.ttl -pattern '?x <http://x/p> ?y'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	shaclfrag "shaclfrag"
	"shaclfrag/internal/core"
	"shaclfrag/internal/obs"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/store"
	"shaclfrag/internal/tpf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "fragment":
		err = cmdFragment(os.Args[2:])
	case "neighborhood":
		err = cmdNeighborhood(os.Args[2:], false)
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "whynot":
		err = cmdNeighborhood(os.Args[2:], true)
	case "translate":
		err = cmdTranslate(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "schema-diff":
		err = cmdSchemaDiff(os.Args[2:])
	case "tpf":
		err = cmdTPF(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "shaclfrag: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shaclfrag:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `shaclfrag — SHACL validation with data provenance

commands:
  validate      validate a data graph against a shapes graph
  fragment      extract the shape fragment Frag(G, H)
  neighborhood  extract B(v, G, φ) for one focus node
  explain       extract B(v, G, φ) annotated with per-triple justifications
  whynot        extract the why-not provenance B(v, G, ¬φ)
  translate     render the SPARQL translation of the shapes
  plan          disassemble compiled shape plans and show strategy decisions
  lint          statically analyze shapes graphs for contradictions and dead shapes
  schema-diff   classify per-definition changes between two shapes-graph versions
  tpf           evaluate a triple pattern fragment and its request shape`)
}

func loadGraph(path string) (*shaclfrag.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return shaclfrag.ParseTurtle(string(data))
}

func loadSchema(path string) (*shaclfrag.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return shaclfrag.ParseShapesGraph(string(data))
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	dataPath := fs.String("data", "", "data graph (Turtle)")
	shapesPath := fs.String("shapes", "", "shapes graph (Turtle)")
	verbose := fs.Bool("v", false, "print every result, not only violations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*dataPath)
	if err != nil {
		return err
	}
	h, err := loadSchema(*shapesPath)
	if err != nil {
		return err
	}
	report := shaclfrag.Validate(g, h)
	for _, r := range report.Results {
		if !r.Conforms {
			fmt.Printf("VIOLATION %s focus %s\n", r.ShapeName, r.Focus)
		} else if *verbose {
			fmt.Printf("ok        %s focus %s\n", r.ShapeName, r.Focus)
		}
	}
	fmt.Printf("conforms: %v (%d focus nodes checked, %d violations)\n",
		report.Conforms, report.TargetedNodes, len(report.Violations()))
	if !report.Conforms {
		os.Exit(1)
	}
	return nil
}

func cmdFragment(args []string) error {
	fs := flag.NewFlagSet("fragment", flag.ExitOnError)
	dataPath := fs.String("data", "", "data graph (Turtle)")
	shapesPath := fs.String("shapes", "", "shapes graph (Turtle)")
	request := fs.String("request", "", `ad-hoc request shape in textual syntax, e.g. '>=1 <http://x/p>.top'`)
	baseIRI := fs.String("base", "", "base IRI for bare names in -request")
	outPath := fs.String("o", "", "output file (default stdout)")
	strategy := fs.String("strategy", "auto", "extraction strategy: auto (cost-based planner), plan, direct, or sparql")
	viaSPARQL := fs.Bool("sparql", false, "deprecated: same as -strategy sparql")
	backend := fs.String("backend", "single", "storage backend for the direct extractor: single or sharded")
	shards := fs.Int("shards", 0, "shard count for -backend sharded (0 = default)")
	workers := fs.Int("workers", 0, "parallel extraction workers (0 = GOMAXPROCS)")
	traced := fs.Bool("trace", false, "print the extraction's span tree to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var trace *obs.SpanTrace
	var root *obs.Span // nil without -trace: every span call is a no-op
	if *traced {
		trace = obs.NewSpanTrace("fragment", obs.SpanContext{})
		root = trace.Root()
	}
	load := root.StartChild("load")
	g, err := loadGraph(*dataPath)
	load.End()
	if err != nil {
		return err
	}
	var requests []shaclfrag.Shape
	var h *shaclfrag.Schema
	switch {
	case *request != "":
		phi, err := shaclfrag.ParseShape(*request, *baseIRI)
		if err != nil {
			return err
		}
		requests = []shaclfrag.Shape{phi}
	case *shapesPath != "":
		if h, err = loadSchema(*shapesPath); err != nil {
			return err
		}
		for _, d := range h.Definitions() {
			requests = append(requests, shape.AndOf(d.Shape, d.Target))
		}
	default:
		return fmt.Errorf("need -shapes or -request")
	}
	if *viaSPARQL {
		*strategy = "sparql"
	}
	var frag []shaclfrag.Triple
	if *strategy == "sparql" {
		// The paper's translation strategy, unconditionally: build Q_S and
		// evaluate it on the in-memory engine.
		sq := root.StartChild("sparql-eval")
		frag = shaclfrag.FragmentViaSPARQL(g, h, requests...)
		sq.End()
	} else {
		// The direct extractor speaks the store tier: the parsed graph
		// becomes epoch 1 of the selected backend and extraction reads it
		// through rdfgraph.Reader, so a sharded backend switches
		// FragmentParallel to scatter-gather scheduling.
		store.WarmShapes(g, requests...)
		st, err := store.New(g, store.Config{Backend: *backend, Shards: *shards})
		if err != nil {
			return err
		}
		var defs shape.Defs
		if h != nil {
			defs = h
		}
		var plans *plan.Set
		switch *strategy {
		case "direct":
			// AST walker everywhere; plans stay nil.
		case "plan":
			plans = plan.CompileAll(requests, defs)
		case "auto":
			if h != nil {
				// Cost-based choice per definition; SPARQL-routed
				// definitions fall back to the AST walker in-process (the
				// estimate only favors SPARQL for external endpoints).
				sp := plan.PlanSchema(h, store.SampleStats(st.Current()), plan.Config{})
				plans = sp.ProgramSet()
			} else {
				plans = plan.CompileAll(requests, nil)
			}
		default:
			return fmt.Errorf("unknown -strategy %q (want auto, plan, direct or sparql)", *strategy)
		}
		x := core.NewExtractor(st.Current().Reader(), defs)
		extract := root.StartChild("extract")
		frag, err = x.FragmentParallel(requests, core.ParallelOptions{
			Workers: *workers, Plans: plans, Span: extract,
		})
		extract.End()
		if err != nil {
			return err
		}
	}
	serialize := root.StartChild("serialize")
	out := shaclfrag.FormatNTriples(frag)
	serialize.End()
	if trace != nil {
		root.SetAttrInt("triples", int64(len(frag)))
		root.End()
		trace.WriteTree(os.Stderr)
	}
	if *outPath == "" {
		fmt.Print(out)
		return nil
	}
	return os.WriteFile(*outPath, []byte(out), 0o644)
}

// pickShape returns the request shape for -shape (φ ∧ τ of the named
// definition) or, with no -shape, the disjunction over all definitions.
func pickShape(h *shaclfrag.Schema, name string) (shaclfrag.Shape, error) {
	if name == "" {
		var all []shaclfrag.Shape
		for _, d := range h.Definitions() {
			all = append(all, shape.AndOf(d.Shape, d.Target))
		}
		return shape.OrOf(all...), nil
	}
	for _, d := range h.Definitions() {
		if d.Name.Value == name || strings.HasSuffix(d.Name.Value, name) {
			return d.Shape, nil
		}
	}
	return nil, fmt.Errorf("no shape named %q in the shapes graph", name)
}

func cmdNeighborhood(args []string, whyNot bool) error {
	fs := flag.NewFlagSet("neighborhood", flag.ExitOnError)
	dataPath := fs.String("data", "", "data graph (Turtle)")
	shapesPath := fs.String("shapes", "", "shapes graph (Turtle)")
	node := fs.String("node", "", "focus node IRI")
	shapeName := fs.String("shape", "", "shape name (default: all shapes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node == "" {
		return fmt.Errorf("-node is required")
	}
	g, err := loadGraph(*dataPath)
	if err != nil {
		return err
	}
	h, err := loadSchema(*shapesPath)
	if err != nil {
		return err
	}
	phi, err := pickShape(h, *shapeName)
	if err != nil {
		return err
	}
	focus := rdf.NewIRI(strings.Trim(*node, "<>"))
	var triples []shaclfrag.Triple
	if whyNot {
		triples = shaclfrag.WhyNot(g, h, focus, phi)
	} else {
		triples = shaclfrag.Neighborhood(g, h, focus, phi)
	}
	conforms := shaclfrag.Conforms(g, h, focus, phi)
	fmt.Printf("# focus %s conforms: %v; %d provenance triples\n", focus, conforms, len(triples))
	fmt.Print(shaclfrag.FormatNTriples(triples))
	return nil
}

// pickDefs returns the named definition (exact or suffix match) or, with
// no name, every IRI-named definition in the schema — the auxiliary
// blank-named property shapes the SHACL translation introduces are
// reachable from those through hasShape and would only repeat themselves.
func pickDefs(h *shaclfrag.Schema, name string) ([]shaclfrag.Definition, error) {
	defs := h.Definitions()
	if name == "" {
		var named []shaclfrag.Definition
		for _, d := range defs {
			if d.Name.IsIRI() {
				named = append(named, d)
			}
		}
		if len(named) > 0 {
			return named, nil
		}
		return defs, nil
	}
	for _, d := range defs {
		if d.Name.Value == name || strings.HasSuffix(d.Name.Value, name) {
			return []shaclfrag.Definition{d}, nil
		}
	}
	return nil, fmt.Errorf("no shape named %q in the shapes graph", name)
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	dataPath := fs.String("data", "", "data graph (Turtle)")
	shapesPath := fs.String("shapes", "", "shapes graph (Turtle)")
	node := fs.String("node", "", "focus node IRI")
	shapeName := fs.String("shape", "", "shape name (default: all shapes)")
	diffName := fs.String("diff", "", "second shape name: print only the triples -shape pulls in over this one")
	asJSON := fs.Bool("json", false, "emit JSON instead of annotated N-Triples")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node == "" {
		return fmt.Errorf("-node is required")
	}
	g, err := loadGraph(*dataPath)
	if err != nil {
		return err
	}
	h, err := loadSchema(*shapesPath)
	if err != nil {
		return err
	}
	defs, err := pickDefs(h, *shapeName)
	if err != nil {
		return err
	}
	focus := rdf.NewIRI(strings.Trim(*node, "<>"))

	type shapeStatus struct {
		Name     string `json:"name"`
		Conforms bool   `json:"conforms"`
	}
	x := core.NewExtractor(g, h)
	ex := core.NewExplanation(g)
	var statuses []shapeStatus
	for _, d := range defs {
		statuses = append(statuses, shapeStatus{
			Name:     d.Name.String(),
			Conforms: shaclfrag.Conforms(g, h, focus, d.Shape),
		})
		x.ExplainInto(ex, focus, d.Name, d.Shape)
	}
	annotated := ex.Annotated()

	if *diffName != "" {
		dd, err := pickDefs(h, *diffName)
		if err != nil {
			return err
		}
		other := core.NewExplanation(g)
		for _, d := range dd {
			x.ExplainInto(other, focus, d.Name, d.Shape)
		}
		annotated = shaclfrag.ExplainDiff(ex, other)
	}

	if *asJSON {
		type jsonTriple struct {
			S              string   `json:"s"`
			P              string   `json:"p"`
			O              string   `json:"o"`
			Justifications []string `json:"justifications"`
		}
		out := struct {
			Focus   string        `json:"focus"`
			Shapes  []shapeStatus `json:"shapes"`
			Triples []jsonTriple  `json:"triples"`
		}{Focus: focus.String(), Shapes: statuses, Triples: []jsonTriple{}}
		for _, at := range annotated {
			out.Triples = append(out.Triples, jsonTriple{
				S: at.Triple.S.String(), P: at.Triple.P.String(), O: at.Triple.O.String(),
				Justifications: at.Rendered,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("# focus %s; %d explained triples\n", focus, len(annotated))
	for _, st := range statuses {
		fmt.Printf("# shape %s conforms: %v\n", st.Name, st.Conforms)
	}
	if *diffName != "" {
		fmt.Printf("# diff: triples not justified under %q\n", *diffName)
	}
	for _, at := range annotated {
		fmt.Printf("%s %s %s .\n", at.Triple.S, at.Triple.P, at.Triple.O)
		for _, r := range at.Rendered {
			fmt.Printf("#   ⇐ %s\n", r)
		}
	}
	return nil
}

func cmdTranslate(args []string) error {
	fs := flag.NewFlagSet("translate", flag.ExitOnError)
	shapesPath := fs.String("shapes", "", "shapes graph (Turtle)")
	shapeName := fs.String("shape", "", "shape name (default: fragment query over all shapes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := loadSchema(*shapesPath)
	if err != nil {
		return err
	}
	if *shapeName != "" {
		phi, err := pickShape(h, *shapeName)
		if err != nil {
			return err
		}
		fmt.Print(shaclfrag.NeighborhoodSPARQL(h, phi))
		return nil
	}
	var requests []shaclfrag.Shape
	for _, d := range h.Definitions() {
		requests = append(requests, shape.AndOf(d.Shape, d.Target))
	}
	fmt.Print(shaclfrag.FragmentSPARQL(h, requests...))
	return nil
}

// cmdPlan disassembles the compiled instruction programs of a shapes graph
// and, when a data graph is given, shows the cost-based planner's strategy
// decision for each definition against that graph's cardinality stats.
func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	shapesPath := fs.String("shapes", "", "shapes graph (Turtle)")
	shapeName := fs.String("shape", "", "shape name (default: every definition)")
	dataPath := fs.String("data", "", "data graph (Turtle); enables strategy decisions")
	traced := fs.Bool("trace", false, "print the planning span tree (load, stats sampling, planning) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var trace *obs.SpanTrace
	var root *obs.Span
	if *traced {
		trace = obs.NewSpanTrace("plan", obs.SpanContext{})
		root = trace.Root()
	}
	loadSp := root.StartChild("load-shapes")
	h, err := loadSchema(*shapesPath)
	loadSp.End()
	if err != nil {
		return err
	}

	var sp *plan.SchemaPlan
	if *dataPath != "" {
		loadSp := root.StartChild("load-data")
		g, err := loadGraph(*dataPath)
		loadSp.End()
		if err != nil {
			return err
		}
		store.WarmDictionary(g, h)
		st, err := store.New(g, store.Config{})
		if err != nil {
			return err
		}
		statsSp := root.StartChild("sample-stats")
		stats := store.SampleStats(st.Current())
		statsSp.End()
		planSp := root.StartChild("plan-schema")
		sp = plan.PlanSchema(h, stats, plan.Config{})
		planSp.SetAttrInt("instructions", int64(sp.ProgramSet().NumInstrs()))
		planSp.End()
	}
	if trace != nil {
		// The remaining work is the per-definition disassembly loop; the
		// tree goes out after it so the root duration covers everything.
		defer func() {
			root.SetAttrInt("shapes", int64(h.Len()))
			root.End()
			trace.WriteTree(os.Stderr)
		}()
	}

	printed := 0
	for i, d := range h.Definitions() {
		if *shapeName != "" && d.Name.Value != *shapeName && !strings.HasSuffix(d.Name.Value, *shapeName) {
			continue
		}
		if printed > 0 {
			fmt.Println()
		}
		printed++
		fmt.Printf("== %s\n", d.Name)
		if sp != nil {
			dec := sp.Decisions[i]
			fmt.Printf("strategy: %s (%s)\n", dec.Strategy, dec.Reason)
			fmt.Printf("cost: plan=%.3g direct=%.3g sparql=%.3g memo=%dB\n",
				dec.CostPlan, dec.CostDirect, dec.CostSPARQL, dec.MemoBytes)
			fmt.Print(dec.Program)
			continue
		}
		fmt.Print(plan.Compile(shape.AndOf(d.Shape, d.Target), h))
	}
	if printed == 0 {
		return fmt.Errorf("no shape named %q in the shapes graph", *shapeName)
	}
	return nil
}

func cmdTPF(args []string) error {
	fs := flag.NewFlagSet("tpf", flag.ExitOnError)
	dataPath := fs.String("data", "", "data graph (Turtle)")
	patternText := fs.String("pattern", "", `triple pattern, e.g. '?x <http://x/p> ?y'`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pattern, err := parsePattern(*patternText)
	if err != nil {
		return err
	}
	g, err := loadGraph(*dataPath)
	if err != nil {
		return err
	}
	phi, ok := pattern.RequestShape()
	if ok {
		fmt.Printf("# request shape: %s\n", phi)
	} else {
		fmt.Printf("# not expressible as a shape fragment (Proposition 6.2)\n")
	}
	fmt.Print(shaclfrag.FormatNTriples(pattern.Eval(g)))
	return nil
}

func parsePattern(text string) (tpf.Pattern, error) {
	fields := strings.Fields(text)
	if len(fields) != 3 {
		return tpf.Pattern{}, fmt.Errorf("pattern must have three components, got %q", text)
	}
	pos := make([]tpf.Pos, 3)
	for i, f := range fields {
		switch {
		case strings.HasPrefix(f, "?"):
			pos[i] = tpf.V(strings.TrimPrefix(f, "?"))
		case strings.HasPrefix(f, "<") && strings.HasSuffix(f, ">"):
			pos[i] = tpf.C(rdf.NewIRI(strings.Trim(f, "<>")))
		case strings.HasPrefix(f, `"`):
			pos[i] = tpf.C(rdf.NewString(strings.Trim(f, `"`)))
		default:
			return tpf.Pattern{}, fmt.Errorf("cannot parse pattern component %q", f)
		}
	}
	return tpf.Pattern{S: pos[0], P: pos[1], O: pos[2]}, nil
}
