package main

import (
	"flag"
	"fmt"
	"os"

	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shapelint"
)

// cmdLint statically analyzes one or more SHACL shapes graphs and prints
// the linter's findings. Exit status is 1 if any file has error-severity
// findings, 0 otherwise (warnings alone do not fail the run).
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	shapesPath := fs.String("shapes", "", "shapes graph (Turtle); positional paths also accepted")
	quiet := fs.Bool("q", false, "print only per-file summary lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if *shapesPath != "" {
		files = append([]string{*shapesPath}, files...)
	}
	if len(files) == 0 {
		return fmt.Errorf("need -shapes or at least one shapes-graph path")
	}
	failed := false
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		_, diags, err := shaclsyn.LintSource(string(data))
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if !*quiet {
			for _, d := range diags {
				fmt.Printf("%s: %s\n", path, d)
			}
		}
		nErr := len(shapelint.Errors(diags))
		nWarn := shapelint.Count(diags, shapelint.Warning)
		fmt.Printf("%s: %d error(s), %d warning(s)\n", path, nErr, nWarn)
		if nErr > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	return nil
}
