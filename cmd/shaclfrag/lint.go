package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shapelint"
)

// lintFinding is one diagnostic in `lint -json` output. The schema is
// stable: fields are append-only and severities/codes follow shapelint's
// documented sets, so scripts can parse it without version checks.
type lintFinding struct {
	File     string `json:"file"`
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Shape    string `json:"shape"`
	Message  string `json:"message"`
	Detail   string `json:"detail,omitempty"`
}

// lintFileReport is the per-file envelope of `lint -json`.
type lintFileReport struct {
	File     string        `json:"file"`
	Findings []lintFinding `json:"findings"`
	Errors   int           `json:"errors"`
	Warnings int           `json:"warnings"`
}

// cmdLint statically analyzes one or more SHACL shapes graphs and prints
// the linter's findings. Exit status is 1 if any file has error-severity
// findings, 0 otherwise (warnings alone do not fail the run).
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	shapesPath := fs.String("shapes", "", "shapes graph (Turtle); positional paths also accepted")
	quiet := fs.Bool("q", false, "print only per-file summary lines")
	asJSON := fs.Bool("json", false, "emit findings as JSON (one report object per file)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if *shapesPath != "" {
		files = append([]string{*shapesPath}, files...)
	}
	if len(files) == 0 {
		return fmt.Errorf("need -shapes or at least one shapes-graph path")
	}
	failed := false
	var reports []lintFileReport
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		_, diags, err := shaclsyn.LintSource(string(data))
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		nErr := len(shapelint.Errors(diags))
		nWarn := shapelint.Count(diags, shapelint.Warning)
		if *asJSON {
			rep := lintFileReport{File: path, Findings: []lintFinding{}, Errors: nErr, Warnings: nWarn}
			for _, d := range diags {
				rep.Findings = append(rep.Findings, lintFinding{
					File:     path,
					Code:     d.Code,
					Severity: d.Severity.String(),
					Shape:    d.Shape.String(),
					Message:  d.Message,
					Detail:   d.Detail,
				})
			}
			reports = append(reports, rep)
		} else {
			if !*quiet {
				for _, d := range diags {
					fmt.Printf("%s: %s\n", path, d)
				}
			}
			fmt.Printf("%s: %d error(s), %d warning(s)\n", path, nErr, nWarn)
		}
		if nErr > 0 {
			failed = true
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	}
	if failed {
		os.Exit(1)
	}
	return nil
}
