// Command benchjson runs the repository's benchmark suite and writes one
// machine-readable snapshot per invocation, so benchmark results form a
// trajectory that scripts can diff across commits instead of a wall of
// text in a terminal scrollback.
//
// Usage:
//
//	benchjson [-bench <regexp>] [-benchtime 2s] [-count 1] [-pkg .] [-dir .]
//	benchjson -smoke [-bench <regexp>]
//
// It shells out to `go test -run ^$ -bench ... -benchmem`, parses the
// standard benchmark output, and writes BENCH_<n>.json into -dir (the
// repository root by default — the same place the trajectory is read
// from), where <n> is one past the highest existing snapshot index,
// starting at 1. Each snapshot
// carries the git SHA, the Go version, the benchtime, and per-benchmark
// name, iterations, ns/op, B/op and allocs/op.
//
// -smoke runs every benchmark once (-benchtime 1x), checks the output
// parses, and prints the resulting Snapshot JSON to stdout instead of
// writing a file — the CI hook that keeps the benchmarks compiling and the
// parser honest without paying for a full run. Smoke and full runs emit
// the same schema (including custom b.ReportMetric units under metrics),
// so trajectory tooling can consume either.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line. Custom b.ReportMetric series
// (any unit the standard pairs don't claim, e.g. triples/s from the
// sharded load benchmarks) are preserved under Metrics.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the schema of one BENCH_<n>.json file.
type Snapshot struct {
	GitSHA    string `json:"git_sha"`
	GoVersion string `json:"go_version"`
	Bench     string `json:"bench"`
	Benchtime string `json:"benchtime"`
	StartedAt string `json:"started_at"`
	// Meta carries run conditions the benchmark names alone don't encode
	// (-meta key=value, repeatable): typically the storage backend, shard
	// counts and triple scale of a store-tier sweep.
	Meta    map[string]string `json:"meta,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark name regexp, as for go test -bench")
	benchtime := flag.String("benchtime", "2s", "per-benchmark budget, as for go test -benchtime")
	count := flag.Int("count", 1, "runs per benchmark, as for go test -count")
	pkg := flag.String("pkg", ".", "package pattern holding the benchmarks")
	dir := flag.String("dir", ".", "output directory for BENCH_<n>.json snapshots (default: repo root, where the trajectory is read)")
	smoke := flag.Bool("smoke", false, "run each benchmark once, verify the output parses, write nothing")
	meta := map[string]string{}
	flag.Func("meta", "key=value annotation stored in the snapshot's meta block (repeatable; e.g. -meta backend=sharded -meta triples=10000000)", func(kv string) error {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return fmt.Errorf("want key=value, got %q", kv)
		}
		meta[k] = v
		return nil
	})
	flag.Parse()

	if *smoke {
		*benchtime = "1x"
	}
	out, err := runBenchmarks(*bench, *benchtime, *count, *pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n%s", err, out)
		os.Exit(1)
	}
	results := parseBenchOutput(string(out))
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark results matched -bench %q:\n%s", *bench, out)
		os.Exit(1)
	}

	snap := Snapshot{
		GitSHA:    gitSHA(),
		GoVersion: runtime.Version(),
		Bench:     *bench,
		Benchtime: *benchtime,
		StartedAt: time.Now().UTC().Format(time.RFC3339),
		Results:   results,
	}
	if len(meta) > 0 {
		snap.Meta = meta
	}
	if *smoke {
		// Same Snapshot schema as a full run — custom metrics included —
		// printed to stdout rather than written into the trajectory.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: smoke OK, %d benchmark(s) parsed\n", len(results))
		return
	}
	path, err := writeSnapshot(*dir, snap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks, git %s)\n", path, len(results), snap.GitSHA)
}

func runBenchmarks(bench, benchtime string, count int, pkg string) ([]byte, error) {
	gocmd := os.Getenv("GO")
	if gocmd == "" {
		gocmd = "go"
	}
	// -timeout=0: the per-benchmark budget is benchtime; the binary-wide
	// default of 10m would kill long scale runs (BenchmarkSharded10M).
	cmd := exec.Command(gocmd, "test", "-run", "^$", "-timeout", "0",
		"-bench", bench, "-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count), pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	return buf.Bytes(), err
}

// benchLine matches standard `go test -bench -benchmem` result lines:
//
//	BenchmarkName/sub-8  100  123456 ns/op  789 B/op  12 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBenchOutput extracts every benchmark result line from go test
// output, ignoring the surrounding goos/pkg/PASS chatter.
func parseBenchOutput(out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: m[1], Iterations: iters}
		// The tail is (value, unit) pairs; units beyond the standard three
		// are custom b.ReportMetric series, kept under Metrics.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			default:
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
					continue // non-finite values would break JSON encoding
				}
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[fields[i+1]] = f
			}
		}
		results = append(results, r)
	}
	return results
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// nextIndex returns one past the highest BENCH_<n>.json index in dir, so
// snapshots order by filename into a trajectory. The first snapshot is
// BENCH_1.json.
func nextIndex(dir string) int {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	next := 1
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		if n, err := strconv.Atoi(base); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

func writeSnapshot(dir string, snap Snapshot) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", nextIndex(dir)))
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
