package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: shaclfrag
cpu: Some CPU
BenchmarkFig1Validation/individuals=1000-8         	     100	  11234567 ns/op	  345678 B/op	    1234 allocs/op
BenchmarkFig1Extraction/individuals=1000-8          	      50	  22345678 ns/op	  456789 B/op	    2345 allocs/op
BenchmarkFragmentParallel/workers=4-8               	      10	 103456789.5 ns/op	 5678901 B/op	   34567 allocs/op
BenchmarkCustomMetric-8                             	    1000	      1234 ns/op	        17.0 frags/op	     128 B/op	       2 allocs/op
PASS
ok  	shaclfrag	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	results := parseBenchOutput(sampleOutput)
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkFig1Validation/individuals=1000-8" ||
		r.Iterations != 100 || r.NsPerOp != 11234567 ||
		r.BytesPerOp != 345678 || r.AllocsPerOp != 1234 {
		t.Errorf("first result mismatch: %+v", r)
	}
	// Fractional ns/op parses.
	if results[2].NsPerOp != 103456789.5 {
		t.Errorf("fractional ns/op: %+v", results[2])
	}
	// Custom ReportMetric series land under Metrics; the known pairs
	// around them still land in their own fields.
	c := results[3]
	if c.NsPerOp != 1234 || c.BytesPerOp != 128 || c.AllocsPerOp != 2 {
		t.Errorf("custom-metric line mismatch: %+v", c)
	}
	if got := c.Metrics["frags/op"]; got != 17 {
		t.Errorf("custom metric frags/op = %v, want 17: %+v", got, c)
	}
	if results[0].Metrics != nil {
		t.Errorf("standard line grew spurious metrics: %+v", results[0])
	}
	// Non-benchmark chatter contributes nothing.
	if got := parseBenchOutput("PASS\nok \tx\t1s\n"); len(got) != 0 {
		t.Errorf("chatter parsed as results: %+v", got)
	}
}

// TestParseSkipsNonFiniteMetrics guards the shared smoke/full schema: a
// NaN or Inf custom metric must be dropped rather than poison the JSON
// encoding of the snapshot.
func TestParseSkipsNonFiniteMetrics(t *testing.T) {
	out := "BenchmarkX-8 \t 10\t 100 ns/op\t NaN junk/op\t +Inf worse/op\t 3.5 good/op\n"
	results := parseBenchOutput(out)
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(results))
	}
	r := results[0]
	if _, ok := r.Metrics["junk/op"]; ok {
		t.Errorf("NaN metric kept: %+v", r)
	}
	if _, ok := r.Metrics["worse/op"]; ok {
		t.Errorf("Inf metric kept: %+v", r)
	}
	if r.Metrics["good/op"] != 3.5 {
		t.Errorf("finite metric lost: %+v", r)
	}
	if _, err := json.Marshal(Snapshot{Results: results}); err != nil {
		t.Errorf("snapshot with parsed metrics not encodable: %v", err)
	}
}

func TestSnapshotIndexing(t *testing.T) {
	dir := t.TempDir()
	if n := nextIndex(dir); n != 1 {
		t.Fatalf("empty dir index = %d, want 1", n)
	}
	snap := Snapshot{GitSHA: "abc", Results: parseBenchOutput(sampleOutput)}
	p0, err := writeSnapshot(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p0) != "BENCH_1.json" {
		t.Errorf("first snapshot at %s", p0)
	}
	p1, err := writeSnapshot(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_2.json" {
		t.Errorf("second snapshot at %s", p1)
	}
	// Gaps don't cause overwrites: the index is one past the maximum.
	if err := os.Remove(p0); err != nil {
		t.Fatal(err)
	}
	p2, err := writeSnapshot(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_3.json" {
		t.Errorf("post-gap snapshot at %s", p2)
	}

	// The written file round-trips through the documented schema.
	data, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.GitSHA != "abc" || len(got.Results) != 4 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}
