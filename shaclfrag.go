// Package shaclfrag is a Go implementation of data provenance for SHACL,
// reproducing "Data Provenance for SHACL" (EDBT 2023). It computes, for a
// node v conforming to a SHACL shape φ in an RDF graph G, the neighborhood
// B(v, G, φ): the subgraph of G that explains the conformance. The
// neighborhoods satisfy the provenance Sufficiency property (Theorem 3.4)
// and give rise to shape fragments — subgraph retrieval by shapes
// (Section 4).
//
// The package offers two computation strategies, mirroring Section 5 of
// the paper: direct extraction with an instrumented validation engine, and
// translation into SPARQL algebra (with concrete-syntax rendering).
//
// Basic usage:
//
//	g, _ := shaclfrag.ParseTurtle(dataTurtle)
//	h, _ := shaclfrag.ParseShapesGraph(shapesTurtle)
//	report := shaclfrag.Validate(g, h)
//	frag := shaclfrag.FragmentSchema(g, h) // provenance-backed subgraph
package shaclfrag

import (
	"sort"

	"shaclfrag/internal/core"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/sparql"
	"shaclfrag/internal/sparqltrans"
	"shaclfrag/internal/tpf"
	"shaclfrag/internal/turtle"
	"shaclfrag/internal/validator"
)

// Core data model.
type (
	// Term is an RDF term: IRI, blank node or literal.
	Term = rdf.Term
	// Triple is an RDF triple.
	Triple = rdf.Triple
	// Graph is an in-memory, indexed RDF graph.
	Graph = rdfgraph.Graph
	// Shape is a formal SHACL shape expression (Section 2 of the paper).
	Shape = shape.Shape
	// NodeTest is a test on a single node (the set Ω).
	NodeTest = shape.NodeTest
	// PathExpr is a SHACL property path expression.
	PathExpr = paths.Expr
	// Schema is a set of shape definitions (a formal shapes graph).
	Schema = schema.Schema
	// Definition is one shape definition (name, shape, target).
	Definition = schema.Definition
	// Report is a validation report.
	Report = schema.Report
	// ValidationResult is an instrumented validation outcome, including
	// extracted provenance when requested.
	ValidationResult = validator.Result
	// TriplePattern is a TPF triple pattern (Section 6.1).
	TriplePattern = tpf.Pattern
)

// Term constructors.
var (
	// IRI builds an IRI term.
	IRI = rdf.NewIRI
	// Blank builds a blank node term.
	Blank = rdf.NewBlank
	// String builds an xsd:string literal.
	String = rdf.NewString
	// LangString builds a language-tagged literal.
	LangString = rdf.NewLangString
	// Integer builds an xsd:integer literal.
	Integer = rdf.NewInteger
	// Decimal builds an xsd:decimal literal.
	Decimal = rdf.NewDecimal
	// TypedLiteral builds a literal with an explicit datatype.
	TypedLiteral = rdf.NewTypedLiteral
	// T builds a triple.
	T = rdf.T
)

// Shape constructors (the grammar of Section 2).
var (
	// True is ⊤.
	True = shape.TrueShape
	// False is ⊥.
	False = shape.FalseShape
	// HasValue is hasValue(c).
	HasValue = shape.Value
	// HasShape is hasShape(s).
	HasShape = shape.Ref
	// Test is test(t).
	Test = shape.NodeTestShape
	// MinCount is ≥n E.φ.
	MinCount = shape.Min
	// MaxCount is ≤n E.φ.
	MaxCount = shape.Max
	// ForAll is ∀E.φ.
	ForAll = shape.All
	// EqPath is eq(E, p); EqID is eq(id, p).
	EqPath = shape.EqPath
	// EqID is eq(id, p).
	EqID = shape.EqID
	// DisjPath is disj(E, p); DisjID is disj(id, p).
	DisjPath = shape.DisjPath
	// DisjID is disj(id, p).
	DisjID = shape.DisjID
	// Closed is closed(P).
	Closed = shape.ClosedShape
	// LessThan is lessThan(E, p).
	LessThan = shape.Less
	// LessThanEq is lessThanEq(E, p).
	LessThanEq = shape.LessEq
	// UniqueLang is uniqueLang(E).
	UniqueLang = shape.UniqueLangShape
	// MoreThan is moreThan(E, p), the Remark 2.3 extension.
	MoreThan = shape.More
	// MoreThanEq is moreThanEq(E, p).
	MoreThanEq = shape.MoreEq
	// Not is ¬φ.
	Not = shape.Neg
	// And is conjunction; Or is disjunction.
	And = shape.AndOf
	// Or is disjunction.
	Or = shape.OrOf
	// NNF rewrites a shape into negation normal form.
	NNF = shape.NNF
)

// Path expression constructors.
var (
	// Prop is an atomic property path.
	Prop = paths.P
	// Inverse is E⁻.
	Inverse = paths.Inv
	// SeqPath is E1/E2/…; AltPath is E1 ∪ E2 ∪ ….
	SeqPath = paths.SeqOf
	// AltPath is E1 ∪ E2 ∪ ….
	AltPath = paths.AltOf
	// ParsePath parses SPARQL-like property path syntax.
	ParsePath = paths.Parse
)

// Target constructors (the four real-SHACL target forms, all monotone).
var (
	// TargetNode targets a specific node.
	TargetNode = schema.TargetNode
	// TargetClass targets instances of a class (including subclasses).
	TargetClass = schema.TargetClass
	// TargetSubjectsOf targets subjects of a property.
	TargetSubjectsOf = schema.TargetSubjectsOf
	// TargetObjectsOf targets objects of a property.
	TargetObjectsOf = schema.TargetObjectsOf
)

// ParseShape parses the textual shape syntax (the paper's notation, ASCII
// or Unicode), e.g. ">=1 author.(>=1 type.hasValue(<http://x/Student>))".
// Bare property names expand with base.
func ParseShape(src, base string) (Shape, error) { return shape.Parse(src, base) }

// ParseTurtle parses a Turtle document into a graph.
func ParseTurtle(src string) (*Graph, error) { return turtle.Parse(src) }

// FormatNTriples serializes triples in canonical N-Triples form.
func FormatNTriples(ts []Triple) string { return turtle.FormatNTriples(ts) }

// FormatGraph serializes a graph in canonical N-Triples form.
func FormatGraph(g *Graph) string { return turtle.FormatGraph(g) }

// ParseShapesGraph parses a real SHACL shapes graph (Turtle) and translates
// it into a formal schema per Appendix A of the paper.
func ParseShapesGraph(src string) (*Schema, error) { return shaclsyn.ParseSchema(src) }

// FormatShapesGraph serializes a formal schema back into a real SHACL
// shapes graph in Turtle (the inverse of ParseShapesGraph). Shapes with no
// SHACL counterpart (moreThan/moreThanEq) are rejected.
func FormatShapesGraph(h *Schema) (string, error) { return shaclsyn.Format(h) }

// NewSchema builds a schema from definitions, rejecting duplicates and
// recursion.
func NewSchema(defs ...Definition) (*Schema, error) { return schema.New(defs...) }

// Validate checks whether g conforms to h and reports per-node results.
func Validate(g *Graph, h *Schema) *Report { return h.Validate(g) }

// ValidateWithProvenance validates and simultaneously extracts the
// neighborhoods of all conforming targeted nodes (the instrumented-engine
// strategy of Section 5.2). The union of the neighborhoods is Frag(G, H).
func ValidateWithProvenance(g *Graph, h *Schema) *ValidationResult {
	return validator.Validate(g, h, validator.Options{CollectProvenance: true, PerNode: true})
}

// Neighborhood computes B(v, G, φ), the provenance of v conforming to φ.
// The schema may be nil when φ contains no hasShape references. The result
// is empty when v does not conform.
func Neighborhood(g *Graph, h *Schema, v Term, phi Shape) []Triple {
	return core.Neighborhood(g, defsOrNil(h), v, phi)
}

// WhyNot computes B(v, G, ¬φ): the explanation of non-conformance
// (Remark 3.7). Empty when v conforms.
func WhyNot(g *Graph, h *Schema, v Term, phi Shape) []Triple {
	return core.NewExtractor(g, defsOrNil(h)).WhyNot(v, phi)
}

// Conforms reports H, G, v ⊨ φ.
func Conforms(g *Graph, h *Schema, v Term, phi Shape) bool {
	return shape.NewEvaluator(g, defsOrNil(h)).ConformsTerm(v, phi)
}

// Fragment computes Frag(G, S) for request shapes S: the union of all
// neighborhoods of all nodes, a provenance-backed subgraph of G.
func Fragment(g *Graph, h *Schema, requests ...Shape) []Triple {
	return core.Fragment(g, defsOrNil(h), requests...)
}

// FragmentSchema computes Frag(G, H), requesting φ ∧ τ for every
// definition. If G conforms to H (with monotone targets), so does the
// fragment (Theorem 4.1).
func FragmentSchema(g *Graph, h *Schema) []Triple {
	return core.FragmentSchema(g, h)
}

// Provenance attribution: per-triple explain traces.
type (
	// Explanation maps each neighborhood triple to the ordered list of
	// justifications (Table 2 rule firings) that pulled it in.
	Explanation = core.Explanation
	// AnnotatedTriple pairs a triple with its justifications, rendered
	// deterministically.
	AnnotatedTriple = core.AnnotatedTriple
	// Justification records one Table 2 rule firing: shape, constraint,
	// focus node and (for path-traced triples) the automaton step.
	Justification = core.Justification
)

// Explain computes B(v, G, φ) with attribution: the result holds exactly
// the neighborhood's triples, each annotated with every rule firing that
// emitted it. Justifications carry shape-definition names when extraction
// recurses through hasShape atoms.
func Explain(g *Graph, h *Schema, v Term, phi Shape) *Explanation {
	return core.NewExtractor(g, defsOrNil(h)).Explain(v, rdf.Term{}, phi)
}

// ExplainDiff reports the triples present in a but absent from b, each
// with a's justifications — which constraints account for one fragment's
// extra triples over another's. Both must be computed over the same graph.
func ExplainDiff(a, b *Explanation) []AnnotatedTriple { return core.ExplainDiff(a, b) }

// defsOrNil avoids a typed-nil Defs interface when no schema is given.
func defsOrNil(h *Schema) shape.Defs {
	if h == nil {
		return nil
	}
	return h
}

// NeighborhoodSPARQL renders the SPARQL query Q_φ(?v,?s,?p,?o) computing
// all neighborhoods for φ (Proposition 5.3).
func NeighborhoodSPARQL(h *Schema, phi Shape) string {
	tr := sparqltrans.New(defsOrNil(h))
	return sparql.Render(tr.Neighborhood(phi, "v", "s", "p", "o"), "v", "s", "p", "o")
}

// FragmentSPARQL renders the SPARQL query Q_S(?s,?p,?o) computing
// Frag(G, S) (Corollary 5.5).
func FragmentSPARQL(h *Schema, requests ...Shape) string {
	tr := sparqltrans.New(defsOrNil(h))
	return sparql.Render(tr.FragmentQuery(requests, "s", "p", "o"), "s", "p", "o")
}

// FragmentViaSPARQL computes Frag(G, S) by building and evaluating the
// SPARQL translation instead of the direct extractor — the strategy of
// Section 5.1. The two strategies agree (and are property-tested to).
func FragmentViaSPARQL(g *Graph, h *Schema, requests ...Shape) []Triple {
	tr := sparqltrans.New(defsOrNil(h))
	op := tr.FragmentQuery(requests, "s", "p", "o")
	var out []Triple
	for _, row := range sparql.Select(op, g, "s", "p", "o") {
		s, okS := row["s"]
		p, okP := row["p"]
		o, okO := row["o"]
		if okS && okP && okO {
			out = append(out, rdf.T(s, p, o))
		}
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTriples(out[i], out[j]) < 0 })
	return out
}

// TPFVar and TPFConst build triple pattern positions.
var (
	// TPFVar is a variable position of a triple pattern.
	TPFVar = tpf.V
	// TPFConst is a constant position of a triple pattern.
	TPFConst = tpf.C
)

// TPFRequestShape maps a triple pattern to an equivalent request shape per
// Proposition 6.2, reporting whether the pattern is expressible.
func TPFRequestShape(p TriplePattern) (Shape, bool) { return p.RequestShape() }
