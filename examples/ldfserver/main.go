// Ldfserver: a Linked-Data-Fragments-style HTTP interface (Section 7 and
// Figure 4 of the paper position shape fragments between Triple Pattern
// Fragments and full SPARQL endpoints). The server hosts a synthetic
// tourism graph and answers:
//
//	GET /validate                   — validation report for the hosted schema
//	GET /fragment?shape=<name>      — the shape fragment of one definition
//	GET /fragment                   — Frag(G, H) for the whole schema
//	GET /tpf?s=&p=&o=               — a triple pattern fragment
//
// By default it binds an ephemeral port, issues demo requests against
// itself, and exits; run with -serve to keep it listening.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"

	shaclfrag "shaclfrag"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/tpf"
)

type server struct {
	graph  *shaclfrag.Graph
	schema *shaclfrag.Schema
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /validate", s.handleValidate)
	mux.HandleFunc("GET /fragment", s.handleFragment)
	mux.HandleFunc("GET /tpf", s.handleTPF)
	return mux
}

func (s *server) handleValidate(w http.ResponseWriter, _ *http.Request) {
	report := shaclfrag.Validate(s.graph, s.schema)
	fmt.Fprintf(w, "conforms: %v\nfocus nodes: %d\nviolations: %d\n",
		report.Conforms, report.TargetedNodes, len(report.Violations()))
}

func (s *server) handleFragment(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("shape")
	var triples []shaclfrag.Triple
	if name == "" {
		triples = shaclfrag.FragmentSchema(s.graph, s.schema)
	} else {
		var def *schema.Definition
		for i, d := range s.schema.Definitions() {
			if strings.HasSuffix(d.Name.Value, name) {
				def = &s.schema.Definitions()[i]
				break
			}
		}
		if def == nil {
			http.Error(w, "unknown shape "+name, http.StatusNotFound)
			return
		}
		triples = shaclfrag.Fragment(s.graph, s.schema, shape.AndOf(def.Shape, def.Target))
	}
	w.Header().Set("Content-Type", "application/n-triples")
	io.WriteString(w, shaclfrag.FormatNTriples(triples))
}

func (s *server) handleTPF(w http.ResponseWriter, r *http.Request) {
	pos := func(raw, fallback string) tpf.Pos {
		switch {
		case raw == "":
			return tpf.V(fallback)
		case strings.HasPrefix(raw, "?"):
			return tpf.V(strings.TrimPrefix(raw, "?"))
		default:
			return tpf.C(rdf.NewIRI(strings.Trim(raw, "<>")))
		}
	}
	q := r.URL.Query()
	pattern := tpf.Pattern{
		S: pos(q.Get("s"), "s"),
		P: pos(q.Get("p"), "p"),
		O: pos(q.Get("o"), "o"),
	}
	if phi, ok := pattern.RequestShape(); ok {
		w.Header().Set("X-Request-Shape", phi.String())
	}
	w.Header().Set("Content-Type", "application/n-triples")
	io.WriteString(w, shaclfrag.FormatNTriples(pattern.Eval(s.graph)))
}

func main() {
	serve := flag.Bool("serve", false, "keep serving instead of running the demo requests")
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	individuals := flag.Int("individuals", 300, "size of the hosted synthetic graph")
	flag.Parse()

	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: *individuals, Seed: 1})
	defs := datagen.BenchmarkShapes()[:8]
	srv := &server{graph: g, schema: schema.MustNew(defs...)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hosting %d triples at http://%s\n", g.Len(), ln.Addr())
	httpServer := &http.Server{Handler: srv.routes()}
	if *serve {
		if err := httpServer.Serve(ln); err != nil {
			panic(err)
		}
		return
	}
	go httpServer.Serve(ln) //nolint:errcheck — shut down by process exit

	base := "http://" + ln.Addr().String()
	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if h := resp.Header.Get("X-Request-Shape"); h != "" {
			return "request shape: " + h + "\n" + string(body)
		}
		return string(body)
	}
	fmt.Println("\nGET /validate")
	fmt.Print(get("/validate"))

	frag := get("/fragment?shape=S01")
	fmt.Printf("\nGET /fragment?shape=S01 → %d triples\n", strings.Count(frag, "\n"))

	tpfQuery := "/tpf?s=&p=" + url.QueryEscape("<"+datagen.PropName+">") + "&o="
	tpfResult := get(tpfQuery)
	lines := strings.SplitN(tpfResult, "\n", 3)
	fmt.Printf("\nGET /tpf (all name triples) → %d triples, e.g.:\n%s\n",
		strings.Count(tpfResult, "\n")-1, lines[0])
}
