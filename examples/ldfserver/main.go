// Ldfserver: a Linked-Data-Fragments-style HTTP demo (Section 7 and
// Figure 4 of the paper position shape fragments between Triple Pattern
// Fragments and full SPARQL endpoints). It is a thin client of the
// internal/fragserver subsystem — cmd/fragserver is the production entry
// point; this example hosts a small synthetic tourism graph, issues a demo
// request against every endpoint, and exits (run with -serve to keep it
// listening):
//
//	GET /validate                   — validation report for the hosted schema
//	GET /fragment                   — Frag(G, H) for the whole schema
//	GET /fragment?shape=<name>      — the shape fragment of one definition
//	GET /node?iri=<iri>&shape=<n>   — the neighborhood B(v, G, φ) of one node
//	GET /tpf?s=&p=&o=               — a triple pattern fragment
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/fragserver"
	"shaclfrag/internal/schema"
)

func main() {
	serve := flag.Bool("serve", false, "keep serving instead of running the demo requests")
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	individuals := flag.Int("individuals", 300, "size of the hosted synthetic graph")
	flag.Parse()

	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: *individuals, Seed: 1})
	defs := datagen.BenchmarkShapes()[:8]
	srv, err := fragserver.New(fragserver.Config{
		Graph:  g,
		Schema: schema.MustNew(defs...),
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)), // quiet demo
	})
	if err != nil {
		panic(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hosting %d triples at http://%s\n", g.Len(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *serve {
		if err := srv.Serve(ctx, ln, 0); err != nil {
			panic(err)
		}
		return
	}

	done := make(chan error, 1)
	serveCtx, cancel := context.WithCancel(ctx)
	go func() { done <- srv.Serve(serveCtx, ln, 0) }()

	base := "http://" + ln.Addr().String()
	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if h := resp.Header.Get("X-Request-Shape"); h != "" {
			return "request shape: " + h + "\n" + string(body)
		}
		return string(body)
	}

	fmt.Println("\nGET /validate")
	fmt.Print(get("/validate"))

	frag := get("/fragment?shape=S01")
	fmt.Printf("\nGET /fragment?shape=S01 → %d triples\n", strings.Count(frag, "\n"))

	focus := strings.SplitN(frag, " ", 2)[0] // some subject of the fragment
	if strings.HasPrefix(focus, "<") {
		nodePath := "/node?iri=" + url.QueryEscape(focus) + "&shape=S01"
		node := get(nodePath)
		fmt.Printf("\nGET /node?iri=%s&shape=S01 → %d triples\n", focus, strings.Count(node, "\n"))
	}

	tpfQuery := "/tpf?s=&p=" + url.QueryEscape("<"+datagen.PropName+">") + "&o="
	tpfResult := get(tpfQuery)
	lines := strings.SplitN(tpfResult, "\n", 3)
	fmt.Printf("\nGET /tpf (all name triples) → %d triples, e.g.:\n%s\n",
		strings.Count(tpfResult, "\n")-1, lines[0])

	cancel() // trigger graceful shutdown, draining in-flight requests
	if err := <-done; err != nil {
		panic(err)
	}
}
