// Whynot: debugging constraint violations with why-not provenance
// (Remark 3.7 of the paper). A lodging catalogue has several constraints;
// for every violation the program extracts B(v, G, ¬φ) — the exact triples
// responsible for the failure — instead of a bare "node violates shape".
package main

import (
	"fmt"

	shaclfrag "shaclfrag"
)

const data = `
@prefix ex: <http://lodging.example/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .

ex:alpenhof rdf:type ex:Hotel ;
    ex:name "Alpenhof"@de , "Alpenhof Inn"@en ;
    ex:checkin 14 ; ex:checkout 11 .

ex:grandhotel rdf:type ex:Hotel ;
    ex:name "Grand"@en , "Grander"@en ;   # duplicate language tag
    ex:checkin 15 ; ex:checkout 10 .

ex:fleabag rdf:type ex:Hotel ;
    ex:name "Fleabag"@en ;
    ex:checkin 10 ; ex:checkout 12 ;      # checkout before checkin? no: 10 < 12 is fine...
    ex:rating 11 .                        # ...but the rating is out of range
`

const shapes = `
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://lodging.example/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:HotelShape a sh:NodeShape ;
    sh:targetClass ex:Hotel ;
    sh:property [ sh:path ex:name ; sh:uniqueLang true ] ;
    sh:property [ sh:path ex:checkout ; sh:lessThan ex:checkin ] ;
    sh:property [ sh:path ex:rating ; sh:maxInclusive 5 ] .
`

func main() {
	g, err := shaclfrag.ParseTurtle(data)
	if err != nil {
		panic(err)
	}
	h, err := shaclfrag.ParseShapesGraph(shapes)
	if err != nil {
		panic(err)
	}
	report := shaclfrag.Validate(g, h)
	fmt.Printf("conforms: %v — %d focus nodes, %d violations\n\n",
		report.Conforms, report.TargetedNodes, len(report.Violations()))

	def := h.Definitions()[0]
	for _, r := range report.Results {
		if r.Conforms {
			fmt.Printf("%s conforms; evidence B(v, G, φ):\n", r.Focus)
			fmt.Print(shaclfrag.FormatNTriples(shaclfrag.Neighborhood(g, h, r.Focus, def.Shape)))
		} else {
			fmt.Printf("%s VIOLATES; why-not provenance B(v, G, ¬φ):\n", r.Focus)
			fmt.Print(shaclfrag.FormatNTriples(shaclfrag.WhyNot(g, h, r.Focus, def.Shape)))
		}
		fmt.Println()
	}
}
