// Quickstart: validate a publication graph against the paper's
// WorkshopShape (Example 1.1), extract the provenance of a conforming
// paper (Example 1.2), and compute the shape fragment of the whole graph
// (Example 1.3).
package main

import (
	"fmt"

	shaclfrag "shaclfrag"
)

const data = `
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .

ex:paper1 rdf:type ex:Paper ;
    ex:author ex:anne , ex:bob .
ex:paper2 rdf:type ex:Paper ;
    ex:author ex:anne .
ex:anne rdf:type ex:Professor .
ex:bob  rdf:type ex:Student .

# Unrelated facts the fragment should drop.
ex:venue1 ex:city ex:ghent .
`

const shapes = `
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .

# "Every paper has at least one author of type Student."
ex:WorkshopShape a sh:NodeShape ;
    sh:targetClass ex:Paper ;
    sh:property [
        sh:path ex:author ; sh:qualifiedMinCount 1 ;
        sh:qualifiedValueShape [ sh:class ex:Student ] ] .
`

func main() {
	g, err := shaclfrag.ParseTurtle(data)
	if err != nil {
		panic(err)
	}
	h, err := shaclfrag.ParseShapesGraph(shapes)
	if err != nil {
		panic(err)
	}

	// 1. Validation: paper2 has no student author.
	report := shaclfrag.Validate(g, h)
	fmt.Printf("graph conforms: %v\n", report.Conforms)
	for _, v := range report.Violations() {
		fmt.Printf("  violation: %s does not conform to %s\n", v.Focus, v.ShapeName)
	}

	// 2. Provenance: why does paper1 conform? B(paper1, G, WorkshopShape).
	def := h.Definitions()[0]
	paper1 := shaclfrag.IRI("http://example.org/paper1")
	fmt.Println("\nneighborhood of paper1 (why it conforms):")
	fmt.Print(shaclfrag.FormatNTriples(shaclfrag.Neighborhood(g, h, paper1, def.Shape)))

	// 3. Why-not provenance: why does paper2 fail? B(paper2, G, ¬shape).
	paper2 := shaclfrag.IRI("http://example.org/paper2")
	fmt.Println("\nwhy-not provenance of paper2 (why it fails):")
	why := shaclfrag.WhyNot(g, h, paper2, def.Shape)
	if len(why) == 0 {
		fmt.Println("  (empty: the failure is the *absence* of a student author)")
	}
	fmt.Print(shaclfrag.FormatNTriples(why))

	// 4. Shape fragment: the provenance-backed subgraph for the schema.
	fmt.Println("\nshape fragment Frag(G, H):")
	fmt.Print(shaclfrag.FormatNTriples(shaclfrag.FragmentSchema(g, h)))
	fmt.Println("\n(note: ex:venue1 and paper2's data are gone; the fragment")
	fmt.Println(" still validates against the schema — Theorem 4.1)")
}
