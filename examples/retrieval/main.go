// Retrieval: shapes as a data retrieval language (Section 4 of the paper).
// A coauthorship graph is queried with request shapes — including the
// "hub at coauthor distance ≤ 3" analytic query of Figure 3 — and the
// same fragments are recomputed through the SPARQL translation
// (Section 5.1), demonstrating that both strategies agree. The generated
// SPARQL text is printed for one query.
package main

import (
	"fmt"
	"strings"

	shaclfrag "shaclfrag"
	"shaclfrag/internal/datagen"
)

func main() {
	// A small synthetic DBLP-style corpus with a prolific hub author.
	corpus := datagen.NewCoauthor(datagen.CoauthorConfig{Papers: 120, Seed: 7, HubRate: 0.08})
	g := corpus.Graph(2015)
	fmt.Printf("coauthorship slice since 2015: %d triples\n\n", g.Len())

	// Request 1: all authorship triples (a TPF-style scan, Section 6.1).
	authored := shaclfrag.MinCount(1, shaclfrag.Prop(datagen.PropAuthoredBy), shaclfrag.True())
	frag := shaclfrag.Fragment(g, nil, authored)
	fmt.Printf("request ≥1 authoredBy.⊤ retrieves %d triples (all authorship edges)\n", len(frag))

	// Request 2: papers written by the hub author, with the evidence path.
	hubPapers := shaclfrag.MinCount(1, shaclfrag.Prop(datagen.PropAuthoredBy),
		shaclfrag.HasValue(datagen.HubAuthor))
	frag = shaclfrag.Fragment(g, nil, hubPapers)
	fmt.Printf("request ≥1 authoredBy.hasValue(hub) retrieves %d triples (the hub's papers)\n", len(frag))

	// Request 3: the Figure 3 analytic query — every authorship triple on a
	// coauthor path of length ≤ 3 to the hub.
	dist3 := datagen.HubDistance3Shape()
	direct := shaclfrag.Fragment(g, nil, dist3)
	fmt.Printf("hub-distance-3 fragment: %d triples\n", len(direct))

	// The same fragment through the SPARQL translation (Corollary 5.5).
	viaSPARQL := shaclfrag.FragmentViaSPARQL(g, nil, dist3)
	fmt.Printf("same fragment via SPARQL translation: %d triples (agree: %v)\n\n",
		len(viaSPARQL), len(direct) == len(viaSPARQL))

	// Show (the first lines of) the generated SPARQL for request 2.
	query := shaclfrag.FragmentSPARQL(nil, hubPapers)
	lines := strings.Split(query, "\n")
	total := len(lines)
	if len(lines) > 14 {
		lines = lines[:14]
	}
	fmt.Printf("generated SPARQL for request 2 (%d lines total):\n%s\n  ...\n",
		total, strings.Join(lines, "\n"))
}
