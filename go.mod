module shaclfrag

go 1.22
