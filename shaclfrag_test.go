package shaclfrag_test

import (
	"strings"
	"testing"

	shaclfrag "shaclfrag"
)

const dataTurtle = `
@prefix ex: <http://x/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:p1 rdf:type ex:Paper ; ex:author ex:anne , ex:bob .
ex:anne rdf:type ex:Professor .
ex:bob rdf:type ex:Student .
ex:unrelated ex:madeOf ex:cheese .
`

const shapesTurtle = `
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://x/> .
ex:WorkshopShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [
    sh:path ex:author ; sh:qualifiedMinCount 1 ;
    sh:qualifiedValueShape [ sh:class ex:Student ] ] .
`

func TestFacadeEndToEnd(t *testing.T) {
	g, err := shaclfrag.ParseTurtle(dataTurtle)
	if err != nil {
		t.Fatal(err)
	}
	h, err := shaclfrag.ParseShapesGraph(shapesTurtle)
	if err != nil {
		t.Fatal(err)
	}
	report := shaclfrag.Validate(g, h)
	if !report.Conforms {
		t.Fatalf("graph must conform: %+v", report.Violations())
	}
	frag := shaclfrag.FragmentSchema(g, h)
	if len(frag) != 3 {
		t.Fatalf("fragment = %v, want 3 triples (typing, author, student)", frag)
	}
	nt := shaclfrag.FormatNTriples(frag)
	if strings.Contains(nt, "cheese") {
		t.Error("unrelated data must be excluded from the fragment")
	}
	// The fragment still conforms (Theorem 4.1).
	fragGraph, err := shaclfrag.ParseTurtle(nt)
	if err != nil {
		t.Fatal(err)
	}
	if !shaclfrag.Validate(fragGraph, h).Conforms {
		t.Error("fragment must conform to the schema")
	}
}

func TestFacadeNeighborhoodAndWhyNot(t *testing.T) {
	g, _ := shaclfrag.ParseTurtle(dataTurtle)
	phi := shaclfrag.MinCount(1, shaclfrag.Prop("http://x/author"),
		shaclfrag.MinCount(1, shaclfrag.Prop("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
			shaclfrag.HasValue(shaclfrag.IRI("http://x/Student"))))
	p1 := shaclfrag.IRI("http://x/p1")
	if !shaclfrag.Conforms(g, nil, p1, phi) {
		t.Fatal("p1 must conform")
	}
	n := shaclfrag.Neighborhood(g, nil, p1, phi)
	if len(n) != 2 {
		t.Fatalf("neighborhood = %v, want 2 triples", n)
	}
	if why := shaclfrag.WhyNot(g, nil, p1, phi); len(why) != 0 {
		t.Errorf("WhyNot of conforming node must be empty, got %v", why)
	}
	anne := shaclfrag.IRI("http://x/anne")
	why := shaclfrag.WhyNot(g, nil, anne, phi)
	if len(why) != 0 {
		// anne has no author edges at all, so ¬φ = ≤0 author.… holds with
		// an empty witness set.
		t.Errorf("WhyNot(anne) = %v, want empty (vacuous non-conformance)", why)
	}
}

func TestFacadeValidateWithProvenance(t *testing.T) {
	g, _ := shaclfrag.ParseTurtle(dataTurtle)
	h, _ := shaclfrag.ParseShapesGraph(shapesTurtle)
	res := shaclfrag.ValidateWithProvenance(g, h)
	if !res.Report.Conforms {
		t.Fatal("must conform")
	}
	if len(res.Fragment) != 3 {
		t.Fatalf("fragment = %v", res.Fragment)
	}
	if len(res.PerNode) == 0 {
		t.Fatal("per-node provenance missing")
	}
	found := false
	for _, pn := range res.PerNode {
		if pn.Focus == shaclfrag.IRI("http://x/p1") && len(pn.Triples) == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("per-node provenance for p1 missing: %+v", res.PerNode)
	}
}

func TestFacadeSPARQLStrategies(t *testing.T) {
	g, _ := shaclfrag.ParseTurtle(dataTurtle)
	phi := shaclfrag.MinCount(1, shaclfrag.Prop("http://x/author"), shaclfrag.True())
	direct := shaclfrag.Fragment(g, nil, phi)
	viaSPARQL := shaclfrag.FragmentViaSPARQL(g, nil, phi)
	if len(direct) != len(viaSPARQL) {
		t.Fatalf("strategies disagree: direct %v vs SPARQL %v", direct, viaSPARQL)
	}
	text := shaclfrag.FragmentSPARQL(nil, phi)
	if !strings.Contains(text, "SELECT ?s ?p ?o") {
		t.Errorf("query text: %s", text)
	}
	ntext := shaclfrag.NeighborhoodSPARQL(nil, phi)
	if !strings.Contains(ntext, "SELECT ?v ?s ?p ?o") {
		t.Errorf("neighborhood query text: %s", ntext)
	}
}

func TestFacadeTPF(t *testing.T) {
	pattern := shaclfrag.TriplePattern{
		S: shaclfrag.TPFVar("x"),
		P: shaclfrag.TPFConst(shaclfrag.IRI("http://x/author")),
		O: shaclfrag.TPFVar("y"),
	}
	phi, ok := shaclfrag.TPFRequestShape(pattern)
	if !ok {
		t.Fatal("(?x, author, ?y) must be expressible")
	}
	g, _ := shaclfrag.ParseTurtle(dataTurtle)
	frag := shaclfrag.Fragment(g, nil, phi)
	if len(frag) != 2 {
		t.Fatalf("fragment = %v, want the 2 author triples", frag)
	}
}

func TestFacadeParsePath(t *testing.T) {
	e, err := shaclfrag.ParsePath("author/^author", "http://x/")
	if err != nil {
		t.Fatal(err)
	}
	g, _ := shaclfrag.ParseTurtle(dataTurtle)
	// co-paper relation: p1 is its own co-paper.
	phi := shaclfrag.MinCount(1, e, shaclfrag.HasValue(shaclfrag.IRI("http://x/p1")))
	if !shaclfrag.Conforms(g, nil, shaclfrag.IRI("http://x/p1"), phi) {
		t.Error("p1 must reach itself via author/^author")
	}
}

func TestFacadeFormatShapesGraph(t *testing.T) {
	h, _ := shaclfrag.ParseShapesGraph(shapesTurtle)
	out, err := shaclfrag.FormatShapesGraph(h)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := shaclfrag.ParseShapesGraph(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	g, _ := shaclfrag.ParseTurtle(dataTurtle)
	if shaclfrag.Validate(g, h).Conforms != shaclfrag.Validate(g, h2).Conforms {
		t.Error("serialization round trip changed validation outcome")
	}
}

func TestFacadeParseShape(t *testing.T) {
	phi, err := shaclfrag.ParseShape(">=1 author.top", "http://x/")
	if err != nil {
		t.Fatal(err)
	}
	g, _ := shaclfrag.ParseTurtle(dataTurtle)
	frag := shaclfrag.Fragment(g, nil, phi)
	if len(frag) != 2 {
		t.Fatalf("fragment = %v, want the 2 author triples", frag)
	}
}
