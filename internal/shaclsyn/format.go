package shaclsyn

import (
	"fmt"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// Format serializes a formal schema back into a real SHACL shapes graph in
// Turtle — the inverse direction of the Appendix A translation. Every shape
// constructible through this package's parser round-trips semantically;
// constructs with no SHACL counterpart (moreThan, moreThanEq) are rejected.
func Format(h *schema.Schema) (string, error) {
	w := &shaclWriter{refs: map[rdf.Term]bool{}, rename: map[rdf.Term]string{}}
	// Blank-node shape names are renamed to a reserved label space so they
	// cannot collide with the labels a Turtle parser invents for the
	// bracketed nodes in our own output.
	for i, d := range h.Definitions() {
		w.refs[d.Name] = true
		if d.Name.IsBlank() {
			w.rename[d.Name] = fmt.Sprintf("_:s%d", i+1)
		}
	}
	for _, d := range h.Definitions() {
		if err := w.definition(d); err != nil {
			return "", err
		}
	}
	var b strings.Builder
	b.WriteString("@prefix sh: <http://www.w3.org/ns/shacl#> .\n")
	b.WriteString("@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .\n\n")
	b.WriteString(w.out.String())
	return b.String(), nil
}

type shaclWriter struct {
	out    strings.Builder
	fresh  int
	refs   map[rdf.Term]bool
	rename map[rdf.Term]string
}

func (w *shaclWriter) blank() string {
	w.fresh++
	return fmt.Sprintf("_:f%d", w.fresh)
}

func (w *shaclWriter) termRef(t rdf.Term) string {
	if renamed, ok := w.rename[t]; ok {
		return renamed
	}
	if t.IsBlank() {
		return "_:" + t.Value
	}
	return t.String()
}

// definition emits one shape definition: node shape triples plus targets.
func (w *shaclWriter) definition(d schema.Definition) error {
	subject := w.termRef(d.Name)
	fmt.Fprintf(&w.out, "%s a sh:NodeShape .\n", subject)
	if err := w.targets(subject, d.Target); err != nil {
		return err
	}
	if err := w.nodeShapeBody(subject, d.Shape); err != nil {
		return err
	}
	w.out.WriteString("\n")
	return nil
}

// targets recognizes the four real-SHACL target forms (and disjunctions of
// them); ⊥ means no target.
func (w *shaclWriter) targets(subject string, tau shape.Shape) error {
	switch x := tau.(type) {
	case *shape.False:
		return nil
	case *shape.Or:
		for _, alt := range x.Xs {
			if err := w.targets(subject, alt); err != nil {
				return err
			}
		}
		return nil
	case *shape.HasValue:
		fmt.Fprintf(&w.out, "%s sh:targetNode %s .\n", subject, x.C)
		return nil
	case *shape.MinCount:
		if x.N != 1 {
			break
		}
		if hv, ok := x.X.(*shape.HasValue); ok {
			// Class target: ≥1 rdf:type/rdfs:subClassOf*.hasValue(c).
			if seq, ok := x.Path.(paths.Seq); ok {
				if p, ok := seq.Left.(paths.Prop); ok && p.IRI == rdf.RDFType {
					if st, ok := seq.Right.(paths.Star); ok {
						if sp, ok := st.X.(paths.Prop); ok && sp.IRI == rdf.RDFSSubClassOf {
							fmt.Fprintf(&w.out, "%s sh:targetClass %s .\n", subject, hv.C)
							return nil
						}
					}
				}
			}
		}
		if _, ok := x.X.(*shape.True); ok {
			switch p := x.Path.(type) {
			case paths.Prop:
				fmt.Fprintf(&w.out, "%s sh:targetSubjectsOf <%s> .\n", subject, p.IRI)
				return nil
			case paths.Inverse:
				if ip, ok := p.X.(paths.Prop); ok {
					fmt.Fprintf(&w.out, "%s sh:targetObjectsOf <%s> .\n", subject, ip.IRI)
					return nil
				}
			}
		}
	}
	return fmt.Errorf("shaclsyn: target %s is not a real-SHACL target form", tau)
}

// nodeShapeBody emits the constraint triples of φ onto the node shape
// subject.
func (w *shaclWriter) nodeShapeBody(subject string, phi shape.Shape) error {
	switch x := phi.(type) {
	case *shape.True:
		return nil
	case *shape.False:
		// ⊥ as sh:not [ ] — an empty node shape is ⊤, so ¬⊤ is ⊥... an
		// empty shape conforms everywhere; use sh:in () instead.
		fmt.Fprintf(&w.out, "%s sh:in () .\n", subject)
		return nil
	case *shape.And:
		for _, c := range x.Xs {
			if err := w.nodeShapeBody(subject, c); err != nil {
				return err
			}
		}
		return nil
	case *shape.Or:
		members, err := w.shapeList(x.Xs)
		if err != nil {
			return err
		}
		fmt.Fprintf(&w.out, "%s sh:or %s .\n", subject, members)
		return nil
	case *shape.Not:
		inner, err := w.anonShape(x.X)
		if err != nil {
			return err
		}
		fmt.Fprintf(&w.out, "%s sh:not %s .\n", subject, inner)
		return nil
	case *shape.HasShape:
		fmt.Fprintf(&w.out, "%s sh:node %s .\n", subject, w.termRef(x.Name))
		if !w.refs[x.Name] {
			// Referenced but undefined shapes behave as ⊤; make the
			// reference well-formed by declaring an empty node shape.
			w.refs[x.Name] = true
			fmt.Fprintf(&w.out, "%s a sh:NodeShape .\n", w.termRef(x.Name))
		}
		return nil
	case *shape.HasValue:
		fmt.Fprintf(&w.out, "%s sh:hasValue %s .\n", subject, x.C)
		return nil
	case *shape.Test:
		return w.nodeTest(subject, x.T)
	case *shape.Eq:
		return w.pair(subject, "sh:equals", x.Path, x.P)
	case *shape.Disj:
		return w.pair(subject, "sh:disjoint", x.Path, x.P)
	case *shape.LessThan:
		return w.pair(subject, "sh:lessThan", x.Path, x.P)
	case *shape.LessThanEq:
		return w.pair(subject, "sh:lessThanOrEquals", x.Path, x.P)
	case *shape.MoreThan, *shape.MoreThanEq:
		return fmt.Errorf("shaclsyn: %s has no real-SHACL counterpart (Remark 2.3)", phi)
	case *shape.Closed:
		ignored := make([]string, len(x.Allowed))
		for i, p := range x.Allowed {
			ignored[i] = "<" + p + ">"
		}
		fmt.Fprintf(&w.out, "%s sh:closed true ; sh:ignoredProperties ( %s ) .\n",
			subject, strings.Join(ignored, " "))
		return nil
	case *shape.UniqueLang:
		path, err := w.path(x.Path)
		if err != nil {
			return err
		}
		fmt.Fprintf(&w.out, "%s sh:property [ sh:path %s ; sh:uniqueLang true ] .\n", subject, path)
		return nil
	case *shape.MinCount:
		return w.quantifier(subject, "sh:qualifiedMinCount", "sh:minCount", x.N, x.Path, x.X)
	case *shape.MaxCount:
		return w.quantifier(subject, "sh:qualifiedMaxCount", "sh:maxCount", x.N, x.Path, x.X)
	case *shape.Forall:
		path, err := w.path(x.Path)
		if err != nil {
			return err
		}
		inner, err := w.anonShape(x.X)
		if err != nil {
			return err
		}
		fmt.Fprintf(&w.out, "%s sh:property [ sh:path %s ; sh:node %s ] .\n", subject, path, inner)
		return nil
	}
	return fmt.Errorf("shaclsyn: cannot serialize shape %s", phi)
}

// quantifier emits ≥n/≤n as plain or qualified cardinality constraints.
func (w *shaclWriter) quantifier(subject, qualKey, plainKey string, n int, e paths.Expr, body shape.Shape) error {
	path, err := w.path(e)
	if err != nil {
		return err
	}
	if _, isTrue := body.(*shape.True); isTrue {
		fmt.Fprintf(&w.out, "%s sh:property [ sh:path %s ; %s %d ] .\n", subject, path, plainKey, n)
		return nil
	}
	inner, err := w.anonShape(body)
	if err != nil {
		return err
	}
	fmt.Fprintf(&w.out, "%s sh:property [ sh:path %s ; sh:qualifiedValueShape %s ; %s %d ] .\n",
		subject, path, inner, qualKey, n)
	return nil
}

// anonShape materializes a subshape as a fresh blank node shape and returns
// its reference.
func (w *shaclWriter) anonShape(phi shape.Shape) (string, error) {
	name := w.blank()
	fmt.Fprintf(&w.out, "%s a sh:NodeShape .\n", name)
	if err := w.nodeShapeBody(name, phi); err != nil {
		return "", err
	}
	return name, nil
}

func (w *shaclWriter) shapeList(xs []shape.Shape) (string, error) {
	var parts []string
	for _, x := range xs {
		ref, err := w.anonShape(x)
		if err != nil {
			return "", err
		}
		parts = append(parts, ref)
	}
	return "( " + strings.Join(parts, " ") + " )", nil
}

// pair emits a property pair constraint; a nil path means the id variant,
// carried on the node shape itself.
func (w *shaclWriter) pair(subject, key string, e paths.Expr, p string) error {
	if e == nil {
		fmt.Fprintf(&w.out, "%s %s <%s> .\n", subject, key, p)
		return nil
	}
	path, err := w.path(e)
	if err != nil {
		return err
	}
	fmt.Fprintf(&w.out, "%s sh:property [ sh:path %s ; %s <%s> ] .\n", subject, path, key, p)
	return nil
}

// path serializes a path expression as a SHACL property path.
func (w *shaclWriter) path(e paths.Expr) (string, error) {
	switch x := e.(type) {
	case paths.Prop:
		return "<" + x.IRI + ">", nil
	case paths.Inverse:
		inner, err := w.path(x.X)
		if err != nil {
			return "", err
		}
		return "[ sh:inversePath " + inner + " ]", nil
	case paths.Star:
		inner, err := w.path(x.X)
		if err != nil {
			return "", err
		}
		return "[ sh:zeroOrMorePath " + inner + " ]", nil
	case paths.ZeroOrOne:
		inner, err := w.path(x.X)
		if err != nil {
			return "", err
		}
		return "[ sh:zeroOrOnePath " + inner + " ]", nil
	case paths.Seq:
		// Emit E1/E2/… as a SHACL list, flattening nested sequences.
		var parts []string
		var flatten func(paths.Expr) error
		flatten = func(e paths.Expr) error {
			if s, ok := e.(paths.Seq); ok {
				if err := flatten(s.Left); err != nil {
					return err
				}
				return flatten(s.Right)
			}
			p, err := w.path(e)
			if err != nil {
				return err
			}
			parts = append(parts, p)
			return nil
		}
		if err := flatten(x); err != nil {
			return "", err
		}
		return "( " + strings.Join(parts, " ") + " )", nil
	case paths.Alt:
		var parts []string
		var flatten func(paths.Expr) error
		flatten = func(e paths.Expr) error {
			if a, ok := e.(paths.Alt); ok {
				if err := flatten(a.Left); err != nil {
					return err
				}
				return flatten(a.Right)
			}
			p, err := w.path(e)
			if err != nil {
				return err
			}
			parts = append(parts, p)
			return nil
		}
		if err := flatten(x); err != nil {
			return "", err
		}
		return "[ sh:alternativePath ( " + strings.Join(parts, " ") + " ) ]", nil
	}
	return "", fmt.Errorf("shaclsyn: cannot serialize path %s", e)
}

// nodeTest emits a node test as the corresponding SHACL constraint
// component on the subject shape.
func (w *shaclWriter) nodeTest(subject string, t shape.NodeTest) error {
	switch x := t.(type) {
	case shape.IsIRI:
		fmt.Fprintf(&w.out, "%s sh:nodeKind sh:IRI .\n", subject)
	case shape.IsBlank:
		fmt.Fprintf(&w.out, "%s sh:nodeKind sh:BlankNode .\n", subject)
	case shape.IsLiteral:
		fmt.Fprintf(&w.out, "%s sh:nodeKind sh:Literal .\n", subject)
	case shape.AnyOf:
		kind, err := compoundNodeKind(x)
		if err != nil {
			return err
		}
		fmt.Fprintf(&w.out, "%s sh:nodeKind %s .\n", subject, kind)
	case shape.Datatype:
		fmt.Fprintf(&w.out, "%s sh:datatype <%s> .\n", subject, x.IRI)
	case shape.HasLang:
		fmt.Fprintf(&w.out, "%s sh:languageIn ( %q ) .\n", subject, x.Tag)
	case *shape.Pattern:
		fmt.Fprintf(&w.out, "%s sh:pattern %q .\n", subject, x.Source)
	case shape.MinLength:
		fmt.Fprintf(&w.out, "%s sh:minLength %d .\n", subject, x.N)
	case shape.MaxLength:
		fmt.Fprintf(&w.out, "%s sh:maxLength %d .\n", subject, x.N)
	case shape.MinExclusive:
		fmt.Fprintf(&w.out, "%s sh:minExclusive %s .\n", subject, x.Bound)
	case shape.MaxExclusive:
		fmt.Fprintf(&w.out, "%s sh:maxExclusive %s .\n", subject, x.Bound)
	case shape.MinInclusive:
		fmt.Fprintf(&w.out, "%s sh:minInclusive %s .\n", subject, x.Bound)
	case shape.MaxInclusive:
		fmt.Fprintf(&w.out, "%s sh:maxInclusive %s .\n", subject, x.Bound)
	default:
		return fmt.Errorf("shaclsyn: cannot serialize node test %s", t)
	}
	return nil
}

// compoundNodeKind maps AnyOf node-kind pairs back to sh:nodeKind values.
func compoundNodeKind(a shape.AnyOf) (string, error) {
	if len(a.Tests) != 2 {
		return "", fmt.Errorf("shaclsyn: cannot serialize node test %s", a)
	}
	has := map[string]bool{}
	for _, t := range a.Tests {
		switch t.(type) {
		case shape.IsIRI:
			has["iri"] = true
		case shape.IsBlank:
			has["blank"] = true
		case shape.IsLiteral:
			has["literal"] = true
		default:
			return "", fmt.Errorf("shaclsyn: cannot serialize node test %s", a)
		}
	}
	switch {
	case has["blank"] && has["iri"]:
		return "sh:BlankNodeOrIRI", nil
	case has["blank"] && has["literal"]:
		return "sh:BlankNodeOrLiteral", nil
	case has["iri"] && has["literal"]:
		return "sh:IRIOrLiteral", nil
	}
	return "", fmt.Errorf("shaclsyn: cannot serialize node test %s", a)
}
