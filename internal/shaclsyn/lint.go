package shaclsyn

import (
	"shaclfrag/internal/contain"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shapelint"
)

// LintSource parses a SHACL shapes graph in Turtle syntax, translates it
// (Appendix A's t), and runs the full diagnostic stream over the result:
// shapelint's folding analyses (SL001–SL009) merged with contain's
// subsumption analyses (SL010/SL011), sorted by (shape, code, position).
// Because Translate names definitions after the shapes-graph nodes they
// came from, the diagnostics point back at the IRIs (or deterministic
// blank-node labels) of the SHACL source the author wrote, not at
// internal AST nodes.
func LintSource(src string) (*schema.Schema, []shapelint.Diagnostic, error) {
	h, err := ParseSchema(src)
	if err != nil {
		return nil, nil, err
	}
	return h, contain.LintMerged(h), nil
}
