package shaclsyn

import (
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shapelint"
)

// LintSource parses a SHACL shapes graph in Turtle syntax, translates it
// (Appendix A's t), and runs the shape linter over the result. Because
// Translate names definitions after the shapes-graph nodes they came from,
// the diagnostics point back at the IRIs (or deterministic blank-node
// labels) of the SHACL source the author wrote, not at internal AST nodes.
func LintSource(src string) (*schema.Schema, []shapelint.Diagnostic, error) {
	h, err := ParseSchema(src)
	if err != nil {
		return nil, nil, err
	}
	return h, shapelint.Run(h), nil
}
