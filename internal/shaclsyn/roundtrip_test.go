package shaclsyn_test

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
)

// Property: random schemas whose shapes have SHACL counterparts serialize
// to Turtle that re-parses into a semantically equivalent schema, judged by
// validating random graphs.
func TestFormatRoundTripRandomSchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tried := 0
	for trial := 0; trial < 200 && tried < 60; trial++ {
		var defs []schema.Definition
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			var target shape.Shape
			switch rng.Intn(3) {
			case 0:
				target = schema.TargetNode(shapetest.IRI(string(rune('a' + rng.Intn(6)))))
			case 1:
				target = schema.TargetSubjectsOf(shapetest.Base + "p")
			default:
				target = schema.TargetClass(shapetest.IRI("C"))
			}
			defs = append(defs, schema.Definition{
				Name:   shapetest.IRI("R" + string(rune('0'+i))),
				Shape:  shapetest.RandomShape(rng, 3),
				Target: target,
			})
		}
		h := schema.MustNew(defs...)
		text, err := shaclsyn.Format(h)
		if err != nil {
			continue // shapes with no SHACL counterpart (moreThan) are fine to skip
		}
		tried++
		h2, err := shaclsyn.ParseSchema(text)
		if err != nil {
			t.Fatalf("trial %d: re-parse failed: %v\n%s", trial, err, text)
		}
		for round := 0; round < 3; round++ {
			g := shapetest.RandomGraph(rng, 12)
			want := h.Validate(g)
			got := h2.Validate(g)
			if want.Conforms != got.Conforms {
				t.Fatalf("trial %d: conformance changed after round trip\n%s", trial, text)
			}
			wantViolations := map[string]bool{}
			for _, v := range want.Violations() {
				wantViolations[v.ShapeName.Value+"|"+v.Focus.Value] = true
			}
			for _, v := range got.Violations() {
				key := v.ShapeName.Value + "|" + v.Focus.Value
				if wantViolations[key] {
					delete(wantViolations, key)
					continue
				}
				// Violations on serialization-introduced helper shapes are
				// impossible (they have no targets); anything else is a bug.
				t.Fatalf("trial %d: extra violation %s after round trip\n%s", trial, key, text)
			}
			if len(wantViolations) != 0 {
				t.Fatalf("trial %d: violations lost after round trip: %v\n%s", trial, wantViolations, text)
			}
		}
	}
	if tried < 30 {
		t.Fatalf("only %d serializable schemas out of 200 trials; generator mismatch", tried)
	}
}
