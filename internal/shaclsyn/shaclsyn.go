// Package shaclsyn translates real SHACL shapes graphs into formal shape
// schemas, implementing the translation function t of Appendix A of the
// paper. It covers the SHACL core constraint components: shape-based
// (sh:node, sh:property), logical (sh:and, sh:or, sh:not, sh:xone), value
// type/range/string-based components, property pair components, cardinality
// and qualified cardinality components, closedness, sh:hasValue, sh:in,
// sh:languageIn, sh:uniqueLang, property paths, and the four target
// declarations.
package shaclsyn

import (
	"fmt"
	"strconv"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/turtle"
)

// SHACL vocabulary.
const (
	NS = "http://www.w3.org/ns/shacl#"

	shNodeShape     = NS + "NodeShape"
	shPropertyShape = NS + "PropertyShape"

	shProperty = NS + "property"
	shNode     = NS + "node"
	shPath     = NS + "path"

	shAnd  = NS + "and"
	shOr   = NS + "or"
	shNot  = NS + "not"
	shXone = NS + "xone"

	shClass        = NS + "class"
	shDatatype     = NS + "datatype"
	shNodeKind     = NS + "nodeKind"
	shMinExclusive = NS + "minExclusive"
	shMaxExclusive = NS + "maxExclusive"
	shMinInclusive = NS + "minInclusive"
	shMaxInclusive = NS + "maxInclusive"
	shMinLength    = NS + "minLength"
	shMaxLength    = NS + "maxLength"
	shPattern      = NS + "pattern"
	shLanguageIn   = NS + "languageIn"
	shUniqueLang   = NS + "uniqueLang"

	shIRI                = NS + "IRI"
	shBlankNode          = NS + "BlankNode"
	shLiteral            = NS + "Literal"
	shBlankNodeOrIRI     = NS + "BlankNodeOrIRI"
	shBlankNodeOrLiteral = NS + "BlankNodeOrLiteral"
	shIRIOrLiteral       = NS + "IRIOrLiteral"

	shEquals           = NS + "equals"
	shDisjoint         = NS + "disjoint"
	shLessThan         = NS + "lessThan"
	shLessThanOrEquals = NS + "lessThanOrEquals"

	shMinCount = NS + "minCount"
	shMaxCount = NS + "maxCount"

	shQualifiedValueShape          = NS + "qualifiedValueShape"
	shQualifiedMinCount            = NS + "qualifiedMinCount"
	shQualifiedMaxCount            = NS + "qualifiedMaxCount"
	shQualifiedValueShapesDisjoint = NS + "qualifiedValueShapesDisjoint"

	shClosed            = NS + "closed"
	shIgnoredProperties = NS + "ignoredProperties"
	shHasValue          = NS + "hasValue"
	shIn                = NS + "in"
	shDeactivated       = NS + "deactivated"

	shTargetNode       = NS + "targetNode"
	shTargetClass      = NS + "targetClass"
	shTargetSubjectsOf = NS + "targetSubjectsOf"
	shTargetObjectsOf  = NS + "targetObjectsOf"

	shInversePath     = NS + "inversePath"
	shAlternativePath = NS + "alternativePath"
	shZeroOrMorePath  = NS + "zeroOrMorePath"
	shOneOrMorePath   = NS + "oneOrMorePath"
	shZeroOrOnePath   = NS + "zeroOrOnePath"
)

// ParseSchema parses a SHACL shapes graph in Turtle syntax and translates
// it into a formal schema.
func ParseSchema(src string) (*schema.Schema, error) {
	g, err := turtle.Parse(src)
	if err != nil {
		return nil, err
	}
	return Translate(g)
}

// Translate implements t(S): it translates a SHACL shapes graph into a
// schema. Top-level definitions are created for every explicitly declared
// shape (rdf:type sh:NodeShape/sh:PropertyShape), every shape with a target
// declaration, and every shape referenced via sh:node or sh:property
// (which translate to hasShape references and therefore need definitions).
func Translate(g rdfgraph.Reader) (*schema.Schema, error) {
	tr := &translator{g: g, done: map[rdf.Term]bool{}}

	roots := map[rdf.Term]bool{}
	addSubjectsOf := func(pred string, requireShapeObject bool) {
		pid := g.LookupTerm(rdf.NewIRI(pred))
		if pid == rdfgraph.NoID {
			return
		}
		for _, e := range g.EdgesByPredicate(pid) {
			if requireShapeObject {
				obj := g.Term(e.O)
				if obj != rdf.NewIRI(shNodeShape) && obj != rdf.NewIRI(shPropertyShape) {
					continue
				}
			}
			roots[g.Term(e.S)] = true
		}
	}
	addSubjectsOf(rdf.RDFType, true)
	for _, t := range []string{shTargetNode, shTargetClass, shTargetSubjectsOf, shTargetObjectsOf} {
		addSubjectsOf(t, false)
	}
	// Referenced shapes (objects of sh:node / sh:property) also become
	// definitions, since the translation refers to them via hasShape.
	for _, pred := range []string{shNode, shProperty} {
		pid := g.LookupTerm(rdf.NewIRI(pred))
		if pid == rdfgraph.NoID {
			continue
		}
		for _, e := range g.EdgesByPredicate(pid) {
			roots[g.Term(e.O)] = true
		}
	}

	var defs []schema.Definition
	var queue []rdf.Term
	for root := range roots {
		queue = append(queue, root)
	}
	// Sort for determinism.
	sortTerms(queue)
	seen := map[rdf.Term]bool{}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		if tr.boolParam(name, shDeactivated) {
			continue
		}
		phi, err := tr.translateShape(name)
		if err != nil {
			return nil, err
		}
		defs = append(defs, schema.Definition{
			Name:   name,
			Shape:  phi,
			Target: tr.target(name),
		})
		// Enqueue shapes referenced from this one so hasShape resolves.
		for _, ref := range shape.ShapeRefs(phi) {
			if !seen[ref] && tr.isShapeNode(ref) {
				queue = append(queue, ref)
			}
		}
	}
	return schema.New(defs...)
}

type translator struct {
	g    rdfgraph.Reader
	done map[rdf.Term]bool
}

// objects returns the objects of (x, pred, ·) in deterministic order.
func (t *translator) objects(x rdf.Term, pred string) []rdf.Term {
	xid := t.g.LookupTerm(x)
	pid := t.g.LookupTerm(rdf.NewIRI(pred))
	if xid == rdfgraph.NoID || pid == rdfgraph.NoID {
		return nil
	}
	var out []rdf.Term
	t.g.Objects(xid, pid, func(o rdfgraph.ID) { out = append(out, t.g.Term(o)) })
	sortTerms(out)
	return out
}

func sortTerms(ts []rdf.Term) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && rdf.Compare(ts[j], ts[j-1]) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// list reads an RDF collection starting at head.
func (t *translator) list(head rdf.Term) ([]rdf.Term, error) {
	var out []rdf.Term
	for i := 0; ; i++ {
		if i > 100000 {
			return nil, fmt.Errorf("shaclsyn: list at %s is cyclic or too long", head)
		}
		if head == rdf.NewIRI(rdf.RDFNil) {
			return out, nil
		}
		firsts := t.objects(head, rdf.RDFFirst)
		rests := t.objects(head, rdf.RDFRest)
		if len(firsts) != 1 || len(rests) != 1 {
			return nil, fmt.Errorf("shaclsyn: malformed RDF list node %s", head)
		}
		out = append(out, firsts[0])
		head = rests[0]
	}
}

func (t *translator) boolParam(x rdf.Term, pred string) bool {
	for _, o := range t.objects(x, pred) {
		if o.IsLiteral() && o.Value == "true" {
			return true
		}
	}
	return false
}

func (t *translator) intParam(o rdf.Term) (int, error) {
	n, err := strconv.Atoi(o.Value)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("shaclsyn: bad count literal %s", o)
	}
	return n, nil
}

// isShapeNode reports whether x looks like a shape description (has any
// SHACL parameter or declaration).
func (t *translator) isShapeNode(x rdf.Term) bool {
	xid := t.g.LookupTerm(x)
	if xid == rdfgraph.NoID {
		return false
	}
	found := false
	t.g.PredicatesFrom(xid, func(p, _ rdfgraph.ID) {
		iri := t.g.Term(p).Value
		if len(iri) > len(NS) && iri[:len(NS)] == NS {
			found = true
		}
	})
	return found
}

// translateShape dispatches on the presence of sh:path: shapes with a path
// are property shapes, others are node shapes.
func (t *translator) translateShape(x rdf.Term) (shape.Shape, error) {
	if len(t.objects(x, shPath)) > 0 {
		return t.propertyShape(x)
	}
	return t.nodeShape(x)
}

// nodeShape implements t_nodeshape(d_x).
func (t *translator) nodeShape(x rdf.Term) (shape.Shape, error) {
	var conj []shape.Shape
	add := func(s shape.Shape, err error) error {
		if err != nil {
			return err
		}
		if s != nil {
			conj = append(conj, s)
		}
		return nil
	}
	if err := add(t.tShape(x)); err != nil {
		return nil, err
	}
	if err := add(t.tLogic(x)); err != nil {
		return nil, err
	}
	if err := add(t.tTests(x)); err != nil {
		return nil, err
	}
	if err := add(t.tValue(x), nil); err != nil {
		return nil, err
	}
	if err := add(t.tIn(x)); err != nil {
		return nil, err
	}
	if err := add(t.tClosed(x)); err != nil {
		return nil, err
	}
	if err := add(t.tPairID(x)); err != nil {
		return nil, err
	}
	if err := add(t.tLanguageInNode(x)); err != nil {
		return nil, err
	}
	return shape.AndOf(conj...), nil
}

// tShape implements t_shape: sh:node and sh:property become hasShape refs.
func (t *translator) tShape(x rdf.Term) (shape.Shape, error) {
	var conj []shape.Shape
	for _, y := range t.objects(x, shNode) {
		conj = append(conj, shape.Ref(y))
	}
	for _, y := range t.objects(x, shProperty) {
		conj = append(conj, shape.Ref(y))
	}
	return shape.AndOf(conj...), nil
}

// tLogic implements t_logic: sh:and, sh:or, sh:xone, sh:not.
func (t *translator) tLogic(x rdf.Term) (shape.Shape, error) {
	var conj []shape.Shape
	for _, y := range t.objects(x, shAnd) {
		members, err := t.listShapes(y)
		if err != nil {
			return nil, err
		}
		conj = append(conj, shape.AndOf(members...))
	}
	for _, y := range t.objects(x, shOr) {
		members, err := t.listShapes(y)
		if err != nil {
			return nil, err
		}
		conj = append(conj, shape.OrOf(members...))
	}
	for _, y := range t.objects(x, shXone) {
		members, err := t.listShapes(y)
		if err != nil {
			return nil, err
		}
		// Exactly one: ⋁_a (a ∧ ⋀_{b≠a} ¬b).
		var alts []shape.Shape
		for i, a := range members {
			parts := []shape.Shape{a}
			for j, b := range members {
				if i != j {
					parts = append(parts, shape.Neg(b))
				}
			}
			alts = append(alts, shape.AndOf(parts...))
		}
		conj = append(conj, shape.OrOf(alts...))
	}
	for _, y := range t.objects(x, shNot) {
		inner, err := t.translateShape(y)
		if err != nil {
			return nil, err
		}
		conj = append(conj, shape.Neg(inner))
	}
	return shape.AndOf(conj...), nil
}

func (t *translator) listShapes(head rdf.Term) ([]shape.Shape, error) {
	items, err := t.list(head)
	if err != nil {
		return nil, err
	}
	var out []shape.Shape
	for _, item := range items {
		s, err := t.translateShape(item)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// tTests implements t_tests: value type, range and string constraints.
func (t *translator) tTests(x rdf.Term) (shape.Shape, error) {
	var conj []shape.Shape
	for _, y := range t.objects(x, shClass) {
		conj = append(conj, schema.TargetClass(y)) // same shape as a class target
	}
	for _, y := range t.objects(x, shDatatype) {
		conj = append(conj, shape.NodeTestShape(shape.Datatype{IRI: y.Value}))
	}
	for _, y := range t.objects(x, shNodeKind) {
		nt, err := nodeKindTest(y)
		if err != nil {
			return nil, err
		}
		conj = append(conj, shape.NodeTestShape(nt))
	}
	for _, y := range t.objects(x, shMinExclusive) {
		conj = append(conj, shape.NodeTestShape(shape.MinExclusive{Bound: y}))
	}
	for _, y := range t.objects(x, shMaxExclusive) {
		conj = append(conj, shape.NodeTestShape(shape.MaxExclusive{Bound: y}))
	}
	for _, y := range t.objects(x, shMinInclusive) {
		conj = append(conj, shape.NodeTestShape(shape.MinInclusive{Bound: y}))
	}
	for _, y := range t.objects(x, shMaxInclusive) {
		conj = append(conj, shape.NodeTestShape(shape.MaxInclusive{Bound: y}))
	}
	for _, y := range t.objects(x, shMinLength) {
		n, err := t.intParam(y)
		if err != nil {
			return nil, err
		}
		conj = append(conj, shape.NodeTestShape(shape.MinLength{N: n}))
	}
	for _, y := range t.objects(x, shMaxLength) {
		n, err := t.intParam(y)
		if err != nil {
			return nil, err
		}
		conj = append(conj, shape.NodeTestShape(shape.MaxLength{N: n}))
	}
	for _, y := range t.objects(x, shPattern) {
		p, err := shape.NewPattern(y.Value)
		if err != nil {
			return nil, err
		}
		conj = append(conj, shape.NodeTestShape(p))
	}
	return shape.AndOf(conj...), nil
}

func nodeKindTest(kind rdf.Term) (shape.NodeTest, error) {
	switch kind.Value {
	case shIRI:
		return shape.IsIRI{}, nil
	case shBlankNode:
		return shape.IsBlank{}, nil
	case shLiteral:
		return shape.IsLiteral{}, nil
	case shBlankNodeOrIRI:
		return shape.AnyOf{Tests: []shape.NodeTest{shape.IsBlank{}, shape.IsIRI{}}}, nil
	case shBlankNodeOrLiteral:
		return shape.AnyOf{Tests: []shape.NodeTest{shape.IsBlank{}, shape.IsLiteral{}}}, nil
	case shIRIOrLiteral:
		return shape.AnyOf{Tests: []shape.NodeTest{shape.IsIRI{}, shape.IsLiteral{}}}, nil
	default:
		return nil, fmt.Errorf("shaclsyn: unknown sh:nodeKind %s", kind)
	}
}

// tValue implements t_value: sh:hasValue on a node shape.
func (t *translator) tValue(x rdf.Term) shape.Shape {
	var conj []shape.Shape
	for _, y := range t.objects(x, shHasValue) {
		conj = append(conj, shape.Value(y))
	}
	return shape.AndOf(conj...)
}

// tIn implements t_in: sh:in lists become disjunctions of hasValue.
func (t *translator) tIn(x rdf.Term) (shape.Shape, error) {
	var conj []shape.Shape
	for _, y := range t.objects(x, shIn) {
		items, err := t.list(y)
		if err != nil {
			return nil, err
		}
		var alts []shape.Shape
		for _, item := range items {
			alts = append(alts, shape.Value(item))
		}
		conj = append(conj, shape.OrOf(alts...))
	}
	return shape.AndOf(conj...), nil
}

// tClosed implements t_closed: allowed properties are the direct-IRI paths
// of the shape's property shapes plus sh:ignoredProperties.
func (t *translator) tClosed(x rdf.Term) (shape.Shape, error) {
	if !t.boolParam(x, shClosed) {
		return shape.AndOf(), nil
	}
	var allowed []string
	for _, y := range t.objects(x, shProperty) {
		for _, pp := range t.objects(y, shPath) {
			if pp.IsIRI() {
				allowed = append(allowed, pp.Value)
			}
		}
	}
	for _, y := range t.objects(x, shIgnoredProperties) {
		items, err := t.list(y)
		if err != nil {
			return nil, err
		}
		for _, item := range items {
			allowed = append(allowed, item.Value)
		}
	}
	return shape.ClosedShape(allowed...), nil
}

// tPairID implements t_pair(id, d_x) for node shapes.
func (t *translator) tPairID(x rdf.Term) (shape.Shape, error) {
	if len(t.objects(x, shLessThan)) > 0 || len(t.objects(x, shLessThanOrEquals)) > 0 {
		// lessThan on a node shape is undefined; Appendix A maps it to ⊥.
		return shape.FalseShape(), nil
	}
	var conj []shape.Shape
	for _, p := range t.objects(x, shEquals) {
		conj = append(conj, shape.EqID(p.Value))
	}
	for _, p := range t.objects(x, shDisjoint) {
		conj = append(conj, shape.DisjID(p.Value))
	}
	return shape.AndOf(conj...), nil
}

// tLanguageInNode handles sh:languageIn on a node shape: the focus node
// itself must carry one of the tags.
func (t *translator) tLanguageInNode(x rdf.Term) (shape.Shape, error) {
	var conj []shape.Shape
	for _, y := range t.objects(x, shLanguageIn) {
		items, err := t.list(y)
		if err != nil {
			return nil, err
		}
		var alts []shape.Shape
		for _, item := range items {
			alts = append(alts, shape.NodeTestShape(shape.HasLang{Tag: item.Value}))
		}
		conj = append(conj, shape.OrOf(alts...))
	}
	return shape.AndOf(conj...), nil
}

// propertyShape implements t_propertyshape(d_x).
func (t *translator) propertyShape(x rdf.Term) (shape.Shape, error) {
	pps := t.objects(x, shPath)
	if len(pps) != 1 {
		return nil, fmt.Errorf("shaclsyn: property shape %s must have exactly one sh:path", x)
	}
	e, err := t.path(pps[0])
	if err != nil {
		return nil, err
	}
	var conj []shape.Shape

	// t_card
	for _, y := range t.objects(x, shMinCount) {
		n, err := t.intParam(y)
		if err != nil {
			return nil, err
		}
		conj = append(conj, shape.Min(n, e, shape.TrueShape()))
	}
	for _, y := range t.objects(x, shMaxCount) {
		n, err := t.intParam(y)
		if err != nil {
			return nil, err
		}
		conj = append(conj, shape.Max(n, e, shape.TrueShape()))
	}

	// t_pair(E, d_x)
	for _, p := range t.objects(x, shEquals) {
		conj = append(conj, shape.EqPath(e, p.Value))
	}
	for _, p := range t.objects(x, shDisjoint) {
		conj = append(conj, shape.DisjPath(e, p.Value))
	}
	for _, p := range t.objects(x, shLessThan) {
		conj = append(conj, shape.Less(e, p.Value))
	}
	for _, p := range t.objects(x, shLessThanOrEquals) {
		conj = append(conj, shape.LessEq(e, p.Value))
	}

	// t_qual
	qual, err := t.tQual(x, e)
	if err != nil {
		return nil, err
	}
	conj = append(conj, qual)

	// t_all: node-shape components universally applied over the values.
	body, err := t.allBody(x)
	if err != nil {
		return nil, err
	}
	if _, isTrue := body.(*shape.True); !isTrue {
		conj = append(conj, shape.All(e, body))
	}
	// sh:hasValue on a property shape is existential, not universal.
	for _, y := range t.objects(x, shHasValue) {
		conj = append(conj, shape.Min(1, e, shape.Value(y)))
	}

	// t_uniquelang
	if t.boolParam(x, shUniqueLang) {
		conj = append(conj, shape.UniqueLangShape(e))
	}
	return shape.AndOf(conj...), nil
}

// allBody builds t_shape ∧ t_logic ∧ t_tests ∧ t_in ∧ t_closed ∧
// t_languagein for universal application over the path values.
func (t *translator) allBody(x rdf.Term) (shape.Shape, error) {
	var conj []shape.Shape
	parts := []func(rdf.Term) (shape.Shape, error){
		t.tShape, t.tLogic, t.tTests, t.tIn, t.tClosed, t.tLanguageInNode,
	}
	for _, f := range parts {
		s, err := f(x)
		if err != nil {
			return nil, err
		}
		conj = append(conj, s)
	}
	return shape.AndOf(conj...), nil
}

// tQual implements t_qual: qualified value shapes with optional sibling
// exclusion.
func (t *translator) tQual(x rdf.Term, e paths.Expr) (shape.Shape, error) {
	quals := t.objects(x, shQualifiedValueShape)
	if len(quals) == 0 {
		return shape.AndOf(), nil
	}
	var sibl []shape.Shape
	if t.boolParam(x, shQualifiedValueShapesDisjoint) {
		// Siblings: qualified value shapes of other property shapes of the
		// parents of x.
		for _, parent := range t.subjectsOf(shProperty, x) {
			for _, otherPS := range t.objects(parent, shProperty) {
				if otherPS == x {
					continue
				}
				for _, w := range t.objects(otherPS, shQualifiedValueShape) {
					sibl = append(sibl, shape.Ref(w))
				}
			}
		}
	}
	var conj []shape.Shape
	for _, y := range quals {
		body := shape.Ref(y)
		if len(sibl) > 0 {
			parts := []shape.Shape{body}
			for _, s := range sibl {
				parts = append(parts, shape.Neg(s))
			}
			body = shape.AndOf(parts...)
		}
		for _, zt := range t.objects(x, shQualifiedMinCount) {
			z, err := t.intParam(zt)
			if err != nil {
				return nil, err
			}
			conj = append(conj, shape.Min(z, e, body))
		}
		for _, zt := range t.objects(x, shQualifiedMaxCount) {
			z, err := t.intParam(zt)
			if err != nil {
				return nil, err
			}
			conj = append(conj, shape.Max(z, e, body))
		}
	}
	return shape.AndOf(conj...), nil
}

func (t *translator) subjectsOf(pred string, obj rdf.Term) []rdf.Term {
	pid := t.g.LookupTerm(rdf.NewIRI(pred))
	oid := t.g.LookupTerm(obj)
	if pid == rdfgraph.NoID || oid == rdfgraph.NoID {
		return nil
	}
	var out []rdf.Term
	t.g.Subjects(pid, oid, func(s rdfgraph.ID) { out = append(out, t.g.Term(s)) })
	sortTerms(out)
	return out
}

// path implements t_path(pp).
func (t *translator) path(pp rdf.Term) (paths.Expr, error) {
	if pp.IsIRI() {
		return paths.P(pp.Value), nil
	}
	if ys := t.objects(pp, shInversePath); len(ys) == 1 {
		inner, err := t.path(ys[0])
		if err != nil {
			return nil, err
		}
		return paths.Inv(inner), nil
	}
	if ys := t.objects(pp, shZeroOrMorePath); len(ys) == 1 {
		inner, err := t.path(ys[0])
		if err != nil {
			return nil, err
		}
		return paths.Star{X: inner}, nil
	}
	if ys := t.objects(pp, shOneOrMorePath); len(ys) == 1 {
		inner, err := t.path(ys[0])
		if err != nil {
			return nil, err
		}
		return paths.Seq{Left: inner, Right: paths.Star{X: inner}}, nil
	}
	if ys := t.objects(pp, shZeroOrOnePath); len(ys) == 1 {
		inner, err := t.path(ys[0])
		if err != nil {
			return nil, err
		}
		return paths.ZeroOrOne{X: inner}, nil
	}
	if ys := t.objects(pp, shAlternativePath); len(ys) == 1 {
		items, err := t.list(ys[0])
		if err != nil {
			return nil, err
		}
		var parts []paths.Expr
		for _, item := range items {
			p, err := t.path(item)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		if len(parts) == 0 {
			return nil, fmt.Errorf("shaclsyn: empty sh:alternativePath at %s", pp)
		}
		return paths.AltOf(parts...), nil
	}
	// A blank node that is an RDF list encodes a sequence path.
	if len(t.objects(pp, rdf.RDFFirst)) == 1 {
		items, err := t.list(pp)
		if err != nil {
			return nil, err
		}
		var parts []paths.Expr
		for _, item := range items {
			p, err := t.path(item)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		if len(parts) == 0 {
			return nil, fmt.Errorf("shaclsyn: empty sequence path at %s", pp)
		}
		return paths.SeqOf(parts...), nil
	}
	return nil, fmt.Errorf("shaclsyn: unrecognized property path at %s", pp)
}

// target implements t_target(d_x): the disjunction of the four target
// declarations, or ⊥ when none is present.
func (t *translator) target(x rdf.Term) shape.Shape {
	var alts []shape.Shape
	for _, y := range t.objects(x, shTargetNode) {
		alts = append(alts, schema.TargetNode(y))
	}
	for _, y := range t.objects(x, shTargetClass) {
		alts = append(alts, schema.TargetClass(y))
	}
	for _, y := range t.objects(x, shTargetSubjectsOf) {
		alts = append(alts, schema.TargetSubjectsOf(y.Value))
	}
	for _, y := range t.objects(x, shTargetObjectsOf) {
		alts = append(alts, schema.TargetObjectsOf(y.Value))
	}
	if len(alts) == 0 {
		return shape.FalseShape()
	}
	return shape.OrOf(alts...)
}
