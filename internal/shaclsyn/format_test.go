package shaclsyn_test

import (
	"strings"
	"testing"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shape"
)

func TestFormatSimpleSchema(t *testing.T) {
	h := schema.MustNew(schema.Definition{
		Name: iri("S"),
		Shape: shape.AndOf(
			shape.Min(1, paths.P("http://x/author"), shape.TrueShape()),
			shape.NodeTestShape(shape.IsIRI{}),
		),
		Target: schema.TargetClass(iri("Paper")),
	})
	out, err := shaclsyn.Format(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sh:targetClass", "sh:minCount 1", "sh:nodeKind sh:IRI"} {
		if !strings.Contains(out, want) {
			t.Errorf("serialization missing %q:\n%s", want, out)
		}
	}
	// The output must re-parse into a working schema.
	h2, err := shaclsyn.ParseSchema(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if _, ok := h2.Def(iri("S")); !ok {
		t.Error("shape name lost in round trip")
	}
}

func TestFormatRejectsMoreThan(t *testing.T) {
	h := schema.MustNew(schema.Definition{
		Name:   iri("S"),
		Shape:  shape.More(paths.P("http://x/p"), "http://x/q"),
		Target: schema.TargetNode(iri("a")),
	})
	if _, err := shaclsyn.Format(h); err == nil {
		t.Error("moreThan has no SHACL counterpart and must be rejected")
	}
}

func TestFormatRejectsNonStandardTargets(t *testing.T) {
	h := schema.MustNew(schema.Definition{
		Name:   iri("S"),
		Shape:  shape.TrueShape(),
		Target: shape.Max(0, paths.P("http://x/p"), shape.TrueShape()),
	})
	if _, err := shaclsyn.Format(h); err == nil {
		t.Error("non-real-SHACL targets must be rejected")
	}
}

// Semantic round trip over the whole 57-shape benchmark suite: the
// serialized schema must validate a generated graph with exactly the same
// per-shape outcomes as the original.
func TestFormatRoundTripBenchmarkSuite(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 150, Seed: 33})
	original := datagen.BenchmarkSchema()
	text, err := shaclsyn.Format(original)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := shaclsyn.ParseSchema(text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	want := original.Validate(g)
	got := reparsed.Validate(g)

	type key struct{ shape, focus string }
	collect := func(r *schema.Report) map[key]bool {
		out := map[key]bool{}
		for _, res := range r.Results {
			// Anonymous helper shapes introduced by serialization have no
			// targets and produce no results; original names match exactly.
			out[key{res.ShapeName.Value, res.Focus.Value}] = res.Conforms
		}
		return out
	}
	wantSet := collect(want)
	gotSet := collect(got)
	if len(wantSet) != len(gotSet) {
		t.Fatalf("result sets differ in size: %d vs %d", len(wantSet), len(gotSet))
	}
	for k, conforms := range wantSet {
		if gotConforms, ok := gotSet[k]; !ok || gotConforms != conforms {
			t.Fatalf("round trip changed outcome for %v: %v vs %v (present %v)",
				k, conforms, gotConforms, ok)
		}
	}
	if want.Conforms != got.Conforms {
		t.Fatal("overall conformance changed")
	}
}

func TestFormatPathForms(t *testing.T) {
	p := paths.P("http://x/p")
	q := paths.P("http://x/q")
	h := schema.MustNew(schema.Definition{
		Name: iri("S"),
		Shape: shape.AndOf(
			shape.Min(1, paths.Inv(p), shape.TrueShape()),
			shape.Min(1, paths.SeqOf(p, q), shape.TrueShape()),
			shape.Min(1, paths.Star{X: p}, shape.TrueShape()),
			shape.Min(1, paths.ZeroOrOne{X: q}, shape.TrueShape()),
			shape.Min(1, paths.AltOf(p, q), shape.TrueShape()),
		),
		Target: schema.TargetSubjectsOf("http://x/p"),
	})
	out, err := shaclsyn.Format(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sh:inversePath", "sh:zeroOrMorePath", "sh:zeroOrOnePath", "sh:alternativePath",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if _, err := shaclsyn.ParseSchema(out); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
}
