package shaclsyn_test

import (
	"strings"
	"testing"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/turtle"
)

const prelude = `
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://x/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
`

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func mustSchema(t *testing.T, src string) *schema.Schema {
	t.Helper()
	h, err := shaclsyn.ParseSchema(prelude + src)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustData(t *testing.T, src string) *rdfgraph.Graph {
	t.Helper()
	g, err := turtle.Parse(prelude + src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// validate validates data against a shapes graph and returns conformance.
func validate(t *testing.T, shapesSrc, dataSrc string) *schema.Report {
	t.Helper()
	return mustSchema(t, shapesSrc).Validate(mustData(t, dataSrc))
}

func TestWorkshopShapeFromIntroduction(t *testing.T) {
	// The paper's Example 1.1 shapes graph, verbatim structure.
	shapes := `
ex:WorkshopShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [
    sh:path ex:author ; sh:qualifiedMinCount 1 ;
    sh:qualifiedValueShape [ sh:class ex:Student ] ] .
`
	good := `
ex:p1 rdf:type ex:Paper ; ex:author ex:bob .
ex:bob rdf:type ex:Student .
`
	bad := `
ex:p1 rdf:type ex:Paper ; ex:author ex:anne .
ex:anne rdf:type ex:Professor .
`
	if r := validate(t, shapes, good); !r.Conforms {
		t.Errorf("good graph must conform: %+v", r.Violations())
	}
	if r := validate(t, shapes, bad); r.Conforms {
		t.Error("bad graph must not conform")
	}
}

func TestHappyAtWorkShape(t *testing.T) {
	// Example 2.2's ¬disj(friend, colleague) in real syntax.
	shapes := `
ex:HappyAtWork a sh:NodeShape ;
  sh:targetSubjectsOf ex:friend ;
  sh:not [ sh:path ex:friend ; sh:disjoint ex:colleague ] .
`
	good := `ex:v ex:friend ex:x . ex:v ex:colleague ex:x .`
	bad := `ex:v ex:friend ex:x . ex:v ex:colleague ex:y .`
	if r := validate(t, shapes, good); !r.Conforms {
		t.Errorf("overlapping friend/colleague must conform: %+v", r.Violations())
	}
	if r := validate(t, shapes, bad); r.Conforms {
		t.Error("disjoint friend/colleague must violate")
	}
}

func TestCardinalities(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetClass ex:T ;
  sh:property [ sh:path ex:p ; sh:minCount 1 ; sh:maxCount 2 ] .
`
	if r := validate(t, shapes, `ex:a a ex:T ; ex:p ex:x .`); !r.Conforms {
		t.Errorf("1 value conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a a ex:T .`); r.Conforms {
		t.Error("0 values must violate minCount")
	}
	if r := validate(t, shapes, `ex:a a ex:T ; ex:p ex:x , ex:y , ex:z .`); r.Conforms {
		t.Error("3 values must violate maxCount")
	}
}

func TestDatatypeAndNodeKind(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetSubjectsOf ex:age ;
  sh:property [ sh:path ex:age ; sh:datatype xsd:integer ] ;
  sh:property [ sh:path ex:friend ; sh:nodeKind sh:IRI ] .
`
	if r := validate(t, shapes, `ex:a ex:age 30 ; ex:friend ex:b .`); !r.Conforms {
		t.Errorf("typed data conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a ex:age "thirty" .`); r.Conforms {
		t.Error("string age must violate datatype")
	}
	if r := validate(t, shapes, `ex:a ex:age 30 ; ex:friend "bob" .`); r.Conforms {
		t.Error("literal friend must violate nodeKind")
	}
}

func TestValueRanges(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetSubjectsOf ex:score ;
  sh:property [ sh:path ex:score ; sh:minInclusive 0 ; sh:maxExclusive 100 ] .
`
	if r := validate(t, shapes, `ex:a ex:score 0 . ex:b ex:score 99 .`); !r.Conforms {
		t.Errorf("in-range conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a ex:score 100 .`); r.Conforms {
		t.Error("100 violates maxExclusive")
	}
	if r := validate(t, shapes, `ex:a ex:score -1 .`); r.Conforms {
		t.Error("-1 violates minInclusive")
	}
}

func TestStringFacets(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetSubjectsOf ex:code ;
  sh:property [ sh:path ex:code ; sh:pattern "^[A-Z]+$" ; sh:minLength 2 ; sh:maxLength 4 ] .
`
	if r := validate(t, shapes, `ex:a ex:code "ABC" .`); !r.Conforms {
		t.Errorf("ABC conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a ex:code "abc" .`); r.Conforms {
		t.Error("lowercase violates pattern")
	}
	if r := validate(t, shapes, `ex:a ex:code "A" .`); r.Conforms {
		t.Error("too short violates minLength")
	}
	if r := validate(t, shapes, `ex:a ex:code "ABCDE" .`); r.Conforms {
		t.Error("too long violates maxLength")
	}
}

func TestLogicalConstraints(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetClass ex:T ;
  sh:or ( [ sh:path ex:p ; sh:minCount 1 ] [ sh:path ex:q ; sh:minCount 1 ] ) ;
  sh:not [ sh:path ex:bad ; sh:minCount 1 ] .
`
	if r := validate(t, shapes, `ex:a a ex:T ; ex:p ex:x .`); !r.Conforms {
		t.Errorf("p-branch conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a a ex:T ; ex:q ex:x .`); !r.Conforms {
		t.Errorf("q-branch conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a a ex:T .`); r.Conforms {
		t.Error("neither branch must violate or")
	}
	if r := validate(t, shapes, `ex:a a ex:T ; ex:p ex:x ; ex:bad ex:y .`); r.Conforms {
		t.Error("bad property must violate not")
	}
}

func TestXone(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetClass ex:T ;
  sh:xone ( [ sh:path ex:p ; sh:minCount 1 ] [ sh:path ex:q ; sh:minCount 1 ] ) .
`
	if r := validate(t, shapes, `ex:a a ex:T ; ex:p ex:x .`); !r.Conforms {
		t.Errorf("exactly one conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a a ex:T ; ex:p ex:x ; ex:q ex:y .`); r.Conforms {
		t.Error("both must violate xone")
	}
	if r := validate(t, shapes, `ex:a a ex:T .`); r.Conforms {
		t.Error("neither must violate xone")
	}
}

func TestClosed(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetClass ex:T ;
  sh:closed true ;
  sh:ignoredProperties ( rdf:type ) ;
  sh:property [ sh:path ex:p ; sh:minCount 0 ] .
`
	if r := validate(t, shapes, `ex:a a ex:T ; ex:p ex:x .`); !r.Conforms {
		t.Errorf("declared property conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a a ex:T ; ex:q ex:x .`); r.Conforms {
		t.Error("undeclared property must violate closed")
	}
}

func TestPairConstraints(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetClass ex:T ;
  sh:property [ sh:path ex:first ; sh:lessThan ex:second ] ;
  sh:property [ sh:path ex:alias ; sh:equals ex:name ] .
`
	good := `ex:a a ex:T ; ex:first 1 ; ex:second 2 ; ex:alias "x" ; ex:name "x" .`
	if r := validate(t, shapes, good); !r.Conforms {
		t.Errorf("ordered pairs conform: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a a ex:T ; ex:first 3 ; ex:second 2 .`); r.Conforms {
		t.Error("unordered pair must violate lessThan")
	}
	if r := validate(t, shapes, `ex:a a ex:T ; ex:alias "x" ; ex:name "y" .`); r.Conforms {
		t.Error("different values must violate equals")
	}
}

func TestHasValueAndIn(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetClass ex:T ;
  sh:property [ sh:path ex:status ; sh:hasValue ex:active ] ;
  sh:property [ sh:path ex:color ; sh:in ( ex:red ex:green ) ] .
`
	good := `ex:a a ex:T ; ex:status ex:active , ex:other ; ex:color ex:red .`
	if r := validate(t, shapes, good); !r.Conforms {
		t.Errorf("good graph conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a a ex:T ; ex:status ex:inactive .`); r.Conforms {
		t.Error("missing hasValue must violate")
	}
	if r := validate(t, shapes, `ex:a a ex:T ; ex:status ex:active ; ex:color ex:blue .`); r.Conforms {
		t.Error("blue must violate sh:in")
	}
}

func TestUniqueLangAndLanguageIn(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetSubjectsOf ex:label ;
  sh:property [ sh:path ex:label ; sh:uniqueLang true ; sh:languageIn ( "en" "nl" ) ] .
`
	if r := validate(t, shapes, `ex:a ex:label "hi"@en , "hoi"@nl .`); !r.Conforms {
		t.Errorf("unique languages conform: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a ex:label "hi"@en , "hello"@en .`); r.Conforms {
		t.Error("duplicate language must violate uniqueLang")
	}
	if r := validate(t, shapes, `ex:a ex:label "bonjour"@fr .`); r.Conforms {
		t.Error("french label must violate languageIn")
	}
}

func TestPropertyPaths(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:targetClass ex:T ;
  sh:property [ sh:path ( ex:knows ex:name ) ; sh:minCount 1 ] ;
  sh:property [ sh:path [ sh:inversePath ex:manages ] ; sh:maxCount 1 ] ;
  sh:property [ sh:path [ sh:zeroOrMorePath ex:part ] ; sh:nodeKind sh:IRI ] .
`
	good := `
ex:a a ex:T ; ex:knows ex:b .
ex:b ex:name "B" .
ex:boss ex:manages ex:a .
`
	if r := validate(t, shapes, good); !r.Conforms {
		t.Errorf("good graph conforms: %+v", r.Violations())
	}
	bad := `
ex:a a ex:T ; ex:knows ex:b .
ex:b ex:name "B" .
ex:boss1 ex:manages ex:a . ex:boss2 ex:manages ex:a .
`
	if r := validate(t, shapes, bad); r.Conforms {
		t.Error("two managers must violate inverse-path maxCount")
	}
}

func TestNodeReference(t *testing.T) {
	shapes := `
ex:Address a sh:NodeShape ;
  sh:property [ sh:path ex:city ; sh:minCount 1 ] .
ex:Person a sh:NodeShape ;
  sh:targetClass ex:P ;
  sh:property [ sh:path ex:address ; sh:minCount 1 ; sh:node ex:Address ] .
`
	good := `ex:a a ex:P ; ex:address ex:addr . ex:addr ex:city ex:ghent .`
	if r := validate(t, shapes, good); !r.Conforms {
		t.Errorf("good graph conforms: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:a a ex:P ; ex:address ex:addr .`); r.Conforms {
		t.Error("address without city must violate")
	}
}

func TestTargetForms(t *testing.T) {
	shapes := `
ex:S1 a sh:NodeShape ; sh:targetNode ex:n ; sh:property [ sh:path ex:p ; sh:minCount 1 ] .
ex:S2 a sh:NodeShape ; sh:targetObjectsOf ex:q ; sh:property [ sh:path ex:p ; sh:minCount 1 ] .
`
	data := `
ex:n ex:p ex:x .
ex:src ex:q ex:obj . ex:obj ex:p ex:x .
`
	if r := validate(t, shapes, data); !r.Conforms {
		t.Errorf("all targets conform: %+v", r.Violations())
	}
	if r := validate(t, shapes, `ex:src ex:q ex:obj .`); r.Conforms {
		t.Error("targetNode ex:n (absent from data) and ex:obj must violate")
	}
}

func TestDeactivatedShapeSkipped(t *testing.T) {
	shapes := `
ex:S a sh:NodeShape ;
  sh:deactivated true ;
  sh:targetClass ex:T ;
  sh:property [ sh:path ex:p ; sh:minCount 5 ] .
`
	if r := validate(t, shapes, `ex:a a ex:T .`); !r.Conforms {
		t.Error("deactivated shapes must not be validated")
	}
}

func TestQualifiedValueShapesDisjoint(t *testing.T) {
	// Sibling exclusion: the hand must have 1 thumb (and the thumb does not
	// count toward the 4 fingers).
	shapes := `
ex:Hand a sh:NodeShape ;
  sh:targetClass ex:Hand ;
  sh:property ex:ThumbProp ;
  sh:property ex:FingerProp .
ex:ThumbProp sh:path ex:digit ;
  sh:qualifiedValueShape ex:Thumb ;
  sh:qualifiedValueShapesDisjoint true ;
  sh:qualifiedMinCount 1 ; sh:qualifiedMaxCount 1 .
ex:FingerProp sh:path ex:digit ;
  sh:qualifiedValueShape ex:Finger ;
  sh:qualifiedValueShapesDisjoint true ;
  sh:qualifiedMinCount 4 ; sh:qualifiedMaxCount 4 .
ex:Thumb a sh:NodeShape ; sh:property [ sh:path ex:kind ; sh:hasValue ex:thumb ] .
ex:Finger a sh:NodeShape ; sh:property [ sh:path ex:kind ; sh:hasValue ex:finger ] .
`
	good := `
ex:h a ex:Hand ; ex:digit ex:d1 , ex:d2 , ex:d3 , ex:d4 , ex:d5 .
ex:d1 ex:kind ex:thumb .
ex:d2 ex:kind ex:finger . ex:d3 ex:kind ex:finger .
ex:d4 ex:kind ex:finger . ex:d5 ex:kind ex:finger .
`
	if r := validate(t, shapes, good); !r.Conforms {
		t.Errorf("five digits conform: %+v", r.Violations())
	}
	bad := `
ex:h a ex:Hand ; ex:digit ex:d1 , ex:d2 .
ex:d1 ex:kind ex:thumb .
ex:d2 ex:kind ex:finger .
`
	if r := validate(t, shapes, bad); r.Conforms {
		t.Error("two digits must violate finger count")
	}
}

func TestTranslationErrors(t *testing.T) {
	bad := []string{
		// two sh:path values
		`ex:S a sh:PropertyShape ; sh:path ex:p ; sh:path ex:q ; sh:targetClass ex:T .`,
		// bad count
		`ex:S a sh:NodeShape ; sh:targetClass ex:T ; sh:property [ sh:path ex:p ; sh:minCount "x" ] .`,
		// bad pattern
		`ex:S a sh:NodeShape ; sh:targetClass ex:T ; sh:pattern "(" .`,
		// unknown node kind
		`ex:S a sh:NodeShape ; sh:targetClass ex:T ; sh:nodeKind ex:Weird .`,
	}
	for _, src := range bad {
		if _, err := shaclsyn.ParseSchema(prelude + src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestShapeNamesExposed(t *testing.T) {
	h := mustSchema(t, `
ex:S a sh:NodeShape ; sh:targetClass ex:T ;
  sh:property [ sh:path ex:p ; sh:minCount 1 ] .
`)
	def, ok := h.Def(iri("S"))
	if !ok {
		t.Fatal("named shape must be defined")
	}
	// Per Appendix A, sh:property becomes a hasShape reference whose target
	// (the bracketed property shape) is itself defined in the schema.
	refs := shape.ShapeRefs(def)
	if len(refs) != 1 {
		t.Fatalf("expected one hasShape reference, got %v", refs)
	}
	inner, ok := h.Def(refs[0])
	if !ok {
		t.Fatalf("referenced property shape %s must be defined", refs[0])
	}
	if !strings.Contains(inner.String(), "≥1") {
		t.Errorf("inner shape = %s, want a ≥1 constraint", inner)
	}
}
