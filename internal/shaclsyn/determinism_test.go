package shaclsyn

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shaclfrag/internal/shapelint"
	"shaclfrag/internal/turtle"
)

// A shapes graph leaning on anonymous property shapes, so every derived
// artifact below depends on generated blank-node labels.
const bnodeHeavyShapes = `
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix ex: <http://x/> .
ex:AShape a sh:NodeShape ;
  sh:targetClass ex:A ;
  sh:property [ sh:path ex:p ; sh:minCount 1 ; sh:datatype xsd:string ] ;
  sh:property [ sh:path ex:q ; sh:maxCount 2 ;
    sh:node [ sh:property [ sh:path ex:r ; sh:minCount 1 ] ] ] .
ex:BShape a sh:NodeShape ;
  sh:targetSubjectsOf ex:s ;
  sh:property [ sh:path ex:s ; sh:minCount 3 ; sh:maxCount 1 ] .
`

const bnodeHeavyData = `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix ex: <http://x/> .
ex:a1 rdf:type ex:A ; ex:p "one" ; ex:q ex:b1 .
ex:b1 ex:r ex:c1 .
ex:a2 rdf:type ex:A ; ex:s ex:b1 .
`

// renderArtifacts parses src from scratch and renders every artifact whose
// text embeds generated blank-node labels: the definition list (names in
// declaration order), the shapes-graph round-trip, the shapelint findings,
// and a validation report over data.
func renderArtifacts(t *testing.T, src, data string) []string {
	t.Helper()
	h, err := ParseSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range h.Definitions() {
		out = append(out, fmt.Sprintf("def %s := %s [target %v]", d.Name, d.Shape, d.Target))
	}
	formatted, err := Format(h)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, formatted)
	for _, diag := range shapelint.Run(h) {
		out = append(out, diag.String())
	}
	g, err := turtle.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range h.Validate(g).Results {
		out = append(out, fmt.Sprintf("result %s %s conforms=%v", r.ShapeName, r.Focus, r.Conforms))
	}
	return out
}

// TestBlankNodeLabelStability locks the determinism of generated
// blank-node labels: two independent parses of the same shapes graph must
// agree on every label-bearing artifact — definition names, the formatted
// round-trip, lint findings, and validation report rows. Anything
// map-ordered sneaking into label assignment or rendering breaks golden
// files and cross-run diffing, so this is a regression fence, not a
// property we get for free.
func TestBlankNodeLabelStability(t *testing.T) {
	first := renderArtifacts(t, bnodeHeavyShapes, bnodeHeavyData)
	for run := 1; run <= 5; run++ {
		again := renderArtifacts(t, bnodeHeavyShapes, bnodeHeavyData)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d artifacts vs %d", run, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d artifact %d drifted:\n--- first ---\n%s\n--- again ---\n%s",
					run, i, first[i], again[i])
			}
		}
	}
	if len(first) < 4 {
		t.Fatalf("artifact list suspiciously small: %q", first)
	}
}

// TestBlankNodeLabelStabilityTourism runs the same fence over the
// committed tourism example, whose labels the explain golden files quote
// (_:gen1 …): if label assignment changes, this test and the goldens fail
// together, pointing at the cause rather than the symptom.
func TestBlankNodeLabelStabilityTourism(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "shapes", "tourism.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "data", "tourism.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	first := renderArtifacts(t, string(src), string(data))
	for run := 1; run <= 3; run++ {
		again := renderArtifacts(t, string(src), string(data))
		for i := range first {
			if i >= len(again) || again[i] != first[i] {
				t.Fatalf("run %d: tourism artifact %d drifted", run, i)
			}
		}
	}
	// The labels the explain goldens rely on are present and sequential.
	all := fmt.Sprint(first)
	for _, label := range []string{"_:gen1", "_:gen2", "_:gen3", "_:gen4", "_:gen5"} {
		if !strings.Contains(all, label) {
			t.Errorf("expected generated label %s in artifacts", label)
		}
	}
}
