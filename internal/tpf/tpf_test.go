package tpf_test

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shapetest"
	"shaclfrag/internal/tpf"
	"shaclfrag/internal/turtle"
)

func iri(s string) rdf.Term { return rdf.NewIRI(shapetest.Base + s) }

func TestPatternEval(t *testing.T) {
	g, err := turtle.Parse(`
@prefix ex: <http://test/> .
ex:a ex:p ex:b .
ex:a ex:p ex:a .
ex:a ex:q ex:b .
ex:c ex:p ex:b .
`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pattern tpf.Pattern
		want    int
	}{
		{tpf.Pattern{S: tpf.V("x"), P: tpf.C(iri("p")), O: tpf.V("y")}, 3},
		{tpf.Pattern{S: tpf.V("x"), P: tpf.C(iri("p")), O: tpf.C(iri("b"))}, 2},
		{tpf.Pattern{S: tpf.C(iri("a")), P: tpf.C(iri("p")), O: tpf.V("x")}, 2},
		{tpf.Pattern{S: tpf.C(iri("a")), P: tpf.C(iri("p")), O: tpf.C(iri("b"))}, 1},
		{tpf.Pattern{S: tpf.V("x"), P: tpf.C(iri("p")), O: tpf.V("x")}, 1},
		{tpf.Pattern{S: tpf.V("x"), P: tpf.V("y"), O: tpf.V("z")}, 4},
		{tpf.Pattern{S: tpf.C(iri("a")), P: tpf.V("y"), O: tpf.V("z")}, 3},
		{tpf.Pattern{S: tpf.V("x"), P: tpf.V("y"), O: tpf.V("x")}, 1},
	}
	for _, c := range cases {
		if got := c.pattern.Eval(g); len(got) != c.want {
			t.Errorf("%s matched %d triples, want %d: %v", c.pattern, len(got), c.want, got)
		}
	}
}

// Property (Proposition 6.2, positive direction): for each expressible TPF
// form, the fragment of the request shape equals the TPF on random graphs.
func TestExpressibleFormsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	patterns := []tpf.Pattern{
		{S: tpf.V("x"), P: tpf.C(iri("p")), O: tpf.V("y")},
		{S: tpf.V("x"), P: tpf.C(iri("p")), O: tpf.C(iri("b"))},
		{S: tpf.C(iri("a")), P: tpf.C(iri("p")), O: tpf.V("x")},
		{S: tpf.C(iri("a")), P: tpf.C(iri("p")), O: tpf.C(iri("b"))},
		{S: tpf.V("x"), P: tpf.C(iri("p")), O: tpf.V("x")},
		{S: tpf.V("x"), P: tpf.V("y"), O: tpf.V("z")},
		{S: tpf.C(iri("a")), P: tpf.V("y"), O: tpf.V("z")},
	}
	for trial := 0; trial < 40; trial++ {
		g := shapetest.RandomGraph(rng, 12)
		for _, pattern := range patterns {
			phi, ok := pattern.RequestShape()
			if !ok {
				t.Fatalf("%s must be expressible", pattern)
			}
			want := pattern.Eval(g)
			got := core.Fragment(g, nil, phi)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %s via %s:\nfragment %v\nTPF %v\ngraph:\n%s",
					trial, pattern, phi, got, want, turtle.FormatGraph(g))
			}
			wantSet := make(map[rdf.Triple]bool, len(want))
			for _, tr := range want {
				wantSet[tr] = true
			}
			for _, tr := range got {
				if !wantSet[tr] {
					t.Fatalf("trial %d: %s via %s: extra triple %v", trial, pattern, phi, tr)
				}
			}
		}
	}
}

func TestInexpressibleForms(t *testing.T) {
	// The Appendix D table of inexpressible TPFs.
	inexpressible := []tpf.Pattern{
		{S: tpf.V("x"), P: tpf.V("y"), O: tpf.V("x")},
		{S: tpf.V("x"), P: tpf.V("y"), O: tpf.V("y")},
		{S: tpf.V("x"), P: tpf.V("x"), O: tpf.V("x")},
		{S: tpf.V("x"), P: tpf.V("x"), O: tpf.V("y")},
		{S: tpf.V("x"), P: tpf.V("y"), O: tpf.C(iri("c"))},
		{S: tpf.V("x"), P: tpf.V("x"), O: tpf.C(iri("c"))},
		{S: tpf.C(iri("c")), P: tpf.V("x"), O: tpf.V("x")},
		{S: tpf.C(iri("c")), P: tpf.V("x"), O: tpf.C(iri("d"))},
	}
	for _, pattern := range inexpressible {
		if phi, ok := pattern.RequestShape(); ok {
			t.Errorf("%s must not be expressible, got %s", pattern, phi)
		}
	}
	// Literal or blank predicates are invalid patterns.
	if _, ok := (tpf.Pattern{S: tpf.V("x"), P: tpf.C(rdf.NewString("p")), O: tpf.V("y")}).RequestShape(); ok {
		t.Error("literal predicate must not be expressible")
	}
}

// Lemma D.1 is the engine of the inexpressibility proofs: if a fragment
// contains a triple whose property is not mentioned in φ, it contains all
// the focus node's triples over unmentioned properties. We verify it on
// the Appendix D counterexample graph for (?x, ?x, ?y).
func TestLemmaD1Counterexample(t *testing.T) {
	g, err := turtle.Parse(`
@prefix ex: <http://test/> .
ex:a ex:a ex:b .
ex:a ex:c ex:b .
`)
	if err != nil {
		t.Fatal(err)
	}
	// The TPF (?x,?x,?y) selects only (a,a,b).
	q := tpf.Pattern{S: tpf.V("x"), P: tpf.V("x"), O: tpf.V("y")}
	if got := q.Eval(g); len(got) != 1 {
		t.Fatalf("TPF = %v, want only the self-property triple", got)
	}
	// Any shape not mentioning a or c either captures both triples or
	// neither — here we spot-check the canonical candidate ¬closed(∅).
	phi, ok := tpf.Pattern{S: tpf.V("x"), P: tpf.V("y"), O: tpf.V("z")}.RequestShape()
	if !ok {
		t.Fatal("full-scan pattern must be expressible")
	}
	frag := core.Fragment(g, nil, phi)
	if len(frag) != 2 {
		t.Fatalf("¬closed(∅) fragment = %v, want both triples", frag)
	}
}
