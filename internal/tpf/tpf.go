// Package tpf implements Triple Pattern Fragments (Section 6.1): the
// subgraph-returning queries defined by a single triple pattern, and the
// Proposition 6.2 mapping of expressible TPFs onto request shapes whose
// shape fragments return the same subgraph.
package tpf

import (
	"fmt"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// Pos is one position of a triple pattern: a variable (Var non-empty) or a
// constant term.
type Pos struct {
	Var  string
	Term rdf.Term
}

// V makes a variable position.
func V(name string) Pos { return Pos{Var: name} }

// C makes a constant position.
func C(t rdf.Term) Pos { return Pos{Term: t} }

// IsVar reports whether the position is a variable.
func (p Pos) IsVar() bool { return p.Var != "" }

func (p Pos) String() string {
	if p.IsVar() {
		return "?" + p.Var
	}
	return p.Term.String()
}

// Pattern is a triple pattern (u, v, w). Repeated variable names impose
// equality, e.g. (?x, p, ?x) matches only self-loops.
type Pattern struct {
	S, P, O Pos
}

func (p Pattern) String() string {
	return fmt.Sprintf("(%s, %s, %s)", p.S, p.P, p.O)
}

// Eval returns the TPF of g for the pattern: all images of the pattern in
// g, i.e. the matching triples, in canonical order.
func (p Pattern) Eval(g rdfgraph.Reader) []rdf.Triple {
	var out []rdf.Triple
	g.EachTriple(func(s, pr, o rdfgraph.ID) {
		t := rdf.Triple{S: g.Term(s), P: g.Term(pr), O: g.Term(o)}
		if p.Matches(t) {
			out = append(out, t)
		}
	})
	sortTriples(out)
	return out
}

// Matches reports whether the triple is an image of the pattern.
func (p Pattern) Matches(t rdf.Triple) bool {
	bind := map[string]rdf.Term{}
	for _, pair := range []struct {
		pos  Pos
		term rdf.Term
	}{{p.S, t.S}, {p.P, t.P}, {p.O, t.O}} {
		if !pair.pos.IsVar() {
			if pair.pos.Term != pair.term {
				return false
			}
			continue
		}
		if prev, ok := bind[pair.pos.Var]; ok {
			if prev != pair.term {
				return false
			}
			continue
		}
		bind[pair.pos.Var] = pair.term
	}
	return true
}

func sortTriples(ts []rdf.Triple) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && rdf.CompareTriples(ts[j], ts[j-1]) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// RequestShape implements Proposition 6.2: it returns a request shape φ
// with Frag(G, {φ}) = pattern(G) for every graph G, and ok = false for the
// TPF forms that are not expressible as shape fragments (variables in the
// property position combined with constants or repeated variables).
//
// The seven expressible forms and their shapes:
//
//	(?x, p, ?y) → ≥1 p.⊤
//	(?x, p, c)  → ≥1 p.hasValue(c)
//	(c, p, ?x)  → ≥1 p⁻.hasValue(c)
//	(c, p, d)   → hasValue(c) ∧ ≥1 p.hasValue(d)
//	(?x, p, ?x) → ¬disj(id, p)
//	(?x, ?y, ?z) → ¬closed(∅)
//	(c, ?y, ?z)  → hasValue(c) ∧ ¬closed(∅)
func (p Pattern) RequestShape() (shape.Shape, bool) {
	if !p.P.IsVar() {
		if !p.P.Term.IsIRI() {
			return nil, false // predicates must be IRIs
		}
		prop := p.P.Term.Value
		e := paths.P(prop)
		switch {
		case !p.S.IsVar() && !p.O.IsVar():
			// (c, p, d)
			return shape.AndOf(shape.Value(p.S.Term), shape.Min(1, e, shape.Value(p.O.Term))), true
		case !p.S.IsVar():
			// (c, p, ?x)
			return shape.Min(1, paths.Inv(e), shape.Value(p.S.Term)), true
		case !p.O.IsVar():
			// (?x, p, c)
			return shape.Min(1, e, shape.Value(p.O.Term)), true
		case p.S.Var == p.O.Var:
			// (?x, p, ?x)
			return shape.Neg(shape.DisjID(prop)), true
		default:
			// (?x, p, ?y)
			return shape.Min(1, e, shape.TrueShape()), true
		}
	}
	// Variable property position: only full scans (?x,?y,?z) and
	// subject-constant scans (c,?y,?z) are expressible, via ¬closed(∅).
	if p.O.IsVar() && p.O.Var != p.P.Var {
		switch {
		case !p.S.IsVar():
			return shape.AndOf(shape.Value(p.S.Term), shape.Neg(shape.ClosedShape())), true
		case p.S.Var != p.P.Var && p.S.Var != p.O.Var:
			return shape.Neg(shape.ClosedShape()), true
		}
	}
	return nil, false
}
