package plan_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/store"
	"shaclfrag/internal/turtle"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// parityCase is one (data graph, schema) pair whose whole-schema fragment
// must come out byte-identical from plan-based and AST-based extraction.
type parityCase struct {
	name string
	g    *rdfgraph.Graph
	h    *schema.Schema
}

// exampleParityCases loads every schema under examples/shapes against the
// example tourism data, plus a synthetic graph under the benchmark shapes —
// the same corpus the sharded-store parity suite gates on.
func exampleParityCases(t *testing.T) []parityCase {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "data", "tourism.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	shapeFiles, err := filepath.Glob(filepath.Join("..", "..", "examples", "shapes", "*.ttl"))
	if err != nil || len(shapeFiles) == 0 {
		t.Fatalf("no example schemas found: %v", err)
	}
	var cases []parityCase
	for _, sf := range shapeFiles {
		src, err := os.ReadFile(sf)
		if err != nil {
			t.Fatal(err)
		}
		h, err := shaclsyn.ParseSchema(string(src))
		if err != nil {
			t.Fatalf("%s: %v", sf, err)
		}
		g, err := turtle.Parse(string(data))
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, parityCase{name: filepath.Base(sf), g: g, h: h})
	}
	cases = append(cases, parityCase{
		name: "datagen",
		g:    datagen.Tyrol(datagen.TyrolConfig{Individuals: 250, Seed: 11}),
		h:    schema.MustNew(datagen.BenchmarkShapes()...),
	})
	return cases
}

// TestPlanFragmentParity is the tentpole acceptance gate: Frag(G, H)
// extracted by compiled plans through FragmentParallel is byte-identical
// to the AST extractor's output for every example schema, across shard
// counts 1/4 × worker counts 1/4, with and without the neighborhood cache.
func TestPlanFragmentParity(t *testing.T) {
	for _, tc := range exampleParityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			store.WarmDictionary(tc.g, tc.h)
			want := turtle.FormatNTriples(core.FragmentSchema(tc.g, tc.h))
			requests := core.SchemaRequests(tc.h)
			plans := plan.CompileAll(requests, tc.h)
			for _, shards := range []int{1, 4} {
				cfg := store.Config{Backend: store.BackendSharded, Shards: shards}
				if shards == 1 {
					cfg = store.Config{}
				}
				st, err := store.New(tc.g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					for _, cached := range []bool{false, true} {
						var cache *core.NeighborhoodCache
						if cached {
							cache = core.NewNeighborhoodCache(1 << 20)
						}
						x := core.NewExtractor(st.Current().Reader(), tc.h)
						frag, err := x.FragmentParallel(requests, core.ParallelOptions{
							Workers: workers,
							Plans:   plans,
							Cache:   cache,
						})
						if err != nil {
							t.Fatal(err)
						}
						if got := turtle.FormatNTriples(frag); got != want {
							t.Errorf("shards=%d workers=%d cached=%v: plan fragment differs from AST (%d vs %d bytes)",
								shards, workers, cached, len(got), len(want))
						}
						if cached {
							// Second pass hits the plan-populated cache.
							frag, err = x.FragmentParallel(requests, core.ParallelOptions{
								Workers: workers, Plans: plans, Cache: cache,
							})
							if err != nil {
								t.Fatal(err)
							}
							if got := turtle.FormatNTriples(frag); got != want {
								t.Errorf("shards=%d workers=%d: cached replay differs", shards, workers)
							}
						}
					}
				}
			}
		})
	}
}

// TestPlannerFragmentParity runs the same corpus through the cost-based
// planner's mixed program set (nil entries fall back to the AST walker) —
// the exact configuration fragserver serves with.
func TestPlannerFragmentParity(t *testing.T) {
	for _, tc := range exampleParityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			store.WarmDictionary(tc.g, tc.h)
			want := turtle.FormatNTriples(core.FragmentSchema(tc.g, tc.h))
			requests := core.SchemaRequests(tc.h)
			st, err := store.New(tc.g, store.Config{Backend: store.BackendSharded, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			sp := plan.PlanSchema(tc.h, store.SampleStats(st.Current()), plan.Config{})
			x := core.NewExtractor(st.Current().Reader(), tc.h)
			frag, err := x.FragmentParallel(requests, core.ParallelOptions{
				Workers: 4,
				Plans:   sp.ProgramSet(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := turtle.FormatNTriples(frag); got != want {
				t.Errorf("planner-routed fragment differs from AST (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestGoldenWorkshopPlan pins the compiled plan text for the workshop
// schema — the same disassembly `shaclfrag plan -shapes workshop.ttl`
// prints. Regenerate after intended compiler changes with:
//
//	go test ./internal/plan -run Golden -update
func TestGoldenWorkshopPlan(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "shapes", "workshop.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := shaclsyn.ParseSchema(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for i, d := range h.Definitions() {
		if i > 0 {
			out = append(out, '\n')
		}
		out = append(out, "== "+d.Name.String()+"\n"...)
		out = append(out, plan.Compile(shape.AndOf(d.Shape, d.Target), h).String()...)
	}
	golden := filepath.Join("testdata", "workshop.plan.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(out) != string(want) {
		t.Errorf("compiled plan text drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out, want)
	}
}
