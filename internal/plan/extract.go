package plan

import (
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// CollectInto accumulates B(v, G, φ) for the program's root shape into out,
// implementing Table 2 over instructions. The visited state persists across
// calls (matching core.Extractor's shared visited set when accumulating a
// fragment); use ResetVisited to start an isolated per-node unit, as the
// neighborhood cache requires. The triples produced are exactly those of
// core.Extractor.collect for the same shape — the parity suites gate this.
func (b *Bound) CollectInto(v rdfgraph.ID, out *rdfgraph.IDTripleSet) {
	b.collect(v, b.prog.Root, out)
}

// ResetVisited begins a new accumulation unit: previously visited
// (instruction, node) pairs will be re-collected. Costs a generation bump;
// rows are wiped only when the 8-bit generation wraps.
func (b *Bound) ResetVisited() {
	b.Resets++
	b.gen++
	if b.gen == 0 {
		for i := range b.visited {
			clear(b.visited[i])
		}
		b.gen = 1
	}
}

// wit is the witness-list scratch pool, separate from succ/vals because
// Table 2 rows filter path values into a witness list that must survive
// both the trace and the recursion into each witness.
func (b *Bound) witScratch(d int) []rdfgraph.ID { return scratch(&b.wit, d) }

// trace unions graph(paths(E, G, v, targets)) into out for a path slot:
// the plan-level equivalent of core.Extractor.addTrace without attribution
// (plans carry no recorder; the planner falls back to the AST extractor
// when attribution is requested).
func (b *Bound) trace(slot int32, v rdfgraph.ID, targets []rdfgraph.ID, out *rdfgraph.IDTripleSet) {
	if len(targets) == 0 {
		return
	}
	if a := b.atomics[slot]; a.ok {
		if a.pred == rdfgraph.NoID {
			return
		}
		for _, t := range targets {
			if a.fwd {
				if b.g.HasIDs(v, a.pred, t) {
					out.Add(rdfgraph.IDTriple{S: v, P: a.pred, O: t})
				}
			} else if b.g.HasIDs(t, a.pred, v) {
				out.Add(rdfgraph.IDTriple{S: t, P: a.pred, O: v})
			}
		}
		return
	}
	for _, tr := range b.pes[slot].TraceUnionIDs(v, targets) {
		out.Add(tr)
	}
}

// collect implements Table 2 for instruction i at focus v. The cases mirror
// core.Extractor.collect exactly.
func (b *Bound) collect(v rdfgraph.ID, i int32, out *rdfgraph.IDTripleSet) {
	r := b.row(b.visited, i, v)
	if r[v] == b.gen {
		return
	}
	r[v] = b.gen

	if !b.Conforms(v, i) {
		return // B(v, G, φ) = ∅ when v does not conform
	}

	in := &b.prog.Instrs[i]
	switch in.Op {
	case OpTrue, OpFalse, OpTest, OpHasValue, OpClosed, OpDisj,
		OpLessThan, OpLessThanEq, OpMoreThan, OpMoreThanEq, OpUniqueLang:
		// Minimal neighborhoods: no triples as evidence (Section 3.1).
		return

	case OpRef:
		b.collect(v, in.Args[0], out)

	case OpAnd, OpOr:
		// Conjunctions collect every conjunct; disjunctions collect every
		// conforming disjunct (collect itself skips non-conforming ones).
		for _, c := range in.Args {
			b.collect(v, c, out)
		}

	case OpMin:
		// ⋃ { graph(paths(E,G,v,x)) ∪ B(x,G,ψ) | x ∈ ⟦E⟧G(v), G,x ⊨ ψ }
		d := b.depth
		b.depth++
		values := b.pathValues(in.Path, v, d)
		witnesses := b.witScratch(d)
		for _, x := range values {
			if b.Conforms(x, in.Args[0]) {
				witnesses = append(witnesses, x)
			}
		}
		putScratch(&b.wit, d, witnesses)
		b.trace(in.Path, v, witnesses, out)
		for _, x := range witnesses {
			b.collect(x, in.Args[0], out)
		}
		b.depth--

	case OpMax:
		// ⋃ { graph(paths(E,G,v,x)) ∪ B(x,G,¬ψ) | x ∈ ⟦E⟧G(v), G,x ⊨ ¬ψ }
		d := b.depth
		b.depth++
		values := b.pathValues(in.Path, v, d)
		counterexamples := b.witScratch(d)
		for _, x := range values {
			if !b.Conforms(x, in.Args[0]) {
				counterexamples = append(counterexamples, x)
			}
		}
		putScratch(&b.wit, d, counterexamples)
		b.trace(in.Path, v, counterexamples, out)
		for _, x := range counterexamples {
			b.collect(x, in.Args[1], out)
		}
		b.depth--

	case OpForall:
		// ⋃ { graph(paths(E,G,v,x)) ∪ B(x,G,ψ) | x ∈ ⟦E⟧G(v) }
		d := b.depth
		b.depth++
		values := b.pathValues(in.Path, v, d)
		b.trace(in.Path, v, values, out)
		for _, x := range values {
			b.collect(x, in.Args[0], out)
		}
		b.depth--

	case OpEq:
		if in.Path == NoPath {
			// eq(id, p): {(v, p, v)}; conformance guarantees presence.
			if pid := b.preds[i]; pid != rdfgraph.NoID {
				out.Add(rdfgraph.IDTriple{S: v, P: pid, O: v})
			}
			return
		}
		// eq(E, p): ⋃ { graph(paths(E ∪ p, G, v, x)) | x ∈ ⟦E ∪ p⟧G(v) }
		pe := b.pes[in.TracePath]
		for _, tr := range pe.TraceUnionIDs(v, pe.Eval(v)) {
			out.Add(tr)
		}

	case OpNeg:
		if in.Name != (rdf.Term{}) {
			// ¬hasShape(s): Args[0] is NNF(¬def(s)) — collect it.
			b.collect(v, in.Args[0], out)
			return
		}
		b.collectNegatedAtom(v, in.Args[0], out)

	default:
		panic("plan: shape not in NNF in collect")
	}
}

// collectNegatedAtom handles Table 2's negated-atom rows; ai indexes the
// atom instruction under the negation. The focus node conforms to ¬atom.
func (b *Bound) collectNegatedAtom(v rdfgraph.ID, ai int32, out *rdfgraph.IDTripleSet) {
	in := &b.prog.Instrs[ai]
	switch in.Op {
	case OpEq:
		pid := b.preds[ai]
		if in.Path == NoPath {
			if pid == rdfgraph.NoID {
				return // no p-triples: nothing to witness
			}
			// ¬eq(id, p): {(v, p, x) ∈ G | x ≠ v}
			d := b.depth
			b.depth++
			for _, o := range b.propValues(ai, v, d) {
				if o != v {
					out.Add(rdfgraph.IDTriple{S: v, P: pid, O: o})
				}
			}
			b.depth--
			return
		}
		// ¬eq(E, p): E-paths to x with (v,p,x) ∉ G, plus p-triples to x
		// outside ⟦E⟧G(v). Both sides are sorted sets, so the set
		// differences are merges.
		d := b.depth
		b.depth++
		pValues := b.propValues(ai, v, d)
		eValues := b.pathValues(in.Path, v, d)
		witnesses := b.witScratch(d)
		for _, x := range eValues {
			if _, inP := sortedContains(pValues, x); !inP {
				witnesses = append(witnesses, x)
			}
		}
		putScratch(&b.wit, d, witnesses)
		b.trace(in.Path, v, witnesses, out)
		for _, o := range pValues {
			if _, inE := sortedContains(eValues, o); !inE {
				out.Add(rdfgraph.IDTriple{S: v, P: pid, O: o})
			}
		}
		b.depth--

	case OpDisj:
		pid := b.preds[ai]
		if pid == rdfgraph.NoID {
			return // ¬disj needs a shared p-value, so p occurs in G
		}
		if in.Path == NoPath {
			// ¬disj(id, p): {(v, p, v)}
			out.Add(rdfgraph.IDTriple{S: v, P: pid, O: v})
			return
		}
		// ¬disj(E, p): E-paths to common values x, plus the (v, p, x) edges.
		d := b.depth
		b.depth++
		pValues := b.propValues(ai, v, d)
		eValues := b.pathValues(in.Path, v, d)
		common := b.witScratch(d)
		for _, x := range eValues {
			if _, inP := sortedContains(pValues, x); inP {
				common = append(common, x)
			}
		}
		putScratch(&b.wit, d, common)
		b.trace(in.Path, v, common, out)
		for _, x := range common {
			out.Add(rdfgraph.IDTriple{S: v, P: pid, O: x})
		}
		b.depth--

	case OpLessThan:
		b.collectNegatedOrder(v, ai, rdf.Less, out)
	case OpLessThanEq:
		b.collectNegatedOrder(v, ai, rdf.LessEq, out)
	case OpMoreThan:
		b.collectNegatedOrder(v, ai, func(bt, yt rdf.Term) bool { return rdf.Less(yt, bt) }, out)
	case OpMoreThanEq:
		b.collectNegatedOrder(v, ai, func(bt, yt rdf.Term) bool { return rdf.LessEq(yt, bt) }, out)

	case OpUniqueLang:
		// ¬uniqueLang(E): E-paths to every x that clashes with some y ≠ x.
		d := b.depth
		b.depth++
		values := b.pathValues(in.Path, v, d)
		byLang := make(map[string][]rdfgraph.ID)
		for _, x := range values {
			t := b.g.Term(x)
			if t.IsLiteral() && t.Lang != "" {
				byLang[t.Lang] = append(byLang[t.Lang], x)
			}
		}
		clashing := b.witScratch(d)
		for _, group := range byLang {
			if len(group) > 1 {
				clashing = append(clashing, group...)
			}
		}
		putScratch(&b.wit, d, clashing)
		b.trace(in.Path, v, clashing, out)
		b.depth--

	case OpClosed:
		// ¬closed(P): {(v, p, x) ∈ G | p ∉ P}
		ids := b.allowed[ai]
		b.g.PredicatesFrom(v, func(p, o rdfgraph.ID) {
			if !sortedHas(ids, p) {
				out.Add(rdfgraph.IDTriple{S: v, P: p, O: o})
			}
		})

	case OpTrue, OpFalse, OpTest, OpHasValue:
		// Negated node-level atoms involve no triples: empty neighborhood.
		return

	default:
		panic("plan: negation not in NNF in collect")
	}
}

// collectNegatedOrder handles the four negated order constraints: E-paths
// to x plus p-edges (v,p,y) with ¬cmp(x, y).
func (b *Bound) collectNegatedOrder(v rdfgraph.ID, ai int32, cmp func(bt, yt rdf.Term) bool, out *rdfgraph.IDTripleSet) {
	in := &b.prog.Instrs[ai]
	pid := b.preds[ai]
	if pid == rdfgraph.NoID {
		return // no p-values means no order violation to witness
	}
	d := b.depth
	b.depth++
	pValues := b.propValues(ai, v, d)
	values := b.pathValues(in.Path, v, d)
	witnesses := b.witScratch(d)
	for _, x := range values {
		bt := b.g.Term(x)
		witness := false
		for _, y := range pValues {
			if !cmp(bt, b.g.Term(y)) {
				out.Add(rdfgraph.IDTriple{S: v, P: pid, O: y})
				witness = true
			}
		}
		if witness {
			witnesses = append(witnesses, x)
		}
	}
	putScratch(&b.wit, d, witnesses)
	b.trace(in.Path, v, witnesses, out)
	b.depth--
}

// sortedContains reports membership of x in a sorted slice.
func sortedContains(s []rdfgraph.ID, x rdfgraph.ID) (int, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo] == x
}

func sortedHas(s []rdfgraph.ID, x rdfgraph.ID) bool {
	_, ok := sortedContains(s, x)
	return ok
}
