package plan

import (
	"slices"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// atomicPath is the bind-time resolution of a path slot whose expression is
// a bare property or its inverse: successor enumeration and trace collapse
// to single index lookups, bypassing the product automaton entirely.
type atomicPath struct {
	ok   bool
	fwd  bool
	pred rdfgraph.ID
}

// Bound is a Program resolved against one graph: predicate and constant
// IDs looked up, path evaluators built, and dense per-instruction memo and
// visited arrays ready. A Bound is single-goroutine state, like
// shape.Evaluator and core.Extractor; FragmentParallel gives each worker
// its own. All evaluation and extraction through a Bound is read-only on
// the graph.
//
// Memory: the memo and visited rows cost about 2 bytes × instructions ×
// dictionary terms once every instruction has been touched. MemoBytes
// reports the full-population bound; the strategy planner refuses plans
// whose bound exceeds its budget and falls back to the AST walker.
type Bound struct {
	prog *Program
	g    rdfgraph.Reader

	// Per-path-slot machinery: atomic fast paths resolved, product-automaton
	// evaluators built only for the slots that need one.
	atomics []atomicPath
	pes     []*paths.Evaluator

	preds   []rdfgraph.ID   // per instruction: resolved Pred (NoID if absent)
	consts  []rdfgraph.ID   // per instruction: resolved Const for OpHasValue
	allowed [][]rdfgraph.ID // per instruction: sorted allowed-predicate IDs

	// memo rows hold conformance per (instruction, node): 0 unknown,
	// 1 conforms, 2 does not. Rows are allocated on an instruction's first
	// evaluation and persist for the lifetime of the Bound — the dense
	// replacement for the evaluator's map[shape, node]bool.
	memo [][]uint8
	// visited rows carry generation stamps for Table 2's visited set;
	// ResetVisited bumps gen instead of clearing, and rows are wiped only
	// when the uint8 generation wraps.
	visited [][]uint8
	gen     uint8

	// Per-depth scratch for successor, property-value and witness lists,
	// reused across focus nodes; depth is the quantifier nesting level.
	succ  [][]rdfgraph.ID
	vals  [][]rdfgraph.ID
	wit   [][]rdfgraph.ID
	depth int

	// langs is the uniqueLang scratch map, cleared per evaluation.
	langs map[string]rdfgraph.ID

	// Checks counts conformance evaluations actually run (memo misses),
	// mirroring shape.Evaluator.Checks.
	Checks int
	// Resets counts ResetVisited calls — one per isolated accumulation
	// unit, surfaced as the memo_resets span attribute in traces.
	Resets int
}

// Bind resolves p against g. Binding is cheap relative to extraction: IRI
// lookups for every operand plus NFA compilation for non-atomic paths; the
// dense arrays are allocated lazily as instructions are first evaluated.
func (p *Program) Bind(g rdfgraph.Reader) *Bound {
	b := &Bound{
		prog:    p,
		g:       g,
		atomics: make([]atomicPath, len(p.Paths)),
		pes:     make([]*paths.Evaluator, len(p.Paths)),
		preds:   make([]rdfgraph.ID, len(p.Instrs)),
		consts:  make([]rdfgraph.ID, len(p.Instrs)),
		allowed: make([][]rdfgraph.ID, len(p.Instrs)),
		memo:    make([][]uint8, len(p.Instrs)),
		visited: make([][]uint8, len(p.Instrs)),
		gen:     1,
	}
	for i, e := range p.Paths {
		switch x := e.(type) {
		case paths.Prop:
			b.atomics[i] = atomicPath{ok: true, fwd: true, pred: g.LookupTerm(rdf.NewIRI(x.IRI))}
			continue
		case paths.Inverse:
			if pr, ok := x.X.(paths.Prop); ok {
				b.atomics[i] = atomicPath{ok: true, fwd: false, pred: g.LookupTerm(rdf.NewIRI(pr.IRI))}
				continue
			}
		}
		b.pes[i] = paths.NewEvaluator(e, g)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		b.preds[i] = rdfgraph.NoID
		b.consts[i] = rdfgraph.NoID
		if in.Pred != "" {
			b.preds[i] = g.LookupTerm(rdf.NewIRI(in.Pred))
		}
		if in.Op == OpHasValue {
			b.consts[i] = g.LookupTerm(in.Const)
		}
		if in.Op == OpClosed {
			ids := make([]rdfgraph.ID, 0, len(in.Allowed))
			for _, iri := range in.Allowed {
				if id := g.LookupTerm(rdf.NewIRI(iri)); id != rdfgraph.NoID {
					ids = append(ids, id)
				}
			}
			slices.Sort(ids)
			b.allowed[i] = ids
		}
	}
	return b
}

// Graph returns the bound graph.
func (b *Bound) Graph() rdfgraph.Reader { return b.g }

// Program returns the compiled program.
func (b *Bound) Program() *Program { return b.prog }

// MemoBytes estimates the fully-populated dense-array footprint of binding
// p to a dictionary of dictTerms entries: memo plus visited rows for every
// instruction. The planner compares this against its memory budget.
func (p *Program) MemoBytes(dictTerms int) int64 {
	return 2 * int64(len(p.Instrs)) * int64(dictTerms)
}

// row returns instruction i's slice from pool, grown to cover node v.
func (b *Bound) row(pool [][]uint8, i int32, v rdfgraph.ID) []uint8 {
	r := pool[i]
	if int(v) < len(r) {
		return r
	}
	n := b.g.Dict().Len()
	if n <= int(v) {
		n = int(v) + 1
	}
	nr := make([]uint8, n)
	copy(nr, r)
	pool[i] = nr
	return nr
}

// Conforms reports H, G, v ⊨ φᵢ for instruction i, memoized densely.
func (b *Bound) Conforms(v rdfgraph.ID, i int32) bool {
	r := b.row(b.memo, i, v)
	if m := r[v]; m != 0 {
		return m == 1
	}
	b.Checks++
	res := b.eval(v, i)
	// Recursive evaluation may have regrown the row; write through the pool.
	if res {
		b.memo[i][v] = 1
	} else {
		b.memo[i][v] = 2
	}
	return res
}

// ConformsRoot reports conformance to the program's root shape.
func (b *Bound) ConformsRoot(v rdfgraph.ID) bool { return b.Conforms(v, b.prog.Root) }

// scratch returns the depth-d buffer of pool, truncated to empty.
func scratch(pool *[][]rdfgraph.ID, d int) []rdfgraph.ID {
	for len(*pool) <= d {
		*pool = append(*pool, nil)
	}
	return (*pool)[d][:0]
}

// putScratch stores the (possibly regrown) buffer back in its slot.
func putScratch(pool *[][]rdfgraph.ID, d int, buf []rdfgraph.ID) {
	(*pool)[d] = buf
}

// pathValues returns ⟦E⟧G(v) for path slot, sorted and duplicate-free. For
// atomic slots the result lives in the depth-d succ scratch buffer (valid
// until the next depth-d use); for automaton slots it is the evaluator's
// memoized slice. Callers must not retain or modify it.
func (b *Bound) pathValues(slot int32, v rdfgraph.ID, d int) []rdfgraph.ID {
	if a := b.atomics[slot]; a.ok {
		out := scratch(&b.succ, d)
		if a.pred != rdfgraph.NoID {
			if a.fwd {
				b.g.Objects(v, a.pred, func(o rdfgraph.ID) { out = append(out, o) })
			} else {
				b.g.Subjects(a.pred, v, func(s rdfgraph.ID) { out = append(out, s) })
			}
		}
		slices.Sort(out)
		putScratch(&b.succ, d, out)
		return out
	}
	return b.pes[slot].Eval(v)
}

// propValues returns ⟦p⟧G(v) for instruction i's Pred operand, sorted, in
// the depth-d vals scratch buffer.
func (b *Bound) propValues(i int32, v rdfgraph.ID, d int) []rdfgraph.ID {
	out := scratch(&b.vals, d)
	if pid := b.preds[i]; pid != rdfgraph.NoID {
		b.g.Objects(v, pid, func(o rdfgraph.ID) { out = append(out, o) })
		slices.Sort(out)
	}
	putScratch(&b.vals, d, out)
	return out
}

// eval decides instruction i at v. The cases mirror shape.Evaluator.eval
// exactly; any divergence is a parity bug.
func (b *Bound) eval(v rdfgraph.ID, i int32) bool {
	in := &b.prog.Instrs[i]
	switch in.Op {
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpTest:
		return in.Test.Holds(b.g.Term(v))
	case OpHasValue:
		return b.consts[i] != rdfgraph.NoID && v == b.consts[i]
	case OpAnd:
		for _, c := range in.Args {
			if !b.Conforms(v, c) {
				return false
			}
		}
		return true
	case OpOr:
		for _, c := range in.Args {
			if b.Conforms(v, c) {
				return true
			}
		}
		return false
	case OpRef:
		return b.Conforms(v, in.Args[0])
	case OpNeg:
		if in.Name != (rdf.Term{}) {
			// ¬hasShape(s): Args[0] is NNF(¬def(s)), already the negation.
			return b.Conforms(v, in.Args[0])
		}
		return !b.Conforms(v, in.Args[0])
	case OpMin:
		d := b.depth
		b.depth++
		values := b.pathValues(in.Path, v, d)
		count := 0
		for _, x := range values {
			if b.Conforms(x, in.Args[0]) {
				count++
				if count >= in.N {
					b.depth--
					return true
				}
			}
		}
		b.depth--
		return count >= in.N // covers n = 0
	case OpMax:
		d := b.depth
		b.depth++
		values := b.pathValues(in.Path, v, d)
		count := 0
		for _, x := range values {
			if b.Conforms(x, in.Args[0]) {
				count++
				if count > in.N {
					b.depth--
					return false
				}
			}
		}
		b.depth--
		return true
	case OpForall:
		d := b.depth
		b.depth++
		values := b.pathValues(in.Path, v, d)
		for _, x := range values {
			if !b.Conforms(x, in.Args[0]) {
				b.depth--
				return false
			}
		}
		b.depth--
		return true
	case OpEq:
		d := b.depth
		b.depth++
		ok := equalSets(b.idOrPath(in.Path, v, d), b.propValues(i, v, d))
		b.depth--
		return ok
	case OpDisj:
		d := b.depth
		b.depth++
		ok := disjointSets(b.idOrPath(in.Path, v, d), b.propValues(i, v, d))
		b.depth--
		return ok
	case OpClosed:
		ok := true
		ids := b.allowed[i]
		b.g.PredicatesFrom(v, func(p, _ rdfgraph.ID) {
			if !ok {
				return
			}
			if _, found := slices.BinarySearch(ids, p); !found {
				ok = false
			}
		})
		return ok
	case OpLessThan:
		return b.evalOrder(i, v, rdf.Less)
	case OpLessThanEq:
		return b.evalOrder(i, v, rdf.LessEq)
	case OpMoreThan:
		return b.evalOrder(i, v, func(bt, ct rdf.Term) bool { return rdf.Less(ct, bt) })
	case OpMoreThanEq:
		return b.evalOrder(i, v, func(bt, ct rdf.Term) bool { return rdf.LessEq(ct, bt) })
	case OpUniqueLang:
		d := b.depth
		b.depth++
		values := b.pathValues(in.Path, v, d)
		if b.langs == nil {
			b.langs = make(map[string]rdfgraph.ID)
		} else {
			clear(b.langs)
		}
		ok := true
		for _, x := range values {
			xt := b.g.Term(x)
			if !xt.IsLiteral() || xt.Lang == "" {
				continue
			}
			if prev, seen := b.langs[xt.Lang]; seen && prev != x {
				ok = false
				break
			}
			b.langs[xt.Lang] = x
		}
		b.depth--
		return ok
	}
	panic("plan: unknown op in eval")
}

// idOrPath returns the F-values of a pair constraint: {v} for id (slot
// NoPath, staged in succ scratch) or the path values.
func (b *Bound) idOrPath(slot int32, v rdfgraph.ID, d int) []rdfgraph.ID {
	if slot == NoPath {
		out := scratch(&b.succ, d)
		out = append(out, v)
		putScratch(&b.succ, d, out)
		return out
	}
	return b.pathValues(slot, v, d)
}

// evalOrder decides the four order constraints: cmp must hold between every
// path value and every property value.
func (b *Bound) evalOrder(i int32, v rdfgraph.ID, cmp func(bt, ct rdf.Term) bool) bool {
	in := &b.prog.Instrs[i]
	d := b.depth
	b.depth++
	defer func() { b.depth-- }()
	cs := b.propValues(i, v, d)
	for _, x := range b.pathValues(in.Path, v, d) {
		bt := b.g.Term(x)
		for _, c := range cs {
			if !cmp(bt, b.g.Term(c)) {
				return false
			}
		}
	}
	return true
}

// equalSets reports equality of two sorted duplicate-free ID sets.
func equalSets(a, c []rdfgraph.ID) bool {
	if len(a) != len(c) {
		return false
	}
	for i := range a {
		if a[i] != c[i] {
			return false
		}
	}
	return true
}

// disjointSets reports disjointness of two sorted ID sets.
func disjointSets(a, c []rdfgraph.ID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(c) {
		switch {
		case a[i] < c[j]:
			i++
		case a[i] > c[j]:
			j++
		default:
			return false
		}
	}
	return true
}
