// Package plan compiles shape schemas into flat, immutable instruction
// programs evaluated entirely over interned term IDs.
//
// The AST evaluator (internal/shape.Evaluator) re-walks the shape tree per
// focus node and memoizes conformance in a map keyed by (shape pointer,
// node) — every check hashes an interface value, and every property access
// re-resolves IRIs and re-sorts value lists. At fragment scale (every node
// of the graph × every request shape) that map and its key hashing dominate
// the profile. A Program removes all of it: each NNF sub-shape becomes one
// numbered instruction whose operands — predicate IDs, constant IDs,
// allowed-property sets, path-evaluator slots — are resolved once when the
// program is bound to a graph (Bind), and conformance results live in dense
// per-instruction byte arrays indexed by node ID. Steady-state evaluation
// touches no maps and allocates nothing.
//
// Compilation happens once per (schema, request): the shape is normalized
// to negation normal form, hasShape references are inlined through the
// schema (schemas are acyclic by construction, see schema.New), and each
// structurally distinct sub-shape is emitted exactly once. The companion
// extractor (Bound.CollectInto) implements Table 2 of the paper over
// instructions instead of AST nodes and is byte-for-byte identical to
// core.Extractor — property-tested and gated in the parity suites.
//
// The package also houses the cost-based strategy planner (planner.go)
// that decides, per shape definition, whether extraction should run on the
// compiled plan, the AST walker, or the SPARQL translation — replacing the
// old boolean strategy flag with a decision informed by shapelint's
// expensive-path analysis and cardinality statistics sampled from the
// store snapshot.
package plan

import (
	"fmt"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shape"
)

// Op enumerates instruction kinds. Each NNF production maps to exactly one
// op; negation appears only as the Neg* forms of the atoms it can wrap
// (the invariant NNF guarantees).
type Op uint8

const (
	OpTrue Op = iota
	OpFalse
	OpTest       // node test t ∈ Ω
	OpHasValue   // focus == constant
	OpEq         // eq(F, p)
	OpDisj       // disj(F, p)
	OpClosed     // closed(P)
	OpLessThan   // lessThan(E, p)
	OpLessThanEq // lessThanEq(E, p)
	OpMoreThan   // moreThan(E, p)
	OpMoreThanEq // moreThanEq(E, p)
	OpUniqueLang // uniqueLang(E)
	OpAnd        // conjunction over Args
	OpOr         // disjunction over Args
	OpMin        // ≥n E.φ, child Args[0]
	OpMax        // ≤n E.φ, child Args[0], negated child Args[1]
	OpForall     // ∀E.φ, child Args[0]
	OpRef        // hasShape(s) inlined: body Args[0]
	OpNeg        // negated atom: Args[0] is the atom instruction
)

var opNames = map[Op]string{
	OpTrue: "true", OpFalse: "false", OpTest: "test", OpHasValue: "hasvalue",
	OpEq: "eq", OpDisj: "disj", OpClosed: "closed",
	OpLessThan: "lessthan", OpLessThanEq: "lessthaneq",
	OpMoreThan: "morethan", OpMoreThanEq: "morethaneq",
	OpUniqueLang: "uniquelang", OpAnd: "and", OpOr: "or",
	OpMin: "min", OpMax: "max", OpForall: "forall", OpRef: "ref", OpNeg: "neg",
}

func (o Op) String() string { return opNames[o] }

// NoPath marks an instruction whose path operand is id (the focus node).
const NoPath int32 = -1

// Instr is one compiled instruction. The operand set is the union over all
// ops; unused fields are zero. Instructions are immutable once compiled.
type Instr struct {
	Op Op
	// Args are child instruction indexes (And/Or children; quantifier
	// bodies; the atom under a negation; the inlined body of a reference).
	Args []int32
	// N is the count bound of OpMin/OpMax.
	N int
	// Path indexes Program.Paths, or NoPath for id. For OpEq it is the
	// eq path F; TracePath below carries the E ∪ p union used by Table 2.
	Path int32
	// TracePath indexes Program.Paths for OpEq's extraction trace
	// (the Alt{F, p} union), or NoPath when F = id.
	TracePath int32
	// Pred is the property IRI of the pair constraints (eq, disj, order).
	Pred string
	// Const is the constant term of OpHasValue.
	Const rdf.Term
	// Allowed is the sorted allowed-property set of OpClosed.
	Allowed []string
	// Test is the node test of OpTest.
	Test shape.NodeTest
	// Name is the referenced definition of OpRef, kept for disassembly.
	Name rdf.Term
	// Shape is the NNF sub-shape this instruction decides; retained so
	// diagnostics and the disassembler can print the algebra it came from.
	Shape shape.Shape
}

// Program is one compiled shape: a flat instruction array plus the path
// expressions its instructions reference. Programs are immutable and
// graph-independent; Bind resolves them against a concrete graph.
type Program struct {
	// Instrs holds the instructions; Root indexes the entry point.
	Instrs []Instr
	Root   int32
	// Paths are the distinct path expressions referenced by Path/TracePath
	// operands; one evaluator per entry is built at bind time.
	Paths []paths.Expr
	// Source is the request shape the program was compiled from (pre-NNF).
	Source shape.Shape
}

// compiler carries the state of one compilation.
type compiler struct {
	defs     shape.Defs
	prog     *Program
	byShape  map[shape.Shape]int32 // NNF sub-shape identity → instruction
	bySig    map[string]int32      // structural signature → instruction
	pathSlot map[paths.Expr]int32
	nnfCache map[shape.Shape]shape.Shape // NNF(¬φ) memo for OpMax bodies
}

// Compile compiles φ (any shape; it is normalized internally) against defs,
// which resolves hasShape references and may be nil. Undefined references
// behave as ⊤, mirroring evaluation.
func Compile(phi shape.Shape, defs shape.Defs) *Program {
	c := &compiler{
		defs:     defs,
		prog:     &Program{Source: phi},
		byShape:  make(map[shape.Shape]int32),
		bySig:    make(map[string]int32),
		pathSlot: make(map[paths.Expr]int32),
		nnfCache: make(map[shape.Shape]shape.Shape),
	}
	c.prog.Root = c.compile(shape.NNF(phi))
	return c.prog
}

// path interns a path expression, returning its slot (NoPath for nil = id).
func (c *compiler) path(e paths.Expr) int32 {
	if e == nil {
		return NoPath
	}
	if i, ok := c.pathSlot[e]; ok {
		return i
	}
	i := int32(len(c.prog.Paths))
	c.prog.Paths = append(c.prog.Paths, e)
	c.pathSlot[e] = i
	return i
}

// emit appends one instruction, deduplicating on the NNF sub-shape identity
// and, failing that, on the structural signature (distinct NNF nodes that
// print identically decide identically, so they share one instruction and
// one memo row).
func (c *compiler) emit(s shape.Shape, build func() Instr) int32 {
	if i, ok := c.byShape[s]; ok {
		return i
	}
	sig := s.String()
	if i, ok := c.bySig[sig]; ok {
		c.byShape[s] = i
		return i
	}
	// Reserve the slot before building so child compilation lands after;
	// schemas are acyclic (schema.New enforces it), so a child can never
	// reference the instruction under construction.
	i := int32(len(c.prog.Instrs))
	c.prog.Instrs = append(c.prog.Instrs, Instr{Shape: s})
	c.byShape[s] = i
	c.bySig[sig] = i
	in := build()
	in.Shape = s
	c.prog.Instrs[i] = in
	return i
}

// negNNF memoizes NNF(¬φ).
func (c *compiler) negNNF(phi shape.Shape) shape.Shape {
	if n, ok := c.nnfCache[phi]; ok {
		return n
	}
	n := shape.NNF(shape.Neg(phi))
	c.nnfCache[phi] = n
	return n
}

// compile emits instructions for an NNF shape, returning the root index.
func (c *compiler) compile(phi shape.Shape) int32 {
	switch x := phi.(type) {
	case *shape.True:
		return c.emit(phi, func() Instr { return Instr{Op: OpTrue, Path: NoPath, TracePath: NoPath} })
	case *shape.False:
		return c.emit(phi, func() Instr { return Instr{Op: OpFalse, Path: NoPath, TracePath: NoPath} })
	case *shape.Test:
		return c.emit(phi, func() Instr { return Instr{Op: OpTest, Test: x.T, Path: NoPath, TracePath: NoPath} })
	case *shape.HasValue:
		return c.emit(phi, func() Instr { return Instr{Op: OpHasValue, Const: x.C, Path: NoPath, TracePath: NoPath} })
	case *shape.Eq:
		return c.emit(phi, func() Instr {
			in := Instr{Op: OpEq, Path: c.path(x.Path), TracePath: NoPath, Pred: x.P}
			if x.Path != nil {
				in.TracePath = c.path(paths.Alt{Left: x.Path, Right: paths.P(x.P)})
			}
			return in
		})
	case *shape.Disj:
		return c.emit(phi, func() Instr {
			return Instr{Op: OpDisj, Path: c.path(x.Path), TracePath: NoPath, Pred: x.P}
		})
	case *shape.Closed:
		return c.emit(phi, func() Instr { return Instr{Op: OpClosed, Allowed: x.Allowed, Path: NoPath, TracePath: NoPath} })
	case *shape.LessThan:
		return c.emit(phi, func() Instr {
			return Instr{Op: OpLessThan, Path: c.path(x.Path), TracePath: NoPath, Pred: x.P}
		})
	case *shape.LessThanEq:
		return c.emit(phi, func() Instr {
			return Instr{Op: OpLessThanEq, Path: c.path(x.Path), TracePath: NoPath, Pred: x.P}
		})
	case *shape.MoreThan:
		return c.emit(phi, func() Instr {
			return Instr{Op: OpMoreThan, Path: c.path(x.Path), TracePath: NoPath, Pred: x.P}
		})
	case *shape.MoreThanEq:
		return c.emit(phi, func() Instr {
			return Instr{Op: OpMoreThanEq, Path: c.path(x.Path), TracePath: NoPath, Pred: x.P}
		})
	case *shape.UniqueLang:
		return c.emit(phi, func() Instr {
			return Instr{Op: OpUniqueLang, Path: c.path(x.Path), TracePath: NoPath}
		})
	case *shape.And:
		return c.emit(phi, func() Instr {
			args := make([]int32, len(x.Xs))
			for i, ch := range x.Xs {
				args[i] = c.compile(ch)
			}
			return Instr{Op: OpAnd, Args: args, Path: NoPath, TracePath: NoPath}
		})
	case *shape.Or:
		return c.emit(phi, func() Instr {
			args := make([]int32, len(x.Xs))
			for i, ch := range x.Xs {
				args[i] = c.compile(ch)
			}
			return Instr{Op: OpOr, Args: args, Path: NoPath, TracePath: NoPath}
		})
	case *shape.MinCount:
		return c.emit(phi, func() Instr {
			return Instr{Op: OpMin, N: x.N, Path: c.path(x.Path), TracePath: NoPath,
				Args: []int32{c.compile(x.X)}}
		})
	case *shape.MaxCount:
		return c.emit(phi, func() Instr {
			// Args[1] is NNF(¬ψ): Table 2's ≤n row recurses into it for
			// every counterexample successor.
			return Instr{Op: OpMax, N: x.N, Path: c.path(x.Path), TracePath: NoPath,
				Args: []int32{c.compile(x.X), c.compile(c.negNNF(x.X))}}
		})
	case *shape.Forall:
		return c.emit(phi, func() Instr {
			return Instr{Op: OpForall, Path: c.path(x.Path), TracePath: NoPath,
				Args: []int32{c.compile(x.X)}}
		})
	case *shape.HasShape:
		return c.emit(phi, func() Instr {
			return Instr{Op: OpRef, Name: x.Name, Path: NoPath, TracePath: NoPath,
				Args: []int32{c.compile(shape.NNF(c.def(x.Name)))}}
		})
	case *shape.Not:
		return c.emit(phi, func() Instr {
			in := Instr{Op: OpNeg, Path: NoPath, TracePath: NoPath}
			switch a := x.X.(type) {
			case *shape.HasShape:
				// ¬hasShape(s) evaluates and extracts via NNF(¬def(s)); the
				// atom instruction is that body, flagged by Name.
				in.Name = a.Name
				in.Args = []int32{c.compile(c.negNNF(c.def(a.Name)))}
			default:
				in.Args = []int32{c.compile(x.X)}
			}
			return in
		})
	}
	panic("plan: shape not in NNF: " + phi.String())
}

// def resolves a shape name, defaulting to ⊤ like evaluation does.
func (c *compiler) def(name rdf.Term) shape.Shape {
	if c.defs != nil {
		if s, ok := c.defs.Def(name); ok {
			return s
		}
	}
	return shape.TrueShape()
}

// NumInstrs returns the instruction count.
func (p *Program) NumInstrs() int { return len(p.Instrs) }

// String disassembles the program into a stable text form, one instruction
// per line; `shaclfrag plan` prints it and a golden test pins it.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d instr, %d path(s), root @%d\n", len(p.Instrs), len(p.Paths), p.Root)
	for i, in := range p.Instrs {
		fmt.Fprintf(&b, "%3d: %-10s", i, in.Op)
		switch in.Op {
		case OpMin, OpMax:
			fmt.Fprintf(&b, " n=%d", in.N)
		}
		if in.Path != NoPath {
			fmt.Fprintf(&b, " path=%s", p.Paths[in.Path])
		}
		if in.Pred != "" {
			fmt.Fprintf(&b, " pred=<%s>", in.Pred)
		}
		if in.Const != (rdf.Term{}) {
			fmt.Fprintf(&b, " const=%s", in.Const)
		}
		if in.Op == OpTest {
			fmt.Fprintf(&b, " test=%s", in.Test)
		}
		if len(in.Allowed) > 0 {
			fmt.Fprintf(&b, " allowed={<%s>}", strings.Join(in.Allowed, ">, <"))
		}
		if in.Name != (rdf.Term{}) {
			fmt.Fprintf(&b, " shape=%s", in.Name)
		}
		if len(in.Args) > 0 {
			args := make([]string, len(in.Args))
			for j, a := range in.Args {
				args[j] = fmt.Sprintf("@%d", a)
			}
			fmt.Fprintf(&b, " args=[%s]", strings.Join(args, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Set is a group of programs compiled against one schema, one per request
// shape, in request order. Entries may be nil for requests the caller
// decided to evaluate another way.
type Set struct {
	Programs []*Program
}

// CompileAll compiles every request against defs.
func CompileAll(requests []shape.Shape, defs shape.Defs) *Set {
	s := &Set{Programs: make([]*Program, len(requests))}
	for i, r := range requests {
		s.Programs[i] = Compile(r, defs)
	}
	return s
}

// NumInstrs sums instruction counts across the set's programs.
func (s *Set) NumInstrs() int {
	if s == nil {
		return 0
	}
	total := 0
	for _, p := range s.Programs {
		if p != nil {
			total += len(p.Instrs)
		}
	}
	return total
}
