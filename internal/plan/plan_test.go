package plan_test

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
)

// tripleKeys canonicalizes a triple list for set comparison.
func tripleKeys(ts []rdf.Triple) map[string]struct{} {
	out := make(map[string]struct{}, len(ts))
	for _, t := range ts {
		out[t.S.String()+" "+t.P.String()+" "+t.O.String()] = struct{}{}
	}
	return out
}

// TestConformanceParityRandom checks that plan-based conformance agrees
// with the AST evaluator on random graphs × random shapes, for every node.
func TestConformanceParityRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := shapetest.RandomGraph(rng, 40+rng.Intn(80))
		phi := shapetest.RandomShape(rng, 3)
		g.Freeze()

		ev := shape.NewEvaluator(g, nil)
		prog := plan.Compile(phi, nil)
		b := prog.Bind(g)
		for _, v := range g.NodeIDs() {
			want := ev.Conforms(v, phi)
			got := b.ConformsRoot(v)
			if got != want {
				t.Fatalf("seed %d: node %s: plan=%v ast=%v for %s",
					seed, g.Term(v), got, want, phi)
			}
		}
	}
}

// TestExtractionParityRandom checks Table 2 byte parity on random inputs:
// the plan extractor and core.Extractor must produce identical neighborhood
// triple sets for every node.
func TestExtractionParityRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := shapetest.RandomGraph(rng, 40+rng.Intn(80))
		phi := shapetest.RandomShape(rng, 3)
		g.Freeze()

		x := core.NewExtractor(g, nil)
		b := plan.Compile(phi, nil).Bind(g)
		for _, v := range g.NodeIDs() {
			astOut := rdfgraph.NewIDTripleSet()
			x.NeighborhoodInto(v, phi, astOut, make(map[core.VisitKey]struct{}))

			b.ResetVisited()
			planOut := rdfgraph.NewIDTripleSet()
			b.CollectInto(v, planOut)

			want := astOut.Triples(g.Dict())
			got := planOut.Triples(g.Dict())
			if len(want) != len(got) {
				t.Fatalf("seed %d node %s: plan %d triples, ast %d, shape %s",
					seed, g.Term(v), len(got), len(want), phi)
			}
			wk, gk := tripleKeys(want), tripleKeys(got)
			for k := range wk {
				if _, ok := gk[k]; !ok {
					t.Fatalf("seed %d node %s: ast triple %s missing from plan output (shape %s)",
						seed, g.Term(v), k, phi)
				}
			}
		}
	}
}

// TestSchemaParityTyrol checks conformance and shared-visited fragment
// accumulation parity on the benchmark schema (hasShape references, paths,
// closed shapes) over the synthetic tourism graph.
func TestSchemaParityTyrol(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 300, Seed: 1})
	h := datagen.BenchmarkSchema()
	for _, d := range h.Definitions() {
		g.TermID(d.Name)
	}
	g.Freeze()

	for _, d := range h.Definitions() {
		request := shape.AndOf(d.Shape, d.Target)
		x := core.NewExtractor(g, h)
		b := plan.Compile(request, h).Bind(g)

		astOut := rdfgraph.NewIDTripleSet()
		visited := make(map[core.VisitKey]struct{})
		planOut := rdfgraph.NewIDTripleSet()
		for _, v := range g.NodeIDs() {
			want := x.Evaluator().Conforms(v, request)
			got := b.ConformsRoot(v)
			if got != want {
				t.Fatalf("%s: node %s: plan=%v ast=%v", d.Name, g.Term(v), got, want)
			}
			x.NeighborhoodInto(v, request, astOut, visited)
			b.CollectInto(v, planOut)
		}
		want := astOut.Triples(g.Dict())
		got := planOut.Triples(g.Dict())
		if len(want) != len(got) {
			t.Fatalf("%s: fragment sizes differ: plan %d, ast %d", d.Name, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: fragment triple %d differs: plan %v, ast %v", d.Name, i, got[i], want[i])
			}
		}
	}
}

// TestResetVisitedIsolation checks that per-node units after ResetVisited
// match fresh-extractor output (the neighborhood-cache granularity).
func TestResetVisitedIsolation(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 120, Seed: 2})
	h := datagen.BenchmarkSchema()
	g.Freeze()
	d := h.Definitions()[0]
	request := shape.AndOf(d.Shape, d.Target)
	b := plan.Compile(request, h).Bind(g)

	nodes := g.NodeIDs()
	if len(nodes) > 50 {
		nodes = nodes[:50]
	}
	for _, v := range nodes {
		x := core.NewExtractor(g, h)
		astOut := rdfgraph.NewIDTripleSet()
		x.NeighborhoodInto(v, request, astOut, make(map[core.VisitKey]struct{}))

		b.ResetVisited()
		planOut := rdfgraph.NewIDTripleSet()
		b.CollectInto(v, planOut)

		want := astOut.Triples(g.Dict())
		got := planOut.Triples(g.Dict())
		if len(want) != len(got) {
			t.Fatalf("node %s: plan %d triples, ast %d", g.Term(v), len(got), len(want))
		}
	}
}

// TestCompileDedup checks that shared sub-shapes compile to shared
// instructions: a conjunction repeating one sub-shape twice must not emit
// it twice.
func TestCompileDedup(t *testing.T) {
	a := shape.Min(1, paths.P(shapetest.Base+"knows"), shape.TrueShape())
	b := shape.Min(1, paths.P(shapetest.Base+"knows"), shape.TrueShape())
	phi := shape.AndOf(a, shape.OrOf(b, shape.FalseShape()))
	prog := plan.Compile(phi, nil)
	// a and b are distinct AST nodes with identical structure: one OpMin.
	minCount := 0
	for _, in := range prog.Instrs {
		if in.Op == plan.OpMin {
			minCount++
		}
	}
	if minCount != 1 {
		t.Fatalf("structural dedup failed: %d OpMin instructions\n%s", minCount, prog)
	}
}

// TestProgramStringStable pins basic disassembly properties.
func TestProgramStringStable(t *testing.T) {
	h := datagen.BenchmarkSchema()
	d := h.Definitions()[0]
	prog := plan.Compile(shape.AndOf(d.Shape, d.Target), h)
	s1 := prog.String()
	s2 := plan.Compile(shape.AndOf(d.Shape, d.Target), h).String()
	if s1 != s2 {
		t.Fatalf("disassembly not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	if prog.NumInstrs() == 0 {
		t.Fatal("empty program for benchmark shape")
	}
}

// TestUndefinedRefBehavesAsTrue mirrors evaluation's undefined-name rule.
func TestUndefinedRefBehavesAsTrue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := shapetest.RandomGraph(rng, 50)
	g.Freeze()
	phi := shape.Ref(rdf.NewIRI("http://example.org/undefined"))
	ev := shape.NewEvaluator(g, emptyDefs{})
	b := plan.Compile(phi, emptyDefs{}).Bind(g)
	for _, v := range g.NodeIDs() {
		if got, want := b.ConformsRoot(v), ev.Conforms(v, phi); got != want {
			t.Fatalf("node %s: plan=%v ast=%v", g.Term(v), got, want)
		}
	}
}

type emptyDefs struct{}

func (emptyDefs) Def(rdf.Term) (shape.Shape, bool) { return nil, false }
