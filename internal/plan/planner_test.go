package plan_test

import (
	"strings"
	"testing"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
	"shaclfrag/internal/store"
)

func tyrolStats(t *testing.T, individuals int) store.CardStats {
	t.Helper()
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: individuals, Seed: 1})
	g.Freeze()
	st, err := store.New(g, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return store.SampleStats(st.Current())
}

// TestSampleStats pins the sampling invariants: totals match the reader
// and per-predicate cardinalities sum to the triple count.
func TestSampleStats(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 100, Seed: 3})
	g.Freeze()
	for _, cfg := range []store.Config{{}, {Backend: store.BackendSharded, Shards: 4}} {
		st, err := store.New(g.Clone(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats := store.SampleStats(st.Current())
		if stats.Triples != g.Len() {
			t.Fatalf("%s: stats.Triples = %d, graph has %d", st.Backend(), stats.Triples, g.Len())
		}
		if stats.Nodes == 0 || stats.DictTerms < stats.Nodes {
			t.Fatalf("%s: implausible node/dict counts: %+v", st.Backend(), stats)
		}
		sum := 0
		for _, n := range stats.PredCard {
			sum += n
		}
		if sum != stats.Triples {
			t.Fatalf("%s: predicate cardinalities sum to %d, want %d", st.Backend(), sum, stats.Triples)
		}
	}
}

// TestPlanSchemaDefault checks the cost model's baseline behavior: on the
// benchmark schema the compiled plan wins everywhere (the BENCH_1 story:
// direct ≈ 4× plan, sparql ≈ 10× direct), every decision carries a
// program, and ProgramSet aligns with Requests.
func TestPlanSchemaDefault(t *testing.T) {
	h := datagen.BenchmarkSchema()
	sp := plan.PlanSchema(h, tyrolStats(t, 200), plan.Config{})
	if len(sp.Decisions) != h.Len() {
		t.Fatalf("%d decisions for %d definitions", len(sp.Decisions), h.Len())
	}
	set := sp.ProgramSet()
	for i, d := range sp.Decisions {
		if d.Program == nil {
			t.Fatalf("%s: no compiled program", d.Name)
		}
		if d.Strategy != plan.StrategyPlan {
			t.Errorf("%s: strategy %s (reason %q), want plan", d.Name, d.Strategy, d.Reason)
		}
		if d.CostSPARQL <= d.CostDirect {
			t.Errorf("%s: sparql estimate %.3g not above direct %.3g", d.Name, d.CostSPARQL, d.CostDirect)
		}
		if (set.Programs[i] != nil) != (d.Strategy == plan.StrategyPlan) {
			t.Errorf("%s: ProgramSet misaligned with strategy", d.Name)
		}
	}
	if sp.Counts()[plan.StrategyPlan] != len(sp.Decisions) {
		t.Fatalf("counts: %v", sp.Counts())
	}
}

// TestPlanSchemaMemoBudget checks the memory veto: a tiny budget degrades
// every plan decision to direct, with the budget named in the reason.
func TestPlanSchemaMemoBudget(t *testing.T) {
	h := datagen.BenchmarkSchema()
	sp := plan.PlanSchema(h, tyrolStats(t, 200), plan.Config{MemoBudget: 1})
	for _, d := range sp.Decisions {
		if d.Strategy != plan.StrategyDirect {
			t.Fatalf("%s: strategy %s, want direct under 1-byte budget", d.Name, d.Strategy)
		}
		if !strings.Contains(d.Reason, "over budget") {
			t.Fatalf("%s: reason %q does not mention the budget", d.Name, d.Reason)
		}
	}
}

// TestPlanSchemaForce checks forcing, and that vetoes outrank it.
func TestPlanSchemaForce(t *testing.T) {
	h := datagen.BenchmarkSchema()
	stats := tyrolStats(t, 200)

	sp := plan.PlanSchema(h, stats, plan.Config{Force: plan.StrategySPARQL, Forced: true})
	forced := 0
	for _, d := range sp.Decisions {
		switch d.Strategy {
		case plan.StrategySPARQL:
			forced++
		case plan.StrategyDirect:
			// The benchmark schema contains SL008 shapes; the veto outranks
			// forcing and must say so.
			if !strings.Contains(d.Reason, "SL008") {
				t.Fatalf("%s: forced sparql got direct for reason %q", d.Name, d.Reason)
			}
		default:
			t.Fatalf("%s: forced sparql got %s", d.Name, d.Strategy)
		}
	}
	if forced == 0 {
		t.Fatal("no definition took the forced sparql strategy")
	}

	sp = plan.PlanSchema(h, stats, plan.Config{Force: plan.StrategyPlan, Forced: true, MemoBudget: 1})
	for _, d := range sp.Decisions {
		if d.Strategy != plan.StrategyDirect {
			t.Fatalf("%s: forced plan over budget got %s, want direct", d.Name, d.Strategy)
		}
	}
}

// TestPlanSchemaExpensivePathVeto checks that an SL008 shape — unbounded
// star path in a universal position — never routes to SPARQL, even forced.
func TestPlanSchemaExpensivePathVeto(t *testing.T) {
	name := rdf.NewIRI(shapetest.Base + "StarShape")
	h, err := schema.New(schema.Definition{
		Name:   name,
		Shape:  shape.All(paths.Star{X: paths.P(shapetest.Base + "knows")}, shape.TrueShape()),
		Target: shape.TrueShape(),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := tyrolStats(t, 50)

	sp := plan.PlanSchema(h, stats, plan.Config{Force: plan.StrategySPARQL, Forced: true})
	d := sp.Decisions[0]
	if d.Strategy == plan.StrategySPARQL {
		t.Fatalf("SL008 shape routed to sparql (reason %q)", d.Reason)
	}
	if !strings.Contains(d.Reason, "SL008") {
		t.Fatalf("reason %q does not cite the lint code", d.Reason)
	}
}

// TestParseStrategy round-trips the names the CLI accepts.
func TestParseStrategy(t *testing.T) {
	for _, s := range []plan.Strategy{plan.StrategyPlan, plan.StrategyDirect, plan.StrategySPARQL} {
		got, err := plan.ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %s: got %s, err %v", s, got, err)
		}
	}
	if _, err := plan.ParseStrategy("turbo"); err == nil {
		t.Fatal("ParseStrategy accepted nonsense")
	}
}
