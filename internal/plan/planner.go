package plan

import (
	"fmt"
	"strings"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapelint"
	"shaclfrag/internal/sparqltrans"
	"shaclfrag/internal/store"
)

// Strategy is one way to extract a shape's fragment.
type Strategy int

const (
	// StrategyPlan runs the compiled instruction program with dense memo
	// rows — the fast path for steady-state extraction.
	StrategyPlan Strategy = iota
	// StrategyDirect walks the shape AST with the map-memoized evaluator:
	// slower per node but with memory proportional to nodes actually
	// touched, and the only strategy that supports attribution recording.
	StrategyDirect
	// StrategySPARQL evaluates the translated fragment query (Section 5.1)
	// on the in-memory engine. Never cheaper here, but the paper's
	// portability story: the planner keeps it available for callers that
	// ship queries to an external endpoint, and prices it honestly.
	StrategySPARQL
)

var strategyNames = map[Strategy]string{
	StrategyPlan:   "plan",
	StrategyDirect: "direct",
	StrategySPARQL: "sparql",
}

func (s Strategy) String() string { return strategyNames[s] }

// ParseStrategy parses a strategy name ("plan", "direct", "sparql").
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if n == name {
			return s, nil
		}
	}
	return StrategyPlan, fmt.Errorf("plan: unknown strategy %q (want plan, direct or sparql)", name)
}

// DefaultMemoBudget bounds the dense memo memory one bound program may
// allocate (per worker — every worker binds its own). Programs whose rows
// would exceed it fall back to StrategyDirect, whose memo grows with the
// nodes actually visited instead of the dictionary size.
const DefaultMemoBudget = 64 << 20

// Config tunes the planner.
type Config struct {
	// MemoBudget caps MemoBytes per bound program; 0 means
	// DefaultMemoBudget, negative means unlimited.
	MemoBudget int64
	// Force pins every decision to one strategy, skipping the cost model
	// (the CLI's -strategy plan|direct|sparql). Vetoes still apply: a
	// forced plan over budget degrades to direct.
	Force Strategy
	// Forced reports whether Force is set.
	Forced bool
}

// Decision is the planner's choice for one shape definition, with the cost
// estimates that produced it so /metrics and `shaclfrag plan` can show the
// reasoning.
type Decision struct {
	Name     rdf.Term
	Strategy Strategy
	// Program is the compiled program; always present (the disassembler
	// and parity suites want it even for non-plan strategies).
	Program *Program
	// CostPlan/CostDirect/CostSPARQL are the model's estimates in
	// abstract work units (node visits weighted by operation kind).
	CostPlan, CostDirect, CostSPARQL float64
	// MemoBytes is the dense-row memory the plan strategy would pin.
	MemoBytes int64
	// Reason is a one-line explanation ("cheapest", "memo over budget",
	// "SL008 veto", "forced").
	Reason string
}

// SchemaPlan is the planner's output for a whole schema: one decision per
// definition, in definition order, plus the sampled stats they were priced
// against.
type SchemaPlan struct {
	Decisions []Decision
	Stats     store.CardStats
}

// Requests returns the request shapes (Shape ∧ Target per definition), in
// decision order — the same list FragmentParallel takes.
func (sp *SchemaPlan) Requests() []shape.Shape {
	out := make([]shape.Shape, len(sp.Decisions))
	for i, d := range sp.Decisions {
		out[i] = d.Program.Source
	}
	return out
}

// ProgramSet returns the compiled programs aligned with Requests, with nil
// entries for definitions the planner routed away from the plan strategy —
// exactly the shape core.ParallelOptions.Plans expects.
func (sp *SchemaPlan) ProgramSet() *Set {
	s := &Set{Programs: make([]*Program, len(sp.Decisions))}
	for i, d := range sp.Decisions {
		if d.Strategy == StrategyPlan {
			s.Programs[i] = d.Program
		}
	}
	return s
}

// Counts returns how many definitions landed on each strategy.
func (sp *SchemaPlan) Counts() map[Strategy]int {
	out := make(map[Strategy]int, 3)
	for _, d := range sp.Decisions {
		out[d.Strategy]++
	}
	return out
}

// String renders the plan as a table, one definition per line.
func (sp *SchemaPlan) String() string {
	var b strings.Builder
	for _, d := range sp.Decisions {
		fmt.Fprintf(&b, "%s\t%s\tplan=%.3g direct=%.3g sparql=%.3g\t%s\n",
			d.Name, d.Strategy, d.CostPlan, d.CostDirect, d.CostSPARQL, d.Reason)
	}
	return b.String()
}

// Cost-model weights. The units are abstract "node visits"; only the
// ratios matter, and they are calibrated against BENCH_1–3: direct
// evaluation costs ~4× a plan visit (map-keyed memo hits plus per-call
// sorting vs dense-row lookups), and the SPARQL engine pays roughly an
// order of magnitude over direct on the same workload (Fig. 2/3).
const (
	costPlanVisit   = 1.0  // one instruction × node check on dense rows
	costDirectVisit = 4.0  // same check through the map-memoized evaluator
	costBindPerByte = 0.01 // zeroing/allocating dense rows at bind time
	costSPARQLScan  = 10.0 // per triple scanned by the translated query
	costSPARQLOp    = 64.0 // per algebra operator materialization
)

// PlanSchema prices every definition of h against the sampled stats and
// picks a strategy per shape. Shapelint runs once over the schema: a
// definition carrying an SL008 (expensive unbounded path in universal or
// negated position) never goes to SPARQL, where the translated query
// re-traces the product automaton per binding with no memo.
func PlanSchema(h *schema.Schema, st store.CardStats, cfg Config) *SchemaPlan {
	budget := cfg.MemoBudget
	if budget == 0 {
		budget = DefaultMemoBudget
	}

	expensive := make(map[rdf.Term]bool)
	for _, d := range shapelint.Run(h) {
		if d.Code == shapelint.CodeExpensivePath {
			expensive[d.Shape] = true
		}
	}

	defs := h.Definitions()
	sp := &SchemaPlan{Decisions: make([]Decision, len(defs)), Stats: st}
	for i, d := range defs {
		request := shape.AndOf(d.Shape, d.Target)
		prog := Compile(request, h)
		dec := Decision{Name: d.Name, Program: prog, MemoBytes: prog.MemoBytes(st.DictTerms)}

		nodes := float64(st.Nodes)
		instrs := float64(len(prog.Instrs))
		dec.CostPlan = nodes*instrs*costPlanVisit + float64(dec.MemoBytes)*costBindPerByte
		dec.CostDirect = nodes * instrs * costDirectVisit

		q := sparqltrans.MeasureQuery(request, h)
		scanned := 0
		for _, p := range q.Preds {
			scanned += st.Card(p)
		}
		// Each path-trace subquery scans N(G) candidates through the
		// automaton; plain patterns scan their predicate's posting list.
		dec.CostSPARQL = costSPARQLScan*(float64(scanned)+float64(q.PathTraces)*nodes) +
			costSPARQLOp*float64(q.Ops+q.Patterns)

		dec.Strategy, dec.Reason = choose(dec, cfg, budget, expensive[d.Name])
		sp.Decisions[i] = dec
	}
	return sp
}

// choose applies vetoes, then the cost comparison.
func choose(dec Decision, cfg Config, budget int64, expensivePath bool) (Strategy, string) {
	overBudget := budget >= 0 && dec.MemoBytes > budget

	if cfg.Forced {
		s := cfg.Force
		if s == StrategyPlan && overBudget {
			return StrategyDirect, fmt.Sprintf("forced plan, but memo %dB over budget %dB", dec.MemoBytes, budget)
		}
		if s == StrategySPARQL && expensivePath {
			return StrategyDirect, "forced sparql, but SL008 expensive path vetoes translation"
		}
		return s, "forced"
	}

	best, reason := StrategyPlan, "cheapest"
	cost := dec.CostPlan
	if dec.CostDirect < cost {
		best, cost = StrategyDirect, dec.CostDirect
	}
	if dec.CostSPARQL < cost && !expensivePath {
		best = StrategySPARQL
	}
	if best == StrategySPARQL && expensivePath {
		best, reason = StrategyDirect, "SL008 expensive path vetoes sparql"
	}
	if best == StrategyPlan && overBudget {
		best = StrategyDirect
		reason = fmt.Sprintf("memo %dB over budget %dB", dec.MemoBytes, budget)
	}
	return best, reason
}
