package validator_test

import (
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/turtle"
	"shaclfrag/internal/validator"
)

const base = "http://x/"

func iri(s string) rdf.Term { return rdf.NewIRI(base + s) }

func mustGraph(t *testing.T, src string) *rdfgraph.Graph {
	t.Helper()
	g, err := turtle.Parse("@prefix ex: <" + base + "> .\n" + src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func exampleSchema() *schema.Schema {
	return schema.MustNew(schema.Definition{
		Name: iri("S"),
		Shape: shape.Min(1, paths.P(base+"author"),
			shape.Min(1, paths.P(base+"type"), shape.Value(iri("Student")))),
		Target: schema.TargetSubjectsOf(base + "author"),
	})
}

func TestValidateWithoutProvenance(t *testing.T) {
	g := mustGraph(t, `
ex:p1 ex:author ex:bob . ex:bob ex:type ex:Student .
ex:p2 ex:author ex:anne .
`)
	res := validator.Validate(g, exampleSchema(), validator.Options{})
	if res.Report.Conforms {
		t.Error("p2 must violate")
	}
	if res.Fragment != nil || res.PerNode != nil {
		t.Error("no provenance requested")
	}
	if res.Checks == 0 {
		t.Error("check counter must be populated")
	}
}

func TestValidateCollectsFragment(t *testing.T) {
	g := mustGraph(t, `
ex:p1 ex:author ex:bob . ex:bob ex:type ex:Student .
ex:p2 ex:author ex:anne .
ex:junk ex:madeOf ex:cheese .
`)
	h := exampleSchema()
	res := validator.Validate(g, h, validator.Options{CollectProvenance: true})
	// The fragment equals Frag(G, H) computed by the core extractor.
	want := core.FragmentSchema(g, h)
	if len(res.Fragment) != len(want) {
		t.Fatalf("validator fragment %v\ncore fragment %v", res.Fragment, want)
	}
	wantSet := map[rdf.Triple]bool{}
	for _, tr := range want {
		wantSet[tr] = true
	}
	for _, tr := range res.Fragment {
		if !wantSet[tr] {
			t.Fatalf("unexpected fragment triple %v", tr)
		}
	}
	for _, tr := range res.Fragment {
		if tr.S == iri("junk") {
			t.Error("unrelated triple extracted")
		}
	}
}

func TestValidatePerNodeProvenance(t *testing.T) {
	g := mustGraph(t, `
ex:p1 ex:author ex:bob . ex:bob ex:type ex:Student .
ex:p3 ex:author ex:carol . ex:carol ex:type ex:Student .
`)
	res := validator.Validate(g, exampleSchema(), validator.Options{CollectProvenance: true, PerNode: true})
	if len(res.PerNode) != 2 {
		t.Fatalf("PerNode = %+v, want entries for p1 and p3", res.PerNode)
	}
	for _, pn := range res.PerNode {
		// The author edge (which also witnesses the subjects-of target) and
		// the student typing edge.
		if len(pn.Triples) != 2 {
			t.Errorf("neighborhood of %v = %v", pn.Focus, pn.Triples)
		}
	}
	// PerNode mode must still produce the union fragment.
	if len(res.Fragment) != 4 {
		t.Errorf("fragment = %v, want 4 triples", res.Fragment)
	}
}

// The validator's one-pass extraction must agree with Frag(G, H) on the
// benchmark suite (each shape validated as a singleton schema and jointly).
func TestValidatorMatchesCoreOnBenchmark(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 150, Seed: 21})
	defs := datagen.BenchmarkShapes()
	h := schema.MustNew(defs...)
	res := validator.Validate(g, h, validator.Options{CollectProvenance: true})
	want := core.FragmentSchema(g, h)
	if len(res.Fragment) != len(want) {
		t.Fatalf("validator fragment %d triples, core %d", len(res.Fragment), len(want))
	}
	wantSet := make(map[rdf.Triple]bool, len(want))
	for _, tr := range want {
		wantSet[tr] = true
	}
	for _, tr := range res.Fragment {
		if !wantSet[tr] {
			t.Fatalf("triple %v not in core fragment", tr)
		}
	}
}

func TestMeasureOverhead(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 100, Seed: 4})
	def := datagen.BenchmarkShapes()[0]
	m := validator.MeasureOverhead(g, def, 2)
	if m.ValidateOnly <= 0 || m.WithExtract <= 0 {
		t.Fatalf("timings must be positive: %+v", m)
	}
	if m.Targeted == 0 {
		t.Error("shape S01 targets events; expected targeted nodes")
	}
	if m.FragmentSize == 0 {
		t.Error("expected a non-empty fragment")
	}
	if m.ShapeName != def.Name {
		t.Error("shape name must round-trip")
	}
}

func TestValidateNormalizationPreservesReport(t *testing.T) {
	// The validator normalizes shapes to NNF internally; reports must agree
	// with direct (un-normalized) validation.
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 120, Seed: 9})
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	direct := h.Validate(g)
	instrumented := validator.Validate(g, h, validator.Options{})
	if direct.Conforms != instrumented.Report.Conforms {
		t.Fatal("conformance differs after normalization")
	}
	if len(direct.Results) != len(instrumented.Report.Results) {
		t.Fatalf("result counts differ: %d vs %d",
			len(direct.Results), len(instrumented.Report.Results))
	}
	for i := range direct.Results {
		if direct.Results[i] != instrumented.Report.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v",
				i, direct.Results[i], instrumented.Report.Results[i])
		}
	}
}
