// Package validator implements the instrumented validation engine of
// Section 5.2: a SHACL validator that can, in the same pass, extract the
// neighborhoods of the nodes it validates — the strategy of the paper's
// pySHACL-fragments system. It also provides the overhead measurement used
// for Figure 1: extraction time relative to mere validation.
package validator

import (
	"time"

	"shaclfrag/internal/core"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// Options configures a validation run.
type Options struct {
	// CollectProvenance extracts, for every targeted node that conforms,
	// its neighborhood for the shape; their union is the schema fragment.
	CollectProvenance bool
	// PerNode records each validated node's neighborhood individually (in
	// addition to the union). Costs memory proportional to the output.
	PerNode bool
}

// NodeProvenance is the neighborhood of one validated focus node.
type NodeProvenance struct {
	ShapeName rdf.Term
	Focus     rdf.Term
	Triples   []rdf.Triple
}

// Result is the outcome of an instrumented validation run.
type Result struct {
	Report *schema.Report
	// Fragment is Frag(G, H) when CollectProvenance was set: the union of
	// the neighborhoods of all conforming targeted nodes for φ ∧ τ.
	Fragment []rdf.Triple
	// PerNode holds individual neighborhoods when requested.
	PerNode []NodeProvenance
	// Checks counts conformance evaluations performed (cache misses).
	Checks int
}

// Validate validates g against h, optionally extracting provenance.
//
// Shapes and targets are normalized to negation normal form up front and
// the normalized schema is used for both validation and extraction. This is
// the instrumentation trick of Section 5.2: the provenance pass then shares
// every conformance result with the validation pass through the evaluator
// cache, so extraction pays only for tracing the neighborhoods themselves.
func Validate(g rdfgraph.Reader, h *schema.Schema, opts Options) *Result {
	norm := normalize(h)
	ev := shape.NewEvaluator(g, norm)
	res := &Result{Report: norm.ValidateWith(ev)}
	if opts.CollectProvenance {
		x := core.NewExtractorWith(ev)
		out := rdfgraph.NewIDTripleSet()
		visited := make(map[core.VisitKey]struct{})
		for _, d := range norm.Definitions() {
			request := shape.AndOf(d.Shape, d.Target)
			for _, r := range res.Report.Results {
				if r.ShapeName != d.Name || !r.Conforms {
					continue
				}
				focus := g.TermID(r.Focus)
				if opts.PerNode {
					per := rdfgraph.NewIDTripleSet()
					x.NeighborhoodInto(focus, request, per, make(map[core.VisitKey]struct{}))
					res.PerNode = append(res.PerNode, NodeProvenance{
						ShapeName: d.Name, Focus: r.Focus, Triples: per.Triples(g.Dict()),
					})
					out.AddSet(per)
					continue
				}
				x.NeighborhoodInto(focus, request, out, visited)
			}
		}
		res.Fragment = out.Triples(g.Dict())
	}
	res.Checks = ev.Checks
	return res
}

// normalize rewrites every definition into negation normal form. NNF
// preserves conformance (property-tested in internal/shape), and it is what
// neighborhood extraction evaluates, so normalizing first lets the two
// passes share one evaluation cache.
func normalize(h *schema.Schema) *schema.Schema {
	defs := h.Definitions()
	out := make([]schema.Definition, len(defs))
	for i, d := range defs {
		out[i] = schema.Definition{
			Name:   d.Name,
			Shape:  shape.NNF(d.Shape),
			Target: shape.NNF(d.Target),
		}
	}
	return schema.MustNew(out...)
}

// Overhead is one measurement point for the Figure 1 experiment: the cost
// of provenance extraction relative to validation alone.
type Overhead struct {
	ShapeName    rdf.Term
	ValidateOnly time.Duration
	WithExtract  time.Duration
	// Percent is the relative overhead in percent:
	// (WithExtract - ValidateOnly) / ValidateOnly × 100.
	Percent float64
	// FragmentSize is the number of triples extracted.
	FragmentSize int
	// Targeted is the number of focus nodes the shape targeted.
	Targeted int
}

// MeasureOverhead measures, for one shape definition, the wall-clock
// overhead of extraction over validation, averaged over reps runs. Each run
// uses fresh evaluator caches, mirroring the paper's methodology (timers
// around the validator only; parsing and loading excluded).
func MeasureOverhead(g rdfgraph.Reader, def schema.Definition, reps int) Overhead {
	h := schema.MustNew(def)
	var validateTotal, extractTotal time.Duration
	var fragSize, targeted int
	for i := 0; i < reps; i++ {
		start := time.Now()
		plain := Validate(g, h, Options{})
		validateTotal += time.Since(start)

		start = time.Now()
		withProv := Validate(g, h, Options{CollectProvenance: true})
		extractTotal += time.Since(start)

		fragSize = len(withProv.Fragment)
		targeted = plain.Report.TargetedNodes
	}
	v := validateTotal / time.Duration(reps)
	e := extractTotal / time.Duration(reps)
	pct := 0.0
	if v > 0 {
		pct = float64(e-v) / float64(v) * 100
	}
	return Overhead{
		ShapeName:    def.Name,
		ValidateOnly: v,
		WithExtract:  e,
		Percent:      pct,
		FragmentSize: fragSize,
		Targeted:     targeted,
	}
}
