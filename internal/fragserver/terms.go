package fragserver

import (
	"errors"
	"fmt"
	"strings"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/turtle"
)

// parseTermParam parses one HTTP query parameter as an RDF term. Accepted
// forms:
//
//	<http://example.org/x>      bracketed IRI
//	http://example.org/x        bare IRI (needs a scheme, no delimiters)
//	"chamois"                   plain literal
//	"chamois"@en                language-tagged literal
//	"42"^^<http://…#integer>    datatyped literal
//	42, 4.2, true, false        Turtle shorthand literals
//	_:b0                        blank node
//
// Malformed input yields a descriptive error (the handlers turn it into
// HTTP 400); this function never panics.
func parseTermParam(raw string) (rdf.Term, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return rdf.Term{}, errors.New("empty term")
	}
	switch {
	case strings.HasPrefix(raw, "<"), strings.HasPrefix(raw, `"`),
		strings.HasPrefix(raw, "_:"), looksNumericOrBoolean(raw):
		return parseTermViaTurtle(raw)
	default:
		return parseBareIRI(raw)
	}
}

// parseTermViaTurtle reuses the Turtle parser by placing the raw text in
// the object position of a probe triple; exactly one triple must come back,
// which also rejects smuggled terminators and object lists.
func parseTermViaTurtle(raw string) (rdf.Term, error) {
	const probe = "<http://fragserver.invalid/s> <http://fragserver.invalid/p> "
	ts, err := turtle.ParseTriples(probe + raw + " .")
	if err != nil {
		return rdf.Term{}, fmt.Errorf("malformed term %q: %v", raw, err)
	}
	if len(ts) != 1 {
		return rdf.Term{}, fmt.Errorf("malformed term %q: expected a single term", raw)
	}
	return ts[0].O, nil
}

// parseBareIRI accepts un-bracketed IRIs for curl convenience, rejecting
// anything that could not be an IRI (whitespace, Turtle delimiters, no
// scheme separator).
func parseBareIRI(raw string) (rdf.Term, error) {
	if strings.ContainsAny(raw, " \t\r\n<>\"'`{}|\\^") {
		return rdf.Term{}, fmt.Errorf("malformed IRI %q: contains whitespace or delimiter characters (bracket IRIs as <iri>, quote literals)", raw)
	}
	if !strings.Contains(raw, ":") {
		return rdf.Term{}, fmt.Errorf("malformed IRI %q: an IRI needs a scheme (or use ?name for a variable)", raw)
	}
	return rdf.NewIRI(raw), nil
}

func looksNumericOrBoolean(raw string) bool {
	if raw == "true" || raw == "false" {
		return true
	}
	c := raw[0]
	return c == '+' || c == '-' || (c >= '0' && c <= '9')
}
