package fragserver

import (
	"fmt"
	"net/url"
	"strings"
	"testing"

	"shaclfrag/internal/core"
)

// TestMetricsEndpoint drives real traffic and then checks that /metrics
// renders Prometheus text covering requests, latency histograms, stage
// timings and the cache — the acceptance shape of the observability
// layer.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	get(t, ts, "/fragment")
	get(t, ts, "/fragment") // repeat: the second run hits the cache
	get(t, ts, "/node?iri="+url.QueryEscape("<http://example.org/ghost>"))
	get(t, ts, "/nosuchroute")

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE fragserver_requests_total counter",
		`fragserver_requests_total{route="/fragment",status="200"} 2`,
		`fragserver_requests_total{route="other",status="404"} 1`,
		"# TYPE fragserver_request_duration_seconds histogram",
		`fragserver_request_duration_seconds_bucket{route="/fragment",le="+Inf"}`,
		`fragserver_request_duration_seconds_count{route="/fragment"} 2`,
		"# TYPE fragserver_stage_duration_seconds histogram",
		`fragserver_stage_duration_seconds_count{stage="extract"}`,
		`fragserver_stage_duration_seconds_count{stage="serialize"}`,
		`fragserver_stage_duration_seconds_count{stage="nnf"}`,
		"fragserver_cache_hits_total",
		"fragserver_cache_misses_total",
		"fragserver_cache_evictions_total",
		"fragserver_cache_bytes",
		// The /metrics scrape itself is the one request in flight.
		"fragserver_inflight_requests 1",
		"fragserver_graph_triples",
		"fragserver_ready 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsCacheParity checks that the cache series on /metrics agree
// exactly with NeighborhoodCache.Stats — the metrics layer must report
// the cache's own accounting, not a parallel count that can drift.
func TestMetricsCacheParity(t *testing.T) {
	srv, ts := newTestServer(t)
	get(t, ts, "/fragment")
	get(t, ts, "/fragment")
	st := srv.cache.Stats()
	if st.Hits == 0 {
		t.Fatal("second /fragment should have produced cache hits")
	}
	_, body := get(t, ts, "/metrics")
	for metric, want := range map[string]uint64{
		"fragserver_cache_hits_total":   st.Hits,
		"fragserver_cache_misses_total": st.Misses,
		"fragserver_cache_entries":      uint64(st.Entries),
		"fragserver_cache_triples":      uint64(st.Triples),
	} {
		if !strings.Contains(body, fmt.Sprintf("%s %d\n", metric, want)) {
			t.Errorf("/metrics %s does not match cache.Stats() value %d", metric, want)
		}
	}
}

// TestCacheHitMissAccounting pins the accounting against actual cache
// behavior end to end: a repeated /node request must convert its misses
// into hits, one per requested shape.
func TestCacheHitMissAccounting(t *testing.T) {
	srv, ts := newTestServer(t)
	frag := core.NewExtractor(srv.graphNow(), srv.h).Fragment(srv.requests[:1])
	if len(frag) == 0 {
		t.Fatal("test fragment empty")
	}
	focus := url.QueryEscape(frag[0].S.String())

	get(t, ts, "/node?iri="+focus+"&shape=S01")
	first := srv.cache.Stats()
	if first.Misses == 0 {
		t.Fatal("first /node lookup must miss")
	}
	get(t, ts, "/node?iri="+focus+"&shape=S01")
	second := srv.cache.Stats()
	if second.Hits != first.Hits+1 {
		t.Errorf("repeat /node: hits %d → %d, want +1", first.Hits, second.Hits)
	}
	if second.Misses != first.Misses {
		t.Errorf("repeat /node: misses %d → %d, want unchanged", first.Misses, second.Misses)
	}
}

// TestServerTimingHeader checks stage attribution reaches the client on
// every streaming route.
func TestServerTimingHeader(t *testing.T) {
	srv, ts := newTestServer(t)
	frag := core.NewExtractor(srv.graphNow(), srv.h).Fragment(srv.requests[:1])
	focus := url.QueryEscape(frag[0].S.String())

	for _, tc := range []struct {
		path   string
		stages []string
	}{
		{"/fragment", []string{"target;dur=", "extract;dur="}},
		{"/fragment?shape=S01", []string{"target;dur=", "extract;dur="}},
		{"/node?iri=" + focus + "&shape=S01", []string{"parse;dur=", "target;dur=", "extract;dur="}},
		{"/tpf?p=" + url.QueryEscape(`?q`), []string{"parse;dur=", "extract;dur="}},
	} {
		resp, _ := get(t, ts, tc.path)
		header := resp.Header.Get("Server-Timing")
		if header == "" {
			t.Errorf("GET %s: no Server-Timing header", tc.path)
			continue
		}
		for _, stage := range tc.stages {
			if !strings.Contains(header, stage) {
				t.Errorf("GET %s: Server-Timing %q missing %q", tc.path, header, stage)
			}
		}
		// serialize post-dates the headers by construction; it must not
		// appear, it is reported via logs and metrics instead.
		if strings.Contains(header, "serialize") {
			t.Errorf("GET %s: serialize leaked into Server-Timing %q", tc.path, header)
		}
	}
}

// TestReadyzDrain flips the drain flag and expects readiness (and the
// ready gauge) to follow while liveness stays green.
func TestReadyzDrain(t *testing.T) {
	srv, ts := newTestServer(t)
	if resp, body := get(t, ts, "/readyz"); resp.StatusCode != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("fresh server /readyz: %d %q", resp.StatusCode, body)
	}
	srv.draining.Store(true)
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != 503 {
		t.Errorf("draining server /readyz: got %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != 200 {
		t.Errorf("draining server /healthz: got %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
	if !srv.Draining() {
		t.Error("Draining() accessor disagrees with drain state")
	}
	if _, body := get(t, ts, "/metrics"); !strings.Contains(body, "fragserver_ready 0") {
		t.Error("fragserver_ready gauge did not drop to 0 while draining")
	}
}

// TestShedMetric saturates the limiter and expects the shed counter to
// record the rejected request.
func TestShedMetric(t *testing.T) {
	srv, ts := newTestServer(t)
	for i := 0; i < cap(srv.sem); i++ {
		srv.sem <- struct{}{}
	}
	resp, _ := get(t, ts, "/fragment")
	for i := 0; i < cap(srv.sem); i++ {
		<-srv.sem
	}
	if resp.StatusCode != 503 {
		t.Fatalf("saturated server: %d", resp.StatusCode)
	}
	if _, body := get(t, ts, "/metrics"); !strings.Contains(body, "fragserver_requests_shed_total 1") {
		t.Error("shed request not counted in fragserver_requests_shed_total")
	}
}
