package fragserver

import (
	"strconv"
	"strings"
	"time"

	"shaclfrag/internal/obs"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/shapelint"
	"shaclfrag/internal/store"
)

// Metric names exported on /metrics. docs/OPERATIONS.md carries the
// operator-facing catalog; keep the two in sync.
const (
	mRequestsTotal   = "fragserver_requests_total"
	mRequestDuration = "fragserver_request_duration_seconds"
	mStageDuration   = "fragserver_stage_duration_seconds"
	mResponseBytes   = "fragserver_response_bytes_total"
	mInflight        = "fragserver_inflight_requests"
	mShedTotal       = "fragserver_requests_shed_total"
	mLintFindings    = "fragserver_schema_lint_findings"
	mExplainTriples  = "fragserver_explain_triples_total"
	mExplainJust     = "fragserver_explain_justifications_total"
	mAttrSampled     = "fragserver_attribution_sampled_total"
	mAttrJustTotal   = "fragserver_attribution_justifications_total"
	mAttrJustByKind  = "fragserver_attribution_justifications_by_kind_total"
	mEpoch           = "fragserver_epoch"
	mUpdateTotal     = "fragserver_update_total"
	mUpdateTriples   = "fragserver_update_triples_total"
	mShardTriples    = "fragserver_store_shard_triples"
	mStoreShards     = "fragserver_store_shards"
	mCrossShard      = "fragserver_store_cross_shard_resolutions_total"
	mPlannerShapes   = "fragserver_planner_strategy_shapes"
	mPlannerEpoch    = "fragserver_planner_stats_epoch"
	mPlanInstrs      = "fragserver_plan_instructions"
	mPlanMemoBytes   = "fragserver_plan_memo_bytes"
	mContainHits     = "fragserver_containment_hits_total"
	mContainUnknown  = "fragserver_containment_unknown_total"
	mContainClasses  = "fragserver_containment_classes"
	mContainShared   = "fragserver_containment_shared_shapes"
	mSubsOpen        = "fragserver_subscribers"
	mSubsTotal       = "fragserver_subscriptions_total"
	mSubsEvicted     = "fragserver_subscribers_evicted_total"
	mSubsResumed     = "fragserver_subscriptions_resumed_total"
	mLiveEvents      = "fragserver_live_events_total"
	mLiveShapes      = "fragserver_live_shapes"
	mLiveReextract   = "fragserver_live_reextracted_total"
	mLiveDelta       = "fragserver_live_delta_triples_total"
	mTracesKept      = "fragserver_traces_kept"
	mTracesSampled   = "fragserver_traces_sampled_total"
	mTracesDropped   = "fragserver_traces_dropped_total"
	mTracesEvicted   = "fragserver_traces_evicted_total"
)

// routeNames are the label values for the route label; requests outside
// the mux's route set are folded into "other" so label cardinality stays
// bounded no matter what paths clients probe.
var routeNames = []string{
	"/validate", "/fragment", "/node", "/explain", "/tpf", "/update",
	"/subscribe", "/healthz", "/readyz", "/stats", "/metrics", "/debug/traces",
}

func normalizeRoute(path string) string {
	// Trace fetches carry the trace ID as a path segment; fold them into
	// the listing route so label cardinality stays bounded.
	if strings.HasPrefix(path, "/debug/traces") {
		return "/debug/traces"
	}
	for _, r := range routeNames {
		if path == r {
			return r
		}
	}
	return "other"
}

// stageNames is the closed set of per-request stages the handlers and
// core emit; pre-creating their histograms keeps the hot path free of
// registry lookups.
var stageNames = []string{
	"parse", "target", "extract", "serialize", "validate", "nnf", "merge",
	"apply", "replan", "notify", "scatter", "gather",
}

// serverMetrics owns the server's registry plus the pre-created hot-path
// instruments, so request handling touches only atomics (the lone
// registry lookup left on the hot path is the on-demand (route, status)
// counter, one short mutexed map probe).
type serverMetrics struct {
	reg       *obs.Registry
	latency   map[string]*obs.Histogram // per route
	respBytes map[string]*obs.Counter   // per route
	stages    map[string]*obs.Histogram // per stage
	inflight  *obs.Gauge
	shed      *obs.Counter

	// /explain volume and the attribution sampler's tallies.
	explainTriples *obs.Counter
	explainJust    *obs.Counter
	sampled        *obs.Counter
	tally          *tallyRecorder // nil unless Config.AttributionSample > 0

	// POST /update outcomes and effective delta volume.
	updApplied  *obs.Counter
	updNoop     *obs.Counter
	updRejected *obs.Counter
	updAdded    *obs.Counter
	updDeleted  *obs.Counter

	// GET /subscribe streams accepted since start; the rest of the
	// subscription series sample the live.Maintainer's own counters.
	subsOpened *obs.Counter
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:       reg,
		latency:   make(map[string]*obs.Histogram),
		respBytes: make(map[string]*obs.Counter),
		stages:    make(map[string]*obs.Histogram),
	}
	for _, route := range append([]string{"other"}, routeNames...) {
		m.latency[route] = reg.Histogram(mRequestDuration,
			"End-to-end request latency in seconds, by route.", nil, obs.L("route", route))
		m.respBytes[route] = reg.Counter(mResponseBytes,
			"Response body bytes written, by route.", obs.L("route", route))
	}
	for _, stage := range stageNames {
		m.stages[stage] = reg.Histogram(mStageDuration,
			"Per-request stage latency in seconds (parse, target, extract, serialize, validate, nnf, merge).",
			nil, obs.L("stage", stage))
	}
	m.inflight = reg.Gauge(mInflight, "Requests currently being served.")
	m.shed = reg.Counter(mShedTotal, "Requests rejected with 503 by the in-flight limiter.")
	m.updApplied = reg.Counter(mUpdateTotal,
		"POST /update requests, by result (applied, noop, rejected).", obs.L("result", "applied"))
	m.updNoop = reg.Counter(mUpdateTotal,
		"POST /update requests, by result (applied, noop, rejected).", obs.L("result", "noop"))
	m.updRejected = reg.Counter(mUpdateTotal,
		"POST /update requests, by result (applied, noop, rejected).", obs.L("result", "rejected"))
	m.updAdded = reg.Counter(mUpdateTriples,
		"Effective triple operations applied by updates, by op.", obs.L("op", "add"))
	m.updDeleted = reg.Counter(mUpdateTriples,
		"Effective triple operations applied by updates, by op.", obs.L("op", "delete"))
	// Subscription and incremental-maintenance series. subsOpened is the
	// only one the handler increments; everything else samples the
	// maintainer's counters at scrape time.
	m.subsOpened = reg.Counter(mSubsTotal, "GET /subscribe streams accepted.")
	reg.GaugeFunc(mSubsOpen, "Subscription streams currently open.",
		func() float64 { return float64(s.live.Stats().Subscribers) })
	reg.GaugeFunc(mLiveShapes, "Shapes with an incrementally maintained materialized fragment.",
		func() float64 { return float64(s.live.Stats().Shapes) })
	reg.CounterFunc(mSubsEvicted, "Subscribers evicted because their event queue was full when a delta fanned out.",
		func() float64 { return float64(s.live.Stats().Evicted) })
	reg.CounterFunc(mSubsResumed, "Subscriptions resumed from the replay ring via Last-Event-ID.",
		func() float64 { return float64(s.live.Stats().Resumed) })
	reg.CounterFunc(mLiveEvents, "Events enqueued to subscribers, by type (delta, snapshot).",
		func() float64 { return float64(s.live.Stats().EventsDelta) }, obs.L("type", "delta"))
	reg.CounterFunc(mLiveEvents, "Events enqueued to subscribers, by type (delta, snapshot).",
		func() float64 { return float64(s.live.Stats().EventsSnap) }, obs.L("type", "snapshot"))
	reg.CounterFunc(mLiveReextract, "Per-(shape, node) neighborhood re-extractions run by incremental maintenance.",
		func() float64 { return float64(s.live.Stats().Reextracted) })
	reg.CounterFunc(mLiveDelta, "Triples that entered or left a maintained fragment, by direction (added, removed).",
		func() float64 { return float64(s.live.Stats().DeltaAdded) }, obs.L("direction", "added"))
	reg.CounterFunc(mLiveDelta, "Triples that entered or left a maintained fragment, by direction (added, removed).",
		func() float64 { return float64(s.live.Stats().DeltaRemove) }, obs.L("direction", "removed"))

	m.explainTriples = reg.Counter(mExplainTriples,
		"Triples returned by /explain responses.")
	m.explainJust = reg.Counter(mExplainJust,
		"Justifications returned by /explain responses.")
	// The sampler's series exist only when sampling is configured; their
	// absence tells a scrape the feature is off rather than idle.
	if s.sampleN > 0 {
		m.sampled = reg.Counter(mAttrSampled,
			"Extraction requests that ran with the sampling attribution recorder.")
		m.tally = newTallyRecorder(reg)
	}

	// Serving-state and workload gauges are sampled at scrape time from
	// the server's own structures — no double bookkeeping.
	reg.GaugeFunc("fragserver_uptime_seconds", "Seconds since the server was built.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc("fragserver_ready", "1 while serving, 0 once draining has begun.",
		func() float64 {
			if s.draining.Load() {
				return 0
			}
			return 1
		})
	reg.GaugeFunc(mEpoch, "Epoch of the currently served snapshot; increments once per effective update.",
		func() float64 { return float64(s.store.Current().Epoch()) })
	reg.GaugeFunc("fragserver_graph_triples", "Triples in the currently served snapshot.",
		func() float64 { return float64(s.store.Current().Reader().Len()) })
	reg.GaugeFunc("fragserver_dict_terms", "Interned terms in the current snapshot's dictionary.",
		func() float64 { return float64(s.store.Current().Reader().Dict().Len()) })
	reg.GaugeFunc("fragserver_schema_shapes", "Shape definitions in the served schema.",
		func() float64 { return float64(s.h.Len()) })
	reg.GaugeFunc("fragserver_extraction_workers", "Parallel extraction worker count.",
		func() float64 { return float64(s.workers) })

	// Storage-backend series. The per-shard triple gauges use one shard
	// label per shard — the shard count is fixed at startup, so label
	// cardinality is bounded by configuration. The single backend exports
	// shard="0" holding the whole graph, so dashboards need no special
	// case; cross-shard resolutions exist only for the sharded backend.
	reg.Gauge("fragserver_store_backend_info",
		"Constant 1, labeled with the storage backend serving this process.",
		obs.L("backend", s.store.Backend())).Set(1)
	reg.GaugeFunc(mStoreShards, "Shards in the storage backend (1 for single).",
		func() float64 { return float64(s.store.NumShards()) })
	for i := 0; i < s.store.NumShards(); i++ {
		shard := i
		reg.GaugeFunc(mShardTriples,
			"Triples held by each shard of the current snapshot, by shard index.",
			func() float64 {
				if ts := s.store.ShardTriples(); shard < len(ts) {
					return float64(ts[shard])
				}
				return 0
			}, obs.L("shard", strconv.Itoa(shard)))
	}
	if s.store.Backend() == store.BackendSharded {
		reg.CounterFunc(mCrossShard,
			"Reverse-index results resolved from a shard other than the queried node's own.",
			func() float64 { return float64(s.store.CrossShardResolutions()) })
	}

	// Strategy-planner series, sampled from the current plan at scrape
	// time. The plan is re-derived per effective update, so the stats
	// epoch lagging fragserver_epoch means an update raced the scrape.
	for _, strat := range []plan.Strategy{plan.StrategyPlan, plan.StrategyDirect, plan.StrategySPARQL} {
		strat := strat
		reg.GaugeFunc(mPlannerShapes,
			"Shape definitions routed to each extraction strategy by the cost-based planner.",
			func() float64 {
				if sp := s.splan.Load(); sp != nil {
					return float64(sp.Counts()[strat])
				}
				return 0
			}, obs.L("strategy", strat.String()))
	}
	reg.GaugeFunc(mPlannerEpoch,
		"Store epoch whose cardinality stats produced the current strategy plan.",
		func() float64 {
			if sp := s.splan.Load(); sp != nil {
				return float64(sp.Stats.Epoch)
			}
			return 0
		})
	reg.GaugeFunc(mPlanInstrs,
		"Compiled plan instructions live across plan-routed definitions.",
		func() float64 { return float64(s.planSet.Load().NumInstrs()) })
	reg.GaugeFunc(mPlanMemoBytes,
		"Dense memo bytes one worker binding every plan-routed program would pin.",
		func() float64 {
			sp := s.splan.Load()
			if sp == nil {
				return 0
			}
			var total int64
			for _, d := range sp.Decisions {
				if d.Strategy == plan.StrategyPlan {
					total += d.MemoBytes
				}
			}
			return float64(total)
		})

	// Lint findings are fixed at load time, so the per-severity gauges are
	// set once. All three severities are always exported: a zero is the
	// signal that the schema came up clean, not a missing series.
	for _, sev := range []shapelint.Severity{shapelint.Info, shapelint.Warning, shapelint.Error} {
		reg.Gauge(mLintFindings,
			"Schema lint findings reported by shapelint at load time, by severity.",
			obs.L("severity", sev.String())).Set(int64(shapelint.Count(s.lint, sev)))
	}

	// Neighborhood-cache series exist only when the cache is enabled;
	// absent series (rather than constant zeros) is how a scrape tells a
	// disabled cache from an idle one.
	if s.cache != nil {
		reg.CounterFunc("fragserver_cache_hits_total", "Neighborhood cache hits.",
			func() float64 { return float64(s.cache.Stats().Hits) })
		reg.CounterFunc("fragserver_cache_misses_total", "Neighborhood cache misses.",
			func() float64 { return float64(s.cache.Stats().Misses) })
		reg.CounterFunc("fragserver_cache_evictions_total", "Neighborhood cache entries evicted to make room.",
			func() float64 { return float64(s.cache.Stats().Evictions) })
		reg.CounterFunc("fragserver_cache_evicted_triples_total", "Triples held by evicted entries.",
			func() float64 { return float64(s.cache.Stats().EvictedTriples) })
		reg.GaugeFunc("fragserver_cache_entries", "Neighborhoods currently cached.",
			func() float64 { return float64(s.cache.Stats().Entries) })
		reg.GaugeFunc("fragserver_cache_triples", "Triples currently cached.",
			func() float64 { return float64(s.cache.Stats().Triples) })
		reg.GaugeFunc("fragserver_cache_bytes", "Approximate bytes of cached triple storage.",
			func() float64 { return float64(s.cache.Stats().Bytes) })
		reg.CounterFunc("fragserver_cache_stale_evictions_total",
			"Cache entries evicted because their epoch fell below every in-flight request.",
			func() float64 { return float64(s.cache.Stats().StaleEvictions) })
		reg.CounterFunc("fragserver_cache_stale_triples_total",
			"Triples held by stale-epoch evicted entries.",
			func() float64 { return float64(s.cache.Stats().StaleTriples) })
		reg.CounterFunc("fragserver_cache_carried_total",
			"Cache entries carried to a new epoch because the update did not affect their node.",
			func() float64 { return float64(s.cache.Stats().Carried) })
		reg.CounterFunc(mContainHits,
			"Cache hits served through a containment alias: requests answered from a congruent definition's entries.",
			func() float64 { return float64(s.cache.Stats().AliasHits) })
	}

	// Containment equivalence-class series, sampled from the table the
	// last replan published. Shared > 0 means the schema has congruent
	// definitions whose cache entries are pooled.
	reg.GaugeFunc(mContainClasses,
		"Containment equivalence classes over the request and definition shapes.",
		func() float64 {
			if cl := s.classes.Load(); cl != nil {
				return float64(cl.NumClasses)
			}
			return 0
		})
	reg.GaugeFunc(mContainShared,
		"Shapes aliased to another shape's cache entries by the containment analysis.",
		func() float64 {
			if cl := s.classes.Load(); cl != nil {
				return float64(cl.Shared)
			}
			return 0
		})
	reg.CounterFunc(mContainUnknown,
		"Representative pairs the containment checker could not prove equivalent across class rebuilds — possibly-shareable cache partitions left separate.",
		func() float64 { return float64(s.containUnknown.Load()) })

	// Trace-registry series, sampled from the ring's own counters. kept is
	// a gauge (the ring holds at most -trace-buffer traces); the rest are
	// monotone decisions made by the head sampler and the evictor.
	reg.GaugeFunc(mTracesKept, "Traces currently held in the /debug/traces ring.",
		func() float64 { return float64(s.traces.Stats().Kept) })
	reg.CounterFunc(mTracesSampled, "Requests elected for span tracing by the head sampler or an upstream traceparent.",
		func() float64 { return float64(s.traces.Stats().Sampled) })
	reg.CounterFunc(mTracesDropped, "Requests that ran without span tracing.",
		func() float64 { return float64(s.traces.Stats().Dropped) })
	reg.CounterFunc(mTracesEvicted, "Traces evicted from the ring to make room for newer ones.",
		func() float64 { return float64(s.traces.Stats().Evicted) })

	// Go runtime telemetry (heap, GC, goroutines, scheduler latency) is
	// always on — it costs one runtime/metrics batch read per scrape.
	obs.RegisterRuntimeMetrics(reg)
	return m
}

// observe records the end-of-request rollup: the (route, status) counter,
// the route latency histogram and byte counter, and every stage the
// request's trace accumulated. traceID is non-empty only for sampled
// requests; the latency histogram stores it as the exemplar on the
// bucket the request landed in, linking /metrics back to /debug/traces.
func (m *serverMetrics) observe(route string, status int, bytes int64, dur time.Duration, tr *obs.Trace, traceID string) {
	m.reg.Counter(mRequestsTotal, "Requests served, by route and HTTP status.",
		obs.L("route", route), obs.L("status", strconv.Itoa(status))).Inc()
	m.latency[route].ObserveExemplar(dur.Seconds(), traceID)
	if bytes > 0 {
		m.respBytes[route].Add(uint64(bytes))
	}
	for _, st := range tr.Stages() {
		if h, ok := m.stages[st.Name]; ok {
			h.ObserveDuration(st.Dur)
		}
	}
}
