package fragserver

import (
	"fmt"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// labeledMetricValue parses one labeled series out of /metrics text, e.g.
// fragserver_update_total{result="rejected"} 3.
func labeledMetricValue(t *testing.T, body, name, label string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{[^}]*` + regexp.QuoteMeta(label) + `[^}]*\} ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s{%s} not found in /metrics output", name, label)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestUpdateRejectionPathsCounted pins the undercounting bug: every 4xx/5xx
// rejection path of POST /update must increment
// fragserver_update_total{result="rejected"} — including the bad-op,
// empty-delta and truncated-body paths, which used to return without
// counting.
func TestUpdateRejectionPathsCounted(t *testing.T) {
	srv, ts := newUpdateTestServer(t, Config{MaxUpdateBytes: 64})
	count := func() uint64 { return srv.metrics.updRejected.Value() }

	for _, tc := range []struct {
		name, path, body string
		want             int
	}{
		{"bad op", "/update?op=replace", "<http://ex/a> <http://ex/p> <http://ex/z> .", http.StatusBadRequest},
		{"bad syntax", "/update", "this is not turtle", http.StatusBadRequest},
		{"empty delta", "/update", "# only a comment\n", http.StatusBadRequest},
		{"oversized", "/update", strings.Repeat("<http://ex/a> <http://ex/p> <http://ex/z> .\n", 10), http.StatusRequestEntityTooLarge},
	} {
		before := count()
		resp, body := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: got %d, want %d\n%s", tc.name, resp.StatusCode, tc.want, body)
		}
		if got := count(); got != before+1 {
			t.Errorf("%s: rejected counter %d → %d, want +1", tc.name, before, got)
		}
	}

	// Drain rejection counts too.
	before := count()
	srv.draining.Store(true)
	if resp, _ := post(t, ts, "/update", "<http://ex/a> <http://ex/p> <http://ex/z> ."); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update during drain not rejected")
	}
	srv.draining.Store(false)
	if got := count(); got != before+1 {
		t.Errorf("drain rejection: counter %d → %d, want +1", before, got)
	}

	// The truncated-body path (a read error that is NOT MaxBytesError):
	// announce a large Content-Length, send a few bytes, hang up. The
	// handler's body read fails with an unexpected EOF and must count the
	// rejection even though nobody sees the 400.
	before = count()
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: text/turtle\r\nContent-Length: 1000\r\n\r\npartial")
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for count() != before+1 {
		if time.Now().After(deadline) {
			t.Fatalf("truncated-body rejection never counted: %d → %d", before, count())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And the counter is what /metrics exports under result="rejected".
	_, metrics := get(t, ts, "/metrics")
	if got := labeledMetricValue(t, metrics, mUpdateTotal, `result="rejected"`); got != float64(count()) {
		t.Errorf("/metrics rejected = %v, counter = %d", got, count())
	}
}
