package fragserver

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// congruentSchema holds two definitions that differ only in name and
// conjunct order — the containment analysis must put their request
// shapes in one equivalence class so they share cache entries.
func congruentSchema(t *testing.T) *schema.Schema {
	t.Helper()
	minName := shape.Min(1, paths.P(datagen.PropName), shape.TrueShape())
	litRating := shape.All(paths.P(datagen.PropRating), shape.NodeTestShape(shape.IsLiteral{}))
	return schema.MustNew(
		schema.Definition{
			Name:   rdf.NewIRI(datagen.NS + "shape/S1"),
			Shape:  shape.AndOf(minName, litRating),
			Target: schema.TargetClass(datagen.ClassEvent),
		},
		schema.Definition{
			Name:   rdf.NewIRI(datagen.NS + "shape/S2"),
			Shape:  shape.AndOf(litRating, minName),
			Target: schema.TargetClass(datagen.ClassEvent),
		},
	)
}

func newCongruentServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 80, Seed: 11})
	srv, err := New(Config{Graph: g, Schema: congruentSchema(t), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in /metrics output", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// TestFragmentServedFromCongruentCacheEntries is the tentpole e2e check:
// requesting S2's fragment after S1's is served from S1's warm cache
// entries (the containment hit counter moves) and is byte-identical to
// what a cold server extracts for S2.
func TestFragmentServedFromCongruentCacheEntries(t *testing.T) {
	srv, ts := newCongruentServer(t)

	if cl := srv.ContainmentClasses(); cl == nil || cl.Shared == 0 {
		t.Fatalf("containment classes = %+v, want shared shapes", cl)
	}

	_, warm1 := get(t, ts, "/fragment?shape=S1")
	_, warm2 := get(t, ts, "/fragment?shape=S2")
	if warm1 != warm2 {
		// Same target, congruent shapes: the fragments must coincide too.
		t.Fatal("congruent definitions served different fragments")
	}

	_, metrics := get(t, ts, "/metrics")
	if hits := metricValue(t, metrics, "fragserver_containment_hits_total"); hits == 0 {
		t.Fatal("S2's fragment did not hit S1's cache entries through the alias table")
	}
	if classes := metricValue(t, metrics, "fragserver_containment_classes"); classes == 0 {
		t.Fatal("containment class gauge missing or zero")
	}
	if shared := metricValue(t, metrics, "fragserver_containment_shared_shapes"); shared == 0 {
		t.Fatal("shared-shapes gauge missing or zero")
	}

	// Cold control: a fresh server asked only for S2 must produce the
	// same bytes the warm alias-served response carried.
	_, cold := newCongruentServer(t)
	_, coldBody := get(t, cold, "/fragment?shape=S2")
	if coldBody != warm2 {
		t.Fatal("alias-served fragment differs from cold extraction")
	}
}

// TestNodeServedFromCongruentCacheEntries covers the /node route, which
// keys the cache by raw definition shapes rather than request shapes.
func TestNodeServedFromCongruentCacheEntries(t *testing.T) {
	srv, ts := newCongruentServer(t)

	// Find a node /fragment actually serves, so the neighborhood is
	// non-trivial.
	_, frag := get(t, ts, "/fragment?shape=S1")
	line := strings.SplitN(frag, " ", 2)[0]
	if !strings.HasPrefix(line, "<") {
		t.Fatalf("no IRI subject in fragment: %q", frag[:min(80, len(frag))])
	}
	iri := strings.Trim(line, "<>")

	_, n1 := get(t, ts, "/node?iri="+iri+"&shape=S1")
	before := srv.cache.Stats().AliasHits
	_, n2 := get(t, ts, "/node?iri="+iri+"&shape=S2")
	if n1 != n2 {
		t.Fatal("congruent definition shapes served different node neighborhoods")
	}
	if after := srv.cache.Stats().AliasHits; after == before {
		t.Fatal("S2's /node request did not reuse S1's cached neighborhood")
	}
}
