package fragserver

import (
	"context"
	"net/http"
	"time"
)

// withTimeout attaches the per-request compute budget to the request
// context; extraction loops observe it between work units.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	if s.timeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// withLimit bounds in-flight requests. Extraction is CPU-bound, so queueing
// beyond the limit only grows latency; shed load immediately instead and
// let the client retry.
func (s *Server) withLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
		}
	})
}

// statusWriter captures status and byte count for access logging while
// forwarding Flush so streamed responses keep streaming.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withAccessLog emits one structured log line per request.
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", time.Since(start).Milliseconds(),
			"remote", r.RemoteAddr,
		)
	})
}
