package fragserver

import (
	"context"
	"net/http"
	"time"

	"shaclfrag/internal/obs"
)

// withTimeout attaches the per-request compute budget to the request
// context; extraction loops observe it between work units.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	if s.timeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// withLimit bounds in-flight requests. Extraction is CPU-bound, so queueing
// beyond the limit only grows latency; shed load immediately instead and
// let the client retry. The in-flight gauge and shed counter live here so
// their values describe exactly what the limiter sees.
func (s *Server) withLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			s.metrics.inflight.Add(1)
			defer func() {
				s.metrics.inflight.Add(-1)
				<-s.sem
			}()
			next.ServeHTTP(w, r)
		default:
			s.metrics.shed.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
		}
	})
}

// statusWriter captures status and byte count for access logging while
// forwarding Flush so streamed responses keep streaming.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObs is the outermost middleware: it attaches a fresh per-request
// obs.Trace to the context (handlers and core record stage timings into
// it), then at end of request emits one structured access-log line with
// the stage fields appended and rolls the request up into the metrics
// registry. Sitting outside withLimit means shed requests are counted
// and logged too.
//
// It is also where hierarchical tracing starts and ends: when the head
// sampler elects the request (or an upstream sent a sampled traceparent
// header), a span tree is rooted under the trace, the continuation
// traceparent goes out on the response, and the finished trace is kept
// in the ring — error and slow traces marked notable. The route latency
// histogram records the trace ID as the bucket's exemplar, linking
// /metrics to /debug/traces.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		route := normalizeRoute(r.URL.Path)
		tr := obs.NewTrace()
		var st *obs.SpanTrace
		parent, hasParent := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if s.sampleTrace() || (hasParent && parent.Sampled) {
			st = obs.NewSpanTrace(r.Method+" "+route, parent)
			tr.SetRoot(st.Root())
			w.Header().Set("traceparent", st.Traceparent())
		} else {
			s.traces.MarkDropped()
		}
		r = r.WithContext(obs.NewContext(r.Context(), tr))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		slow := s.slowReq > 0 && dur >= s.slowReq
		traceID := ""
		if st != nil {
			root := st.Root()
			root.SetAttr("http.route", route)
			root.SetAttrInt("http.status", int64(sw.status))
			root.SetAttrInt("http.bytes", sw.bytes)
			root.End()
			s.traces.Keep(st, sw.status >= 500 || slow)
			traceID = st.ID().String()
		}
		s.metrics.observe(route, sw.status, sw.bytes, dur, tr, traceID)
		args := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", dur.Milliseconds(),
			"remote", r.RemoteAddr,
		}
		s.log.Info("request", append(args, tr.LogArgs()...)...)
		if slow {
			slowArgs := append(args, "threshold_ms", s.slowReq.Milliseconds())
			if st != nil {
				slowArgs = append(slowArgs, "trace_id", traceID, "top_spans", st.TopSpans(3))
			}
			s.log.Warn("slow request", slowArgs...)
		}
	})
}
