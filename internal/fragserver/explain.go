package fragserver

import (
	"encoding/json"
	"net/http"

	"shaclfrag/internal/core"
	"shaclfrag/internal/obs"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
)

// Wire types for the /explain JSON response. Terms are rendered in
// N-Triples concrete syntax (<iri>, _:label, "literal"^^<dt>), matching the
// N-Triples bodies the other routes stream.

type explainStep struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Pred string `json:"pred"`
	Fwd  bool   `json:"fwd"`
}

type explainJustification struct {
	Shape      string       `json:"shape,omitempty"`
	Constraint string       `json:"constraint"`
	Kind       string       `json:"kind"`
	Negated    bool         `json:"negated,omitempty"`
	Focus      string       `json:"focus"`
	Step       *explainStep `json:"step,omitempty"`
}

type explainTriple struct {
	S              string                 `json:"s"`
	P              string                 `json:"p"`
	O              string                 `json:"o"`
	Justifications []explainJustification `json:"justifications"`
}

type explainShapeStatus struct {
	Name     string `json:"name"`
	Conforms *bool  `json:"conforms,omitempty"` // omitted when the focus term is unknown
}

type explainResponse struct {
	Focus   string               `json:"focus"`
	Shapes  []explainShapeStatus `json:"shapes"`
	Triples []explainTriple      `json:"triples"`
}

// handleExplain serves GET /explain?iri=<term>[&shape=<name>]: the
// neighborhood of the node for the named definition (or all definitions),
// annotated per triple with the Table 2 justifications that pulled it in.
// The route shares the in-flight limiter and request timeout with every
// other route; Config.DisableExplain turns it off entirely.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if s.explainOff {
		http.Error(w, "explain is disabled on this server", http.StatusNotFound)
		return
	}
	tr := obs.FromContext(r.Context())
	q := r.URL.Query()
	rawIRI := q.Get("iri")
	if rawIRI == "" {
		http.Error(w, "missing iri parameter", http.StatusBadRequest)
		return
	}
	stopParse := tr.Start("parse")
	focus, err := parseTermParam(rawIRI)
	stopParse()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	stopTarget := tr.Start("target")
	defs := s.h.Definitions()
	if name := q.Get("shape"); name != "" {
		i, ok := s.defIndex(name)
		if !ok {
			stopTarget()
			http.Error(w, "unknown or ambiguous shape "+name, http.StatusNotFound)
			return
		}
		defs = defs[i : i+1]
	} else {
		// Default to the IRI-named definitions: the auxiliary blank-named
		// property shapes a SHACL translation introduces are reachable from
		// those through hasShape and would only repeat themselves.
		var named []schema.Definition
		for _, d := range defs {
			if d.Name.IsIRI() {
				named = append(named, d)
			}
		}
		if len(named) > 0 {
			defs = named
		}
	}
	snap, done := s.snapshot(w)
	defer done()
	g := snap.Reader()
	id := g.LookupTerm(focus)
	stopTarget()

	resp := explainResponse{Focus: focus.String(), Triples: []explainTriple{}}
	x := s.acquire(g)
	defer s.release(x)
	stopExtract := tr.Start("extract")
	ex := core.NewExplanation(g)
	for _, d := range defs {
		status := explainShapeStatus{Name: d.Name.String()}
		if id != rdfgraph.NoID {
			if r.Context().Err() != nil {
				stopExtract()
				httpTimeoutError(w, r, r.Context().Err())
				return
			}
			conforms := x.Evaluator().Conforms(id, d.Shape)
			status.Conforms = &conforms
			x.ExplainInto(ex, focus, d.Name, d.Shape)
		}
		resp.Shapes = append(resp.Shapes, status)
	}
	stopExtract()

	var justifications int
	for _, at := range ex.Annotated() {
		et := explainTriple{
			S: at.Triple.S.String(), P: at.Triple.P.String(), O: at.Triple.O.String(),
			Justifications: make([]explainJustification, 0, len(at.Justifications)),
		}
		for _, j := range at.Justifications {
			ej := explainJustification{
				Constraint: j.Constraint.String(),
				Kind:       j.Kind(),
				Negated:    j.Negated,
				Focus:      g.Term(j.Focus).String(),
			}
			if j.Shape != (rdf.Term{}) {
				ej.Shape = j.Shape.String()
			}
			if j.HasStep {
				ej.Step = &explainStep{
					From: j.Step.From, To: j.Step.To,
					Pred: g.Term(j.Step.Pred).String(), Fwd: j.Step.Fwd,
				}
			}
			et.Justifications = append(et.Justifications, ej)
			justifications++
		}
		resp.Triples = append(resp.Triples, et)
	}
	s.metrics.explainTriples.Add(uint64(len(resp.Triples)))
	s.metrics.explainJust.Add(uint64(justifications))

	stopSerialize := tr.Start("serialize")
	defer stopSerialize()
	if st := tr.ServerTiming(); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	enc.Encode(resp) //nolint:errcheck — nothing to do about a failed write
}

// sampleAttribution implements Config.AttributionSample: it returns the
// shared tally recorder for every Nth extraction request and nil otherwise.
// Sampled extractions bypass the neighborhood cache (attribution must
// re-derive), so N trades justification telemetry against cache hit rate.
func (s *Server) sampleAttribution() core.AttributionRecorder {
	if s.sampleN <= 0 {
		return nil
	}
	if s.sampleCount.Add(1)%uint64(s.sampleN) != 0 {
		return nil
	}
	s.metrics.sampled.Inc()
	return s.metrics.tally
}

// tallyRecorder is the sampling AttributionRecorder: instead of retaining
// justifications it bumps one counter per constraint kind, giving operators
// a running profile of *which* Table 2 rules account for served triples.
// All counters are pre-created, so Record touches only atomics; shape
// strings are never rendered on this path.
type tallyRecorder struct {
	total  *obs.Counter
	byKind map[string]*obs.Counter
}

func newTallyRecorder(reg *obs.Registry) *tallyRecorder {
	t := &tallyRecorder{
		total: reg.Counter(mAttrJustTotal,
			"Justifications recorded by sampled attribution, total."),
		byKind: make(map[string]*obs.Counter, len(core.ConstraintKinds)),
	}
	for _, k := range core.ConstraintKinds {
		t.byKind[k] = reg.Counter(mAttrJustByKind,
			"Justifications recorded by sampled attribution, by constraint kind.",
			obs.L("constraint", k))
	}
	return t
}

// Record implements core.AttributionRecorder.
func (t *tallyRecorder) Record(_ rdfgraph.IDTriple, j core.Justification) {
	t.total.Inc()
	if c, ok := t.byKind[j.Kind()]; ok {
		c.Inc()
	}
}

var _ core.AttributionRecorder = (*tallyRecorder)(nil)
