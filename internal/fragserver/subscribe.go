package fragserver

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"shaclfrag/internal/live"
)

// handleSubscribe serves GET /subscribe?shape=<name>: a Server-Sent Events
// stream of the named shape's fragment as it evolves across epochs.
//
// The stream opens with either a "snapshot" event (the full fragment) or,
// when the client resumed with a Last-Event-ID header naming an epoch
// still covered by the replay ring, exactly the "delta" events it missed.
// From there every effective update that moves the fragment produces one
// "delta" event. Event ids are epochs, so the SSE auto-reconnect protocol
// doubles as the resume protocol. Payloads are JSON:
//
//	id: 7
//	event: delta
//	data: {"epoch":7,"added":["<s> <p> <o> ."],"removed":[]}
//
// A comment heartbeat (": hb") goes out every Config.Heartbeat while the
// stream is idle. The stream ends with a terminal "bye" event naming the
// reason — "drain" during graceful shutdown, "evicted" when the client
// fell further behind than its send queue — after which the client should
// reconnect (with Last-Event-ID, to a draining server's replacement).
//
// The route bypasses the request timeout and the in-flight limiter;
// Config.MaxSubscribers bounds it instead (503 + Retry-After beyond it,
// and during drain).
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("shape")
	if name == "" {
		http.Error(w, "missing shape parameter", http.StatusBadRequest)
		return
	}
	def, ok := s.defIndex(name)
	if !ok {
		http.Error(w, "unknown or ambiguous shape "+name, http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var from uint64
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		v, err := strconv.ParseUint(lei, 10, 64)
		if err != nil {
			http.Error(w, "Last-Event-ID: want an epoch number", http.StatusBadRequest)
			return
		}
		from = v
	}

	sub, initial, err := s.live.Subscribe(def, from)
	if err != nil {
		if errors.Is(err, live.ErrDraining) || errors.Is(err, live.ErrSubscriberLimit) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer s.live.Unsubscribe(sub)
	s.metrics.subsOpened.Inc()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // intermediaries must not buffer the stream
	h.Set("X-Epoch", strconv.FormatUint(s.live.Epoch(), 10))
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	write := func(ev live.Event) bool {
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Epoch, ev.Type, ev.Data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range initial {
		if !write(ev) {
			return
		}
	}

	hb := time.NewTicker(s.hb)
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, open := <-sub.Events():
			if !open {
				// Terminal: drained or evicted. Tell the client which so
				// its reconnect policy can differ (a drain means "find
				// another replica", an eviction means "you are too slow").
				fmt.Fprintf(w, "event: bye\ndata: {\"reason\":%q}\n\n", sub.Reason())
				fl.Flush()
				return
			}
			if !write(ev) {
				return
			}
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
