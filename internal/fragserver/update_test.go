package fragserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

func exTriple(s, o string) rdf.Triple {
	return rdf.Triple{S: ex(s), P: ex("p"), O: ex(o)}
}

// newUpdateTestServer serves a two-component graph ({a,b} and {c,d}, both
// via p-edges) under one definition whose shape and target are ≥1 p.⊤ —
// small enough that every response is predictable triple by triple.
func newUpdateTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Graph == nil {
		cfg.Graph = rdfgraph.FromTriples([]rdf.Triple{
			exTriple("a", "b"),
			exTriple("c", "d"),
		})
	}
	if cfg.Schema == nil {
		hasP := shape.Min(1, paths.P("http://ex/p"), shape.TrueShape())
		cfg.Schema = schema.MustNew(schema.Definition{Name: ex("S"), Shape: hasP, Target: hasP})
	}
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/turtle", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, sb.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func nodeURL(name string) string {
	return "/node?iri=" + url.QueryEscape("<http://ex/"+name+">")
}

const (
	lineAB = "<http://ex/a> <http://ex/p> <http://ex/b> ."
	lineAE = "<http://ex/a> <http://ex/p> <http://ex/e> ."
	lineCD = "<http://ex/c> <http://ex/p> <http://ex/d> ."
)

// TestUpdateEndToEnd is the acceptance path: a delta lands between two
// reads of the same focus node. Each response carries exactly one epoch,
// the post-update read reflects the delta, and the cache stays warm for
// the component the delta did not touch.
func TestUpdateEndToEnd(t *testing.T) {
	srv, ts := newUpdateTestServer(t, Config{})

	// Epoch 1: both reads see the initial state.
	resp, body := get(t, ts, nodeURL("a"))
	if got := resp.Header.Get("X-Epoch"); got != "1" {
		t.Fatalf("pre-update X-Epoch = %q, want 1", got)
	}
	if !strings.Contains(body, lineAB) || strings.Contains(body, lineAE) {
		t.Fatalf("pre-update /node?a:\n%s", body)
	}
	if _, body := get(t, ts, nodeURL("c")); !strings.Contains(body, lineCD) {
		t.Fatalf("pre-update /node?c:\n%s", body)
	}
	if resp, body := get(t, ts, "/fragment"); resp.Header.Get("X-Epoch") != "1" ||
		!strings.Contains(body, lineAB) || !strings.Contains(body, lineCD) {
		t.Fatalf("pre-update /fragment (epoch %s):\n%s", resp.Header.Get("X-Epoch"), body)
	}

	// The delta touches only the {a,b} component.
	resp, body = post(t, ts, "/update", "<http://ex/a> <http://ex/p> <http://ex/e> .")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /update: %d\n%s", resp.StatusCode, body)
	}
	var ur updateResponse
	if err := json.Unmarshal([]byte(body), &ur); err != nil {
		t.Fatalf("update response not JSON: %v\n%s", err, body)
	}
	if !ur.Changed || ur.Epoch != 2 || ur.Added != 1 || ur.Deleted != 0 || ur.Triples != 3 {
		t.Fatalf("update response: %+v", ur)
	}
	if ur.Carried == 0 {
		t.Fatalf("no cache entries carried; the untouched component should survive the update")
	}
	if got := resp.Header.Get("X-Epoch"); got != "2" {
		t.Fatalf("update X-Epoch = %q, want 2", got)
	}

	// Post-update: the same focus reflects the delta under the new epoch.
	resp, body = get(t, ts, nodeURL("a"))
	if got := resp.Header.Get("X-Epoch"); got != "2" {
		t.Fatalf("post-update X-Epoch = %q, want 2", got)
	}
	if !strings.Contains(body, lineAB) || !strings.Contains(body, lineAE) {
		t.Fatalf("post-update /node?a missing the delta:\n%s", body)
	}

	// The untouched component is served from the carried cache entry:
	// hits grow, misses do not.
	before := srv.cache.Stats()
	if _, body := get(t, ts, nodeURL("c")); !strings.Contains(body, lineCD) {
		t.Fatalf("post-update /node?c:\n%s", body)
	}
	after := srv.cache.Stats()
	if after.Hits <= before.Hits {
		t.Errorf("cache went cold for an untouched node: hits %d → %d", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses {
		t.Errorf("untouched node re-derived after update: misses %d → %d", before.Misses, after.Misses)
	}

	// The whole fragment under epoch 2 contains exactly the new state.
	if _, body := get(t, ts, "/fragment"); !strings.Contains(body, lineAB) ||
		!strings.Contains(body, lineAE) || !strings.Contains(body, lineCD) {
		t.Fatalf("post-update /fragment:\n%s", body)
	}

	// The touched component's old entries cannot be served: reading a
	// again was a miss-then-fill, and stale epoch-1 entries get swept once
	// nothing pins epoch 1 anymore.
	if st := srv.cache.Stats(); st.StaleEvictions == 0 {
		t.Errorf("no stale-epoch evictions recorded after the update: %+v", st)
	}
}

// TestUpdateDeleteOp covers op=delete end to end, including the node index
// cleanup: a node whose last triple is gone serves an empty neighborhood.
func TestUpdateDeleteOp(t *testing.T) {
	_, ts := newUpdateTestServer(t, Config{})
	resp, body := post(t, ts, "/update?op=delete", "<http://ex/c> <http://ex/p> <http://ex/d> .")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /update?op=delete: %d\n%s", resp.StatusCode, body)
	}
	var ur updateResponse
	if err := json.Unmarshal([]byte(body), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Deleted != 1 || ur.Added != 0 || ur.Triples != 1 {
		t.Fatalf("delete response: %+v", ur)
	}
	if resp, body := get(t, ts, nodeURL("c")); resp.StatusCode != 200 || strings.Contains(body, lineCD) {
		t.Fatalf("deleted triple still served:\n%s", body)
	}
}

// TestUpdateValidation covers the rejection paths: bad op, bad syntax,
// empty delta, oversized body, wrong method.
func TestUpdateValidation(t *testing.T) {
	_, ts := newUpdateTestServer(t, Config{MaxUpdateBytes: 64})
	for _, tc := range []struct {
		name, path, body string
		want             int
	}{
		{"bad op", "/update?op=replace", "<http://ex/a> <http://ex/p> <http://ex/z> .", http.StatusBadRequest},
		{"bad syntax", "/update", "this is not turtle", http.StatusBadRequest},
		{"empty", "/update", "# only a comment\n", http.StatusBadRequest},
		{"oversized", "/update", strings.Repeat("<http://ex/a> <http://ex/p> <http://ex/z> .\n", 10), http.StatusRequestEntityTooLarge},
	} {
		resp, body := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d, want %d\n%s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
	resp, _ := get(t, ts, "/update")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /update: got %d, want 405", resp.StatusCode)
	}
}

// TestUpdateNoop: a duplicate add publishes no epoch and reports noop.
func TestUpdateNoop(t *testing.T) {
	_, ts := newUpdateTestServer(t, Config{})
	_, body := post(t, ts, "/update", "<http://ex/a> <http://ex/p> <http://ex/b> .")
	var ur updateResponse
	if err := json.Unmarshal([]byte(body), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Changed || ur.Epoch != 1 {
		t.Fatalf("duplicate add changed the store: %+v", ur)
	}
}

// TestUpdateRejectedWhileDraining: satellites of graceful shutdown — an
// update during drain is answered 503 immediately, never queued or hung.
func TestUpdateRejectedWhileDraining(t *testing.T) {
	srv, ts := newUpdateTestServer(t, Config{})
	srv.draining.Store(true)
	done := make(chan struct{})
	var status int
	var body string
	go func() {
		defer close(done)
		var resp *http.Response
		resp, body = post(t, ts, "/update", "<http://ex/a> <http://ex/p> <http://ex/z> .")
		status = resp.StatusCode
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("update during drain hung")
	}
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("update during drain: %d %q, want 503 draining", status, body)
	}
	// The graph must be untouched.
	if srv.store.Current().Epoch() != 1 {
		t.Fatal("drained server applied an update")
	}
}

// TestUpdateEpochConsistency swaps the graph between two one-triple states
// while readers hammer the focus node: every response must be internally
// consistent with exactly one epoch — exactly one of the two states, never
// a blend, never empty. The swap must be atomic (delete+add in one Delta),
// which HTTP exposes only as two separate ops, so the writer drives the
// Store directly; the readers still go through HTTP, which is where the
// per-request snapshot pinning under test lives.
func TestUpdateEpochConsistency(t *testing.T) {
	srv, ts := newUpdateTestServer(t, Config{
		Graph: rdfgraph.FromTriples([]rdf.Triple{exTriple("a", "b")}),
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + nodeURL("a"))
				if err != nil {
					t.Error(err)
					return
				}
				body := readAll(t, resp)
				resp.Body.Close()
				hasAB := strings.Contains(body, lineAB)
				hasAE := strings.Contains(body, lineAE)
				if hasAB == hasAE { // both or neither: a torn read
					t.Errorf("inconsistent response at epoch %s:\n%q", resp.Header.Get("X-Epoch"), body)
					return
				}
			}
		}()
	}
	ab, ae := exTriple("a", "b"), exTriple("a", "e")
	st := srv.Store()
	const swaps = 60
	for i := 0; i < swaps; i++ {
		if i%2 == 0 {
			st.Apply(rdfgraph.Delta{Del: []rdf.Triple{ab}, Add: []rdf.Triple{ae}})
		} else {
			st.Apply(rdfgraph.Delta{Del: []rdf.Triple{ae}, Add: []rdf.Triple{ab}})
		}
	}
	close(stop)
	wg.Wait()
	if epoch := srv.store.Current().Epoch(); epoch != 1+swaps {
		t.Fatalf("epoch = %d, want %d", epoch, 1+swaps)
	}
}

// TestNodeUnknownIRIRace is the frozen-dictionary regression: concurrent
// /node lookups of IRIs the graph has never seen, racing live updates,
// must neither intern into a shared frozen dictionary (a panic under the
// Freeze contract, a data race without it) nor blow up the extractor pool.
// Run with -race to get the full guarantee.
func TestNodeUnknownIRIRace(t *testing.T) {
	_, ts := newUpdateTestServer(t, Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < 40; i++ {
				u := nodeURL(fmt.Sprintf("unknown-%d-%d", w, i))
				resp, err := client.Get(ts.URL + u)
				if err != nil {
					t.Error(err)
					return
				}
				body := readAll(t, resp)
				resp.Body.Close()
				if resp.StatusCode != 200 || strings.TrimSpace(body) != "" {
					t.Errorf("unknown IRI: %d %q", resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	// Updates churn epochs (and dictionary overlays) underneath the
	// unknown-term lookups.
	for i := 0; i < 20; i++ {
		post(t, ts, "/update", fmt.Sprintf("<http://ex/s%d> <http://ex/p> <http://ex/o%d> .", i, i))
	}
	wg.Wait()
}

// TestTimeoutReleasesLimiterSlot is the limiter regression: a request that
// burns its whole RequestTimeout while holding the only MaxInflight slot
// must still release it, so later requests are served rather than shed.
func TestTimeoutReleasesLimiterSlot(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 2000, Seed: 3})
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	srv, err := New(Config{
		Graph: g, Schema: h, Logger: quietLogger(),
		MaxInflight:    1,
		Workers:        1,
		RequestTimeout: time.Millisecond,
		CacheTriples:   -1, // no cache: every request must grind and time out
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 4; i++ {
		resp, body := get(t, ts, "/fragment")
		// Sequential requests: nothing else holds the slot, so capacity
		// shedding here can only mean the previous timeout leaked it.
		if strings.Contains(body, "server at capacity") {
			t.Fatalf("request %d shed: the timed-out predecessor leaked its slot", i)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: got %d, want 503 (timeout)", i, resp.StatusCode)
		}
	}
	// And the slot is actually free: a cheap route sails through.
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != 200 {
		t.Fatalf("post-timeout /healthz: %d", resp.StatusCode)
	}
}
