package fragserver

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/store"
)

// TestShardedServerParity checks a server on the sharded backend answers
// /fragment byte-identically to one on the single backend, over a graph
// big enough that scatter-gather scheduling actually engages.
func TestShardedServerParity(t *testing.T) {
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	build := func(cfg store.Config) string {
		t.Helper()
		g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 250, Seed: 6})
		srv, err := New(Config{
			Graph: g, Schema: h, Logger: quietLogger(),
			Backend: cfg.Backend, Shards: cfg.Shards, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := ts.Client().Get(ts.URL + "/fragment")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/fragment on %s backend: status %d", srv.store.Backend(), resp.StatusCode)
		}
		return readAll(t, resp)
	}
	want := build(store.Config{})
	for _, n := range []int{1, 4} {
		if got := build(store.Config{Backend: store.BackendSharded, Shards: n}); got != want {
			t.Fatalf("shards=%d: /fragment differs from the single backend (%d vs %d bytes)",
				n, len(got), len(want))
		}
	}
}

// TestShardedUpdateStress is the sharded twin of TestUpdateEpochConsistency
// plus write contention: concurrent readers must always see a consistent
// epoch while POST /update swaps a triple back and forth, with every shard
// clone, the shared dictionary overlay, and the global component analysis
// racing under -race in scripts/check.sh.
func TestShardedUpdateStress(t *testing.T) {
	srv, ts := newUpdateTestServer(t, Config{
		Graph:   rdfgraph.FromTriples([]rdf.Triple{exTriple("a", "b"), exTriple("c", "d")}),
		Backend: store.BackendSharded,
		Shards:  3,
	})
	if srv.store.Backend() != store.BackendSharded || srv.store.NumShards() != 3 {
		t.Fatalf("server store is (%s, %d), want (sharded, 3)", srv.store.Backend(), srv.store.NumShards())
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + nodeURL("a"))
				if err != nil {
					t.Error(err)
					return
				}
				body := readAll(t, resp)
				resp.Body.Close()
				// Each swap is two epochs (delete, then add), so an empty
				// neighborhood is a legitimate intermediate state; both
				// triples at once never is.
				if strings.Contains(body, lineAB) && strings.Contains(body, lineAE) {
					t.Errorf("torn sharded response at epoch %s:\n%q",
						resp.Header.Get("X-Epoch"), body)
					return
				}
			}
		}()
	}
	const swaps = 40
	for i := 0; i < swaps; i++ {
		var body, op string
		if i%2 == 0 {
			post(t, ts, "/update?op=delete", lineAB)
			body, op = lineAE, "/update"
		} else {
			post(t, ts, "/update?op=delete", lineAE)
			body, op = lineAB, "/update"
		}
		if resp, _ := post(t, ts, op, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	if epoch := srv.store.Current().Epoch(); epoch != 1+2*swaps {
		t.Fatalf("epoch = %d, want %d", epoch, 1+2*swaps)
	}
	// The untouched {c,d} component must have survived every carry sweep.
	resp, err := ts.Client().Get(ts.URL + nodeURL("c"))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if !strings.Contains(body, lineCD) {
		t.Fatalf("node c lost its component after sharded updates:\n%q", body)
	}
}
