package fragserver

import (
	"net/http/httptest"
	"strings"
	"testing"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapelint"
)

// brokenSchema has one unsatisfiable shape (min 3 ∧ max 1 on one path) —
// a hard lint error — plus one clean shape.
func brokenSchema(t *testing.T) *schema.Schema {
	t.Helper()
	p := paths.P(datagen.PropRating)
	return schema.MustNew(
		schema.Definition{
			Name: rdf.NewIRI(datagen.NS + "shape/Broken"),
			Shape: shape.AndOf(
				shape.Min(3, p, shape.TrueShape()),
				shape.Max(1, p, shape.TrueShape()),
			),
			Target: schema.TargetClass(datagen.ClassHotel),
		},
		schema.Definition{
			Name:   rdf.NewIRI(datagen.NS + "shape/Fine"),
			Shape:  shape.Min(1, paths.P(datagen.PropName), shape.TrueShape()),
			Target: schema.TargetClass(datagen.ClassHotel),
		},
	)
}

func TestNewRefusesHardErrorSchema(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 40, Seed: 3})
	_, err := New(Config{Graph: g, Schema: brokenSchema(t), Logger: quietLogger()})
	if err == nil {
		t.Fatal("New accepted a schema with lint errors")
	}
	if !strings.Contains(err.Error(), "lint error") || !strings.Contains(err.Error(), "AllowLintErrors") {
		t.Errorf("refusal should name the cause and the override, got: %v", err)
	}
	if !strings.Contains(err.Error(), "SL001") && !strings.Contains(err.Error(), "SL003") {
		t.Errorf("refusal should quote a finding with its SL-code, got: %v", err)
	}
}

func TestAllowLintErrorsOverridesRefusal(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 40, Seed: 3})
	srv, err := New(Config{
		Graph: g, Schema: brokenSchema(t), Logger: quietLogger(),
		AllowLintErrors: true,
	})
	if err != nil {
		t.Fatalf("New with AllowLintErrors: %v", err)
	}
	if len(shapelint.Errors(srv.Lint())) == 0 {
		t.Error("Lint() should still expose the error findings")
	}
}

func TestLintFindingsOnMetricsEndpoint(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 40, Seed: 3})
	srv, err := New(Config{
		Graph: g, Schema: brokenSchema(t), Logger: quietLogger(),
		AllowLintErrors: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/metrics")
	// The broken shape yields SL003+SL001 (errors); all three severity
	// series must be present, zeros included.
	wantLines := []string{
		`fragserver_schema_lint_findings{severity="error"} 2`,
		`fragserver_schema_lint_findings{severity="warning"} 0`,
		`fragserver_schema_lint_findings{severity="info"} 0`,
	}
	for _, w := range wantLines {
		if !strings.Contains(body, w) {
			t.Errorf("/metrics missing %q", w)
		}
	}
}

func TestCleanSchemaExportsZeroLintFindings(t *testing.T) {
	srv, ts := newTestServer(t)
	// The benchmark subset is folding-clean but deliberately contains
	// overlapping cardinality probes: S01 (≥1 name) is subsumed by S02
	// (≥2 name, same target), which the containment linter reports as
	// SL010. That warning is the only expected finding.
	for _, d := range srv.Lint() {
		if d.Code != shapelint.CodeRedundant {
			t.Errorf("unexpected finding beyond the known S01 redundancy: %v", d)
		}
	}
	if n := len(srv.Lint()); n != 1 {
		t.Errorf("benchmark subset should yield exactly the S01 SL010 finding, got %d: %v", n, srv.Lint())
	}
	_, body := get(t, ts, "/metrics")
	if !strings.Contains(body, `fragserver_schema_lint_findings{severity="error"} 0`) {
		t.Error("/metrics should export the zero error series for a folding-clean schema")
	}
	if !strings.Contains(body, `fragserver_schema_lint_findings{severity="warning"} 1`) {
		t.Error("/metrics should export the SL010 warning series")
	}
}
