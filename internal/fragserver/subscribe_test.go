package fragserver

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed Server-Sent Event; heartbeat comments surface as
// {event: "comment"} so tests can assert liveness.
type sseEvent struct {
	id, event, data string
}

// sseStream reads a /subscribe response in a goroutine, delivering parsed
// events on a channel (closed when the stream ends).
type sseStream struct {
	events <-chan sseEvent
	cancel context.CancelFunc
}

func openStream(t *testing.T, ts *httptest.Server, path, lastEventID string) *sseStream {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+path, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body := readAll(t, resp)
		resp.Body.Close()
		cancel()
		t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	ch := make(chan sseEvent, 64)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		var ev sseEvent
		for {
			raw, err := br.ReadString('\n')
			if err != nil {
				return
			}
			line := strings.TrimRight(raw, "\r\n")
			switch {
			case strings.HasPrefix(line, ":"):
				ch <- sseEvent{event: "comment", data: strings.TrimSpace(line[1:])}
			case line == "":
				if ev != (sseEvent{}) {
					ch <- ev
					ev = sseEvent{}
				}
			case strings.HasPrefix(line, "id: "):
				ev.id = line[len("id: "):]
			case strings.HasPrefix(line, "event: "):
				ev.event = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				ev.data = line[len("data: "):]
			}
		}
	}()
	st := &sseStream{events: ch, cancel: cancel}
	t.Cleanup(cancel)
	return st
}

// next returns the next non-heartbeat event.
func (st *sseStream) next(t *testing.T) (sseEvent, bool) {
	t.Helper()
	for {
		select {
		case ev, ok := <-st.events:
			if !ok {
				return sseEvent{}, false
			}
			if ev.event == "comment" {
				continue
			}
			return ev, true
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for an SSE event")
		}
	}
}

type ssePayload struct {
	Epoch   uint64   `json:"epoch"`
	Added   []string `json:"added"`
	Removed []string `json:"removed"`
}

func ssePayloadOf(t *testing.T, ev sseEvent) ssePayload {
	t.Helper()
	var p ssePayload
	if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
		t.Fatalf("event data %q: %v", ev.data, err)
	}
	return p
}

const lineCF = "<http://ex/c> <http://ex/p> <http://ex/f> ."

// TestSubscribeLifecycle is the end-to-end subscription path: snapshot on
// connect, one delta per effective update, disconnect, then resume via
// Last-Event-ID replaying exactly the missed epochs. Run with -race.
func TestSubscribeLifecycle(t *testing.T) {
	srv, ts := newUpdateTestServer(t, Config{})

	st := openStream(t, ts, "/subscribe?shape=S", "")
	ev, ok := st.next(t)
	if !ok || ev.event != "snapshot" || ev.id != "1" {
		t.Fatalf("first event: %+v ok=%v", ev, ok)
	}
	snap := ssePayloadOf(t, ev)
	if len(snap.Added) != 2 || len(snap.Removed) != 0 {
		t.Fatalf("snapshot payload: %+v", snap)
	}

	// An update touching one component streams exactly its delta.
	if resp, body := post(t, ts, "/update", lineAE); resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d\n%s", resp.StatusCode, body)
	}
	ev, _ = st.next(t)
	if ev.event != "delta" || ev.id != "2" {
		t.Fatalf("delta event: %+v", ev)
	}
	if p := ssePayloadOf(t, ev); len(p.Added) != 1 || p.Added[0] != lineAE || len(p.Removed) != 0 {
		t.Fatalf("delta payload: %+v", p)
	}

	// A no-op update streams nothing (the next event must be epoch 3's).
	post(t, ts, "/update", lineAE)

	// Disconnect, miss an epoch, resume from the last seen id.
	st.cancel()
	if resp, body := post(t, ts, "/update", lineCF); resp.StatusCode != http.StatusOK {
		t.Fatalf("offline update: %d\n%s", resp.StatusCode, body)
	}
	st2 := openStream(t, ts, "/subscribe?shape=S", "2")
	ev, _ = st2.next(t)
	if ev.event != "delta" || ev.id != "3" {
		t.Fatalf("resume replayed %+v, want the missed epoch-3 delta (no snapshot)", ev)
	}
	if p := ssePayloadOf(t, ev); len(p.Added) != 1 || p.Added[0] != lineCF {
		t.Fatalf("resumed delta payload: %+v", p)
	}
	// The resumed stream is live: a further update arrives as epoch 4.
	post(t, ts, "/update", "<http://ex/a> <http://ex/p> <http://ex/g> .")
	if ev, _ = st2.next(t); ev.event != "delta" || ev.id != "4" {
		t.Fatalf("post-resume delta: %+v", ev)
	}

	// The subscription series made it to /metrics.
	_, metrics := get(t, ts, "/metrics")
	if got := metricValue(t, metrics, "fragserver_subscriptions_total"); got < 2 {
		t.Errorf("subscriptions_total = %v, want >= 2", got)
	}
	if got := labeledMetricValue(t, metrics, "fragserver_live_events_total", `type="snapshot"`); got < 1 {
		t.Errorf("live snapshot events = %v, want >= 1", got)
	}
	if got := srv.live.Stats().Resumed; got != 1 {
		t.Errorf("resumed = %d, want 1", got)
	}
}

// TestSubscribeResumeBelowFloor: a Last-Event-ID older than the replay
// ring yields a fresh snapshot, not a partial replay.
func TestSubscribeResumeBelowFloor(t *testing.T) {
	_, ts := newUpdateTestServer(t, Config{SubscribeReplay: 1})
	st := openStream(t, ts, "/subscribe?shape=S", "")
	st.next(t) // snapshot materializes the fragment
	st.cancel()
	for _, o := range []string{"e", "f", "g"} { // epochs 2, 3, 4; ring keeps only 4
		post(t, ts, "/update", "<http://ex/a> <http://ex/p> <http://ex/"+o+"> .")
	}
	st2 := openStream(t, ts, "/subscribe?shape=S", "2")
	ev, _ := st2.next(t)
	if ev.event != "snapshot" || ev.id != "4" {
		t.Fatalf("below-floor resume: %+v, want a full epoch-4 snapshot", ev)
	}
	if p := ssePayloadOf(t, ev); len(p.Added) != 5 {
		t.Fatalf("snapshot has %d lines, want 5", len(p.Added))
	}
}

// TestSubscribeDrainTerminal: drain closes the stream with a terminal bye
// event naming the reason, and new subscriptions are refused with 503.
func TestSubscribeDrainTerminal(t *testing.T) {
	srv, ts := newUpdateTestServer(t, Config{})
	st := openStream(t, ts, "/subscribe?shape=S", "")
	if ev, _ := st.next(t); ev.event != "snapshot" {
		t.Fatalf("first event: %+v", ev)
	}
	srv.live.Drain()
	ev, ok := st.next(t)
	if !ok || ev.event != "bye" || !strings.Contains(ev.data, `"drain"`) {
		t.Fatalf("terminal event: %+v ok=%v", ev, ok)
	}
	if _, ok := st.next(t); ok {
		t.Fatal("stream still open after bye")
	}
	resp, body := get(t, ts, "/subscribe?shape=S")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("subscribe during drain: %d\n%s", resp.StatusCode, body)
	}
}

// TestSubscribeValidation covers the request-validation and limit paths.
func TestSubscribeValidation(t *testing.T) {
	_, ts := newUpdateTestServer(t, Config{MaxSubscribers: 1})
	for _, tc := range []struct {
		name, path, lei string
		want            int
	}{
		{"missing shape", "/subscribe", "", http.StatusBadRequest},
		{"unknown shape", "/subscribe?shape=nope", "", http.StatusNotFound},
	} {
		resp, body := get(t, ts, tc.path)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d, want %d\n%s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
	// Bad Last-Event-ID.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/subscribe?shape=S", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID: %d, want 400", resp.StatusCode)
	}
	// The subscriber bound: one stream holds the only slot, the next gets
	// 503 + Retry-After.
	st := openStream(t, ts, "/subscribe?shape=S", "")
	st.next(t)
	resp, _ = get(t, ts, "/subscribe?shape=S")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("over-limit subscribe: %d (Retry-After %q), want 503", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestSubscribeHeartbeat: an idle stream stays audibly alive.
func TestSubscribeHeartbeat(t *testing.T) {
	_, ts := newUpdateTestServer(t, Config{Heartbeat: 20 * time.Millisecond})
	st := openStream(t, ts, "/subscribe?shape=S", "")
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-st.events:
			if !ok {
				t.Fatal("stream closed while waiting for a heartbeat")
			}
			if ev.event == "comment" && ev.data == "hb" {
				return
			}
		case <-deadline:
			t.Fatal("no heartbeat within 5s at a 20ms interval")
		}
	}
}
