package fragserver

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// TestUpdateCarryStormParity pins the cache-carry race: handleUpdate used
// to read the base epoch with s.store.Current().Epoch() BEFORE calling
// Apply, outside the store's apply lock. Two racing updates could then
// both observe base epoch N; the one applying second would carry cache
// entries N→N+2 using only its own delta's Unaffected predicate, silently
// resurrecting entries the first delta had invalidated — and every honest
// carry afterwards propagates the resurrected entry to the newest epoch,
// so the stale neighborhood keeps being served. The fix keys the carry on
// ApplyResult.Prev, the predecessor epoch the store records under its own
// apply lock.
//
// Each attempt stages the exact scenario. The victim component {a,b} is
// freshly warmed in the cache; an in-flight reader stays pinned to that
// epoch for the whole burst (so the sweeper cannot hide the bug by
// evicting the base-epoch entries the buggy carries clone from). Then one
// small update extending the victim races a burst of large updates to
// independent noise components: the large bodies make the serialized
// applies slow, so the noise handlers read their base epoch before the
// victim update publishes but apply after it — the precise interleaving
// that makes the pre-Apply read stale. Afterwards the served neighborhood
// of the victim must contain every triple ever added to it; with the bug
// a resurrected entry is missing the newest one. Run with -race.
func TestUpdateCarryStormParity(t *testing.T) {
	const noise, attempts, noiseTriples = 6, 12, 200
	seed := []rdf.Triple{exTriple("a", "b")}
	for w := 0; w < noise; w++ {
		seed = append(seed, exTriple(fmt.Sprintf("n%d-a", w), fmt.Sprintf("n%d-b", w)))
	}
	srv, ts := newUpdateTestServer(t, Config{Graph: rdfgraph.FromTriples(seed)})

	noiseBody := func(w, attempt int) string {
		var sb strings.Builder
		for i := 0; i < noiseTriples; i++ {
			fmt.Fprintf(&sb, "<http://ex/n%d-a%d-%d> <http://ex/p> <http://ex/n%d-b%d-%d> .\n",
				w, attempt, i, w, attempt, i)
		}
		return sb.String()
	}

	for attempt := 0; attempt < attempts; attempt++ {
		// Warm the victim's neighborhood at the current epoch, so the
		// racing carries have an entry to (mis)handle.
		if resp, _ := get(t, ts, nodeURL("a")); resp.StatusCode != http.StatusOK {
			t.Fatalf("warming read failed at attempt %d", attempt)
		}
		// An in-flight reader keeps the pre-burst epoch pinned for the
		// whole burst, exactly like a long read racing the updates.
		base := srv.store.Current().Epoch()
		srv.pins.pin(base)

		start := make(chan struct{})
		var wg sync.WaitGroup
		post1 := func(body string) {
			defer wg.Done()
			<-start
			resp, out := post(t, ts, "/update", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("storm update: %d\n%s", resp.StatusCode, out)
			}
		}
		wg.Add(1 + noise)
		go post1(fmt.Sprintf("<http://ex/a> <http://ex/p> <http://ex/v%d> .", attempt))
		for w := 0; w < noise; w++ {
			go post1(noiseBody(w, attempt))
		}
		close(start)
		wg.Wait()
		srv.pins.unpin(base)

		// Every triple the victim has ever gained must be served; a stale
		// resurrected entry is missing the newest.
		_, body := get(t, ts, nodeURL("a"))
		if !strings.Contains(body, lineAB) {
			t.Fatalf("attempt %d: victim lost its seed triple:\n%s", attempt, body)
		}
		for i := 0; i <= attempt; i++ {
			want := fmt.Sprintf("<http://ex/a> <http://ex/p> <http://ex/v%d> .", i)
			if !strings.Contains(body, want) {
				t.Fatalf("attempt %d: served neighborhood is missing %s — a stale cache entry was carried past the update that invalidated it:\n%s",
					attempt, want, body)
			}
		}
	}

	wantEpoch := uint64(1 + attempts*(1+noise))
	if got := srv.store.Current().Epoch(); got != wantEpoch {
		t.Fatalf("final epoch = %d, want %d", got, wantEpoch)
	}
}
