package fragserver

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"shaclfrag/internal/obs"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/turtle"
)

// updateResponse is the JSON body of a successful POST /update.
type updateResponse struct {
	// Epoch is the epoch current after the update: a fresh one when the
	// delta changed the graph, the incumbent when it was a no-op.
	Epoch uint64 `json:"epoch"`
	// Changed reports whether a new epoch was published.
	Changed bool `json:"changed"`
	// Added and Deleted count effective triple operations (duplicates and
	// absent deletions are no-ops and excluded).
	Added   int `json:"added"`
	Deleted int `json:"deleted"`
	// Carried is how many neighborhood-cache entries were cloned into the
	// new epoch because the delta provably did not affect their node.
	Carried int `json:"carried"`
	// Triples is the graph size after the update.
	Triples int `json:"triples"`
}

// handleUpdate serves POST /update: the body is a Turtle or N-Triples
// document; op=add (the default) adds its triples, op=delete removes them.
// The delta is applied atomically as one new store epoch — in-flight
// readers keep their pinned snapshots, later requests see the new one.
// Updates during graceful drain are rejected with 503 immediately (the
// caller should retry against a serving replica), and bodies beyond
// Config.MaxUpdateBytes get 413.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.updRejected.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining: updates are not accepted during shutdown", http.StatusServiceUnavailable)
		return
	}
	var del bool
	switch op := r.URL.Query().Get("op"); op {
	case "", "add":
	case "delete":
		del = true
	default:
		s.metrics.updRejected.Inc()
		http.Error(w, "op="+op+": want add or delete", http.StatusBadRequest)
		return
	}

	tr := obs.FromContext(r.Context())
	_, stopParse := tr.StartSpan("parse")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxUpdate))
	if err != nil {
		stopParse()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.updRejected.Inc()
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		s.metrics.updRejected.Inc()
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	triples, err := turtle.ParseTriples(string(body))
	stopParse()
	if err != nil {
		s.metrics.updRejected.Inc()
		http.Error(w, "parsing delta: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(triples) == 0 {
		s.metrics.updRejected.Inc()
		http.Error(w, "empty delta: the body parsed to no triples", http.StatusBadRequest)
		return
	}

	delta := rdfgraph.Delta{Add: triples}
	if del {
		delta = rdfgraph.Delta{Del: triples}
	}
	applySpan, stopApply := tr.StartSpan("apply")
	res := s.store.Apply(delta)
	carried := 0
	if res.Changed && s.cache != nil {
		// Keep the cache warm: entries whose node the delta provably did
		// not affect are valid verbatim in the new epoch. The carry MUST
		// be keyed on res.Prev — the epoch the store actually applied the
		// delta against, read under its lock — not on an epoch sampled
		// before Apply: under racing updates the pre-Apply read can be two
		// or more epochs stale, and carrying across the unobserved
		// intermediate delta with only this delta's Unaffected predicate
		// would silently preserve entries the other delta invalidated.
		carried = s.cache.Carry(res.Prev, res.Snapshot.Epoch(), res.Unaffected)
	}
	applySpan.SetAttrInt("added", int64(res.Added))
	applySpan.SetAttrInt("deleted", int64(res.Deleted))
	applySpan.SetAttrInt("carried", int64(carried))
	stopApply()

	if res.Changed {
		// Re-plan against the new epoch's cardinalities: the strategy
		// choices and the memo-budget veto track the data they price.
		replanSpan, stopReplan := tr.StartSpan("replan")
		s.replan(res.Snapshot, replanSpan)
		stopReplan()
		// Advance incremental fragment maintenance and fan deltas out to
		// /subscribe streams. Runs after replan so re-extraction follows
		// the new epoch's compiled plans, and synchronously in the update
		// path so heavy subscription load backpressures writers instead
		// of accumulating an unbounded notification backlog.
		notifySpan, stopNotify := tr.StartSpan("notify")
		ls := s.live.Notify(res, notifySpan)
		stopNotify()
		s.metrics.updApplied.Inc()
		s.metrics.updAdded.Add(uint64(res.Added))
		s.metrics.updDeleted.Add(uint64(res.Deleted))
		s.log.Info("update applied",
			"epoch", res.Snapshot.Epoch(), "added", res.Added, "deleted", res.Deleted,
			"carried", carried, "triples", res.Snapshot.Reader().Len(),
			"live_affected", ls.Affected, "live_delta", ls.Added+ls.Removed)
	} else {
		s.metrics.updNoop.Inc()
	}
	// Reclaim entries of epochs no in-flight request pins anymore. With
	// readers in flight this is a no-op; the floor advances as they drain.
	s.evictStale()

	w.Header().Set("X-Epoch", strconv.FormatUint(res.Snapshot.Epoch(), 10))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(updateResponse{ //nolint:errcheck — nothing to do about a failed write
		Epoch:   res.Snapshot.Epoch(),
		Changed: res.Changed,
		Added:   res.Added,
		Deleted: res.Deleted,
		Carried: carried,
		Triples: res.Snapshot.Reader().Len(),
	})
}
