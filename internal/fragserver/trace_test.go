package fragserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/obs"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/store"
)

// tracedConfig is newTestServer's graph and schema with tracing knobs and
// the sharded backend, so sampled extractions grow per-shard spans.
func tracedConfig(sample int) Config {
	return Config{
		Graph:       datagen.Tyrol(datagen.TyrolConfig{Individuals: 120, Seed: 9}),
		Schema:      schema.MustNew(datagen.BenchmarkShapes()[:8]...),
		Backend:     store.BackendSharded,
		Shards:      3,
		Workers:     4,
		Logger:      quietLogger(),
		TraceSample: sample,
	}
}

func spanByName(sp *obs.Span, name string) *obs.Span {
	for _, c := range sp.Children() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// TestTraceHeadSampling pins the 1-in-N head sampler: with N=2, requests
// alternate between traced (traceparent response header, trace kept) and
// untraced (no header, drop counted).
func TestTraceHeadSampling(t *testing.T) {
	srv, ts := newUpdateTestServer(t, tracedConfig(2))
	var traced, untraced int
	for i := 0; i < 4; i++ {
		resp, _ := get(t, ts, "/fragment")
		if resp.Header.Get("traceparent") != "" {
			traced++
		} else {
			untraced++
		}
	}
	if traced != 2 || untraced != 2 {
		t.Errorf("1-in-2 sampling over 4 requests: %d traced / %d untraced, want 2/2", traced, untraced)
	}
	st := srv.Traces().Stats()
	if st.Sampled != 2 || st.Dropped != 2 || st.Kept != 2 {
		t.Errorf("registry stats after 4 requests: %+v", st)
	}
}

// TestTraceparentIngestion checks the W3C propagation contract with head
// sampling off: a sampled upstream traceparent forces a trace that keeps
// the upstream trace ID, an unsampled one leaves the request untraced.
func TestTraceparentIngestion(t *testing.T) {
	srv, ts := newUpdateTestServer(t, tracedConfig(0))
	const upstream = "4bf92f3577b34da6a3ce929d0e0e4736"

	req, _ := http.NewRequest("GET", ts.URL+"/fragment", nil)
	req.Header.Set("traceparent", "00-"+upstream+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cont := resp.Header.Get("traceparent")
	if !strings.Contains(cont, upstream) {
		t.Errorf("continuation traceparent %q lost the upstream trace ID", cont)
	}
	if _, ok := srv.Traces().Get(upstream); !ok {
		t.Error("sampled upstream traceparent did not force a kept trace")
	}

	req, _ = http.NewRequest("GET", ts.URL+"/fragment", nil)
	req.Header.Set("traceparent", "00-"+upstream+"-00f067aa0ba902b7-00")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h := resp.Header.Get("traceparent"); h != "" {
		t.Errorf("unsampled upstream flag still produced traceparent %q", h)
	}
	if st := srv.Traces().Stats(); st.Sampled != 1 {
		t.Errorf("unsampled upstream request was traced: %+v", st)
	}
}

// TestDebugTracesEndToEnd is the tracing acceptance path: a sampled
// /fragment over the sharded backend must surface on /debug/traces with
// per-shard gather spans, the exec breakdown, and timings coherent with
// the route latency histogram.
func TestDebugTracesEndToEnd(t *testing.T) {
	srv, ts := newUpdateTestServer(t, tracedConfig(1))
	resp, _ := get(t, ts, "/fragment")
	traceID := strings.Split(resp.Header.Get("traceparent"), "-")[1]

	// The listing shows the trace, newest first, with its span count.
	_, listing := get(t, ts, "/debug/traces")
	var list struct {
		Traces []obs.TraceSummary `json:"traces"`
		Stats  obs.TraceStats     `json:"stats"`
	}
	if err := json.Unmarshal([]byte(listing), &list); err != nil {
		t.Fatalf("/debug/traces listing: %v\n%s", err, listing)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != traceID || list.Traces[0].Name != "GET /fragment" {
		t.Fatalf("listing = %+v, want one GET /fragment trace %s", list.Traces, traceID)
	}
	if list.Traces[0].Spans < 5 {
		t.Errorf("sampled extraction grew only %d spans", list.Traces[0].Spans)
	}

	// Fetching by ID returns OTLP-shaped JSON naming the shard spans.
	fresp, otlp := get(t, ts, "/debug/traces/"+traceID)
	if fresp.StatusCode != 200 {
		t.Fatalf("GET /debug/traces/%s: %d", traceID, fresp.StatusCode)
	}
	for _, want := range []string{
		`"resourceSpans"`, `"service.name"`, `"GET /fragment"`, `"extract"`,
		`"shard[0]"`, `"shard[1]"`, `"shard[2]"`, `"scatter"`, `"gather"`,
		`"http.route"`,
	} {
		if !strings.Contains(otlp, want) {
			t.Errorf("OTLP trace missing %s", want)
		}
	}

	// The span tree and the route histogram time the same request: the
	// root span nests inside the middleware's histogram observation, and
	// the extract span (with its shard children) nests inside the root.
	st, ok := srv.Traces().Get(traceID)
	if !ok {
		t.Fatal("trace vanished from the registry")
	}
	root := st.Root()
	extract := spanByName(root, "extract")
	if extract == nil {
		t.Fatalf("no extract span under root")
	}
	var shardSum time.Duration
	for i := 0; i < 3; i++ {
		sh := spanByName(extract, fmt.Sprintf("shard[%d]", i))
		if sh == nil {
			t.Fatalf("no shard[%d] span under extract", i)
		}
		shardSum += sh.Duration()
	}
	if shardSum <= 0 {
		t.Error("shard spans accumulated no time")
	}
	// Accumulated shard work is bounded by extract wall time × workers.
	if max := extract.Duration() * 4; shardSum > max {
		t.Errorf("shard spans sum to %v > extract %v × 4 workers", shardSum, extract.Duration())
	}
	if extract.Duration() > root.Duration() {
		t.Errorf("extract %v exceeds root %v", extract.Duration(), root.Duration())
	}
	_, metrics := get(t, ts, "/metrics")
	histSum := metricValue(t, metrics, `fragserver_request_duration_seconds_sum{route="/fragment"}`)
	rootSec := root.Duration().Seconds()
	// 1ms epsilon: the exposition rounds the rendered sum.
	if histSum < rootSec-0.001 {
		t.Errorf("histogram sum %.6fs < root span %.6fs: the histogram observation wraps the span", histSum, rootSec)
	}
	if histSum-rootSec > 0.1 {
		t.Errorf("histogram sum %.6fs and root span %.6fs diverge beyond middleware overhead", histSum, rootSec)
	}
}

// TestExemplarLinksMetricsToTrace checks the cross-reference: the trace ID
// a sampled request returns in its traceparent header must appear as the
// OpenMetrics exemplar on the route latency histogram.
func TestExemplarLinksMetricsToTrace(t *testing.T) {
	_, ts := newUpdateTestServer(t, tracedConfig(1))
	resp, _ := get(t, ts, "/fragment")
	traceID := strings.Split(resp.Header.Get("traceparent"), "-")[1]

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, mresp)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.HasSuffix(strings.TrimRight(body, "\n"), "# EOF") {
		t.Error("OpenMetrics exposition does not end with # EOF")
	}
	want := `# {trace_id="` + traceID + `"}`
	if !strings.Contains(body, want) {
		t.Errorf("no exemplar %s on the OpenMetrics exposition", want)
	}
	// The plain Prometheus rendering stays exemplar-free for scrapers that
	// do not negotiate OpenMetrics.
	if _, plain := get(t, ts, "/metrics"); strings.Contains(plain, "trace_id=") {
		t.Error("exemplar leaked into the text/plain rendering")
	}
}

// TestSlowRequestLog drives a request past a 1ns threshold and expects the
// structured warning carrying the trace ID and top spans.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	cfg := tracedConfig(1)
	cfg.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	cfg.SlowRequest = time.Nanosecond
	srv, ts := newUpdateTestServer(t, cfg)
	resp, _ := get(t, ts, "/fragment")
	traceID := strings.Split(resp.Header.Get("traceparent"), "-")[1]

	logs := buf.String()
	if !strings.Contains(logs, "slow request") {
		t.Fatalf("no slow-request warning in logs:\n%s", logs)
	}
	if !strings.Contains(logs, "trace_id="+traceID) {
		t.Errorf("slow-request log does not carry trace_id=%s:\n%s", traceID, logs)
	}
	if !strings.Contains(logs, "top_spans=") {
		t.Errorf("slow-request log has no top_spans field:\n%s", logs)
	}
	// A slow trace is notable: it survives eviction ahead of routine ones.
	if st := srv.Traces().Stats(); st.Kept != 1 {
		t.Errorf("slow trace not kept: %+v", st)
	}
}

// TestStatsTracesLine checks the human-readable /stats rollup reports the
// trace ring.
func TestStatsTracesLine(t *testing.T) {
	_, ts := newUpdateTestServer(t, tracedConfig(1))
	get(t, ts, "/fragment")
	_, body := get(t, ts, "/stats")
	if !strings.Contains(body, "traces:") {
		t.Errorf("/stats has no traces line:\n%s", body)
	}
	if !strings.Contains(body, "sampled") {
		t.Errorf("/stats traces line lacks sampling stats:\n%s", body)
	}
}

// TestUpdateTraceSpans checks the write path's span tree: a sampled
// POST /update shows parse, apply (with effective-delta attributes), and
// the replan/reclass recompute.
func TestUpdateTraceSpans(t *testing.T) {
	srv, ts := newUpdateTestServer(t, Config{TraceSample: 1, Logger: quietLogger()})
	resp, body := post(t, ts, "/update", lineAE)
	if resp.StatusCode != 200 {
		t.Fatalf("POST /update: %d\n%s", resp.StatusCode, body)
	}
	traceID := strings.Split(resp.Header.Get("traceparent"), "-")[1]
	st, ok := srv.Traces().Get(traceID)
	if !ok {
		t.Fatal("update trace not kept")
	}
	root := st.Root()
	if root.Name() != "POST /update" {
		t.Fatalf("root span %q", root.Name())
	}
	apply := spanByName(root, "apply")
	if spanByName(root, "parse") == nil || apply == nil {
		t.Fatalf("update trace lacks parse/apply spans; have %v", names(root))
	}
	var added int64
	for _, a := range apply.Attrs() {
		if a.Key == "added" {
			added = a.Int
		}
	}
	if added != 1 {
		t.Errorf("apply span added attr = %d, want 1", added)
	}
	replan := spanByName(root, "replan")
	if replan == nil {
		t.Fatalf("effective update has no replan span; have %v", names(root))
	}
	if spanByName(replan, "reclass") == nil {
		t.Error("replan span has no reclass child")
	}
}

func names(sp *obs.Span) []string {
	var out []string
	for _, c := range sp.Children() {
		out = append(out, c.Name())
	}
	return out
}

// TestTraceRingOnDebugEndpointEviction checks the /debug/traces ring is
// bounded by TraceBuffer and reports evictions on /stats and /metrics.
func TestTraceRingBounded(t *testing.T) {
	cfg := tracedConfig(1)
	cfg.TraceBuffer = 2
	srv, ts := newUpdateTestServer(t, cfg)
	for i := 0; i < 5; i++ {
		get(t, ts, "/fragment")
	}
	st := srv.Traces().Stats()
	if st.Kept != 2 || st.Cap != 2 {
		t.Errorf("ring holds %d/%d, want 2/2", st.Kept, st.Cap)
	}
	if st.Evicted != 3 || st.Sampled != 5 {
		t.Errorf("evicted %d sampled %d, want 3/5", st.Evicted, st.Sampled)
	}
	_, body := get(t, ts, "/metrics")
	if v := metricValue(t, body, "fragserver_traces_evicted_total"); v != 3 {
		t.Errorf("fragserver_traces_evicted_total = %v, want 3", v)
	}
}
