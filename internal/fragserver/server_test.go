package fragserver

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/turtle"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer builds a server over a small synthetic graph plus its own
// serial ground truth for parity checks.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 120, Seed: 9})
	h := schema.MustNew(datagen.BenchmarkShapes()[:8]...)
	srv, err := New(Config{Graph: g, Schema: h, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHandleValidate(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts, "/validate")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /validate: %d", resp.StatusCode)
	}
	for _, want := range []string{"conforms:", "focus nodes:", "violations:"} {
		if !strings.Contains(body, want) {
			t.Errorf("validate output missing %q:\n%s", want, body)
		}
	}
	_, full := get(t, ts, "/validate?full=1")
	if len(full) <= len(body) {
		t.Error("?full=1 should append per-result lines")
	}
}

// TestHandleFragmentParity checks the HTTP fragment byte-for-byte against
// serial in-process extraction — the subsystem must not change Frag(G, H).
func TestHandleFragmentParity(t *testing.T) {
	srv, ts := newTestServer(t)
	want := turtle.FormatNTriples(core.NewExtractor(srv.graphNow(), srv.h).FragmentSchema(srv.h))

	resp, body := get(t, ts, "/fragment")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fragment: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/n-triples" {
		t.Errorf("Content-Type = %q", ct)
	}
	if body != want {
		t.Errorf("served fragment differs from serial extraction (%d vs %d bytes)", len(body), len(want))
	}
	if resp.Header.Get("X-Triple-Count") == "" {
		t.Error("missing X-Triple-Count header")
	}

	// Per-shape fragment: suffix resolution plus parity against one request.
	wantOne := turtle.FormatNTriples(core.NewExtractor(srv.graphNow(), srv.h).Fragment(srv.requests[:1]))
	resp, body = get(t, ts, "/fragment?shape=S01")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fragment?shape=S01: %d", resp.StatusCode)
	}
	if body != wantOne {
		t.Error("per-shape fragment differs from serial extraction of that request")
	}

	if resp, _ := get(t, ts, "/fragment?shape=NoSuchShape"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown shape: got %d, want 404", resp.StatusCode)
	}
}

// TestDefIndexAmbiguity uses a schema whose definition names share a suffix:
// the short form must be rejected as ambiguous while exact names still work.
func TestDefIndexAmbiguity(t *testing.T) {
	defs := datagen.BenchmarkShapes()[:2]
	defs[0].Name = rdf.NewIRI("http://example.org/a/EventShape")
	defs[1].Name = rdf.NewIRI("http://example.org/b/EventShape")
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 20, Seed: 1})
	srv, err := New(Config{Graph: g, Schema: schema.MustNew(defs...), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.defIndex("EventShape"); ok {
		t.Error("ambiguous suffix must not resolve")
	}
	if i, ok := srv.defIndex("http://example.org/b/EventShape"); !ok || i != 1 {
		t.Errorf("exact name resolution: got (%d, %v)", i, ok)
	}
	if i, ok := srv.defIndex("b/EventShape"); !ok || i != 1 {
		t.Errorf("unique suffix resolution: got (%d, %v)", i, ok)
	}
}

func TestHandleNode(t *testing.T) {
	srv, ts := newTestServer(t)

	// Pick a focus node the fragment actually contains.
	frag := core.NewExtractor(srv.graphNow(), srv.h).Fragment(srv.requests[:1])
	if len(frag) == 0 {
		t.Fatal("test fragment is empty; pick a bigger graph")
	}
	focus := frag[0].S.String() // e.g. <http://…>

	resp, body := get(t, ts, "/node?iri="+url.QueryEscape(focus)+"&shape=S01")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /node: %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/n-triples" {
		t.Errorf("Content-Type = %q", ct)
	}

	// A well-formed IRI no triple mentions: empty fragment, not an error.
	resp, body = get(t, ts, "/node?iri="+url.QueryEscape("<http://example.org/ghost>"))
	if resp.StatusCode != http.StatusOK || body != "" {
		t.Errorf("absent node: got %d with %d bytes, want empty 200", resp.StatusCode, len(body))
	}
	if c := resp.Header.Get("X-Triple-Count"); c != "0" {
		t.Errorf("absent node X-Triple-Count = %q, want 0", c)
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/node", http.StatusBadRequest},                                                // missing iri
		{"/node?iri=" + url.QueryEscape("<http://unterminated"), http.StatusBadRequest}, // malformed
		{"/node?iri=" + url.QueryEscape("no-scheme-here"), http.StatusBadRequest},       // not an IRI
		{"/node?iri=" + url.QueryEscape(focus) + "&shape=Nope", http.StatusNotFound},
	} {
		if resp, _ := get(t, ts, tc.path); resp.StatusCode != tc.want {
			t.Errorf("GET %s: got %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestHandleTPFBadInput is the table-driven malformed-parameter sweep: every
// row must yield HTTP 400 with a diagnostic body — never a panic, never 500.
func TestHandleTPFBadInput(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name  string
		query string
	}{
		{"unterminated IRI", "p=" + url.QueryEscape("<http://example.org/open")},
		{"unterminated literal", "o=" + url.QueryEscape(`"no closing quote`)},
		{"literal predicate", "p=" + url.QueryEscape(`"not an IRI"`)},
		{"bare IRI with space", "s=" + url.QueryEscape("http://example.org/a b")},
		{"bare word without scheme", "o=chamois"},
		{"empty language tag", "o=" + url.QueryEscape(`"x"@`)},
		{"bad datatype", "o=" + url.QueryEscape(`"x"^^notaniri`)},
		{"nameless variable", "s=" + url.QueryEscape("?")},
		{"triple injection", "o=" + url.QueryEscape(`<http://a#x> . <http://a#s> <http://a#p> <http://a#o>`)},
		{"object list smuggling", "o=" + url.QueryEscape(`<http://a#x>, <http://a#y>`)},
		{"angle brackets in bare IRI", "s=" + url.QueryEscape("http://exa<mple.org/x")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts, "/tpf?"+tc.query)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("got %d (%q), want 400", resp.StatusCode, strings.TrimSpace(body))
			}
			if body == "" {
				t.Error("400 response should carry a diagnostic message")
			}
		})
	}
}

func TestHandleTPF(t *testing.T) {
	srv, ts := newTestServer(t)

	// Unconstrained pattern: every triple of the graph.
	resp, body := get(t, ts, "/tpf")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /tpf: %d", resp.StatusCode)
	}
	if n := strings.Count(body, "\n"); n != srv.graphNow().Len() {
		t.Errorf("unconstrained /tpf returned %d triples, graph has %d", n, srv.graphNow().Len())
	}
	if resp.Header.Get("X-Request-Shape") == "" {
		t.Error("missing X-Request-Shape header (Section 7: TPF requests are shapes)")
	}

	// Predicate-constrained, accepting both bracketed and bare IRI spellings.
	for _, spelling := range []string{"<" + datagen.PropName + ">", datagen.PropName} {
		resp, body := get(t, ts, "/tpf?p="+url.QueryEscape(spelling))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /tpf?p=%s: %d", spelling, resp.StatusCode)
		}
		if !strings.Contains(body, datagen.PropName) {
			t.Errorf("p=%s: no matching triples served", spelling)
		}
		for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
			if !strings.Contains(line, "<"+datagen.PropName+">") {
				t.Errorf("p=%s: leaked non-matching triple %s", spelling, line)
				break
			}
		}
	}

	// Repeated variable name imposes equality: s and o must coincide, and the
	// tourism graph has no such triples — a valid, empty fragment.
	resp, body = get(t, ts, "/tpf?s="+url.QueryEscape("?x")+"&o="+url.QueryEscape("?x"))
	if resp.StatusCode != http.StatusOK || body != "" {
		t.Errorf("self-loop pattern: got %d with %d bytes, want empty 200", resp.StatusCode, len(body))
	}
}

func TestLoadShedding(t *testing.T) {
	srv, ts := newTestServer(t)
	// Saturate the in-flight limiter, then observe immediate shedding.
	for i := 0; i < cap(srv.sem); i++ {
		srv.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(srv.sem); i++ {
			<-srv.sem
		}
	}()
	resp, _ := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server: got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 should carry Retry-After")
	}
}

func TestRequestTimeout(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 400, Seed: 9})
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	srv, err := New(Config{
		Graph: g, Schema: h, Logger: quietLogger(),
		RequestTimeout: time.Nanosecond, // every budget is already spent
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := get(t, ts, "/fragment")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired budget: got %d, want 503", resp.StatusCode)
	}
}

func TestNewValidation(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 10, Seed: 1})
	h := schema.MustNew(datagen.BenchmarkShapes()[:2]...)
	if _, err := New(Config{Schema: h}); err == nil {
		t.Error("New without a graph must fail")
	}
	if _, err := New(Config{Graph: g}); err == nil {
		t.Error("New without a schema must fail")
	}
	srv, err := New(Config{Graph: g, Schema: h, Logger: quietLogger(), CacheTriples: -1})
	if err != nil {
		t.Fatal(err)
	}
	if srv.cache != nil {
		t.Error("negative CacheTriples must disable the cache")
	}
	if !g.Frozen() {
		t.Error("New must freeze the graph")
	}
}

// TestServeGracefulShutdown drives the managed listener end to end: serve,
// answer one request, cancel the context, and expect a clean drain.
func TestServeGracefulShutdown(t *testing.T) {
	srv, _ := newTestServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln, 2*time.Second) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over managed listener: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	get(t, ts, "/fragment") // populate the cache first
	resp, body := get(t, ts, "/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %d", resp.StatusCode)
	}
	for _, want := range []string{"triples:", "shapes:", "cache:"} {
		if !strings.Contains(body, want) {
			t.Errorf("stats output missing %q:\n%s", want, body)
		}
	}
}
