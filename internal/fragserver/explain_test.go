package fragserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/turtle"
)

// newExplainServer builds a server over a tiny hand-written graph whose
// explanations are fully predictable: p1 conforms to WorkshopShape (author
// bob, a student), p2 does not (author anne, a professor).
func newExplainServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	g, err := turtle.Parse(`
@prefix ex: <http://x/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:p1 rdf:type ex:Paper ; ex:author ex:bob .
ex:p2 rdf:type ex:Paper ; ex:author ex:anne .
ex:bob rdf:type ex:Student .
ex:anne rdf:type ex:Professor .
`)
	if err != nil {
		t.Fatal(err)
	}
	h := schema.MustNew(schema.Definition{
		Name: rdf.NewIRI("http://x/WorkshopShape"),
		Shape: shape.Min(1, paths.P("http://x/author"),
			shape.Min(1, paths.P(rdf.RDFType), shape.Value(rdf.NewIRI("http://x/Student")))),
		Target: schema.TargetClass(rdf.NewIRI("http://x/Paper")),
	})
	cfg.Graph, cfg.Schema, cfg.Logger = g, h, quietLogger()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getExplain(t *testing.T, ts *httptest.Server, query string) (*http.Response, explainResponse) {
	t.Helper()
	resp, body := get(t, ts, "/explain?"+query)
	var er explainResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal([]byte(body), &er); err != nil {
			t.Fatalf("bad /explain JSON: %v\n%s", err, body)
		}
	}
	return resp, er
}

func TestHandleExplain(t *testing.T) {
	_, ts := newExplainServer(t, Config{})
	resp, er := getExplain(t, ts, "iri="+url.QueryEscape("http://x/p1")+"&shape=WorkshopShape")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /explain: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	if len(er.Shapes) != 1 || er.Shapes[0].Conforms == nil || !*er.Shapes[0].Conforms {
		t.Fatalf("shape status = %+v, want conforming WorkshopShape", er.Shapes)
	}
	// B(p1, WorkshopShape) = {(p1 author bob), (bob type Student)}, each
	// justified by a minCount rule firing with a path step.
	if len(er.Triples) != 2 {
		t.Fatalf("explained %d triples, want 2: %+v", len(er.Triples), er.Triples)
	}
	for _, et := range er.Triples {
		if len(et.Justifications) == 0 {
			t.Fatalf("triple %s %s %s has no justifications", et.S, et.P, et.O)
		}
		j := et.Justifications[0]
		if j.Kind != "minCount" || j.Shape != "<http://x/WorkshopShape>" {
			t.Errorf("justification = %+v, want minCount under WorkshopShape", j)
		}
		if j.Step == nil || j.Step.Pred == "" {
			t.Errorf("path-traced justification missing its step: %+v", j)
		}
	}
	// The author triple's justification fires at p1.
	var authorJust *explainJustification
	for i := range er.Triples {
		if er.Triples[i].P == "<http://x/author>" {
			authorJust = &er.Triples[i].Justifications[0]
		}
	}
	if authorJust == nil || authorJust.Focus != "<http://x/p1>" {
		t.Errorf("author triple justification = %+v, want focus p1", authorJust)
	}

	// Non-conforming node: conforms=false and an empty neighborhood.
	_, er = getExplain(t, ts, "iri="+url.QueryEscape("http://x/p2"))
	if len(er.Shapes) != 1 || er.Shapes[0].Conforms == nil || *er.Shapes[0].Conforms {
		t.Fatalf("p2 should not conform: %+v", er.Shapes)
	}
	if len(er.Triples) != 0 {
		t.Errorf("non-conforming node explained %d triples, want 0", len(er.Triples))
	}

	// A term the graph has never seen: 200, no conforms claim, no triples.
	resp, er = getExplain(t, ts, "iri="+url.QueryEscape("<http://x/ghost>"))
	if resp.StatusCode != http.StatusOK || len(er.Triples) != 0 {
		t.Fatalf("ghost node: status %d, %d triples", resp.StatusCode, len(er.Triples))
	}
	if len(er.Shapes) != 1 || er.Shapes[0].Conforms != nil {
		t.Errorf("ghost node must omit conforms: %+v", er.Shapes)
	}

	// Error paths: missing iri, malformed iri, unknown shape.
	if resp, _ := get(t, ts, "/explain"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing iri: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/explain?iri="+url.QueryEscape("<oops")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed iri: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/explain?iri="+url.QueryEscape("http://x/p1")+"&shape=Nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown shape: %d, want 404", resp.StatusCode)
	}

	// The /explain volume counters moved.
	_, metrics := get(t, ts, "/metrics")
	if !strings.Contains(metrics, "fragserver_explain_triples_total 2") {
		t.Error("/metrics missing the explain triple counter")
	}
	if !strings.Contains(metrics, "fragserver_explain_justifications_total") {
		t.Error("/metrics missing the explain justification counter")
	}
	// /explain is a first-class route label.
	if !strings.Contains(metrics, `fragserver_requests_total{route="/explain"`) {
		t.Error("/metrics missing the /explain route series")
	}
}

func TestExplainDisabled(t *testing.T) {
	_, ts := newExplainServer(t, Config{DisableExplain: true})
	resp, body := get(t, ts, "/explain?iri="+url.QueryEscape("http://x/p1"))
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, "disabled") {
		t.Errorf("disabled /explain: status %d body %q", resp.StatusCode, body)
	}
	// The rest of the server is unaffected.
	if resp, _ := get(t, ts, "/fragment"); resp.StatusCode != http.StatusOK {
		t.Errorf("/fragment while explain disabled: %d", resp.StatusCode)
	}
}

// TestAttributionSampling: with 1-in-1 sampling every /node and /fragment
// extraction feeds the tally recorder, the sampled counter moves, the
// per-kind series appear, served bytes stay identical, and the
// neighborhood cache is bypassed (zero hits and misses).
func TestAttributionSampling(t *testing.T) {
	srv, ts := newExplainServer(t, Config{AttributionSample: 1})
	unsampledSrv, unsampledTS := newExplainServer(t, Config{})

	for _, path := range []string{
		"/node?iri=" + url.QueryEscape("http://x/p1") + "&shape=WorkshopShape",
		"/fragment",
	} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		_, want := get(t, unsampledTS, path)
		if body != want {
			t.Errorf("%s: sampled output differs from unsampled", path)
		}
	}

	_, metrics := get(t, ts, "/metrics")
	if !strings.Contains(metrics, "fragserver_attribution_sampled_total 2") {
		t.Error("sampled counter should count both extraction requests")
	}
	if !strings.Contains(metrics, `fragserver_attribution_justifications_by_kind_total{constraint="minCount"}`) {
		t.Error("per-kind justification series missing")
	}
	if !strings.Contains(metrics, "fragserver_attribution_justifications_total") {
		t.Error("total justification series missing")
	}
	if st := srv.cache.Stats(); st.Hits+st.Misses != 0 {
		t.Errorf("sampled extraction must bypass the cache: %+v", st)
	}
	_ = unsampledSrv

	// Without sampling the series are absent, not zero.
	_, metrics = get(t, unsampledTS, "/metrics")
	if strings.Contains(metrics, "fragserver_attribution_") {
		t.Error("attribution series must be absent when sampling is off")
	}
}
