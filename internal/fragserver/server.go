// Package fragserver is the shape-fragment serving subsystem: an HTTP
// service positioning shape fragments as a subgraph-retrieval interface
// between Triple Pattern Fragments and full SPARQL endpoints (Section 7,
// Figure 4 of the paper). A server loads one data graph and one schema at
// startup; the graph becomes epoch 1 of an rdfgraph.Store of immutable
// snapshots, and the server serves:
//
//	GET /validate                — validation report (?full=1 for all results)
//	GET /fragment                — Frag(G, H), the whole schema fragment
//	GET /fragment?shape=<name>   — the fragment of one definition (φ ∧ τ)
//	GET /node?iri=<t>[&shape=]   — the neighborhood B(v, G, φ) of one node
//	GET /explain?iri=<t>[&shape=]— that neighborhood with per-triple
//	                               justifications (JSON; see handleExplain)
//	GET /tpf?s=&p=&o=            — a triple pattern fragment
//	POST /update[?op=delete]     — apply a Turtle/N-Triples delta, publishing
//	                               a new epoch (see handleUpdate)
//	GET /healthz, GET /readyz    — process liveness; readiness (503 on drain)
//	GET /stats, GET /metrics     — human-readable stats; Prometheus text
//
// # Epochs
//
// Every data route pins the current snapshot for its whole lifetime and
// reports its epoch in an X-Epoch response header: a request never observes
// a half-applied update, and concurrent updates never block readers.
// Neighborhood cache entries are keyed by epoch; after an update the
// entries of nodes provably untouched by the delta (their weakly-connected
// component contains no delta endpoint) are carried to the new epoch, and
// entries of epochs no in-flight request pins anymore are evicted.
//
// Production behaviors: per-request timeouts propagated through
// context.Context into extraction, bounded in-flight concurrency (503 when
// saturated), structured access logs, incremental N-Triples streaming, a
// shared bounded LRU of per-(node, shape) neighborhoods, and parallel
// fragment extraction via core.FragmentParallel.
//
// # Observability
//
// Every request runs under an obs.Trace carried in the request context:
// handlers record the parse → target → extract → serialize stages (and
// core.FragmentParallel contributes its nnf/merge sub-stages through
// ParallelOptions.Tracer). Completed stages are surfaced three ways — as
// a Server-Timing response header (written when streaming begins, so the
// serialize stage itself appears only in logs and metrics), as *_ms
// fields on the structured access-log line, and as observations into the
// fragserver_stage_duration_seconds histogram. The full metric catalog
// (request counters and latency histograms by route, cache
// hits/misses/evictions/bytes, load-shedding, workload gauges) is served
// in Prometheus text format on /metrics and documented for operators in
// docs/OPERATIONS.md; Metrics exposes the underlying obs.Registry so
// cmd/fragserver can also publish it via expvar and mount it on an
// unthrottled debug listener.
//
// # Tracing
//
// On top of the flat stages, a head sampler (Config.TraceSample) elects
// requests for hierarchical span tracing: the middleware roots an
// obs.SpanTrace, handlers open children with Trace.StartSpan, and
// core.FragmentParallel grows per-shard gather spans and plan-exec
// breakdowns under ParallelOptions.Span. An upstream W3C traceparent
// request header with the sampled flag forces tracing and parents the
// local root; the continuation traceparent goes out on the response.
// Finished traces land in a bounded in-memory ring served as
// OTLP-compatible JSON on /debug/traces (error and slow traces are
// evicted last), requests slower than Config.SlowRequest additionally
// emit a structured warning with the trace ID and top spans, and the
// route latency histogram attaches the trace ID to its buckets as
// OpenMetrics exemplars — so a scrape, a log line, and the trace ring
// all cross-reference the same ID. Unsampled requests skip all of this:
// every span method is nil-safe and the hot path stays allocation-free.
//
// The per-server obs.Registry makes instrumentation test-friendly: two
// Servers in one process never share counters.
package fragserver

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shaclfrag/internal/contain"
	"shaclfrag/internal/core"
	"shaclfrag/internal/live"
	"shaclfrag/internal/obs"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapelint"
	"shaclfrag/internal/store"
	"shaclfrag/internal/tpf"
	"shaclfrag/internal/turtle"
)

// Config configures a Server. Schema plus either Graph or Store is
// required; everything else has serving-grade defaults.
type Config struct {
	Graph  *rdfgraph.Graph
	Schema *schema.Schema

	// Backend and Shards select the storage backend Graph is wrapped in
	// (store.BackendSingle by default, store.BackendSharded partitions by
	// subject ID and extraction switches to scatter-gather scheduling).
	// Ignored when Store is set.
	Backend string
	Shards  int

	// Store, when non-nil, serves this prebuilt store instead of wrapping
	// Graph — the path for streamed loads too large to materialize as one
	// Graph first (store.Loader). The store's dictionary must already hold
	// every schema constant (run store.WarmDictionary against the loader's
	// Reader before Finish); with Graph the server warms it itself.
	Store store.Store

	// Workers is the fan-out of parallel fragment extraction; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// MaxInflight bounds concurrently served requests; excess requests get
	// 503 with Retry-After. <= 0 means 64.
	MaxInflight int
	// RequestTimeout is the per-request compute budget; <= 0 means 30s.
	RequestTimeout time.Duration
	// CacheTriples is the neighborhood LRU budget in triples; 0 means one
	// million, negative disables the cache.
	CacheTriples int
	// Logger receives structured access logs; nil means slog.Default().
	Logger *slog.Logger
	// AllowLintErrors lets New proceed even when shapelint finds
	// error-severity defects in the schema (unsatisfiable shapes, closed
	// shapes with required properties outside the allowed set, …). By
	// default such schemas are refused at load time: every fragment they
	// would serve is provably empty, so starting up would only hide the
	// bug behind per-request work. Warnings never block startup; they are
	// logged and exported on /metrics either way.
	AllowLintErrors bool
	// DisableExplain turns the /explain route off (it answers 404). The
	// unattributed routes are unaffected either way: with /explain enabled
	// but unused, extraction runs the exact unattributed hot path.
	DisableExplain bool
	// AttributionSample, when N > 0, runs every Nth /fragment and /node
	// extraction with a counting attribution recorder, populating the
	// fragserver_attribution_* series with which constraint kinds account
	// for served triples. Sampled extractions bypass the neighborhood
	// cache, so small N trades cache hit rate for telemetry; 0 disables
	// sampling entirely (the default — zero overhead).
	AttributionSample int
	// MaxUpdateBytes bounds the request body accepted by POST /update;
	// <= 0 means 8 MiB.
	MaxUpdateBytes int64

	// MaxSubscribers bounds concurrently open GET /subscribe streams
	// across all shapes; <= 0 means 4096. Subscriptions are long-lived and
	// exempt from MaxInflight, so they need their own bound.
	MaxSubscribers int
	// SubscribeQueue is the per-subscriber event buffer; <= 0 means 32. A
	// subscriber whose buffer is full when a fragment delta fans out is
	// evicted (stream closes with a bye event) instead of stalling the
	// update path.
	SubscribeQueue int
	// SubscribeReplay bounds the per-shape delta ring used to resume
	// subscribers from a Last-Event-ID epoch; <= 0 means 64. A resumer
	// further behind than the ring gets a full snapshot event instead.
	SubscribeReplay int
	// Heartbeat is the idle-stream comment interval on /subscribe keeping
	// intermediaries from timing the connection out; <= 0 means 15s.
	Heartbeat time.Duration

	// TraceSample enables head-based hierarchical tracing: 1 in N
	// requests records a span tree served on /debug/traces (1 traces
	// every request, 0 disables head sampling). Independently of N, a
	// request arriving with a sampled W3C traceparent header is always
	// traced — an upstream that decided to trace keeps its trace intact
	// through this hop. Unsampled requests pay one atomic increment.
	TraceSample int
	// TraceBuffer is the trace ring capacity; <= 0 means 128. Error and
	// slow traces are evicted last (see obs.TraceRegistry).
	TraceBuffer int
	// SlowRequest, when > 0, is the latency threshold beyond which a
	// request gets a structured slow-request log line (with its trace ID
	// and top spans when sampled), and its trace — if sampled — is kept
	// as notable in the ring.
	SlowRequest time.Duration
}

// Server serves shape fragments over HTTP. Create with New; the handler
// tree is available via Handler for mounting, or use Serve for a managed
// listener with graceful shutdown.
type Server struct {
	store   store.Store
	h       *schema.Schema
	lint    []shapelint.Diagnostic
	workers int
	timeout time.Duration
	log     *slog.Logger
	cache   *core.NeighborhoodCache
	sem     chan struct{}
	pool    chan *core.Extractor

	// pins refcounts the epochs in-flight requests are running against;
	// staleFloor is the highest epoch the cache has been swept below, so
	// releases only rescan the cache when the floor actually advanced.
	pins       epochPins
	staleFloor atomic.Uint64
	maxUpdate  int64

	// requests holds one pointer-stable request shape φ ∧ τ per definition
	// (in definition order): both the /fragment work list and the stable
	// cache keys.
	requests []shape.Shape

	// splan is the cost-based strategy plan for the served schema, aligned
	// with requests. It is recomputed against fresh cardinality stats after
	// every effective update (replan) and swapped atomically; /fragment
	// reads whichever plan is current. SPARQL-routed definitions fall back
	// to the AST walker here — the server has no per-definition SPARQL
	// execution path, and the estimate only picks SPARQL when an external
	// endpoint would run the query.
	splan atomic.Pointer[plan.SchemaPlan]
	// planSet caches splan's ProgramSet (nil entries for non-plan
	// strategies), swapped together with splan.
	planSet atomic.Pointer[plan.Set]

	// classShapes is the pointer-stable shape list containment classes are
	// computed over: the /fragment request shapes followed by the raw
	// definition shapes /node keys the cache by. classes is the current
	// equivalence-class table (rebuilt in replan, alongside the planner);
	// containUnknown accumulates the possibly-equivalent-but-unproven rep
	// pairs across rebuilds for the containment_unknown_total counter.
	classShapes    []shape.Shape
	classes        atomic.Pointer[contain.Classes]
	containUnknown atomic.Uint64

	// live maintains materialized fragments incrementally across epochs
	// and fans per-epoch deltas out to /subscribe streams (never nil after
	// New); hb is the stream heartbeat interval.
	live *live.Maintainer
	hb   time.Duration

	handler  http.Handler
	started  time.Time
	metrics  *serverMetrics
	draining atomic.Bool // set when graceful shutdown begins; read by /readyz

	explainOff  bool
	sampleN     int
	sampleCount atomic.Uint64 // requests seen by the attribution sampler

	// traces is the span-trace ring served on /debug/traces (never nil
	// after New — with sampling off it only counts drops); traceSample
	// and slowReq mirror Config.TraceSample / Config.SlowRequest, and
	// traceCount drives the 1-in-N head sampler.
	traces      *obs.TraceRegistry
	traceSample int
	slowReq     time.Duration
	traceCount  atomic.Uint64
}

// New builds a server over g and h. The graph's dictionary is warmed with
// every constant the schema can mention, then the graph becomes epoch 1 of
// an rdfgraph.Store: each request pins one immutable snapshot for its whole
// lifetime and shares it lock-free with every other reader, while POST
// /update publishes new epochs without blocking anyone. Schema constants
// stay resolvable across epochs because snapshot dictionaries extend the
// warmed base dictionary.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil && cfg.Store == nil {
		return nil, errors.New("fragserver: Config.Graph or Config.Store is required")
	}
	if cfg.Schema == nil {
		return nil, errors.New("fragserver: Config.Schema is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 64
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	var cache *core.NeighborhoodCache
	if cfg.CacheTriples >= 0 {
		cache = core.NewNeighborhoodCache(cfg.CacheTriples)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}

	// The full diagnostic stream: shapelint's folding analyses merged with
	// contain's subsumption analyses (SL010/SL011) — redundant definitions
	// surface at load time, where removing one is still cheap.
	lint := contain.LintMerged(cfg.Schema)
	if errs := shapelint.Errors(lint); len(errs) > 0 && !cfg.AllowLintErrors {
		return nil, fmt.Errorf("fragserver: schema has %d lint error(s) (set Config.AllowLintErrors to serve it anyway); first: %s",
			len(errs), errs[0])
	}
	for _, d := range lint {
		lvl := slog.LevelWarn
		if d.Severity < shapelint.Warning {
			lvl = slog.LevelInfo
		}
		logger.Log(context.Background(), lvl, "schema lint finding",
			"code", d.Code, "severity", d.Severity.String(),
			"shape", d.Shape.String(), "msg", d.Message)
	}

	maxUpdate := cfg.MaxUpdateBytes
	if maxUpdate <= 0 {
		maxUpdate = 8 << 20
	}

	st := cfg.Store
	if st == nil {
		store.WarmDictionary(cfg.Graph, cfg.Schema)
		var err error
		st, err = store.New(cfg.Graph, store.Config{Backend: cfg.Backend, Shards: cfg.Shards})
		if err != nil {
			return nil, fmt.Errorf("fragserver: %w", err)
		}
	}

	s := &Server{
		store:     st,
		h:         cfg.Schema,
		lint:      lint,
		workers:   workers,
		timeout:   timeout,
		log:       logger,
		cache:     cache,
		sem:       make(chan struct{}, maxInflight),
		pool:      make(chan *core.Extractor, maxInflight),
		requests:  core.SchemaRequests(cfg.Schema),
		started:   time.Now(),
		maxUpdate: maxUpdate,

		explainOff: cfg.DisableExplain,
		sampleN:    cfg.AttributionSample,

		traces:      obs.NewTraceRegistry(cfg.TraceBuffer),
		traceSample: cfg.TraceSample,
		slowReq:     cfg.SlowRequest,
	}
	s.pins.refs = make(map[uint64]int)
	s.staleFloor.Store(s.store.Current().Epoch())
	s.classShapes = append(append([]shape.Shape{}, s.requests...), defShapes(cfg.Schema)...)
	s.replan(s.store.Current(), nil)
	s.hb = cfg.Heartbeat
	if s.hb <= 0 {
		s.hb = 15 * time.Second
	}
	s.live = live.NewMaintainer(live.Config{
		Schema:   cfg.Schema,
		Requests: s.requests,
		Cache:    s.cache,
		Plans: func(def int) *plan.Program {
			if set := s.planSet.Load(); set != nil && def < len(set.Programs) {
				return set.Programs[def]
			}
			return nil
		},
		Replay:         cfg.SubscribeReplay,
		Queue:          cfg.SubscribeQueue,
		MaxSubscribers: cfg.MaxSubscribers,
	}, s.store.Current())
	s.metrics = newServerMetrics(s)
	// /subscribe streams are long-lived: they bypass the per-request
	// timeout and the in-flight limiter (the maintainer enforces its own
	// MaxSubscribers bound) but still run under withObs, so they are
	// logged, counted and traceable like every other route.
	inner := s.withLimit(s.withTimeout(s.routes()))
	outer := http.NewServeMux()
	outer.HandleFunc("GET /subscribe", s.handleSubscribe)
	outer.Handle("/", inner)
	s.handler = s.withObs(outer)
	return s, nil
}

// replan recomputes the strategy plan against cardinality stats sampled
// from snap and publishes it. Called at load and after every effective
// update: stats shift with the data, and with them the per-definition
// plan-vs-direct choice and the memo-budget veto. parent (nil at load)
// receives plan-size attributes and a reclass child span, so a sampled
// /update trace shows how the post-apply recompute splits its time.
func (s *Server) replan(snap store.Snapshot, parent *obs.Span) {
	sp := plan.PlanSchema(s.h, store.SampleStats(snap), plan.Config{})
	s.splan.Store(sp)
	s.planSet.Store(sp.ProgramSet())
	parent.SetAttrInt("instructions", int64(sp.ProgramSet().NumInstrs()))
	parent.SetAttrInt("shapes", int64(len(sp.Decisions)))
	rc := parent.StartChild("reclass")
	s.reclass()
	if cl := s.classes.Load(); cl != nil {
		rc.SetAttrInt("classes", int64(cl.NumClasses))
		rc.SetAttrInt("shared", int64(cl.Shared))
	}
	rc.End()
}

// reclass rebuilds the containment equivalence-class table over the
// request and definition shapes and installs the resulting alias map on
// the neighborhood cache, so congruent definitions share cache entries
// (a /fragment request equivalent to an already-cached definition is
// served from the existing entries). Runs alongside replan: the classes
// depend only on the schema, but rebuilding per epoch keeps the table's
// lifecycle aligned with the planner's and makes the cost visible in one
// place.
func (s *Server) reclass() {
	cl := contain.ComputeClasses(s.h, s.classShapes)
	s.classes.Store(&cl)
	s.containUnknown.Add(uint64(cl.UnknownPairs))
	if s.cache != nil {
		s.cache.SetAliases(cl.Aliases(s.classShapes))
	}
}

// defShapes lists every definition's raw shape — the keys handleNode
// caches neighborhoods under.
func defShapes(h *schema.Schema) []shape.Shape {
	var out []shape.Shape
	for _, d := range h.Definitions() {
		out = append(out, d.Shape)
	}
	return out
}

// SchemaPlan returns the current strategy plan (never nil after New).
func (s *Server) SchemaPlan() *plan.SchemaPlan { return s.splan.Load() }

// ContainmentClasses returns the current cache-sharing equivalence-class
// table (never nil after New).
func (s *Server) ContainmentClasses() *contain.Classes { return s.classes.Load() }

// plansFor slices the current program set to one request window of
// s.requests — the alignment core.ParallelOptions.Plans expects.
func (s *Server) plansFor(lo, hi int) *plan.Set {
	set := s.planSet.Load()
	if set == nil {
		return nil
	}
	return &plan.Set{Programs: set.Programs[lo:hi]}
}

// Handler returns the server's handler tree (routes plus timeout, limiter
// and observability middleware), for mounting under an http.Server or a
// test.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns the server's metric registry — the same one /metrics
// renders. cmd/fragserver publishes it via expvar and mounts it on the
// debug listener so scrapes keep working while the main listener sheds
// load.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// Traces returns the server's span-trace registry — the same ring
// /debug/traces serves (never nil after New).
func (s *Server) Traces() *obs.TraceRegistry { return s.traces }

// sampleTrace is the head sampler: true for the 1st, N+1th, 2N+1th, …
// request when TraceSample is N. A false costs one atomic increment.
func (s *Server) sampleTrace() bool {
	if s.traceSample <= 0 {
		return false
	}
	return (s.traceCount.Add(1)-1)%uint64(s.traceSample) == 0
}

// Live returns the incremental fragment maintainer behind GET /subscribe
// (never nil after New). Callers embedding the server via Handler instead
// of Serve must call its Drain during shutdown to close subscription
// streams cleanly.
func (s *Server) Live() *live.Maintainer { return s.live }

// Store returns the server's snapshot store. Callers embedding the server
// can apply deltas directly through it, but going through POST /update is
// preferred: only the handler keeps the neighborhood cache warm (Carry)
// and the update metrics truthful.
func (s *Server) Store() store.Store { return s.store }

// Lint returns the schema lint findings computed at load time, in the
// linter's stable order. With Config.AllowLintErrors unset the slice can
// only hold warnings and infos — error findings make New refuse.
func (s *Server) Lint() []shapelint.Diagnostic { return s.lint }

// Draining reports whether graceful shutdown has begun; /readyz turns 503
// at that point so load balancers stop routing new work here.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve serves on ln until ctx is cancelled, then shuts down gracefully,
// draining in-flight requests for up to drain (0 means 10s). It returns nil
// after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	if drain <= 0 {
		drain = 10 * time.Second
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	// Close subscription streams first (each gets a terminal bye event and
	// its handler returns), so Shutdown is not held open for the full
	// drain budget by connections that would otherwise never finish.
	s.live.Drain()
	s.log.Info("shutting down", "drain", drain.String())
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("fragserver: shutdown: %w", err)
	}
	return nil
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /validate", s.handleValidate)
	mux.HandleFunc("GET /fragment", s.handleFragment)
	mux.HandleFunc("GET /node", s.handleNode)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /tpf", s.handleTPF)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.Handle("GET /debug/traces", s.traces.Handler("fragserver"))
	mux.Handle("GET /debug/traces/{id}", s.traces.Handler("fragserver"))
	return mux
}

// epochPins refcounts which epochs in-flight requests are pinned to, so
// the cache sweeper knows which stale epochs no reader can touch anymore.
type epochPins struct {
	mu   sync.Mutex
	refs map[uint64]int
}

func (p *epochPins) pin(e uint64) {
	p.mu.Lock()
	p.refs[e]++
	p.mu.Unlock()
}

func (p *epochPins) unpin(e uint64) {
	p.mu.Lock()
	if p.refs[e]--; p.refs[e] <= 0 {
		delete(p.refs, e)
	}
	p.mu.Unlock()
}

// min returns the lowest pinned epoch, if any request is in flight.
func (p *epochPins) min() (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var lo uint64
	ok := false
	for e := range p.refs {
		if !ok || e < lo {
			lo, ok = e, true
		}
	}
	return lo, ok
}

// snapshot pins the current store snapshot for one request and stamps its
// epoch on the response, so every read the handler performs — graph
// lookups, extraction, cache access — sees exactly one epoch no matter how
// many updates land mid-request. The returned release must be called when
// the handler is done; it unpins and sweeps cache entries of epochs no
// in-flight request can reach anymore.
func (s *Server) snapshot(w http.ResponseWriter) (store.Snapshot, func()) {
	snap := s.store.Current()
	s.pins.pin(snap.Epoch())
	w.Header().Set("X-Epoch", strconv.FormatUint(snap.Epoch(), 10))
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.pins.unpin(snap.Epoch())
			s.evictStale()
		})
	}
	return snap, release
}

// evictStale drops cache entries of epochs below the eviction floor — the
// older of the current epoch and the oldest pinned one. The floor is
// tracked in staleFloor so the cache is only scanned when an update
// actually advanced it, not on every request.
func (s *Server) evictStale() {
	if s.cache == nil {
		return
	}
	floor := s.store.Current().Epoch()
	if lo, ok := s.pins.min(); ok && lo < floor {
		floor = lo
	}
	for {
		last := s.staleFloor.Load()
		if floor <= last {
			return
		}
		if s.staleFloor.CompareAndSwap(last, floor) {
			break
		}
	}
	s.cache.EvictBelow(floor)
}

// acquire hands out a pooled extractor for the given snapshot graph,
// creating one when the pool is dry (the in-flight limiter bounds how many
// can exist at once). Pooled extractors keep their evaluator memoization
// across requests, so repeated validation and extraction against one epoch
// get cheaper over time; an extractor built for an older epoch is simply
// dropped — its memoization is unsound against the new graph.
func (s *Server) acquire(g rdfgraph.Reader) *core.Extractor {
	for {
		select {
		case x := <-s.pool:
			if x.Graph() == g {
				return x
			}
			// Stale epoch: discard and keep draining the pool.
		default:
			return core.NewExtractor(g, s.h)
		}
	}
}

func (s *Server) release(x *core.Extractor) {
	// Don't pool extractors for superseded epochs; letting them die keeps
	// the pool converging onto the current graph after an update.
	if x.Graph() != s.store.Current().Reader() {
		return
	}
	select {
	case s.pool <- x:
	default:
	}
}

// defIndex resolves a shape name parameter: exact IRI match first, then
// unique suffix match (so S01 finds http://…/shapes#S01).
func (s *Server) defIndex(name string) (int, bool) {
	defs := s.h.Definitions()
	for i, d := range defs {
		if d.Name.Value == name {
			return i, true
		}
	}
	found, hit := -1, false
	for i, d := range defs {
		if strings.HasSuffix(d.Name.Value, name) {
			if hit {
				return -1, false // ambiguous suffix
			}
			found, hit = i, true
		}
	}
	return found, hit
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	snap, done := s.snapshot(w)
	defer done()
	x := s.acquire(snap.Reader())
	defer s.release(x)
	_, stop := tr.StartSpan("validate")
	report := s.h.ValidateWith(x.Evaluator())
	stop()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "conforms: %v\nfocus nodes: %d\nviolations: %d\n",
		report.Conforms, report.TargetedNodes, len(report.Violations()))
	if r.URL.Query().Get("full") != "" {
		for _, res := range report.Results {
			status := "ok"
			if !res.Conforms {
				status = "VIOLATION"
			}
			fmt.Fprintf(w, "%s %s focus %s\n", status, res.ShapeName, res.Focus)
		}
	}
}

func (s *Server) handleFragment(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	_, stopTarget := tr.StartSpan("target")
	requests := s.requests
	lo, hi := 0, len(s.requests)
	if name := r.URL.Query().Get("shape"); name != "" {
		i, ok := s.defIndex(name)
		if !ok {
			stopTarget()
			http.Error(w, "unknown or ambiguous shape "+name, http.StatusNotFound)
			return
		}
		requests = s.requests[i : i+1]
		lo, hi = i, i+1
	}
	stopTarget()
	snap, done := s.snapshot(w)
	defer done()
	x := s.acquire(snap.Reader())
	defer s.release(x)
	extractSpan, stopExtract := tr.StartSpan("extract")
	triples, err := x.FragmentParallel(requests, core.ParallelOptions{
		Workers:  s.workers,
		Cache:    s.cache,
		Epoch:    snap.Epoch(),
		Ctx:      r.Context(),
		Tracer:   tr,
		Recorder: s.sampleAttribution(),
		Plans:    s.plansFor(lo, hi),
		Span:     extractSpan,
	})
	stopExtract()
	if err != nil {
		httpTimeoutError(w, r, err)
		return
	}
	s.streamNTriples(w, r, triples)
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	q := r.URL.Query()
	rawIRI := q.Get("iri")
	if rawIRI == "" {
		http.Error(w, "missing iri parameter", http.StatusBadRequest)
		return
	}
	_, stopParse := tr.StartSpan("parse")
	focus, err := parseTermParam(rawIRI)
	stopParse()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// B(v, G, φ) for the named definition's shape, or for every definition
	// when no shape is given. Definition shapes are pointer-stable, so they
	// double as neighborhood cache keys.
	_, stopTarget := tr.StartSpan("target")
	var shapes []shape.Shape
	if name := q.Get("shape"); name != "" {
		i, ok := s.defIndex(name)
		if !ok {
			stopTarget()
			http.Error(w, "unknown or ambiguous shape "+name, http.StatusNotFound)
			return
		}
		shapes = []shape.Shape{s.h.Definitions()[i].Shape}
	} else {
		for _, d := range s.h.Definitions() {
			shapes = append(shapes, d.Shape)
		}
	}
	snap, done := s.snapshot(w)
	defer done()
	// LookupTerm never interns, so an unknown focus cannot mutate the
	// frozen snapshot dictionary no matter how many goroutines probe it.
	id := snap.Reader().LookupTerm(focus)
	stopTarget()
	if id == rdfgraph.NoID {
		// A term no triple mentions has empty neighborhoods for every
		// shape; serve the empty fragment rather than 404 so clients can
		// treat /node uniformly.
		s.streamNTriples(w, r, nil)
		return
	}
	x := s.acquire(snap.Reader())
	defer s.release(x)
	if rec := s.sampleAttribution(); rec != nil {
		// Sampled requests re-derive with attribution; the recorder makes
		// NeighborhoodIDsCached bypass the cache. Reset before pooling.
		x.SetRecorder(rec)
		defer x.SetRecorder(nil)
	}
	extractSpan, stopExtract := tr.StartSpan("extract")
	extractSpan.SetAttrInt("shapes", int64(len(shapes)))
	out := rdfgraph.NewIDTripleSet()
	for _, phi := range shapes {
		if r.Context().Err() != nil {
			stopExtract()
			httpTimeoutError(w, r, r.Context().Err())
			return
		}
		out.AddAll(x.NeighborhoodIDsCached(s.cache, snap.Epoch(), id, phi))
	}
	triples := out.Triples(snap.Reader().Dict())
	extractSpan.SetAttrInt("triples", int64(len(triples)))
	stopExtract()
	s.streamNTriples(w, r, triples)
}

func (s *Server) handleTPF(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	_, stopParse := tr.StartSpan("parse")
	pattern, err := parseTPFPattern(r.URL.Query())
	stopParse()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if phi, ok := pattern.RequestShape(); ok {
		w.Header().Set("X-Request-Shape", phi.String())
	}
	snap, done := s.snapshot(w)
	defer done()
	_, stopExtract := tr.StartSpan("extract")
	triples := pattern.Eval(snap.Reader())
	stopExtract()
	s.streamNTriples(w, r, triples)
}

// handleHealth is process liveness: it answers ok for as long as the
// process can serve HTTP at all, including while draining.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady is readiness: 200 while accepting new work, 503 once
// graceful shutdown has begun so load balancers drain this instance.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.store.Current()
	g := snap.Reader()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "uptime: %s\nepoch: %d\ntriples: %d\nterms: %d\nshapes: %d\nworkers: %d\n",
		time.Since(s.started).Round(time.Second), snap.Epoch(), g.Len(), g.Dict().Len(), s.h.Len(), s.workers)
	fmt.Fprintf(w, "backend: %s\nshards: %d\n", s.store.Backend(), s.store.NumShards())
	if s.store.Backend() == store.BackendSharded {
		fmt.Fprintf(w, "shard triples: %v\ncross-shard resolutions: %d\n",
			s.store.ShardTriples(), s.store.CrossShardResolutions())
	}
	if s.cache != nil {
		st := s.cache.Stats()
		fmt.Fprintf(w, "cache: %d entries, %d triples (~%d bytes), %d hits (%d via containment aliases), %d misses, %d evictions (%d triples)\n",
			st.Entries, st.Triples, st.Bytes, st.Hits, st.AliasHits, st.Misses, st.Evictions, st.EvictedTriples)
	} else {
		fmt.Fprintln(w, "cache: disabled")
	}
	if cl := s.classes.Load(); cl != nil {
		fmt.Fprintf(w, "containment: %d classes over %d shapes, %d shared, %d unknown pairs\n",
			cl.NumClasses, len(cl.Rep), cl.Shared, s.containUnknown.Load())
	}
	ts := s.traces.Stats()
	pct := 0.0
	if total := ts.Sampled + ts.Dropped; total > 0 {
		pct = 100 * float64(ts.Sampled) / float64(total)
	}
	fmt.Fprintf(w, "traces: %d kept (cap %d), %d sampled (%.1f%%), %d dropped, %d evicted\n",
		ts.Kept, ts.Cap, ts.Sampled, pct, ts.Dropped, ts.Evicted)
}

// streamNTriples writes triples incrementally as application/n-triples,
// aborting quietly if the request context ends mid-stream (client gone or
// budget exceeded — headers are already out by then). The stages recorded
// so far (parse, target, extract, …) go out as a Server-Timing header;
// the serialize stage itself necessarily post-dates the headers, so it
// shows up only in the access log and the stage histogram.
func (s *Server) streamNTriples(w http.ResponseWriter, r *http.Request, triples []rdf.Triple) {
	tr := obs.FromContext(r.Context())
	if st := tr.ServerTiming(); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	_, stopSerialize := tr.StartSpan("serialize")
	defer stopSerialize()
	w.Header().Set("Content-Type", "application/n-triples")
	w.Header().Set("X-Triple-Count", strconv.Itoa(len(triples)))
	nw := turtle.NewNTriplesWriter(w)
	ctx := r.Context()
	for _, t := range triples {
		if ctx.Err() != nil {
			return
		}
		if nw.WriteTriple(t) != nil {
			return
		}
	}
	nw.Flush() //nolint:errcheck — nothing to do about a failed final write
}

// httpTimeoutError maps a context error to 503 (with Retry-After) when no
// bytes have been written yet.
func httpTimeoutError(w http.ResponseWriter, _ *http.Request, err error) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "request cancelled or timed out: "+err.Error(), http.StatusServiceUnavailable)
}

// parseTPFPattern builds a triple pattern from s=/p=/o= query parameters.
// Empty positions and ?name positions are variables (repeating a name
// imposes equality); everything else must parse as a term, and predicate
// constants must be IRIs. Malformed input yields an error, never a panic.
func parseTPFPattern(q map[string][]string) (tpf.Pattern, error) {
	get := func(key string) string {
		if vs := q[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	pos := func(key string) (tpf.Pos, error) {
		raw := get(key)
		if raw == "" {
			return tpf.V(key), nil // fresh variable named after the position
		}
		if strings.HasPrefix(raw, "?") {
			name := raw[1:]
			if name == "" {
				return tpf.Pos{}, fmt.Errorf("%s=: variable needs a name after '?'", key)
			}
			return tpf.V(name), nil
		}
		t, err := parseTermParam(raw)
		if err != nil {
			return tpf.Pos{}, fmt.Errorf("%s=: %w", key, err)
		}
		return tpf.C(t), nil
	}
	var pattern tpf.Pattern
	var err error
	if pattern.S, err = pos("s"); err != nil {
		return tpf.Pattern{}, err
	}
	if pattern.P, err = pos("p"); err != nil {
		return tpf.Pattern{}, err
	}
	if pattern.O, err = pos("o"); err != nil {
		return tpf.Pattern{}, err
	}
	if !pattern.P.IsVar() && !pattern.P.Term.IsIRI() {
		return tpf.Pattern{}, errors.New("p=: predicate must be an IRI")
	}
	return pattern, nil
}

// graphNow returns the graph of the current snapshot — a convenience for
// code that needs "the graph as of now" without pinning (stats, tests).
// Request handlers must use snapshot instead so all their reads agree.
func (s *Server) graphNow() rdfgraph.Reader { return s.store.Current().Reader() }
