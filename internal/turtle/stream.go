package turtle

import (
	"io"

	"shaclfrag/internal/rdf"
)

// ntFlushThreshold is the buffered-bytes level at which NTriplesWriter
// forwards to the underlying writer. Large enough to amortize syscalls,
// small enough that serving a million-triple fragment never materializes
// more than a screenful of serialization in memory.
const ntFlushThreshold = 32 << 10

// NTriplesWriter serializes triples incrementally in canonical N-Triples
// form, one statement per line, flushing to the underlying writer every
// ~32 KiB. It is the streaming counterpart of FormatNTriples: output is
// byte-identical for the same triple sequence, but memory use is bounded by
// the flush threshold instead of the total serialization.
//
// Errors from the underlying writer are sticky: the first one is recorded,
// subsequent WriteTriple calls become no-ops returning it, so a serving
// loop may check the error once at Flush time.
type NTriplesWriter struct {
	w     io.Writer
	buf   []byte
	count int
	err   error
}

// NewNTriplesWriter returns a writer streaming to w.
func NewNTriplesWriter(w io.Writer) *NTriplesWriter {
	return &NTriplesWriter{w: w, buf: make([]byte, 0, ntFlushThreshold+1024)}
}

// WriteTriple appends one statement, flushing if the buffer is full.
func (nw *NTriplesWriter) WriteTriple(t rdf.Triple) error {
	if nw.err != nil {
		return nw.err
	}
	nw.buf = append(nw.buf, t.String()...)
	nw.buf = append(nw.buf, " .\n"...)
	nw.count++
	if len(nw.buf) >= ntFlushThreshold {
		return nw.Flush()
	}
	return nil
}

// WriteAll appends a triple slice, stopping at the first error.
func (nw *NTriplesWriter) WriteAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := nw.WriteTriple(t); err != nil {
			return err
		}
	}
	return nil
}

// Flush forwards any buffered bytes to the underlying writer.
func (nw *NTriplesWriter) Flush() error {
	if nw.err != nil {
		return nw.err
	}
	if len(nw.buf) == 0 {
		return nil
	}
	_, nw.err = nw.w.Write(nw.buf)
	nw.buf = nw.buf[:0]
	return nw.err
}

// Count returns the number of triples written so far.
func (nw *NTriplesWriter) Count() int { return nw.count }

// Err returns the sticky error, if any.
func (nw *NTriplesWriter) Err() error { return nw.err }
