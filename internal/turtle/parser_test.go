package turtle

import (
	"strings"
	"testing"

	"shaclfrag/internal/rdf"
)

func TestParseBasicTriples(t *testing.T) {
	g, err := Parse(`<http://x/a> <http://x/p> <http://x/b> .`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if !g.Has(rdf.T(rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/p"), rdf.NewIRI("http://x/b"))) {
		t.Fatal("triple missing")
	}
}

func TestParsePrefixes(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:alice rdf:type ex:Person .
ex:alice a ex:Agent .
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	alice := rdf.NewIRI("http://example.org/alice")
	typ := rdf.NewIRI(rdf.RDFType)
	if !g.Has(rdf.T(alice, typ, rdf.NewIRI("http://example.org/Person"))) {
		t.Error("prefixed name expansion failed")
	}
	if !g.Has(rdf.T(alice, typ, rdf.NewIRI("http://example.org/Agent"))) {
		t.Error("'a' keyword failed")
	}
}

func TestParseSPARQLStylePrefix(t *testing.T) {
	g, err := Parse("PREFIX ex: <http://example.org/>\nex:a ex:p ex:b .")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParsePredicateAndObjectLists(t *testing.T) {
	src := `
@prefix ex: <http://x/> .
ex:a ex:p ex:b , ex:c ;
     ex:q ex:d ;
     a ex:Thing .
`
	ts, err := ParseTriples(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("got %d triples, want 4: %v", len(ts), ts)
	}
}

func TestParseLiterals(t *testing.T) {
	src := `
@prefix ex: <http://x/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:name "Alice" .
ex:a ex:nameNL "Alies"@nl .
ex:a ex:age 30 .
ex:a ex:height 1.75 .
ex:a ex:score 1.0e3 .
ex:a ex:ok true .
ex:a ex:born "1990-04-01"^^xsd:date .
ex:a ex:quote "say \"hi\"\n" .
`
	ts, err := ParseTriples(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []rdf.Term{
		rdf.NewString("Alice"),
		rdf.NewLangString("Alies", "nl"),
		rdf.NewTypedLiteral("30", rdf.XSDInteger),
		rdf.NewTypedLiteral("1.75", rdf.XSDDecimal),
		rdf.NewTypedLiteral("1.0e3", rdf.XSDDouble),
		rdf.NewTypedLiteral("true", rdf.XSDBoolean),
		rdf.NewTypedLiteral("1990-04-01", rdf.XSDDate),
		rdf.NewString("say \"hi\"\n"),
	}
	if len(ts) != len(want) {
		t.Fatalf("got %d triples, want %d", len(ts), len(want))
	}
	for i, w := range want {
		if ts[i].O != w {
			t.Errorf("triple %d object = %v, want %v", i, ts[i].O, w)
		}
	}
}

func TestParseBlankNodes(t *testing.T) {
	src := `
@prefix ex: <http://x/> .
ex:a ex:knows _:b1 .
_:b1 ex:name "Bob" .
ex:c ex:knows [ ex:name "Carol" ; ex:age 20 ] .
[ ex:name "Dave" ] ex:knows ex:a .
`
	ts, err := ParseTriples(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 7 {
		t.Fatalf("got %d triples, want 7: %v", len(ts), ts)
	}
	if ts[0].O != rdf.NewBlank("b1") || ts[1].S != rdf.NewBlank("b1") {
		t.Error("labelled blank nodes must be shared")
	}
	// ex:c ex:knows [ ... ] produces the property triples first, then the
	// statement triple pointing at the same fresh blank node.
	if !ts[4].O.IsBlank() || ts[4].O != ts[2].S || ts[2].S != ts[3].S {
		t.Error("bracketed blank node wiring wrong")
	}
	if !ts[5].S.IsBlank() || ts[5].S != ts[6].S {
		t.Error("subject property list wiring wrong")
	}
}

func TestParseCollections(t *testing.T) {
	src := `
@prefix ex: <http://x/> .
ex:a ex:list ( ex:x ex:y ) .
ex:b ex:list () .
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// (ex:x ex:y) expands to 4 triples + 2 statement triples.
	if g.Len() != 6 {
		t.Fatalf("Len = %d, want 6", g.Len())
	}
	if !g.Has(rdf.T(rdf.NewIRI("http://x/b"), rdf.NewIRI("http://x/list"), rdf.NewIRI(rdf.RDFNil))) {
		t.Error("empty collection should be rdf:nil")
	}
}

func TestParseBase(t *testing.T) {
	src := `
@base <http://example.org/> .
<a> <p> <#frag> .
`
	ts, err := ParseTriples(src)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].S != rdf.NewIRI("http://example.org/a") {
		t.Errorf("base resolution: %v", ts[0].S)
	}
	if ts[0].O != rdf.NewIRI("http://example.org/#frag") {
		t.Errorf("fragment resolution: %v", ts[0].O)
	}
}

func TestParseComments(t *testing.T) {
	src := `# leading comment
@prefix ex: <http://x/> . # trailing
ex:a ex:p ex:b . # done
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseLongStrings(t *testing.T) {
	src := "@prefix ex: <http://x/> .\nex:a ex:doc \"\"\"line1\nline2\"\"\" ."
	ts, err := ParseTriples(src)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].O.Value != "line1\nline2" {
		t.Errorf("long string value %q", ts[0].O.Value)
	}
}

func TestParseUnicodeEscapes(t *testing.T) {
	ts, err := ParseTriples(`<http://x/a> <http://x/p> "é\U0001F600" .`)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].O.Value != "é😀" {
		t.Errorf("unicode escapes: %q", ts[0].O.Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://x/a> <http://x/p>`,              // missing object + dot
		`<http://x/a> <http://x/p> <http://x/b>`, // missing dot
		`ex:a ex:p ex:b .`,                       // undefined prefix
		`<http://x/a> "lit" <http://x/b> .`,      // literal predicate
		`<http://x/a> <http://x/p> "unterminated .`,
		`@prefix ex <http://x/> .`,
		`<http://x/a> <http://x/p> a .`, // 'a' in object position
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	src := `
@prefix ex: <http://x/> .
ex:a ex:p ex:b .
ex:a ex:name "Alice"@en .
ex:a ex:age 30 .
_:b ex:p ex:a .
`
	g1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nt := FormatGraph(g1)
	g2, err := Parse(nt)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", nt, err)
	}
	if !g1.Equal(g2) {
		t.Errorf("round trip changed graph:\n%s\nvs\n%s", nt, FormatGraph(g2))
	}
}

func TestFormatTurtle(t *testing.T) {
	ts, err := ParseTriples(`
@prefix ex: <http://x/> .
ex:a ex:p ex:b ;
     ex:q "v" .
ex:b a ex:C .
`)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTurtle(ts, map[string]string{"ex": "http://x/"})
	if !strings.Contains(out, "@prefix ex: <http://x/> .") {
		t.Errorf("missing prefix decl in %q", out)
	}
	if !strings.Contains(out, "ex:a ex:p ex:b ;") {
		t.Errorf("missing grouped subject in %q", out)
	}
	if !strings.Contains(out, "ex:b a ex:C .") {
		t.Errorf("missing 'a' abbreviation in %q", out)
	}
	// Round-trip the generated Turtle.
	g2, err := Parse(out)
	if err != nil {
		t.Fatalf("generated Turtle does not re-parse: %v\n%s", err, out)
	}
	if g2.Len() != 3 {
		t.Errorf("round trip length %d, want 3", g2.Len())
	}
}

func TestParseNumberThenDot(t *testing.T) {
	// "30." must parse as integer 30 followed by the statement dot.
	ts, err := ParseTriples(`<http://x/a> <http://x/p> 30.`)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].O != rdf.NewTypedLiteral("30", rdf.XSDInteger) {
		t.Errorf("object = %v", ts[0].O)
	}
}

func TestParseNegativeAndDecimalNumbers(t *testing.T) {
	ts, err := ParseTriples(`<http://x/a> <http://x/p> -4.5 .`)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].O != rdf.NewTypedLiteral("-4.5", rdf.XSDDecimal) {
		t.Errorf("object = %v", ts[0].O)
	}
}
