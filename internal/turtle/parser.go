package turtle

import (
	"fmt"
	"strings"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// Parse parses a Turtle document and returns its triples as a graph.
func Parse(input string) (*rdfgraph.Graph, error) {
	ts, err := ParseTriples(input)
	if err != nil {
		return nil, err
	}
	return rdfgraph.FromTriples(ts), nil
}

// ParseTriples parses a Turtle document into a triple list, preserving
// statement order.
func ParseTriples(input string) ([]rdf.Triple, error) {
	p := &parser{
		lex:      newLexer(input),
		prefixes: map[string]string{},
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
	return p.out, nil
}

type parser struct {
	lex      *lexer
	tok      token
	prefixes map[string]string
	base     string
	out      []rdf.Triple
	bnodeSeq int
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind, what string) error {
	if p.tok.kind != k {
		return p.errorf("expected %s", what)
	}
	return p.advance()
}

func (p *parser) freshBlank() rdf.Term {
	p.bnodeSeq++
	return rdf.NewBlank(fmt.Sprintf("gen%d", p.bnodeSeq))
}

func (p *parser) statement() error {
	switch p.tok.kind {
	case tokPrefixDirective:
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokPName {
			return p.errorf("expected prefix name in @prefix")
		}
		name := strings.TrimSuffix(p.tok.text, ":")
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokIRI {
			return p.errorf("expected IRI in @prefix")
		}
		p.prefixes[name] = p.resolveIRI(p.tok.text)
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokDot { // SPARQL-style PREFIX has no dot
			return p.advance()
		}
		return nil
	case tokBaseDirective:
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokIRI {
			return p.errorf("expected IRI in @base")
		}
		p.base = p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokDot {
			return p.advance()
		}
		return nil
	default:
		subject, hadProps, err := p.subject()
		if err != nil {
			return err
		}
		// A bare "[ ... ] ." statement needs no predicate-object list.
		if hadProps && p.tok.kind == tokDot {
			return p.advance()
		}
		if err := p.predicateObjectList(subject); err != nil {
			return err
		}
		return p.expect(tokDot, "'.'")
	}
}

// subject parses the subject of a statement. hadProps reports whether the
// subject was a bracketed blank node that already carried properties.
func (p *parser) subject() (rdf.Term, bool, error) {
	switch p.tok.kind {
	case tokIRI, tokPName:
		t, err := p.iriTerm()
		return t, false, err
	case tokBlank:
		t := rdf.NewBlank(p.tok.text)
		return t, false, p.advance()
	case tokLBracket:
		t, err := p.blankNodePropertyList()
		return t, true, err
	case tokLParen:
		t, err := p.collection()
		return t, true, err
	default:
		return rdf.Term{}, false, p.errorf("expected subject")
	}
}

func (p *parser) iriTerm() (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRI:
		iri := p.resolveIRI(p.tok.text)
		return rdf.NewIRI(iri), p.advance()
	case tokPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), p.advance()
	default:
		return rdf.Term{}, p.errorf("expected IRI")
	}
}

func (p *parser) resolveIRI(iri string) string {
	if p.base == "" || strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") ||
		strings.HasPrefix(iri, "mailto:") {
		return iri
	}
	if strings.HasPrefix(iri, "#") || !strings.Contains(iri, ":") {
		return p.base + iri
	}
	return iri
}

func (p *parser) expandPName(pname string) (string, error) {
	i := strings.Index(pname, ":")
	if i < 0 {
		return "", p.errorf("prefixed name %q has no colon", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	ns, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errorf("undefined prefix %q", prefix)
	}
	local = strings.ReplaceAll(local, `\`, "")
	return ns + local, nil
}

func (p *parser) predicateObjectList(subject rdf.Term) error {
	for {
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		if err := p.objectList(subject, pred); err != nil {
			return err
		}
		if p.tok.kind != tokSemicolon {
			return nil
		}
		for p.tok.kind == tokSemicolon {
			if err := p.advance(); err != nil {
				return err
			}
		}
		// Trailing semicolon before '.', ']' etc.
		if p.tok.kind == tokDot || p.tok.kind == tokRBracket || p.tok.kind == tokEOF {
			return nil
		}
	}
}

func (p *parser) predicate() (rdf.Term, error) {
	if p.tok.kind == tokA {
		return rdf.NewIRI(rdf.RDFType), p.advance()
	}
	return p.iriTerm()
}

func (p *parser) objectList(subject, pred rdf.Term) error {
	for {
		obj, err := p.object()
		if err != nil {
			return err
		}
		p.out = append(p.out, rdf.T(subject, pred, obj))
		if p.tok.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

func (p *parser) object() (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRI, tokPName:
		return p.iriTerm()
	case tokA:
		// 'a' is only the rdf:type keyword in predicate position.
		return rdf.Term{}, p.errorf("'a' is not valid in object position")
	case tokBlank:
		t := rdf.NewBlank(p.tok.text)
		return t, p.advance()
	case tokLBracket:
		return p.blankNodePropertyList()
	case tokLParen:
		return p.collection()
	case tokLiteral:
		return p.literal()
	case tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return rdf.Term{}, err
		}
		return numberLiteral(text), nil
	case tokBoolean:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewTypedLiteral(text, rdf.XSDBoolean), nil
	default:
		return rdf.Term{}, p.errorf("expected object")
	}
}

func numberLiteral(text string) rdf.Term {
	if strings.ContainsAny(text, "eE") {
		return rdf.NewTypedLiteral(text, rdf.XSDDouble)
	}
	if strings.Contains(text, ".") {
		return rdf.NewTypedLiteral(text, rdf.XSDDecimal)
	}
	return rdf.NewTypedLiteral(text, rdf.XSDInteger)
}

func (p *parser) literal() (rdf.Term, error) {
	lex := p.tok.text
	if err := p.advance(); err != nil {
		return rdf.Term{}, err
	}
	switch p.tok.kind {
	case tokLangTag:
		lang := p.tok.text
		return rdf.NewLangString(lex, lang), p.advance()
	case tokPrefixDirective, tokBaseDirective:
		// Directly after a literal, @prefix / @base is a language tag,
		// not a directive — the W3C grammar admits directives only in
		// statement position. Without this, "x"@PREFIX would serialize
		// as "x"@prefix and then fail to re-parse.
		if p.tok.text != "" { // only the @-form carries its word
			lang := p.tok.text
			return rdf.NewLangString(lex, lang), p.advance()
		}
		return rdf.NewString(lex), nil
	case tokDoubleCaret:
		if err := p.advance(); err != nil {
			return rdf.Term{}, err
		}
		dt, err := p.iriTerm()
		if err != nil {
			return rdf.Term{}, err
		}
		// An empty datatype IRI ("x"^^<>) is indistinguishable from a
		// plain literal once serialized; normalize it to xsd:string so
		// parse → serialize → parse is a fixed point.
		if dt.Value == "" {
			return rdf.NewString(lex), nil
		}
		return rdf.NewTypedLiteral(lex, dt.Value), nil
	default:
		return rdf.NewString(lex), nil
	}
}

func (p *parser) blankNodePropertyList() (rdf.Term, error) {
	if err := p.advance(); err != nil { // consume '['
		return rdf.Term{}, err
	}
	node := p.freshBlank()
	if p.tok.kind == tokRBracket {
		return node, p.advance()
	}
	if err := p.predicateObjectList(node); err != nil {
		return rdf.Term{}, err
	}
	if err := p.expect(tokRBracket, "']'"); err != nil {
		return rdf.Term{}, err
	}
	return node, nil
}

func (p *parser) collection() (rdf.Term, error) {
	if err := p.advance(); err != nil { // consume '('
		return rdf.Term{}, err
	}
	first := rdf.NewIRI(rdf.RDFFirst)
	rest := rdf.NewIRI(rdf.RDFRest)
	nilTerm := rdf.NewIRI(rdf.RDFNil)
	if p.tok.kind == tokRParen {
		return nilTerm, p.advance()
	}
	head := p.freshBlank()
	cur := head
	for {
		obj, err := p.object()
		if err != nil {
			return rdf.Term{}, err
		}
		p.out = append(p.out, rdf.T(cur, first, obj))
		if p.tok.kind == tokRParen {
			p.out = append(p.out, rdf.T(cur, rest, nilTerm))
			return head, p.advance()
		}
		next := p.freshBlank()
		p.out = append(p.out, rdf.T(cur, rest, next))
		cur = next
	}
}

// ParseNTriples parses an N-Triples document. Since N-Triples is a subset
// of Turtle, this simply delegates to ParseTriples.
func ParseNTriples(input string) ([]rdf.Triple, error) {
	return ParseTriples(input)
}

// FormatNTriples serializes triples in canonical N-Triples form, one triple
// per line, in the order given.
func FormatNTriples(triples []rdf.Triple) string {
	var b strings.Builder
	for _, t := range triples {
		b.WriteString(t.String())
		b.WriteString(" .\n")
	}
	return b.String()
}

// FormatGraph serializes a graph in canonical (sorted) N-Triples form.
func FormatGraph(g rdfgraph.Reader) string {
	return FormatNTriples(g.Triples())
}

// FormatTurtle serializes triples as compact Turtle with the given prefix
// map (prefix name → namespace IRI), grouping by subject.
func FormatTurtle(triples []rdf.Triple, prefixes map[string]string) string {
	var b strings.Builder
	names := make([]string, 0, len(prefixes))
	for name := range prefixes {
		names = append(names, name)
	}
	// Sort for deterministic output.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		fmt.Fprintf(&b, "@prefix %s: <%s> .\n", name, prefixes[name])
	}
	if len(names) > 0 {
		b.WriteByte('\n')
	}
	abbr := func(t rdf.Term) string {
		if t.IsIRI() {
			if t.Value == rdf.RDFType {
				return "a"
			}
			for _, name := range names {
				ns := prefixes[name]
				if strings.HasPrefix(t.Value, ns) {
					local := t.Value[len(ns):]
					if local != "" && !strings.ContainsAny(local, "/#:") {
						return name + ":" + local
					}
				}
			}
		}
		return t.String()
	}
	var prevSubject rdf.Term
	open := false
	for i, t := range triples {
		if i > 0 && t.S == prevSubject {
			b.WriteString(" ;\n    ")
		} else {
			if open {
				b.WriteString(" .\n")
			}
			b.WriteString(abbr(t.S))
			b.WriteByte(' ')
			open = true
		}
		b.WriteString(abbr(t.P))
		b.WriteByte(' ')
		b.WriteString(abbr(t.O))
		prevSubject = t.S
	}
	if open {
		b.WriteString(" .\n")
	}
	return b.String()
}

// MustParse parses Turtle and panics on error; intended for tests and
// example programs with constant inputs.
func MustParse(input string) *rdfgraph.Graph {
	g, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return g
}
