// Package turtle implements a parser and serializers for the Turtle and
// N-Triples RDF syntaxes. The parser covers the subset of Turtle that data
// graphs and SHACL shapes graphs in this repository use: prefix and base
// directives, prefixed names, IRIs, blank nodes (labelled and anonymous),
// collections, predicate/object lists, the 'a' keyword, and literals with
// escapes, language tags, datatypes, and the numeric/boolean shorthands.
package turtle

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF         tokenKind = iota
	tokIRI                   // <...>
	tokPName                 // prefix:local or prefix:
	tokBlank                 // _:label
	tokLiteral               // "..." (value carried unescaped)
	tokLangTag               // @en
	tokDoubleCaret           // ^^
	tokNumber                // 123, -4.5, 6e7
	tokBoolean               // true / false
	tokA                     // the keyword a
	tokDot
	tokSemicolon
	tokComma
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokPrefixDirective // @prefix or PREFIX
	tokBaseDirective   // @base or BASE
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	input string
	pos   int
	line  int
}

func newLexer(input string) *lexer {
	return &lexer{input: input, line: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.input) {
		return 0
	}
	return l.input[l.pos]
}

func (l *lexer) skipWhitespaceAndComments() {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isPNChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c >= 0x80
}

func (l *lexer) next() (token, error) {
	l.skipWhitespaceAndComments()
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == '<':
		l.pos++
		for l.pos < len(l.input) && l.input[l.pos] != '>' {
			if l.input[l.pos] == '\n' {
				return token{}, l.errorf("newline in IRI")
			}
			l.pos++
		}
		if l.pos >= len(l.input) {
			return token{}, l.errorf("unterminated IRI")
		}
		iri := l.input[start+1 : l.pos]
		l.pos++
		if !utf8.ValidString(iri) {
			return token{}, l.errorf("IRI is not valid UTF-8")
		}
		return token{kind: tokIRI, text: iri, line: l.line}, nil

	case c == '"' || c == '\'':
		return l.lexString(c)

	case c == '_':
		if l.pos+1 >= len(l.input) || l.input[l.pos+1] != ':' {
			return token{}, l.errorf("expected ':' after '_'")
		}
		l.pos += 2
		lbl := l.pos
		for l.pos < len(l.input) && isPNChar(l.input[l.pos]) {
			l.pos++
		}
		// A trailing dot terminates the statement, not the label.
		for l.pos > lbl && l.input[l.pos-1] == '.' {
			l.pos--
		}
		if l.pos == lbl {
			return token{}, l.errorf("empty blank node label")
		}
		return token{kind: tokBlank, text: l.input[lbl:l.pos], line: l.line}, nil

	case c == '@':
		l.pos++
		w := l.pos
		for l.pos < len(l.input) && (l.input[l.pos] >= 'a' && l.input[l.pos] <= 'z' ||
			l.input[l.pos] >= 'A' && l.input[l.pos] <= 'Z' || l.input[l.pos] == '-' ||
			l.input[l.pos] >= '0' && l.input[l.pos] <= '9') {
			l.pos++
		}
		word := l.input[w:l.pos]
		switch word {
		// The directive tokens keep their word so the parser can undo the
		// classification: after a literal, @prefix/@base is a language tag
		// (the W3C grammar admits directives only in statement position).
		case "prefix":
			return token{kind: tokPrefixDirective, text: word, line: l.line}, nil
		case "base":
			return token{kind: tokBaseDirective, text: word, line: l.line}, nil
		case "":
			return token{}, l.errorf("empty language tag")
		default:
			return token{kind: tokLangTag, text: word, line: l.line}, nil
		}

	case c == '^':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '^' {
			l.pos += 2
			return token{kind: tokDoubleCaret, line: l.line}, nil
		}
		return token{}, l.errorf("stray '^'")

	case c == '.':
		l.pos++
		return token{kind: tokDot, line: l.line}, nil
	case c == ';':
		l.pos++
		return token{kind: tokSemicolon, line: l.line}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, line: l.line}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, line: l.line}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, line: l.line}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, line: l.line}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, line: l.line}, nil

	case c == '+' || c == '-' || c >= '0' && c <= '9':
		return l.lexNumber()

	default:
		return l.lexWordOrPName()
	}
}

func (l *lexer) lexString(quote byte) (token, error) {
	// Support both short ("...", '...') and long ("""...""") forms.
	long := strings.HasPrefix(l.input[l.pos:], strings.Repeat(string(quote), 3))
	if long {
		l.pos += 3
	} else {
		l.pos++
	}
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\\' {
			if l.pos+1 >= len(l.input) {
				return token{}, l.errorf("dangling escape")
			}
			esc := l.input[l.pos+1]
			l.pos += 2
			switch esc {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				n := 4
				if esc == 'U' {
					n = 8
				}
				if l.pos+n > len(l.input) {
					return token{}, l.errorf("truncated \\%c escape", esc)
				}
				var r rune
				for i := 0; i < n; i++ {
					d := l.input[l.pos+i]
					var v rune
					switch {
					case d >= '0' && d <= '9':
						v = rune(d - '0')
					case d >= 'a' && d <= 'f':
						v = rune(d-'a') + 10
					case d >= 'A' && d <= 'F':
						v = rune(d-'A') + 10
					default:
						return token{}, l.errorf("bad hex digit %q", d)
					}
					r = r<<4 | v
				}
				l.pos += n
				if !utf8.ValidRune(r) {
					return token{}, l.errorf("invalid code point \\%c%X", esc, r)
				}
				b.WriteRune(r)
			default:
				return token{}, l.errorf("unknown escape \\%c", esc)
			}
			continue
		}
		if long {
			if c == quote {
				// Count the whole quote run: fewer than three are literal
				// quotes; otherwise the run's final three close the string
				// and the rest belong to its value ("""x"""" is x").
				run := 0
				for l.pos+run < len(l.input) && l.input[l.pos+run] == quote {
					run++
				}
				l.pos += run
				if run < 3 {
					for i := 0; i < run; i++ {
						b.WriteByte(quote)
					}
					continue
				}
				for i := 0; i < run-3; i++ {
					b.WriteByte(quote)
				}
				return l.literalToken(b.String())
			}
			if c == '\n' {
				l.line++
			}
			b.WriteByte(c)
			l.pos++
			continue
		}
		if c == quote {
			l.pos++
			return l.literalToken(b.String())
		}
		if c == '\n' {
			return token{}, l.errorf("newline in string literal")
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf("unterminated string literal")
}

// literalToken validates a finished string literal. Rejecting invalid
// UTF-8 here keeps parse→serialize→parse a fixed point: the serializer
// could not re-emit such bytes without mangling them into U+FFFD.
func (l *lexer) literalToken(s string) (token, error) {
	if !utf8.ValidString(s) {
		return token{}, l.errorf("string literal is not valid UTF-8")
	}
	return token{kind: tokLiteral, text: s, line: l.line}, nil
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if c := l.input[l.pos]; c == '+' || c == '-' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.input) && l.input[l.pos] >= '0' && l.input[l.pos] <= '9' {
		l.pos++
		digits++
	}
	// A '.' is part of the number only if followed by a digit (otherwise it
	// terminates the statement).
	if l.pos+1 < len(l.input) && l.input[l.pos] == '.' &&
		l.input[l.pos+1] >= '0' && l.input[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.input) && l.input[l.pos] >= '0' && l.input[l.pos] <= '9' {
			l.pos++
			digits++
		}
	}
	if l.pos < len(l.input) && (l.input[l.pos] == 'e' || l.input[l.pos] == 'E') {
		l.pos++
		if l.pos < len(l.input) && (l.input[l.pos] == '+' || l.input[l.pos] == '-') {
			l.pos++
		}
		for l.pos < len(l.input) && l.input[l.pos] >= '0' && l.input[l.pos] <= '9' {
			l.pos++
		}
	}
	if digits == 0 {
		return token{}, l.errorf("malformed number %q", l.input[start:l.pos])
	}
	return token{kind: tokNumber, text: l.input[start:l.pos], line: l.line}, nil
}

func (l *lexer) lexWordOrPName() (token, error) {
	start := l.pos
	for l.pos < len(l.input) && (isPNChar(l.input[l.pos]) || l.input[l.pos] == ':' ||
		l.input[l.pos] == '%' || l.input[l.pos] == '\\') {
		l.pos++
	}
	word := l.input[start:l.pos]
	if word == "" {
		return token{}, l.errorf("unexpected character %q", l.input[start])
	}
	// A trailing '.' with nothing after the dot that could continue the name
	// terminates the statement.
	for strings.HasSuffix(word, ".") && !strings.Contains(word, ":") {
		word = word[:len(word)-1]
		l.pos--
	}
	switch word {
	case "a":
		return token{kind: tokA, line: l.line}, nil
	case "true", "false":
		return token{kind: tokBoolean, text: word, line: l.line}, nil
	case "PREFIX", "prefix":
		return token{kind: tokPrefixDirective, line: l.line}, nil
	case "BASE", "base":
		return token{kind: tokBaseDirective, line: l.line}, nil
	}
	if strings.Contains(word, ":") {
		for strings.HasSuffix(word, ".") {
			word = word[:len(word)-1]
			l.pos--
		}
		return token{kind: tokPName, text: word, line: l.line}, nil
	}
	return token{}, l.errorf("unexpected word %q", word)
}
