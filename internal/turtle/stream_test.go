package turtle_test

import (
	"errors"
	"strings"
	"testing"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/turtle"
)

func TestNTriplesWriterParity(t *testing.T) {
	// A graph big enough to cross the flush threshold several times, so the
	// test covers buffered, flushed, and final-partial output segments.
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 400, Seed: 11})
	triples := g.Triples()
	want := turtle.FormatNTriples(triples)
	if len(want) < 100<<10 {
		t.Fatalf("test corpus too small to exercise flushing: %d bytes", len(want))
	}

	var sb strings.Builder
	nw := turtle.NewNTriplesWriter(&sb)
	if err := nw.WriteAll(triples); err != nil {
		t.Fatal(err)
	}
	// Something must already have reached the writer before the final Flush.
	if sb.Len() == 0 {
		t.Error("no incremental flush happened below the final Flush")
	}
	if err := nw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("streamed output differs from FormatNTriples (%d vs %d bytes)", sb.Len(), len(want))
	}
	if nw.Count() != len(triples) {
		t.Errorf("Count = %d, want %d", nw.Count(), len(triples))
	}
	if nw.Err() != nil {
		t.Errorf("Err = %v", nw.Err())
	}
}

type failingWriter struct{ writes int }

func (fw *failingWriter) Write(p []byte) (int, error) {
	fw.writes++
	return 0, errors.New("sink closed")
}

func TestNTriplesWriterStickyError(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 300, Seed: 3})
	triples := g.Triples()

	fw := &failingWriter{}
	nw := turtle.NewNTriplesWriter(fw)
	err := nw.WriteAll(triples)
	if err == nil {
		t.Fatal("expected the sink error to surface")
	}
	// After the first failure every further write is a no-op returning the
	// same error, without touching the sink again.
	writesAtFailure := fw.writes
	if err2 := nw.WriteTriple(triples[0]); !errors.Is(err2, err) {
		t.Errorf("sticky error not returned: %v", err2)
	}
	if err2 := nw.Flush(); !errors.Is(err2, err) {
		t.Errorf("Flush after failure: %v", err2)
	}
	if fw.writes != writesAtFailure {
		t.Errorf("writer touched the failed sink again (%d -> %d writes)", writesAtFailure, fw.writes)
	}
	if nw.Err() == nil {
		t.Error("Err must report the sticky error")
	}
}

func TestNTriplesWriterEmpty(t *testing.T) {
	var sb strings.Builder
	nw := turtle.NewNTriplesWriter(&sb)
	if err := nw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 || nw.Count() != 0 {
		t.Errorf("empty writer produced %d bytes, count %d", sb.Len(), nw.Count())
	}
}
