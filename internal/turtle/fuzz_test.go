package turtle

import (
	"testing"

	"shaclfrag/internal/rdf"
)

// roundTrip parses input and, if it parses, asserts the
// parse → FormatNTriples → parse cycle is lossless and a fixed point.
// Inputs that fail to parse are out of scope — the property under test is
// that nothing the parser ACCEPTS can be mangled by the serializer.
func roundTrip(t *testing.T, input string) {
	t.Helper()
	ts, err := ParseTriples(input)
	if err != nil {
		return
	}
	out := FormatNTriples(ts)
	ts2, err := ParseTriples(out)
	if err != nil {
		t.Fatalf("serialized form does not re-parse: %v\ninput:      %q\nserialized: %q", err, input, out)
	}
	if len(ts2) != len(ts) {
		t.Fatalf("round-trip changed triple count %d → %d\ninput:      %q\nserialized: %q", len(ts), len(ts2), input, out)
	}
	for i := range ts {
		if ts[i] != ts2[i] {
			t.Fatalf("round-trip changed triple %d:\n  was %#v\n  now %#v\ninput:      %q\nserialized: %q",
				i, ts[i], ts2[i], input, out)
		}
	}
	// And serialization of the re-parse is a fixed point.
	if out2 := FormatNTriples(ts2); out2 != out {
		t.Fatalf("serialization is not a fixed point:\n  first  %q\n  second %q", out, out2)
	}
}

// FuzzParseSerialize fuzzes the parse/serialize round trip. The seeds pin
// the historically fragile corners: control characters and escapes, quote
// runs at the end of long strings, the numeric and boolean shorthands,
// language-tag case, and @prefix-as-language-tag.
func FuzzParseSerialize(f *testing.F) {
	for _, seed := range []string{
		`<http://a> <http://b> <http://c> .`,
		`<http://a> <http://b> "plain" .`,
		"<http://a> <http://b> \"tab\\there\\nand\\rthere\" .",
		"<http://a> <http://b> \"\\u0007bell \\u0000nul \\u001Besc\" .",
		"<http://a> <http://b> \"\\b\\f\" .",
		`<http://a> <http://b> "backslash \\ quote \" done" .`,
		"<http://a> <http://b> \"\"\"long with \" one and \"\" two\"\"\" .",
		`<http://a> <http://b> """ends in quote"""" .`,
		`<http://a> <http://b> """""""" .`,
		"<http://a> <http://b> '''single-quoted long''' .",
		"<http://a> <http://b> \"\"\"line\nbreak\"\"\" .",
		`@prefix ex: <http://ex/> . ex:a ex:b 1.5, -2, +07, 6e7, 1.0E-3, true, false .`,
		`<http://a> <http://b> "chat"@EN-us .`,
		`<http://a> <http://b> "x"@PREFIX .`,
		`<http://a> <http://b> "y"@base .`,
		`<http://a> <http://b> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		"@base <http://base/> . <#frag> <http://p> \"x\" .",
		`_:b1 <http://p> [ <http://q> ( 1 2 3 ) ] .`,
		`<http://a> <http://b> "snow\u2603man ☃" .`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		roundTrip(t, input)
	})
}

// TestRoundTripRegressions pins the specific divergences the fuzz target
// exists to guard, as named deterministic cases.
func TestRoundTripRegressions(t *testing.T) {
	t.Run("long string quote runs", func(t *testing.T) {
		ts, err := ParseTriples(`<http://a> <http://b> """x"""" .`)
		if err != nil {
			t.Fatal(err)
		}
		if want := rdf.NewString(`x"`); ts[0].O != want {
			t.Fatalf("got %#v, want %#v", ts[0].O, want)
		}
		ts, err = ParseTriples(`<http://a> <http://b> """""x""" .`)
		if err != nil {
			t.Fatal(err)
		}
		if want := rdf.NewString(`""x`); ts[0].O != want {
			t.Fatalf("got %#v, want %#v", ts[0].O, want)
		}
	})
	t.Run("control characters escape", func(t *testing.T) {
		term := rdf.NewString("\u0007a\bb\fc\u0000")
		roundTrip(t, FormatNTriples([]rdf.Triple{
			{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://b"), O: term},
		}))
	})
	t.Run("invalid UTF-8 rejected", func(t *testing.T) {
		for _, bad := range []string{
			"<http://a> <http://b> \"\xff\" .",
			"<http://a> <http://b> \"\"\"\xc3\x28\"\"\" .",
			"<http://a\xff> <http://b> \"x\" .",
		} {
			if _, err := ParseTriples(bad); err == nil {
				t.Errorf("invalid UTF-8 accepted: %q", bad)
			}
		}
	})
	t.Run("lang tag keywords and case", func(t *testing.T) {
		ts, err := ParseTriples(`<http://a> <http://b> "x"@PREFIX, "y"@Base, "z"@EN-us .`)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range []rdf.Term{
			rdf.NewLangString("x", "prefix"),
			rdf.NewLangString("y", "base"),
			rdf.NewLangString("z", "en-us"),
		} {
			if ts[i].O != want {
				t.Errorf("object %d: got %#v, want %#v", i, ts[i].O, want)
			}
		}
		roundTrip(t, `<http://a> <http://b> "x"@PREFIX .`)
	})
}
