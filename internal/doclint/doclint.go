// Package doclint statically checks the repository's markdown
// documentation against the code it describes. Two defect classes rot
// silently as a codebase grows and are cheap to gate in CI:
//
//   - intra-repo links: a renamed or deleted file (or section heading)
//     leaves `[text](path#anchor)` references dangling;
//   - documented flags: a `-flag` mentioned in running prose or a flag
//     table survives the flag's removal from the command that owned it;
//   - documented subcommands: a `cmd sub` invocation survives the
//     subcommand's rename or removal from the command's dispatch switch.
//
// External links (anything with a URL scheme) are out of scope — their
// liveness is not this repository's invariant. Fenced code blocks are
// skipped entirely for link checking (a markdown link inside a code
// sample is not a link), while flag tokens are checked only inside
// inline code spans, where the documentation's flag tables and prose
// keep them by convention.
package doclint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Finding is one documentation defect, positioned for editor jumps.
type Finding struct {
	File    string // path relative to the lint root
	Line    int    // 1-based
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s", f.File, f.Line, f.Message)
}

// linkRe matches inline markdown links and images: [text](target) with
// an optional "title". Reference-style links are not used in this repo.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// Links verifies every intra-repo markdown link in files (paths
// relative to root): the target file must exist, and a #fragment into a
// markdown file must name one of its headings (GitHub slug rules).
func Links(root string, files []string) []Finding {
	var findings []Finding
	headings := map[string]map[string]bool{} // md path → slug set
	for _, file := range files {
		data, err := os.ReadFile(filepath.Join(root, file))
		if err != nil {
			findings = append(findings, Finding{File: file, Message: err.Error()})
			continue
		}
		fenced := false
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				fenced = !fenced
				continue
			}
			if fenced {
				continue
			}
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				path, frag, _ := strings.Cut(target, "#")
				rel := file // anchor-only links point into the same file
				if path != "" {
					rel = filepath.Join(filepath.Dir(file), path)
					if _, err := os.Stat(filepath.Join(root, rel)); err != nil {
						findings = append(findings, Finding{File: file, Line: i + 1,
							Message: fmt.Sprintf("broken link %q: no file %s", target, rel)})
						continue
					}
				}
				if frag == "" || !strings.HasSuffix(rel, ".md") {
					continue
				}
				slugs, ok := headings[rel]
				if !ok {
					slugs = headingSlugs(filepath.Join(root, rel))
					headings[rel] = slugs
				}
				if !slugs[frag] {
					findings = append(findings, Finding{File: file, Line: i + 1,
						Message: fmt.Sprintf("broken link %q: no heading #%s in %s", target, frag, rel)})
				}
			}
		}
	}
	return findings
}

// headingSlugs returns the GitHub-style anchor slugs of every markdown
// heading in the file (missing or unreadable files yield an empty set —
// the file-existence check has already reported those).
func headingSlugs(path string) map[string]bool {
	slugs := map[string]bool{}
	data, err := os.ReadFile(path)
	if err != nil {
		return slugs
	}
	fenced := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if !strings.HasPrefix(text, " ") {
			continue
		}
		slugs[slugify(strings.TrimSpace(text))] = true
	}
	return slugs
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// spaces to hyphens, punctuation dropped (hyphens and underscores
// kept). Good enough for the ASCII-with-punctuation headings this
// repository uses; duplicate-heading -1 suffixes are not modeled.
func slugify(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r == ' ' || r == '\t':
			b.WriteByte('-')
		case r == '-' || r == '_',
			'a' <= r && r <= 'z', '0' <= r && r <= '9', r > 127:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// flagDefRe matches flag definitions in Go source: method calls like
// flag.String("name", …) / fs.Bool("name", …) / flag.Func("name", …).
var flagDefRe = regexp.MustCompile(`\.(Bool|Int|Int64|Uint|Uint64|Float64|String|Duration|Func|Var)\(\s*"([a-zA-Z0-9-]+)"`)

// DefinedFlags scans every non-test Go file under root/cmdDir for flag
// definitions and returns the set of defined flag names — the ground
// truth the documentation is checked against.
func DefinedFlags(root, cmdDir string) (map[string]bool, error) {
	defined := map[string]bool{}
	srcs, err := filepath.Glob(filepath.Join(root, cmdDir, "*", "*.go"))
	if err != nil {
		return nil, err
	}
	for _, src := range srcs {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		data, err := os.ReadFile(src)
		if err != nil {
			return nil, err
		}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(data), -1) {
			defined[m[2]] = true
		}
	}
	return defined, nil
}

// toolFlags are flags of the Go toolchain (and test binaries) that the
// documentation legitimately mentions without this repo defining them.
var toolFlags = map[string]bool{
	"bench": true, "benchmem": true, "benchtime": true, "count": true,
	"run": true, "race": true, "short": true, "fuzz": true,
	"fuzztime": true, "cover": true, "coverprofile": true,
	"cpuprofile": true, "memprofile": true, "update": true, "v": true,
}

// spanRe matches inline code spans; flagTokRe finds flag-like tokens
// inside one (leading position or after whitespace, so `X-Epoch` and
// negative numbers don't match).
var (
	spanRe    = regexp.MustCompile("`([^`]+)`")
	flagTokRe = regexp.MustCompile(`(?:^|\s)-([a-z][a-z0-9]*(?:-[a-z0-9]+)*)`)
)

// Flags reports every `-flag` token documented in an inline code span
// of files that no command defines (per defined, from DefinedFlags) and
// that is not a known Go toolchain flag.
func Flags(root string, files []string, defined map[string]bool) []Finding {
	var findings []Finding
	for _, file := range files {
		data, err := os.ReadFile(filepath.Join(root, file))
		if err != nil {
			findings = append(findings, Finding{File: file, Message: err.Error()})
			continue
		}
		fenced := false
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				fenced = !fenced
				continue
			}
			if fenced {
				continue
			}
			for _, span := range spanRe.FindAllStringSubmatch(line, -1) {
				for _, tok := range flagTokRe.FindAllStringSubmatch(span[1], -1) {
					if name := tok[1]; !defined[name] && !toolFlags[name] {
						findings = append(findings, Finding{File: file, Line: i + 1,
							Message: fmt.Sprintf("documented flag -%s is not defined by any command", name)})
					}
				}
			}
		}
	}
	return findings
}

// subcmdArmRe matches string dispatch arms in Go source — the whole
// alternative list of a case like `case "-h", "--help", "help":` — and
// subcmdNameRe then extracts the subcommand-shaped strings from it.
// Quoted strings with characters outside [a-z0-9-] (flag aliases like
// "-h", mode values with dots) are not subcommand names and don't
// match the second pass.
var (
	subcmdArmRe  = regexp.MustCompile(`case\s+("[^"\n]*"(?:\s*,\s*"[^"\n]*")*)\s*:`)
	subcmdNameRe = regexp.MustCompile(`"([a-z][a-z0-9-]*)"`)
)

// DefinedSubcommands scans every non-test Go file under root/cmdDir and
// returns, per command (its directory's base name), the set of
// subcommand names its dispatch switch accepts. Commands whose sources
// contain no string case-arms are omitted: they take flags only, and a
// word after their name in documentation is an operand, not a
// subcommand. The text-level scan over-approximates (string switches in
// helpers count too, like mode-flag values) — which can only suppress
// findings, never invent them, the same trade DefinedFlags makes.
func DefinedSubcommands(root, cmdDir string) (map[string]map[string]bool, error) {
	defined := map[string]map[string]bool{}
	srcs, err := filepath.Glob(filepath.Join(root, cmdDir, "*", "*.go"))
	if err != nil {
		return nil, err
	}
	for _, src := range srcs {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		data, err := os.ReadFile(src)
		if err != nil {
			return nil, err
		}
		cmd := filepath.Base(filepath.Dir(src))
		for _, arm := range subcmdArmRe.FindAllStringSubmatch(string(data), -1) {
			for _, m := range subcmdNameRe.FindAllStringSubmatch(arm[1], -1) {
				if defined[cmd] == nil {
					defined[cmd] = map[string]bool{}
				}
				defined[cmd][m[1]] = true
			}
		}
	}
	return defined, nil
}

// Subcommands reports every `cmd sub` invocation documented in an
// inline code span where cmd dispatches on subcommands (it has an entry
// in defined, from DefinedSubcommands) but does not define sub. Like
// the flag check, only inline code spans are scanned — prose such as
// "shaclfrag and its server" never looks like an invocation there.
func Subcommands(root string, files []string, defined map[string]map[string]bool) []Finding {
	type matcher struct {
		cmd  string
		re   *regexp.Regexp
		subs map[string]bool
	}
	var matchers []matcher
	for cmd, subs := range defined {
		// The command name may appear bare or as a path (./cmd/shaclfrag,
		// ./bin/shaclfrag); the word after it is the claimed subcommand.
		re := regexp.MustCompile(`(?:^|[\s/])` + regexp.QuoteMeta(cmd) + `\s+([a-z][a-z0-9-]*)`)
		matchers = append(matchers, matcher{cmd: cmd, re: re, subs: subs})
	}
	sort.Slice(matchers, func(i, j int) bool { return matchers[i].cmd < matchers[j].cmd })

	var findings []Finding
	for _, file := range files {
		data, err := os.ReadFile(filepath.Join(root, file))
		if err != nil {
			findings = append(findings, Finding{File: file, Message: err.Error()})
			continue
		}
		fenced := false
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				fenced = !fenced
				continue
			}
			if fenced {
				continue
			}
			for _, span := range spanRe.FindAllStringSubmatch(line, -1) {
				for _, m := range matchers {
					for _, tok := range m.re.FindAllStringSubmatch(span[1], -1) {
						if sub := tok[1]; !m.subs[sub] {
							findings = append(findings, Finding{File: file, Line: i + 1,
								Message: fmt.Sprintf("documented subcommand %q is not defined by %s", sub, m.cmd)})
						}
					}
				}
			}
		}
	}
	return findings
}
