package doclint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func messages(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String() + "\n")
	}
	return b.String()
}

func TestLinks(t *testing.T) {
	root := t.TempDir()
	write(t, root, "docs/GUIDE.md", "# Guide\n\n## Deep Dive\n\ntext\n")
	write(t, root, "README.md", strings.Join([]string{
		"# Top",
		"[ok](docs/GUIDE.md)",
		"[ok anchor](docs/GUIDE.md#deep-dive)",
		"[self](#top)",
		"[external](https://example.com/missing.md) stays unchecked",
		"[gone](docs/MISSING.md)",
		"[bad anchor](docs/GUIDE.md#nope)",
		"[bad self](#nothing)",
		"```",
		"[inside a fence](docs/ALSO_MISSING.md)",
		"```",
	}, "\n"))
	got := Links(root, []string{"README.md", "docs/GUIDE.md"})
	if len(got) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(got), messages(got))
	}
	for i, want := range []struct {
		line int
		frag string
	}{{6, "docs/MISSING.md"}, {7, "#nope"}, {8, "#nothing"}} {
		if got[i].Line != want.line || !strings.Contains(got[i].Message, want.frag) {
			t.Errorf("finding %d = %s, want line %d mentioning %s", i, got[i], want.line, want.frag)
		}
	}
	// Relative resolution is from the linking file's directory.
	write(t, root, "docs/OTHER.md", "[up](../README.md#top)\n[upbad](../GONE.md)\n")
	got = Links(root, []string{"docs/OTHER.md"})
	if len(got) != 1 || !strings.Contains(got[0].Message, "GONE.md") {
		t.Fatalf("relative resolution: %s", messages(got))
	}
}

func TestSlugify(t *testing.T) {
	for in, want := range map[string]string{
		"Planner and plan-cache metrics": "planner-and-plan-cache-metrics",
		"Reading the planner metrics":    "reading-the-planner-metrics",
		"What `-flags` do: a guide!":     "what--flags-do-a-guide",
		"Frag(G, H) über alles":          "fragg-h-über-alles",
	} {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDefinedFlags(t *testing.T) {
	root := t.TempDir()
	write(t, root, "cmd/tool/main.go", `package main
import "flag"
func main() {
	flag.String("data", "", "data file")
	fs := flag.NewFlagSet("sub", flag.ExitOnError)
	fs.Bool("dry-run", false, "plan only")
	flag.Func("meta", "kv", func(string) error { return nil })
}
`)
	write(t, root, "cmd/tool/main_test.go", `package main
import "flag"
var _ = flag.String("testonly", "", "")
`)
	defined, err := DefinedFlags(root, "cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"data", "dry-run", "meta"} {
		if !defined[want] {
			t.Errorf("flag %q not collected: %v", want, defined)
		}
	}
	if defined["testonly"] {
		t.Errorf("test-file flag collected: %v", defined)
	}
}

func TestFlags(t *testing.T) {
	root := t.TempDir()
	write(t, root, "DOC.md", strings.Join([]string{
		"Use `-data file.ttl` and `tool -dry-run` together.",
		"Run `go test -race -count=1` first.",
		"The `-vanished` flag is long gone.",
		"Headers like `X-Epoch` and spans like `a - b` are not flags.",
		"```",
		"curl -s http://x/   # shell flags in fences are not checked",
		"```",
	}, "\n"))
	defined := map[string]bool{"data": true, "dry-run": true}
	got := Flags(root, []string{"DOC.md"}, defined)
	if len(got) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(got), messages(got))
	}
	if got[0].Line != 3 || !strings.Contains(got[0].Message, "-vanished") {
		t.Errorf("finding = %s, want line 3 about -vanished", got[0])
	}
}

func TestDefinedSubcommands(t *testing.T) {
	root := t.TempDir()
	write(t, root, "cmd/tool/main.go", `package main
import "os"
func main() {
	switch os.Args[1] {
	case "fragment":
	case "schema-diff":
	case "-h", "--help", "help":
	}
}
`)
	write(t, root, "cmd/tool/main_test.go", `package main
// case "ghost": in a test file must not count
`)
	write(t, root, "cmd/flat/main.go", `package main
func main() {} // no dispatch switch: flat commands are exempt
`)
	defined, err := DefinedSubcommands(root, "cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fragment", "schema-diff", "help"} {
		if !defined["tool"][want] {
			t.Errorf("subcommand %q not collected: %v", want, defined)
		}
	}
	if defined["tool"]["ghost"] {
		t.Errorf("test-file case arm collected: %v", defined)
	}
	if _, ok := defined["flat"]; ok {
		t.Errorf("command without dispatch switch should be omitted: %v", defined)
	}
}

func TestSubcommands(t *testing.T) {
	root := t.TempDir()
	write(t, root, "DOC.md", strings.Join([]string{
		"Run `tool fragment -data x.ttl` or `./cmd/tool schema-diff a b`.",
		"The `tool shcema-diff` typo must be flagged.",
		"Prose like tool fragment outside a span is ignored.",
		"A flat command's operands are fine: `flat anything.ttl`.",
		"```",
		"tool vanished   # fences are not checked",
		"```",
	}, "\n"))
	defined := map[string]map[string]bool{
		"tool": {"fragment": true, "schema-diff": true},
	}
	got := Subcommands(root, []string{"DOC.md"}, defined)
	if len(got) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(got), messages(got))
	}
	if got[0].Line != 2 || !strings.Contains(got[0].Message, "shcema-diff") {
		t.Errorf("finding = %s, want line 2 about shcema-diff", got[0])
	}
}

// TestRepoDocsClean lints this repository's actual documentation — the
// same invocation `make docs-check` gates on — so a broken link or a
// stale flag reference fails `go test` too, with positions.
func TestRepoDocsClean(t *testing.T) {
	root := filepath.Join("..", "..")
	files := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, rel)
	}
	defined, err := DefinedFlags(root, "cmd")
	if err != nil {
		t.Fatal(err)
	}
	if len(defined) == 0 {
		t.Fatal("no flags found under cmd/ — scan is broken")
	}
	subs, err := DefinedSubcommands(root, "cmd")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs["shaclfrag"]) == 0 {
		t.Fatal("no shaclfrag subcommands found under cmd/ — scan is broken")
	}
	findings := append(Links(root, files), Flags(root, files, defined)...)
	findings = append(findings, Subcommands(root, files, subs)...)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
