package paths

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/turtle"
)

const base = "http://x/"

func iri(s string) rdf.Term { return rdf.NewIRI(base + s) }

func mustGraph(t *testing.T, src string) *rdfgraph.Graph {
	t.Helper()
	g, err := turtle.Parse("@prefix ex: <" + base + "> .\n" + src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func evalTerms(t *testing.T, g *rdfgraph.Graph, expr string, from string) map[string]bool {
	t.Helper()
	e, err := Parse(expr, base)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool)
	for _, term := range Eval(e, g, iri(from)) {
		out[term.Value] = true
	}
	return out
}

func TestEvalProp(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b , ex:c . ex:b ex:p ex:d .`)
	got := evalTerms(t, g, "p", "a")
	if len(got) != 2 || !got[base+"b"] || !got[base+"c"] {
		t.Errorf("Eval(p, a) = %v", got)
	}
}

func TestEvalInverse(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:c ex:p ex:b .`)
	got := evalTerms(t, g, "^p", "b")
	if len(got) != 2 || !got[base+"a"] || !got[base+"c"] {
		t.Errorf("Eval(^p, b) = %v", got)
	}
}

func TestEvalSeq(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:q ex:c . ex:a ex:q ex:z .`)
	got := evalTerms(t, g, "p/q", "a")
	if len(got) != 1 || !got[base+"c"] {
		t.Errorf("Eval(p/q, a) = %v", got)
	}
}

func TestEvalAlt(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:a ex:q ex:c .`)
	got := evalTerms(t, g, "p|q", "a")
	if len(got) != 2 || !got[base+"b"] || !got[base+"c"] {
		t.Errorf("Eval(p|q, a) = %v", got)
	}
}

func TestEvalStarIncludesSelf(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:p ex:c .`)
	got := evalTerms(t, g, "p*", "a")
	if len(got) != 3 || !got[base+"a"] || !got[base+"b"] || !got[base+"c"] {
		t.Errorf("Eval(p*, a) = %v", got)
	}
	// Star includes the source even for nodes not in the graph at all.
	got = evalTerms(t, g, "p*", "isolated")
	if len(got) != 1 || !got[base+"isolated"] {
		t.Errorf("Eval(p*, isolated) = %v", got)
	}
}

func TestEvalStarCycle(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:p ex:a . ex:b ex:p ex:c .`)
	got := evalTerms(t, g, "p*", "a")
	if len(got) != 3 {
		t.Errorf("Eval(p*, a) over cycle = %v", got)
	}
}

func TestEvalZeroOrOne(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	got := evalTerms(t, g, "p?", "a")
	if len(got) != 2 || !got[base+"a"] || !got[base+"b"] {
		t.Errorf("Eval(p?, a) = %v", got)
	}
}

func TestEvalInverseOfSeq(t *testing.T) {
	// (p/q)⁻ from c should reach a when a -p-> b -q-> c.
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:q ex:c .`)
	got := evalTerms(t, g, "(p/q)-", "c")
	if len(got) != 1 || !got[base+"a"] {
		t.Errorf("Eval((p/q)-, c) = %v", got)
	}
	// Double inversion cancels.
	got = evalTerms(t, g, "((p/q)-)-", "a")
	if len(got) != 1 || !got[base+"c"] {
		t.Errorf("Eval(((p/q)-)-, a) = %v", got)
	}
}

func TestEvalMissingProperty(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	if got := evalTerms(t, g, "nosuch", "a"); len(got) != 0 {
		t.Errorf("missing property should evaluate empty, got %v", got)
	}
	// But nosuch* still contains the identity pair.
	if got := evalTerms(t, g, "nosuch*", "a"); len(got) != 1 || !got[base+"a"] {
		t.Errorf("nosuch* should contain identity, got %v", got)
	}
}

func TestTraceSingleEdge(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:a ex:p ex:c .`)
	ts := Trace(P(base+"p"), g, iri("a"), iri("b"))
	if len(ts) != 1 || ts[0] != rdf.T(iri("a"), iri("p"), iri("b")) {
		t.Errorf("Trace(p, a, b) = %v", ts)
	}
}

func TestTraceDiamond(t *testing.T) {
	// Two disjoint p/q paths from a to d; both must be traced.
	g := mustGraph(t, `
ex:a ex:p ex:b1 . ex:b1 ex:q ex:d .
ex:a ex:p ex:b2 . ex:b2 ex:q ex:d .
ex:a ex:p ex:other .
`)
	ts := Trace(MustParse("p/q", base), g, iri("a"), iri("d"))
	if len(ts) != 4 {
		t.Fatalf("Trace(p/q, a, d) = %v, want 4 triples", ts)
	}
	for _, tr := range ts {
		if tr.O == iri("other") {
			t.Errorf("dead-end edge must not be traced: %v", ts)
		}
	}
}

func TestTraceStarZeroLength(t *testing.T) {
	// paths(E*, G, a, a) via zero length traces nothing, but a loop back to
	// a traces the whole cycle.
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	ts := Trace(Star{X: P(base + "p")}, g, iri("a"), iri("a"))
	if len(ts) != 0 {
		t.Errorf("zero-length star trace should be empty, got %v", ts)
	}
	g2 := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:p ex:a . ex:z ex:p ex:a .`)
	ts2 := Trace(Star{X: P(base + "p")}, g2, iri("a"), iri("a"))
	if len(ts2) != 2 {
		t.Errorf("cycle trace = %v, want the 2 cycle edges", ts2)
	}
}

func TestTraceStarThroughCycle(t *testing.T) {
	// a -p-> b -p-> c with a detour cycle b -p-> x -p-> b. All these edges
	// lie on *some* accepting p* walk from a to c.
	g := mustGraph(t, `
ex:a ex:p ex:b . ex:b ex:p ex:c .
ex:b ex:p ex:x . ex:x ex:p ex:b .
ex:dead ex:p ex:deader .
`)
	ts := Trace(Star{X: P(base + "p")}, g, iri("a"), iri("c"))
	if len(ts) != 4 {
		t.Fatalf("Trace(p*, a, c) = %v, want 4 triples", ts)
	}
	for _, tr := range ts {
		if tr.S == iri("dead") {
			t.Errorf("disconnected edge traced: %v", tr)
		}
	}
}

func TestTraceInverse(t *testing.T) {
	g := mustGraph(t, `ex:b ex:p ex:a .`)
	ts := Trace(Inv(P(base+"p")), g, iri("a"), iri("b"))
	// The traced graph contains the underlying forward triple.
	if len(ts) != 1 || ts[0] != rdf.T(iri("b"), iri("p"), iri("a")) {
		t.Errorf("Trace(^p, a, b) = %v", ts)
	}
}

func TestTraceUnionMergesTargets(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:a ex:p ex:c . ex:a ex:p ex:d .`)
	ev := NewEvaluator(P(base+"p"), g)
	targets := []rdfgraph.ID{g.TermID(iri("b")), g.TermID(iri("c"))}
	ts := ev.TraceUnion(g.TermID(iri("a")), targets)
	if len(ts) != 2 {
		t.Errorf("TraceUnion = %v, want 2 triples", ts)
	}
}

func TestTraceNoPath(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	if ts := Trace(P(base+"p"), g, iri("b"), iri("a")); len(ts) != 0 {
		t.Errorf("no-path trace should be empty, got %v", ts)
	}
}

// naiveRelation computes ⟦E⟧G over the node set by structural recursion and
// fixpoint, as a test oracle for the NFA evaluator.
func naiveRelation(e Expr, g *rdfgraph.Graph, nodes []rdfgraph.ID) map[[2]rdfgraph.ID]bool {
	rel := make(map[[2]rdfgraph.ID]bool)
	switch x := e.(type) {
	case Prop:
		p := g.LookupTerm(rdf.NewIRI(x.IRI))
		if p == rdfgraph.NoID {
			return rel
		}
		for _, edge := range g.EdgesByPredicate(p) {
			rel[[2]rdfgraph.ID{edge.S, edge.O}] = true
		}
	case Inverse:
		for pair := range naiveRelation(x.X, g, nodes) {
			rel[[2]rdfgraph.ID{pair[1], pair[0]}] = true
		}
	case Seq:
		left := naiveRelation(x.Left, g, nodes)
		right := naiveRelation(x.Right, g, nodes)
		for l := range left {
			for r := range right {
				if l[1] == r[0] {
					rel[[2]rdfgraph.ID{l[0], r[1]}] = true
				}
			}
		}
	case Alt:
		for pair := range naiveRelation(x.Left, g, nodes) {
			rel[pair] = true
		}
		for pair := range naiveRelation(x.Right, g, nodes) {
			rel[pair] = true
		}
	case Star:
		inner := naiveRelation(x.X, g, nodes)
		for _, n := range nodes {
			rel[[2]rdfgraph.ID{n, n}] = true
		}
		for pair := range inner {
			rel[pair] = true
		}
		for changed := true; changed; {
			changed = false
			for a := range rel {
				for b := range inner {
					if a[1] == b[0] {
						k := [2]rdfgraph.ID{a[0], b[1]}
						if !rel[k] {
							rel[k] = true
							changed = true
						}
					}
				}
			}
		}
	case ZeroOrOne:
		for _, n := range nodes {
			rel[[2]rdfgraph.ID{n, n}] = true
		}
		for pair := range naiveRelation(x.X, g, nodes) {
			rel[pair] = true
		}
	}
	return rel
}

func randomExpr(rng *rand.Rand, depth int) Expr {
	props := []string{"p", "q", "r"}
	if depth <= 0 || rng.Intn(3) == 0 {
		return P(base + props[rng.Intn(len(props))])
	}
	switch rng.Intn(5) {
	case 0:
		return Inv(randomExpr(rng, depth-1))
	case 1:
		return Seq{Left: randomExpr(rng, depth-1), Right: randomExpr(rng, depth-1)}
	case 2:
		return Alt{Left: randomExpr(rng, depth-1), Right: randomExpr(rng, depth-1)}
	case 3:
		return Star{X: randomExpr(rng, depth-1)}
	default:
		return ZeroOrOne{X: randomExpr(rng, depth-1)}
	}
}

func randomGraph(rng *rand.Rand, nodes, edges int) *rdfgraph.Graph {
	g := rdfgraph.New()
	props := []string{"p", "q", "r"}
	for i := 0; i < edges; i++ {
		s := iri(string(rune('a' + rng.Intn(nodes))))
		o := iri(string(rune('a' + rng.Intn(nodes))))
		p := iri(props[rng.Intn(len(props))])
		g.Add(rdf.T(s, p, o))
	}
	return g
}

// Property: the NFA evaluator agrees with the naive fixpoint semantics on
// random graphs and random expressions.
func TestEvalAgainstNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 5, 8)
		e := randomExpr(rng, 3)
		nodes := g.NodeIDs()
		oracle := naiveRelation(e, g, nodes)
		ev := NewEvaluator(e, g)
		for _, a := range nodes {
			got := make(map[rdfgraph.ID]bool)
			for _, b := range ev.Eval(a) {
				got[b] = true
			}
			for _, b := range nodes {
				want := oracle[[2]rdfgraph.ID{a, b}]
				if got[b] != want {
					t.Fatalf("trial %d: expr %s: (%v,%v): NFA=%v oracle=%v\ngraph:\n%s",
						trial, e, g.Term(a), g.Term(b), got[b], want, turtle.FormatGraph(g))
				}
			}
		}
	}
}

// Property (Proposition 3.1): for F = graph(paths(E,G,a,b)),
// (a,b) ∈ ⟦E⟧G ⇔ (a,b) ∈ ⟦E⟧F, and F ⊆ G.
func TestTraceProposition31(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		g := randomGraph(rng, 5, 8)
		e := randomExpr(rng, 3)
		ev := NewEvaluator(e, g)
		nodes := g.NodeIDs()
		for _, a := range nodes {
			results := ev.Eval(a)
			for _, b := range results {
				traced := ev.Trace(a, b)
				f := rdfgraph.FromTriples(traced)
				for _, tr := range traced {
					if !g.Has(tr) {
						t.Fatalf("trace produced a triple outside G: %v", tr)
					}
				}
				fa := f.TermID(g.Term(a))
				fb := f.TermID(g.Term(b))
				fev := NewEvaluator(e, f)
				if !fev.Holds(fa, fb) {
					t.Fatalf("trial %d: Prop 3.1 violated for %s from %v to %v\ntrace: %v",
						trial, e, g.Term(a), g.Term(b), traced)
				}
			}
		}
	}
}

func TestParseRendersAndRoundTrips(t *testing.T) {
	cases := []string{
		"p", "^p", "p/q", "p|q", "p*", "p?", "(p/q)*",
		"^(p|q)/r", "p/q/r", "((p-)-)?",
	}
	for _, src := range cases {
		e, err := Parse(src, base)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		rendered := e.String()
		e2, err := Parse(rendered, "")
		if err != nil {
			t.Errorf("re-Parse(%q): %v", rendered, err)
			continue
		}
		if !Equal(e, e2) {
			t.Errorf("round trip %q -> %q changed structure", src, rendered)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(p", "p|", "p/", "<unterminated", "^", "p)q"} {
		if _, err := Parse(src, base); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCanBeEmpty(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"p", false}, {"p*", true}, {"p?", true}, {"p/q", false},
		{"p*/q*", true}, {"p|q*", true}, {"^(p?)", true}, {"p/q*", false},
	}
	for _, c := range cases {
		if got := CanBeEmpty(MustParse(c.src, base)); got != c.want {
			t.Errorf("CanBeEmpty(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestProperties(t *testing.T) {
	e := MustParse("p/(q|^r)*", base)
	props := Properties(e)
	if len(props) != 3 {
		t.Errorf("Properties = %v", props)
	}
	for _, name := range []string{"p", "q", "r"} {
		if _, ok := props[base+name]; !ok {
			t.Errorf("missing property %s", name)
		}
	}
}
