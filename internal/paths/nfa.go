package paths

import (
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// transition is one labeled NFA edge: consume one graph step over predicate
// pred, forward (subject→object) or backward (object→subject).
type transition struct {
	pred rdfgraph.ID
	fwd  bool
	to   int
}

// NFA is a Thompson automaton for a path expression, compiled against a
// particular graph dictionary (predicates are dictionary IDs). A predicate
// absent from the graph gets ID rdfgraph.NoID; its transitions can never
// fire, which is exactly the semantics of a property with no triples.
type NFA struct {
	start, accept int
	eps           [][]int        // state → epsilon successors
	trans         [][]transition // state → labeled transitions
	// reverse adjacency, for backward reachability
	repsilon [][]int
	rtrans   [][]transition // rtrans[q'] holds transitions (pred, fwd, q) arriving at q'
}

// Compile builds the NFA for e against g's dictionary. The graph is only
// used to resolve predicate IRIs to IDs; the NFA does not retain it.
func Compile(e Expr, g rdfgraph.Reader) *NFA {
	b := &nfaBuilder{g: g}
	start, accept := b.build(e)
	n := &NFA{start: start, accept: accept, eps: b.eps, trans: b.trans}
	n.repsilon = make([][]int, len(n.eps))
	n.rtrans = make([][]transition, len(n.eps))
	for q, succs := range n.eps {
		for _, q2 := range succs {
			n.repsilon[q2] = append(n.repsilon[q2], q)
		}
	}
	for q, ts := range n.trans {
		for _, t := range ts {
			n.rtrans[t.to] = append(n.rtrans[t.to], transition{pred: t.pred, fwd: t.fwd, to: q})
		}
	}
	return n
}

type nfaBuilder struct {
	g     rdfgraph.Reader
	eps   [][]int
	trans [][]transition
}

func (b *nfaBuilder) newState() int {
	b.eps = append(b.eps, nil)
	b.trans = append(b.trans, nil)
	return len(b.eps) - 1
}

func (b *nfaBuilder) addEps(from, to int) {
	b.eps[from] = append(b.eps[from], to)
}

func (b *nfaBuilder) build(e Expr) (start, accept int) {
	switch x := e.(type) {
	case Prop:
		s, a := b.newState(), b.newState()
		b.trans[s] = append(b.trans[s], transition{pred: b.g.LookupTerm(rdf.NewIRI(x.IRI)), fwd: true, to: a})
		return s, a
	case Inverse:
		return b.buildInverted(x.X, false)
	case Seq:
		s1, a1 := b.build(x.Left)
		s2, a2 := b.build(x.Right)
		b.addEps(a1, s2)
		return s1, a2
	case Alt:
		s, a := b.newState(), b.newState()
		s1, a1 := b.build(x.Left)
		s2, a2 := b.build(x.Right)
		b.addEps(s, s1)
		b.addEps(s, s2)
		b.addEps(a1, a)
		b.addEps(a2, a)
		return s, a
	case Star:
		s, a := b.newState(), b.newState()
		s1, a1 := b.build(x.X)
		b.addEps(s, s1)
		b.addEps(s, a)
		b.addEps(a1, s1)
		b.addEps(a1, a)
		return s, a
	case ZeroOrOne:
		s, a := b.newState(), b.newState()
		s1, a1 := b.build(x.X)
		b.addEps(s, s1)
		b.addEps(s, a)
		b.addEps(a1, a)
		return s, a
	}
	panic("paths: unknown expression type")
}

// buildInverted builds the automaton for an expression with all step
// directions flipped when invert is false entering an Inverse (double
// inversion cancels). It exploits (E1/E2)⁻ = E2⁻/E1⁻ etc.
func (b *nfaBuilder) buildInverted(e Expr, fwd bool) (start, accept int) {
	switch x := e.(type) {
	case Prop:
		s, a := b.newState(), b.newState()
		b.trans[s] = append(b.trans[s], transition{pred: b.g.LookupTerm(rdf.NewIRI(x.IRI)), fwd: fwd, to: a})
		return s, a
	case Inverse:
		if fwd {
			return b.buildInverted(x.X, false)
		}
		return b.build(x.X)
	case Seq:
		// Reverse the order of the parts.
		s2, a2 := b.buildInverted(x.Right, fwd)
		s1, a1 := b.buildInverted(x.Left, fwd)
		b.addEps(a2, s1)
		return s2, a1
	case Alt:
		s, a := b.newState(), b.newState()
		s1, a1 := b.buildInverted(x.Left, fwd)
		s2, a2 := b.buildInverted(x.Right, fwd)
		b.addEps(s, s1)
		b.addEps(s, s2)
		b.addEps(a1, a)
		b.addEps(a2, a)
		return s, a
	case Star:
		s, a := b.newState(), b.newState()
		s1, a1 := b.buildInverted(x.X, fwd)
		b.addEps(s, s1)
		b.addEps(s, a)
		b.addEps(a1, s1)
		b.addEps(a1, a)
		return s, a
	case ZeroOrOne:
		s, a := b.newState(), b.newState()
		s1, a1 := b.buildInverted(x.X, fwd)
		b.addEps(s, s1)
		b.addEps(s, a)
		b.addEps(a1, a)
		return s, a
	}
	panic("paths: unknown expression type")
}

// NumStates returns the number of NFA states (for testing and sizing).
func (n *NFA) NumStates() int { return len(n.eps) }
