package paths

import (
	"slices"
	"sort"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// productState is a node of the product of the NFA with the graph.
type productState struct {
	node  rdfgraph.ID
	state int
}

// Evaluator evaluates one compiled path expression against one graph. It is
// cheap to construct; reuse one per (expression, graph) pair when evaluating
// many source nodes, as fragment computation does.
type Evaluator struct {
	g   rdfgraph.Reader
	nfa *NFA
	// memo caches per-source result node sets for repeated evaluation.
	memo map[rdfgraph.ID][]rdfgraph.ID
	// atomic short-circuits the product-automaton machinery for the two
	// overwhelmingly common cases, a property p and its inverse p⁻, whose
	// evaluation and tracing are single index lookups.
	atomic    bool
	atomicFwd bool
	atomicID  rdfgraph.ID
	// fwdCache memoizes forward product searches per source node, so that
	// tracing a neighborhood reuses the search its conformance evaluation
	// already ran. The cache is budgeted: star-heavy expressions on large
	// graphs can have per-source reaches near the whole graph, in which
	// case caching stops and searches are recomputed.
	fwdCache    map[rdfgraph.ID]map[productState]struct{}
	cachedState int
	// scratch buffers reused across backwardTrace calls.
	bwdReach    map[productState]struct{}
	bwdStack    []productState
	edgeScratch []productEdge
}

// maxCachedStates bounds the total product states retained across all
// cached forward searches of one evaluator.
const maxCachedStates = 1 << 20

// NewEvaluator compiles e against g.
func NewEvaluator(e Expr, g rdfgraph.Reader) *Evaluator {
	ev := &Evaluator{g: g, memo: make(map[rdfgraph.ID][]rdfgraph.ID)}
	switch x := e.(type) {
	case Prop:
		ev.atomic, ev.atomicFwd = true, true
		ev.atomicID = g.LookupTerm(rdf.NewIRI(x.IRI))
	case Inverse:
		if p, ok := x.X.(Prop); ok {
			ev.atomic, ev.atomicFwd = true, false
			ev.atomicID = g.LookupTerm(rdf.NewIRI(p.IRI))
		}
	}
	if !ev.atomic {
		ev.nfa = Compile(e, g)
	}
	return ev
}

// Eval returns ⟦E⟧G(a): the sorted set of nodes b with (a, b) ∈ ⟦E⟧G.
// Results are memoized per source node.
func (ev *Evaluator) Eval(a rdfgraph.ID) []rdfgraph.ID {
	if res, ok := ev.memo[a]; ok {
		return res
	}
	if ev.atomic {
		var out []rdfgraph.ID
		if ev.atomicID != rdfgraph.NoID {
			if ev.atomicFwd {
				ev.g.Objects(a, ev.atomicID, func(o rdfgraph.ID) { out = append(out, o) })
			} else {
				ev.g.Subjects(ev.atomicID, a, func(s rdfgraph.ID) { out = append(out, s) })
			}
		}
		slices.Sort(out)
		ev.memo[a] = out
		return out
	}
	reach := ev.cachedForward(a)
	seen := make(map[rdfgraph.ID]struct{})
	var out []rdfgraph.ID
	for ps := range reach {
		if ps.state == ev.nfa.accept {
			if _, dup := seen[ps.node]; !dup {
				seen[ps.node] = struct{}{}
				out = append(out, ps.node)
			}
		}
	}
	slices.Sort(out)
	ev.memo[a] = out
	return out
}

// Holds reports whether (a, b) ∈ ⟦E⟧G.
func (ev *Evaluator) Holds(a, b rdfgraph.ID) bool {
	for _, x := range ev.Eval(a) {
		if x == b {
			return true
		}
	}
	return false
}

// cachedForward returns the forward product reach of a, reusing or filling
// the per-source cache within its state budget.
func (ev *Evaluator) cachedForward(a rdfgraph.ID) map[productState]struct{} {
	if reach, ok := ev.fwdCache[a]; ok {
		return reach
	}
	reach := ev.forward(a)
	if ev.cachedState+len(reach) <= maxCachedStates {
		if ev.fwdCache == nil {
			ev.fwdCache = make(map[rdfgraph.ID]map[productState]struct{})
		}
		ev.fwdCache[a] = reach
		ev.cachedState += len(reach)
	}
	return reach
}

// forward computes the product states reachable from (a, start).
func (ev *Evaluator) forward(a rdfgraph.ID) map[productState]struct{} {
	n := ev.nfa
	reach := make(map[productState]struct{})
	var stack []productState
	push := func(ps productState) {
		if _, ok := reach[ps]; !ok {
			reach[ps] = struct{}{}
			stack = append(stack, ps)
		}
	}
	push(productState{node: a, state: n.start})
	for len(stack) > 0 {
		ps := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range n.eps[ps.state] {
			push(productState{node: ps.node, state: q})
		}
		for _, t := range n.trans[ps.state] {
			if t.pred == rdfgraph.NoID {
				continue
			}
			if t.fwd {
				ev.g.Objects(ps.node, t.pred, func(o rdfgraph.ID) {
					push(productState{node: o, state: t.to})
				})
			} else {
				ev.g.Subjects(t.pred, ps.node, func(s rdfgraph.ID) {
					push(productState{node: s, state: t.to})
				})
			}
		}
	}
	return reach
}

// productEdge is one edge of the product of the NFA with the graph,
// restricted to a forward-reachable set, remembering the graph triple it
// rides on and the step direction of the NFA transition it instantiates.
type productEdge struct {
	from, to productState
	triple   rdfgraph.IDTriple
	fwd      bool
}

// Step identifies one product-automaton transition a traced triple rides
// on: the NFA states it connects, the predicate consumed, and the step
// direction (forward subject→object, or backward through an inverse).
// The atomic fast path (a bare property or its inverse) reports the
// two-state automaton {0 → 1} it is equivalent to.
type Step struct {
	From, To int
	Pred     rdfgraph.ID
	Fwd      bool
}

// backwardTrace emits the graph triple underlying every product edge that
// lies on an accepting walk from the forward source to one of the target
// nodes. It first materializes the product edges *within* the (small)
// forward-reachable set — enumerating only the local out-edges of nodes in
// that set, never the global fan-in of a hub node — and then runs a
// backward search from the accepting target states over the materialized
// reverse adjacency.
func (ev *Evaluator) backwardTrace(targets []rdfgraph.ID, within map[productState]struct{}, emit func(productEdge)) {
	n := ev.nfa
	// Materialize product edges inside the forward set.
	edges := ev.edgeScratch[:0]
	revAdj := make(map[productState][]int32, len(within))
	for ps := range within {
		for _, t := range n.trans[ps.state] {
			if t.pred == rdfgraph.NoID {
				continue
			}
			if t.fwd {
				ev.g.Objects(ps.node, t.pred, func(o rdfgraph.ID) {
					head := productState{node: o, state: t.to}
					if _, ok := within[head]; ok {
						revAdj[head] = append(revAdj[head], int32(len(edges)))
						edges = append(edges, productEdge{
							from: ps, to: head,
							triple: rdfgraph.IDTriple{S: ps.node, P: t.pred, O: o},
							fwd:    true,
						})
					}
				})
			} else {
				ev.g.Subjects(t.pred, ps.node, func(s rdfgraph.ID) {
					head := productState{node: s, state: t.to}
					if _, ok := within[head]; ok {
						revAdj[head] = append(revAdj[head], int32(len(edges)))
						edges = append(edges, productEdge{
							from: ps, to: head,
							triple: rdfgraph.IDTriple{S: s, P: t.pred, O: ps.node},
						})
						// fwd stays false: the edge consumes an inverse step.
					}
				})
			}
		}
	}
	ev.edgeScratch = edges

	// Backward search from the accepting target states.
	if ev.bwdReach == nil {
		ev.bwdReach = make(map[productState]struct{})
	} else {
		clear(ev.bwdReach)
	}
	reach := ev.bwdReach
	stack := ev.bwdStack[:0]
	push := func(ps productState) {
		if _, ok := within[ps]; !ok {
			return
		}
		if _, ok := reach[ps]; !ok {
			reach[ps] = struct{}{}
			stack = append(stack, ps)
		}
	}
	for _, b := range targets {
		push(productState{node: b, state: n.accept})
	}
	for len(stack) > 0 {
		ps := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range n.repsilon[ps.state] {
			push(productState{node: ps.node, state: q})
		}
		for _, ei := range revAdj[ps] {
			e := edges[ei]
			emit(e)
			push(e.from)
		}
	}
	ev.bwdStack = stack
}

// TraceUnionIDs computes ⋃{graph(paths(E, G, a, b)) | b ∈ targets} as
// dictionary-encoded triples: every triple of G lying on some E-path from a
// to one of the target nodes. Neighborhood computation (Table 2) always
// needs exactly such unions.
func (ev *Evaluator) TraceUnionIDs(a rdfgraph.ID, targets []rdfgraph.ID) []rdfgraph.IDTriple {
	if len(targets) == 0 {
		return nil
	}
	if ev.atomic {
		if ev.atomicID == rdfgraph.NoID {
			return nil
		}
		var out []rdfgraph.IDTriple
		for _, b := range targets {
			if ev.atomicFwd {
				if ev.g.HasIDs(a, ev.atomicID, b) {
					out = append(out, rdfgraph.IDTriple{S: a, P: ev.atomicID, O: b})
				}
			} else if ev.g.HasIDs(b, ev.atomicID, a) {
				out = append(out, rdfgraph.IDTriple{S: b, P: ev.atomicID, O: a})
			}
		}
		return out
	}
	fwd := ev.cachedForward(a)
	set := make(map[rdfgraph.IDTriple]struct{})
	ev.backwardTrace(targets, fwd, func(e productEdge) {
		set[e.triple] = struct{}{}
	})
	out := make([]rdfgraph.IDTriple, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	return out
}

// TraceEdges is TraceUnionIDs with attribution: fn receives every traced
// triple together with the product-automaton Step it rides on. A triple on
// several accepting walks is reported once per distinct step; dedup across
// steps is the caller's concern. The triple set visited is exactly the one
// TraceUnionIDs returns for the same (a, targets).
func (ev *Evaluator) TraceEdges(a rdfgraph.ID, targets []rdfgraph.ID, fn func(t rdfgraph.IDTriple, step Step)) {
	if len(targets) == 0 {
		return
	}
	if ev.atomic {
		if ev.atomicID == rdfgraph.NoID {
			return
		}
		step := Step{From: 0, To: 1, Pred: ev.atomicID, Fwd: ev.atomicFwd}
		for _, b := range targets {
			if ev.atomicFwd {
				if ev.g.HasIDs(a, ev.atomicID, b) {
					fn(rdfgraph.IDTriple{S: a, P: ev.atomicID, O: b}, step)
				}
			} else if ev.g.HasIDs(b, ev.atomicID, a) {
				fn(rdfgraph.IDTriple{S: b, P: ev.atomicID, O: a}, step)
			}
		}
		return
	}
	fwd := ev.cachedForward(a)
	type edgeKey struct {
		t rdfgraph.IDTriple
		s Step
	}
	seen := make(map[edgeKey]struct{})
	ev.backwardTrace(targets, fwd, func(e productEdge) {
		step := Step{From: e.from.state, To: e.to.state, Pred: e.triple.P, Fwd: e.fwd}
		k := edgeKey{t: e.triple, s: step}
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		fn(e.triple, step)
	})
}

// TraceUnion is TraceUnionIDs decoded to terms and canonically sorted.
func (ev *Evaluator) TraceUnion(a rdfgraph.ID, targets []rdfgraph.ID) []rdf.Triple {
	ids := ev.TraceUnionIDs(a, targets)
	out := make([]rdf.Triple, 0, len(ids))
	for _, t := range ids {
		out = append(out, rdf.Triple{S: ev.g.Term(t.S), P: ev.g.Term(t.P), O: ev.g.Term(t.O)})
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTriples(out[i], out[j]) < 0 })
	return out
}

// Trace computes graph(paths(E, G, a, b)) for a single target b.
func (ev *Evaluator) Trace(a, b rdfgraph.ID) []rdf.Triple {
	return ev.TraceUnion(a, []rdfgraph.ID{b})
}

// Eval evaluates ⟦E⟧G(a) for a single source term, returning result terms.
// It interns a into g's dictionary if needed (the focus node may be any
// node of N). Convenience wrapper for one-shot use.
func Eval(e Expr, g rdfgraph.Reader, a rdf.Term) []rdf.Term {
	ev := NewEvaluator(e, g)
	ids := ev.Eval(g.TermID(a))
	out := make([]rdf.Term, len(ids))
	for i, id := range ids {
		out[i] = g.Term(id)
	}
	return out
}

// Trace computes graph(paths(E, G, a, b)) for terms; one-shot wrapper.
func Trace(e Expr, g rdfgraph.Reader, a, b rdf.Term) []rdf.Triple {
	ev := NewEvaluator(e, g)
	return ev.Trace(g.TermID(a), g.TermID(b))
}

// AllPairs enumerates ⟦E⟧G restricted to N(G) ∪ {extra sources}: it calls
// fn(a, b) for every pair with a ∈ N(G) and (a, b) ∈ ⟦E⟧G. Used by the
// SPARQL engine for path patterns with an unbound subject.
func (ev *Evaluator) AllPairs(fn func(a, b rdfgraph.ID)) {
	for _, a := range ev.g.NodeIDs() {
		for _, b := range ev.Eval(a) {
			fn(a, b)
		}
	}
}
