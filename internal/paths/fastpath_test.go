package paths

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// The atomic fast path (plain property, inverse property) must agree with
// the generic product-automaton machinery. Alt{p, p} denotes the same
// relation as p but compiles to an NFA, so comparing the two evaluators
// exercises both code paths on identical semantics.
func TestAtomicFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 80; trial++ {
		g := randomGraph(rng, 6, 12)
		for _, name := range []string{"p", "q"} {
			prop := P(base + name)
			fast := NewEvaluator(prop, g)
			slow := NewEvaluator(Alt{Left: prop, Right: prop}, g)
			fastInv := NewEvaluator(Inv(prop), g)
			slowInv := NewEvaluator(Alt{Left: Inv(prop), Right: Inv(prop)}, g)
			for _, a := range g.NodeIDs() {
				if !sameIDs(fast.Eval(a), slow.Eval(a)) {
					t.Fatalf("trial %d: Eval(%s) fast/generic mismatch at %v", trial, name, g.Term(a))
				}
				if !sameIDs(fastInv.Eval(a), slowInv.Eval(a)) {
					t.Fatalf("trial %d: inverse Eval(%s) mismatch at %v", trial, name, g.Term(a))
				}
				targets := fast.Eval(a)
				if !sameTriples(fast.TraceUnion(a, targets), slow.TraceUnion(a, targets)) {
					t.Fatalf("trial %d: TraceUnion(%s) mismatch at %v", trial, name, g.Term(a))
				}
				invTargets := fastInv.Eval(a)
				if !sameTriples(fastInv.TraceUnion(a, invTargets), slowInv.TraceUnion(a, invTargets)) {
					t.Fatalf("trial %d: inverse TraceUnion(%s) mismatch at %v", trial, name, g.Term(a))
				}
			}
		}
	}
}

func sameIDs(a, b []rdfgraph.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameTriples(a, b []rdf.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
