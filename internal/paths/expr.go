// Package paths implements SHACL property path expressions: their syntax,
// their evaluation ⟦E⟧G as binary relations over a graph, and — the key
// ingredient of provenance computation — the *path tracing* operation
// graph(paths(E, G, a, b)) of the paper, which returns the subgraph of G
// traced out by all E-paths between two nodes.
//
// Tracing is implemented by compiling E into a Thompson NFA and exploring
// the product of the NFA with the graph: a triple lies on some accepting
// walk from a to b if and only if its product edge links a state
// forward-reachable from (a, start) to a state backward-reachable from
// (b, accept). This runs in O(|G|·|E|) per source node, replacing the
// paper's naive path-enumeration algorithm with an equivalent one.
package paths

import (
	"strings"
)

// Expr is a path expression E following the grammar of Section 2:
//
//	E := p | E⁻ | E/E | E ∪ E | E* | E?
type Expr interface {
	// String renders the expression in SPARQL property-path syntax.
	String() string
	isExpr()
}

// Prop is an atomic path: a single property IRI p.
type Prop struct {
	IRI string
}

// Inverse is E⁻, traversing E backward.
type Inverse struct {
	X Expr
}

// Seq is E1/E2, path concatenation.
type Seq struct {
	Left, Right Expr
}

// Alt is E1 ∪ E2, path alternation.
type Alt struct {
	Left, Right Expr
}

// Star is E*, zero-or-more repetitions.
type Star struct {
	X Expr
}

// ZeroOrOne is E?, the zero-or-one path.
type ZeroOrOne struct {
	X Expr
}

func (Prop) isExpr()      {}
func (Inverse) isExpr()   {}
func (Seq) isExpr()       {}
func (Alt) isExpr()       {}
func (Star) isExpr()      {}
func (ZeroOrOne) isExpr() {}

func (p Prop) String() string { return "<" + p.IRI + ">" }

func (e Inverse) String() string { return "^" + parenthesize(e.X) }

func (e Seq) String() string {
	return parenthesizeLow(e.Left) + "/" + parenthesizeLow(e.Right)
}

func (e Alt) String() string {
	return e.Left.String() + "|" + e.Right.String()
}

func (e Star) String() string { return parenthesize(e.X) + "*" }

func (e ZeroOrOne) String() string { return parenthesize(e.X) + "?" }

// parenthesize wraps non-atomic subexpressions for postfix/prefix operators.
func parenthesize(e Expr) string {
	switch e.(type) {
	case Prop:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// parenthesizeLow wraps alternations inside sequences.
func parenthesizeLow(e Expr) string {
	if _, ok := e.(Alt); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// P is shorthand for Prop{iri}.
func P(iri string) Expr { return Prop{IRI: iri} }

// Inv is shorthand for Inverse{x}.
func Inv(x Expr) Expr { return Inverse{X: x} }

// SeqOf folds a list of expressions into nested sequences.
func SeqOf(parts ...Expr) Expr {
	if len(parts) == 0 {
		panic("paths: empty sequence")
	}
	e := parts[0]
	for _, p := range parts[1:] {
		e = Seq{Left: e, Right: p}
	}
	return e
}

// AltOf folds a list of expressions into nested alternations.
func AltOf(parts ...Expr) Expr {
	if len(parts) == 0 {
		panic("paths: empty alternation")
	}
	e := parts[0]
	for _, p := range parts[1:] {
		e = Alt{Left: e, Right: p}
	}
	return e
}

// Equal reports structural equality of two path expressions.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case Prop:
		y, ok := b.(Prop)
		return ok && x.IRI == y.IRI
	case Inverse:
		y, ok := b.(Inverse)
		return ok && Equal(x.X, y.X)
	case Seq:
		y, ok := b.(Seq)
		return ok && Equal(x.Left, y.Left) && Equal(x.Right, y.Right)
	case Alt:
		y, ok := b.(Alt)
		return ok && Equal(x.Left, y.Left) && Equal(x.Right, y.Right)
	case Star:
		y, ok := b.(Star)
		return ok && Equal(x.X, y.X)
	case ZeroOrOne:
		y, ok := b.(ZeroOrOne)
		return ok && Equal(x.X, y.X)
	}
	return false
}

// Properties returns the set of property IRIs mentioned in the expression.
func Properties(e Expr) map[string]struct{} {
	out := make(map[string]struct{})
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Prop:
			out[x.IRI] = struct{}{}
		case Inverse:
			walk(x.X)
		case Seq:
			walk(x.Left)
			walk(x.Right)
		case Alt:
			walk(x.Left)
			walk(x.Right)
		case Star:
			walk(x.X)
		case ZeroOrOne:
			walk(x.X)
		}
	}
	walk(e)
	return out
}

// CanBeEmpty reports whether the expression accepts a zero-length path,
// i.e. whether ⟦E⟧G contains the identity relation.
func CanBeEmpty(e Expr) bool {
	switch x := e.(type) {
	case Prop:
		return false
	case Inverse:
		return CanBeEmpty(x.X)
	case Seq:
		return CanBeEmpty(x.Left) && CanBeEmpty(x.Right)
	case Alt:
		return CanBeEmpty(x.Left) || CanBeEmpty(x.Right)
	case Star, ZeroOrOne:
		return true
	}
	return false
}

// Parse parses a path expression in SPARQL-like property path syntax:
//
//	path     := alt
//	alt      := seq ('|' seq)*
//	seq      := unary ('/' unary)*
//	unary    := '^' unary | primary postfix*
//	postfix  := '*' | '?'
//	primary  := '<iri>' | name | '(' path ')'
//
// Bare names are expanded by prefixing base (e.g. base "http://x/" turns
// "author" into <http://x/author>).
func Parse(input, base string) (Expr, error) {
	p := &pathParser{input: input, base: base}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, &ParseError{Input: input, Pos: p.pos, Msg: "trailing input"}
	}
	return e, nil
}

// MustParse is Parse but panics on error; for constants in tests/examples.
func MustParse(input, base string) Expr {
	e, err := Parse(input, base)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseError reports a path expression syntax error.
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return "paths: parse error at offset " + itoa(e.Pos) + " in " + e.Input + ": " + e.Msg
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

type pathParser struct {
	input string
	base  string
	pos   int
}

func (p *pathParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *pathParser) errf(msg string) error {
	return &ParseError{Input: p.input, Pos: p.pos, Msg: msg}
}

func (p *pathParser) alt() (Expr, error) {
	left, err := p.seq()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos < len(p.input) && p.input[p.pos] == '|' {
			p.pos++
			right, err := p.seq()
			if err != nil {
				return nil, err
			}
			left = Alt{Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *pathParser) seq() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos < len(p.input) && p.input[p.pos] == '/' {
			p.pos++
			right, err := p.unary()
			if err != nil {
				return nil, err
			}
			left = Seq{Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *pathParser) unary() (Expr, error) {
	p.skipSpace()
	if p.pos < len(p.input) && p.input[p.pos] == '^' {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Inverse{X: x}, nil
	}
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.input) {
			return e, nil
		}
		switch p.input[p.pos] {
		case '*':
			p.pos++
			e = Star{X: e}
		case '?':
			p.pos++
			e = ZeroOrOne{X: e}
		case '-':
			// Postfix '-' as in the paper's E⁻ notation.
			p.pos++
			e = Inverse{X: e}
		default:
			return e, nil
		}
	}
}

func (p *pathParser) primary() (Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return nil, p.errf("unexpected end of input")
	}
	switch c := p.input[p.pos]; {
	case c == '(':
		p.pos++
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.input) || p.input[p.pos] != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return e, nil
	case c == '<':
		end := strings.IndexByte(p.input[p.pos:], '>')
		if end < 0 {
			return nil, p.errf("unterminated IRI")
		}
		iri := p.input[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return Prop{IRI: iri}, nil
	default:
		start := p.pos
		for p.pos < len(p.input) {
			c := p.input[p.pos]
			if c == '/' || c == '|' || c == '*' || c == '?' || c == ')' || c == '(' ||
				c == '^' || c == ' ' || c == '-' {
				break
			}
			p.pos++
		}
		if p.pos == start {
			return nil, p.errf("expected property name")
		}
		name := p.input[start:p.pos]
		return Prop{IRI: p.base + name}, nil
	}
}
