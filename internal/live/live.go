// Package live maintains materialized shape fragments incrementally across
// store epochs and pushes per-epoch fragment deltas to subscribers.
//
// The paper's locality result is what makes this sound: B(v, G, φ) and v's
// conformance verdict depend only on v's weakly-connected component, so
// after a delta publishes epoch e+1, only focus nodes whose component the
// delta touched (store.ApplyResult.AffectedNodes — the inversion of the
// Unaffected predicate the cache-carry path already uses) can have changed
// neighborhoods. A Maintainer therefore keeps, per subscribed shape, the
// per-focus-node neighborhoods plus a triple refcount over their union (the
// materialized fragment), and on every update re-extracts only the affected
// worklist, diffing old against new per node. Triples whose refcount rises
// from zero enter the fragment, those falling to zero leave it; the sorted
// N-Triples renderings of the two sets are the per-epoch delta pushed to
// subscribers — serialized once per (shape, epoch) and shared by every
// subscriber, so fanout to thousands of clients is a channel send each.
//
// Re-extraction writes through the serving neighborhood cache, so an
// update leaves the cache warm for exactly the nodes it touched while the
// carry path keeps the untouched majority — /fragment after an update is
// served entirely from memory instead of cold.
//
// Epoch ordering: updates apply serially inside the store, but the
// handlers notifying the Maintainer race after the apply lock. Notify
// therefore stashes results whose predecessor epoch is not the maintained
// one and applies them once the chain closes, so maintenance always steps
// prev → prev+1 with the matching Unaffected predicate — the same
// discipline that fixes the cache-carry race.
package live

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"shaclfrag/internal/core"
	"shaclfrag/internal/obs"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/store"
)

// Config sizes a Maintainer. Schema and Requests are required; everything
// else has serving-grade defaults.
type Config struct {
	// Schema provides shape definitions for extraction contexts.
	Schema *schema.Schema
	// Requests holds the pointer-stable request shapes (φ ∧ τ per
	// definition, in definition order) maintenance extracts and keys the
	// neighborhood cache by — pass the same slice the serving layer uses
	// so maintained entries and served entries share cache lines.
	Requests []shape.Shape
	// Cache, when non-nil, is written through by re-extraction (and
	// consulted first), keeping the serving cache warm for the nodes each
	// update touched.
	Cache *core.NeighborhoodCache
	// Plans, when non-nil, resolves the current compiled program for a
	// definition index (nil for non-plan strategies). Re-resolved on
	// every epoch step so maintenance follows the planner's per-epoch
	// choices.
	Plans func(def int) *plan.Program
	// Replay bounds the per-shape delta ring used to resume subscribers
	// from a Last-Event-ID epoch; <= 0 means 64. A subscriber further
	// behind than the ring receives a full snapshot event instead.
	Replay int
	// Queue is the per-subscriber event buffer; <= 0 means 32. A
	// subscriber whose buffer is full when a delta fans out is evicted
	// (its channel closes with reason "evicted") rather than allowed to
	// stall maintenance or grow memory without bound.
	Queue int
	// MaxSubscribers bounds concurrently open subscriptions across all
	// shapes; <= 0 means 4096.
	MaxSubscribers int
}

// Errors Subscribe returns; the serving layer maps both to 503.
var (
	ErrDraining        = errors.New("live: draining, no new subscriptions")
	ErrSubscriberLimit = errors.New("live: subscriber limit reached")
)

// Maintainer owns the per-shape materialized fragments and the
// subscription registry. All methods are safe for concurrent use; one
// mutex serializes maintenance steps, subscription changes and fanout, so
// a subscriber's event stream is exactly the epoch-ordered delta sequence
// from its subscription (or resume) point.
type Maintainer struct {
	cfg Config

	mu       sync.Mutex
	epoch    uint64
	snap     store.Snapshot
	shapes   map[int]*shapeState
	pending  map[uint64]store.ApplyResult // keyed by predecessor epoch
	nsubs    int
	draining bool

	// Cumulative counters, guarded by mu; exported via Stats.
	reextracted    uint64
	deltaAdded     uint64
	deltaRemoved   uint64
	eventsDelta    uint64
	eventsSnapshot uint64
	evicted        uint64
	resumed        uint64
}

// shapeState is one maintained shape: its per-focus-node neighborhoods,
// the refcounted fragment union, the replay ring, and its subscribers.
type shapeState struct {
	def     int
	request shape.Shape
	perNode map[rdfgraph.ID][]rdfgraph.IDTriple
	refs    map[rdfgraph.IDTriple]int
	ring    []Event // delta events for changed epochs in (floor, cur]
	floor   uint64  // highest epoch the ring can NOT replay past
	subs    map[*Subscription]struct{}
	snap    []byte // lazily built full-fragment payload for the current epoch
}

// NewMaintainer builds a Maintainer serving snap's epoch. No fragment is
// materialized until a shape's first subscriber arrives; until then every
// method is O(1) per update apart from bookkeeping the epoch chain.
func NewMaintainer(cfg Config, snap store.Snapshot) *Maintainer {
	if cfg.Replay <= 0 {
		cfg.Replay = 64
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 32
	}
	if cfg.MaxSubscribers <= 0 {
		cfg.MaxSubscribers = 4096
	}
	return &Maintainer{
		cfg:     cfg,
		epoch:   snap.Epoch(),
		snap:    snap,
		shapes:  make(map[int]*shapeState),
		pending: make(map[uint64]store.ApplyResult),
	}
}

// bind resolves and binds the current compiled program for def, nil when
// the planner routed it elsewhere.
func (m *Maintainer) bind(def int, g rdfgraph.Reader) *plan.Bound {
	if m.cfg.Plans == nil {
		return nil
	}
	if p := m.cfg.Plans(def); p != nil {
		return p.Bind(g)
	}
	return nil
}

// ensureShapeLocked materializes def's fragment at the current epoch on
// first use: one full per-node extraction (through the cache, so a warm
// server pays near nothing), refcounting every neighborhood triple.
func (m *Maintainer) ensureShapeLocked(def int) *shapeState {
	if st, ok := m.shapes[def]; ok {
		return st
	}
	st := &shapeState{
		def:     def,
		request: m.cfg.Requests[def],
		perNode: make(map[rdfgraph.ID][]rdfgraph.IDTriple),
		refs:    make(map[rdfgraph.IDTriple]int),
		floor:   m.epoch,
		subs:    make(map[*Subscription]struct{}),
	}
	reader := m.snap.Reader()
	x := core.NewExtractor(reader, m.cfg.Schema)
	nodes := reader.NodeIDs()
	nbs := x.NodeNeighborhoods(st.request, m.bind(def, reader), nodes, m.cfg.Cache, m.epoch)
	for i, ts := range nbs {
		if len(ts) == 0 {
			continue
		}
		st.perNode[nodes[i]] = ts
		for _, t := range ts {
			st.refs[t]++
		}
	}
	m.reextracted += uint64(len(nodes))
	m.shapes[def] = st
	return st
}

// NotifyStats reports what one Notify call processed: Steps epochs were
// applied (more than one when this call closed a pending chain), covering
// Affected delta-touched focus nodes, re-extracting Reextracted
// (shape × node) neighborhoods, and changing the maintained fragments by
// Added/Removed triples.
type NotifyStats struct {
	Steps       int
	Affected    int
	Reextracted int
	Added       int
	Removed     int
}

// Notify advances maintenance across the epoch transition res describes
// and fans the resulting per-shape deltas out to subscribers. It must be
// called once per effective update, after the caller has re-planned (so
// Config.Plans resolves against the new epoch); res.Changed false is a
// no-op. Out-of-order notifications (racing handlers) are stashed and
// applied when their predecessor epoch lands, so steps always run in
// epoch order against the matching Unaffected predicate.
//
// sp, when non-nil (a sampled update request), receives the affected /
// reextracted / shapes attributes and reextract / fanout child timings —
// the span a trace shows as the "notify" stage.
func (m *Maintainer) Notify(res store.ApplyResult, sp *obs.Span) NotifyStats {
	var stats NotifyStats
	if !res.Changed {
		return stats
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if res.Prev != m.epoch {
		// A racing handler for the successor epoch got here first; its
		// notification waits for ours. (Equal epochs cannot collide: the
		// store hands every Apply a distinct Prev under its lock.)
		m.pending[res.Prev] = res
		return stats
	}
	m.stepLocked(res, sp, &stats)
	for {
		next, ok := m.pending[m.epoch]
		if !ok {
			break
		}
		delete(m.pending, m.epoch)
		m.stepLocked(next, sp, &stats)
	}
	sp.SetAttrInt("affected", int64(stats.Affected))
	sp.SetAttrInt("reextracted", int64(stats.Reextracted))
	sp.SetAttrInt("shapes", int64(len(m.shapes)))
	return stats
}

// stepLocked applies one epoch transition: computes the affected worklist,
// re-extracts it per maintained shape, diffs, publishes delta events.
func (m *Maintainer) stepLocked(res store.ApplyResult, sp *obs.Span, stats *NotifyStats) {
	snap := res.Snapshot
	reader := snap.Reader()
	epoch := snap.Epoch()
	stats.Steps++
	if len(m.shapes) > 0 {
		affected := res.AffectedNodes(reader.NodeIDs())
		inAffected := make(map[rdfgraph.ID]struct{}, len(affected))
		for _, v := range affected {
			inAffected[v] = struct{}{}
		}
		stats.Affected += len(affected)
		for def, st := range m.shapes {
			begin := time.Now()
			x := core.NewExtractor(reader, m.cfg.Schema)
			nbs := x.NodeNeighborhoods(st.request, m.bind(def, reader), affected, m.cfg.Cache, epoch)
			var added, removed []rdfgraph.IDTriple
			for i, v := range affected {
				added, removed = st.diff(v, nbs[i], added, removed)
			}
			// Nodes the delta removed from N(G) entirely: dirty component,
			// but absent from the new node list — their neighborhoods are
			// empty in the new epoch.
			for v := range st.perNode {
				if _, ok := inAffected[v]; ok {
					continue
				}
				if !res.Unaffected(v) {
					added, removed = st.diff(v, nil, added, removed)
				}
			}
			m.reextracted += uint64(len(affected))
			stats.Reextracted += len(affected)
			sp.Observe("reextract", time.Since(begin))
			if len(added) == 0 && len(removed) == 0 {
				continue // this delta did not move this shape's fragment
			}
			stats.Added += len(added)
			stats.Removed += len(removed)
			m.deltaAdded += uint64(len(added))
			m.deltaRemoved += uint64(len(removed))
			st.snap = nil // the cached full-fragment payload is stale
			ev := deltaEvent(epoch, lines(reader.Dict(), added), lines(reader.Dict(), removed))
			st.push(ev, m.cfg.Replay)
			begin = time.Now()
			m.fanoutLocked(st, ev)
			sp.Observe("fanout", time.Since(begin))
		}
	}
	m.epoch, m.snap = epoch, snap
}

// diff replaces v's neighborhood with ts, adjusting the fragment refcounts
// and appending the triples that entered/left the fragment to added and
// removed. A nil/empty ts drops v's contribution.
func (st *shapeState) diff(v rdfgraph.ID, ts []rdfgraph.IDTriple, added, removed []rdfgraph.IDTriple) (a, r []rdfgraph.IDTriple) {
	old := st.perNode[v]
	inOld := make(map[rdfgraph.IDTriple]struct{}, len(old))
	for _, t := range old {
		inOld[t] = struct{}{}
	}
	for _, t := range ts {
		if _, ok := inOld[t]; ok {
			delete(inOld, t) // still contributed by v: no refcount motion
			continue
		}
		if st.refs[t]++; st.refs[t] == 1 {
			added = append(added, t)
		}
	}
	for t := range inOld { // contributed by v before, not anymore
		if st.refs[t]--; st.refs[t] == 0 {
			delete(st.refs, t)
			removed = append(removed, t)
		}
	}
	if len(ts) > 0 {
		st.perNode[v] = ts
	} else {
		delete(st.perNode, v)
	}
	return added, removed
}

// push appends a delta event to the replay ring, advancing the floor when
// the ring sheds its oldest entry.
func (st *shapeState) push(ev Event, cap int) {
	st.ring = append(st.ring, ev)
	if len(st.ring) > cap {
		st.floor = st.ring[0].Epoch
		st.ring = st.ring[1:]
	}
}

// lines decodes and renders triples as sorted N-Triples lines.
func lines(d *rdfgraph.Dict, ts []rdfgraph.IDTriple) []string {
	out := make([]string, 0, len(ts))
	decoded := make([]rdf.Triple, 0, len(ts))
	for _, t := range ts {
		decoded = append(decoded, rdf.Triple{S: d.Term(t.S), P: d.Term(t.P), O: d.Term(t.O)})
	}
	sort.Slice(decoded, func(i, j int) bool { return rdf.CompareTriples(decoded[i], decoded[j]) < 0 })
	for _, t := range decoded {
		out = append(out, t.String()+" .")
	}
	return out
}

// snapshotEventLocked returns (building lazily) the full-fragment event of
// st at the current epoch: every materialized triple as "added". Shared by
// every subscriber that needs one until the next change invalidates it.
func (m *Maintainer) snapshotEventLocked(st *shapeState) Event {
	if st.snap == nil {
		ts := make([]rdfgraph.IDTriple, 0, len(st.refs))
		for t := range st.refs {
			ts = append(ts, t)
		}
		st.snap = payload(m.epoch, lines(m.snap.Reader().Dict(), ts), []string{})
	}
	return Event{Type: EventSnapshot, Epoch: m.epoch, Data: st.snap}
}

// FragmentLines returns the maintained fragment of def as sorted N-Triples
// lines, materializing it first if needed — the test seam asserting parity
// with cold extraction.
func (m *Maintainer) FragmentLines(def int) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if def < 0 || def >= len(m.cfg.Requests) {
		return nil
	}
	st := m.ensureShapeLocked(def)
	ts := make([]rdfgraph.IDTriple, 0, len(st.refs))
	for t := range st.refs {
		ts = append(ts, t)
	}
	return lines(m.snap.Reader().Dict(), ts)
}

// Epoch returns the epoch maintenance has advanced to.
func (m *Maintainer) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Stats is a snapshot of maintenance and subscription counters. The
// cumulative fields are monotone since construction.
type Stats struct {
	Shapes      int // shapes with materialized fragments
	Subscribers int // currently open subscriptions
	Reextracted uint64
	DeltaAdded  uint64
	DeltaRemove uint64
	EventsDelta uint64
	EventsSnap  uint64
	Evicted     uint64 // subscribers evicted for falling behind
	Resumed     uint64 // subscriptions resumed from the replay ring
}

// Stats returns a consistent snapshot of the counters.
func (m *Maintainer) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Shapes:      len(m.shapes),
		Subscribers: m.nsubs,
		Reextracted: m.reextracted,
		DeltaAdded:  m.deltaAdded,
		DeltaRemove: m.deltaRemoved,
		EventsDelta: m.eventsDelta,
		EventsSnap:  m.eventsSnapshot,
		Evicted:     m.evicted,
		Resumed:     m.resumed,
	}
}

// payload renders the shared JSON body of a delta or snapshot event.
func payload(epoch uint64, added, removed []string) []byte {
	b, err := json.Marshal(struct {
		Epoch   uint64   `json:"epoch"`
		Added   []string `json:"added"`
		Removed []string `json:"removed"`
	}{epoch, added, removed})
	if err != nil {
		// The struct above cannot fail to marshal; keep the signature slim.
		panic(fmt.Sprintf("live: rendering event payload: %v", err))
	}
	return b
}

func deltaEvent(epoch uint64, added, removed []string) Event {
	return Event{Type: EventDelta, Epoch: epoch, Data: payload(epoch, added, removed)}
}
