package live_test

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"shaclfrag/internal/core"
	"shaclfrag/internal/live"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/store"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

func exTriple(s, o string) rdf.Triple {
	return rdf.Triple{S: ex(s), P: ex("p"), O: ex(o)}
}

func line(s, o string) string {
	return "<http://ex/" + s + "> <http://ex/p> <http://ex/" + o + "> ."
}

// newMaintainer builds a single-definition maintainer (shape and target
// ≥1 p.⊤) over the two-component graph {a,b} | {c,d}.
func newMaintainer(t *testing.T, cfg live.Config, triples ...rdf.Triple) (*live.Maintainer, store.Store, *schema.Schema) {
	t.Helper()
	if triples == nil {
		triples = []rdf.Triple{exTriple("a", "b"), exTriple("c", "d")}
	}
	hasP := shape.Min(1, paths.P("http://ex/p"), shape.TrueShape())
	h := schema.MustNew(schema.Definition{Name: ex("S"), Shape: hasP, Target: hasP})
	g := rdfgraph.FromTriples(triples)
	store.WarmDictionary(g, h)
	st := store.NewSingle(g)
	cfg.Schema = h
	cfg.Requests = core.SchemaRequests(h)
	return live.NewMaintainer(cfg, st.Current()), st, h
}

type eventBody struct {
	Epoch   uint64   `json:"epoch"`
	Added   []string `json:"added"`
	Removed []string `json:"removed"`
}

func decode(t *testing.T, ev live.Event) eventBody {
	t.Helper()
	var b eventBody
	if err := json.Unmarshal(ev.Data, &b); err != nil {
		t.Fatalf("event payload %q: %v", ev.Data, err)
	}
	if b.Epoch != ev.Epoch {
		t.Fatalf("payload epoch %d != event epoch %d", b.Epoch, ev.Epoch)
	}
	if b.Added == nil || b.Removed == nil {
		t.Fatalf("payload arrays must never be null: %s", ev.Data)
	}
	return b
}

func recv(t *testing.T, sub *live.Subscription) (live.Event, bool) {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		return ev, ok
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for an event")
		return live.Event{}, false
	}
}

// coldLines extracts the fragment from scratch and renders it the way the
// maintainer does — the parity oracle.
func coldLines(h *schema.Schema, g rdfgraph.Reader) []string {
	requests := core.SchemaRequests(h)
	ts := core.NewExtractor(g, h).Fragment(requests[:1])
	sort.Slice(ts, func(i, j int) bool { return rdf.CompareTriples(ts[i], ts[j]) < 0 })
	out := make([]string, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.String()+" .")
	}
	return out
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotThenDelta is the core contract: a fresh subscriber gets the
// full fragment as a snapshot event, and an update touching one component
// produces exactly that component's delta.
func TestSnapshotThenDelta(t *testing.T) {
	m, st, h := newMaintainer(t, live.Config{})
	sub, initial, err := m.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unsubscribe(sub)
	if len(initial) != 1 || initial[0].Type != live.EventSnapshot || initial[0].Epoch != 1 {
		t.Fatalf("initial events: %+v", initial)
	}
	snap := decode(t, initial[0])
	if !equalLines(snap.Added, coldLines(h, st.Current().Reader())) || len(snap.Removed) != 0 {
		t.Fatalf("snapshot != cold extraction:\n%v", snap)
	}

	res := st.Apply(rdfgraph.Delta{Add: []rdf.Triple{exTriple("a", "e")}})
	ns := m.Notify(res, nil)
	if ns.Steps != 1 || ns.Added != 1 || ns.Removed != 0 {
		t.Fatalf("notify stats: %+v", ns)
	}
	// Only the {a,b} component (now {a,b,e}) is affected; {c,d} must not
	// be re-extracted.
	if ns.Affected != 3 {
		t.Errorf("affected = %d, want 3 (a, b, e)", ns.Affected)
	}
	ev, ok := recv(t, sub)
	if !ok || ev.Type != live.EventDelta || ev.Epoch != 2 {
		t.Fatalf("delta event: %+v ok=%v", ev, ok)
	}
	body := decode(t, ev)
	if !equalLines(body.Added, []string{line("a", "e")}) || len(body.Removed) != 0 {
		t.Fatalf("delta body: %+v", body)
	}
	if !equalLines(m.FragmentLines(0), coldLines(h, st.Current().Reader())) {
		t.Fatal("maintained fragment diverged from cold extraction")
	}
}

// TestDeleteEmitsRemovals: deleting a component's only triple removes it
// from the fragment and drops the node's contribution entirely.
func TestDeleteEmitsRemovals(t *testing.T) {
	m, st, h := newMaintainer(t, live.Config{})
	sub, _, err := m.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unsubscribe(sub)
	res := st.Apply(rdfgraph.Delta{Del: []rdf.Triple{exTriple("c", "d")}})
	m.Notify(res, nil)
	ev, _ := recv(t, sub)
	body := decode(t, ev)
	if len(body.Added) != 0 || !equalLines(body.Removed, []string{line("c", "d")}) {
		t.Fatalf("delete delta: %+v", body)
	}
	if !equalLines(m.FragmentLines(0), coldLines(h, st.Current().Reader())) {
		t.Fatal("maintained fragment diverged after delete")
	}
}

// TestOutOfOrderNotify pins the epoch-ordering discipline: when the
// handler for epoch 3 notifies before the handler for epoch 2 (the same
// race class as the cache-carry bug), the maintainer must stash it and
// emit both deltas in epoch order.
func TestOutOfOrderNotify(t *testing.T) {
	m, st, _ := newMaintainer(t, live.Config{})
	sub, _, err := m.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unsubscribe(sub)
	res2 := st.Apply(rdfgraph.Delta{Add: []rdf.Triple{exTriple("a", "e")}})
	res3 := st.Apply(rdfgraph.Delta{Add: []rdf.Triple{exTriple("c", "f")}})
	if ns := m.Notify(res3, nil); ns.Steps != 0 {
		t.Fatalf("out-of-order notify ran %d steps, want 0 (stashed)", ns.Steps)
	}
	if ns := m.Notify(res2, nil); ns.Steps != 2 {
		t.Fatalf("closing notify ran %d steps, want 2 (own + stashed)", ns.Steps)
	}
	ev1, _ := recv(t, sub)
	ev2, _ := recv(t, sub)
	if ev1.Epoch != 2 || ev2.Epoch != 3 {
		t.Fatalf("events out of order: %d then %d", ev1.Epoch, ev2.Epoch)
	}
	if m.Epoch() != 3 {
		t.Fatalf("maintainer epoch = %d, want 3", m.Epoch())
	}
}

// TestResumeFromRing: a subscriber resuming with a Last-Event-ID epoch the
// ring still covers gets exactly the missed deltas; one too far behind
// gets a full snapshot.
func TestResumeFromRing(t *testing.T) {
	m, st, _ := newMaintainer(t, live.Config{Replay: 2})
	sub, _, err := m.Subscribe(0, 0) // materialize at epoch 1
	if err != nil {
		t.Fatal(err)
	}
	m.Unsubscribe(sub)
	for i := 0; i < 3; i++ { // epochs 2, 3, 4; ring keeps 3 and 4
		m.Notify(st.Apply(rdfgraph.Delta{Add: []rdf.Triple{exTriple("a", fmt.Sprintf("e%d", i))}}), nil)
	}

	sub2, initial, err := m.Subscribe(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Unsubscribe(sub2)
	if len(initial) != 2 || initial[0].Type != live.EventDelta ||
		initial[0].Epoch != 3 || initial[1].Epoch != 4 {
		t.Fatalf("resume from 2: %+v", initial)
	}
	if got := decode(t, initial[0]).Added; !equalLines(got, []string{line("a", "e1")}) {
		t.Fatalf("replayed delta 3: %v", got)
	}

	// Epoch 1 fell off the ring (floor is 2): full snapshot instead.
	sub3, initial, err := m.Subscribe(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Unsubscribe(sub3)
	if len(initial) != 1 || initial[0].Type != live.EventSnapshot || initial[0].Epoch != 4 {
		t.Fatalf("resume from below the floor: %+v", initial)
	}

	// A current subscriber has nothing to replay.
	sub4, initial, err := m.Subscribe(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Unsubscribe(sub4)
	if len(initial) != 0 {
		t.Fatalf("current resume replayed %d events", len(initial))
	}
	if st := m.Stats(); st.Resumed != 1 {
		t.Errorf("resumed = %d, want 1 (only the ring-covered resume)", st.Resumed)
	}
}

// TestSlowSubscriberEviction: a subscriber that stops draining its bounded
// queue is evicted — channel closed, reason recorded, queue freed — while
// a keeping-up subscriber is unaffected.
func TestSlowSubscriberEviction(t *testing.T) {
	m, st, _ := newMaintainer(t, live.Config{Queue: 1})
	slow, _, err := m.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := m.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unsubscribe(fast)
	// First delta fills slow's queue (nobody reads); second finds it full.
	m.Notify(st.Apply(rdfgraph.Delta{Add: []rdf.Triple{exTriple("a", "e0")}}), nil)
	<-fast.Events()
	m.Notify(st.Apply(rdfgraph.Delta{Add: []rdf.Triple{exTriple("a", "e1")}}), nil)
	<-fast.Events()

	if ev, ok := recv(t, slow); !ok || ev.Epoch != 2 {
		t.Fatalf("buffered event before close: %+v ok=%v", ev, ok)
	}
	if _, ok := recv(t, slow); ok {
		t.Fatal("evicted subscription still open")
	}
	if slow.Reason() != live.ReasonEvicted {
		t.Fatalf("reason = %q, want %q", slow.Reason(), live.ReasonEvicted)
	}
	stats := m.Stats()
	if stats.Evicted != 1 || stats.Subscribers != 1 {
		t.Fatalf("stats after eviction: %+v", stats)
	}
}

// TestDrain closes every stream with ReasonDrain and refuses newcomers.
func TestDrain(t *testing.T) {
	m, _, _ := newMaintainer(t, live.Config{})
	sub, _, err := m.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Drain()
	if _, ok := recv(t, sub); ok {
		t.Fatal("drained subscription still open")
	}
	if sub.Reason() != live.ReasonDrain {
		t.Fatalf("reason = %q, want %q", sub.Reason(), live.ReasonDrain)
	}
	if _, _, err := m.Subscribe(0, 0); err != live.ErrDraining {
		t.Fatalf("subscribe during drain: %v", err)
	}
}

// TestSubscriberLimit: the MaxSubscribers bound rejects the overflowing
// subscriber and admits again after one leaves.
func TestSubscriberLimit(t *testing.T) {
	m, _, _ := newMaintainer(t, live.Config{MaxSubscribers: 2})
	a, _, err := m.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Subscribe(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Subscribe(0, 0); err != live.ErrSubscriberLimit {
		t.Fatalf("third subscribe: %v, want ErrSubscriberLimit", err)
	}
	m.Unsubscribe(a)
	if _, _, err := m.Subscribe(0, 0); err != nil {
		t.Fatalf("subscribe after a slot freed: %v", err)
	}
}

// TestStormParity is the incremental-maintenance soundness storm (run with
// -race): concurrent writers race Apply+Notify, so notifications arrive in
// scrambled order, while a subscriber folds the event stream into its own
// copy of the fragment. At the end, maintained state, the subscriber's
// folded state, and a cold extraction must agree line for line.
func TestStormParity(t *testing.T) {
	const writers, perWriter = 4, 20
	var seed []rdf.Triple
	for w := 0; w < writers; w++ {
		seed = append(seed, exTriple(fmt.Sprintf("w%d-a", w), fmt.Sprintf("w%d-b", w)))
	}
	m, st, h := newMaintainer(t, live.Config{Queue: 1024, Replay: 1024}, seed...)
	sub, initial, err := m.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unsubscribe(sub)

	folded := make(map[string]struct{})
	for _, l := range decode(t, initial[0]).Added {
		folded[l] = struct{}{}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Every add is fresh, so every epoch moves the fragment and
				// emits exactly one event — the subscriber can tell when it
				// has seen everything by the final epoch number.
				delta := rdfgraph.Delta{Add: []rdf.Triple{
					exTriple(fmt.Sprintf("w%d-a", w), fmt.Sprintf("w%d-o%d", w, i)),
				}}
				m.Notify(st.Apply(delta), nil)
			}
		}(w)
	}
	wg.Wait()

	final := uint64(1 + writers*perWriter)
	if m.Epoch() != final {
		t.Fatalf("maintainer epoch = %d, want %d", m.Epoch(), final)
	}
	var last uint64
	for last < final {
		ev, ok := recv(t, sub)
		if !ok {
			t.Fatal("subscription closed mid-storm (evicted?)")
		}
		if ev.Epoch <= last {
			t.Fatalf("event epochs not increasing: %d after %d", ev.Epoch, last)
		}
		last = ev.Epoch
		body := decode(t, ev)
		for _, l := range body.Added {
			folded[l] = struct{}{}
		}
		for _, l := range body.Removed {
			delete(folded, l)
		}
	}

	cold := coldLines(h, st.Current().Reader())
	if got := m.FragmentLines(0); !equalLines(got, cold) {
		t.Fatalf("maintained fragment diverged from cold extraction:\ngot  %d lines\nwant %d lines", len(got), len(cold))
	}
	if len(folded) != len(cold) {
		t.Fatalf("subscriber folded %d lines, cold extraction has %d", len(folded), len(cold))
	}
	for _, l := range cold {
		if _, ok := folded[l]; !ok {
			t.Fatalf("subscriber state missing %s", l)
		}
	}
}
