package live

import "fmt"

// Event types carried on a subscription stream.
const (
	// EventSnapshot carries the full maintained fragment (all triples as
	// "added", empty "removed") — sent when a subscriber has no usable
	// resume point.
	EventSnapshot = "snapshot"
	// EventDelta carries one epoch's fragment delta.
	EventDelta = "delta"
)

// Subscription close reasons, readable via Reason after the event channel
// closes.
const (
	// ReasonEvicted: the subscriber's queue was full when a delta fanned
	// out; it was dropped rather than allowed to stall or buffer without
	// bound. The client should reconnect with Last-Event-ID to resume.
	ReasonEvicted = "evicted"
	// ReasonDrain: the server is shutting down.
	ReasonDrain = "drain"
)

// Event is one message on a subscription stream. Data is the shared,
// pre-serialized JSON payload {"epoch":N,"added":[...],"removed":[...]}
// (N-Triples lines); it is immutable and may be written to any number of
// clients concurrently.
type Event struct {
	Type  string
	Epoch uint64
	Data  []byte
}

// Subscription is one subscriber's bounded event queue. Read Events until
// it closes, then Reason for why. A subscriber that stops draining its
// channel is evicted on the next delta that finds the buffer full.
type Subscription struct {
	m      *Maintainer
	def    int
	ch     chan Event
	closed bool   // guarded by m.mu
	reason string // guarded by m.mu, set before ch closes
}

// Events is the stream of snapshot/delta events, closed on eviction,
// drain, or Unsubscribe.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Reason reports why the stream closed ("" while open or after a plain
// Unsubscribe).
func (s *Subscription) Reason() string {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.reason
}

// Subscribe registers a subscriber for the shape at definition index def.
// It returns the subscription plus the initial events the caller must
// deliver before reading the channel: the channel only ever carries events
// strictly newer than them.
//
//   - from == 0 (no resume point): one snapshot event at the current epoch.
//   - from within the replay ring: exactly the delta events the subscriber
//     missed, in epoch order (possibly none if it is current).
//   - from below the ring floor (or ahead of the maintainer): one snapshot
//     event — too far behind (or implausible) to replay.
//
// The first subscriber for a shape pays its fragment materialization here.
// Fails with ErrDraining during shutdown and ErrSubscriberLimit at the
// configured bound.
func (m *Maintainer) Subscribe(def int, from uint64) (*Subscription, []Event, error) {
	if def < 0 || def >= len(m.cfg.Requests) {
		return nil, nil, fmt.Errorf("live: definition index %d out of range [0,%d)", def, len(m.cfg.Requests))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, nil, ErrDraining
	}
	if m.nsubs >= m.cfg.MaxSubscribers {
		return nil, nil, ErrSubscriberLimit
	}
	st := m.ensureShapeLocked(def)
	var initial []Event
	switch {
	case from == m.epoch && from != 0:
		// Current: nothing to replay.
	case from > 0 && from >= st.floor && from < m.epoch:
		for _, ev := range st.ring {
			if ev.Epoch > from {
				initial = append(initial, ev)
			}
		}
		m.resumed++
		m.eventsDelta += uint64(len(initial))
	default:
		initial = []Event{m.snapshotEventLocked(st)}
		m.eventsSnapshot++
	}
	sub := &Subscription{m: m, def: def, ch: make(chan Event, m.cfg.Queue)}
	st.subs[sub] = struct{}{}
	m.nsubs++
	return sub, initial, nil
}

// Unsubscribe removes sub and closes its channel; idempotent, and safe to
// call after eviction or drain already closed the stream.
func (m *Maintainer) Unsubscribe(sub *Subscription) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closeLocked(sub, "")
}

// Drain refuses new subscriptions and closes every open stream with
// ReasonDrain. Call before shutting the HTTP listener down so handlers
// observe the close and finish their responses.
func (m *Maintainer) Drain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.draining = true
	for _, st := range m.shapes {
		for sub := range st.subs {
			m.closeLocked(sub, ReasonDrain)
		}
	}
}

// fanoutLocked delivers ev to every subscriber of st, evicting any whose
// queue is full — a send is non-blocking so one stalled client cannot
// delay maintenance or the update path.
func (m *Maintainer) fanoutLocked(st *shapeState, ev Event) {
	for sub := range st.subs {
		select {
		case sub.ch <- ev:
			m.eventsDelta++
		default:
			m.evicted++
			m.closeLocked(sub, ReasonEvicted)
		}
	}
}

// closeLocked removes sub from its shape and closes its channel exactly
// once, recording reason.
func (m *Maintainer) closeLocked(sub *Subscription, reason string) {
	if sub.closed {
		return
	}
	sub.closed = true
	sub.reason = reason
	if st, ok := m.shapes[sub.def]; ok {
		delete(st.subs, sub)
	}
	m.nsubs--
	close(sub.ch)
}
