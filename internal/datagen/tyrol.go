// Package datagen generates the synthetic workloads standing in for the
// paper's evaluation assets (see DESIGN.md, "Substitutions"): a
// schema.org-flavoured tourism knowledge graph replacing the Tyrolean
// Knowledge Graph, the 57 benchmark shapes replacing the Schaffenrath et
// al. suite, a preferential-attachment coauthorship graph replacing DBLP,
// and a 46-query benchmark mix replacing BSBM/WatDiv.
package datagen

import (
	"fmt"
	"math/rand"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// NS is the namespace of the synthetic tourism vocabulary.
const NS = "http://tyrol.example/"

// Vocabulary IRIs.
var (
	ClassEvent        = rdf.NewIRI(NS + "Event")
	ClassLodging      = rdf.NewIRI(NS + "Lodging")
	ClassHotel        = rdf.NewIRI(NS + "Hotel")
	ClassHostel       = rdf.NewIRI(NS + "Hostel")
	ClassPlace        = rdf.NewIRI(NS + "Place")
	ClassPerson       = rdf.NewIRI(NS + "Person")
	ClassOrganization = rdf.NewIRI(NS + "Organization")
	ClassReview       = rdf.NewIRI(NS + "Review")

	PropName       = NS + "name"
	PropStartDate  = NS + "startDate"
	PropEndDate    = NS + "endDate"
	PropOrganizer  = NS + "organizer"
	PropLocation   = NS + "location"
	PropPrice      = NS + "price"
	PropCapacity   = NS + "capacity"
	PropURL        = NS + "url"
	PropRating     = NS + "rating"
	PropCheckin    = NS + "checkinHour"
	PropCheckout   = NS + "checkoutHour"
	PropAmenity    = NS + "amenity"
	PropOwner      = NS + "owner"
	PropReview     = NS + "review"
	PropPostalCode = NS + "postalCode"
	PropInDistrict = NS + "inDistrict"
	PropEmail      = NS + "email"
	PropWorksFor   = NS + "worksFor"
	PropKnows      = NS + "knows"
	PropLegalName  = NS + "legalName"
	PropSubOrgOf   = NS + "subOrganizationOf"
	PropAuthor     = NS + "author"
	PropText       = NS + "text"
	PropAlias      = NS + "alias"
)

// TyrolConfig scales the synthetic tourism graph. Individuals is the number
// of entity nodes; the triple count is roughly 7× that, mirroring the
// density of the paper's induced subgraphs (50K individuals ≈ 1.5M triples
// there; defaults here are laptop-scale).
type TyrolConfig struct {
	Individuals int
	Seed        int64
	// DirtyRate is the fraction of entities given constraint-violating
	// data, so validation reports and why-not provenance are non-trivial.
	DirtyRate float64
}

// Tyrol generates the synthetic tourism knowledge graph.
func Tyrol(cfg TyrolConfig) *rdfgraph.Graph {
	g := rdfgraph.New()
	TyrolStream(cfg, func(t rdf.Triple) { g.Add(t) })
	return g
}

// TriplesPerIndividual is the approximate triple density of the generated
// graph: IndividualsForTriples sizes a target triple count with it. The
// exact count wobbles with the seed (amenity/review/knows fan-outs are
// random), so treat derived sizes as ±2%; measured 7.24–7.25 at seed 1.
const TriplesPerIndividual = 7.25

// IndividualsForTriples returns the Individuals setting that generates
// approximately the given number of triples — the -scale knob: callers ask
// for a triple budget ("10M") instead of reverse-engineering entity counts.
func IndividualsForTriples(triples int) int {
	n := int(float64(triples) / TriplesPerIndividual)
	if n < 1 {
		n = 1
	}
	return n
}

// TyrolStream generates the same triple sequence as Tyrol but emits each
// triple to the callback instead of materializing a graph, so arbitrarily
// large graphs can be streamed straight into a store.Loader (which builds
// indexes in place) without an intermediate triple slice: peak memory is
// the final store size. Duplicate triples may be emitted; graph-building
// consumers dedupe by construction. The emission order and RNG consumption
// are exactly Tyrol's, so a given (Individuals, Seed, DirtyRate) yields an
// identical graph through either entry point.
func TyrolStream(cfg TyrolConfig, emit func(rdf.Triple)) {
	if cfg.Individuals <= 0 {
		cfg.Individuals = 1000
	}
	if cfg.DirtyRate == 0 {
		cfg.DirtyRate = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	add := func(t rdf.Triple) { emit(t) }
	typ := rdf.NewIRI(rdf.RDFType)

	// Static class hierarchy.
	sub := rdf.NewIRI(rdf.RDFSSubClassOf)
	add(rdf.T(ClassHotel, sub, ClassLodging))
	add(rdf.T(ClassHostel, sub, ClassLodging))

	n := cfg.Individuals
	counts := map[string]int{
		"event":   n * 30 / 100,
		"lodging": n * 20 / 100,
		"place":   n * 15 / 100,
		"person":  n * 15 / 100,
		"org":     n * 8 / 100,
		"review":  n * 12 / 100,
	}
	node := func(kind string, i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("%s%s/%d", NS, kind, i))
	}
	pick := func(kind string) rdf.Term {
		return node(kind, rng.Intn(max(1, counts[kind])))
	}
	dirty := func() bool { return rng.Float64() < cfg.DirtyRate }
	langName := func(s rdf.Term, base string, i int) {
		name := fmt.Sprintf("%s %d", base, i)
		switch {
		case dirty():
			// Duplicate language tag: violates uniqueLang.
			add(rdf.T(s, rdf.NewIRI(PropName), rdf.NewLangString(name, "de")))
			add(rdf.T(s, rdf.NewIRI(PropName), rdf.NewLangString(name+" alt", "de")))
		case dirty():
			// Missing entirely: violates minCount.
		default:
			add(rdf.T(s, rdf.NewIRI(PropName), rdf.NewLangString(name, "de")))
			add(rdf.T(s, rdf.NewIRI(PropName), rdf.NewLangString(name, "en")))
		}
	}

	// Places form a district tree, exercised by zeroOrMore paths.
	for i := 0; i < counts["place"]; i++ {
		s := node("place", i)
		add(rdf.T(s, typ, ClassPlace))
		langName(s, "Place", i)
		code := fmt.Sprintf("%04d", 6000+rng.Intn(999))
		if dirty() {
			code = "A" + code // violates the postal code pattern
		}
		add(rdf.T(s, rdf.NewIRI(PropPostalCode), rdf.NewString(code)))
		if i > 0 {
			add(rdf.T(s, rdf.NewIRI(PropInDistrict), node("place", rng.Intn(i))))
		}
	}

	for i := 0; i < counts["org"]; i++ {
		s := node("org", i)
		add(rdf.T(s, typ, ClassOrganization))
		langName(s, "Org", i)
		legal := rdf.NewString(fmt.Sprintf("Org %d GmbH", i))
		add(rdf.T(s, rdf.NewIRI(PropLegalName), legal))
		if rng.Float64() < 0.5 {
			// alias equals legalName for equals-constraints (dirty: differs).
			if dirty() {
				add(rdf.T(s, rdf.NewIRI(PropAlias), rdf.NewString("Wrong Alias")))
			} else {
				add(rdf.T(s, rdf.NewIRI(PropAlias), legal))
			}
		}
		if i > 0 && rng.Float64() < 0.6 {
			add(rdf.T(s, rdf.NewIRI(PropSubOrgOf), node("org", rng.Intn(i))))
		}
	}

	for i := 0; i < counts["person"]; i++ {
		s := node("person", i)
		add(rdf.T(s, typ, ClassPerson))
		langName(s, "Person", i)
		email := fmt.Sprintf("person%d@example.org", i)
		if dirty() {
			email = "not-an-email"
		}
		add(rdf.T(s, rdf.NewIRI(PropEmail), rdf.NewString(email)))
		if counts["org"] > 0 && rng.Float64() < 0.7 {
			add(rdf.T(s, rdf.NewIRI(PropWorksFor), pick("org")))
		}
		for k := rng.Intn(3); k > 0; k-- {
			add(rdf.T(s, rdf.NewIRI(PropKnows), pick("person")))
		}
	}

	for i := 0; i < counts["review"]; i++ {
		s := node("review", i)
		add(rdf.T(s, typ, ClassReview))
		rating := int64(1 + rng.Intn(5))
		if dirty() {
			rating = 9 // out of range
		}
		add(rdf.T(s, rdf.NewIRI(PropRating), rdf.NewInteger(rating)))
		if counts["person"] > 0 {
			add(rdf.T(s, rdf.NewIRI(PropAuthor), pick("person")))
		}
		add(rdf.T(s, rdf.NewIRI(PropText),
			rdf.NewLangString(fmt.Sprintf("review text %d", i), []string{"de", "en", "it"}[rng.Intn(3)])))
	}

	for i := 0; i < counts["lodging"]; i++ {
		s := node("lodging", i)
		if rng.Float64() < 0.6 {
			add(rdf.T(s, typ, ClassHotel))
		} else {
			add(rdf.T(s, typ, ClassHostel))
		}
		langName(s, "Lodging", i)
		if counts["place"] > 0 {
			add(rdf.T(s, rdf.NewIRI(PropLocation), pick("place")))
		}
		in, out := int64(10+rng.Intn(5)), int64(15+rng.Intn(8))
		if dirty() {
			in, out = out+1, in // checkin after checkout: violates lessThan
		}
		add(rdf.T(s, rdf.NewIRI(PropCheckin), rdf.NewInteger(in)))
		add(rdf.T(s, rdf.NewIRI(PropCheckout), rdf.NewInteger(out)))
		for k := rng.Intn(3); k > 0; k-- {
			add(rdf.T(s, rdf.NewIRI(PropAmenity),
				rdf.NewString([]string{"wifi", "parking", "sauna", "pool"}[rng.Intn(4)])))
		}
		if counts["person"] > 0 {
			add(rdf.T(s, rdf.NewIRI(PropOwner), pick("person")))
		}
		for k := rng.Intn(4); k > 0; k-- {
			add(rdf.T(s, rdf.NewIRI(PropReview), pick("review")))
		}
	}

	for i := 0; i < counts["event"]; i++ {
		s := node("event", i)
		add(rdf.T(s, typ, ClassEvent))
		langName(s, "Event", i)
		day := 1 + rng.Intn(27)
		month := 1 + rng.Intn(12)
		start := fmt.Sprintf("2022-%02d-%02dT10:00:00Z", month, day)
		end := fmt.Sprintf("2022-%02d-%02dT18:00:00Z", month, day)
		if dirty() {
			start, end = end, start // event ends before it starts
		}
		add(rdf.T(s, rdf.NewIRI(PropStartDate), rdf.NewTypedLiteral(start, rdf.XSDDateTime)))
		add(rdf.T(s, rdf.NewIRI(PropEndDate), rdf.NewTypedLiteral(end, rdf.XSDDateTime)))
		if counts["org"] > 0 && rng.Float64() < 0.85 {
			add(rdf.T(s, rdf.NewIRI(PropOrganizer), pick("org")))
		}
		if counts["place"] > 0 {
			add(rdf.T(s, rdf.NewIRI(PropLocation), pick("place")))
		}
		price := float64(rng.Intn(5000)) / 10
		if dirty() {
			price = -5
		}
		add(rdf.T(s, rdf.NewIRI(PropPrice), rdf.NewDecimal(price)))
		add(rdf.T(s, rdf.NewIRI(PropCapacity), rdf.NewInteger(int64(10+rng.Intn(5000)))))
		url := fmt.Sprintf("https://tyrol.example/events/%d", i)
		if dirty() {
			url = "no scheme at all"
		}
		add(rdf.T(s, rdf.NewIRI(PropURL), rdf.NewString(url)))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
