// Package datagen generates the synthetic workloads standing in for the
// paper's evaluation assets (see DESIGN.md, "Substitutions"): a
// schema.org-flavoured tourism knowledge graph replacing the Tyrolean
// Knowledge Graph, the 57 benchmark shapes replacing the Schaffenrath et
// al. suite, a preferential-attachment coauthorship graph replacing DBLP,
// and a 46-query benchmark mix replacing BSBM/WatDiv.
package datagen

import (
	"fmt"
	"math/rand"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// NS is the namespace of the synthetic tourism vocabulary.
const NS = "http://tyrol.example/"

// Vocabulary IRIs.
var (
	ClassEvent        = rdf.NewIRI(NS + "Event")
	ClassLodging      = rdf.NewIRI(NS + "Lodging")
	ClassHotel        = rdf.NewIRI(NS + "Hotel")
	ClassHostel       = rdf.NewIRI(NS + "Hostel")
	ClassPlace        = rdf.NewIRI(NS + "Place")
	ClassPerson       = rdf.NewIRI(NS + "Person")
	ClassOrganization = rdf.NewIRI(NS + "Organization")
	ClassReview       = rdf.NewIRI(NS + "Review")

	PropName       = NS + "name"
	PropStartDate  = NS + "startDate"
	PropEndDate    = NS + "endDate"
	PropOrganizer  = NS + "organizer"
	PropLocation   = NS + "location"
	PropPrice      = NS + "price"
	PropCapacity   = NS + "capacity"
	PropURL        = NS + "url"
	PropRating     = NS + "rating"
	PropCheckin    = NS + "checkinHour"
	PropCheckout   = NS + "checkoutHour"
	PropAmenity    = NS + "amenity"
	PropOwner      = NS + "owner"
	PropReview     = NS + "review"
	PropPostalCode = NS + "postalCode"
	PropInDistrict = NS + "inDistrict"
	PropEmail      = NS + "email"
	PropWorksFor   = NS + "worksFor"
	PropKnows      = NS + "knows"
	PropLegalName  = NS + "legalName"
	PropSubOrgOf   = NS + "subOrganizationOf"
	PropAuthor     = NS + "author"
	PropText       = NS + "text"
	PropAlias      = NS + "alias"
)

// TyrolConfig scales the synthetic tourism graph. Individuals is the number
// of entity nodes; the triple count is roughly 7× that, mirroring the
// density of the paper's induced subgraphs (50K individuals ≈ 1.5M triples
// there; defaults here are laptop-scale).
type TyrolConfig struct {
	Individuals int
	Seed        int64
	// DirtyRate is the fraction of entities given constraint-violating
	// data, so validation reports and why-not provenance are non-trivial.
	DirtyRate float64
}

// Tyrol generates the synthetic tourism knowledge graph.
func Tyrol(cfg TyrolConfig) *rdfgraph.Graph {
	if cfg.Individuals <= 0 {
		cfg.Individuals = 1000
	}
	if cfg.DirtyRate == 0 {
		cfg.DirtyRate = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := rdfgraph.New()
	typ := rdf.NewIRI(rdf.RDFType)

	// Static class hierarchy.
	sub := rdf.NewIRI(rdf.RDFSSubClassOf)
	g.Add(rdf.T(ClassHotel, sub, ClassLodging))
	g.Add(rdf.T(ClassHostel, sub, ClassLodging))

	n := cfg.Individuals
	counts := map[string]int{
		"event":   n * 30 / 100,
		"lodging": n * 20 / 100,
		"place":   n * 15 / 100,
		"person":  n * 15 / 100,
		"org":     n * 8 / 100,
		"review":  n * 12 / 100,
	}
	node := func(kind string, i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("%s%s/%d", NS, kind, i))
	}
	pick := func(kind string) rdf.Term {
		return node(kind, rng.Intn(max(1, counts[kind])))
	}
	dirty := func() bool { return rng.Float64() < cfg.DirtyRate }
	langName := func(s rdf.Term, base string, i int) {
		name := fmt.Sprintf("%s %d", base, i)
		switch {
		case dirty():
			// Duplicate language tag: violates uniqueLang.
			g.Add(rdf.T(s, rdf.NewIRI(PropName), rdf.NewLangString(name, "de")))
			g.Add(rdf.T(s, rdf.NewIRI(PropName), rdf.NewLangString(name+" alt", "de")))
		case dirty():
			// Missing entirely: violates minCount.
		default:
			g.Add(rdf.T(s, rdf.NewIRI(PropName), rdf.NewLangString(name, "de")))
			g.Add(rdf.T(s, rdf.NewIRI(PropName), rdf.NewLangString(name, "en")))
		}
	}

	// Places form a district tree, exercised by zeroOrMore paths.
	for i := 0; i < counts["place"]; i++ {
		s := node("place", i)
		g.Add(rdf.T(s, typ, ClassPlace))
		langName(s, "Place", i)
		code := fmt.Sprintf("%04d", 6000+rng.Intn(999))
		if dirty() {
			code = "A" + code // violates the postal code pattern
		}
		g.Add(rdf.T(s, rdf.NewIRI(PropPostalCode), rdf.NewString(code)))
		if i > 0 {
			g.Add(rdf.T(s, rdf.NewIRI(PropInDistrict), node("place", rng.Intn(i))))
		}
	}

	for i := 0; i < counts["org"]; i++ {
		s := node("org", i)
		g.Add(rdf.T(s, typ, ClassOrganization))
		langName(s, "Org", i)
		legal := rdf.NewString(fmt.Sprintf("Org %d GmbH", i))
		g.Add(rdf.T(s, rdf.NewIRI(PropLegalName), legal))
		if rng.Float64() < 0.5 {
			// alias equals legalName for equals-constraints (dirty: differs).
			if dirty() {
				g.Add(rdf.T(s, rdf.NewIRI(PropAlias), rdf.NewString("Wrong Alias")))
			} else {
				g.Add(rdf.T(s, rdf.NewIRI(PropAlias), legal))
			}
		}
		if i > 0 && rng.Float64() < 0.6 {
			g.Add(rdf.T(s, rdf.NewIRI(PropSubOrgOf), node("org", rng.Intn(i))))
		}
	}

	for i := 0; i < counts["person"]; i++ {
		s := node("person", i)
		g.Add(rdf.T(s, typ, ClassPerson))
		langName(s, "Person", i)
		email := fmt.Sprintf("person%d@example.org", i)
		if dirty() {
			email = "not-an-email"
		}
		g.Add(rdf.T(s, rdf.NewIRI(PropEmail), rdf.NewString(email)))
		if counts["org"] > 0 && rng.Float64() < 0.7 {
			g.Add(rdf.T(s, rdf.NewIRI(PropWorksFor), pick("org")))
		}
		for k := rng.Intn(3); k > 0; k-- {
			g.Add(rdf.T(s, rdf.NewIRI(PropKnows), pick("person")))
		}
	}

	for i := 0; i < counts["review"]; i++ {
		s := node("review", i)
		g.Add(rdf.T(s, typ, ClassReview))
		rating := int64(1 + rng.Intn(5))
		if dirty() {
			rating = 9 // out of range
		}
		g.Add(rdf.T(s, rdf.NewIRI(PropRating), rdf.NewInteger(rating)))
		if counts["person"] > 0 {
			g.Add(rdf.T(s, rdf.NewIRI(PropAuthor), pick("person")))
		}
		g.Add(rdf.T(s, rdf.NewIRI(PropText),
			rdf.NewLangString(fmt.Sprintf("review text %d", i), []string{"de", "en", "it"}[rng.Intn(3)])))
	}

	for i := 0; i < counts["lodging"]; i++ {
		s := node("lodging", i)
		if rng.Float64() < 0.6 {
			g.Add(rdf.T(s, typ, ClassHotel))
		} else {
			g.Add(rdf.T(s, typ, ClassHostel))
		}
		langName(s, "Lodging", i)
		if counts["place"] > 0 {
			g.Add(rdf.T(s, rdf.NewIRI(PropLocation), pick("place")))
		}
		in, out := int64(10+rng.Intn(5)), int64(15+rng.Intn(8))
		if dirty() {
			in, out = out+1, in // checkin after checkout: violates lessThan
		}
		g.Add(rdf.T(s, rdf.NewIRI(PropCheckin), rdf.NewInteger(in)))
		g.Add(rdf.T(s, rdf.NewIRI(PropCheckout), rdf.NewInteger(out)))
		for k := rng.Intn(3); k > 0; k-- {
			g.Add(rdf.T(s, rdf.NewIRI(PropAmenity),
				rdf.NewString([]string{"wifi", "parking", "sauna", "pool"}[rng.Intn(4)])))
		}
		if counts["person"] > 0 {
			g.Add(rdf.T(s, rdf.NewIRI(PropOwner), pick("person")))
		}
		for k := rng.Intn(4); k > 0; k-- {
			g.Add(rdf.T(s, rdf.NewIRI(PropReview), pick("review")))
		}
	}

	for i := 0; i < counts["event"]; i++ {
		s := node("event", i)
		g.Add(rdf.T(s, typ, ClassEvent))
		langName(s, "Event", i)
		day := 1 + rng.Intn(27)
		month := 1 + rng.Intn(12)
		start := fmt.Sprintf("2022-%02d-%02dT10:00:00Z", month, day)
		end := fmt.Sprintf("2022-%02d-%02dT18:00:00Z", month, day)
		if dirty() {
			start, end = end, start // event ends before it starts
		}
		g.Add(rdf.T(s, rdf.NewIRI(PropStartDate), rdf.NewTypedLiteral(start, rdf.XSDDateTime)))
		g.Add(rdf.T(s, rdf.NewIRI(PropEndDate), rdf.NewTypedLiteral(end, rdf.XSDDateTime)))
		if counts["org"] > 0 && rng.Float64() < 0.85 {
			g.Add(rdf.T(s, rdf.NewIRI(PropOrganizer), pick("org")))
		}
		if counts["place"] > 0 {
			g.Add(rdf.T(s, rdf.NewIRI(PropLocation), pick("place")))
		}
		price := float64(rng.Intn(5000)) / 10
		if dirty() {
			price = -5
		}
		g.Add(rdf.T(s, rdf.NewIRI(PropPrice), rdf.NewDecimal(price)))
		g.Add(rdf.T(s, rdf.NewIRI(PropCapacity), rdf.NewInteger(int64(10+rng.Intn(5000)))))
		url := fmt.Sprintf("https://tyrol.example/events/%d", i)
		if dirty() {
			url = "no scheme at all"
		}
		g.Add(rdf.T(s, rdf.NewIRI(PropURL), rdf.NewString(url)))
	}
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
