package datagen

import (
	"fmt"
	"math/rand"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// Coauthorship vocabulary, standing in for the DBLP RDF schema.
const (
	PropAuthoredBy = NS + "authoredBy"
	PropYear       = NS + "year"
)

// HubAuthor is the designated prolific central author, playing the role of
// Moshe Y. Vardi in the Figure 3 experiment.
var HubAuthor = rdf.NewIRI(NS + "author/hub")

// CoauthorConfig scales the synthetic coauthorship graph.
type CoauthorConfig struct {
	Papers  int
	YearMin int // inclusive, default 2010
	YearMax int // inclusive, default 2021
	Seed    int64
	// HubRate is the probability that a paper includes the hub author,
	// modelling a prolific, central researcher.
	HubRate float64
}

// Coauthor is a generated coauthorship corpus. Papers can be sliced by
// year, mirroring the paper's "increasing slices of DBLP, going backwards
// in time from 2021 until 2010".
type Coauthor struct {
	cfg    CoauthorConfig
	papers []paperRec
}

type paperRec struct {
	id      rdf.Term
	year    int
	authors []rdf.Term
}

// NewCoauthor generates the corpus. Author selection uses preferential
// attachment, so a few authors (the hub most of all) become highly central,
// reproducing DBLP's densification around prolific researchers.
func NewCoauthor(cfg CoauthorConfig) *Coauthor {
	if cfg.Papers <= 0 {
		cfg.Papers = 2000
	}
	if cfg.YearMin == 0 {
		cfg.YearMin = 2010
	}
	if cfg.YearMax == 0 {
		cfg.YearMax = 2021
	}
	if cfg.HubRate == 0 {
		cfg.HubRate = 0.03
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Coauthor{cfg: cfg}

	author := func(i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("%sauthor/%d", NS, i))
	}
	// occurrences implements preferential attachment: each published
	// authorship makes an author proportionally more likely to publish
	// again.
	occurrences := []rdf.Term{author(0), HubAuthor}
	nextAuthor := 1
	years := cfg.YearMax - cfg.YearMin + 1

	for i := 0; i < cfg.Papers; i++ {
		year := cfg.YearMin + rng.Intn(years)
		k := 1 + rng.Intn(4)
		seen := map[rdf.Term]bool{}
		var authors []rdf.Term
		if rng.Float64() < cfg.HubRate {
			authors = append(authors, HubAuthor)
			seen[HubAuthor] = true
		}
		for len(authors) < k {
			var a rdf.Term
			if rng.Float64() < 0.3 {
				a = author(nextAuthor)
				nextAuthor++
			} else {
				a = occurrences[rng.Intn(len(occurrences))]
			}
			if seen[a] {
				continue
			}
			seen[a] = true
			authors = append(authors, a)
		}
		occurrences = append(occurrences, authors...)
		c.papers = append(c.papers, paperRec{
			id:      rdf.NewIRI(fmt.Sprintf("%spaper/%d", NS, i)),
			year:    year,
			authors: authors,
		})
	}
	return c
}

// Graph materializes the slice of papers with year ≥ fromYear as an RDF
// graph with authoredBy and year triples.
func (c *Coauthor) Graph(fromYear int) *rdfgraph.Graph {
	g := rdfgraph.New()
	authored := rdf.NewIRI(PropAuthoredBy)
	yearProp := rdf.NewIRI(PropYear)
	for _, p := range c.papers {
		if p.year < fromYear {
			continue
		}
		g.Add(rdf.T(p.id, yearProp, rdf.NewInteger(int64(p.year))))
		for _, a := range p.authors {
			g.Add(rdf.T(p.id, authored, a))
		}
	}
	return g
}

// YearMin returns the earliest generated year.
func (c *Coauthor) YearMin() int { return c.cfg.YearMin }

// YearMax returns the latest generated year.
func (c *Coauthor) YearMax() int { return c.cfg.YearMax }

// HubDistance3Shape is the Figure 3 request shape:
// ≥1 (a⁻/a/a⁻/a/a⁻/a).hasValue(hub) with a = authoredBy. Its fragment
// contains every authoredBy triple on a coauthorship path of length ≤ 3 to
// the hub author.
func HubDistance3Shape() shape.Shape {
	a := paths.P(PropAuthoredBy)
	hop := paths.SeqOf(paths.Inv(a), a) // author → paper → coauthor
	return shape.Min(1, paths.SeqOf(hop, hop, hop), shape.Value(HubAuthor))
}
