package datagen

import (
	"fmt"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shape"
)

// BenchQuery is one entry of the 46-query benchmark mix standing in for the
// BSBM and WatDiv suites of Section 4.1: a CONSTRUCT-style subgraph query,
// together with the request shape expressing it as a shape fragment when
// one exists (39 of 46, as in the paper).
type BenchQuery struct {
	Name   string
	Source string // query family: "watdiv" (tree BGPs) or "bsbm" (filters, optionals)
	// SPARQL is the CONSTRUCT WHERE form of the query, for display.
	SPARQL string
	// Expressible reports whether the query is expressible as a shape
	// fragment; Request is the request shape when it is.
	Expressible bool
	Request     shape.Shape
	// Reason explains inexpressibility.
	Reason string
}

// qnode is a tree-shaped query pattern: a node with constraints and edges.
type qnode struct {
	value    *rdf.Term      // constant required at this node
	test     shape.NodeTest // filter on this node's value
	children []qedge
}

type qedge struct {
	prop     string
	inverse  bool
	optional bool // OPTIONAL { ... }
	absent   bool // OPTIONAL { ... } FILTER(!bound(...)): property must be absent
	child    qnode
}

// shapeOf derives the request shape of a tree query (the Section 4.1
// simulation): child edges become ≥1/≥0/≤0 quantifiers, node constants
// become hasValue, filters become node tests.
func (n qnode) shapeOf() shape.Shape {
	var conj []shape.Shape
	if n.value != nil {
		conj = append(conj, shape.Value(*n.value))
	}
	if n.test != nil {
		conj = append(conj, shape.NodeTestShape(n.test))
	}
	for _, e := range n.children {
		var p paths.Expr = paths.P(e.prop)
		if e.inverse {
			p = paths.Inv(p)
		}
		sub := e.child.shapeOf()
		switch {
		case e.absent:
			conj = append(conj, shape.Max(0, p, sub))
		case e.optional:
			conj = append(conj, shape.Min(0, p, sub))
		default:
			conj = append(conj, shape.Min(1, p, sub))
		}
	}
	return shape.AndOf(conj...)
}

// sparqlOf renders the tree query as CONSTRUCT WHERE text.
func (n qnode) sparqlOf() string {
	var b strings.Builder
	b.WriteString("CONSTRUCT WHERE {\n")
	counter := 0
	var walk func(node qnode, v string)
	walk = func(node qnode, v string) {
		if node.test != nil {
			fmt.Fprintf(&b, "  FILTER(%s(%s))\n", node.test, v)
		}
		for _, e := range node.children {
			counter++
			cv := fmt.Sprintf("?v%d", counter)
			if e.child.value != nil {
				cv = e.child.value.String()
			}
			line := fmt.Sprintf("%s <%s> %s .", v, e.prop, cv)
			if e.inverse {
				line = fmt.Sprintf("%s <%s> %s .", cv, e.prop, v)
			}
			switch {
			case e.absent:
				fmt.Fprintf(&b, "  OPTIONAL { %s ?flag%d }\n  FILTER(!bound(?flag%d))\n",
					strings.TrimSuffix(line, " ."), counter, counter)
			case e.optional:
				fmt.Fprintf(&b, "  OPTIONAL { %s }\n", line)
			default:
				fmt.Fprintf(&b, "  %s\n", line)
			}
			walk(e.child, cv)
		}
	}
	root := "?v0"
	if n.value != nil {
		root = n.value.String()
	}
	walk(n, root)
	b.WriteString("}")
	return b.String()
}

func leaf() qnode                          { return qnode{} }
func valNode(t rdf.Term) qnode             { return qnode{value: &t} }
func testNode(nt shape.NodeTest) qnode     { return qnode{test: nt} }
func edge(p string, c qnode) qedge         { return qedge{prop: p, child: c} }
func invEdge(p string, c qnode) qedge      { return qedge{prop: p, inverse: true, child: c} }
func optEdge(p string, c qnode) qedge      { return qedge{prop: p, optional: true, child: c} }
func absentEdge(p string, c qnode) qedge   { return qedge{prop: p, absent: true, child: c} }
func tree(children ...qedge) qnode         { return qnode{children: children} }
func treeAt(v rdf.Term, cs ...qedge) qnode { return qnode{value: &v, children: cs} }

// BenchmarkQueries returns the 46-query mix: 39 expressible as shape
// fragments, 7 not (variables in the property position, arithmetic) — the
// same split and the same reasons as the paper's BSBM/WatDiv study.
func BenchmarkQueries() []BenchQuery {
	var qs []BenchQuery
	addTree := func(source string, n qnode) {
		qs = append(qs, BenchQuery{
			Name:        fmt.Sprintf("Q%02d", len(qs)+1),
			Source:      source,
			SPARQL:      n.sparqlOf(),
			Expressible: true,
			Request:     n.shapeOf(),
		})
	}
	addRaw := func(source, sparqlText, reason string) {
		qs = append(qs, BenchQuery{
			Name:   fmt.Sprintf("Q%02d", len(qs)+1),
			Source: source,
			SPARQL: sparqlText,
			Reason: reason,
		})
	}
	wifi := rdf.NewString("wifi")
	pool := rdf.NewString("pool")

	// --- WatDiv-style tree-shaped basic graph patterns (20) ---
	addTree("watdiv", tree(edge(PropName, leaf())))
	addTree("watdiv", tree(edge(PropName, leaf()), edge(PropLocation, leaf())))
	addTree("watdiv", tree(edge(PropLocation, tree(edge(PropPostalCode, leaf())))))
	addTree("watdiv", tree(edge(PropOrganizer, tree(edge(PropName, leaf()), edge(PropLegalName, leaf())))))
	addTree("watdiv", tree(edge(PropReview, tree(edge(PropRating, leaf()), edge(PropAuthor, leaf())))))
	addTree("watdiv", tree(edge(PropReview, tree(edge(PropAuthor, tree(edge(PropEmail, leaf())))))))
	addTree("watdiv", tree(edge(PropOwner, tree(edge(PropKnows, tree(edge(PropName, leaf())))))))
	// The paper's WatDiv example: caption + review(title, reviewer ← actor).
	addTree("watdiv", tree(
		edge(PropName, leaf()),
		edge(PropReview, tree(
			edge(PropText, leaf()),
			edge(PropAuthor, tree(invEdge(PropOwner, leaf()))),
		)),
	))
	addTree("watdiv", tree(edge(PropLocation, tree(edge(PropInDistrict, tree(edge(PropPostalCode, leaf()))))))) //nolint:lll
	addTree("watdiv", tree(edge(PropOrganizer, tree(edge(PropSubOrgOf, tree(edge(PropName, leaf())))))))
	addTree("watdiv", tree(invEdge(PropAuthoredBy, tree(edge(PropYear, leaf())))))
	addTree("watdiv", tree(edge(PropStartDate, leaf()), edge(PropEndDate, leaf()), edge(PropPrice, leaf())))
	addTree("watdiv", tree(edge(PropCapacity, leaf()), edge(PropURL, leaf())))
	addTree("watdiv", tree(edge(PropAmenity, valNode(wifi))))
	addTree("watdiv", tree(edge(PropAmenity, valNode(wifi)), edge(PropAmenity, valNode(pool))))
	addTree("watdiv", treeAt(HubAuthor, invEdge(PropAuthoredBy, tree(edge(PropAuthoredBy, leaf())))))
	addTree("watdiv", tree(edge(PropWorksFor, tree(edge(PropLegalName, leaf()))), edge(PropEmail, leaf())))
	addTree("watdiv", tree(edge(PropKnows, tree(edge(PropKnows, tree(edge(PropName, leaf())))))))
	addTree("watdiv", tree(invEdge(PropReview, tree(edge(PropCheckin, leaf())))))
	addTree("watdiv", tree(edge(PropText, leaf()), edge(PropRating, leaf()), edge(PropAuthor, leaf())))

	// --- BSBM-style queries with filters (9) ---
	addTree("bsbm", tree(edge(PropName, testNode(shape.HasLang{Tag: "en"}))))
	addTree("bsbm", tree(edge(PropText, testNode(shape.HasLang{Tag: "de"})), edge(PropRating, leaf())))
	addTree("bsbm", tree(edge(PropPrice, testNode(shape.MaxExclusive{Bound: rdf.NewInteger(100)}))))
	addTree("bsbm", tree(edge(PropRating, testNode(shape.MinInclusive{Bound: rdf.NewInteger(4)})),
		edge(PropAuthor, leaf())))
	addTree("bsbm", tree(edge(PropPostalCode, testNode(shape.MustPattern(`^60`)))))
	addTree("bsbm", tree(edge(PropCapacity, testNode(shape.MinExclusive{Bound: rdf.NewInteger(1000)})),
		edge(PropLocation, tree(edge(PropName, leaf())))))
	addTree("bsbm", tree(edge(PropEmail, testNode(shape.MustPattern(`@example\.org$`)))))
	addTree("bsbm", tree(edge(PropName, testNode(shape.MinLength{N: 8}))))
	addTree("bsbm", tree(edge(PropURL, testNode(shape.MustPattern(`^https://`))),
		edge(PropOrganizer, leaf())))

	// --- BSBM-style queries with OPTIONAL (6) ---
	addTree("bsbm", tree(edge(PropName, leaf()), optEdge(PropRating, leaf())))
	addTree("bsbm", tree(edge(PropText, testNode(shape.HasLang{Tag: "en"})), optEdge(PropRating, leaf())))
	addTree("bsbm", tree(edge(PropName, leaf()), optEdge(PropReview, tree(edge(PropRating, leaf())))))
	addTree("bsbm", tree(edge(PropLocation, leaf()), optEdge(PropOrganizer, tree(edge(PropName, leaf())))))
	addTree("bsbm", tree(edge(PropCheckin, leaf()), optEdge(PropAmenity, leaf())))
	addTree("bsbm", tree(edge(PropOwner, tree(optEdge(PropKnows, leaf()), edge(PropEmail, leaf())))))

	// --- BSBM-style negated-bound queries: absence of a property (4) ---
	addTree("bsbm", tree(edge(PropName, leaf()), absentEdge(PropOrganizer, leaf())))
	addTree("bsbm", tree(edge(PropAmenity, valNode(wifi)), absentEdge(PropAmenity, valNode(pool))))
	addTree("bsbm", tree(edge(PropRating, leaf()), absentEdge(PropAuthor, leaf())))
	addTree("bsbm", tree(edge(PropStartDate, leaf()), absentEdge(PropURL, leaf())))

	// --- Inexpressible: variables in the property position (5) ---
	addRaw("watdiv", "CONSTRUCT WHERE { ?v0 ?p "+HubAuthor.String()+" . }",
		"variable in property position with constant object")
	addRaw("watdiv", "CONSTRUCT WHERE { ?v0 ?p ?v0 . }",
		"variable in property position with repeated subject variable")
	addRaw("watdiv", "CONSTRUCT WHERE { <"+NS+"event/1> ?p <"+NS+"place/1> . }",
		"variable in property position between two constants")
	addRaw("bsbm", "CONSTRUCT WHERE { ?v0 <"+PropName+"> ?n . ?v0 ?p ?n . }",
		"variable in property position with repeated object variable")
	addRaw("bsbm", "CONSTRUCT WHERE { ?v0 ?p ?x . ?x ?p ?y . }",
		"variable in property position shared across triples")

	// --- Inexpressible: arithmetic (2) ---
	addRaw("bsbm", "CONSTRUCT WHERE { ?v0 <"+PropPrice+"> ?p1 . ?v0 <"+PropCapacity+"> ?c . FILTER(?p1 * 2 > ?c) }",
		"arithmetic over two property values")
	addRaw("bsbm", "CONSTRUCT WHERE { ?v0 <"+PropCheckin+"> ?in . ?v0 <"+PropCheckout+"> ?out . FILTER(?out - ?in >= 6) }",
		"arithmetic over two property values")

	return qs
}
