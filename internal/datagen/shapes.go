package datagen

import (
	"fmt"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// BenchmarkShapes returns the 57 benchmark shape definitions standing in
// for the Schaffenrath et al. performance suite the paper reuses. They are
// organized in the same constraint families: cardinality, value type,
// value range, string-based, language, property pair, closedness/value,
// logic, qualified shapes, property paths, and the "existential with many
// targets and large neighborhoods" family the paper singles out as the
// high-overhead cases.
func BenchmarkShapes() []schema.Definition {
	p := func(name string) paths.Expr { return paths.P(name) }
	t := shape.TrueShape()
	var defs []schema.Definition
	add := func(s shape.Shape, target shape.Shape) {
		defs = append(defs, schema.Definition{
			Name:   rdf.NewIRI(fmt.Sprintf("%sshape/S%02d", NS, len(defs)+1)),
			Shape:  s,
			Target: target,
		})
	}
	events := schema.TargetClass(ClassEvent)
	lodgings := schema.TargetClass(ClassLodging)
	places := schema.TargetClass(ClassPlace)
	persons := schema.TargetClass(ClassPerson)
	orgs := schema.TargetClass(ClassOrganization)
	reviews := schema.TargetClass(ClassReview)

	// --- Cardinality (8) ---
	add(shape.Min(1, p(PropName), t), events)
	add(shape.Min(2, p(PropName), t), events)
	add(shape.Max(2, p(PropName), t), events)
	add(shape.Min(1, p(PropStartDate), t), events)
	add(shape.AndOf(shape.Min(1, p(PropCheckin), t), shape.Max(1, p(PropCheckin), t)), lodgings)
	add(shape.Min(1, p(PropRating), t), reviews)
	add(shape.Max(5, p(PropAmenity), t), lodgings)
	add(shape.Min(1, p(PropLocation), t), events)

	// --- Value type: datatype / nodeKind / class (6) ---
	add(shape.All(p(PropRating), shape.NodeTestShape(shape.Datatype{IRI: rdf.XSDInteger})), reviews)
	add(shape.All(p(PropPrice), shape.NodeTestShape(shape.Datatype{IRI: rdf.XSDDecimal})), events)
	add(shape.All(p(PropStartDate), shape.NodeTestShape(shape.Datatype{IRI: rdf.XSDDateTime})), events)
	add(shape.All(p(PropOrganizer), shape.NodeTestShape(shape.IsIRI{})), events)
	add(shape.All(p(PropName), shape.NodeTestShape(shape.IsLiteral{})), lodgings)
	add(shape.All(p(PropOrganizer), schema.TargetClass(ClassOrganization)), events)

	// --- Value range (6) ---
	add(shape.All(p(PropRating), shape.NodeTestShape(shape.MinInclusive{Bound: rdf.NewInteger(1)})), reviews)
	add(shape.All(p(PropRating), shape.NodeTestShape(shape.MaxInclusive{Bound: rdf.NewInteger(5)})), reviews)
	add(shape.All(p(PropPrice), shape.NodeTestShape(shape.MinInclusive{Bound: rdf.NewInteger(0)})), events)
	add(shape.All(p(PropPrice), shape.NodeTestShape(shape.MaxExclusive{Bound: rdf.NewInteger(1000)})), events)
	add(shape.All(p(PropCapacity), shape.NodeTestShape(shape.MinExclusive{Bound: rdf.NewInteger(0)})), events)
	add(shape.AndOf(
		shape.All(p(PropCheckin), shape.NodeTestShape(shape.MinInclusive{Bound: rdf.NewInteger(0)})),
		shape.All(p(PropCheckout), shape.NodeTestShape(shape.MaxInclusive{Bound: rdf.NewInteger(24)})),
	), lodgings)

	// --- String-based (5) ---
	add(shape.All(p(PropPostalCode), shape.NodeTestShape(shape.MustPattern(`^[0-9]{4}$`))), places)
	add(shape.All(p(PropEmail), shape.NodeTestShape(shape.MustPattern(`^[^@ ]+@[^@ ]+$`))), persons)
	add(shape.All(p(PropURL), shape.NodeTestShape(shape.MustPattern(`^https?://`))), events)
	add(shape.All(p(PropName), shape.NodeTestShape(shape.MinLength{N: 3})), events)
	add(shape.All(p(PropLegalName), shape.NodeTestShape(shape.MaxLength{N: 60})), orgs)

	// --- Language (4) ---
	add(shape.UniqueLangShape(p(PropName)), events)
	add(shape.UniqueLangShape(p(PropName)), lodgings)
	add(shape.All(p(PropText), shape.OrOf(
		shape.NodeTestShape(shape.HasLang{Tag: "de"}),
		shape.NodeTestShape(shape.HasLang{Tag: "en"}),
		shape.NodeTestShape(shape.HasLang{Tag: "it"}),
	)), reviews)
	add(shape.Min(1, p(PropName), shape.NodeTestShape(shape.HasLang{Tag: "en"})), events)

	// --- Property pair (5) ---
	add(shape.Less(p(PropCheckin), PropCheckout), lodgings)
	add(shape.LessEq(p(PropStartDate), PropEndDate), events)
	add(shape.EqPath(p(PropAlias), PropLegalName), schema.TargetSubjectsOf(PropAlias))
	add(shape.DisjPath(p(PropName), PropLegalName), orgs)
	add(shape.DisjPath(p(PropOwner), PropReview), lodgings)

	// --- Closedness / hasValue / in (4) ---
	add(shape.ClosedShape(rdf.RDFType, PropName, PropStartDate, PropEndDate, PropOrganizer,
		PropLocation, PropPrice, PropCapacity, PropURL), events)
	add(shape.ClosedShape(rdf.RDFType, PropRating, PropAuthor, PropText), reviews)
	add(shape.All(p(PropAmenity), shape.OrOf(
		shape.Value(rdf.NewString("wifi")), shape.Value(rdf.NewString("parking")),
		shape.Value(rdf.NewString("sauna")), shape.Value(rdf.NewString("pool")),
	)), lodgings)
	add(shape.Min(1, p(PropAmenity), shape.Value(rdf.NewString("wifi"))), lodgings)

	// --- Logic (6) ---
	add(shape.AndOf(shape.Min(1, p(PropName), t), shape.Min(1, p(PropLocation), t)), lodgings)
	add(shape.OrOf(shape.Min(1, p(PropOrganizer), t), shape.Min(1, p(PropOwner), t)),
		schema.TargetClass(ClassEvent))
	add(shape.Neg(shape.Min(1, p(NS+"deprecated"), t)), events)
	add(shape.OrOf(
		shape.AndOf(shape.Min(1, p(PropCheckin), t), shape.Neg(shape.Min(1, p(PropStartDate), t))),
		shape.AndOf(shape.Min(1, p(PropStartDate), t), shape.Neg(shape.Min(1, p(PropCheckin), t))),
	), lodgings) // xone over checkin/startDate
	add(shape.Neg(shape.AndOf(shape.Min(1, p(PropPrice), shape.NodeTestShape(shape.MinExclusive{Bound: rdf.NewInteger(400)})),
		shape.Max(0, p(PropOrganizer), t))), events)
	add(shape.AndOf(shape.Min(1, p(PropRating), t),
		shape.Neg(shape.Min(1, p(PropRating), shape.NodeTestShape(shape.MinExclusive{Bound: rdf.NewInteger(5)})))), reviews)

	// --- Qualified / nested shapes (6) ---
	add(shape.Min(1, p(PropOrganizer), shape.Min(1, p(PropName), t)), events)
	add(shape.Min(1, p(PropReview), shape.Min(1, p(PropAuthor), t)), lodgings)
	add(shape.Max(2, p(PropReview), shape.Min(1, p(PropRating),
		shape.NodeTestShape(shape.MaxInclusive{Bound: rdf.NewInteger(2)}))), lodgings)
	add(shape.Min(1, p(PropLocation), shape.Min(1, p(PropPostalCode), t)), events)
	add(shape.All(p(PropReview), shape.AndOf(
		shape.Min(1, p(PropRating), t), shape.Min(1, p(PropAuthor), t))), lodgings)
	add(shape.Min(1, p(PropOwner), shape.Min(1, p(PropEmail), t)), lodgings)

	// --- Property paths (5) ---
	add(shape.Min(1, paths.Inv(p(PropReview)), t), reviews) // every review is referenced
	add(shape.Min(1, paths.SeqOf(p(PropLocation), p(PropPostalCode)), t), events)
	add(shape.All(paths.Star{X: p(PropInDistrict)}, shape.Min(1, p(PropPostalCode), t)), places)
	add(shape.Min(1, paths.SeqOf(p(PropOrganizer), paths.Star{X: p(PropSubOrgOf)}), t), events)
	add(shape.All(paths.SeqOf(p(PropOwner), p(PropKnows)), shape.Min(1, p(PropName), t)), lodgings)

	// --- Existential shapes with many targets and large neighborhoods (2):
	// the paper's highest-overhead family.
	add(shape.Min(1, p(PropName), t), schema.TargetSubjectsOf(PropName))
	add(shape.Min(1, paths.Star{X: p(PropKnows)}, shape.Min(1, p(PropWorksFor), t)), persons)

	return defs
}

// BenchmarkSchema wraps the 57 definitions in a single schema.
func BenchmarkSchema() *schema.Schema {
	return schema.MustNew(BenchmarkShapes()...)
}
