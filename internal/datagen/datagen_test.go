package datagen_test

import (
	"strings"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/validator"
)

func TestTyrolDeterministic(t *testing.T) {
	g1 := datagen.Tyrol(datagen.TyrolConfig{Individuals: 300, Seed: 1})
	g2 := datagen.Tyrol(datagen.TyrolConfig{Individuals: 300, Seed: 1})
	if !g1.Equal(g2) {
		t.Fatal("same seed must generate the same graph")
	}
	g3 := datagen.Tyrol(datagen.TyrolConfig{Individuals: 300, Seed: 2})
	if g1.Equal(g3) {
		t.Fatal("different seeds should differ")
	}
}

func TestTyrolDensity(t *testing.T) {
	n := 500
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: n, Seed: 7})
	ratio := float64(g.Len()) / float64(n)
	if ratio < 4 || ratio > 12 {
		t.Fatalf("triples per individual = %.1f, want roughly 7", ratio)
	}
	// All six entity classes must be populated.
	typ := g.LookupTerm(rdf.NewIRI(rdf.RDFType))
	classes := map[rdf.Term]int{}
	for _, e := range g.EdgesByPredicate(typ) {
		classes[g.Term(e.O)]++
	}
	for _, c := range []rdf.Term{
		datagen.ClassEvent, datagen.ClassHotel, datagen.ClassPlace,
		datagen.ClassPerson, datagen.ClassOrganization, datagen.ClassReview,
	} {
		if classes[c] == 0 {
			t.Errorf("class %v not populated: %v", c, classes)
		}
	}
}

func TestTyrolHasViolations(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 800, Seed: 3, DirtyRate: 0.1})
	h := datagen.BenchmarkSchema()
	report := h.Validate(g)
	if report.Conforms {
		t.Fatal("dirty data must produce violations")
	}
	v := report.Violations()
	if len(v) == 0 || len(v) == report.TargetedNodes {
		t.Fatalf("violations = %d of %d: want a non-trivial mix", len(v), report.TargetedNodes)
	}
}

func TestBenchmarkShapesCount(t *testing.T) {
	defs := datagen.BenchmarkShapes()
	if len(defs) != 57 {
		t.Fatalf("benchmark suite has %d shapes, want 57", len(defs))
	}
	names := map[string]bool{}
	for _, d := range defs {
		if names[d.Name.Value] {
			t.Fatalf("duplicate shape name %s", d.Name)
		}
		names[d.Name.Value] = true
		if d.Shape == nil || d.Target == nil {
			t.Fatalf("definition %s incomplete", d.Name)
		}
	}
}

func TestBenchmarkShapesExtractable(t *testing.T) {
	// Every one of the 57 shapes must validate and extract provenance
	// without panicking, and extraction must subset the graph.
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 200, Seed: 11})
	for _, d := range datagen.BenchmarkShapes() {
		res := validator.Validate(g, schema.MustNew(d), validator.Options{CollectProvenance: true})
		for _, tr := range res.Fragment {
			if !g.Has(tr) {
				t.Fatalf("shape %s extracted non-subgraph triple %v", d.Name, tr)
			}
		}
	}
}

func TestCoauthorSlices(t *testing.T) {
	c := datagen.NewCoauthor(datagen.CoauthorConfig{Papers: 500, Seed: 5})
	full := c.Graph(c.YearMin())
	recent := c.Graph(2018)
	if recent.Len() >= full.Len() {
		t.Fatalf("slice (%d) must be smaller than full (%d)", recent.Len(), full.Len())
	}
	if recent.Len() == 0 {
		t.Fatal("recent slice must be non-empty")
	}
	// Slices are monotone: earlier cutoffs contain later ones.
	if !full.ContainsGraph(recent) {
		t.Fatal("full graph must contain the slice")
	}
	// Hub must be present and prolific.
	hub := full.LookupTerm(datagen.HubAuthor)
	if hub == rdfgraph.NoID {
		t.Fatal("hub author missing")
	}
	deg := 0
	full.PredicatesTo(hub, func(_, _ rdfgraph.ID) { deg++ })
	if deg < 5 {
		t.Fatalf("hub degree %d, want a prolific author", deg)
	}
}

func TestHubDistance3Fragment(t *testing.T) {
	c := datagen.NewCoauthor(datagen.CoauthorConfig{Papers: 300, Seed: 9, HubRate: 0.05})
	g := c.Graph(2016)
	frag := core.Fragment(g, nil, datagen.HubDistance3Shape())
	if len(frag) == 0 {
		t.Fatal("distance-3 fragment must be non-empty")
	}
	authored := rdf.NewIRI(datagen.PropAuthoredBy)
	for _, tr := range frag {
		if !g.Has(tr) {
			t.Fatalf("fragment not a subgraph: %v", tr)
		}
		if tr.P != authored {
			t.Fatalf("fragment must contain only authoredBy triples, got %v", tr)
		}
	}
	// The hub's own papers are certainly within distance 3.
	hubEdges := 0
	for _, tr := range frag {
		if tr.O == datagen.HubAuthor {
			hubEdges++
		}
	}
	if hubEdges == 0 {
		t.Fatal("fragment must include the hub's authorship triples")
	}
}

func TestBenchmarkQueriesSplit(t *testing.T) {
	qs := datagen.BenchmarkQueries()
	if len(qs) != 46 {
		t.Fatalf("suite has %d queries, want 46", len(qs))
	}
	expressible := 0
	for _, q := range qs {
		if q.Expressible {
			expressible++
			if q.Request == nil {
				t.Errorf("%s expressible but has no request shape", q.Name)
			}
			if q.Reason != "" {
				t.Errorf("%s expressible but has a reason", q.Name)
			}
		} else {
			if q.Request != nil {
				t.Errorf("%s inexpressible but has a request shape", q.Name)
			}
			if q.Reason == "" {
				t.Errorf("%s inexpressible without reason", q.Name)
			}
		}
		if !strings.HasPrefix(q.SPARQL, "CONSTRUCT WHERE") {
			t.Errorf("%s SPARQL text malformed: %q", q.Name, q.SPARQL)
		}
	}
	if expressible != 39 {
		t.Fatalf("%d of 46 expressible, want 39 (as in the paper)", expressible)
	}
}

func TestBenchmarkQueriesRunnable(t *testing.T) {
	// Every expressible query's request shape must compute a fragment that
	// is a subgraph, and at least half must be non-empty on generated data.
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 400, Seed: 13})
	x := core.NewExtractor(g, nil)
	nonEmpty := 0
	total := 0
	for _, q := range datagen.BenchmarkQueries() {
		if !q.Expressible {
			continue
		}
		total++
		frag := x.Fragment([]shape.Shape{q.Request})
		for _, tr := range frag {
			if !g.Has(tr) {
				t.Fatalf("%s fragment not a subgraph: %v", q.Name, tr)
			}
		}
		if len(frag) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty*2 < total {
		t.Fatalf("only %d/%d expressible queries returned data; generator and queries mismatch", nonEmpty, total)
	}
}
