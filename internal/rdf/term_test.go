package rdf

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsBlank() || iri.IsLiteral() {
		t.Fatalf("IRI kind flags wrong: %+v", iri)
	}
	b := NewBlank("b0")
	if !b.IsBlank() {
		t.Fatalf("blank kind flags wrong: %+v", b)
	}
	s := NewString("hi")
	if !s.IsLiteral() || s.Datatype != XSDString {
		t.Fatalf("string literal wrong: %+v", s)
	}
	l := NewLangString("hoi", "NL")
	if l.Lang != "nl" {
		t.Fatalf("lang tag not lowercased: %+v", l)
	}
	if l.Datatype != RDFLangString {
		t.Fatalf("lang string datatype wrong: %+v", l)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewBlank("b1"), "_:b1"},
		{NewString("hi"), `"hi"`},
		{NewLangString("hi", "en"), `"hi"@en`},
		{NewInteger(42), `"42"^^<` + XSDInteger + `>`},
		{NewString("a\"b\\c\nd"), `"a\"b\\c\nd"`},
		{NewBoolean(true), `"true"^^<` + XSDBoolean + `>`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestSameLang(t *testing.T) {
	en1 := NewLangString("color", "en")
	en2 := NewLangString("colour", "EN")
	nl := NewLangString("kleur", "nl")
	plain := NewString("color")
	if !SameLang(en1, en2) {
		t.Error("same tag should be ~")
	}
	if SameLang(en1, nl) {
		t.Error("different tags should not be ~")
	}
	if SameLang(en1, plain) || SameLang(plain, plain) {
		t.Error("untagged literals are never ~")
	}
	if SameLang(en1, NewIRI("x")) {
		t.Error("IRIs are never ~")
	}
}

func TestLessNumeric(t *testing.T) {
	if !Less(NewInteger(1), NewInteger(2)) {
		t.Error("1 < 2")
	}
	if Less(NewInteger(2), NewInteger(1)) {
		t.Error("!(2 < 1)")
	}
	if Less(NewInteger(2), NewInteger(2)) {
		t.Error("!(2 < 2)")
	}
	if !Less(NewDecimal(1.5), NewInteger(2)) {
		t.Error("cross-numeric 1.5 < 2")
	}
	if !Less(NewDouble(-3), NewDecimal(0.5)) {
		t.Error("-3 < 0.5")
	}
}

func TestLessStrings(t *testing.T) {
	if !Less(NewString("a"), NewString("b")) {
		t.Error("a < b")
	}
	if Less(NewString("b"), NewString("a")) {
		t.Error("!(b < a)")
	}
	// Language-tagged strings are in the string class.
	if !Less(NewLangString("a", "en"), NewString("b")) {
		t.Error("lang string comparable to plain string")
	}
}

func TestLessIncomparable(t *testing.T) {
	num := NewInteger(1)
	str := NewString("1")
	if Less(num, str) || Less(str, num) {
		t.Error("numeric and string literals are incomparable")
	}
	iri := NewIRI("http://x/1")
	if Less(iri, num) || Less(num, iri) {
		t.Error("IRIs are incomparable")
	}
	junk := NewTypedLiteral("abc", XSDInteger)
	if Less(junk, num) || Less(num, junk) {
		t.Error("malformed numerics are incomparable")
	}
	other := NewTypedLiteral("x", "http://example.org/custom")
	if Less(other, other) {
		t.Error("unknown datatypes are incomparable")
	}
}

func TestLessBooleansAndDates(t *testing.T) {
	if !Less(NewBoolean(false), NewBoolean(true)) {
		t.Error("false < true")
	}
	if Less(NewBoolean(true), NewBoolean(false)) {
		t.Error("!(true < false)")
	}
	d1 := NewTypedLiteral("2021-01-01", XSDDate)
	d2 := NewTypedLiteral("2022-06-15", XSDDate)
	if !Less(d1, d2) {
		t.Error("2021 < 2022")
	}
	dt1 := NewTypedLiteral("2021-01-01T10:00:00Z", XSDDateTime)
	dt2 := NewTypedLiteral("2021-01-01T11:00:00Z", XSDDateTime)
	if !Less(dt1, dt2) {
		t.Error("dateTime hour order")
	}
	if Less(dt2, dt1) {
		t.Error("dateTime antisymmetry")
	}
}

func TestLessEq(t *testing.T) {
	if !LessEq(NewInteger(2), NewInteger(2)) {
		t.Error("2 <= 2")
	}
	if !LessEq(NewInteger(2), NewDecimal(2.0)) {
		t.Error("2 <= 2.0 across numeric types")
	}
	if !LessEq(NewString("a"), NewString("a")) {
		t.Error("a <= a")
	}
	if LessEq(NewInteger(3), NewInteger(2)) {
		t.Error("!(3 <= 2)")
	}
	if LessEq(NewInteger(1), NewString("2")) {
		t.Error("incomparable values are not <=")
	}
}

// Property: Less is a strict partial order — irreflexive, asymmetric, and
// transitive — on randomly generated literals.
func TestLessStrictPartialOrderProperty(t *testing.T) {
	gen := func(seed int64) Term {
		switch seed % 5 {
		case 0:
			return NewInteger(seed % 100)
		case 1:
			return NewDecimal(float64(seed%100) / 4)
		case 2:
			return NewString(string(rune('a' + seed%26)))
		case 3:
			return NewBoolean(seed%2 == 0)
		default:
			return NewTypedLiteral("2021-01-02", XSDDate)
		}
	}
	irrefl := func(x int64) bool {
		a := gen(x)
		return !Less(a, a)
	}
	if err := quick.Check(irrefl, nil); err != nil {
		t.Errorf("irreflexivity: %v", err)
	}
	asym := func(x, y int64) bool {
		a, b := gen(x), gen(y)
		return !(Less(a, b) && Less(b, a))
	}
	if err := quick.Check(asym, nil); err != nil {
		t.Errorf("asymmetry: %v", err)
	}
	trans := func(x, y, z int64) bool {
		a, b, c := gen(x), gen(y), gen(z)
		if Less(a, b) && Less(b, c) {
			return Less(a, c)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	terms := []Term{
		NewIRI("http://x/b"), NewIRI("http://x/a"), NewBlank("z"),
		NewBlank("a"), NewString("m"), NewLangString("m", "en"),
		NewInteger(5), NewString("a"),
	}
	sort.Slice(terms, func(i, j int) bool { return Compare(terms[i], terms[j]) < 0 })
	for i := 1; i < len(terms); i++ {
		if Compare(terms[i-1], terms[i]) > 0 {
			t.Fatalf("not sorted at %d: %v vs %v", i, terms[i-1], terms[i])
		}
	}
	// IRIs sort before blanks before literals.
	if !terms[0].IsIRI() || !terms[len(terms)-1].IsLiteral() {
		t.Errorf("kind ordering violated: %v", terms)
	}
	if Compare(NewString("m"), NewLangString("m", "en")) == 0 {
		t.Error("plain and lang-tagged literal must differ")
	}
}

func TestTripleBasics(t *testing.T) {
	a, p, b := NewIRI("http://x/a"), NewIRI("http://x/p"), NewIRI("http://x/b")
	tr := T(a, p, b)
	if !tr.Valid() {
		t.Error("IRI triple should be valid")
	}
	if T(NewString("s"), p, b).Valid() {
		t.Error("literal subject is invalid")
	}
	if T(a, NewBlank("p"), b).Valid() {
		t.Error("blank predicate is invalid")
	}
	if got := tr.String(); got != "<http://x/a> <http://x/p> <http://x/b>" {
		t.Errorf("triple string: %q", got)
	}
	if CompareTriples(tr, tr) != 0 {
		t.Error("triple self-compare")
	}
	if CompareTriples(T(a, p, a), T(a, p, b)) >= 0 {
		t.Error("object ordering")
	}
	if CompareTriples(T(a, a, b), T(a, p, b)) >= 0 {
		t.Error("predicate ordering")
	}
}

func TestNumericAndTimeValue(t *testing.T) {
	if v, ok := NewInteger(7).NumericValue(); !ok || v != 7 {
		t.Errorf("NumericValue(7) = %v, %v", v, ok)
	}
	if _, ok := NewString("7").NumericValue(); ok {
		t.Error("strings have no numeric value")
	}
	if _, ok := NewTypedLiteral("2020-05-05", XSDDate).TimeValue(); !ok {
		t.Error("date should parse")
	}
	if _, ok := NewTypedLiteral("not-a-date", XSDDate).TimeValue(); ok {
		t.Error("junk date should not parse")
	}
}
