package rdf_test

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shapetest"
)

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// TestCompareStrictTotalOrder property-tests that Compare induces a strict
// total order on terms (a < b iff Compare(a,b) < 0): irreflexive,
// antisymmetric, transitive, and total — distinct terms never compare
// equal, so sorted output has one canonical form.
//
// The generator's tiny universe makes every collision class likely: equal
// lexical values across kinds, across datatypes, and across language tags.
func TestCompareStrictTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 300
	terms := make([]rdf.Term, n)
	for i := range terms {
		terms[i] = shapetest.RandomTerm(rng)
	}

	// Irreflexivity and equality agreement: Compare(a, a) must be 0, and —
	// since Term is a comparable value type — Compare must be 0 ONLY for
	// identical terms, otherwise two distinct terms would be unordered and
	// the order would not be total.
	for i, a := range terms {
		if rdf.Compare(a, a) != 0 {
			t.Fatalf("Compare(a, a) = %d for %v", rdf.Compare(a, a), a)
		}
		for _, b := range terms[i+1:] {
			cab, cba := rdf.Compare(a, b), rdf.Compare(b, a)
			if sign(cab) != -sign(cba) {
				t.Fatalf("antisymmetry violated: Compare(%v, %v) = %d but Compare(%v, %v) = %d",
					a, b, cab, b, a, cba)
			}
			if cab == 0 && a != b {
				t.Fatalf("distinct terms compare equal: %#v vs %#v", a, b)
			}
		}
	}

	// Transitivity, sampled: < composes, and equal terms are
	// indistinguishable to the order.
	for trial := 0; trial < 200000; trial++ {
		a := terms[rng.Intn(n)]
		b := terms[rng.Intn(n)]
		c := terms[rng.Intn(n)]
		cab, cbc, cac := rdf.Compare(a, b), rdf.Compare(b, c), rdf.Compare(a, c)
		if cab < 0 && cbc < 0 && cac >= 0 {
			t.Fatalf("transitivity violated: %v < %v < %v but Compare(a, c) = %d", a, b, c, cac)
		}
		if cab == 0 && sign(cbc) != sign(cac) {
			t.Fatalf("equal terms order differently: %v = %v but Compare(b, c) = %d, Compare(a, c) = %d",
				a, b, cbc, cac)
		}
	}
}
