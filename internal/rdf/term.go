// Package rdf defines the RDF data model used throughout the repository:
// IRIs, blank nodes, literals (with datatypes and language tags), and
// triples. It also implements the two literal relations the paper assumes:
// the language-tag equivalence ~ (SameLang) and the strict partial order <
// on literal values (Less), covering numeric, string, boolean and dateTime
// comparisons.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind discriminates the three disjoint sets of RDF terms: I (IRIs),
// B (blank nodes) and L (literals).
type Kind uint8

const (
	// KindIRI marks a term from the set I of IRIs.
	KindIRI Kind = iota
	// KindBlank marks a term from the set B of blank nodes.
	KindBlank
	// KindLiteral marks a term from the set L of literals.
	KindLiteral
)

// Well-known datatype IRIs. Only the ones the comparison and parsing logic
// must recognize are listed; any other datatype IRI is carried opaquely.
const (
	XSDString     = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger    = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal    = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble     = "http://www.w3.org/2001/XMLSchema#double"
	XSDFloat      = "http://www.w3.org/2001/XMLSchema#float"
	XSDBoolean    = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDateTime   = "http://www.w3.org/2001/XMLSchema#dateTime"
	XSDDate       = "http://www.w3.org/2001/XMLSchema#date"
	RDFLangString = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

	// RDFType is the rdf:type property.
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	// RDFSSubClassOf is the rdfs:subClassOf property.
	RDFSSubClassOf = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	// RDFFirst and RDFRest encode RDF collections.
	RDFFirst = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first"
	RDFRest  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest"
	// RDFNil terminates RDF collections.
	RDFNil = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil"
)

// Term is a single RDF term. Term is a comparable value type so it can be
// used directly as a map key; the zero Term is the empty IRI, which is never
// produced by the parsers and can serve as a sentinel.
//
// For IRIs, Value holds the IRI string. For blank nodes, Value holds the
// label (without the "_:" prefix). For literals, Value holds the lexical
// form, Datatype the datatype IRI, and Lang the (lowercased) language tag;
// Lang is non-empty only when Datatype is rdf:langString.
type Term struct {
	Kind     Kind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns the IRI term for the given IRI string.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// NewString returns an xsd:string literal.
func NewString(s string) Term {
	return Term{Kind: KindLiteral, Value: s, Datatype: XSDString}
}

// NewLangString returns an rdf:langString literal with the given language
// tag. Tags compare case-insensitively, so the tag is lowercased.
func NewLangString(s, lang string) Term {
	return Term{Kind: KindLiteral, Value: s, Datatype: RDFLangString, Lang: strings.ToLower(lang)}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(i int64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatInt(i, 10), Datatype: XSDInteger}
}

// NewDecimal returns an xsd:decimal literal for the given value.
func NewDecimal(f float64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatFloat(f, 'f', -1, 64), Datatype: XSDDecimal}
}

// NewDouble returns an xsd:double literal for the given value.
func NewDouble(f float64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatFloat(f, 'g', -1, 64), Datatype: XSDDouble}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(b bool) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatBool(b), Datatype: XSDBoolean}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// String renders the term in N-Triples-like concrete syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		switch {
		case t.Lang != "":
			b.WriteByte('@')
			b.WriteString(t.Lang)
		case t.Datatype != "" && t.Datatype != XSDString:
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

// escapeLiteral escapes the quote, backslash and every C0 control
// character so the output re-lexes to the same lexical form. It walks
// bytes, not runes: all escaped characters are ASCII, and byte-copying
// the rest cannot corrupt multi-byte sequences the way a rune loop would
// (a rune loop rewrites invalid UTF-8 to U+FFFD).
func escapeLiteral(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\r':
			b.WriteString(`\r`)
		case c == '\t':
			b.WriteString(`\t`)
		case c == '\b':
			b.WriteString(`\b`)
		case c == '\f':
			b.WriteString(`\f`)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04X`, c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// SameLang implements the equivalence relation ~ on literals: both terms are
// language-tagged literals carrying the same (case-insensitive) tag.
func SameLang(a, b Term) bool {
	return a.IsLiteral() && b.IsLiteral() && a.Lang != "" && a.Lang == b.Lang
}

// valueClass partitions comparable literals; values of different classes are
// incomparable under Less, keeping < a strict partial order.
type valueClass uint8

const (
	classNone valueClass = iota
	classNumeric
	classString
	classBoolean
	classDateTime
)

func (t Term) class() valueClass {
	if !t.IsLiteral() {
		return classNone
	}
	switch t.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble, XSDFloat:
		return classNumeric
	case XSDString, "", RDFLangString:
		return classString
	case XSDBoolean:
		return classBoolean
	case XSDDateTime, XSDDate:
		return classDateTime
	default:
		return classNone
	}
}

// NumericValue parses the literal as a number, reporting whether it has a
// numeric datatype with a valid lexical form.
func (t Term) NumericValue() (float64, bool) {
	if t.class() != classNumeric {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// TimeValue parses the literal as an xsd:dateTime or xsd:date, reporting
// whether it parsed.
func (t Term) TimeValue() (time.Time, bool) {
	if t.class() != classDateTime {
		return time.Time{}, false
	}
	for _, layout := range []string{time.RFC3339, "2006-01-02T15:04:05", "2006-01-02"} {
		if v, err := time.Parse(layout, t.Value); err == nil {
			return v, true
		}
	}
	return time.Time{}, false
}

// Less implements the strict partial order < on literals the paper assumes
// for lessThan/lessThanEq shapes: numeric literals compare numerically,
// strings lexicographically, booleans false<true, and dateTime values
// chronologically. Terms in different classes, non-literals, and literals
// with unparseable lexical forms are incomparable (Less returns false for
// both orders).
func Less(a, b Term) bool {
	ca, cb := a.class(), b.class()
	if ca == classNone || ca != cb {
		return false
	}
	switch ca {
	case classNumeric:
		fa, oka := a.NumericValue()
		fb, okb := b.NumericValue()
		return oka && okb && fa < fb
	case classString:
		return a.Value < b.Value
	case classBoolean:
		return a.Value == "false" && b.Value == "true"
	case classDateTime:
		ta, oka := a.TimeValue()
		tb, okb := b.TimeValue()
		return oka && okb && ta.Before(tb)
	}
	return false
}

// LessEq reports a < b or a = b under the same comparability rules as Less.
// Note that, as in the paper, ¬(a ≤ b) is not the same as b < a: it also
// holds when a and b are incomparable.
func LessEq(a, b Term) bool {
	if Less(a, b) {
		return true
	}
	ca := a.class()
	if ca == classNone || ca != b.class() {
		return false
	}
	switch ca {
	case classNumeric:
		fa, oka := a.NumericValue()
		fb, okb := b.NumericValue()
		return oka && okb && fa == fb
	case classDateTime:
		ta, oka := a.TimeValue()
		tb, okb := b.TimeValue()
		return oka && okb && ta.Equal(tb)
	default:
		return a.Value == b.Value
	}
}

// Compare totally orders terms for deterministic output: IRIs < blanks <
// literals, then by value, datatype and language. This order is *not* the
// semantic < of the paper (see Less); it exists so that every set of terms
// or triples this library returns can be canonically sorted.
func Compare(a, b Term) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.Datatype, b.Datatype); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

// Triple is an RDF triple (s, p, o) ∈ (I ∪ B) × I × N.
type Triple struct {
	S, P, O Term
}

// T is shorthand for constructing a triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (without the final dot).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s", t.S, t.P, t.O)
}

// CompareTriples totally orders triples by subject, predicate, object.
func CompareTriples(a, b Triple) int {
	if c := Compare(a.S, b.S); c != 0 {
		return c
	}
	if c := Compare(a.P, b.P); c != 0 {
		return c
	}
	return Compare(a.O, b.O)
}

// Valid reports whether the triple satisfies the RDF constraints: the
// subject is an IRI or blank node and the predicate is an IRI.
func (t Triple) Valid() bool {
	return (t.S.IsIRI() || t.S.IsBlank()) && t.P.IsIRI()
}
