package shape_test

import (
	"math/rand"
	"strings"
	"testing"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
	"shaclfrag/internal/turtle"
)

const base = "http://x/"

func iri(s string) rdf.Term { return rdf.NewIRI(base + s) }

func mustGraph(t *testing.T, src string) *rdfgraph.Graph {
	t.Helper()
	g, err := turtle.Parse("@prefix ex: <" + base + "> .\n" + src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func conforms(t *testing.T, g *rdfgraph.Graph, node string, phi shape.Shape) bool {
	t.Helper()
	return shape.NewEvaluator(g, nil).ConformsTerm(iri(node), phi)
}

func p(name string) paths.Expr { return paths.P(base + name) }

func TestTrueFalse(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	if !conforms(t, g, "a", shape.TrueShape()) {
		t.Error("⊤ must hold")
	}
	if conforms(t, g, "a", shape.FalseShape()) {
		t.Error("⊥ must not hold")
	}
}

func TestHasValueAndTest(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p "lit" .`)
	if !conforms(t, g, "a", shape.Value(iri("a"))) {
		t.Error("hasValue(a) must hold at a")
	}
	if conforms(t, g, "a", shape.Value(iri("b"))) {
		t.Error("hasValue(b) must not hold at a")
	}
	if !conforms(t, g, "a", shape.NodeTestShape(shape.IsIRI{})) {
		t.Error("test(isIRI) must hold at an IRI")
	}
	ev := shape.NewEvaluator(g, nil)
	if !ev.ConformsTerm(rdf.NewString("lit"), shape.NodeTestShape(shape.IsLiteral{})) {
		t.Error("test(isLiteral) must hold at a literal")
	}
}

func TestMinCount(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b , ex:c . ex:b a ex:C .`)
	typeC := shape.Min(1, paths.P(rdf.RDFType), shape.Value(iri("C")))
	if !conforms(t, g, "a", shape.Min(2, p("p"), shape.TrueShape())) {
		t.Error("≥2 p.⊤ must hold with two p-edges")
	}
	if conforms(t, g, "a", shape.Min(3, p("p"), shape.TrueShape())) {
		t.Error("≥3 p.⊤ must fail with two p-edges")
	}
	if !conforms(t, g, "a", shape.Min(1, p("p"), typeC)) {
		t.Error("≥1 p.(≥1 type.hasValue(C)) must hold via b")
	}
	if conforms(t, g, "a", shape.Min(2, p("p"), typeC)) {
		t.Error("only one p-successor has type C")
	}
	// ≥0 holds vacuously, even with no successors at all.
	if !conforms(t, g, "c", shape.Min(0, p("p"), shape.FalseShape())) {
		t.Error("≥0 E.⊥ holds vacuously")
	}
}

func TestMaxCount(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b , ex:c , ex:d .`)
	if conforms(t, g, "a", shape.Max(2, p("p"), shape.TrueShape())) {
		t.Error("≤2 p.⊤ must fail with three p-edges")
	}
	if !conforms(t, g, "a", shape.Max(3, p("p"), shape.TrueShape())) {
		t.Error("≤3 p.⊤ must hold with three p-edges")
	}
	if !conforms(t, g, "b", shape.Max(0, p("p"), shape.TrueShape())) {
		t.Error("≤0 p.⊤ must hold with no p-edges")
	}
}

func TestForall(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:p ex:b , ex:c .
ex:b a ex:C . ex:c a ex:C .
ex:z ex:p ex:b , ex:bad .
`)
	typeC := shape.Min(1, paths.P(rdf.RDFType), shape.Value(iri("C")))
	all := shape.All(p("p"), typeC)
	if !conforms(t, g, "a", all) {
		t.Error("∀p.typeC must hold at a")
	}
	if conforms(t, g, "z", all) {
		t.Error("∀p.typeC must fail at z (bad has no type)")
	}
	// Vacuous truth for nodes without p-edges.
	if !conforms(t, g, "bad", all) {
		t.Error("∀ holds vacuously")
	}
}

func TestEq(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:p ex:x . ex:a ex:q ex:x .
ex:b ex:p ex:x . ex:b ex:q ex:y .
ex:c ex:p ex:x , ex:y . ex:c ex:q ex:x .
ex:loop ex:p ex:loop .
`)
	eq := shape.EqPath(p("p"), base+"q")
	if !conforms(t, g, "a", eq) {
		t.Error("eq must hold when sets match")
	}
	if conforms(t, g, "b", eq) {
		t.Error("eq must fail on different values")
	}
	if conforms(t, g, "c", eq) {
		t.Error("eq must fail on subset")
	}
	// Vacuous equality of two empty sets.
	if !conforms(t, g, "x", eq) {
		t.Error("eq of empty sets holds")
	}
	// eq(id, p): the only p-edge is a self-loop.
	if !conforms(t, g, "loop", shape.EqID(base+"p")) {
		t.Error("eq(id,p) must hold at self-loop-only node")
	}
	if conforms(t, g, "a", shape.EqID(base+"p")) {
		t.Error("eq(id,p) must fail when p-edge is not a self-loop")
	}
}

func TestDisj(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:friend ex:x . ex:a ex:colleague ex:y .
ex:b ex:friend ex:x . ex:b ex:colleague ex:x .
ex:loop ex:p ex:loop .
`)
	d := shape.DisjPath(p("friend"), base+"colleague")
	if !conforms(t, g, "a", d) {
		t.Error("disj must hold for disjoint sets")
	}
	if conforms(t, g, "b", d) {
		t.Error("disj must fail on common value")
	}
	// ¬disj(id, p): p-self-loop (Example 2.2).
	selfLoop := shape.Neg(shape.DisjID(base + "p"))
	if !conforms(t, g, "loop", selfLoop) {
		t.Error("¬disj(id,p) must hold at self-loop")
	}
	if conforms(t, g, "a", selfLoop) {
		t.Error("¬disj(id,p) must fail without self-loop")
	}
}

func TestClosed(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b ; ex:q ex:c . ex:b ex:r ex:c .`)
	if !conforms(t, g, "a", shape.ClosedShape(base+"p", base+"q")) {
		t.Error("closed({p,q}) must hold at a")
	}
	if conforms(t, g, "a", shape.ClosedShape(base+"p")) {
		t.Error("closed({p}) must fail at a (has q)")
	}
	// Nodes with no outgoing properties are closed under anything.
	if !conforms(t, g, "c", shape.ClosedShape()) {
		t.Error("closed({}) holds at sink nodes")
	}
}

func TestLessThan(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:low 1 , 2 ; ex:high 5 , 9 .
ex:b ex:low 5 ; ex:high 5 .
ex:c ex:low 1 ; ex:high "five" .
`)
	lt := shape.Less(p("low"), base+"high")
	lte := shape.LessEq(p("low"), base+"high")
	if !conforms(t, g, "a", lt) {
		t.Error("lessThan holds when all pairs ordered")
	}
	if conforms(t, g, "b", lt) {
		t.Error("lessThan fails on equality")
	}
	if !conforms(t, g, "b", lte) {
		t.Error("lessThanEq holds on equality")
	}
	if conforms(t, g, "c", lt) || conforms(t, g, "c", lte) {
		t.Error("incomparable values fail both lessThan and lessThanEq")
	}
}

func TestUniqueLang(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:label "hi"@en , "hallo"@nl .
ex:b ex:label "hi"@en , "hello"@en .
ex:c ex:label "same"@en , "same"@en .
ex:d ex:label "plain" , "plainer" .
`)
	ul := shape.UniqueLangShape(p("label"))
	if !conforms(t, g, "a", ul) {
		t.Error("distinct languages conform")
	}
	if conforms(t, g, "b", ul) {
		t.Error("duplicate language must fail")
	}
	// Identical literals are one value, so no clash.
	if !conforms(t, g, "c", ul) {
		t.Error("a single repeated literal is one value")
	}
	if !conforms(t, g, "d", ul) {
		t.Error("untagged literals never clash")
	}
}

func TestBooleanConnectives(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	hasP := shape.Min(1, p("p"), shape.TrueShape())
	hasQ := shape.Min(1, p("q"), shape.TrueShape())
	if !conforms(t, g, "a", shape.AndOf(hasP, shape.Neg(hasQ))) {
		t.Error("a has p and not q")
	}
	if !conforms(t, g, "a", shape.OrOf(hasQ, hasP)) {
		t.Error("or must hold")
	}
	if conforms(t, g, "a", shape.AndOf(hasP, hasQ)) {
		t.Error("and must fail")
	}
	if conforms(t, g, "a", shape.Neg(hasP)) {
		t.Error("negation must flip")
	}
}

func TestHasShapeResolution(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	defs := defsMap{
		iri("S"): shape.Min(1, p("p"), shape.TrueShape()),
	}
	ev := shape.NewEvaluator(g, defs)
	if !ev.ConformsTerm(iri("a"), shape.Ref(iri("S"))) {
		t.Error("hasShape(S) must resolve via defs")
	}
	if ev.ConformsTerm(iri("b"), shape.Ref(iri("S"))) {
		t.Error("b has no p-edge")
	}
	// Undefined shape names behave as ⊤.
	if !ev.ConformsTerm(iri("b"), shape.Ref(iri("Undefined"))) {
		t.Error("undefined shape names default to ⊤")
	}
}

type defsMap map[rdf.Term]shape.Shape

func (d defsMap) Def(name rdf.Term) (shape.Shape, bool) {
	s, ok := d[name]
	return s, ok
}

func TestWorkshopShapeExample(t *testing.T) {
	// Example 1.1/2.2: ≥1 author.≥1 type/subclassOf*.hasValue(Student).
	g := mustGraph(t, `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:paper1 ex:author ex:anne , ex:bob .
ex:anne rdf:type ex:Professor .
ex:bob rdf:type ex:PhDStudent .
ex:PhDStudent rdfs:subClassOf ex:Student .
ex:paper2 ex:author ex:anne .
`)
	student := shape.Min(1, p("author"),
		shape.Min(1, paths.SeqOf(paths.P(rdf.RDFType), paths.Star{X: paths.P(rdf.RDFSSubClassOf)}),
			shape.Value(iri("Student"))))
	if !conforms(t, g, "paper1", student) {
		t.Error("paper1 has a student author (via subclass)")
	}
	if conforms(t, g, "paper2", student) {
		t.Error("paper2 has no student author")
	}
}

func TestNNFRewrites(t *testing.T) {
	psi := shape.Value(iri("c"))
	e := p("p")
	cases := []struct {
		in   shape.Shape
		want string
	}{
		{shape.Neg(shape.Min(2, e, psi)), shape.Max(1, e, psi).String()},
		{shape.Neg(shape.Max(2, e, psi)), shape.Min(3, e, psi).String()},
		{shape.Neg(shape.Min(0, e, psi)), "⊥"},
		{shape.Neg(shape.All(e, psi)), shape.Min(1, e, shape.Neg(psi)).String()},
		{shape.Neg(shape.Neg(psi)), psi.String()},
		{shape.Neg(shape.TrueShape()), "⊥"},
		{shape.Neg(shape.FalseShape()), "⊤"},
		{shape.Neg(shape.AndOf(psi, shape.TrueShape())), shape.Neg(psi).String()},
	}
	for _, c := range cases {
		got := shape.NNF(c.in)
		if got.String() != c.want {
			t.Errorf("NNF(%s) = %s, want %s", c.in, got, c.want)
		}
		if !shape.IsNNF(got) {
			t.Errorf("NNF(%s) = %s is not in NNF", c.in, got)
		}
	}
}

func TestNNFDeMorgan(t *testing.T) {
	a := shape.Min(1, p("p"), shape.TrueShape())
	b := shape.EqID(base + "q")
	nnf := shape.NNF(shape.Neg(shape.AndOf(a, b)))
	or, ok := nnf.(*shape.Or)
	if !ok || len(or.Xs) != 2 {
		t.Fatalf("NNF(¬(a∧b)) = %s, want a disjunction", nnf)
	}
	if !shape.IsNNF(nnf) {
		t.Error("result must be NNF")
	}
}

// Property: NNF preserves conformance on random graphs and shapes.
func TestNNFPreservesConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		g := shapetest.RandomGraph(rng, 12)
		phi := shapetest.RandomShape(rng, 3)
		nnf := shape.NNF(phi)
		if !shape.IsNNF(nnf) {
			t.Fatalf("trial %d: NNF(%s) = %s not in NNF", trial, phi, nnf)
		}
		ev := shape.NewEvaluator(g, nil)
		for _, n := range g.NodeIDs() {
			if ev.Conforms(n, phi) != ev.Conforms(n, nnf) {
				t.Fatalf("trial %d: conformance differs at %v\nφ   = %s\nnnf = %s\ngraph:\n%s",
					trial, g.Term(n), phi, nnf, turtle.FormatGraph(g))
			}
		}
	}
}

func TestNodeTests(t *testing.T) {
	en := rdf.NewLangString("hello", "en")
	five := rdf.NewInteger(5)
	cases := []struct {
		test shape.NodeTest
		term rdf.Term
		want bool
	}{
		{shape.IsIRI{}, iri("a"), true},
		{shape.IsIRI{}, five, false},
		{shape.IsLiteral{}, five, true},
		{shape.IsBlank{}, rdf.NewBlank("b"), true},
		{shape.AnyOf{Tests: []shape.NodeTest{shape.IsIRI{}, shape.IsBlank{}}}, rdf.NewBlank("b"), true},
		{shape.AnyOf{Tests: []shape.NodeTest{shape.IsIRI{}, shape.IsBlank{}}}, five, false},
		{shape.Datatype{IRI: rdf.XSDInteger}, five, true},
		{shape.Datatype{IRI: rdf.XSDString}, five, false},
		{shape.HasLang{Tag: "en"}, en, true},
		{shape.HasLang{Tag: "EN"}, en, true},
		{shape.HasLang{Tag: "nl"}, en, false},
		{shape.MustPattern("^hel"), en, true},
		{shape.MustPattern("^bye"), en, false},
		{shape.MustPattern("."), rdf.NewBlank("b"), false},
		{shape.MinLength{N: 5}, en, true},
		{shape.MinLength{N: 6}, en, false},
		{shape.MaxLength{N: 5}, en, true},
		{shape.MaxLength{N: 4}, en, false},
		{shape.MinExclusive{Bound: rdf.NewInteger(4)}, five, true},
		{shape.MinExclusive{Bound: rdf.NewInteger(5)}, five, false},
		{shape.MinInclusive{Bound: rdf.NewInteger(5)}, five, true},
		{shape.MaxExclusive{Bound: rdf.NewInteger(6)}, five, true},
		{shape.MaxExclusive{Bound: rdf.NewInteger(5)}, five, false},
		{shape.MaxInclusive{Bound: rdf.NewInteger(5)}, five, true},
		{shape.MinExclusive{Bound: rdf.NewInteger(4)}, rdf.NewString("5"), false},
	}
	for _, c := range cases {
		if got := c.test.Holds(c.term); got != c.want {
			t.Errorf("%s.Holds(%s) = %v, want %v", c.test, c.term, got, c.want)
		}
	}
	if _, err := shape.NewPattern("("); err == nil {
		t.Error("bad regex must error")
	}
}

func TestShapeStrings(t *testing.T) {
	s := shape.AndOf(
		shape.Min(1, p("author"), shape.TrueShape()),
		shape.Neg(shape.DisjID(base+"p")),
	)
	str := s.String()
	for _, want := range []string{"≥1", "author", "¬disj(id"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestMentionedProperties(t *testing.T) {
	s := shape.AndOf(
		shape.Min(1, paths.SeqOf(p("a"), p("b")), shape.TrueShape()),
		shape.EqID(base+"c"),
		shape.ClosedShape(base+"d"),
	)
	props := shape.MentionedProperties(s)
	for _, name := range []string{"a", "b", "c", "d"} {
		if _, ok := props[base+name]; !ok {
			t.Errorf("missing property %q in %v", name, props)
		}
	}
	if len(props) != 4 {
		t.Errorf("got %d properties, want 4: %v", len(props), props)
	}
}

func TestShapeRefs(t *testing.T) {
	s := shape.AndOf(shape.Ref(iri("S1")), shape.Neg(shape.Ref(iri("S2"))), shape.Ref(iri("S1")))
	refs := shape.ShapeRefs(s)
	if len(refs) != 2 {
		t.Errorf("ShapeRefs = %v, want S1 and S2 once each", refs)
	}
}

func TestEvaluatorMemoization(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:p ex:c .`)
	ev := shape.NewEvaluator(g, nil)
	phi := shape.Min(1, p("p"), shape.TrueShape())
	ev.ConformsTerm(iri("a"), phi)
	checks := ev.Checks
	ev.ConformsTerm(iri("a"), phi)
	if ev.Checks != checks {
		t.Error("repeated evaluation must hit the cache")
	}
}

func TestAndOrFlattening(t *testing.T) {
	a := shape.Value(iri("a"))
	b := shape.Value(iri("b"))
	c := shape.Value(iri("c"))
	flat := shape.AndOf(shape.AndOf(a, b), c)
	and, ok := flat.(*shape.And)
	if !ok || len(and.Xs) != 3 {
		t.Errorf("AndOf must flatten: %s", flat)
	}
	if shape.AndOf(a).String() != a.String() {
		t.Error("singleton AndOf must collapse")
	}
	if _, ok := shape.AndOf().(*shape.True); !ok {
		t.Error("empty AndOf is ⊤")
	}
	if _, ok := shape.OrOf().(*shape.False); !ok {
		t.Error("empty OrOf is ⊥")
	}
	or, ok := shape.OrOf(shape.OrOf(a, b), c).(*shape.Or)
	if !ok || len(or.Xs) != 3 {
		t.Error("OrOf must flatten")
	}
}
