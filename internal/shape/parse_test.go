package shape_test

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
)

func TestParseBasicShapes(t *testing.T) {
	cases := []struct {
		src  string
		want string // expected String() rendering
	}{
		{"top", "⊤"},
		{"⊤", "⊤"},
		{"bot", "⊥"},
		{"hasValue(<http://x/a>)", "hasValue(<http://x/a>)"},
		{"hasValue(a)", "hasValue(<http://x/a>)"}, // base expansion
		{`hasValue("lit")`, `hasValue("lit")`},
		{`hasValue("hi"@en)`, `hasValue("hi"@en)`},
		{"hasValue(42)", `hasValue("42"^^<` + rdf.XSDInteger + `>)`},
		{"hasValue(true)", `hasValue("true"^^<` + rdf.XSDBoolean + `>)`},
		{"hasShape(<http://x/S>)", "hasShape(<http://x/S>)"},
		{"test(isIRI)", "test(isIRI)"},
		{"test(datatype(<http://x/dt>))", "test(datatype(<http://x/dt>))"},
		{"test(minLength(3))", "test(minLength(3))"},
		{"test(lang(en))", "test(lang(en))"},
		{`test(pattern("^a+$"))`, "test(pattern(^a+$))"},
		{"test(minExclusive(5))", `test(minExclusive("5"^^<` + rdf.XSDInteger + `>))`},
		{"eq(p, q)", "eq(<http://x/p>, <http://x/q>)"},
		{"eq(id, q)", "eq(id, <http://x/q>)"},
		{"disj(id, q)", "disj(id, <http://x/q>)"},
		{"closed(p, q)", "closed({<http://x/p>, <http://x/q>})"},
		{"closed()", "closed({})"},
		{"lessThan(p, q)", "lessThan(<http://x/p>, <http://x/q>)"},
		{"moreThanEq(p, q)", "moreThanEq(<http://x/p>, <http://x/q>)"},
		{"uniqueLang(p)", "uniqueLang(<http://x/p>)"},
		{">=1 p.top", "≥1 <http://x/p>.⊤"},
		{"≥2 p/q.⊤", "≥2 <http://x/p>/<http://x/q>.⊤"},
		{"<=0 p.bot", "≤0 <http://x/p>.⊥"},
		{"forall p.test(isIRI)", "∀<http://x/p>.test(isIRI)"},
		{"!top", "¬⊤"},
		{"top & bot", "⊤ ∧ ⊥"},
		{"top | bot", "⊤ ∨ ⊥"},
		{"!(top & bot)", "¬(⊤ ∧ ⊥)"},
		{">=1 p.(hasValue(a) | hasValue(b))", "≥1 <http://x/p>.(hasValue(<http://x/a>) ∨ hasValue(<http://x/b>))"},
		{">=1 (p|q)*.top", "≥1 (<http://x/p>|<http://x/q>)*.⊤"},
	}
	for _, c := range cases {
		got, err := shape.Parse(c.src, "http://x/")
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	s := shape.MustParse("hasValue(a) & hasValue(b) | hasValue(c)", "http://x/")
	or, ok := s.(*shape.Or)
	if !ok || len(or.Xs) != 2 {
		t.Fatalf("want (a∧b)∨c, got %s", s)
	}
	if _, ok := or.Xs[0].(*shape.And); !ok {
		t.Fatalf("∧ must bind tighter than ∨: %s", s)
	}
}

func TestParseErrorsShape(t *testing.T) {
	bad := []string{
		"", "nonsense", "hasValue()", "hasValue(a", ">=x p.top", ">=1 p top",
		"eq(p)", "test(unknown)", "top &", "(top", "hasValue(a) extra",
		`test(pattern("("))`, "<=1 p.", "eq(p, \"lit\")",
	}
	for _, src := range bad {
		if _, err := shape.Parse(src, "http://x/"); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

// Property: String() output of random shapes re-parses to a shape with the
// same rendering (full round trip through the textual syntax).
func TestParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		phi := shapetest.RandomShape(rng, 3)
		text := phi.String()
		back, err := shape.Parse(text, "")
		if err != nil {
			// hasShape over blank names and Test over AnyOf render in forms
			// the parser does not accept; skip those.
			if containsUnparseable(phi) {
				continue
			}
			t.Fatalf("trial %d: Parse(String(%s)): %v", trial, text, err)
		}
		if back.String() != text {
			t.Fatalf("trial %d: round trip changed shape:\n%s\nvs\n%s", trial, text, back)
		}
	}
}

func containsUnparseable(phi shape.Shape) bool {
	found := false
	shape.Walk(phi, func(s shape.Shape) {
		switch x := s.(type) {
		case *shape.Test:
			if _, ok := x.T.(shape.AnyOf); ok {
				found = true
			}
		case *shape.HasShape:
			if !x.Name.IsIRI() {
				found = true
			}
		}
	})
	return found
}

func TestMoreThanSemantics(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:high 9 ; ex:low 5 .
ex:b ex:high 5 ; ex:low 5 .
ex:c ex:high 3 ; ex:low 5 .
`)
	more := shape.More(p("high"), base+"low")
	moreEq := shape.MoreEq(p("high"), base+"low")
	if !conforms(t, g, "a", more) {
		t.Error("9 > 5 must conform to moreThan")
	}
	if conforms(t, g, "b", more) {
		t.Error("5 > 5 must fail moreThan")
	}
	if !conforms(t, g, "b", moreEq) {
		t.Error("5 >= 5 must conform to moreThanEq")
	}
	if conforms(t, g, "c", moreEq) {
		t.Error("3 >= 5 must fail moreThanEq")
	}
	// Remark 2.3: moreThan(E,p) is not equivalent to ¬lessThanEq(E,p) —
	// a node with no p-values satisfies both moreThan and lessThanEq.
	empty := mustGraph(t, `ex:x ex:other ex:y .`)
	if !conforms(t, empty, "x", more) {
		t.Error("moreThan holds vacuously")
	}
	if conforms(t, empty, "x", shape.Neg(shape.LessEq(p("high"), base+"low"))) {
		t.Error("¬lessThanEq fails vacuously — the two are inequivalent")
	}
}

func TestMoreThanNNF(t *testing.T) {
	m := shape.More(p("high"), base+"low")
	nnf := shape.NNF(shape.Neg(m))
	if !shape.IsNNF(nnf) {
		t.Fatalf("NNF(¬moreThan) = %s not NNF", nnf)
	}
	not, ok := nnf.(*shape.Not)
	if !ok {
		t.Fatalf("¬moreThan must stay a negated atom, got %s", nnf)
	}
	if _, ok := not.X.(*shape.MoreThan); !ok {
		t.Fatalf("inner atom wrong: %s", nnf)
	}
}
