// Package shape implements the formal SHACL shape algebra of the paper
// (Section 2): the shape grammar, node tests Ω, negation normal form, and
// the conformance relation H, G, a ⊨ φ of Table 1.
//
// All shape constructors return pointers so shapes can be used as map keys
// for memoization. Shapes are immutable after construction.
package shape

import (
	"fmt"
	"sort"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
)

// Shape is a shape expression φ from the grammar
//
//	φ := ⊤ | ⊥ | hasShape(s) | test(t) | hasValue(c)
//	   | eq(F, p) | disj(F, p) | closed(P)
//	   | lessThan(E, p) | lessThanEq(E, p) | uniqueLang(E)
//	   | ¬φ | φ ∧ φ | φ ∨ φ
//	   | ≥n E.φ | ≤n E.φ | ∀E.φ
type Shape interface {
	fmt.Stringer
	isShape()
}

// True is ⊤, satisfied by every node.
type True struct{}

// False is ⊥, satisfied by no node.
type False struct{}

// HasShape is hasShape(s): the focus node conforms to the shape named s in
// the schema. An undefined name behaves as ⊤ (real-SHACL behavior).
type HasShape struct {
	Name rdf.Term
}

// Test is test(t) for a node test t ∈ Ω.
type Test struct {
	T NodeTest
}

// HasValue is hasValue(c): the focus node equals the constant c.
type HasValue struct {
	C rdf.Term
}

// Eq is eq(F, p). Path nil encodes F = id (the focus node itself).
type Eq struct {
	Path paths.Expr // nil means id
	P    string     // property IRI
}

// Disj is disj(F, p). Path nil encodes F = id.
type Disj struct {
	Path paths.Expr // nil means id
	P    string
}

// Closed is closed(P): every property of the focus node is in Allowed.
type Closed struct {
	Allowed []string // sorted property IRIs
}

// LessThan is lessThan(E, p): b < c for all E-values b and p-values c.
type LessThan struct {
	Path paths.Expr
	P    string
}

// LessThanEq is lessThanEq(E, p).
type LessThanEq struct {
	Path paths.Expr
	P    string
}

// UniqueLang is uniqueLang(E): no two distinct E-values share a language tag.
type UniqueLang struct {
	Path paths.Expr
}

// MoreThan is moreThan(E, p): c < b for all E-values b and p-values c.
// SHACL itself lacks this constraint; the paper's Remark 2.3 notes the
// treatment extends to it directly, and this implementation does so.
type MoreThan struct {
	Path paths.Expr
	P    string
}

// MoreThanEq is moreThanEq(E, p): c ≤ b for all E-values b and p-values c.
type MoreThanEq struct {
	Path paths.Expr
	P    string
}

// Not is ¬φ.
type Not struct {
	X Shape
}

// And is a conjunction of one or more shapes.
type And struct {
	Xs []Shape
}

// Or is a disjunction of one or more shapes.
type Or struct {
	Xs []Shape
}

// MinCount is ≥n E.φ: at least n E-successors conform to φ.
type MinCount struct {
	N    int
	Path paths.Expr
	X    Shape
}

// MaxCount is ≤n E.φ: at most n E-successors conform to φ.
type MaxCount struct {
	N    int
	Path paths.Expr
	X    Shape
}

// Forall is ∀E.φ: every E-successor conforms to φ.
type Forall struct {
	Path paths.Expr
	X    Shape
}

func (*True) isShape()       {}
func (*False) isShape()      {}
func (*HasShape) isShape()   {}
func (*Test) isShape()       {}
func (*HasValue) isShape()   {}
func (*Eq) isShape()         {}
func (*Disj) isShape()       {}
func (*Closed) isShape()     {}
func (*LessThan) isShape()   {}
func (*LessThanEq) isShape() {}
func (*UniqueLang) isShape() {}
func (*MoreThan) isShape()   {}
func (*MoreThanEq) isShape() {}
func (*Not) isShape()        {}
func (*And) isShape()        {}
func (*Or) isShape()         {}
func (*MinCount) isShape()   {}
func (*MaxCount) isShape()   {}
func (*Forall) isShape()     {}

// Constructor helpers. AndOf and OrOf flatten nested conjunctions and
// collapse singletons so that shapes print compactly.

// TrueShape returns ⊤.
func TrueShape() Shape { return &True{} }

// FalseShape returns ⊥.
func FalseShape() Shape { return &False{} }

// Ref returns hasShape(name).
func Ref(name rdf.Term) Shape { return &HasShape{Name: name} }

// NodeTestShape returns test(t).
func NodeTestShape(t NodeTest) Shape { return &Test{T: t} }

// Value returns hasValue(c).
func Value(c rdf.Term) Shape { return &HasValue{C: c} }

// EqPath returns eq(E, p).
func EqPath(e paths.Expr, p string) Shape { return &Eq{Path: e, P: p} }

// EqID returns eq(id, p).
func EqID(p string) Shape { return &Eq{P: p} }

// DisjPath returns disj(E, p).
func DisjPath(e paths.Expr, p string) Shape { return &Disj{Path: e, P: p} }

// DisjID returns disj(id, p).
func DisjID(p string) Shape { return &Disj{P: p} }

// ClosedShape returns closed(P) for the given allowed property IRIs.
func ClosedShape(allowed ...string) Shape {
	sorted := append([]string(nil), allowed...)
	sort.Strings(sorted)
	return &Closed{Allowed: sorted}
}

// Less returns lessThan(E, p).
func Less(e paths.Expr, p string) Shape { return &LessThan{Path: e, P: p} }

// LessEq returns lessThanEq(E, p).
func LessEq(e paths.Expr, p string) Shape { return &LessThanEq{Path: e, P: p} }

// UniqueLangShape returns uniqueLang(E).
func UniqueLangShape(e paths.Expr) Shape { return &UniqueLang{Path: e} }

// More returns moreThan(E, p).
func More(e paths.Expr, p string) Shape { return &MoreThan{Path: e, P: p} }

// MoreEq returns moreThanEq(E, p).
func MoreEq(e paths.Expr, p string) Shape { return &MoreThanEq{Path: e, P: p} }

// Neg returns ¬φ.
func Neg(x Shape) Shape { return &Not{X: x} }

// AndOf returns the conjunction of the given shapes, flattening nested
// conjunctions. AndOf() is ⊤.
func AndOf(xs ...Shape) Shape {
	flat := flatten(xs, true)
	switch len(flat) {
	case 0:
		return &True{}
	case 1:
		return flat[0]
	default:
		return &And{Xs: flat}
	}
}

// OrOf returns the disjunction of the given shapes, flattening nested
// disjunctions. OrOf() is ⊥.
func OrOf(xs ...Shape) Shape {
	flat := flatten(xs, false)
	switch len(flat) {
	case 0:
		return &False{}
	case 1:
		return flat[0]
	default:
		return &Or{Xs: flat}
	}
}

func flatten(xs []Shape, conj bool) []Shape {
	var out []Shape
	for _, x := range xs {
		if x == nil {
			continue
		}
		if conj {
			if t, ok := x.(*True); ok && t != nil {
				continue // ⊤ is the unit of ∧
			}
			if inner, ok := x.(*And); ok {
				out = append(out, inner.Xs...)
				continue
			}
		} else {
			if f, ok := x.(*False); ok && f != nil {
				continue // ⊥ is the unit of ∨
			}
			if inner, ok := x.(*Or); ok {
				out = append(out, inner.Xs...)
				continue
			}
		}
		out = append(out, x)
	}
	return out
}

// Min returns ≥n E.φ.
func Min(n int, e paths.Expr, x Shape) Shape { return &MinCount{N: n, Path: e, X: x} }

// Max returns ≤n E.φ.
func Max(n int, e paths.Expr, x Shape) Shape { return &MaxCount{N: n, Path: e, X: x} }

// All returns ∀E.φ.
func All(e paths.Expr, x Shape) Shape { return &Forall{Path: e, X: x} }

// String renderings follow the paper's mathematical notation.

func (*True) String() string  { return "⊤" }
func (*False) String() string { return "⊥" }

func (s *HasShape) String() string { return "hasShape(" + s.Name.String() + ")" }
func (s *Test) String() string     { return "test(" + s.T.String() + ")" }
func (s *HasValue) String() string { return "hasValue(" + s.C.String() + ")" }

func pathOrID(e paths.Expr) string {
	if e == nil {
		return "id"
	}
	return e.String()
}

func (s *Eq) String() string   { return "eq(" + pathOrID(s.Path) + ", <" + s.P + ">)" }
func (s *Disj) String() string { return "disj(" + pathOrID(s.Path) + ", <" + s.P + ">)" }

func (s *Closed) String() string {
	parts := make([]string, len(s.Allowed))
	for i, p := range s.Allowed {
		parts[i] = "<" + p + ">"
	}
	return "closed({" + strings.Join(parts, ", ") + "})"
}

func (s *LessThan) String() string   { return "lessThan(" + s.Path.String() + ", <" + s.P + ">)" }
func (s *LessThanEq) String() string { return "lessThanEq(" + s.Path.String() + ", <" + s.P + ">)" }
func (s *UniqueLang) String() string { return "uniqueLang(" + s.Path.String() + ")" }
func (s *MoreThan) String() string   { return "moreThan(" + s.Path.String() + ", <" + s.P + ">)" }
func (s *MoreThanEq) String() string { return "moreThanEq(" + s.Path.String() + ", <" + s.P + ">)" }

func (s *Not) String() string { return "¬" + paren(s.X) }

func (s *And) String() string { return joinShapes(s.Xs, " ∧ ") }
func (s *Or) String() string  { return joinShapes(s.Xs, " ∨ ") }

func joinShapes(xs []Shape, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = paren(x)
	}
	return strings.Join(parts, sep)
}

func paren(x Shape) string {
	switch x.(type) {
	case *And, *Or, *MinCount, *MaxCount, *Forall:
		return "(" + x.String() + ")"
	default:
		return x.String()
	}
}

func (s *MinCount) String() string {
	return fmt.Sprintf("≥%d %s.%s", s.N, s.Path, paren(s.X))
}

func (s *MaxCount) String() string {
	return fmt.Sprintf("≤%d %s.%s", s.N, s.Path, paren(s.X))
}

func (s *Forall) String() string {
	return fmt.Sprintf("∀%s.%s", s.Path, paren(s.X))
}

// Walk visits every subshape of φ in preorder, including φ itself.
func Walk(phi Shape, visit func(Shape)) {
	visit(phi)
	switch x := phi.(type) {
	case *Not:
		Walk(x.X, visit)
	case *And:
		for _, c := range x.Xs {
			Walk(c, visit)
		}
	case *Or:
		for _, c := range x.Xs {
			Walk(c, visit)
		}
	case *MinCount:
		Walk(x.X, visit)
	case *MaxCount:
		Walk(x.X, visit)
	case *Forall:
		Walk(x.X, visit)
	}
}

// ShapeRefs returns the shape names referenced via hasShape anywhere in φ.
func ShapeRefs(phi Shape) []rdf.Term {
	seen := make(map[rdf.Term]struct{})
	var out []rdf.Term
	Walk(phi, func(s Shape) {
		if ref, ok := s.(*HasShape); ok {
			if _, dup := seen[ref.Name]; !dup {
				seen[ref.Name] = struct{}{}
				out = append(out, ref.Name)
			}
		}
	})
	return out
}

// MentionedProperties returns all property IRIs occurring in φ, whether in
// path expressions, pair constraints, or closedness sets. This realizes the
// "properties mentioned in φ" notion of Lemma D.1.
func MentionedProperties(phi Shape) map[string]struct{} {
	out := make(map[string]struct{})
	addPath := func(e paths.Expr) {
		if e == nil {
			return
		}
		for p := range paths.Properties(e) {
			out[p] = struct{}{}
		}
	}
	Walk(phi, func(s Shape) {
		switch x := s.(type) {
		case *Eq:
			addPath(x.Path)
			out[x.P] = struct{}{}
		case *Disj:
			addPath(x.Path)
			out[x.P] = struct{}{}
		case *Closed:
			for _, p := range x.Allowed {
				out[p] = struct{}{}
			}
		case *LessThan:
			addPath(x.Path)
			out[x.P] = struct{}{}
		case *LessThanEq:
			addPath(x.Path)
			out[x.P] = struct{}{}
		case *UniqueLang:
			addPath(x.Path)
		case *MoreThan:
			addPath(x.Path)
			out[x.P] = struct{}{}
		case *MoreThanEq:
			addPath(x.Path)
			out[x.P] = struct{}{}
		case *MinCount:
			addPath(x.Path)
		case *MaxCount:
			addPath(x.Path)
		case *Forall:
			addPath(x.Path)
		}
	})
	return out
}
