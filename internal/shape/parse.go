package shape

import (
	"fmt"
	"strconv"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
)

// Parse parses the textual syntax for formal shapes, mirroring the paper's
// mathematical notation. ASCII and Unicode spellings are both accepted:
//
//	top | ⊤, bot | ⊥
//	hasShape(<iri>), hasValue(<iri> | "lit" | "lit"@en | 42 | true)
//	test(isIRI | isLiteral | isBlank | datatype(<iri>) | lang(tag) |
//	     pattern("re") | minLength(n) | maxLength(n) |
//	     minExclusive(lit) | maxExclusive(lit) | minInclusive(lit) | maxInclusive(lit))
//	eq(E, <p>), eq(id, <p>), disj(E, <p>), disj(id, <p>)
//	closed(<p>, <q>, …)
//	lessThan(E, <p>), lessThanEq(E, <p>), uniqueLang(E)
//	moreThan(E, <p>), moreThanEq(E, <p>)
//	!φ | ¬φ, φ & ψ | φ ∧ ψ, φ "|" ψ | φ ∨ ψ
//	>=n E.φ | ≥n E.φ, <=n E.φ | ≤n E.φ, forall E.φ | all E.φ | ∀E.φ
//
// Path expressions E use the syntax of paths.Parse; bare property names are
// expanded with base. Precedence: ¬ binds tightest, then ∧, then ∨;
// quantifier bodies extend as far right as possible (use parentheses).
func Parse(input, base string) (Shape, error) {
	p := &shapeParser{input: input, base: base}
	s, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, p.errf("trailing input %q", p.input[p.pos:])
	}
	return s, nil
}

// MustParse is Parse panicking on error, for constants in tests/examples.
func MustParse(input, base string) Shape {
	s, err := Parse(input, base)
	if err != nil {
		panic(err)
	}
	return s
}

type shapeParser struct {
	input string
	base  string
	pos   int
}

func (p *shapeParser) errf(format string, args ...any) error {
	return fmt.Errorf("shape: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *shapeParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
}

// eat consumes one of the given spellings if present.
func (p *shapeParser) eat(tokens ...string) bool {
	p.skipSpace()
	for _, tok := range tokens {
		if strings.HasPrefix(p.input[p.pos:], tok) {
			p.pos += len(tok)
			return true
		}
	}
	return false
}

// peekWord reads an identifier without consuming it.
func (p *shapeParser) peekWord() string {
	p.skipSpace()
	end := p.pos
	for end < len(p.input) {
		c := p.input[end]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			end++
			continue
		}
		break
	}
	return p.input[p.pos:end]
}

func (p *shapeParser) parseOr() (Shape, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []Shape{left}
	for p.eat("|", "∨") {
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return left, nil
	}
	return &Or{Xs: parts}, nil
}

func (p *shapeParser) parseAnd() (Shape, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []Shape{left}
	for p.eat("&", "∧") {
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return left, nil
	}
	return &And{Xs: parts}, nil
}

func (p *shapeParser) parseUnary() (Shape, error) {
	if p.eat("!", "¬") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{X: inner}, nil
	}
	if p.eat(">=", "≥") {
		return p.parseQuantifier(quantMin)
	}
	if p.eat("<=", "≤") {
		return p.parseQuantifier(quantMax)
	}
	if p.eat("∀") {
		return p.parseQuantifierBody(quantAll, 0)
	}
	switch p.peekWord() {
	case "forall", "all":
		p.eat(p.peekWord())
		return p.parseQuantifierBody(quantAll, 0)
	}
	return p.parsePrimary()
}

type quantKind int

const (
	quantMin quantKind = iota
	quantMax
	quantAll
)

func (p *shapeParser) parseQuantifier(kind quantKind) (Shape, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return nil, p.errf("expected count after quantifier")
	}
	n, err := strconv.Atoi(p.input[start:p.pos])
	if err != nil {
		return nil, p.errf("bad count: %v", err)
	}
	return p.parseQuantifierBody(kind, n)
}

func (p *shapeParser) parseQuantifierBody(kind quantKind, n int) (Shape, error) {
	path, err := p.parsePathUntilDot()
	if err != nil {
		return nil, err
	}
	body, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	switch kind {
	case quantMin:
		return &MinCount{N: n, Path: path, X: body}, nil
	case quantMax:
		return &MaxCount{N: n, Path: path, X: body}, nil
	default:
		return &Forall{Path: path, X: body}, nil
	}
}

// parsePathUntilDot scans the path expression section of a quantifier: it
// extends to the first '.' at bracket/paren depth zero.
func (p *shapeParser) parsePathUntilDot() (paths.Expr, error) {
	p.skipSpace()
	depth := 0
	inIRI := false
	end := p.pos
	for end < len(p.input) {
		c := p.input[end]
		switch {
		case inIRI:
			if c == '>' {
				inIRI = false
			}
		case c == '<':
			inIRI = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == '.' && depth == 0:
			goto done
		}
		end++
	}
done:
	if end >= len(p.input) || p.input[end] != '.' {
		return nil, p.errf("expected '.' after quantifier path")
	}
	text := strings.TrimSpace(p.input[p.pos:end])
	expr, err := paths.Parse(text, p.base)
	if err != nil {
		return nil, err
	}
	p.pos = end + 1
	return expr, nil
}

func (p *shapeParser) parsePrimary() (Shape, error) {
	p.skipSpace()
	if p.eat("⊤") {
		return &True{}, nil
	}
	if p.eat("⊥") {
		return &False{}, nil
	}
	if p.eat("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, p.errf("expected ')'")
		}
		return inner, nil
	}
	word := p.peekWord()
	switch word {
	case "top", "true":
		p.eat(word)
		return &True{}, nil
	case "bot", "bottom", "false":
		p.eat(word)
		return &False{}, nil
	case "hasShape":
		p.eat(word)
		args, err := p.parseArgs(1)
		if err != nil {
			return nil, err
		}
		term, err := p.termArg(args[0])
		if err != nil {
			return nil, err
		}
		return &HasShape{Name: term}, nil
	case "hasValue":
		p.eat(word)
		args, err := p.parseArgs(1)
		if err != nil {
			return nil, err
		}
		term, err := p.termArg(args[0])
		if err != nil {
			return nil, err
		}
		return &HasValue{C: term}, nil
	case "test":
		p.eat(word)
		args, err := p.parseArgs(1)
		if err != nil {
			return nil, err
		}
		nt, err := p.nodeTestArg(args[0])
		if err != nil {
			return nil, err
		}
		return &Test{T: nt}, nil
	case "eq", "disj":
		p.eat(word)
		args, err := p.parseArgs(2)
		if err != nil {
			return nil, err
		}
		prop, err := p.propArg(args[1])
		if err != nil {
			return nil, err
		}
		var path paths.Expr
		if strings.TrimSpace(args[0]) != "id" {
			path, err = paths.Parse(args[0], p.base)
			if err != nil {
				return nil, err
			}
		}
		if word == "eq" {
			return &Eq{Path: path, P: prop}, nil
		}
		return &Disj{Path: path, P: prop}, nil
	case "closed":
		p.eat(word)
		args, err := p.parseArgs(-1)
		if err != nil {
			return nil, err
		}
		var props []string
		for _, a := range args {
			// Accept the String() rendering closed({<p>, <q>}) by stripping
			// the set braces.
			a = strings.Trim(strings.TrimSpace(a), "{}")
			if strings.TrimSpace(a) == "" {
				continue
			}
			prop, err := p.propArg(a)
			if err != nil {
				return nil, err
			}
			props = append(props, prop)
		}
		return ClosedShape(props...), nil
	case "lessThan", "lessThanEq", "moreThan", "moreThanEq":
		p.eat(word)
		args, err := p.parseArgs(2)
		if err != nil {
			return nil, err
		}
		path, err := paths.Parse(args[0], p.base)
		if err != nil {
			return nil, err
		}
		prop, err := p.propArg(args[1])
		if err != nil {
			return nil, err
		}
		switch word {
		case "lessThan":
			return &LessThan{Path: path, P: prop}, nil
		case "lessThanEq":
			return &LessThanEq{Path: path, P: prop}, nil
		case "moreThan":
			return &MoreThan{Path: path, P: prop}, nil
		default:
			return &MoreThanEq{Path: path, P: prop}, nil
		}
	case "uniqueLang":
		p.eat(word)
		args, err := p.parseArgs(1)
		if err != nil {
			return nil, err
		}
		path, err := paths.Parse(args[0], p.base)
		if err != nil {
			return nil, err
		}
		return &UniqueLang{Path: path}, nil
	}
	return nil, p.errf("expected a shape, found %q", rest(p.input, p.pos))
}

func rest(s string, pos int) string {
	r := s[pos:]
	if len(r) > 20 {
		r = r[:20] + "..."
	}
	return r
}

// parseArgs reads a parenthesized, comma-separated argument list. n is the
// exact arity, or -1 for variadic.
func (p *shapeParser) parseArgs(n int) ([]string, error) {
	p.skipSpace()
	if !p.eat("(") {
		return nil, p.errf("expected '('")
	}
	var args []string
	depth := 0
	inIRI := false
	inString := false
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		switch {
		case inString:
			if c == '\\' {
				p.pos++
			} else if c == '"' {
				inString = false
			}
		case inIRI:
			if c == '>' {
				inIRI = false
			}
		case c == '"':
			inString = true
		case c == '<':
			inIRI = true
		case c == '(':
			depth++
		case c == ')':
			if depth == 0 {
				args = append(args, strings.TrimSpace(p.input[start:p.pos]))
				p.pos++
				if n >= 0 && len(args) != n {
					return nil, p.errf("expected %d argument(s), got %d", n, len(args))
				}
				return args, nil
			}
			depth--
		case c == ',' && depth == 0:
			args = append(args, strings.TrimSpace(p.input[start:p.pos]))
			start = p.pos + 1
		}
		p.pos++
	}
	return nil, p.errf("unterminated argument list")
}

// termArg parses a term argument: an IRI, a literal, a number, a boolean,
// or a bare name expanded with the base.
func (p *shapeParser) termArg(arg string) (rdf.Term, error) {
	arg = strings.TrimSpace(arg)
	switch {
	case arg == "":
		return rdf.Term{}, p.errf("empty term argument")
	case strings.HasPrefix(arg, "<") && strings.HasSuffix(arg, ">"):
		return rdf.NewIRI(arg[1 : len(arg)-1]), nil
	case strings.HasPrefix(arg, "_:"):
		return rdf.NewBlank(arg[2:]), nil
	case strings.HasPrefix(arg, `"`):
		closing := strings.LastIndexByte(arg, '"')
		if closing == 0 {
			return rdf.Term{}, p.errf("unterminated literal %q", arg)
		}
		lex := arg[1:closing]
		suffix := arg[closing+1:]
		switch {
		case suffix == "":
			return rdf.NewString(lex), nil
		case strings.HasPrefix(suffix, "@"):
			return rdf.NewLangString(lex, suffix[1:]), nil
		case strings.HasPrefix(suffix, "^^<") && strings.HasSuffix(suffix, ">"):
			return rdf.NewTypedLiteral(lex, suffix[3:len(suffix)-1]), nil
		default:
			return rdf.Term{}, p.errf("bad literal suffix %q", suffix)
		}
	case arg == "true" || arg == "false":
		return rdf.NewTypedLiteral(arg, rdf.XSDBoolean), nil
	default:
		if _, err := strconv.ParseInt(arg, 10, 64); err == nil {
			return rdf.NewTypedLiteral(arg, rdf.XSDInteger), nil
		}
		if _, err := strconv.ParseFloat(arg, 64); err == nil {
			return rdf.NewTypedLiteral(arg, rdf.XSDDecimal), nil
		}
		return rdf.NewIRI(p.base + arg), nil
	}
}

// propArg parses a property IRI argument.
func (p *shapeParser) propArg(arg string) (string, error) {
	t, err := p.termArg(arg)
	if err != nil {
		return "", err
	}
	if !t.IsIRI() {
		return "", p.errf("property argument must be an IRI, got %s", t)
	}
	return t.Value, nil
}

// nodeTestArg parses the argument of test(…).
func (p *shapeParser) nodeTestArg(arg string) (NodeTest, error) {
	arg = strings.TrimSpace(arg)
	switch arg {
	case "isIRI":
		return IsIRI{}, nil
	case "isLiteral":
		return IsLiteral{}, nil
	case "isBlank":
		return IsBlank{}, nil
	}
	open := strings.IndexByte(arg, '(')
	if open < 0 || !strings.HasSuffix(arg, ")") {
		return nil, p.errf("unknown node test %q", arg)
	}
	name, inner := arg[:open], strings.TrimSpace(arg[open+1:len(arg)-1])
	switch name {
	case "datatype":
		t, err := p.termArg(inner)
		if err != nil {
			return nil, err
		}
		return Datatype{IRI: t.Value}, nil
	case "lang":
		return HasLang{Tag: strings.Trim(inner, `"`)}, nil
	case "pattern":
		return NewPattern(strings.Trim(inner, `"`))
	case "minLength", "maxLength":
		n, err := strconv.Atoi(inner)
		if err != nil {
			return nil, p.errf("bad length %q", inner)
		}
		if name == "minLength" {
			return MinLength{N: n}, nil
		}
		return MaxLength{N: n}, nil
	case "minExclusive", "maxExclusive", "minInclusive", "maxInclusive":
		bound, err := p.termArg(inner)
		if err != nil {
			return nil, err
		}
		switch name {
		case "minExclusive":
			return MinExclusive{Bound: bound}, nil
		case "maxExclusive":
			return MaxExclusive{Bound: bound}, nil
		case "minInclusive":
			return MinInclusive{Bound: bound}, nil
		default:
			return MaxInclusive{Bound: bound}, nil
		}
	}
	return nil, p.errf("unknown node test %q", name)
}
