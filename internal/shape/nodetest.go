package shape

import (
	"fmt"
	"regexp"
	"strings"
	"unicode/utf8"

	"shaclfrag/internal/rdf"
)

// NodeTest is an element of the abstract set Ω of node tests: a decidable
// predicate on a single node, independent of the graph. The concrete tests
// below cover what Appendix A needs to translate real SHACL: node kinds,
// classes of literals, value ranges, string facets and language tags.
type NodeTest interface {
	fmt.Stringer
	// Holds reports whether the node satisfies the test.
	Holds(t rdf.Term) bool
}

// IsIRI tests that the node is an IRI (sh:nodeKind sh:IRI).
type IsIRI struct{}

func (IsIRI) Holds(t rdf.Term) bool { return t.IsIRI() }
func (IsIRI) String() string        { return "isIRI" }

// IsLiteral tests that the node is a literal (sh:nodeKind sh:Literal).
type IsLiteral struct{}

func (IsLiteral) Holds(t rdf.Term) bool { return t.IsLiteral() }
func (IsLiteral) String() string        { return "isLiteral" }

// IsBlank tests that the node is a blank node (sh:nodeKind sh:BlankNode).
type IsBlank struct{}

func (IsBlank) Holds(t rdf.Term) bool { return t.IsBlank() }
func (IsBlank) String() string        { return "isBlank" }

// AnyOf is the disjunction of several node tests, used for compound node
// kinds such as sh:BlankNodeOrIRI.
type AnyOf struct {
	Tests []NodeTest
}

func (a AnyOf) Holds(t rdf.Term) bool {
	for _, nt := range a.Tests {
		if nt.Holds(t) {
			return true
		}
	}
	return false
}

func (a AnyOf) String() string {
	parts := make([]string, len(a.Tests))
	for i, nt := range a.Tests {
		parts[i] = nt.String()
	}
	return "anyOf(" + strings.Join(parts, ", ") + ")"
}

// Datatype tests that the node is a literal with the given datatype
// (sh:datatype).
type Datatype struct {
	IRI string
}

func (d Datatype) Holds(t rdf.Term) bool {
	return t.IsLiteral() && t.Datatype == d.IRI
}

func (d Datatype) String() string { return "datatype(<" + d.IRI + ">)" }

// HasLang tests that the node is a literal tagged with the given language
// (case-insensitive; sh:languageIn members).
type HasLang struct {
	Tag string
}

func (h HasLang) Holds(t rdf.Term) bool {
	return t.IsLiteral() && t.Lang != "" && strings.EqualFold(t.Lang, h.Tag)
}

func (h HasLang) String() string { return "lang(" + h.Tag + ")" }

// Pattern tests the node's lexical form against a regular expression
// (sh:pattern). Compile with NewPattern.
type Pattern struct {
	Source string
	re     *regexp.Regexp
}

// NewPattern compiles a pattern node test.
func NewPattern(source string) (*Pattern, error) {
	re, err := regexp.Compile(source)
	if err != nil {
		return nil, fmt.Errorf("shape: bad pattern %q: %w", source, err)
	}
	return &Pattern{Source: source, re: re}, nil
}

// MustPattern is NewPattern panicking on error.
func MustPattern(source string) *Pattern {
	p, err := NewPattern(source)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Pattern) Holds(t rdf.Term) bool {
	if t.IsBlank() {
		return false // blank nodes have no usable lexical form
	}
	return p.re.MatchString(t.Value)
}

func (p *Pattern) String() string { return "pattern(" + p.Source + ")" }

// MinLength tests the length of the node's lexical form (sh:minLength).
type MinLength struct {
	N int
}

func (m MinLength) Holds(t rdf.Term) bool {
	return !t.IsBlank() && utf8.RuneCountInString(t.Value) >= m.N
}

func (m MinLength) String() string { return fmt.Sprintf("minLength(%d)", m.N) }

// MaxLength tests the length of the node's lexical form (sh:maxLength).
type MaxLength struct {
	N int
}

func (m MaxLength) Holds(t rdf.Term) bool {
	return !t.IsBlank() && utf8.RuneCountInString(t.Value) <= m.N
}

func (m MaxLength) String() string { return fmt.Sprintf("maxLength(%d)", m.N) }

// MinExclusive tests Bound < node under the literal order (sh:minExclusive).
type MinExclusive struct {
	Bound rdf.Term
}

func (m MinExclusive) Holds(t rdf.Term) bool { return rdf.Less(m.Bound, t) }
func (m MinExclusive) String() string        { return "minExclusive(" + m.Bound.String() + ")" }

// MaxExclusive tests node < Bound (sh:maxExclusive).
type MaxExclusive struct {
	Bound rdf.Term
}

func (m MaxExclusive) Holds(t rdf.Term) bool { return rdf.Less(t, m.Bound) }
func (m MaxExclusive) String() string        { return "maxExclusive(" + m.Bound.String() + ")" }

// MinInclusive tests Bound ≤ node (sh:minInclusive).
type MinInclusive struct {
	Bound rdf.Term
}

func (m MinInclusive) Holds(t rdf.Term) bool { return rdf.LessEq(m.Bound, t) }
func (m MinInclusive) String() string        { return "minInclusive(" + m.Bound.String() + ")" }

// MaxInclusive tests node ≤ Bound (sh:maxInclusive).
type MaxInclusive struct {
	Bound rdf.Term
}

func (m MaxInclusive) Holds(t rdf.Term) bool { return rdf.LessEq(t, m.Bound) }
func (m MaxInclusive) String() string        { return "maxInclusive(" + m.Bound.String() + ")" }
