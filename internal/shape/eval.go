package shape

import (
	"sort"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// Defs resolves shape names for hasShape references; it is implemented by
// schema.Schema. def(s, H) returns ⊤ for undefined names, mirroring real
// SHACL, which Evaluator handles when ok is false.
type Defs interface {
	Def(name rdf.Term) (Shape, bool)
}

// Evaluator decides conformance H, G, a ⊨ φ (Table 1) against one graph and
// one schema. It memoizes per-(shape, node) results and per-expression path
// evaluators, which makes evaluating many focus nodes (validation, fragment
// computation) close to linear. An Evaluator is not safe for concurrent use.
type Evaluator struct {
	G    rdfgraph.Reader
	Defs Defs

	pathEvals map[paths.Expr]*paths.Evaluator
	cache     map[evalKey]bool

	// Checks counts conformance checks actually evaluated (cache misses);
	// used by the instrumentation experiments.
	Checks int
}

type evalKey struct {
	shape Shape
	node  rdfgraph.ID
}

// NewEvaluator returns an evaluator for g in the context of defs (which may
// be nil when shapes contain no hasShape references).
func NewEvaluator(g rdfgraph.Reader, defs Defs) *Evaluator {
	return &Evaluator{
		G:         g,
		Defs:      defs,
		pathEvals: make(map[paths.Expr]*paths.Evaluator),
		cache:     make(map[evalKey]bool),
	}
}

// PathEval returns the (cached) path evaluator for e.
func (ev *Evaluator) PathEval(e paths.Expr) *paths.Evaluator {
	pe, ok := ev.pathEvals[e]
	if !ok {
		pe = paths.NewEvaluator(e, ev.G)
		ev.pathEvals[e] = pe
	}
	return pe
}

// Def resolves a shape name, defaulting to ⊤ for undefined names.
func (ev *Evaluator) Def(name rdf.Term) Shape {
	if ev.Defs != nil {
		if s, ok := ev.Defs.Def(name); ok {
			return s
		}
	}
	return &True{}
}

// ConformsTerm reports H, G, a ⊨ φ for a focus node given as a term.
func (ev *Evaluator) ConformsTerm(a rdf.Term, phi Shape) bool {
	return ev.Conforms(ev.G.TermID(a), phi)
}

// Conforms reports H, G, a ⊨ φ for a dictionary-encoded focus node.
func (ev *Evaluator) Conforms(a rdfgraph.ID, phi Shape) bool {
	key := evalKey{shape: phi, node: a}
	if v, ok := ev.cache[key]; ok {
		return v
	}
	ev.Checks++
	v := ev.eval(a, phi)
	ev.cache[key] = v
	return v
}

// PropValues returns ⟦p⟧G(a), the objects of a's p-triples, sorted.
func (ev *Evaluator) PropValues(a rdfgraph.ID, p string) []rdfgraph.ID {
	pid := ev.G.LookupTerm(rdf.NewIRI(p))
	if pid == rdfgraph.NoID {
		return nil
	}
	var out []rdfgraph.ID
	ev.G.Objects(a, pid, func(o rdfgraph.ID) { out = append(out, o) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Values returns ⟦F⟧G(a) where F is a path expression or id (nil).
func (ev *Evaluator) Values(a rdfgraph.ID, e paths.Expr) []rdfgraph.ID {
	if e == nil {
		return []rdfgraph.ID{a}
	}
	return ev.PathEval(e).Eval(a)
}

func (ev *Evaluator) eval(a rdfgraph.ID, phi Shape) bool {
	switch x := phi.(type) {
	case *True:
		return true
	case *False:
		return false
	case *HasShape:
		return ev.Conforms(a, ev.Def(x.Name))
	case *Test:
		return x.T.Holds(ev.G.Term(a))
	case *HasValue:
		return ev.G.Term(a) == x.C
	case *Not:
		return !ev.Conforms(a, x.X)
	case *And:
		for _, c := range x.Xs {
			if !ev.Conforms(a, c) {
				return false
			}
		}
		return true
	case *Or:
		for _, c := range x.Xs {
			if ev.Conforms(a, c) {
				return true
			}
		}
		return false
	case *MinCount:
		count := 0
		for _, b := range ev.Values(a, x.Path) {
			if ev.Conforms(b, x.X) {
				count++
				if count >= x.N {
					return true
				}
			}
		}
		return count >= x.N // covers n = 0
	case *MaxCount:
		count := 0
		for _, b := range ev.Values(a, x.Path) {
			if ev.Conforms(b, x.X) {
				count++
				if count > x.N {
					return false
				}
			}
		}
		return true
	case *Forall:
		for _, b := range ev.Values(a, x.Path) {
			if !ev.Conforms(b, x.X) {
				return false
			}
		}
		return true
	case *Eq:
		return equalIDSets(ev.Values(a, x.Path), ev.PropValues(a, x.P))
	case *Disj:
		return disjointIDSets(ev.Values(a, x.Path), ev.PropValues(a, x.P))
	case *Closed:
		ok := true
		ev.G.PredicatesFrom(a, func(p, _ rdfgraph.ID) {
			if !ok {
				return
			}
			iri := ev.G.Term(p).Value
			i := sort.SearchStrings(x.Allowed, iri)
			if i >= len(x.Allowed) || x.Allowed[i] != iri {
				ok = false
			}
		})
		return ok
	case *LessThan:
		cs := ev.PropValues(a, x.P)
		for _, b := range ev.Values(a, x.Path) {
			bt := ev.G.Term(b)
			for _, c := range cs {
				if !rdf.Less(bt, ev.G.Term(c)) {
					return false
				}
			}
		}
		return true
	case *LessThanEq:
		cs := ev.PropValues(a, x.P)
		for _, b := range ev.Values(a, x.Path) {
			bt := ev.G.Term(b)
			for _, c := range cs {
				if !rdf.LessEq(bt, ev.G.Term(c)) {
					return false
				}
			}
		}
		return true
	case *MoreThan:
		cs := ev.PropValues(a, x.P)
		for _, b := range ev.Values(a, x.Path) {
			bt := ev.G.Term(b)
			for _, c := range cs {
				if !rdf.Less(ev.G.Term(c), bt) {
					return false
				}
			}
		}
		return true
	case *MoreThanEq:
		cs := ev.PropValues(a, x.P)
		for _, b := range ev.Values(a, x.Path) {
			bt := ev.G.Term(b)
			for _, c := range cs {
				if !rdf.LessEq(ev.G.Term(c), bt) {
					return false
				}
			}
		}
		return true
	case *UniqueLang:
		langs := make(map[string]rdfgraph.ID)
		for _, b := range ev.Values(a, x.Path) {
			bt := ev.G.Term(b)
			if !bt.IsLiteral() || bt.Lang == "" {
				continue
			}
			if prev, seen := langs[bt.Lang]; seen && prev != b {
				return false
			}
			langs[bt.Lang] = b
		}
		return true
	}
	panic("shape: unknown shape type in eval")
}

func equalIDSets(a, b []rdfgraph.ID) bool {
	if len(a) != len(b) {
		return false
	}
	// Both inputs are sorted and duplicate-free.
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func disjointIDSets(a, b []rdfgraph.ID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return true
}

// ConformingNodes returns all nodes of N(G) that conform to φ, sorted by ID.
// This is the "shape as unary query" view of the paper.
func (ev *Evaluator) ConformingNodes(phi Shape) []rdfgraph.ID {
	var out []rdfgraph.ID
	for _, n := range ev.G.NodeIDs() {
		if ev.Conforms(n, phi) {
			out = append(out, n)
		}
	}
	return out
}
