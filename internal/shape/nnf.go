package shape

// NNF rewrites φ into negation normal form: negation applied only to
// atomic shapes (the first three production lines of the grammar). The
// rewriting preserves the overall syntactic structure and semantics:
//
//	¬(φ ∧ ψ) ≡ ¬φ ∨ ¬ψ            ¬(φ ∨ ψ) ≡ ¬φ ∧ ¬ψ
//	¬≥n+1 E.ψ ≡ ≤n E.ψ            ¬≥0 E.ψ ≡ ⊥
//	¬≤n E.ψ ≡ ≥n+1 E.ψ            ¬∀E.ψ ≡ ≥1 E.¬ψ
//	¬¬φ ≡ φ                        ¬⊤ ≡ ⊥, ¬⊥ ≡ ⊤
//
// NNF also recurses into quantifier bodies, so the result is in NNF at
// every level. hasShape references are left in place; Definition 3.2
// resolves and normalizes them lazily via the schema.
func NNF(phi Shape) Shape {
	return nnf(phi, false)
}

// nnf computes NNF(φ) when neg is false, and NNF(¬φ) when neg is true.
func nnf(phi Shape, neg bool) Shape {
	switch x := phi.(type) {
	case *True:
		if neg {
			return &False{}
		}
		return phi
	case *False:
		if neg {
			return &True{}
		}
		return phi
	case *HasShape, *Test, *HasValue, *Eq, *Disj, *Closed, *LessThan, *LessThanEq, *UniqueLang, *MoreThan, *MoreThanEq:
		if neg {
			return &Not{X: phi}
		}
		return phi
	case *Not:
		return nnf(x.X, !neg)
	case *And:
		out, changed := nnfChildren(x.Xs, neg)
		if neg {
			return OrOf(out...)
		}
		if !changed {
			return phi // identity-preserving: NNF(NNF(φ)) shares nodes
		}
		return AndOf(out...)
	case *Or:
		out, changed := nnfChildren(x.Xs, neg)
		if neg {
			return AndOf(out...)
		}
		if !changed {
			return phi
		}
		return OrOf(out...)
	case *MinCount:
		if neg {
			if x.N == 0 {
				// ¬≥0 E.ψ is unsatisfiable.
				return &False{}
			}
			return &MaxCount{N: x.N - 1, Path: x.Path, X: nnf(x.X, false)}
		}
		if sub := nnf(x.X, false); sub != x.X {
			return &MinCount{N: x.N, Path: x.Path, X: sub}
		}
		return phi
	case *MaxCount:
		if neg {
			return &MinCount{N: x.N + 1, Path: x.Path, X: nnf(x.X, false)}
		}
		if sub := nnf(x.X, false); sub != x.X {
			return &MaxCount{N: x.N, Path: x.Path, X: sub}
		}
		return phi
	case *Forall:
		if neg {
			return &MinCount{N: 1, Path: x.Path, X: nnf(x.X, true)}
		}
		if sub := nnf(x.X, false); sub != x.X {
			return &Forall{Path: x.Path, X: sub}
		}
		return phi
	}
	panic("shape: unknown shape type in NNF")
}

// nnfChildren normalizes a child list, reporting whether any child changed.
func nnfChildren(xs []Shape, neg bool) ([]Shape, bool) {
	out := make([]Shape, len(xs))
	changed := false
	for i, c := range xs {
		out[i] = nnf(c, neg)
		if out[i] != c {
			changed = true
		}
	}
	return out, changed
}

// IsNNF reports whether φ is in negation normal form.
func IsNNF(phi Shape) bool {
	ok := true
	Walk(phi, func(s Shape) {
		if n, isNot := s.(*Not); isNot {
			switch n.X.(type) {
			case *HasShape, *Test, *HasValue, *Eq, *Disj, *Closed,
				*LessThan, *LessThanEq, *UniqueLang, *MoreThan, *MoreThanEq:
				// negated atom: fine
			default:
				ok = false
			}
		}
	})
	return ok
}
