package core_test

import (
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// TestNeighborhoodCacheAliases pins the containment-sharing contract:
// once an alias table maps a request shape to a representative, both Get
// and Put are re-keyed to the representative, translated hits are
// counted separately, and clearing the table restores identity keying.
func TestNeighborhoodCacheAliases(t *testing.T) {
	c := core.NewNeighborhoodCache(100)
	// Two structurally identical but pointer-distinct request shapes
	// (zero-size shapes like ⊤ can share an allocation, so use ∧-nodes
	// built directly — the smart constructors collapse singleton ∧).
	rep := shape.Shape(&shape.And{Xs: []shape.Shape{shape.TrueShape()}})
	alias := shape.Shape(&shape.And{Xs: []shape.Shape{shape.TrueShape()}})
	ts := []rdfgraph.IDTriple{{S: 1, P: 2, O: 3}}

	// Without aliases the shapes are distinct keys.
	c.Put(0, 7, rep, ts)
	if _, ok := c.Get(0, 7, alias); ok {
		t.Fatal("distinct shape pointers must miss without an alias table")
	}

	c.SetAliases(map[shape.Shape]shape.Shape{alias: rep})
	if got, ok := c.Get(0, 7, alias); !ok || len(got) != 1 {
		t.Fatal("aliased request must be served from the representative's entry")
	}
	if s := c.Stats(); s.AliasHits != 1 {
		t.Fatalf("AliasHits = %d, want 1", s.AliasHits)
	}
	// A direct hit on the representative does not count as an alias hit.
	if _, ok := c.Get(0, 7, rep); !ok {
		t.Fatal("representative entry lost")
	}
	if s := c.Stats(); s.AliasHits != 1 {
		t.Fatalf("AliasHits after direct hit = %d, want 1", s.AliasHits)
	}

	// Put through the alias lands on the representative key: one entry.
	c.Put(0, 8, alias, ts)
	if _, ok := c.Get(0, 8, rep); !ok {
		t.Fatal("Put through an alias must fill the representative's entry")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (no duplicate entries under aliasing)", c.Len())
	}

	// Clearing the table restores identity keying.
	c.SetAliases(nil)
	if _, ok := c.Get(0, 7, alias); ok {
		t.Fatal("cleared alias table must stop translating")
	}
}
