package core_test

import (
	"fmt"
	"strings"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/obs"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/store"
)

// TestCacheEvictionAccounting pins the new eviction and byte counters:
// every eviction increments Evictions by one entry and EvictedTriples by
// that entry's triple count, and Bytes tracks current occupancy.
func TestCacheEvictionAccounting(t *testing.T) {
	c := core.NewNeighborhoodCache(10)
	phi := shape.TrueShape()
	triples := func(node, n int) []rdfgraph.IDTriple {
		out := make([]rdfgraph.IDTriple, n)
		for i := range out {
			out[i] = rdfgraph.IDTriple{S: rdfgraph.ID(node), P: rdfgraph.ID(i)}
		}
		return out
	}
	// Fill to exactly budget: 2 entries × 5 triples.
	c.Put(0, 1, phi, triples(1, 5))
	c.Put(0, 2, phi, triples(2, 5))
	st := c.Stats()
	if st.Evictions != 0 || st.EvictedTriples != 0 {
		t.Fatalf("no evictions expected yet: %+v", st)
	}
	if st.Triples != 10 || st.Bytes != 10*12 {
		t.Errorf("occupancy: got %d triples / %d bytes, want 10 / 120", st.Triples, st.Bytes)
	}
	// A 6-triple entry must evict both LRU entries (5+5 → room for 6).
	c.Put(0, 3, phi, triples(3, 6))
	st = c.Stats()
	if st.Evictions != 2 || st.EvictedTriples != 10 {
		t.Errorf("evictions: got %d entries / %d triples, want 2 / 10", st.Evictions, st.EvictedTriples)
	}
	if st.Entries != 1 || st.Triples != 6 {
		t.Errorf("post-eviction occupancy: %+v", st)
	}
	// Hit/miss bookkeeping stays coherent with the evictions.
	if _, ok := c.Get(0, 1, phi); ok {
		t.Error("evicted entry still served")
	}
	if _, ok := c.Get(0, 3, phi); !ok {
		t.Error("surviving entry lost")
	}
	st = c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hit/miss after eviction round: got %d/%d, want 1/1", st.Hits, st.Misses)
	}
}

// TestFragmentParallelSpans checks the span tree a sampled extraction
// grows: request-level attributes, exec-breakdown children on the flat
// and serial paths, and per-shard accumulator spans (with unit counts
// summing to the total) on the scatter-gather path — all without
// changing the extracted fragment.
func TestFragmentParallelSpans(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 60, Seed: 3})
	h := schema.MustNew(datagen.BenchmarkShapes()[:4]...)
	requests := core.SchemaRequests(h)
	st, err := store.New(g, store.Config{Backend: store.BackendSharded, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := st.Current().Reader()
	want, err := core.NewExtractor(r, h).FragmentParallel(requests, core.ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	childByName := func(sp *obs.Span, name string) *obs.Span {
		for _, c := range sp.Children() {
			if c.Name() == name {
				return c
			}
		}
		return nil
	}
	attrInt := func(sp *obs.Span, key string) (int64, bool) {
		for _, a := range sp.Attrs() {
			if a.Key == key && a.IsInt {
				return a.Int, true
			}
		}
		return 0, false
	}

	for _, workers := range []int{1, 4} {
		trace := obs.NewSpanTrace("extract-test", obs.SpanContext{})
		got, err := core.NewExtractor(r, h).FragmentParallel(requests, core.ParallelOptions{
			Workers: workers,
			Span:    trace.Root(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("workers=%d: span threading changed the fragment (%d vs %d triples)",
				workers, len(got), len(want))
		}
		root := trace.Root()
		if w, ok := attrInt(root, "workers"); !ok || (workers == 4 && w != 4) {
			t.Errorf("workers=%d: workers attr = %d/%v", workers, w, ok)
		}
		if n, ok := attrInt(root, "nodes"); !ok || n == 0 {
			t.Errorf("workers=%d: nodes attr = %d/%v", workers, n, ok)
		}
		if childByName(root, "nnf") == nil {
			t.Errorf("workers=%d: no nnf child span", workers)
		}
		exec := childByName(root, "ast-exec")
		if workers > 1 {
			// Sharded reader + >1 worker: scatter-gather with shard spans.
			var unitTotal, rootUnits int64
			for i := 0; i < 3; i++ {
				sh := childByName(root, fmt.Sprintf("shard[%d]", i))
				if sh == nil {
					t.Fatalf("workers=%d: missing shard[%d] span; tree:\n%s", workers, i, treeOf(trace))
				}
				if sh.Duration() <= 0 {
					t.Errorf("shard[%d] accumulated no time", i)
				}
				u, _ := attrInt(sh, "units")
				unitTotal += u
				if childByName(sh, "ast-exec") == nil {
					t.Errorf("shard[%d] has no exec breakdown child", i)
				}
			}
			if unitTotal == 0 {
				t.Error("per-shard unit counts sum to zero")
			}
			rootUnits, _ = attrInt(root, "shards")
			if rootUnits != 3 {
				t.Errorf("shards attr = %d, want 3", rootUnits)
			}
			if childByName(root, "scatter") == nil || childByName(root, "gather") == nil {
				t.Errorf("workers=%d: scatter/gather spans missing; tree:\n%s", workers, treeOf(trace))
			}
		} else if exec == nil {
			t.Errorf("workers=1: no ast-exec child; tree:\n%s", treeOf(trace))
		}
	}

	// Compiled plans + cache: bind child and memo_resets attr appear.
	sp := plan.PlanSchema(h, store.SampleStats(st.Current()), plan.Config{})
	trace := obs.NewSpanTrace("extract-test", obs.SpanContext{})
	_, err = core.NewExtractor(r, h).FragmentParallel(requests, core.ParallelOptions{
		Workers: 2,
		Plans:   sp.ProgramSet(),
		Cache:   core.NewNeighborhoodCache(1 << 20),
		Span:    trace.Root(),
	})
	if err != nil {
		t.Fatal(err)
	}
	root := trace.Root()
	if childByName(root, "bind") == nil {
		t.Errorf("planned extraction has no bind span; tree:\n%s", treeOf(trace))
	}
	if n, ok := attrInt(root, "instructions"); !ok || n <= 0 {
		t.Errorf("instructions attr = %d/%v", n, ok)
	}
	if n, ok := attrInt(root, "memo_resets"); !ok || n <= 0 {
		t.Errorf("memo_resets attr = %d/%v (cache mode isolates per-node units)", n, ok)
	}
}

func treeOf(trace *obs.SpanTrace) string {
	var b strings.Builder
	trace.WriteTree(&b)
	return b.String()
}

// TestFragmentParallelTracer checks that extraction emits its nnf and
// merge sub-stages into the provided tracer, for both the parallel and
// the serial path, without changing the extracted fragment.
func TestFragmentParallelTracer(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 60, Seed: 3})
	h := schema.MustNew(datagen.BenchmarkShapes()[:4]...)
	g.Freeze()
	want, err := core.NewExtractor(g, h).FragmentParallel(
		core.SchemaRequests(h), core.ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		tr := obs.NewTrace()
		got, err := core.NewExtractor(g, h).FragmentParallel(
			core.SchemaRequests(h), core.ParallelOptions{Workers: workers, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("workers=%d: tracing changed the fragment (%d vs %d triples)",
				workers, len(got), len(want))
		}
		stages := make(map[string]bool)
		for _, s := range tr.Stages() {
			stages[s.Name] = true
		}
		if !stages["nnf"] {
			t.Errorf("workers=%d: nnf stage not traced (got %v)", workers, tr.Stages())
		}
		if workers > 1 && !stages["merge"] {
			t.Errorf("workers=%d: merge stage not traced (got %v)", workers, tr.Stages())
		}
	}
}
