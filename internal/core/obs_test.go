package core_test

import (
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/obs"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// TestCacheEvictionAccounting pins the new eviction and byte counters:
// every eviction increments Evictions by one entry and EvictedTriples by
// that entry's triple count, and Bytes tracks current occupancy.
func TestCacheEvictionAccounting(t *testing.T) {
	c := core.NewNeighborhoodCache(10)
	phi := shape.TrueShape()
	triples := func(node, n int) []rdfgraph.IDTriple {
		out := make([]rdfgraph.IDTriple, n)
		for i := range out {
			out[i] = rdfgraph.IDTriple{S: rdfgraph.ID(node), P: rdfgraph.ID(i)}
		}
		return out
	}
	// Fill to exactly budget: 2 entries × 5 triples.
	c.Put(0, 1, phi, triples(1, 5))
	c.Put(0, 2, phi, triples(2, 5))
	st := c.Stats()
	if st.Evictions != 0 || st.EvictedTriples != 0 {
		t.Fatalf("no evictions expected yet: %+v", st)
	}
	if st.Triples != 10 || st.Bytes != 10*12 {
		t.Errorf("occupancy: got %d triples / %d bytes, want 10 / 120", st.Triples, st.Bytes)
	}
	// A 6-triple entry must evict both LRU entries (5+5 → room for 6).
	c.Put(0, 3, phi, triples(3, 6))
	st = c.Stats()
	if st.Evictions != 2 || st.EvictedTriples != 10 {
		t.Errorf("evictions: got %d entries / %d triples, want 2 / 10", st.Evictions, st.EvictedTriples)
	}
	if st.Entries != 1 || st.Triples != 6 {
		t.Errorf("post-eviction occupancy: %+v", st)
	}
	// Hit/miss bookkeeping stays coherent with the evictions.
	if _, ok := c.Get(0, 1, phi); ok {
		t.Error("evicted entry still served")
	}
	if _, ok := c.Get(0, 3, phi); !ok {
		t.Error("surviving entry lost")
	}
	st = c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hit/miss after eviction round: got %d/%d, want 1/1", st.Hits, st.Misses)
	}
}

// TestFragmentParallelTracer checks that extraction emits its nnf and
// merge sub-stages into the provided tracer, for both the parallel and
// the serial path, without changing the extracted fragment.
func TestFragmentParallelTracer(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 60, Seed: 3})
	h := schema.MustNew(datagen.BenchmarkShapes()[:4]...)
	g.Freeze()
	want, err := core.NewExtractor(g, h).FragmentParallel(
		core.SchemaRequests(h), core.ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		tr := obs.NewTrace()
		got, err := core.NewExtractor(g, h).FragmentParallel(
			core.SchemaRequests(h), core.ParallelOptions{Workers: workers, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("workers=%d: tracing changed the fragment (%d vs %d triples)",
				workers, len(got), len(want))
		}
		stages := make(map[string]bool)
		for _, s := range tr.Stages() {
			stages[s.Name] = true
		}
		if !stages["nnf"] {
			t.Errorf("workers=%d: nnf stage not traced (got %v)", workers, tr.Stages())
		}
		if workers > 1 && !stages["merge"] {
			t.Errorf("workers=%d: merge stage not traced (got %v)", workers, tr.Stages())
		}
	}
}
