package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shaclfrag/internal/obs"
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// ParallelOptions configures FragmentParallel.
type ParallelOptions struct {
	// Workers is the number of extraction goroutines; <= 0 means
	// runtime.GOMAXPROCS(0). One worker degrades to the serial algorithm on
	// the calling extractor.
	Workers int
	// Cache, when non-nil, serves per-(node, request) neighborhoods from
	// memory and stores misses. Caching switches accumulation from shared
	// per-worker visited sets to isolated per-node units (the cacheable
	// granularity); first-time extraction is therefore somewhat slower, in
	// exchange for repeated requests being nearly free.
	Cache *NeighborhoodCache
	// Ctx, when non-nil, aborts extraction between work units; the error
	// returned is ctx.Err(). Used by the HTTP server for request timeouts.
	Ctx context.Context
	// Epoch is the store epoch the extractor's graph belongs to; it
	// namespaces Cache entries so neighborhoods computed against one
	// snapshot are never served for another (see rdfgraph.Store). Leave
	// zero when serving a single graph that never updates.
	Epoch uint64
	// Tracer, when non-nil, receives extraction sub-stage timings: "nnf"
	// (request normalization) and "merge" (union of per-worker triple
	// sets). The serving layer passes the per-request obs.Trace here so
	// sub-stage attribution reaches Server-Timing headers, access logs
	// and the stage-latency histograms.
	Tracer obs.Tracer
	// Recorder, when non-nil, receives a (triple, justification) record for
	// every Table 2 emission — typically an *Explanation. It is shared
	// across workers, so it must be safe for concurrent use (Explanation
	// is). A nil recorder keeps the hot path free of attribution work and
	// the output byte-identical to the unattributed algorithm. A non-nil
	// recorder bypasses Cache (cached neighborhoods carry no
	// justifications).
	Recorder AttributionRecorder
	// Plans, when non-nil, holds compiled instruction programs aligned
	// with the requests slice (typically SchemaPlan.ProgramSet). A request
	// with a non-nil program is extracted by the compiled plan instead of
	// the AST walker — same triples (the parity suites gate byte
	// identity), dense-memo speed. Nil entries and all requests fall back
	// to the AST when Recorder is set: plans carry no attribution.
	Plans *plan.Set
	// Span, when non-nil, is the parent span sampled requests hand down:
	// extraction opens child spans under it — "bind" for plan binding,
	// per-shard "shard[i]" accumulators on the scatter-gather path with
	// "plan-exec"/"ast-exec" breakdown children, and the same exec
	// breakdown directly under Span on the flat and serial paths — plus
	// instructions / memo_resets / units / workers attributes. A nil Span
	// (the unsampled common case) keeps the hot path free of any timing
	// beyond the flat Tracer stages.
	Span *obs.Span
}

// boundPlans binds the program set against g for one worker, returning a
// per-request slice of bound programs (nil where the AST path applies).
// Each worker binds privately: dense memo rows are single-writer state.
func boundPlans(opts ParallelOptions, nreq int, g rdfgraph.Reader) []*plan.Bound {
	if opts.Plans == nil || opts.Recorder != nil {
		return nil
	}
	bounds := make([]*plan.Bound, nreq)
	for i, p := range opts.Plans.Programs {
		if i >= nreq {
			break
		}
		if p != nil {
			bounds[i] = p.Bind(g)
		}
	}
	return bounds
}

// boundAt returns the bound program for a request index, nil when absent.
func boundAt(bounds []*plan.Bound, req int) *plan.Bound {
	if bounds == nil {
		return nil
	}
	return bounds[req]
}

// boundPlansSpan is boundPlans with the binding time accumulated into a
// "bind" child when the request is sampled (workers bind privately, so
// the child sums across workers).
func boundPlansSpan(opts ParallelOptions, nreq int, g rdfgraph.Reader, sp *obs.Span) []*plan.Bound {
	if sp == nil {
		return boundPlans(opts, nreq, g)
	}
	begin := time.Now()
	bounds := boundPlans(opts, nreq, g)
	if bounds != nil {
		sp.Observe("bind", time.Since(begin))
	}
	return bounds
}

// startStage begins timing one sub-stage against an optional tracer,
// returning the stop function; a nil tracer costs one branch.
func startStage(tr obs.Tracer, stage string) func() {
	if tr == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { tr.Observe(stage, time.Since(begin)) }
}

// startStageSpan is startStage plus a child span under parent for
// sampled requests. With both tracer and parent nil it degrades to the
// same zero-cost no-op, so the unsampled hot path is unchanged.
func startStageSpan(tr obs.Tracer, parent *obs.Span, stage string) (*obs.Span, func()) {
	if tr == nil && parent == nil {
		return nil, func() {}
	}
	sp := parent.StartChild(stage)
	begin := time.Now()
	return sp, func() {
		if tr != nil {
			tr.Observe(stage, time.Since(begin))
		}
		sp.End()
	}
}

// workerSpanState is the per-worker accounting a sampled request asks of
// each extraction goroutine: exec wall time accumulated into breakdown
// children, unit counts, and memo resets summed at worker exit. All
// methods no-op (one branch) when the request is unsampled.
type workerSpanState struct {
	parent *obs.Span   // span exec breakdown children accumulate under
	shards []*obs.Span // per-shard accumulators, nil on flat/serial paths
}

// begin returns the unit start time, zero when unsampled — time.Now is
// not called at all on the unsampled hot path.
func (w *workerSpanState) begin() time.Time {
	if w.parent == nil {
		return time.Time{}
	}
	return time.Now()
}

// finish attributes one finished work unit: d into the shard accumulator
// (when sharded) and into the plan-exec/ast-exec breakdown child.
func (w *workerSpanState) finish(begin time.Time, shard int, planned bool) {
	if w.parent == nil {
		return
	}
	d := time.Since(begin)
	target := w.parent
	if w.shards != nil {
		target = w.shards[shard]
		target.Add(d)
		target.AddAttrInt("units", 1)
	} else {
		target.AddAttrInt("units", 1)
	}
	if planned {
		target.Observe("plan-exec", d)
	} else {
		target.Observe("ast-exec", d)
	}
}

// done sums the worker's memo resets into the parent span at exit.
func (w *workerSpanState) done(bounds []*plan.Bound) {
	if w.parent == nil || bounds == nil {
		return
	}
	var resets int64
	for _, b := range bounds {
		if b != nil {
			resets += int64(b.Resets)
		}
	}
	if resets > 0 {
		w.parent.AddAttrInt("memo_resets", resets)
	}
}

// spanAttrs stamps the request-level attributes a sampled extraction
// carries: worker count, request and node counts, and the compiled
// instruction count when plans are in play.
func spanAttrs(opts ParallelOptions, workers, nreq, nnodes int) {
	sp := opts.Span
	if sp == nil {
		return
	}
	sp.SetAttrInt("workers", int64(workers))
	sp.SetAttrInt("requests", int64(nreq))
	sp.SetAttrInt("nodes", int64(nnodes))
	if opts.Plans != nil && opts.Recorder == nil {
		sp.SetAttrInt("instructions", int64(opts.Plans.NumInstrs()))
	}
}

// FragmentParallel computes Frag(G, S) like Fragment, fanning the
// target-node loop out over a worker pool. Each worker owns a private
// evaluator, visited set, and triple accumulator; the per-worker sets are
// unioned at the end, so the result is exactly Fragment's (the union of
// neighborhoods is order-independent), in identical canonical order.
//
// The graph must not be mutated during the call. All evaluation and
// extraction paths are read-only on the graph — freeze it (Graph.Freeze) to
// have that enforced.
func (x *Extractor) FragmentParallel(requests []shape.Shape, opts ParallelOptions) ([]rdf.Triple, error) {
	g := x.ev.G
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Normalize once on the calling extractor so every worker agrees on
	// shape identity and none re-derives NNF.
	_, stopNNF := startStageSpan(opts.Tracer, opts.Span, "nnf")
	nnfs := make([]shape.Shape, len(requests))
	for i, phi := range requests {
		nnfs[i] = x.nnf(phi)
	}
	stopNNF()
	nodes := g.NodeIDs()
	spanAttrs(opts, workers, len(requests), len(nodes))
	if workers == 1 || len(nodes) == 0 || len(requests) == 0 {
		return x.fragmentSerial(requests, nnfs, nodes, opts)
	}
	if sg, ok := g.(ShardedReader); ok {
		if parts := sg.ShardNodeIDs(); len(parts) > 1 {
			return x.fragmentScatterGather(requests, nnfs, parts, len(nodes), workers, opts)
		}
	}

	// Chunked work stealing over the (request, node-range) grid: chunks
	// small enough to balance skewed neighborhoods, large enough that the
	// atomic counter and evaluator cache misses stay in the noise.
	chunk := len(nodes) / (workers * 8)
	if chunk < 16 {
		chunk = 16
	}
	nchunks := (len(nodes) + chunk - 1) / chunk
	total := nchunks * len(requests)

	outs := make([]*rdfgraph.IDTripleSet, workers)
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		out := rdfgraph.NewIDTripleSet()
		outs[w] = out
		wg.Add(1)
		go func() {
			defer wg.Done()
			wx := NewExtractor(g, x.ev.Defs)
			wx.rec = opts.Recorder
			spans := workerSpanState{parent: opts.Span}
			bounds := boundPlansSpan(opts, len(requests), g, opts.Span)
			defer spans.done(bounds)
			visited := make(map[VisitKey]struct{})
			for {
				if opts.Ctx != nil && opts.Ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				u := int(next.Add(1)) - 1
				if u >= total {
					return
				}
				req, ci := u/nchunks, u%nchunks
				lo := ci * chunk
				hi := lo + chunk
				if hi > len(nodes) {
					hi = len(nodes)
				}
				b := boundAt(bounds, req)
				begin := spans.begin()
				wx.extractRange(requests[req], nnfs[req], b, nodes[lo:hi], out, visited, opts.Cache, opts.Epoch)
				spans.finish(begin, 0, b != nil)
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, opts.Ctx.Err()
	}
	_, stopMerge := startStageSpan(opts.Tracer, opts.Span, "merge")
	defer stopMerge()
	merged := outs[0]
	for _, o := range outs[1:] {
		merged.AddSet(o)
	}
	return merged.Triples(g.Dict()), nil
}

// ShardedReader is the optional interface a sharded graph reader exposes
// (store.ShardedGraph does): N(G) pre-partitioned by owner shard.
// FragmentParallel detects it and switches to scatter-gather scheduling.
type ShardedReader interface {
	rdfgraph.Reader
	// ShardNodeIDs returns N(G) partitioned by owner shard; parts are
	// disjoint, each sorted, and their union is NodeIDs().
	ShardNodeIDs() [][]rdfgraph.ID
}

// fragmentScatterGather is FragmentParallel's scheduling for sharded
// readers. The scatter stage turns the per-shard node partition into a
// shard-ordered work list, so consecutive work units hit the same shard's
// indexes (forward steps of nodes owned by one shard resolve entirely in
// that shard; only reverse steps fan out); workers then steal units
// exactly as in the flat path. The gather stage is the same union of
// per-worker triple sets as the flat path's merge, so the result is
// byte-identical to Fragment's for any shard count — only the work order
// differs, and the union is order-independent.
func (x *Extractor) fragmentScatterGather(requests, nnfs []shape.Shape, parts [][]rdfgraph.ID, nnodes, workers int, opts ParallelOptions) ([]rdf.Triple, error) {
	g := x.ev.G

	// Scatter: chunk each shard's node list with the same granularity
	// heuristic as the flat path, grouped by shard for index affinity.
	// Units remember their owner shard so sampled requests can attribute
	// exec time to per-shard spans.
	_, stopScatter := startStageSpan(opts.Tracer, opts.Span, "scatter")
	chunk := nnodes / (workers * 8)
	if chunk < 16 {
		chunk = 16
	}
	type unit struct {
		req   int
		shard int
		nodes []rdfgraph.ID
	}
	var units []unit
	for si, part := range parts {
		for lo := 0; lo < len(part); lo += chunk {
			hi := lo + chunk
			if hi > len(part) {
				hi = len(part)
			}
			for req := range requests {
				units = append(units, unit{req: req, shard: si, nodes: part[lo:hi]})
			}
		}
	}
	stopScatter()

	// Per-shard accumulator spans: workers Add each unit's wall time to
	// its shard's span, so one shard's span sums the CPU time spent on
	// that shard's nodes regardless of which workers stole the units.
	var shardSpans []*obs.Span
	if opts.Span != nil {
		opts.Span.SetAttrInt("shards", int64(len(parts)))
		shardSpans = make([]*obs.Span, len(parts))
		for i := range parts {
			shardSpans[i] = opts.Span.AccumChild(fmt.Sprintf("shard[%d]", i))
			shardSpans[i].SetAttrInt("shard_nodes", int64(len(parts[i])))
		}
	}

	outs := make([]*rdfgraph.IDTripleSet, workers)
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		out := rdfgraph.NewIDTripleSet()
		outs[w] = out
		wg.Add(1)
		go func() {
			defer wg.Done()
			wx := NewExtractor(g, x.ev.Defs)
			wx.rec = opts.Recorder
			spans := workerSpanState{parent: opts.Span, shards: shardSpans}
			bounds := boundPlansSpan(opts, len(requests), g, opts.Span)
			defer spans.done(bounds)
			visited := make(map[VisitKey]struct{})
			for {
				if opts.Ctx != nil && opts.Ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				u := int(next.Add(1)) - 1
				if u >= len(units) {
					return
				}
				b := boundAt(bounds, units[u].req)
				begin := spans.begin()
				wx.extractRange(requests[units[u].req], nnfs[units[u].req], b, units[u].nodes, out, visited, opts.Cache, opts.Epoch)
				spans.finish(begin, units[u].shard, b != nil)
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, opts.Ctx.Err()
	}

	// Gather: union the per-worker sets, then decode canonically.
	_, stopGather := startStageSpan(opts.Tracer, opts.Span, "gather")
	defer stopGather()
	merged := outs[0]
	for _, o := range outs[1:] {
		merged.AddSet(o)
	}
	return merged.Triples(g.Dict()), nil
}

// FragmentSchemaParallel is FragmentParallel over SchemaRequests(h). Note
// that SchemaRequests builds fresh shape values: callers wanting cache hits
// across calls should compute the requests once and use FragmentParallel.
func (x *Extractor) FragmentSchemaParallel(h *schema.Schema, opts ParallelOptions) ([]rdf.Triple, error) {
	return x.FragmentParallel(SchemaRequests(h), opts)
}

// fragmentSerial is the one-worker path, run on the calling extractor so
// its evaluator caches keep accumulating across calls.
func (x *Extractor) fragmentSerial(requests []shape.Shape, nnfs []shape.Shape, nodes []rdfgraph.ID, opts ParallelOptions) ([]rdf.Triple, error) {
	if opts.Recorder != nil {
		prev := x.rec
		x.rec = opts.Recorder
		defer func() { x.rec = prev }()
	}
	out := rdfgraph.NewIDTripleSet()
	spans := workerSpanState{parent: opts.Span}
	bounds := boundPlansSpan(opts, len(requests), x.ev.G, opts.Span)
	defer spans.done(bounds)
	visited := make(map[VisitKey]struct{})
	for i := range requests {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return nil, opts.Ctx.Err()
		}
		b := boundAt(bounds, i)
		begin := spans.begin()
		x.extractRange(requests[i], nnfs[i], b, nodes, out, visited, opts.Cache, opts.Epoch)
		spans.finish(begin, 0, b != nil)
	}
	return out.Triples(x.ev.G.Dict()), nil
}

// extractRange accumulates the neighborhoods of a node range for one
// request. Without a cache it shares out and visited across the whole range
// (the fast path, identical to Fragment's inner loop). With a cache it
// computes isolated per-node neighborhoods — the unit the cache stores —
// while still sharing this extractor's conformance and path caches. A
// non-nil bound program takes over both modes: it produces the same
// per-node neighborhoods (parity-gated), so cache entries are
// interchangeable between the two extractors.
func (x *Extractor) extractRange(request, nnf shape.Shape, b *plan.Bound, nodes []rdfgraph.ID, out *rdfgraph.IDTripleSet, visited map[VisitKey]struct{}, cache *NeighborhoodCache, epoch uint64) {
	// A cached neighborhood carries no justifications, so an attached
	// recorder bypasses the cache: attribution always re-derives.
	if cache == nil || x.rec != nil {
		if b != nil {
			for _, v := range nodes {
				b.CollectInto(v, out)
			}
			return
		}
		for _, v := range nodes {
			x.collect(v, nnf, out, visited)
		}
		return
	}
	for _, v := range nodes {
		if ts, ok := cache.Get(epoch, v, request); ok {
			out.AddAll(ts)
			continue
		}
		per := rdfgraph.NewIDTripleSet()
		if b != nil {
			b.ResetVisited()
			b.CollectInto(v, per)
		} else {
			x.collect(v, nnf, per, make(map[VisitKey]struct{}))
		}
		ts := per.IDTriples()
		cache.Put(epoch, v, request, ts)
		out.AddSet(per)
	}
}
