package core_test

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/core"
	pth "shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
	"shaclfrag/internal/turtle"
)

func TestFragmentSchemaExample13(t *testing.T) {
	// Example 1.3: the fragment keeps the paper typing triples plus the
	// WorkshopShape neighborhoods, and drops unrelated data.
	g := mustGraph(t, `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:p1 rdf:type ex:Paper ; ex:author ex:anne , ex:bob .
ex:anne rdf:type ex:Professor .
ex:bob rdf:type ex:Student .
ex:unrelated ex:madeOf ex:cheese .
`)
	typ := rdf.NewIRI(rdf.RDFType)
	typePath := pth.P(rdf.RDFType)
	workshop := shape.Min(1, p("author"),
		shape.Min(1, typePath, shape.Value(iri("Student"))))
	h := schema.MustNew(schema.Definition{
		Name:   iri("WorkshopShape"),
		Shape:  workshop,
		Target: shape.Min(1, typePath, shape.Value(iri("Paper"))),
	})
	frag := core.FragmentSchema(g, h)
	want := []rdf.Triple{
		rdf.T(iri("p1"), typ, iri("Paper")),
		rdf.T(iri("p1"), iri("author"), iri("bob")),
		rdf.T(iri("bob"), typ, iri("Student")),
	}
	if !triplesEqual(frag, want) {
		t.Errorf("Frag(G,H) = %v\nwant %v", frag, want)
	}
	// Conformance theorem: the fragment still validates.
	fragGraph := rdfgraph.FromTriples(frag)
	if !h.Validate(fragGraph).Conforms {
		t.Error("fragment must conform to the schema")
	}
}

func TestFragmentOfUnionIsUnionOfFragments(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		g := shapetest.RandomGraph(rng, 12)
		s1 := shapetest.RandomShape(rng, 2)
		s2 := shapetest.RandomShape(rng, 2)
		both := core.Fragment(g, nil, s1, s2)
		a := core.Fragment(g, nil, s1)
		b := core.Fragment(g, nil, s2)
		union := rdfgraph.NewTripleSet()
		for _, tr := range a {
			union.Add(tr)
		}
		for _, tr := range b {
			union.Add(tr)
		}
		if !triplesEqual(both, union.Triples()) {
			t.Fatalf("Frag(G,{s1,s2}) ≠ Frag(G,{s1}) ∪ Frag(G,{s2})\ns1 = %s\ns2 = %s", s1, s2)
		}
	}
}

// Theorem 4.1 (Conformance): for random schemas with monotone targets, if G
// conforms to H then Frag(G, H) conforms to H.
func TestConformanceTheoremProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2023))
	conforming := 0
	for trial := 0; trial < 300; trial++ {
		g := shapetest.RandomGraph(rng, 10)
		h := randomMonotoneTargetSchema(rng)
		if !h.Validate(g).Conforms {
			continue
		}
		conforming++
		frag := rdfgraph.FromTriples(core.FragmentSchema(g, h))
		if !h.Validate(frag).Conforms {
			t.Fatalf("Theorem 4.1 violated\nG:\n%s\nFrag:\n%s",
				turtle.FormatGraph(g), turtle.FormatGraph(frag))
		}
	}
	if conforming < 20 {
		t.Fatalf("only %d conforming trials; generator too strict", conforming)
	}
}

func randomMonotoneTargetSchema(rng *rand.Rand) *schema.Schema {
	var defs []schema.Definition
	n := 1 + rng.Intn(3)
	props := []string{"p", "q", "r"}
	for i := 0; i < n; i++ {
		var target shape.Shape
		switch rng.Intn(3) {
		case 0:
			target = schema.TargetNode(shapetest.IRI(string(rune('a' + rng.Intn(6)))))
		case 1:
			target = schema.TargetSubjectsOf(shapetest.Base + props[rng.Intn(3)])
		default:
			target = schema.TargetObjectsOf(shapetest.Base + props[rng.Intn(3)])
		}
		defs = append(defs, schema.Definition{
			Name:   shapetest.IRI("S" + string(rune('0'+i))),
			Shape:  shapetest.RandomShape(rng, 2),
			Target: target,
		})
	}
	return schema.MustNew(defs...)
}

func TestFragmentSelfSufficiency(t *testing.T) {
	// Stronger form mentioned in the introduction: v conforms to φ in G iff
	// v conforms in Frag(G, {φ}) — for conforming v, checked here; the
	// converse direction can fail (Example 4.3).
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		g := shapetest.RandomGraph(rng, 10)
		phi := shapetest.RandomShape(rng, 3)
		x := core.NewExtractor(g, nil)
		frag := rdfgraph.FromTriples(x.Fragment([]shape.Shape{phi}))
		fev := shape.NewEvaluator(frag, nil)
		for _, v := range g.NodeIDs() {
			if x.Evaluator().Conforms(v, phi) && !fev.ConformsTerm(g.Term(v), phi) {
				t.Fatalf("conformance lost in fragment for %s at %v", phi, g.Term(v))
			}
		}
	}
}
