package core_test

import (
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// TestNeighborhoodCacheEpochIsolation pins the epoch dimension of the key:
// an entry stored at one epoch is invisible to every other epoch.
func TestNeighborhoodCacheEpochIsolation(t *testing.T) {
	c := core.NewNeighborhoodCache(100)
	phi := shape.TrueShape()
	ts := []rdfgraph.IDTriple{{S: 1, P: 2, O: 3}}
	c.Put(1, 7, phi, ts)
	if _, ok := c.Get(2, 7, phi); ok {
		t.Fatal("epoch 2 served an epoch 1 entry")
	}
	if got, ok := c.Get(1, 7, phi); !ok || len(got) != 1 {
		t.Fatal("epoch 1 entry lost")
	}
}

func TestNeighborhoodCacheCarryAndEvictBelow(t *testing.T) {
	c := core.NewNeighborhoodCache(1000)
	phi, psi := shape.TrueShape(), shape.FalseShape()
	entry := func(v rdfgraph.ID) []rdfgraph.IDTriple {
		return []rdfgraph.IDTriple{{S: v, P: 0, O: 0}}
	}
	// Epoch 1: nodes 1..4 under phi, node 1 under psi too.
	for v := rdfgraph.ID(1); v <= 4; v++ {
		c.Put(1, v, phi, entry(v))
	}
	c.Put(1, 1, psi, entry(1))

	// Carry to epoch 2 keeping only even nodes.
	keep := func(v rdfgraph.ID) bool { return v%2 == 0 }
	carried := c.Carry(1, 2, keep)
	if carried != 2 {
		t.Fatalf("Carry carried %d entries, want 2 (nodes 2 and 4 under phi)", carried)
	}
	// New epoch hits exactly the kept nodes.
	if _, ok := c.Get(2, 2, phi); !ok {
		t.Error("kept node 2 missing at epoch 2")
	}
	if _, ok := c.Get(2, 4, phi); !ok {
		t.Error("kept node 4 missing at epoch 2")
	}
	if _, ok := c.Get(2, 1, phi); ok {
		t.Error("dropped node 1 served at epoch 2")
	}
	if _, ok := c.Get(2, 1, psi); ok {
		t.Error("dropped node 1 (psi) served at epoch 2")
	}
	// Old epoch still fully served until evicted.
	if _, ok := c.Get(1, 1, phi); !ok {
		t.Error("epoch 1 entry gone before EvictBelow")
	}

	entries, triples := c.EvictBelow(2)
	if entries != 5 || triples != 5 {
		t.Fatalf("EvictBelow removed %d entries / %d triples, want 5 / 5", entries, triples)
	}
	if _, ok := c.Get(1, 2, phi); ok {
		t.Error("stale epoch entry survived EvictBelow")
	}
	if _, ok := c.Get(2, 2, phi); !ok {
		t.Error("current epoch entry removed by EvictBelow")
	}

	st := c.Stats()
	if st.Carried != 2 {
		t.Errorf("Stats.Carried = %d, want 2", st.Carried)
	}
	if st.StaleEvictions != 5 || st.StaleTriples != 5 {
		t.Errorf("stale counters = %d/%d, want 5/5", st.StaleEvictions, st.StaleTriples)
	}
	if st.Entries != 2 || st.Triples != 2 {
		t.Errorf("occupancy after carry+evict = %+v, want 2 entries / 2 triples", st)
	}
}

// TestNeighborhoodCacheCarryNoOp: carrying onto the same epoch or with a
// nil predicate does nothing.
func TestNeighborhoodCacheCarryNoOp(t *testing.T) {
	c := core.NewNeighborhoodCache(100)
	phi := shape.TrueShape()
	c.Put(1, 1, phi, nil)
	if n := c.Carry(1, 1, func(rdfgraph.ID) bool { return true }); n != 0 {
		t.Fatalf("same-epoch Carry carried %d", n)
	}
	if n := c.Carry(1, 2, nil); n != 0 {
		t.Fatalf("nil-predicate Carry carried %d", n)
	}
	if c.Len() != 1 {
		t.Fatalf("no-op Carry changed occupancy: %d entries", c.Len())
	}
}
