package core

import (
	"container/list"
	"sync"
	"unsafe"

	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// NeighborhoodCache is a concurrency-safe, size-bounded LRU cache of
// per-(node, shape) neighborhoods B(v, G, φ), stored as dictionary-encoded
// triples. It lets a serving subsystem answer repeated fragment and
// neighborhood requests against the same (frozen) graph from memory.
//
// Keys use shape identity: callers must pass pointer-stable request shapes
// (e.g. the SchemaRequests slice computed once at startup), otherwise every
// request misses. The cached slices are shared between callers and must be
// treated as immutable.
//
// The bound is expressed in triples, not entries, because neighborhood
// sizes vary by orders of magnitude; an empty neighborhood still costs one
// unit so that negative results are bounded too.
type NeighborhoodCache struct {
	mu        sync.Mutex
	budget    int
	size      int
	ll        *list.List // front = most recently used
	items     map[neighborhoodKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	evicted   uint64 // triples removed by evictions, cumulative
}

// idTripleBytes is the in-memory size of one cached triple, used to
// report the cache's triple budget in bytes for operators.
const idTripleBytes = int(unsafe.Sizeof(rdfgraph.IDTriple{}))

type neighborhoodKey struct {
	node  rdfgraph.ID
	shape shape.Shape
}

type neighborhoodEntry struct {
	key     neighborhoodKey
	triples []rdfgraph.IDTriple
}

// NewNeighborhoodCache returns a cache bounded to about maxTriples cached
// triples in total; maxTriples <= 0 selects a default of one million.
func NewNeighborhoodCache(maxTriples int) *NeighborhoodCache {
	if maxTriples <= 0 {
		maxTriples = 1 << 20
	}
	return &NeighborhoodCache{
		budget: maxTriples,
		ll:     list.New(),
		items:  make(map[neighborhoodKey]*list.Element),
	}
}

func entryCost(ts []rdfgraph.IDTriple) int {
	if len(ts) == 0 {
		return 1
	}
	return len(ts)
}

// Get returns the cached neighborhood of (v, φ) and whether it was present.
func (c *NeighborhoodCache) Get(v rdfgraph.ID, phi shape.Shape) ([]rdfgraph.IDTriple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[neighborhoodKey{node: v, shape: phi}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*neighborhoodEntry).triples, true
}

// Put stores the neighborhood of (v, φ), evicting least-recently-used
// entries until it fits. Neighborhoods larger than the whole budget are not
// cached at all.
func (c *NeighborhoodCache) Put(v rdfgraph.ID, phi shape.Shape, ts []rdfgraph.IDTriple) {
	cost := entryCost(ts)
	if cost > c.budget {
		return
	}
	key := neighborhoodKey{node: v, shape: phi}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Concurrent workers may compute the same neighborhood; keep the
		// incumbent (the results are identical) and just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	for c.size+cost > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*neighborhoodEntry)
		c.ll.Remove(back)
		delete(c.items, ev.key)
		c.size -= entryCost(ev.triples)
		c.evictions++
		c.evicted += uint64(len(ev.triples))
	}
	c.items[key] = c.ll.PushFront(&neighborhoodEntry{key: key, triples: ts})
	c.size += cost
}

// CacheStats is a snapshot of cache effectiveness and occupancy
// counters. Hits, Misses, Evictions and EvictedTriples are cumulative
// since construction; Entries, Triples and Bytes describe current
// occupancy (Bytes approximates resident triple storage as
// Triples × sizeof(IDTriple), ignoring per-entry map and list overhead).
type CacheStats struct {
	Hits, Misses   uint64
	Evictions      uint64 // entries removed to make room
	EvictedTriples uint64 // triples those entries held
	Entries        int
	Triples        int
	Bytes          int
}

// Stats returns a consistent snapshot of the counters.
func (c *NeighborhoodCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		EvictedTriples: c.evicted,
		Entries:        c.ll.Len(),
		Triples:        c.size,
		Bytes:          c.size * idTripleBytes,
	}
}

// Len returns the number of cached neighborhoods.
func (c *NeighborhoodCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// NeighborhoodIDsCached computes B(v, G, φ) as dictionary-encoded triples,
// serving from and filling cache when it is non-nil. For cache hits to
// occur, φ must be the same Shape value across calls (see NeighborhoodCache
// on key identity). The returned slice is shared and must not be modified.
// An attached AttributionRecorder bypasses the cache both ways: a cached
// neighborhood carries no justifications to replay, and attributed
// extraction should not displace unattributed entries.
func (x *Extractor) NeighborhoodIDsCached(cache *NeighborhoodCache, v rdfgraph.ID, phi shape.Shape) []rdfgraph.IDTriple {
	if cache != nil && x.rec == nil {
		if ts, ok := cache.Get(v, phi); ok {
			return ts
		}
	}
	out := rdfgraph.NewIDTripleSet()
	x.collect(v, x.nnf(phi), out, make(map[VisitKey]struct{}))
	ts := out.IDTriples()
	if cache != nil && x.rec == nil {
		cache.Put(v, phi, ts)
	}
	return ts
}
