package core

import (
	"container/list"
	"sync"
	"unsafe"

	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// NeighborhoodCache is a concurrency-safe, size-bounded LRU cache of
// per-(node, shape) neighborhoods B(v, G, φ), stored as dictionary-encoded
// triples. It lets a serving subsystem answer repeated fragment and
// neighborhood requests against the same (frozen) graph from memory.
//
// Keys use shape identity: callers must pass pointer-stable request shapes
// (e.g. the SchemaRequests slice computed once at startup), otherwise every
// request misses. The cached slices are shared between callers and must be
// treated as immutable.
//
// Entries are additionally keyed by a store epoch (see rdfgraph.Store):
// a neighborhood computed against epoch e is only ever served to requests
// pinned to epoch e. After an update publishes epoch e+1, Carry clones
// forward the entries whose nodes the update provably did not affect
// (rdfgraph.ApplyResult.Unaffected), so the cache stays warm across
// updates, and EvictBelow reclaims entries of epochs no request can pin
// anymore. Single-graph callers that never update can pass any constant
// epoch (0 works) everywhere.
//
// The bound is expressed in triples, not entries, because neighborhood
// sizes vary by orders of magnitude; an empty neighborhood still costs one
// unit so that negative results are bounded too.
type NeighborhoodCache struct {
	mu        sync.Mutex
	budget    int
	size      int
	ll        *list.List // front = most recently used
	items     map[neighborhoodKey]*list.Element
	aliases   map[shape.Shape]shape.Shape // request shape -> class representative
	hits      uint64
	misses    uint64
	evictions uint64
	evicted   uint64 // triples removed by evictions, cumulative
	stale     uint64 // entries removed by EvictBelow, cumulative
	staleTrip uint64 // triples those entries held
	carried   uint64 // entries cloned forward by Carry, cumulative
	aliasHits uint64 // hits served through an alias translation
}

// idTripleBytes is the in-memory size of one cached triple, used to
// report the cache's triple budget in bytes for operators.
const idTripleBytes = int(unsafe.Sizeof(rdfgraph.IDTriple{}))

type neighborhoodKey struct {
	epoch uint64
	node  rdfgraph.ID
	shape shape.Shape
}

type neighborhoodEntry struct {
	key     neighborhoodKey
	triples []rdfgraph.IDTriple
}

// NewNeighborhoodCache returns a cache bounded to about maxTriples cached
// triples in total; maxTriples <= 0 selects a default of one million.
func NewNeighborhoodCache(maxTriples int) *NeighborhoodCache {
	if maxTriples <= 0 {
		maxTriples = 1 << 20
	}
	return &NeighborhoodCache{
		budget: maxTriples,
		ll:     list.New(),
		items:  make(map[neighborhoodKey]*list.Element),
	}
}

func entryCost(ts []rdfgraph.IDTriple) int {
	if len(ts) == 0 {
		return 1
	}
	return len(ts)
}

// SetAliases installs a shape-aliasing table: every Get and Put whose
// request shape appears as a key is silently re-keyed to the mapped
// representative, so congruent requests share one cache entry. The
// caller must guarantee the congruence is byte-exact — B(v, G, φ) and
// B(v, G, rep(φ)) identical for every node and graph — which is what
// contain.ComputeClasses certifies (see internal/contain's canonical
// congruence). Passing nil clears the table. Existing entries are left
// in place: entries keyed by a shape that just became an alias go cold
// and age out via LRU.
func (c *NeighborhoodCache) SetAliases(aliases map[shape.Shape]shape.Shape) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aliases = aliases
}

// resolveLocked maps a request shape through the alias table. The
// second result reports whether a translation happened.
func (c *NeighborhoodCache) resolveLocked(phi shape.Shape) (shape.Shape, bool) {
	if rep, ok := c.aliases[phi]; ok {
		return rep, true
	}
	return phi, false
}

// Get returns the cached neighborhood of (v, φ) at the given epoch and
// whether it was present.
func (c *NeighborhoodCache) Get(epoch uint64, v rdfgraph.ID, phi shape.Shape) ([]rdfgraph.IDTriple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, aliased := c.resolveLocked(phi)
	el, ok := c.items[neighborhoodKey{epoch: epoch, node: v, shape: rep}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	if aliased {
		c.aliasHits++
	}
	c.ll.MoveToFront(el)
	return el.Value.(*neighborhoodEntry).triples, true
}

// Put stores the neighborhood of (v, φ) computed at the given epoch,
// evicting least-recently-used entries until it fits. Neighborhoods larger
// than the whole budget are not cached at all.
func (c *NeighborhoodCache) Put(epoch uint64, v rdfgraph.ID, phi shape.Shape, ts []rdfgraph.IDTriple) {
	cost := entryCost(ts)
	if cost > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, _ := c.resolveLocked(phi)
	c.putLocked(neighborhoodKey{epoch: epoch, node: v, shape: rep}, ts, cost)
}

func (c *NeighborhoodCache) putLocked(key neighborhoodKey, ts []rdfgraph.IDTriple, cost int) {
	if el, ok := c.items[key]; ok {
		// Concurrent workers may compute the same neighborhood; keep the
		// incumbent (the results are identical) and just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	for c.size+cost > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*neighborhoodEntry)
		c.ll.Remove(back)
		delete(c.items, ev.key)
		c.size -= entryCost(ev.triples)
		c.evictions++
		c.evicted += uint64(len(ev.triples))
	}
	c.items[key] = c.ll.PushFront(&neighborhoodEntry{key: key, triples: ts})
	c.size += cost
}

// Carry clones the entries of epoch `from` whose node satisfies keep into
// epoch `to`, sharing the triple slices (IDs are stable across epochs, see
// rdfgraph.Dict.Extend). It returns how many entries were carried. keep is
// typically rdfgraph.ApplyResult.Unaffected — a predicate proving the
// node's neighborhood is identical in both epochs; Carry itself performs no
// soundness check. The source entries stay in place until EvictBelow
// reclaims them, so requests still pinned to the old epoch keep hitting.
func (c *NeighborhoodCache) Carry(from, to uint64, keep func(rdfgraph.ID) bool) int {
	if from == to || keep == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Collect first: putLocked mutates the list we would be ranging over,
	// and may evict the very entries being copied.
	type carry struct {
		key neighborhoodKey
		ts  []rdfgraph.IDTriple
	}
	var picked []carry
	for key, el := range c.items {
		if key.epoch != from || !keep(key.node) {
			continue
		}
		picked = append(picked, carry{
			key: neighborhoodKey{epoch: to, node: key.node, shape: key.shape},
			ts:  el.Value.(*neighborhoodEntry).triples,
		})
	}
	for _, p := range picked {
		c.putLocked(p.key, p.ts, entryCost(p.ts))
	}
	c.carried += uint64(len(picked))
	return len(picked)
}

// EvictBelow removes every entry of an epoch older than min, returning how
// many entries and triples were dropped. The serving layer calls it once no
// in-flight request pins an epoch below min.
func (c *NeighborhoodCache) EvictBelow(min uint64) (entries, triples int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		ev := el.Value.(*neighborhoodEntry)
		if ev.key.epoch >= min {
			continue
		}
		c.ll.Remove(el)
		delete(c.items, ev.key)
		c.size -= entryCost(ev.triples)
		entries++
		triples += len(ev.triples)
	}
	c.stale += uint64(entries)
	c.staleTrip += uint64(triples)
	return entries, triples
}

// CacheStats is a snapshot of cache effectiveness and occupancy
// counters. Hits, Misses, Evictions and EvictedTriples are cumulative
// since construction; Entries, Triples and Bytes describe current
// occupancy (Bytes approximates resident triple storage as
// Triples × sizeof(IDTriple), ignoring per-entry map and list overhead).
type CacheStats struct {
	Hits, Misses   uint64
	Evictions      uint64 // entries removed to make room
	EvictedTriples uint64 // triples those entries held
	StaleEvictions uint64 // entries removed by EvictBelow (stale epochs)
	StaleTriples   uint64 // triples those entries held
	Carried        uint64 // entries cloned to a new epoch by Carry
	AliasHits      uint64 // hits served through a containment alias (subset of Hits)
	Entries        int
	Triples        int
	Bytes          int
}

// Stats returns a consistent snapshot of the counters.
func (c *NeighborhoodCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		EvictedTriples: c.evicted,
		StaleEvictions: c.stale,
		StaleTriples:   c.staleTrip,
		Carried:        c.carried,
		AliasHits:      c.aliasHits,
		Entries:        c.ll.Len(),
		Triples:        c.size,
		Bytes:          c.size * idTripleBytes,
	}
}

// Len returns the number of cached neighborhoods.
func (c *NeighborhoodCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// NeighborhoodIDsCached computes B(v, G, φ) as dictionary-encoded triples,
// serving from and filling cache when it is non-nil. epoch identifies the
// snapshot the extractor's graph belongs to (0 for single-graph callers).
// For cache hits to occur, φ must be the same Shape value across calls (see
// NeighborhoodCache on key identity). The returned slice is shared and must
// not be modified. An attached AttributionRecorder bypasses the cache both
// ways: a cached neighborhood carries no justifications to replay, and
// attributed extraction should not displace unattributed entries.
func (x *Extractor) NeighborhoodIDsCached(cache *NeighborhoodCache, epoch uint64, v rdfgraph.ID, phi shape.Shape) []rdfgraph.IDTriple {
	if cache != nil && x.rec == nil {
		if ts, ok := cache.Get(epoch, v, phi); ok {
			return ts
		}
	}
	out := rdfgraph.NewIDTripleSet()
	x.collect(v, x.nnf(phi), out, make(map[VisitKey]struct{}))
	ts := out.IDTriples()
	if cache != nil && x.rec == nil {
		cache.Put(epoch, v, phi, ts)
	}
	return ts
}
