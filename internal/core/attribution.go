package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// Justification records why one triple entered a neighborhood: the Table 2
// rule that fired. It names the enclosing shape definition (zero Term for
// anonymous request shapes), the constraint whose rule emitted the triple,
// whether the rule was a negated-atom row, the focus node the rule fired
// at, and — for triples pulled in by path tracing — the product-automaton
// Step the triple rides on. Justification is a comparable value type, so
// recorders can deduplicate with it as a map key.
type Justification struct {
	// Shape is the innermost named shape definition whose constraint fired,
	// or the zero Term when extraction started from an anonymous shape.
	Shape rdf.Term
	// Constraint is the (NNF) shape whose Table 2 row emitted the triple.
	Constraint shape.Shape
	// Negated marks the negated-atom rows of Table 2 (¬eq, ¬disj, ¬closed, …).
	Negated bool
	// Focus is the node the rule fired at — the v of B(v, G, φ).
	Focus rdfgraph.ID
	// Step is the product-automaton transition for path-traced triples;
	// meaningful only when HasStep is set.
	Step    paths.Step
	HasStep bool
}

// Kind returns a bounded label for the constraint operator, suitable as a
// metric label value: one of ConstraintKinds.
func (j Justification) Kind() string {
	var k string
	switch j.Constraint.(type) {
	case *shape.HasShape:
		k = "hasShape"
	case *shape.Eq:
		k = "eq"
	case *shape.Disj:
		k = "disj"
	case *shape.LessThan:
		k = "lessThan"
	case *shape.LessThanEq:
		k = "lessThanEq"
	case *shape.MoreThan:
		k = "moreThan"
	case *shape.MoreThanEq:
		k = "moreThanEq"
	case *shape.UniqueLang:
		k = "uniqueLang"
	case *shape.Closed:
		k = "closed"
	case *shape.MinCount:
		k = "minCount"
	case *shape.MaxCount:
		k = "maxCount"
	case *shape.Forall:
		k = "forall"
	default:
		k = "other"
	}
	if j.Negated {
		return "not_" + k
	}
	return k
}

// ConstraintKinds enumerates every label Justification.Kind can return, so
// metric consumers can pre-create one series per kind.
var ConstraintKinds = []string{
	"eq", "minCount", "maxCount", "forall",
	"not_hasShape", "not_eq", "not_disj", "not_lessThan", "not_lessThanEq",
	"not_moreThan", "not_moreThanEq", "not_uniqueLang", "not_closed",
	"hasShape", "disj", "lessThan", "lessThanEq", "moreThan", "moreThanEq",
	"uniqueLang", "closed", "other",
}

// Render formats the justification for human consumption, decoding IDs
// through g's dictionary: "shape: constraint [focus <v>] (step qI <p>→ qJ)".
func (j Justification) Render(g rdfgraph.Reader) string {
	var b strings.Builder
	if j.Shape != (rdf.Term{}) {
		b.WriteString(j.Shape.String())
		b.WriteString(": ")
	}
	if j.Negated {
		b.WriteString("¬")
	}
	b.WriteString(j.Constraint.String())
	b.WriteString(" [focus ")
	b.WriteString(g.Term(j.Focus).String())
	b.WriteString("]")
	if j.HasStep {
		dir := "→"
		if !j.Step.Fwd {
			dir = "←"
		}
		fmt.Fprintf(&b, " (step q%d %s%s q%d)", j.Step.From, g.Term(j.Step.Pred).String(), dir, j.Step.To)
	}
	return b.String()
}

// AttributionRecorder receives a justification for every triple a Table 2
// rule emits. Implementations must tolerate duplicate records (the same
// (triple, justification) pair may be reported from several rule firings)
// and, when shared across FragmentParallel workers, must be safe for
// concurrent use. A nil recorder on the extractor disables attribution and
// keeps the hot path unchanged.
type AttributionRecorder interface {
	Record(t rdfgraph.IDTriple, j Justification)
}

// Explanation is the standard AttributionRecorder: a map from triple to
// the ordered list of justifications that pulled it into the fragment.
// Safe for concurrent Record calls; reads are consistent once recording
// has finished.
type Explanation struct {
	g  rdfgraph.Reader
	mu sync.Mutex
	// byTriple preserves first-recorded order per triple.
	byTriple map[rdfgraph.IDTriple][]Justification
	seen     map[explKey]struct{}
}

type explKey struct {
	t rdfgraph.IDTriple
	j Justification
}

// NewExplanation returns an empty explanation over g's dictionary.
func NewExplanation(g rdfgraph.Reader) *Explanation {
	return &Explanation{
		g:        g,
		byTriple: make(map[rdfgraph.IDTriple][]Justification),
		seen:     make(map[explKey]struct{}),
	}
}

// Record implements AttributionRecorder, deduplicating exact repeats.
func (e *Explanation) Record(t rdfgraph.IDTriple, j Justification) {
	k := explKey{t: t, j: j}
	e.mu.Lock()
	if _, dup := e.seen[k]; !dup {
		e.seen[k] = struct{}{}
		e.byTriple[t] = append(e.byTriple[t], j)
	}
	e.mu.Unlock()
}

// Graph returns the graph whose dictionary decodes the recorded IDs.
func (e *Explanation) Graph() rdfgraph.Reader { return e.g }

// Len returns the number of distinct explained triples.
func (e *Explanation) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.byTriple)
}

// IDTriples returns the explained triples in canonical (decoded) order.
func (e *Explanation) IDTriples() []rdfgraph.IDTriple {
	e.mu.Lock()
	ids := make([]rdfgraph.IDTriple, 0, len(e.byTriple))
	for t := range e.byTriple {
		ids = append(ids, t)
	}
	e.mu.Unlock()
	d := e.g.Dict()
	sort.Slice(ids, func(i, j int) bool {
		return rdf.CompareTriples(decode(d, ids[i]), decode(d, ids[j])) < 0
	})
	return ids
}

func decode(d *rdfgraph.Dict, t rdfgraph.IDTriple) rdf.Triple {
	return rdf.Triple{S: d.Term(t.S), P: d.Term(t.P), O: d.Term(t.O)}
}

// Justifications returns the justification list recorded for t, in
// first-recorded order. The returned slice is shared; treat as read-only.
func (e *Explanation) Justifications(t rdfgraph.IDTriple) []Justification {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.byTriple[t]
}

// AnnotatedTriple pairs a decoded triple with its justifications, sorted by
// rendered form for deterministic output (the internal recording order
// depends on trace iteration order).
type AnnotatedTriple struct {
	Triple         rdf.Triple
	Justifications []Justification
	Rendered       []string
}

// Annotated returns every explained triple with its justifications, in
// canonical triple order with justifications sorted by rendered string.
func (e *Explanation) Annotated() []AnnotatedTriple {
	ids := e.IDTriples()
	d := e.g.Dict()
	out := make([]AnnotatedTriple, 0, len(ids))
	for _, t := range ids {
		js := append([]Justification(nil), e.Justifications(t)...)
		rendered := make([]string, len(js))
		for i, j := range js {
			rendered[i] = j.Render(e.g)
		}
		sort.Sort(&byRendered{js: js, r: rendered})
		out = append(out, AnnotatedTriple{Triple: decode(d, t), Justifications: js, Rendered: rendered})
	}
	return out
}

type byRendered struct {
	js []Justification
	r  []string
}

func (b *byRendered) Len() int           { return len(b.r) }
func (b *byRendered) Less(i, j int) bool { return b.r[i] < b.r[j] }
func (b *byRendered) Swap(i, j int) {
	b.r[i], b.r[j] = b.r[j], b.r[i]
	b.js[i], b.js[j] = b.js[j], b.js[i]
}

// ExplainDiff reports the triples present in a but absent from b, each with
// a's justifications — i.e. which constraint accounts for the extra triples
// of one fragment over another. Both explanations must share a dictionary
// (be computed over the same graph).
func ExplainDiff(a, b *Explanation) []AnnotatedTriple {
	inB := make(map[rdfgraph.IDTriple]struct{})
	for _, t := range b.IDTriples() {
		inB[t] = struct{}{}
	}
	ids := a.IDTriples()
	ann := a.Annotated() // same canonical order as ids
	var diff []AnnotatedTriple
	for i, id := range ids {
		if _, ok := inB[id]; !ok {
			diff = append(diff, ann[i])
		}
	}
	return diff
}

// SetRecorder attaches (or, with nil, detaches) an attribution recorder.
// With a recorder attached every Table 2 emission is reported alongside the
// triple; with none the extraction hot path is byte-for-byte the
// unattributed algorithm.
func (x *Extractor) SetRecorder(rec AttributionRecorder) { x.rec = rec }

// Explain computes B(v, G, φ) with attribution, returning the explanation.
// name, when non-zero, labels the top-level shape in every justification
// (recursion into hasShape atoms switches to the referenced definition).
func (x *Extractor) Explain(v rdf.Term, name rdf.Term, phi shape.Shape) *Explanation {
	ex := NewExplanation(x.ev.G)
	x.ExplainInto(ex, v, name, phi)
	return ex
}

// ExplainInto accumulates B(v, G, φ) with attribution into an existing
// explanation, so one explanation can cover several (node, shape) pairs —
// the /explain endpoint merges one definition per call this way.
func (x *Extractor) ExplainInto(ex *Explanation, v rdf.Term, name rdf.Term, phi shape.Shape) {
	prevRec, prevName := x.rec, x.curName
	x.rec, x.curName = ex, name
	if id, ok := x.FocusID(v); ok {
		x.NeighborhoodInto(id, phi, rdfgraph.NewIDTripleSet(), make(map[VisitKey]struct{}))
	}
	x.rec, x.curName = prevRec, prevName
}

// ExplainFragment computes Frag(G, S) with attribution: the explanation
// covers the union of all neighborhoods over all nodes and request shapes,
// exactly the triples Fragment(requests) returns.
func (x *Extractor) ExplainFragment(requests []shape.Shape) *Explanation {
	ex := NewExplanation(x.ev.G)
	prevRec, prevName := x.rec, x.curName
	x.rec, x.curName = ex, rdf.Term{}
	out := rdfgraph.NewIDTripleSet()
	visited := make(map[VisitKey]struct{})
	for _, phi := range requests {
		nnf := x.nnf(phi)
		for _, v := range x.ev.G.NodeIDs() {
			x.collect(v, nnf, out, visited)
		}
	}
	x.rec, x.curName = prevRec, prevName
	return ex
}
