package core

import (
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// Fragment computes the shape fragment Frag(G, S) for a set of request
// shapes: the union of the neighborhoods of all nodes of G for all shapes
// in S. The result is a subgraph of G, returned in canonical triple order.
//
// Although the definition ranges v over the infinite universe N, only
// nodes occurring in G — plus the hasValue constants of the shapes, whose
// neighborhoods are always subgraphs anyway — can contribute triples, so
// the computation ranges over N(G).
func (x *Extractor) Fragment(requests []shape.Shape) []rdf.Triple {
	out := rdfgraph.NewIDTripleSet()
	visited := make(map[VisitKey]struct{})
	for _, phi := range requests {
		nnf := x.nnf(phi)
		for _, v := range x.ev.G.NodeIDs() {
			x.collect(v, nnf, out, visited)
		}
	}
	return out.Triples(x.ev.G.Dict())
}

// FragmentGraph is Fragment frozen into a Graph.
func (x *Extractor) FragmentGraph(requests []shape.Shape) *rdfgraph.Graph {
	return rdfgraph.FromTriples(x.Fragment(requests))
}

// SchemaRequests derives the request shapes for a schema fragment:
// {φ ∧ τ | (s, φ, τ) ∈ H}.
func SchemaRequests(h *schema.Schema) []shape.Shape {
	var out []shape.Shape
	for _, d := range h.Definitions() {
		out = append(out, shape.AndOf(d.Shape, d.Target))
	}
	return out
}

// FragmentSchema computes Frag(G, H): the shape fragment for a schema,
// requesting the conjunction of each shape with its target. By the
// Conformance theorem (4.1), if G conforms to H and H has monotone
// targets, the result conforms to H as well.
func (x *Extractor) FragmentSchema(h *schema.Schema) []rdf.Triple {
	return x.Fragment(SchemaRequests(h))
}

// Neighborhood is a convenience wrapper: B(v, G, φ) in the context of defs
// (which may be nil).
func Neighborhood(g rdfgraph.Reader, defs shape.Defs, v rdf.Term, phi shape.Shape) []rdf.Triple {
	return NewExtractor(g, defs).Neighborhood(v, phi)
}

// Fragment is a convenience wrapper: Frag(G, S) in the context of defs.
func Fragment(g rdfgraph.Reader, defs shape.Defs, requests ...shape.Shape) []rdf.Triple {
	return NewExtractor(g, defs).Fragment(requests)
}

// FragmentSchema is a convenience wrapper: Frag(G, H).
func FragmentSchema(g rdfgraph.Reader, h *schema.Schema) []rdf.Triple {
	return NewExtractor(g, h).FragmentSchema(h)
}
