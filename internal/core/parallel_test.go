package core_test

import (
	"context"
	"sync"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/turtle"
)

// parityConfigs is the worker/cache grid every parity test sweeps.
func parityConfigs() []core.ParallelOptions {
	var out []core.ParallelOptions
	for _, workers := range []int{1, 2, 4} {
		out = append(out,
			core.ParallelOptions{Workers: workers},
			core.ParallelOptions{Workers: workers, Cache: core.NewNeighborhoodCache(1 << 20)},
		)
	}
	return out
}

// assertParallelParity checks FragmentParallel against Fragment for
// byte-identical canonical N-Triples output, across the worker/cache grid
// and on both the mutable and the frozen graph.
func assertParallelParity(t *testing.T, g *rdfgraph.Graph, defs shape.Defs, requests []shape.Shape) {
	t.Helper()
	want := turtle.FormatNTriples(core.NewExtractor(g, defs).Fragment(requests))
	check := func(g *rdfgraph.Graph, label string) {
		for _, opts := range parityConfigs() {
			got, err := core.NewExtractor(g, defs).FragmentParallel(requests, opts)
			if err != nil {
				t.Fatalf("%s workers=%d cache=%v: %v", label, opts.Workers, opts.Cache != nil, err)
			}
			if s := turtle.FormatNTriples(got); s != want {
				t.Errorf("%s workers=%d cache=%v: output differs from serial Fragment (%d vs %d bytes)",
					label, opts.Workers, opts.Cache != nil, len(s), len(want))
			}
			// A second run through the same options must also agree — with a
			// cache this exercises the hit path.
			if opts.Cache != nil {
				again, err := core.NewExtractor(g, defs).FragmentParallel(requests, opts)
				if err != nil {
					t.Fatal(err)
				}
				if turtle.FormatNTriples(again) != want {
					t.Errorf("%s workers=%d: cached rerun diverged", label, opts.Workers)
				}
			}
		}
	}
	check(g, "mutable")
	g.Freeze()
	check(g, "frozen")
}

func TestFragmentParallelParityTyrol(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 120, Seed: 7})
	defs := datagen.BenchmarkShapes()
	h := schema.MustNew(defs...)
	assertParallelParity(t, g, h, core.SchemaRequests(h))
}

func TestFragmentParallelParityCoauthor(t *testing.T) {
	corpus := datagen.NewCoauthor(datagen.CoauthorConfig{Papers: 200, Seed: 7})
	g := corpus.Graph(corpus.YearMin())
	assertParallelParity(t, g, nil, []shape.Shape{datagen.HubDistance3Shape()})
}

func TestSchemaRequestsShape(t *testing.T) {
	defs := datagen.BenchmarkShapes()[:6]
	h := schema.MustNew(defs...)
	requests := core.SchemaRequests(h)
	if len(requests) != len(defs) {
		t.Fatalf("SchemaRequests returned %d shapes for %d definitions", len(requests), len(defs))
	}
	// Each request is φ ∧ τ for its definition, in definition order.
	for i, r := range requests {
		want := shape.AndOf(defs[i].Shape, defs[i].Target)
		if r.String() != want.String() {
			t.Errorf("request %d = %s, want %s", i, r, want)
		}
	}
	// FragmentSchema must be Fragment over exactly these requests.
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 60, Seed: 3})
	viaSchema := turtle.FormatNTriples(core.NewExtractor(g, h).FragmentSchema(h))
	viaRequests := turtle.FormatNTriples(core.NewExtractor(g, h).Fragment(requests))
	if viaSchema != viaRequests {
		t.Error("FragmentSchema and Fragment(SchemaRequests) disagree")
	}
	parallel, err := core.NewExtractor(g, h).FragmentSchemaParallel(h, core.ParallelOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if turtle.FormatNTriples(parallel) != viaSchema {
		t.Error("FragmentSchemaParallel disagrees with FragmentSchema")
	}
}

func TestFragmentParallelCancelled(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 100, Seed: 1})
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: extraction must abort, not compute
	for _, workers := range []int{1, 4} {
		_, err := core.NewExtractor(g, h).FragmentParallel(
			core.SchemaRequests(h), core.ParallelOptions{Workers: workers, Ctx: ctx})
		if err == nil {
			t.Errorf("workers=%d: expected context error from cancelled extraction", workers)
		}
	}
}

func TestFragmentParallelEmpty(t *testing.T) {
	g := rdfgraph.New()
	ts, err := core.NewExtractor(g, nil).FragmentParallel(nil, core.ParallelOptions{Workers: 4})
	if err != nil || len(ts) != 0 {
		t.Fatalf("empty fragment: got %d triples, err %v", len(ts), err)
	}
}

func TestNeighborhoodCacheLRU(t *testing.T) {
	c := core.NewNeighborhoodCache(10)
	phi := shape.TrueShape()
	triple := func(i int) []rdfgraph.IDTriple {
		return []rdfgraph.IDTriple{{S: rdfgraph.ID(i), P: 0, O: 0}}
	}
	for i := 0; i < 20; i++ {
		c.Put(0, rdfgraph.ID(i), phi, triple(i))
	}
	st := c.Stats()
	if st.Triples > 10 {
		t.Errorf("cache exceeded its budget: %d triples cached", st.Triples)
	}
	if _, ok := c.Get(0, 0, phi); ok {
		t.Error("oldest entry should have been evicted")
	}
	if ts, ok := c.Get(0, 19, phi); !ok || len(ts) != 1 || ts[0].S != 19 {
		t.Error("newest entry missing or wrong")
	}
	// Oversized neighborhoods are passed through uncached.
	big := make([]rdfgraph.IDTriple, 11)
	c.Put(0, 100, phi, big)
	if _, ok := c.Get(0, 100, phi); ok {
		t.Error("entry larger than the whole budget must not be cached")
	}
	// Distinct shapes are distinct keys; empty neighborhoods are cached.
	phi2 := shape.FalseShape()
	c.Put(0, 19, phi2, nil)
	if ts, ok := c.Get(0, 19, phi2); !ok || len(ts) != 0 {
		t.Error("empty neighborhood for second shape not cached independently")
	}
}

func TestNeighborhoodCacheConcurrent(t *testing.T) {
	c := core.NewNeighborhoodCache(1000)
	shapes := []shape.Shape{shape.TrueShape(), shape.FalseShape()}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := rdfgraph.ID(i % 50)
				phi := shapes[i%2]
				if ts, ok := c.Get(0, v, phi); ok {
					if len(ts) != 1 || ts[0].S != v {
						t.Errorf("corrupt cache entry for node %d", v)
						return
					}
					continue
				}
				c.Put(0, v, phi, []rdfgraph.IDTriple{{S: v}})
			}
		}(w)
	}
	wg.Wait()
}

func TestNeighborhoodIDsCached(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 40, Seed: 2})
	h := schema.MustNew(datagen.BenchmarkShapes()[:4]...)
	g.Freeze()
	x := core.NewExtractor(g, h)
	cache := core.NewNeighborhoodCache(1 << 16)
	phi := h.Definitions()[0].Shape
	for _, v := range g.NodeIDs()[:10] {
		first := x.NeighborhoodIDsCached(cache, 0, v, phi)
		second := x.NeighborhoodIDsCached(cache, 0, v, phi)
		if len(first) != len(second) {
			t.Fatalf("cached result differs for node %d", v)
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Error("expected cache hits on repeated neighborhood requests")
	}
}

// TestFragmentFrozenGraph pins down that serial extraction is read-only on
// the graph: a frozen graph (which panics on any dictionary write) must
// serve Fragment and WhyNot without incident.
func TestFragmentFrozenGraph(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 80, Seed: 5})
	defs := datagen.BenchmarkShapes()
	h := schema.MustNew(defs...)
	want := turtle.FormatNTriples(core.NewExtractor(g, h).FragmentSchema(h))
	g.Freeze()
	got := turtle.FormatNTriples(core.NewExtractor(g, h).FragmentSchema(h))
	if got != want {
		t.Error("fragment changed after freezing the graph")
	}
	// Why-not provenance exercises the negated-atom rows of Table 2.
	report := h.Validate(g)
	x := core.NewExtractor(g, h)
	byName := map[string]schema.Definition{}
	for _, d := range defs {
		byName[d.Name.Value] = d
	}
	for i, v := range report.Violations() {
		if i >= 25 {
			break
		}
		d := byName[v.ShapeName.Value]
		x.WhyNot(v.Focus, shape.AndOf(d.Shape, d.Target)) // must not panic
	}
	// A focus term the graph has never seen has an empty neighborhood.
	ghost := core.Neighborhood(g, h, rdf.NewIRI("http://example.org/ghost-node"), defs[0].Shape)
	if len(ghost) != 0 {
		t.Errorf("unseen focus node produced %d triples", len(ghost))
	}
}
