// Package core implements the paper's primary contribution: the provenance
// semantics for SHACL. It computes the neighborhood B(v, G, φ) of a node v
// for a shape φ in a graph G (Definition 3.2 / Table 2) and shape fragments
// Frag(G, S) and Frag(G, H) (Section 4).
//
// The neighborhood of a conforming node is the subgraph of G that shows the
// node conforms; it satisfies the Sufficiency property (Theorem 3.4): v
// still conforms to φ in every G' with B(v,G,φ) ⊆ G' ⊆ G. For
// non-conforming nodes the neighborhood is empty; the neighborhood for ¬φ
// then provides why-not provenance (Remark 3.7).
//
// # Concurrency
//
// An Extractor is single-goroutine state (its evaluator and NNF caches
// are unsynchronized); use one per goroutine. All extraction is strictly
// read-only on the graph, so any number of extractors may share one
// graph concurrently once it is frozen (rdfgraph.Graph.Freeze) — that is
// the contract FragmentParallel builds on: it spawns one private
// extractor per worker and unions their results, and internal/fragserver
// pools extractors across requests. Extraction can emit sub-stage
// timings into an obs.Tracer via ParallelOptions.Tracer; a shared
// obs.Trace accepts concurrent observations.
//
// # Cache bounds
//
// NeighborhoodCache is the one shared-mutable structure here; it is
// mutex-guarded and safe for concurrent use. Its bound is a triple
// budget, not an entry count: entries cost max(1, len(triples)) units
// and least-recently-used entries are evicted until a new entry fits, so
// resident memory is O(budget) regardless of how skewed neighborhood
// sizes are. Neighborhoods larger than the whole budget are returned but
// never cached. Cached slices are shared with callers and must be
// treated as immutable. Stats exposes hit/miss/eviction/occupancy
// counters for the serving layer's metrics endpoint.
package core

import (
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// Extractor computes neighborhoods and fragments over one graph in the
// context of one schema. It shares the conformance evaluator's caches and
// memoizes which (node, shape) neighborhoods have already been emitted, so
// computing a fragment is little more expensive than validating.
// An Extractor is not safe for concurrent use.
type Extractor struct {
	ev *shape.Evaluator

	// nnfCache memoizes NNF normalization per shape identity.
	nnfCache map[shape.Shape]shape.Shape
	// negCache memoizes NNF(¬φ) per shape identity.
	negCache map[shape.Shape]shape.Shape

	// rec, when non-nil, receives a Justification for every triple a
	// Table 2 rule emits (see SetRecorder); nil keeps the hot path free
	// of attribution work.
	rec AttributionRecorder
	// curName is the innermost named shape definition currently being
	// collected, stamped into justifications. Maintained only while rec
	// is attached.
	curName rdf.Term
}

// NewExtractor returns an extractor for g in the context of defs (which may
// be nil). The provided evaluator caches are reused across all neighborhood
// and fragment computations done through this extractor.
func NewExtractor(g rdfgraph.Reader, defs shape.Defs) *Extractor {
	return &Extractor{
		ev:       shape.NewEvaluator(g, defs),
		nnfCache: make(map[shape.Shape]shape.Shape),
		negCache: make(map[shape.Shape]shape.Shape),
	}
}

// NewExtractorWith wraps an existing evaluator, sharing its caches.
func NewExtractorWith(ev *shape.Evaluator) *Extractor {
	return &Extractor{
		ev:       ev,
		nnfCache: make(map[shape.Shape]shape.Shape),
		negCache: make(map[shape.Shape]shape.Shape),
	}
}

// Evaluator exposes the underlying conformance evaluator.
func (x *Extractor) Evaluator() *shape.Evaluator { return x.ev }

// Graph returns the data graph.
func (x *Extractor) Graph() rdfgraph.Reader { return x.ev.G }

func (x *Extractor) nnf(phi shape.Shape) shape.Shape {
	if n, ok := x.nnfCache[phi]; ok {
		return n
	}
	n := shape.NNF(phi)
	x.nnfCache[phi] = n
	return n
}

func (x *Extractor) negNNF(phi shape.Shape) shape.Shape {
	if n, ok := x.negCache[phi]; ok {
		return n
	}
	n := shape.NNF(shape.Neg(phi))
	x.negCache[phi] = n
	return n
}

// VisitKey marks a (node, NNF shape) pair whose neighborhood has already
// been added to the current accumulation set.
type VisitKey struct {
	node  rdfgraph.ID
	shape shape.Shape
}

// Neighborhood computes B(v, G, φ). The shape is normalized to NNF
// internally; the result is a subgraph of G returned as a sorted triple
// list. If v does not conform to φ, the result is empty.
func (x *Extractor) Neighborhood(v rdf.Term, phi shape.Shape) []rdf.Triple {
	out := rdfgraph.NewIDTripleSet()
	if id, ok := x.FocusID(v); ok {
		x.NeighborhoodInto(id, phi, out, make(map[VisitKey]struct{}))
	}
	return out.Triples(x.ev.G.Dict())
}

// FocusID resolves a focus term to a dictionary ID, interning it while the
// graph is still mutable. On a frozen graph an unseen term reports ok =
// false: such a node touches no triple of G, so every neighborhood of it is
// empty and extraction can be skipped entirely.
func (x *Extractor) FocusID(v rdf.Term) (rdfgraph.ID, bool) {
	g := x.ev.G
	if id := g.LookupTerm(v); id != rdfgraph.NoID {
		return id, true
	}
	if g.Frozen() {
		return rdfgraph.NoID, false
	}
	return g.TermID(v), true
}

// WhyNot computes B(v, G, ¬φ), the why-not provenance for a node that does
// not conform to φ (Remark 3.7). Empty if v does conform.
func (x *Extractor) WhyNot(v rdf.Term, phi shape.Shape) []rdf.Triple {
	return x.Neighborhood(v, shape.Neg(phi))
}

// NeighborhoodInto accumulates B(v, G, φ) into out, sharing the visited set
// across calls; fragments use this to merge all neighborhoods cheaply.
func (x *Extractor) NeighborhoodInto(v rdfgraph.ID, phi shape.Shape, out *rdfgraph.IDTripleSet, visited map[VisitKey]struct{}) {
	x.collect(v, x.nnf(phi), out, visited)
}

// put adds t to out; with a recorder attached it also records which
// constraint emitted the triple at which focus node.
func (x *Extractor) put(out *rdfgraph.IDTripleSet, t rdfgraph.IDTriple, v rdfgraph.ID, constraint shape.Shape, negated bool) {
	out.Add(t)
	if x.rec != nil {
		x.rec.Record(t, Justification{
			Shape: x.curName, Constraint: constraint, Negated: negated, Focus: v,
		})
	}
}

// addTrace unions graph(paths(E, G, v, targets)) into out. Without a
// recorder this is the original TraceUnionIDs loop; with one it switches to
// TraceEdges, so every traced triple carries the product-automaton step it
// rides on. Both visit exactly the same triple set.
func (x *Extractor) addTrace(pe *paths.Evaluator, v rdfgraph.ID, targets []rdfgraph.ID, constraint shape.Shape, negated bool, out *rdfgraph.IDTripleSet) {
	if x.rec == nil {
		for _, t := range pe.TraceUnionIDs(v, targets) {
			out.Add(t)
		}
		return
	}
	pe.TraceEdges(v, targets, func(t rdfgraph.IDTriple, step paths.Step) {
		out.Add(t)
		x.rec.Record(t, Justification{
			Shape: x.curName, Constraint: constraint, Negated: negated,
			Focus: v, Step: step, HasStep: true,
		})
	})
}

// collect implements Table 2. phi must be in NNF; v must be interned.
func (x *Extractor) collect(v rdfgraph.ID, phi shape.Shape, out *rdfgraph.IDTripleSet, visited map[VisitKey]struct{}) {
	key := VisitKey{node: v, shape: phi}
	if _, done := visited[key]; done {
		return
	}
	visited[key] = struct{}{}

	if !x.ev.Conforms(v, phi) {
		return // B(v, G, φ) = ∅ when v does not conform
	}

	g := x.ev.G
	switch s := phi.(type) {
	case *shape.True, *shape.False, *shape.Test, *shape.HasValue,
		*shape.Closed, *shape.Disj, *shape.LessThan, *shape.LessThanEq,
		*shape.MoreThan, *shape.MoreThanEq, *shape.UniqueLang:
		// Minimal neighborhoods: these shapes need no triples as evidence
		// (Section 3.1), except positive eq which is handled below.
		return

	case *shape.HasShape:
		if x.rec != nil {
			prev := x.curName
			x.curName = s.Name
			x.collect(v, x.nnf(x.ev.Def(s.Name)), out, visited)
			x.curName = prev
			return
		}
		x.collect(v, x.nnf(x.ev.Def(s.Name)), out, visited)

	case *shape.And:
		for _, c := range s.Xs {
			x.collect(v, c, out, visited)
		}

	case *shape.Or:
		// Deterministic union over all (conforming) disjuncts; collect
		// itself skips non-conforming ones.
		for _, c := range s.Xs {
			x.collect(v, c, out, visited)
		}

	case *shape.MinCount:
		// ⋃ { graph(paths(E,G,v,x)) ∪ B(x,G,ψ) | x ∈ ⟦E⟧G(v), G,x ⊨ ψ }
		pe := x.ev.PathEval(s.Path)
		var witnesses []rdfgraph.ID
		for _, b := range pe.Eval(v) {
			if x.ev.Conforms(b, s.X) {
				witnesses = append(witnesses, b)
			}
		}
		x.addTrace(pe, v, witnesses, phi, false, out)
		for _, b := range witnesses {
			x.collect(b, s.X, out, visited)
		}

	case *shape.MaxCount:
		// ⋃ { graph(paths(E,G,v,x)) ∪ B(x,G,¬ψ) | x ∈ ⟦E⟧G(v), G,x ⊨ ¬ψ }
		pe := x.ev.PathEval(s.Path)
		neg := x.negNNF(s.X)
		var counterexamples []rdfgraph.ID
		for _, b := range pe.Eval(v) {
			if !x.ev.Conforms(b, s.X) {
				counterexamples = append(counterexamples, b)
			}
		}
		x.addTrace(pe, v, counterexamples, phi, false, out)
		for _, b := range counterexamples {
			x.collect(b, neg, out, visited)
		}

	case *shape.Forall:
		// ⋃ { graph(paths(E,G,v,x)) ∪ B(x,G,ψ) | x ∈ ⟦E⟧G(v) }
		pe := x.ev.PathEval(s.Path)
		all := pe.Eval(v)
		x.addTrace(pe, v, all, phi, false, out)
		for _, b := range all {
			x.collect(b, s.X, out, visited)
		}

	case *shape.Eq:
		if s.Path == nil {
			// eq(id, p): {(v, p, v)}. Conformance requires (v, p, v) ∈ G,
			// so p is always interned; the lookup keeps extraction free of
			// dictionary writes (needed for concurrent workers).
			if pid := g.LookupTerm(rdf.NewIRI(s.P)); pid != rdfgraph.NoID {
				x.put(out, rdfgraph.IDTriple{S: v, P: pid, O: v}, v, phi, false)
			}
			return
		}
		// eq(E, p): ⋃ { graph(paths(E ∪ p, G, v, x)) | x ∈ ⟦E ∪ p⟧G(v) }
		union := paths.Alt{Left: s.Path, Right: paths.P(s.P)}
		pe := x.ev.PathEval(union)
		x.addTrace(pe, v, pe.Eval(v), phi, false, out)

	case *shape.Not:
		x.collectNegatedAtom(v, s.X, out, visited)

	default:
		panic("core: shape not in NNF: " + phi.String())
	}
}

// collectNegatedAtom handles Table 2's negated-atom rows. atom is the shape
// under the negation; the focus node is known to conform to ¬atom.
func (x *Extractor) collectNegatedAtom(v rdfgraph.ID, atom shape.Shape, out *rdfgraph.IDTripleSet, visited map[VisitKey]struct{}) {
	g := x.ev.G
	switch s := atom.(type) {
	case *shape.HasShape:
		// ¬hasShape(s) → B(v, G, nnf(¬def(s, H)))
		if x.rec != nil {
			prev := x.curName
			x.curName = s.Name
			x.collect(v, x.negNNF(x.ev.Def(s.Name)), out, visited)
			x.curName = prev
			return
		}
		x.collect(v, x.negNNF(x.ev.Def(s.Name)), out, visited)

	case *shape.Eq:
		// A predicate absent from the dictionary has no triples, so every
		// (v, p, x) emission below is vacuous; LookupTerm (not TermID)
		// keeps negated-atom extraction read-only on the graph.
		pid := g.LookupTerm(rdf.NewIRI(s.P))
		if s.Path == nil {
			if pid == rdfgraph.NoID {
				return // no p-triples: nothing to witness
			}
			// ¬eq(id, p): {(v, p, x) ∈ G | x ≠ v}
			for _, o := range x.ev.PropValues(v, s.P) {
				if o != v {
					x.put(out, rdfgraph.IDTriple{S: v, P: pid, O: o}, v, atom, true)
				}
			}
			return
		}
		// ¬eq(E, p): E-paths to x with (v,p,x) ∉ G, plus p-triples to x
		// outside ⟦E⟧G(v).
		pe := x.ev.PathEval(s.Path)
		eValues := pe.Eval(v)
		eSet := make(map[rdfgraph.ID]struct{}, len(eValues))
		for _, b := range eValues {
			eSet[b] = struct{}{}
		}
		pValues := x.ev.PropValues(v, s.P)
		pSet := make(map[rdfgraph.ID]struct{}, len(pValues))
		for _, o := range pValues {
			pSet[o] = struct{}{}
		}
		var witnesses []rdfgraph.ID
		for _, b := range eValues {
			if _, inP := pSet[b]; !inP {
				witnesses = append(witnesses, b)
			}
		}
		x.addTrace(pe, v, witnesses, atom, true, out)
		for _, o := range pValues {
			if _, inE := eSet[o]; !inE {
				x.put(out, rdfgraph.IDTriple{S: v, P: pid, O: o}, v, atom, true)
			}
		}

	case *shape.Disj:
		pid := g.LookupTerm(rdf.NewIRI(s.P))
		if pid == rdfgraph.NoID {
			return // ¬disj needs a shared p-value, so p occurs in G
		}
		if s.Path == nil {
			// ¬disj(id, p): {(v, p, v)}
			x.put(out, rdfgraph.IDTriple{S: v, P: pid, O: v}, v, atom, true)
			return
		}
		// ¬disj(E, p): E-paths to common values x, plus the (v, p, x) edges.
		pe := x.ev.PathEval(s.Path)
		pValues := x.ev.PropValues(v, s.P)
		pSet := make(map[rdfgraph.ID]struct{}, len(pValues))
		for _, o := range pValues {
			pSet[o] = struct{}{}
		}
		var common []rdfgraph.ID
		for _, b := range pe.Eval(v) {
			if _, ok := pSet[b]; ok {
				common = append(common, b)
			}
		}
		x.addTrace(pe, v, common, atom, true, out)
		for _, b := range common {
			x.put(out, rdfgraph.IDTriple{S: v, P: pid, O: b}, v, atom, true)
		}

	case *shape.LessThan:
		x.collectNegatedOrder(v, s.Path, s.P, rdf.Less, atom, out)

	case *shape.LessThanEq:
		x.collectNegatedOrder(v, s.Path, s.P, rdf.LessEq, atom, out)

	case *shape.MoreThan:
		// ¬moreThan: witness pairs (x, y) with ¬(y < x).
		x.collectNegatedOrder(v, s.Path, s.P, func(b, y rdf.Term) bool { return rdf.Less(y, b) }, atom, out)

	case *shape.MoreThanEq:
		x.collectNegatedOrder(v, s.Path, s.P, func(b, y rdf.Term) bool { return rdf.LessEq(y, b) }, atom, out)

	case *shape.UniqueLang:
		// ¬uniqueLang(E): E-paths to every x that clashes with some y ≠ x.
		pe := x.ev.PathEval(s.Path)
		values := pe.Eval(v)
		byLang := make(map[string][]rdfgraph.ID)
		for _, b := range values {
			t := x.ev.G.Term(b)
			if t.IsLiteral() && t.Lang != "" {
				byLang[t.Lang] = append(byLang[t.Lang], b)
			}
		}
		var clashing []rdfgraph.ID
		for _, group := range byLang {
			if len(group) > 1 {
				clashing = append(clashing, group...)
			}
		}
		x.addTrace(pe, v, clashing, atom, true, out)

	case *shape.Closed:
		// ¬closed(P): {(v, p, x) ∈ G | p ∉ P}
		g.PredicatesFrom(v, func(p, o rdfgraph.ID) {
			iri := g.Term(p).Value
			if !containsString(s.Allowed, iri) {
				x.put(out, rdfgraph.IDTriple{S: v, P: p, O: o}, v, atom, true)
			}
		})

	case *shape.True, *shape.False, *shape.Test, *shape.HasValue:
		// Negated node-level atoms involve no triples: empty neighborhood.
		return

	default:
		panic("core: negation not in NNF over " + atom.String())
	}
}

// collectNegatedOrder handles ¬lessThan (cmp = Less) and ¬lessThanEq
// (cmp = LessEq): E-paths to x plus p-edges (v,p,y) with ¬cmp(x, y).
// atom is the order shape under the negation, for attribution.
func (x *Extractor) collectNegatedOrder(v rdfgraph.ID, path paths.Expr, p string, cmp func(a, b rdf.Term) bool, atom shape.Shape, out *rdfgraph.IDTripleSet) {
	g := x.ev.G
	pid := g.LookupTerm(rdf.NewIRI(p))
	if pid == rdfgraph.NoID {
		return // no p-values means no order violation to witness
	}
	pe := x.ev.PathEval(path)
	pValues := x.ev.PropValues(v, p)
	var witnesses []rdfgraph.ID
	for _, b := range pe.Eval(v) {
		bt := g.Term(b)
		witness := false
		for _, y := range pValues {
			if !cmp(bt, g.Term(y)) {
				x.put(out, rdfgraph.IDTriple{S: v, P: pid, O: y}, v, atom, true)
				witness = true
			}
		}
		if witness {
			witnesses = append(witnesses, b)
		}
	}
	x.addTrace(pe, v, witnesses, atom, true, out)
}

func containsString(sorted []string, s string) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == s
}
