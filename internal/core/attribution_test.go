package core_test

import (
	"math/rand"
	"strings"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
	"shaclfrag/internal/turtle"
)

// annotatedSet indexes an explanation's output by decoded triple.
func annotatedSet(ex *core.Explanation) map[rdf.Triple]core.AnnotatedTriple {
	out := make(map[rdf.Triple]core.AnnotatedTriple)
	for _, at := range ex.Annotated() {
		out[at.Triple] = at
	}
	return out
}

// TestAttributionParityFragment pins the acceptance criterion: with a
// recorder attached the triples produced are exactly the unattributed
// fragment, and the explanation covers exactly those triples.
func TestAttributionParityFragment(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 80, Seed: 11})
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	requests := core.SchemaRequests(h)

	want := turtle.FormatNTriples(core.NewExtractor(g, h).Fragment(requests))

	ex := core.NewExtractor(g, h).ExplainFragment(requests)
	var explained []rdf.Triple
	for _, at := range ex.Annotated() {
		explained = append(explained, at.Triple)
		if len(at.Justifications) == 0 {
			t.Fatalf("explained triple %v has no justification", at.Triple)
		}
	}
	if got := turtle.FormatNTriples(explained); got != want {
		t.Fatalf("ExplainFragment triple set differs from Fragment (%d vs %d bytes)", len(got), len(want))
	}

	// The parallel path with a shared recorder agrees too, on the frozen
	// graph (the serving configuration).
	g.Freeze()
	for _, workers := range []int{1, 4} {
		rec := core.NewExplanation(g)
		got, err := core.NewExtractor(g, h).FragmentParallel(requests,
			core.ParallelOptions{Workers: workers, Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		if turtle.FormatNTriples(got) != want {
			t.Errorf("workers=%d: attributed FragmentParallel output differs from Fragment", workers)
		}
		if rec.Len() != strings.Count(want, "\n") {
			t.Errorf("workers=%d: explanation has %d triples, fragment %d",
				workers, rec.Len(), strings.Count(want, "\n"))
		}
	}

	// Recorder + cache: the cache is bypassed, output unchanged.
	rec := core.NewExplanation(g)
	cache := core.NewNeighborhoodCache(1 << 20)
	got, err := core.NewExtractor(g, h).FragmentParallel(requests,
		core.ParallelOptions{Workers: 2, Recorder: rec, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if turtle.FormatNTriples(got) != want {
		t.Error("recorder+cache: output differs from Fragment")
	}
	if st := cache.Stats(); st.Hits+st.Misses != 0 {
		t.Errorf("recorder must bypass the cache, saw %d hits %d misses", st.Hits, st.Misses)
	}
}

// TestAttributionSoundnessProperty is the Sufficiency-style property for
// attribution: for every conforming node, (1) the explained triple set is
// exactly B(v,G,φ), (2) every triple carries ≥ 1 justification, and (3)
// replaying only the justified triples yields a graph where v still
// conforms (Theorem 3.4 with G' = the justified set).
func TestAttributionSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	trials, conformed := 0, 0
	for trial := 0; trial < 300; trial++ {
		g := shapetest.RandomGraph(rng, 10)
		phi := shapetest.RandomShape(rng, 3)
		x := core.NewExtractor(g, nil)
		for _, v := range g.NodeIDs() {
			trials++
			vt := g.Term(v)
			if !x.Evaluator().Conforms(v, phi) {
				continue
			}
			conformed++
			b := x.Neighborhood(vt, phi)
			ex := x.Explain(vt, rdf.Term{}, phi)
			ann := annotatedSet(ex)
			if len(ann) != len(b) {
				t.Fatalf("explanation has %d triples, B(v,G,φ) has %d (φ = %s, v = %v)",
					len(ann), len(b), phi, vt)
			}
			justified := make([]rdf.Triple, 0, len(b))
			for _, tr := range b {
				at, ok := ann[tr]
				if !ok {
					t.Fatalf("neighborhood triple %v missing from explanation (φ = %s)", tr, phi)
				}
				if len(at.Justifications) == 0 {
					t.Fatalf("neighborhood triple %v has no justification (φ = %s)", tr, phi)
				}
				justified = append(justified, tr)
			}
			// Replay: only the justified triples — v must still conform.
			sub := rdfgraph.FromTriples(justified)
			if !shape.NewEvaluator(sub, nil).ConformsTerm(vt, phi) {
				t.Fatalf("replaying justified triples breaks conformance at %v for %s\nG:\n%s\njustified:\n%s",
					vt, phi, turtle.FormatGraph(g), turtle.FormatNTriples(justified))
			}
			// Every Kind is in the bounded label set.
			for _, at := range ann {
				for _, j := range at.Justifications {
					if !containsKind(j.Kind()) {
						t.Fatalf("Kind %q not in ConstraintKinds", j.Kind())
					}
				}
			}
		}
	}
	if conformed < 100 {
		t.Fatalf("only %d/%d conforming cases; generator too weak", conformed, trials)
	}
}

func containsKind(k string) bool {
	for _, c := range core.ConstraintKinds {
		if c == k {
			return true
		}
	}
	return false
}

// TestExplainNamedShape checks shape-name threading: justifications inside
// a hasShape recursion carry the referenced definition's name, and the
// top-level name parameter labels the outer constraint.
func TestExplainNamedShape(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:p ex:b .
ex:b ex:q ex:c .
`)
	inner := iri("Inner")
	defs := defsMap{inner: shape.Min(1, p("q"), shape.TrueShape())}
	phi := shape.Min(1, p("p"), shape.Ref(inner))
	x := core.NewExtractorWith(shape.NewEvaluator(g, defs))
	ex := x.Explain(iri("a"), iri("Outer"), phi)
	ann := annotatedSet(ex)
	if len(ann) != 2 {
		t.Fatalf("expected 2 explained triples, got %d", len(ann))
	}
	outer := ann[rdf.T(iri("a"), iri("p"), iri("b"))]
	if len(outer.Justifications) == 0 || outer.Justifications[0].Shape != iri("Outer") {
		t.Errorf("outer triple should be justified under Outer: %+v", outer.Justifications)
	}
	innerAt := ann[rdf.T(iri("b"), iri("q"), iri("c"))]
	if len(innerAt.Justifications) == 0 || innerAt.Justifications[0].Shape != inner {
		t.Errorf("inner triple should be justified under Inner: %+v", innerAt.Justifications)
	}
	// Rendered forms are deterministic and mention the shape and focus.
	if !strings.Contains(outer.Rendered[0], "Outer") || !strings.Contains(outer.Rendered[0], "focus") {
		t.Errorf("rendered justification: %q", outer.Rendered[0])
	}
	// Path-traced justifications carry a product-automaton step.
	if !outer.Justifications[0].HasStep {
		t.Error("min-count trace should carry a path step")
	}
	if !strings.Contains(outer.Rendered[0], "step q") {
		t.Errorf("rendered step missing: %q", outer.Rendered[0])
	}
}

// TestExplainDiff: the constraint accounting for the extra triples of one
// fragment over another is reported.
func TestExplainDiff(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:p ex:b .
ex:a ex:r ex:c .
`)
	x := core.NewExtractor(g, nil)
	wide := x.ExplainFragment([]shape.Shape{
		shape.Min(1, p("p"), shape.TrueShape()),
		shape.Min(1, p("r"), shape.TrueShape()),
	})
	narrow := x.ExplainFragment([]shape.Shape{
		shape.Min(1, p("p"), shape.TrueShape()),
	})
	diff := core.ExplainDiff(wide, narrow)
	if len(diff) != 1 {
		t.Fatalf("diff = %d triples, want 1", len(diff))
	}
	if diff[0].Triple != rdf.T(iri("a"), iri("r"), iri("c")) {
		t.Errorf("diff triple = %v", diff[0].Triple)
	}
	if k := diff[0].Justifications[0].Kind(); k != "minCount" {
		t.Errorf("diff justification kind = %q, want minCount", k)
	}
	// The symmetric diff is empty: narrow ⊆ wide.
	if back := core.ExplainDiff(narrow, wide); len(back) != 0 {
		t.Errorf("narrow-minus-wide should be empty, got %d", len(back))
	}
}

// TestExplainDeterministic: Annotated output (triples, justification order,
// rendered strings) is identical across independent extractions.
func TestExplainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := shapetest.RandomGraph(rng, 15)
	phi := shapetest.RandomShape(rng, 3)
	render := func() string {
		var b strings.Builder
		ex := core.NewExtractor(g, nil).Explain(g.Term(g.NodeIDs()[0]), rdf.Term{}, phi)
		for _, at := range ex.Annotated() {
			b.WriteString(at.Triple.String())
			for _, r := range at.Rendered {
				b.WriteString("  # " + r)
			}
			b.WriteString("\n")
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("explanation output nondeterministic:\n%s\nvs\n%s", first, got)
		}
	}
}

// TestWhyNotAttribution: explaining ¬φ at a non-conforming node exercises
// the negated-atom rows and marks the justifications negated.
func TestWhyNotAttribution(t *testing.T) {
	g := mustGraph(t, `ex:v ex:p ex:a ; ex:q ex:b .`)
	phi := shape.ClosedShape(base + "p")
	x := core.NewExtractor(g, nil)
	ex := x.Explain(iri("v"), rdf.Term{}, shape.Neg(phi))
	ann := annotatedSet(ex)
	at, ok := ann[rdf.T(iri("v"), iri("q"), iri("b"))]
	if !ok {
		t.Fatalf("why-not triple missing; explanation has %d triples", len(ann))
	}
	j := at.Justifications[0]
	if !j.Negated || j.Kind() != "not_closed" {
		t.Errorf("justification = %+v, kind %q; want negated not_closed", j, j.Kind())
	}
	if !strings.Contains(at.Rendered[0], "¬") {
		t.Errorf("rendered negation missing: %q", at.Rendered[0])
	}
}
