package core_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// TestNeighborhoodCacheEvictionChurnRace hammers a tiny cache with
// concurrent Get/Put/Stats so nearly every Put evicts, and checks the
// accounting invariants hold at every observed snapshot: occupancy is never
// negative, never exceeds the budget, and the cumulative eviction counters
// are monotone. Run under -race this also proves the mutex covers every
// counter update.
func TestNeighborhoodCacheEvictionChurnRace(t *testing.T) {
	const budget = 64
	c := core.NewNeighborhoodCache(budget)
	shapes := []shape.Shape{
		shape.TrueShape(), shape.FalseShape(),
		shape.ClosedShape("http://x/p"), shape.UniqueLangShape(nil),
	}
	// Neighborhood sizes from 0 (cost 1) up to half the budget, so
	// insertions displace several entries at once.
	sized := func(i int) []rdfgraph.IDTriple {
		n := i % (budget / 2)
		ts := make([]rdfgraph.IDTriple, n)
		for k := range ts {
			ts[k] = rdfgraph.IDTriple{S: rdfgraph.ID(i), P: rdfgraph.ID(k)}
		}
		return ts
	}

	var stop atomic.Bool
	var mutators, observers sync.WaitGroup
	for w := 0; w < 6; w++ {
		mutators.Add(1)
		go func(w int) {
			defer mutators.Done()
			for i := 0; i < 3000; i++ {
				v := rdfgraph.ID((i * 7) % 97)
				phi := shapes[(i+w)%len(shapes)]
				if ts, ok := c.Get(0, v, phi); ok {
					// Cached slices are immutable; length is whatever the
					// winning Put stored for this (v, φ) — just touch it.
					_ = len(ts)
				} else {
					c.Put(0, v, phi, sized(i))
				}
			}
		}(w)
	}
	// Observers: Stats must present a consistent snapshot at any
	// interleaving point while the mutators churn.
	for o := 0; o < 2; o++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			var lastEvictions, lastEvicted uint64
			for !stop.Load() {
				st := c.Stats()
				if st.Triples < 0 || st.Bytes < 0 {
					t.Errorf("occupancy went negative: %+v", st)
					return
				}
				if st.Triples > budget {
					t.Errorf("occupancy exceeds budget: %+v", st)
					return
				}
				if st.Entries < 0 {
					t.Errorf("negative entry count: %+v", st)
					return
				}
				if st.Evictions < lastEvictions || st.EvictedTriples < lastEvicted {
					t.Errorf("eviction counters regressed: %+v", st)
					return
				}
				lastEvictions, lastEvicted = st.Evictions, st.EvictedTriples
			}
		}()
	}
	mutators.Wait()
	stop.Store(true)
	observers.Wait()

	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("churn produced no evictions; the test budget is too large")
	}
	if st.Triples > budget || st.Triples < 0 {
		t.Errorf("final occupancy out of bounds: %+v", st)
	}
}
