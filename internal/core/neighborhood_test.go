package core_test

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
	"shaclfrag/internal/turtle"
)

const base = "http://x/"

func iri(s string) rdf.Term { return rdf.NewIRI(base + s) }

func p(name string) paths.Expr { return paths.P(base + name) }

func mustGraph(t *testing.T, src string) *rdfgraph.Graph {
	t.Helper()
	g, err := turtle.Parse("@prefix ex: <" + base + "> .\n" + src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func triplesEqual(got []rdf.Triple, want []rdf.Triple) bool {
	if len(got) != len(want) {
		return false
	}
	set := make(map[rdf.Triple]struct{}, len(got))
	for _, t := range got {
		set[t] = struct{}{}
	}
	for _, t := range want {
		if _, ok := set[t]; !ok {
			return false
		}
	}
	return true
}

func TestNeighborhoodNonConformingIsEmpty(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	phi := shape.Min(2, p("p"), shape.TrueShape())
	if n := core.Neighborhood(g, nil, iri("a"), phi); len(n) != 0 {
		t.Errorf("non-conforming node must have empty neighborhood, got %v", n)
	}
}

func TestNeighborhoodAtomsAreEmpty(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:a ex:q "x"@en .`)
	for _, phi := range []shape.Shape{
		shape.TrueShape(),
		shape.Value(iri("a")),
		shape.NodeTestShape(shape.IsIRI{}),
		shape.ClosedShape(base+"p", base+"q"),
		shape.DisjPath(p("p"), base+"q"),
		shape.UniqueLangShape(p("q")),
		shape.Less(p("nothing"), base+"alsonothing"),
	} {
		if n := core.Neighborhood(g, nil, iri("a"), phi); len(n) != 0 {
			t.Errorf("B(a, %s) = %v, want empty", phi, n)
		}
	}
}

func TestNeighborhoodWorkshopShape(t *testing.T) {
	// Example 1.2: neighborhood of the WorkshopShape = the author triples
	// leading to students, plus the student-typing triples.
	g := mustGraph(t, `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:p1 ex:author ex:anne , ex:bob .
ex:anne rdf:type ex:Professor .
ex:bob rdf:type ex:Student .
ex:other ex:author ex:bob .
`)
	phi := shape.Min(1, p("author"),
		shape.Min(1, paths.P(rdf.RDFType), shape.Value(iri("Student"))))
	got := core.Neighborhood(g, nil, iri("p1"), phi)
	typ := rdf.NewIRI(rdf.RDFType)
	want := []rdf.Triple{
		rdf.T(iri("p1"), iri("author"), iri("bob")),
		rdf.T(iri("bob"), typ, iri("Student")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(p1, WorkshopShape) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodHappyAtWork(t *testing.T) {
	// Example 3.3: ¬disj(friend, colleague) collects all pairs of
	// friend/colleague triples sharing a target.
	g := mustGraph(t, `
ex:v ex:friend ex:x , ex:y , ex:z .
ex:v ex:colleague ex:x , ex:y , ex:w .
`)
	phi := shape.Neg(shape.DisjPath(p("friend"), base+"colleague"))
	got := core.Neighborhood(g, nil, iri("v"), phi)
	want := []rdf.Triple{
		rdf.T(iri("v"), iri("friend"), iri("x")),
		rdf.T(iri("v"), iri("colleague"), iri("x")),
		rdf.T(iri("v"), iri("friend"), iri("y")),
		rdf.T(iri("v"), iri("colleague"), iri("y")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, ¬disj) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodExample35(t *testing.T) {
	// Example 3.5, verbatim from the paper.
	g := mustGraph(t, `
ex:p1 ex:type ex:paper .
ex:p1 ex:auth ex:Anne , ex:Bob .
ex:Anne ex:type ex:prof .
ex:Bob ex:type ex:student .
`)
	tau := shape.Min(1, p("type"), shape.Value(iri("paper")))
	phi1 := shape.Min(1, p("auth"), shape.TrueShape())
	// φ2 = ≤1 auth.≤0 type.hasValue(student) (already in NNF).
	phi2 := shape.Max(1, p("auth"), shape.Max(0, p("type"), shape.Value(iri("student"))))

	got1 := core.Neighborhood(g, nil, iri("p1"), shape.AndOf(phi1, tau))
	want1 := []rdf.Triple{
		rdf.T(iri("p1"), iri("type"), iri("paper")),
		rdf.T(iri("p1"), iri("auth"), iri("Anne")),
		rdf.T(iri("p1"), iri("auth"), iri("Bob")),
	}
	if !triplesEqual(got1, want1) {
		t.Errorf("B(p1, φ1∧τ) = %v\nwant %v", got1, want1)
	}

	got2 := core.Neighborhood(g, nil, iri("p1"), shape.AndOf(phi2, tau))
	want2 := []rdf.Triple{
		rdf.T(iri("p1"), iri("type"), iri("paper")),
		rdf.T(iri("p1"), iri("auth"), iri("Bob")),
		rdf.T(iri("Bob"), iri("type"), iri("student")),
	}
	if !triplesEqual(got2, want2) {
		t.Errorf("B(p1, φ2∧τ) = %v\nwant %v", got2, want2)
	}
}

func TestNeighborhoodEq(t *testing.T) {
	g := mustGraph(t, `
ex:v ex:p ex:x . ex:v ex:q ex:x .
ex:v ex:p ex:y . ex:v ex:q ex:y .
ex:other ex:p ex:z .
`)
	got := core.Neighborhood(g, nil, iri("v"), shape.EqPath(p("p"), base+"q"))
	want := []rdf.Triple{
		rdf.T(iri("v"), iri("p"), iri("x")),
		rdf.T(iri("v"), iri("q"), iri("x")),
		rdf.T(iri("v"), iri("p"), iri("y")),
		rdf.T(iri("v"), iri("q"), iri("y")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, eq(p,q)) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodEqID(t *testing.T) {
	g := mustGraph(t, `ex:v ex:p ex:v .`)
	got := core.Neighborhood(g, nil, iri("v"), shape.EqID(base+"p"))
	want := []rdf.Triple{rdf.T(iri("v"), iri("p"), iri("v"))}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, eq(id,p)) = %v, want %v", got, want)
	}
}

func TestNeighborhoodNegEq(t *testing.T) {
	// ¬eq(E,p): E-paths ending outside p(v), plus p-edges outside E(v).
	g := mustGraph(t, `
ex:v ex:p ex:both . ex:v ex:q ex:both .
ex:v ex:p ex:onlyP .
ex:v ex:q ex:onlyQ .
`)
	got := core.Neighborhood(g, nil, iri("v"), shape.Neg(shape.EqPath(p("p"), base+"q")))
	want := []rdf.Triple{
		rdf.T(iri("v"), iri("p"), iri("onlyP")),
		rdf.T(iri("v"), iri("q"), iri("onlyQ")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, ¬eq(p,q)) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodNegEqID(t *testing.T) {
	g := mustGraph(t, `ex:v ex:p ex:v , ex:x , ex:y .`)
	got := core.Neighborhood(g, nil, iri("v"), shape.Neg(shape.EqID(base+"p")))
	want := []rdf.Triple{
		rdf.T(iri("v"), iri("p"), iri("x")),
		rdf.T(iri("v"), iri("p"), iri("y")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, ¬eq(id,p)) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodNegDisjID(t *testing.T) {
	g := mustGraph(t, `ex:v ex:p ex:v , ex:x .`)
	got := core.Neighborhood(g, nil, iri("v"), shape.Neg(shape.DisjID(base+"p")))
	want := []rdf.Triple{rdf.T(iri("v"), iri("p"), iri("v"))}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, ¬disj(id,p)) = %v, want %v", got, want)
	}
}

func TestNeighborhoodNegClosed(t *testing.T) {
	g := mustGraph(t, `ex:v ex:p ex:a ; ex:q ex:b ; ex:r ex:c .`)
	got := core.Neighborhood(g, nil, iri("v"), shape.Neg(shape.ClosedShape(base+"p")))
	want := []rdf.Triple{
		rdf.T(iri("v"), iri("q"), iri("b")),
		rdf.T(iri("v"), iri("r"), iri("c")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, ¬closed({p})) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodNegLessThan(t *testing.T) {
	g := mustGraph(t, `
ex:v ex:low 1 , 9 .
ex:v ex:high 5 .
`)
	got := core.Neighborhood(g, nil, iri("v"), shape.Neg(shape.Less(p("low"), base+"high")))
	// Witness pair: low=9, high=5 (9 ≮ 5). The low=1 edge is not evidence.
	want := []rdf.Triple{
		rdf.T(iri("v"), iri("low"), rdf.NewTypedLiteral("9", rdf.XSDInteger)),
		rdf.T(iri("v"), iri("high"), rdf.NewTypedLiteral("5", rdf.XSDInteger)),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, ¬lessThan) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodNegLessThanEqOnEquality(t *testing.T) {
	// ¬lessThanEq is *not* witnessed by equal values; ¬lessThan is.
	g := mustGraph(t, `ex:v ex:low 5 . ex:v ex:high 5 .`)
	ltWitness := core.Neighborhood(g, nil, iri("v"), shape.Neg(shape.Less(p("low"), base+"high")))
	if len(ltWitness) != 2 {
		t.Errorf("¬lessThan on equal values should have a 2-triple witness, got %v", ltWitness)
	}
	lteWitness := core.Neighborhood(g, nil, iri("v"), shape.Neg(shape.LessEq(p("low"), base+"high")))
	if len(lteWitness) != 0 {
		t.Errorf("¬lessThanEq must not conform on equal values, got %v", lteWitness)
	}
}

func TestNeighborhoodNegUniqueLang(t *testing.T) {
	g := mustGraph(t, `
ex:v ex:label "a"@en , "b"@en , "c"@nl .
`)
	got := core.Neighborhood(g, nil, iri("v"), shape.Neg(shape.UniqueLangShape(p("label"))))
	want := []rdf.Triple{
		rdf.T(iri("v"), iri("label"), rdf.NewLangString("a", "en")),
		rdf.T(iri("v"), iri("label"), rdf.NewLangString("b", "en")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, ¬uniqueLang) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodForall(t *testing.T) {
	g := mustGraph(t, `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:v ex:friend ex:x , ex:y .
ex:x ex:likes ex:pingpong .
ex:y ex:likes ex:pingpong .
`)
	phi := shape.All(p("friend"), shape.Min(1, p("likes"), shape.Value(iri("pingpong"))))
	got := core.Neighborhood(g, nil, iri("v"), phi)
	want := []rdf.Triple{
		rdf.T(iri("v"), iri("friend"), iri("x")),
		rdf.T(iri("v"), iri("friend"), iri("y")),
		rdf.T(iri("x"), iri("likes"), iri("pingpong")),
		rdf.T(iri("y"), iri("likes"), iri("pingpong")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, ∀friend.…) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodMaxCount(t *testing.T) {
	// ≤n traces the counterexamples of ψ with their ¬ψ-neighborhoods.
	g := mustGraph(t, `
ex:v ex:auth ex:anne , ex:bob .
ex:anne ex:type ex:prof .
ex:bob ex:type ex:student .
`)
	phi := shape.Max(1, p("auth"), shape.Max(0, p("type"), shape.Value(iri("student"))))
	got := core.Neighborhood(g, nil, iri("v"), phi)
	want := []rdf.Triple{
		rdf.T(iri("v"), iri("auth"), iri("bob")),
		rdf.T(iri("bob"), iri("type"), iri("student")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B(v, ≤1 auth.…) = %v\nwant %v", got, want)
	}
}

func TestNeighborhoodHasShape(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	h := defsMap{iri("S"): shape.Min(1, p("p"), shape.TrueShape())}
	got := core.Neighborhood(g, h, iri("a"), shape.Ref(iri("S")))
	want := []rdf.Triple{rdf.T(iri("a"), iri("p"), iri("b"))}
	if !triplesEqual(got, want) {
		t.Errorf("B through hasShape = %v, want %v", got, want)
	}
	// Negated reference resolves through NNF of the negated definition.
	got = core.Neighborhood(g, h, iri("b"), shape.Neg(shape.Ref(iri("S"))))
	if len(got) != 0 {
		t.Errorf("B(b, ¬hasShape(S)) = %v, want empty (≤0 p.⊤ has no witnesses)", got)
	}
}

type defsMap map[rdf.Term]shape.Shape

func (d defsMap) Def(name rdf.Term) (shape.Shape, bool) {
	s, ok := d[name]
	return s, ok
}

func TestNeighborhoodStarPath(t *testing.T) {
	// Path expression with a star: the whole reachable chain is traced.
	g := mustGraph(t, `
ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:type ex:Goal .
ex:a ex:p ex:dead .
`)
	phi := shape.Min(1, paths.Star{X: p("p")}, shape.Min(1, p("type"), shape.Value(iri("Goal"))))
	got := core.Neighborhood(g, nil, iri("a"), phi)
	want := []rdf.Triple{
		rdf.T(iri("a"), iri("p"), iri("b")),
		rdf.T(iri("b"), iri("p"), iri("c")),
		rdf.T(iri("c"), iri("type"), iri("Goal")),
	}
	if !triplesEqual(got, want) {
		t.Errorf("B with star path = %v\nwant %v", got, want)
	}
}

func TestWhyNot(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:bad ex:yes .`)
	// φ: all p-successors have no 'bad' property. a fails because of b.
	phi := shape.All(p("p"), shape.Max(0, p("bad"), shape.TrueShape()))
	x := core.NewExtractor(g, nil)
	if got := x.Neighborhood(iri("a"), phi); len(got) != 0 {
		t.Fatalf("a must not conform, got neighborhood %v", got)
	}
	why := x.WhyNot(iri("a"), phi)
	want := []rdf.Triple{
		rdf.T(iri("a"), iri("p"), iri("b")),
		rdf.T(iri("b"), iri("bad"), iri("yes")),
	}
	if !triplesEqual(why, want) {
		t.Errorf("WhyNot = %v\nwant %v", why, want)
	}
}

// Property test for Theorem 3.4 (Sufficiency): whenever G,v ⊨ φ, then for
// every G' with B(v,G,φ) ⊆ G' ⊆ G we have G',v ⊨ φ. We check G' = B itself
// plus random supergraphs of B inside G.
func TestSufficiencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials, conformed := 0, 0
	for trial := 0; trial < 400; trial++ {
		g := shapetest.RandomGraph(rng, 10)
		phi := shapetest.RandomShape(rng, 3)
		x := core.NewExtractor(g, nil)
		for _, v := range g.NodeIDs() {
			trials++
			vt := g.Term(v)
			if !x.Evaluator().Conforms(v, phi) {
				if n := x.Neighborhood(vt, phi); len(n) != 0 {
					t.Fatalf("non-conforming node %v has non-empty neighborhood for %s", vt, phi)
				}
				continue
			}
			conformed++
			b := x.Neighborhood(vt, phi)
			for _, tr := range b {
				if !g.Has(tr) {
					t.Fatalf("neighborhood not a subgraph: %v ∉ G (φ = %s)", tr, phi)
				}
			}
			// G' = B.
			checkConforms(t, b, nil, vt, phi, g)
			// Random G' with B ⊆ G' ⊆ G.
			gPrime := append([]rdf.Triple(nil), b...)
			for _, tr := range g.Triples() {
				if rng.Intn(2) == 0 {
					gPrime = append(gPrime, tr)
				}
			}
			checkConforms(t, gPrime, nil, vt, phi, g)
		}
	}
	if conformed < 100 {
		t.Fatalf("only %d/%d conforming cases; generator too weak", conformed, trials)
	}
}

func checkConforms(t *testing.T, triples []rdf.Triple, defs shape.Defs, v rdf.Term, phi shape.Shape, orig *rdfgraph.Graph) {
	t.Helper()
	sub := rdfgraph.FromTriples(triples)
	ev := shape.NewEvaluator(sub, defs)
	if !ev.ConformsTerm(v, phi) {
		t.Fatalf("Sufficiency violated for φ = %s at %v\nG:\n%s\nG':\n%s",
			phi, v, turtle.FormatGraph(orig), turtle.FormatNTriples(triples))
	}
}

// Property test for Corollary 4.2: G,v ⊨ φ implies Frag(G,S),v ⊨ φ for φ∈S.
func TestFragmentSufficiencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		g := shapetest.RandomGraph(rng, 12)
		requests := []shape.Shape{
			shapetest.RandomShape(rng, 2),
			shapetest.RandomShape(rng, 3),
		}
		x := core.NewExtractor(g, nil)
		fragTriples := x.Fragment(requests)
		frag := rdfgraph.FromTriples(fragTriples)
		for _, tr := range fragTriples {
			if !g.Has(tr) {
				t.Fatalf("fragment not a subgraph: %v", tr)
			}
		}
		fev := shape.NewEvaluator(frag, nil)
		for _, phi := range requests {
			for _, v := range g.NodeIDs() {
				if x.Evaluator().Conforms(v, phi) {
					if !fev.ConformsTerm(g.Term(v), phi) {
						t.Fatalf("Corollary 4.2 violated at %v for %s\nG:\n%s\nFrag:\n%s",
							g.Term(v), phi, turtle.FormatGraph(g), turtle.FormatNTriples(fragTriples))
					}
				}
			}
		}
	}
}

func TestExample43ConverseFails(t *testing.T) {
	// φ = ≤0 p.⊤ on G = {(a,p,b)}: the fragment is empty, a conforms in
	// the fragment but not in G.
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	phi := shape.Max(0, p("p"), shape.TrueShape())
	x := core.NewExtractor(g, nil)
	frag := x.Fragment([]shape.Shape{phi})
	if len(frag) != 0 {
		t.Fatalf("Frag = %v, want empty", frag)
	}
	if x.Evaluator().ConformsTerm(iri("a"), phi) {
		t.Fatal("a must not conform in G")
	}
	emptyEv := shape.NewEvaluator(rdfgraph.New(), nil)
	if !emptyEv.ConformsTerm(iri("a"), phi) {
		t.Fatal("a conforms trivially in the empty fragment")
	}
}

func TestNeighborhoodDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := shapetest.RandomGraph(rng, 20)
	phi := shapetest.RandomShape(rng, 3)
	x1 := core.NewExtractor(g, nil)
	x2 := core.NewExtractor(g.Clone(), nil)
	for _, v := range g.NodeIDs() {
		vt := g.Term(v)
		a := x1.Neighborhood(vt, phi)
		b := x2.Neighborhood(vt, phi)
		if !triplesEqual(a, b) {
			t.Fatalf("nondeterministic neighborhood at %v for %s:\n%v\nvs\n%v", vt, phi, a, b)
		}
	}
}
