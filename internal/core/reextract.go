package core

import (
	"shaclfrag/internal/plan"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// NodeNeighborhoods computes isolated per-node neighborhoods B(v, G, φ)
// for exactly the given focus nodes — the targeted re-extraction entry
// point incremental fragment maintenance runs after an update, passing
// only the delta-affected worklist (store.ApplyResult.AffectedNodes)
// instead of all of N(G).
//
// The contract matches FragmentParallel's cached mode: request must be the
// pointer-stable cache key, a non-nil cache is consulted per node and
// filled on miss (write-through, so maintenance re-warms the serving cache
// for exactly the nodes an update touched), and a non-nil bound program b
// takes over extraction with byte-identical results (the plan parity
// suites gate this). The returned slices are aligned with nodes; they are
// shared with the cache and must not be modified.
func (x *Extractor) NodeNeighborhoods(request shape.Shape, b *plan.Bound, nodes []rdfgraph.ID, cache *NeighborhoodCache, epoch uint64) [][]rdfgraph.IDTriple {
	out := make([][]rdfgraph.IDTriple, len(nodes))
	nnf := x.nnf(request)
	for i, v := range nodes {
		if cache != nil && x.rec == nil {
			if ts, ok := cache.Get(epoch, v, request); ok {
				out[i] = ts
				continue
			}
		}
		per := rdfgraph.NewIDTripleSet()
		if b != nil {
			b.ResetVisited()
			b.CollectInto(v, per)
		} else {
			x.collect(v, nnf, per, make(map[VisitKey]struct{}))
		}
		ts := per.IDTriples()
		if cache != nil && x.rec == nil {
			cache.Put(epoch, v, request, ts)
		}
		out[i] = ts
	}
	return out
}
