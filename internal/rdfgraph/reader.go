package rdfgraph

import "shaclfrag/internal/rdf"

// Reader is the read-only surface of a dictionary-encoded graph: everything
// shape evaluation, path evaluation, neighborhood extraction and serving
// need, and nothing that mutates triples. *Graph implements it natively;
// internal/store's sharded backend implements it over a set of
// subject-partitioned shard graphs sharing one dictionary, which is what
// lets every layer above the storage tier — evaluators, extractors, the
// TPF engine, the SPARQL engine, the HTTP server — run unchanged against
// either backend.
//
// The mutating exceptions are deliberate: TermID interns into the
// dictionary (shape constants need IDs comparable against graph nodes) and
// follows the dictionary's freeze discipline — on a frozen reader it is a
// pure lookup for known terms and panics for unseen ones, exactly like
// Dict.Intern. All other methods never write.
//
// A frozen Reader (Frozen() == true) is safe for any number of concurrent
// readers; that is the contract the serving stack fans out on.
type Reader interface {
	// Dict exposes the term dictionary all IDs resolve against.
	Dict() *Dict
	// Len returns the number of triples.
	Len() int
	// Frozen reports whether the graph is immutable.
	Frozen() bool
	// Term resolves an ID via the dictionary.
	Term(id ID) rdf.Term
	// TermID interns a term, subject to the freeze discipline above.
	TermID(t rdf.Term) ID
	// LookupTerm returns the ID of t if interned, else NoID.
	LookupTerm(t rdf.Term) ID
	// Has reports whether the triple is present.
	Has(t rdf.Triple) bool
	// HasIDs reports whether the dictionary-encoded triple is present.
	HasIDs(s, p, o ID) bool
	// Objects calls fn for every o with (s, p, o) ∈ G.
	Objects(s, p ID, fn func(o ID))
	// Subjects calls fn for every s with (s, p, o) ∈ G.
	Subjects(p, o ID, fn func(s ID))
	// PredicatesFrom calls fn for every (p, o) with (s, p, o) ∈ G.
	PredicatesFrom(s ID, fn func(p, o ID))
	// PredicatesTo calls fn for every (s, p) with (s, p, o) ∈ G.
	PredicatesTo(o ID, fn func(s, p ID))
	// EdgesByPredicate returns the (s, o) edge list of predicate p. The
	// returned slice must not be modified.
	EdgesByPredicate(p ID) []Edge
	// Predicates calls fn for every distinct predicate.
	Predicates(fn func(p ID))
	// EachTriple calls fn for every triple (unspecified order).
	EachTriple(fn func(s, p, o ID))
	// Nodes calls fn once per node of N(G).
	Nodes(fn func(n ID))
	// NodeIDs returns N(G) as a sorted slice.
	NodeIDs() []ID
	// IsNode reports whether id occurs as a subject or object.
	IsNode(id ID) bool
	// Triples returns all triples in canonical order.
	Triples() []rdf.Triple
}

var _ Reader = (*Graph)(nil)
