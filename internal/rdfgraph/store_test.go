package rdfgraph

import (
	"fmt"
	"sync"
	"testing"

	"shaclfrag/internal/rdf"
)

func tr(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}

func storeFrom(t *testing.T, triples ...rdf.Triple) *Store {
	t.Helper()
	return NewStore(FromTriples(triples))
}

func TestStoreApplyAddDelete(t *testing.T) {
	st := storeFrom(t, tr("a", "p", "b"), tr("c", "p", "d"))
	s1 := st.Current()
	if s1.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", s1.Epoch())
	}

	res := st.Apply(Delta{
		Add: []rdf.Triple{tr("a", "p", "e")},
		Del: []rdf.Triple{tr("c", "p", "d")},
	})
	if !res.Changed || res.Added != 1 || res.Deleted != 1 {
		t.Fatalf("ApplyResult = %+v, want changed with 1 add / 1 delete", res)
	}
	s2 := res.Snapshot
	if s2.Epoch() != 2 {
		t.Fatalf("new epoch = %d, want 2", s2.Epoch())
	}
	if got := st.Current(); got != s2 {
		t.Fatalf("Current() did not advance to the new snapshot")
	}

	// The old snapshot is untouched.
	if !s1.Graph().Has(tr("c", "p", "d")) || s1.Graph().Has(tr("a", "p", "e")) {
		t.Fatalf("old snapshot mutated by Apply")
	}
	if s1.Graph().Len() != 2 {
		t.Fatalf("old snapshot len = %d, want 2", s1.Graph().Len())
	}
	// The new one has the delta.
	if s2.Graph().Has(tr("c", "p", "d")) || !s2.Graph().Has(tr("a", "p", "e")) {
		t.Fatalf("new snapshot missing the delta")
	}
	if s2.Graph().Len() != 2 {
		t.Fatalf("new snapshot len = %d, want 2", s2.Graph().Len())
	}
}

func TestStoreIDsStableAcrossEpochs(t *testing.T) {
	st := storeFrom(t, tr("a", "p", "b"))
	s1 := st.Current()
	idA := s1.Graph().LookupTerm(iri("a"))
	res := st.Apply(Delta{Add: []rdf.Triple{tr("x", "q", "y")}})
	s2 := res.Snapshot
	if got := s2.Graph().LookupTerm(iri("a")); got != idA {
		t.Fatalf("ID of a changed across epochs: %d -> %d", idA, got)
	}
	if s2.Graph().Term(idA) != iri("a") {
		t.Fatalf("Term(%d) = %v in new epoch, want a", idA, s2.Graph().Term(idA))
	}
	// New terms resolve in the new epoch only.
	idX := s2.Graph().LookupTerm(iri("x"))
	if idX == NoID {
		t.Fatalf("x not interned in new epoch")
	}
	if got := s1.Graph().LookupTerm(iri("x")); got != NoID {
		t.Fatalf("old epoch resolves new term x to %d, want NoID", got)
	}
}

func TestStoreNoOpDelta(t *testing.T) {
	st := storeFrom(t, tr("a", "p", "b"))
	s1 := st.Current()
	res := st.Apply(Delta{
		Add: []rdf.Triple{tr("a", "p", "b")},          // duplicate
		Del: []rdf.Triple{tr("nope", "nope", "nope")}, // absent
	})
	if res.Changed || res.Added != 0 || res.Deleted != 0 {
		t.Fatalf("no-op delta changed the store: %+v", res)
	}
	if res.Snapshot != s1 || st.Current() != s1 {
		t.Fatalf("no-op delta republished a snapshot")
	}
	if !res.Unaffected(s1.Graph().LookupTerm(iri("a"))) {
		t.Fatalf("no-op delta marked a node affected")
	}
}

func TestStoreDeleteThenAddSameTriple(t *testing.T) {
	st := storeFrom(t, tr("a", "p", "b"))
	res := st.Apply(Delta{
		Del: []rdf.Triple{tr("a", "p", "b")},
		Add: []rdf.Triple{tr("a", "p", "b")},
	})
	// Deletions run first, so the triple survives.
	if !res.Snapshot.Graph().Has(tr("a", "p", "b")) {
		t.Fatalf("triple in both Add and Del must end up present")
	}
	if res.Added != 1 || res.Deleted != 1 {
		t.Fatalf("counts = %+v, want 1/1", res)
	}
}

func TestStoreUnaffectedComponents(t *testing.T) {
	// Two components: {a,b} via p, {c,d} via p. The delta touches only
	// the first.
	st := storeFrom(t, tr("a", "p", "b"), tr("c", "p", "d"))
	g1 := st.Current().Graph()
	idA := g1.LookupTerm(iri("a"))
	idB := g1.LookupTerm(iri("b"))
	idC := g1.LookupTerm(iri("c"))
	idD := g1.LookupTerm(iri("d"))

	res := st.Apply(Delta{Add: []rdf.Triple{tr("a", "p", "e")}})
	for _, tc := range []struct {
		name string
		id   ID
		want bool
	}{
		{"a touched", idA, false},
		{"b same component", idB, false},
		{"c other component", idC, true},
		{"d other component", idD, true},
	} {
		if got := res.Unaffected(tc.id); got != tc.want {
			t.Errorf("Unaffected(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestStoreUnaffectedBridgingAdd(t *testing.T) {
	// The added edge bridges the two components: both become affected.
	st := storeFrom(t, tr("a", "p", "b"), tr("c", "p", "d"))
	g1 := st.Current().Graph()
	idA := g1.LookupTerm(iri("a"))
	idD := g1.LookupTerm(iri("d"))
	res := st.Apply(Delta{Add: []rdf.Triple{tr("b", "q", "c")}})
	if res.Unaffected(idA) {
		t.Fatalf("a is connected to the new edge via b; must be affected")
	}
	if res.Unaffected(idD) {
		t.Fatalf("d is connected to the new edge via c; must be affected")
	}
}

func TestStoreUnaffectedDeleteKeepsOldComponent(t *testing.T) {
	// Deleting the only edge of {a,b} must mark both affected, even
	// though in the *new* graph they are isolated.
	st := storeFrom(t, tr("a", "p", "b"), tr("c", "p", "d"))
	g1 := st.Current().Graph()
	idA := g1.LookupTerm(iri("a"))
	idB := g1.LookupTerm(iri("b"))
	idC := g1.LookupTerm(iri("c"))
	res := st.Apply(Delta{Del: []rdf.Triple{tr("a", "p", "b")}})
	if res.Unaffected(idA) || res.Unaffected(idB) {
		t.Fatalf("endpoints of a deleted triple must be affected")
	}
	if !res.Unaffected(idC) {
		t.Fatalf("untouched component must stay unaffected")
	}
}

func TestStoreCOWSharesUntouchedSubmaps(t *testing.T) {
	// Mutating epoch 2 must leave epoch 1's indexes byte-identical; we
	// check observable equivalence: every accessor of the old snapshot
	// returns the pre-update answer after a long chain of updates.
	st := storeFrom(t, tr("a", "p", "b"), tr("c", "p", "d"), tr("c", "q", "a"))
	s1 := st.Current()
	want := s1.Graph().Triples()

	for i := 0; i < 10; i++ {
		st.Apply(Delta{
			Add: []rdf.Triple{tr(fmt.Sprintf("n%d", i), "p", "b")},
			Del: []rdf.Triple{tr(fmt.Sprintf("n%d", i-1), "p", "b")},
		})
	}
	got := s1.Graph().Triples()
	if len(got) != len(want) {
		t.Fatalf("old snapshot changed: %d triples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("old snapshot triple %d changed: %v != %v", i, got[i], want[i])
		}
	}
	// Deep chains flatten the dictionary; lookups must still agree.
	if st.Current().Epoch() != 11 {
		t.Fatalf("epoch = %d, want 11", st.Current().Epoch())
	}
	if id := st.Current().Graph().LookupTerm(iri("a")); id != s1.Graph().LookupTerm(iri("a")) {
		t.Fatalf("dictionary flatten changed an ID")
	}
}

func TestStoreRemoveCleansIndexes(t *testing.T) {
	st := storeFrom(t, tr("a", "p", "b"))
	res := st.Apply(Delta{Del: []rdf.Triple{tr("a", "p", "b")}})
	g := res.Snapshot.Graph()
	if g.Len() != 0 {
		t.Fatalf("len = %d, want 0", g.Len())
	}
	idA := g.LookupTerm(iri("a"))
	idB := g.LookupTerm(iri("b"))
	if g.IsNode(idA) || g.IsNode(idB) {
		t.Fatalf("removed triple left nodes behind in the indexes")
	}
	if n := len(g.NodeIDs()); n != 0 {
		t.Fatalf("NodeIDs() has %d entries, want 0", n)
	}
	idP := g.LookupTerm(iri("p"))
	if es := g.EdgesByPredicate(idP); len(es) != 0 {
		t.Fatalf("byPred kept %d edges for a fully deleted predicate", len(es))
	}
}

func TestStoreConcurrentReadersDuringApply(t *testing.T) {
	st := storeFrom(t, tr("a", "p", "b"), tr("c", "p", "d"))
	const updates = 50
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Current()
				g := snap.Graph()
				// A snapshot must be internally consistent: size
				// equals what EachTriple visits, and every triple
				// decodes through the dictionary.
				n := 0
				g.EachTriple(func(s, p, o ID) {
					_ = g.Term(s)
					_ = g.Term(p)
					_ = g.Term(o)
					n++
				})
				if n != g.Len() {
					t.Errorf("snapshot inconsistent: visited %d, Len=%d", n, g.Len())
					return
				}
			}
		}()
	}
	for i := 0; i < updates; i++ {
		st.Apply(Delta{Add: []rdf.Triple{tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i))}})
		if i%3 == 0 {
			st.Apply(Delta{Del: []rdf.Triple{tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i))}})
		}
	}
	close(stop)
	wg.Wait()
	// updates adds plus one delete for every i%3==0 (i in [0,50) → 17),
	// on top of the initial epoch 1.
	if got, want := st.Current().Epoch(), uint64(1+updates+17); got != want {
		t.Fatalf("final epoch = %d, want %d", got, want)
	}
}

func TestCloneCOWRequiresFrozen(t *testing.T) {
	g := FromTriples([]rdf.Triple{tr("a", "p", "b")})
	defer func() {
		if recover() == nil {
			t.Fatalf("CloneCOW of unfrozen graph must panic")
		}
	}()
	g.CloneCOW()
}

func TestRemoveOnMutableGraph(t *testing.T) {
	g := FromTriples([]rdf.Triple{tr("a", "p", "b"), tr("a", "p", "c")})
	if !g.Remove(tr("a", "p", "b")) {
		t.Fatalf("Remove of present triple = false")
	}
	if g.Remove(tr("a", "p", "b")) {
		t.Fatalf("second Remove of same triple = true")
	}
	if g.Remove(tr("zzz", "p", "b")) {
		t.Fatalf("Remove with unknown term = true")
	}
	if g.Len() != 1 || !g.Has(tr("a", "p", "c")) {
		t.Fatalf("graph after removal: len=%d", g.Len())
	}
	// Removal must never intern: the dictionary size is unchanged by the
	// unknown-term removal above.
	before := g.Dict().Len()
	g.Remove(rdf.Triple{S: iri("unseen1"), P: iri("unseen2"), O: iri("unseen3")})
	if g.Dict().Len() != before {
		t.Fatalf("Remove interned unknown terms")
	}
}
