// Package rdfgraph implements an in-memory, dictionary-encoded RDF triple
// store. Terms are interned into dense integer IDs; triples are kept in
// three indexes (subject→predicate→objects, object→predicate→subjects, and
// a per-predicate edge list) so that the access patterns of shape
// evaluation — forward steps, backward steps, and property scans — are all
// constant-time per edge.
//
// # Concurrency
//
// A Graph is not safe for concurrent mutation, but it is immutable and safe
// for any number of concurrent readers once construction is complete: every
// read accessor (Objects, Subjects, HasIDs, EachTriple, Nodes, Triples,
// Lookup, Term, …) only reads the index maps and the dictionary. Call
// Freeze after loading to enforce this contract — a frozen graph panics on
// Add/AddIDs and on interning a previously unseen term, turning would-be
// data races into deterministic failures. Concurrent serving subsystems
// (internal/fragserver, core.FragmentParallel) rely on this: they warm the
// dictionary with every term they may need, freeze the graph, and then fan
// readers out across goroutines without locking.
//
// Dictionary-encoded triples (IDTriple, 12 bytes each) are also the
// currency of the serving stack's data structures: IDTripleSet
// accumulates extraction results without term churn, and
// core.NeighborhoodCache stores neighborhoods in encoded form, which is
// what makes its triple-denominated memory bound meaningful.
package rdfgraph

import (
	"sort"

	"shaclfrag/internal/rdf"
)

// ID is a dense identifier for an interned term. IDs are only meaningful
// relative to the Dict that produced them.
type ID int32

// NoID is returned by lookups for terms that were never interned.
const NoID ID = -1

// Dict interns terms to dense IDs and back.
//
// A dictionary produced by Extend layers a small overlay of newly interned
// terms over a frozen base, sharing the base's term table so that IDs stay
// stable across snapshot epochs: an ID minted in epoch n resolves to the
// same term in every later epoch. Lookup walks the overlay chain; the chain
// is flattened into a single map every dictFlattenDepth generations so that
// lookups stay O(1) amortized under sustained update load.
type Dict struct {
	byTerm map[rdf.Term]ID
	terms  []rdf.Term
	frozen bool
	// base is the frozen parent dictionary this overlay extends, nil for a
	// root or flattened dictionary. depth counts overlay generations since
	// the last flatten.
	base  *Dict
	depth int
}

// dictFlattenDepth bounds the overlay-chain length: Extend flattens the
// chain into one map once this many generations have accumulated.
const dictFlattenDepth = 4

// Extend returns a fresh mutable dictionary layered over d: every term of d
// keeps its ID, and terms unseen by d may be interned without copying d's
// map. d must be frozen — the overlay appends into the shared term table,
// which is only safe while d itself can no longer grow. Extend is how
// Graph.CloneCOW shares the dictionary between snapshot epochs; successive
// overlays must form a single writer lineage (enforced by Store's mutex).
func (d *Dict) Extend() *Dict {
	if !d.frozen {
		panic("rdfgraph: Extend of unfrozen dictionary")
	}
	nd := &Dict{terms: d.terms}
	if d.depth+1 >= dictFlattenDepth {
		nd.byTerm = make(map[rdf.Term]ID, len(d.terms))
		for i, t := range d.terms {
			nd.byTerm[t] = ID(i)
		}
	} else {
		nd.byTerm = make(map[rdf.Term]ID)
		nd.base = d
		nd.depth = d.depth + 1
	}
	return nd
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byTerm: make(map[rdf.Term]ID)}
}

// Freeze makes the dictionary immutable: interning an already-present term
// keeps working (it is a pure lookup), interning a new term panics. A
// frozen dictionary is safe for concurrent readers.
func (d *Dict) Freeze() { d.frozen = true }

// Frozen reports whether the dictionary has been frozen.
func (d *Dict) Frozen() bool { return d.frozen }

// Intern returns the ID for t, assigning a fresh one if needed. Interning a
// term absent from a frozen dictionary panics; see Freeze.
func (d *Dict) Intern(t rdf.Term) ID {
	if id := d.Lookup(t); id != NoID {
		return id
	}
	if d.frozen {
		panic("rdfgraph: Intern of unseen term " + t.String() + " on frozen dictionary")
	}
	id := ID(len(d.terms))
	d.byTerm[t] = id
	d.terms = append(d.terms, t)
	return id
}

// Lookup returns the ID for t, or NoID if t was never interned.
func (d *Dict) Lookup(t rdf.Term) ID {
	for e := d; e != nil; e = e.base {
		if id, ok := e.byTerm[t]; ok {
			return id
		}
	}
	return NoID
}

// Term returns the term for a valid ID.
func (d *Dict) Term(id ID) rdf.Term { return d.terms[id] }

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.terms) }

// Edge is a dictionary-encoded (subject, object) pair under some predicate.
type Edge struct {
	S, O ID
}

// Graph is an in-memory RDF graph, mutable until frozen. The zero value is
// not usable; call New.
type Graph struct {
	dict   *Dict
	frozen bool
	// spo maps subject → predicate → object set.
	spo map[ID]map[ID]map[ID]struct{}
	// ops maps object → predicate → subject set.
	ops map[ID]map[ID]map[ID]struct{}
	// byPred maps predicate → list of edges, in insertion order.
	byPred map[ID][]Edge
	size   int
	// cowS/cowO track which per-subject (resp. per-object) submaps this
	// graph owns after CloneCOW. A key absent from the set still aliases
	// the parent snapshot's submap and must be deep-copied before its
	// first mutation. Both are nil on graphs built by New and are cleared
	// by Freeze.
	cowS map[ID]struct{}
	cowO map[ID]struct{}
}

// New returns an empty graph with its own term dictionary.
func New() *Graph {
	return NewWithDict(NewDict())
}

// NewWithDict returns an empty graph interning into d. Several graphs may
// share one dictionary — that is how internal/store's sharded backend keeps
// IDs comparable across its subject-partitioned shard graphs — but then
// only one of them may intern at a time (the store's writer lock enforces
// this; interning through a shared mutable dictionary from concurrent
// goroutines is a data race).
func NewWithDict(d *Dict) *Graph {
	return &Graph{
		dict:   d,
		spo:    make(map[ID]map[ID]map[ID]struct{}),
		ops:    make(map[ID]map[ID]map[ID]struct{}),
		byPred: make(map[ID][]Edge),
	}
}

// FromTriples builds a graph from the given triples.
func FromTriples(triples []rdf.Triple) *Graph {
	g := New()
	for _, t := range triples {
		g.Add(t)
	}
	return g
}

// Dict exposes the graph's term dictionary.
func (g *Graph) Dict() *Dict { return g.dict }

// Freeze marks the graph (and its dictionary) immutable. Subsequent Add or
// AddIDs calls panic, as does interning a previously unseen term; all read
// accessors remain valid and become safe for concurrent use from any number
// of goroutines. Freezing is idempotent and cannot be undone (Clone yields
// a fresh mutable copy).
func (g *Graph) Freeze() {
	g.frozen = true
	g.cowS, g.cowO = nil, nil
	g.dict.Freeze()
}

// Frozen reports whether the graph has been frozen.
func (g *Graph) Frozen() bool { return g.frozen }

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.size }

// Add inserts the triple, reporting whether it was new.
func (g *Graph) Add(t rdf.Triple) bool {
	s := g.dict.Intern(t.S)
	p := g.dict.Intern(t.P)
	o := g.dict.Intern(t.O)
	return g.AddIDs(s, p, o)
}

// AddIDs inserts a dictionary-encoded triple, reporting whether it was new.
// The IDs must come from this graph's dictionary.
func (g *Graph) AddIDs(s, p, o ID) bool {
	if g.frozen {
		panic("rdfgraph: AddIDs on frozen graph")
	}
	po := g.mutableSubject(s)
	objs, ok := po[p]
	if !ok {
		objs = make(map[ID]struct{})
		po[p] = objs
	}
	if _, dup := objs[o]; dup {
		return false
	}
	objs[o] = struct{}{}

	ps := g.mutableObject(o)
	subs, ok := ps[p]
	if !ok {
		subs = make(map[ID]struct{})
		ps[p] = subs
	}
	subs[s] = struct{}{}

	// Appending to a possibly parent-shared edge slice is safe: parent
	// readers only index below their own length, the append writes at or
	// beyond it, and Store serializes writers into a single lineage.
	g.byPred[p] = append(g.byPred[p], Edge{S: s, O: o})
	g.size++
	return true
}

// mutableSubject returns the per-subject submap of g.spo for s, suitable
// for mutation: on a COW clone the submap is deep-copied the first time the
// subject is written.
func (g *Graph) mutableSubject(s ID) map[ID]map[ID]struct{} {
	po, ok := g.spo[s]
	if !ok {
		po = make(map[ID]map[ID]struct{})
		g.spo[s] = po
		if g.cowS != nil {
			g.cowS[s] = struct{}{}
		}
		return po
	}
	if g.cowS != nil {
		if _, owned := g.cowS[s]; !owned {
			po = copySubmap(po)
			g.spo[s] = po
			g.cowS[s] = struct{}{}
		}
	}
	return po
}

// mutableObject is mutableSubject for the ops index.
func (g *Graph) mutableObject(o ID) map[ID]map[ID]struct{} {
	ps, ok := g.ops[o]
	if !ok {
		ps = make(map[ID]map[ID]struct{})
		g.ops[o] = ps
		if g.cowO != nil {
			g.cowO[o] = struct{}{}
		}
		return ps
	}
	if g.cowO != nil {
		if _, owned := g.cowO[o]; !owned {
			ps = copySubmap(ps)
			g.ops[o] = ps
			g.cowO[o] = struct{}{}
		}
	}
	return ps
}

func copySubmap(m map[ID]map[ID]struct{}) map[ID]map[ID]struct{} {
	cp := make(map[ID]map[ID]struct{}, len(m))
	for p, ids := range m {
		ids2 := make(map[ID]struct{}, len(ids))
		for id := range ids {
			ids2[id] = struct{}{}
		}
		cp[p] = ids2
	}
	return cp
}

// Remove deletes the triple, reporting whether it was present. Terms absent
// from the dictionary cannot name a stored triple, so removal never interns.
func (g *Graph) Remove(t rdf.Triple) bool {
	s := g.dict.Lookup(t.S)
	p := g.dict.Lookup(t.P)
	o := g.dict.Lookup(t.O)
	if s == NoID || p == NoID || o == NoID {
		return false
	}
	return g.RemoveIDs(s, p, o)
}

// RemoveIDs deletes a dictionary-encoded triple, reporting whether it was
// present. Emptied submaps are dropped from the indexes so that IsNode and
// Nodes keep reflecting N(G) exactly.
func (g *Graph) RemoveIDs(s, p, o ID) bool {
	if g.frozen {
		panic("rdfgraph: RemoveIDs on frozen graph")
	}
	if !g.HasIDs(s, p, o) {
		return false
	}
	po := g.mutableSubject(s)
	objs := po[p]
	delete(objs, o)
	if len(objs) == 0 {
		delete(po, p)
		if len(po) == 0 {
			delete(g.spo, s)
		}
	}
	ps := g.mutableObject(o)
	subs := ps[p]
	delete(subs, s)
	if len(subs) == 0 {
		delete(ps, p)
		if len(ps) == 0 {
			delete(g.ops, o)
		}
	}
	// The edge slice may be shared with a parent snapshot, so filter into
	// a fresh slice instead of splicing in place.
	edges := g.byPred[p]
	out := make([]Edge, 0, len(edges)-1)
	for _, e := range edges {
		if e.S != s || e.O != o {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		delete(g.byPred, p)
	} else {
		g.byPred[p] = out
	}
	g.size--
	return true
}

// Has reports whether the triple is in the graph.
func (g *Graph) Has(t rdf.Triple) bool {
	s := g.dict.Lookup(t.S)
	p := g.dict.Lookup(t.P)
	o := g.dict.Lookup(t.O)
	if s == NoID || p == NoID || o == NoID {
		return false
	}
	return g.HasIDs(s, p, o)
}

// HasIDs reports whether the dictionary-encoded triple is present.
func (g *Graph) HasIDs(s, p, o ID) bool {
	if po, ok := g.spo[s]; ok {
		if objs, ok := po[p]; ok {
			_, ok := objs[o]
			return ok
		}
	}
	return false
}

// Objects calls fn for every o with (s, p, o) ∈ G.
func (g *Graph) Objects(s, p ID, fn func(o ID)) {
	if po, ok := g.spo[s]; ok {
		for o := range po[p] {
			fn(o)
		}
	}
}

// Subjects calls fn for every s with (s, p, o) ∈ G.
func (g *Graph) Subjects(p, o ID, fn func(s ID)) {
	if ps, ok := g.ops[o]; ok {
		for s := range ps[p] {
			fn(s)
		}
	}
}

// PredicatesFrom calls fn once for every predicate p and object o with
// (s, p, o) ∈ G.
func (g *Graph) PredicatesFrom(s ID, fn func(p, o ID)) {
	for p, objs := range g.spo[s] {
		for o := range objs {
			fn(p, o)
		}
	}
}

// PredicatesTo calls fn once for every predicate p and subject s with
// (s, p, o) ∈ G.
func (g *Graph) PredicatesTo(o ID, fn func(s, p ID)) {
	for p, subs := range g.ops[o] {
		for s := range subs {
			fn(s, p)
		}
	}
}

// EdgesByPredicate returns the edge list for predicate p. The returned
// slice must not be modified.
func (g *Graph) EdgesByPredicate(p ID) []Edge { return g.byPred[p] }

// Predicates calls fn for every distinct predicate in the graph.
func (g *Graph) Predicates(fn func(p ID)) {
	for p := range g.byPred {
		fn(p)
	}
}

// EachTriple calls fn for every triple (in unspecified order).
func (g *Graph) EachTriple(fn func(s, p, o ID)) {
	for s, po := range g.spo {
		for p, objs := range po {
			for o := range objs {
				fn(s, p, o)
			}
		}
	}
}

// Nodes calls fn once for every node of the graph, i.e., every term that
// occurs as a subject or object of some triple. This is the finite set
// N(G) the paper quantifies over when computing shape fragments.
func (g *Graph) Nodes(fn func(n ID)) {
	seen := make(map[ID]struct{}, len(g.spo)+len(g.ops))
	for s := range g.spo {
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			fn(s)
		}
	}
	for o := range g.ops {
		if _, ok := seen[o]; !ok {
			seen[o] = struct{}{}
			fn(o)
		}
	}
}

// NodeIDs returns N(G) as a sorted slice of IDs.
func (g *Graph) NodeIDs() []ID {
	var ids []ID
	g.Nodes(func(n ID) { ids = append(ids, n) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// IsNode reports whether id occurs as a subject or object in the graph.
func (g *Graph) IsNode(id ID) bool {
	if _, ok := g.spo[id]; ok {
		return true
	}
	_, ok := g.ops[id]
	return ok
}

// Triples returns all triples in canonical order (Compare on S, P, O).
func (g *Graph) Triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, g.size)
	g.EachTriple(func(s, p, o ID) {
		out = append(out, rdf.Triple{S: g.dict.Term(s), P: g.dict.Term(p), O: g.dict.Term(o)})
	})
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTriples(out[i], out[j]) < 0 })
	return out
}

// Term resolves an ID via the graph's dictionary.
func (g *Graph) Term(id ID) rdf.Term { return g.dict.Term(id) }

// TermID interns a term into the graph's dictionary without adding any
// triple. This is how shape constants (hasValue nodes, class names) obtain
// IDs comparable against graph nodes.
func (g *Graph) TermID(t rdf.Term) ID { return g.dict.Intern(t) }

// LookupTerm returns the ID of t if it is interned, else NoID.
func (g *Graph) LookupTerm(t rdf.Term) ID { return g.dict.Lookup(t) }

// CloneCOW returns a mutable copy-on-write clone of a frozen graph. The
// clone shares g's dictionary (via Dict.Extend, so IDs stay stable), its
// per-subject and per-object index submaps, and its per-predicate edge
// slices; a submap is deep-copied only when first mutated, and edge slices
// are rebuilt only on deletion. This makes a small delta O(delta), not
// O(graph). Clones must form a single writer lineage per graph — Store
// enforces this with a mutex; concurrent CloneCOW mutations of the same
// ancestry are a data race.
func (g *Graph) CloneCOW() *Graph {
	return g.CloneCOWWith(g.dict.Extend())
}

// CloneCOWWith is CloneCOW with a caller-provided overlay dictionary, which
// must be an Extend of g's dictionary (or that dictionary itself, already
// shared). The sharded store clones every shard against one shared overlay
// per epoch, so a delta's new terms get exactly one ID no matter which
// shard their triples land in.
func (g *Graph) CloneCOWWith(d *Dict) *Graph {
	if !g.frozen {
		panic("rdfgraph: CloneCOW of unfrozen graph")
	}
	out := &Graph{
		dict:   d,
		spo:    make(map[ID]map[ID]map[ID]struct{}, len(g.spo)),
		ops:    make(map[ID]map[ID]map[ID]struct{}, len(g.ops)),
		byPred: make(map[ID][]Edge, len(g.byPred)),
		size:   g.size,
		cowS:   make(map[ID]struct{}),
		cowO:   make(map[ID]struct{}),
	}
	for s, po := range g.spo {
		out.spo[s] = po
	}
	for o, ps := range g.ops {
		out.ops[o] = ps
	}
	for p, es := range g.byPred {
		out.byPred[p] = es
	}
	return out
}

// Clone returns a deep copy of the graph sharing no mutable state. The
// dictionary is rebuilt, so IDs in the clone are generally different.
func (g *Graph) Clone() *Graph {
	out := New()
	g.EachTriple(func(s, p, o ID) {
		out.Add(rdf.Triple{S: g.dict.Term(s), P: g.dict.Term(p), O: g.dict.Term(o)})
	})
	return out
}

// ContainsGraph reports whether every triple of sub is in g.
func (g *Graph) ContainsGraph(sub *Graph) bool {
	ok := true
	sub.EachTriple(func(s, p, o ID) {
		if !ok {
			return
		}
		if !g.Has(rdf.Triple{S: sub.dict.Term(s), P: sub.dict.Term(p), O: sub.dict.Term(o)}) {
			ok = false
		}
	})
	return ok
}

// Equal reports whether g and other contain exactly the same triples.
func (g *Graph) Equal(other *Graph) bool {
	return g.size == other.size && g.ContainsGraph(other) && other.ContainsGraph(g)
}

// IDTriple is a dictionary-encoded triple (subject, predicate, object).
type IDTriple struct {
	S, P, O ID
}

// IDTripleSet accumulates dictionary-encoded triples. Neighborhood and
// fragment extraction build results here: hashing three int32s per insert
// is far cheaper than hashing term strings.
type IDTripleSet struct {
	set map[IDTriple]struct{}
}

// NewIDTripleSet returns an empty set.
func NewIDTripleSet() *IDTripleSet {
	return &IDTripleSet{set: make(map[IDTriple]struct{})}
}

// Add inserts t, reporting whether it was new.
func (s *IDTripleSet) Add(t IDTriple) bool {
	if _, ok := s.set[t]; ok {
		return false
	}
	s.set[t] = struct{}{}
	return true
}

// Len returns the set size.
func (s *IDTripleSet) Len() int { return len(s.set) }

// Each calls fn for every triple in the set (unspecified order).
func (s *IDTripleSet) Each(fn func(IDTriple)) {
	for t := range s.set {
		fn(t)
	}
}

// IDTriples returns the contents as a slice, in unspecified order. The
// neighborhood cache stores these raw encoded slices: they are an order of
// magnitude smaller than decoded terms.
func (s *IDTripleSet) IDTriples() []IDTriple {
	out := make([]IDTriple, 0, len(s.set))
	for t := range s.set {
		out = append(out, t)
	}
	return out
}

// AddAll inserts the given encoded triples.
func (s *IDTripleSet) AddAll(ts []IDTriple) {
	for _, t := range ts {
		s.set[t] = struct{}{}
	}
}

// AddSet inserts every triple of other.
func (s *IDTripleSet) AddSet(other *IDTripleSet) {
	for t := range other.set {
		s.set[t] = struct{}{}
	}
}

// Triples decodes the contents through d in canonical order.
func (s *IDTripleSet) Triples(d *Dict) []rdf.Triple {
	out := make([]rdf.Triple, 0, len(s.set))
	for t := range s.set {
		out = append(out, rdf.Triple{S: d.Term(t.S), P: d.Term(t.P), O: d.Term(t.O)})
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTriples(out[i], out[j]) < 0 })
	return out
}

// TripleSet is a set of triples under construction, used to accumulate
// neighborhoods and fragments before freezing them into a Graph.
type TripleSet struct {
	set map[rdf.Triple]struct{}
}

// NewTripleSet returns an empty set.
func NewTripleSet() *TripleSet {
	return &TripleSet{set: make(map[rdf.Triple]struct{})}
}

// Add inserts t, reporting whether it was new.
func (s *TripleSet) Add(t rdf.Triple) bool {
	if _, ok := s.set[t]; ok {
		return false
	}
	s.set[t] = struct{}{}
	return true
}

// AddAll inserts every triple of g.
func (s *TripleSet) AddAll(g *Graph) {
	g.EachTriple(func(sub, p, o ID) {
		s.Add(rdf.Triple{S: g.dict.Term(sub), P: g.dict.Term(p), O: g.dict.Term(o)})
	})
}

// Has reports membership.
func (s *TripleSet) Has(t rdf.Triple) bool {
	_, ok := s.set[t]
	return ok
}

// Len returns the set size.
func (s *TripleSet) Len() int { return len(s.set) }

// Triples returns the contents in canonical order.
func (s *TripleSet) Triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, len(s.set))
	for t := range s.set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTriples(out[i], out[j]) < 0 })
	return out
}

// Graph freezes the set into a Graph.
func (s *TripleSet) Graph() *Graph {
	g := New()
	for t := range s.set {
		g.Add(t)
	}
	return g
}
