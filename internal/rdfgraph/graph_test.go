package rdfgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shaclfrag/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern(iri("a"))
	b := d.Intern(iri("b"))
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if d.Intern(iri("a")) != a {
		t.Fatal("re-interning changed the ID")
	}
	if d.Lookup(iri("a")) != a {
		t.Fatal("Lookup disagrees with Intern")
	}
	if d.Lookup(iri("zzz")) != NoID {
		t.Fatal("Lookup of unseen term should be NoID")
	}
	if d.Term(a) != iri("a") {
		t.Fatal("Term round-trip failed")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestGraphAddHas(t *testing.T) {
	g := New()
	tr := rdf.T(iri("a"), iri("p"), iri("b"))
	if !g.Add(tr) {
		t.Fatal("first Add should report new")
	}
	if g.Add(tr) {
		t.Fatal("second Add should report duplicate")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if !g.Has(tr) {
		t.Fatal("Has must find the triple")
	}
	if g.Has(rdf.T(iri("a"), iri("p"), iri("c"))) {
		t.Fatal("Has found a missing triple")
	}
	if g.Has(rdf.T(iri("zz"), iri("p"), iri("b"))) {
		t.Fatal("Has with un-interned term should be false")
	}
}

func TestGraphIndexes(t *testing.T) {
	g := FromTriples([]rdf.Triple{
		rdf.T(iri("a"), iri("p"), iri("b")),
		rdf.T(iri("a"), iri("p"), iri("c")),
		rdf.T(iri("a"), iri("q"), iri("b")),
		rdf.T(iri("d"), iri("p"), iri("b")),
	})
	a, p, b := g.LookupTerm(iri("a")), g.LookupTerm(iri("p")), g.LookupTerm(iri("b"))

	var objs []ID
	g.Objects(a, p, func(o ID) { objs = append(objs, o) })
	if len(objs) != 2 {
		t.Fatalf("Objects(a,p) = %v, want 2 objects", objs)
	}

	var subs []ID
	g.Subjects(p, b, func(s ID) { subs = append(subs, s) })
	if len(subs) != 2 {
		t.Fatalf("Subjects(p,b) = %v, want 2 subjects", subs)
	}

	if n := len(g.EdgesByPredicate(p)); n != 3 {
		t.Fatalf("EdgesByPredicate(p) = %d, want 3", n)
	}

	count := 0
	g.PredicatesFrom(a, func(_, _ ID) { count++ })
	if count != 3 {
		t.Fatalf("PredicatesFrom(a) visited %d, want 3", count)
	}
	count = 0
	g.PredicatesTo(b, func(_, _ ID) { count++ })
	if count != 3 {
		t.Fatalf("PredicatesTo(b) visited %d, want 3", count)
	}
	preds := 0
	g.Predicates(func(ID) { preds++ })
	if preds != 2 {
		t.Fatalf("Predicates = %d, want 2", preds)
	}
}

func TestGraphNodes(t *testing.T) {
	g := FromTriples([]rdf.Triple{
		rdf.T(iri("a"), iri("p"), iri("b")),
		rdf.T(iri("b"), iri("p"), rdf.NewString("lit")),
	})
	ids := g.NodeIDs()
	if len(ids) != 3 {
		t.Fatalf("N(G) = %d nodes, want 3 (a, b, lit)", len(ids))
	}
	// The predicate p is not a node (it occurs only in predicate position).
	p := g.LookupTerm(iri("p"))
	if g.IsNode(p) {
		t.Fatal("predicate-only term must not be a node")
	}
	if !g.IsNode(g.LookupTerm(rdf.NewString("lit"))) {
		t.Fatal("literal object is a node")
	}
}

func TestTriplesCanonicalOrder(t *testing.T) {
	g := FromTriples([]rdf.Triple{
		rdf.T(iri("b"), iri("p"), iri("x")),
		rdf.T(iri("a"), iri("q"), iri("x")),
		rdf.T(iri("a"), iri("p"), iri("x")),
	})
	ts := g.Triples()
	for i := 1; i < len(ts); i++ {
		if rdf.CompareTriples(ts[i-1], ts[i]) >= 0 {
			t.Fatalf("Triples() not sorted: %v then %v", ts[i-1], ts[i])
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := FromTriples([]rdf.Triple{
		rdf.T(iri("a"), iri("p"), iri("b")),
		rdf.T(iri("b"), iri("q"), rdf.NewInteger(4)),
	})
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone must be equal")
	}
	c.Add(rdf.T(iri("z"), iri("p"), iri("z")))
	if g.Equal(c) {
		t.Fatal("adding to clone must break equality")
	}
	if g.Has(rdf.T(iri("z"), iri("p"), iri("z"))) {
		t.Fatal("clone mutation leaked into original")
	}
	if !c.ContainsGraph(g) {
		t.Fatal("superset must contain subset")
	}
	if g.ContainsGraph(c) {
		t.Fatal("subset must not contain superset")
	}
}

func TestTripleSet(t *testing.T) {
	s := NewTripleSet()
	tr := rdf.T(iri("a"), iri("p"), iri("b"))
	if !s.Add(tr) || s.Add(tr) {
		t.Fatal("Add dedup broken")
	}
	if !s.Has(tr) || s.Len() != 1 {
		t.Fatal("membership broken")
	}
	g := FromTriples([]rdf.Triple{
		rdf.T(iri("c"), iri("p"), iri("d")),
		tr,
	})
	s.AddAll(g)
	if s.Len() != 2 {
		t.Fatalf("AddAll: len = %d, want 2", s.Len())
	}
	frozen := s.Graph()
	if frozen.Len() != 2 || !frozen.Has(tr) {
		t.Fatal("Graph() lost triples")
	}
	ts := s.Triples()
	if len(ts) != 2 || rdf.CompareTriples(ts[0], ts[1]) >= 0 {
		t.Fatal("Triples() must be sorted")
	}
}

// Property: a graph built from any list of triples contains exactly the
// distinct triples of that list, and Triples() round-trips.
func TestGraphRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c", "d"}
		var ts []rdf.Triple
		for i := 0; i < int(n%40); i++ {
			ts = append(ts, rdf.T(
				iri(names[rng.Intn(len(names))]),
				iri(names[rng.Intn(len(names))]),
				iri(names[rng.Intn(len(names))])))
		}
		g := FromTriples(ts)
		uniq := make(map[rdf.Triple]struct{})
		for _, tr := range ts {
			uniq[tr] = struct{}{}
		}
		if g.Len() != len(uniq) {
			return false
		}
		for _, tr := range g.Triples() {
			if _, ok := uniq[tr]; !ok {
				return false
			}
		}
		for tr := range uniq {
			if !g.Has(tr) {
				return false
			}
		}
		return g.Equal(FromTriples(g.Triples()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
