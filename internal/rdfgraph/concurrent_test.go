package rdfgraph_test

import (
	"fmt"
	"sync"
	"testing"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// buildGraph assembles a small dense graph: a bipartite core plus a chain,
// enough structure that every index (SPO, POS, OSP, byPred) is populated.
func buildGraph(tb testing.TB) *rdfgraph.Graph {
	tb.Helper()
	g := rdfgraph.New()
	iri := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://example.org/n%d", i)) }
	knows := rdf.NewIRI("http://example.org/knows")
	next := rdf.NewIRI("http://example.org/next")
	name := rdf.NewIRI("http://example.org/name")
	for i := 0; i < 20; i++ {
		for j := 20; j < 40; j++ {
			g.Add(rdf.Triple{S: iri(i), P: knows, O: iri(j)})
		}
		g.Add(rdf.Triple{S: iri(i), P: next, O: iri(i + 1)})
		g.Add(rdf.Triple{S: iri(i), P: name, O: rdf.NewString(fmt.Sprintf("node %d", i))})
	}
	return g
}

// TestFrozenGraphConcurrentReads hammers one frozen graph from many
// goroutines across every read accessor at once. The package promises that
// a frozen Graph is safe for unsynchronised concurrent reads; running this
// under `go test -race` (see the Makefile `race` target) checks it.
func TestFrozenGraphConcurrentReads(t *testing.T) {
	g := buildGraph(t)
	g.Freeze()
	if !g.Frozen() || !g.Dict().Frozen() {
		t.Fatal("Freeze must freeze both the graph and its dictionary")
	}

	wantLen := g.Len()
	wantNodes := len(g.NodeIDs())
	knows := g.LookupTerm(rdf.NewIRI("http://example.org/knows"))
	if knows == rdfgraph.NoID {
		t.Fatal("test graph missing its own predicate")
	}

	const goroutines = 16
	const rounds = 50
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (w + r) % 8 {
				case 0:
					n := 0
					g.EachTriple(func(s, p, o rdfgraph.ID) { n++ })
					if n != wantLen {
						fail("EachTriple saw %d triples, want %d", n, wantLen)
						return
					}
				case 1:
					if len(g.NodeIDs()) != wantNodes {
						fail("NodeIDs length changed under concurrent reads")
						return
					}
				case 2:
					n := 0
					g.Objects(rdfgraph.ID(0), knows, func(o rdfgraph.ID) { n++ })
					g.Subjects(knows, rdfgraph.ID(0), func(s rdfgraph.ID) { n++ })
				case 3:
					g.PredicatesFrom(rdfgraph.ID(w%5), func(p, o rdfgraph.ID) {})
					g.PredicatesTo(rdfgraph.ID(w%5), func(s, p rdfgraph.ID) {})
				case 4:
					if len(g.Triples()) != wantLen {
						fail("Triples length changed under concurrent reads")
						return
					}
				case 5:
					id := g.LookupTerm(rdf.NewIRI(fmt.Sprintf("http://example.org/n%d", r%40)))
					if id == rdfgraph.NoID {
						fail("LookupTerm lost a known node")
						return
					}
					_ = g.Term(id)
				case 6:
					_ = g.EdgesByPredicate(knows)
					g.Predicates(func(p rdfgraph.ID) {})
				case 7:
					g.HasIDs(rdfgraph.ID(0), knows, rdfgraph.ID(1))
					g.IsNode(rdfgraph.ID(r % 50))
				}
			}
		}(w)
	}
	wg.Wait()

	if g.Len() != wantLen {
		t.Errorf("graph size drifted: %d -> %d", wantLen, g.Len())
	}
}

// TestFrozenGraphRejectsWrites pins the enforcement side of the contract:
// once frozen, every mutation panics instead of racing silently.
func TestFrozenGraphRejectsWrites(t *testing.T) {
	g := buildGraph(t)
	g.Freeze()

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a frozen graph did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Add", func() {
		g.Add(rdf.Triple{
			S: rdf.NewIRI("http://example.org/new-s"),
			P: rdf.NewIRI("http://example.org/new-p"),
			O: rdf.NewIRI("http://example.org/new-o"),
		})
	})
	mustPanic("AddIDs", func() { g.AddIDs(0, 1, 2) })
	mustPanic("Intern of an unseen term", func() {
		g.TermID(rdf.NewIRI("http://example.org/never-seen"))
	})

	// Interning a term that is already present is a pure lookup and stays
	// legal after freezing — the validator relies on this for constants.
	id := g.TermID(rdf.NewIRI("http://example.org/knows"))
	if id == rdfgraph.NoID {
		t.Error("frozen Intern of a present term must return its ID")
	}
}
