package rdfgraph

import (
	"sync"
	"sync/atomic"

	"shaclfrag/internal/rdf"
)

// Snapshot is one immutable epoch of a Store: a frozen Graph plus the epoch
// number under which it was published. Epochs start at 1 and increase by one
// per effective update, so they order snapshots and key cache entries.
type Snapshot struct {
	g     *Graph
	epoch uint64
}

// Graph returns the frozen graph of this epoch.
func (s *Snapshot) Graph() *Graph { return s.g }

// Epoch returns the epoch number.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Delta is a batch of triple additions and deletions applied atomically.
// Deletions run first, so a triple in both lists ends up present.
// Deleting an absent triple (including one naming unknown terms) is a
// no-op, and adding a present triple is a no-op; only effective operations
// count toward ApplyResult.
type Delta struct {
	Add []rdf.Triple
	Del []rdf.Triple
}

// Store owns a sequence of immutable graph snapshots and publishes new
// epochs atomically. Readers call Current and use that snapshot for the
// whole request — they never block on writers, and a snapshot never
// changes under them. Writers are serialized by an internal mutex;
// each Apply builds the next epoch as a copy-on-write clone of the
// current one (see Graph.CloneCOW), so unchanged index submaps and the
// dictionary are shared across epochs and IDs remain stable.
type Store struct {
	mu  sync.Mutex
	cur atomic.Pointer[Snapshot]
}

// NewStore wraps g as epoch 1, freezing it if needed.
func NewStore(g *Graph) *Store {
	g.Freeze()
	st := &Store{}
	st.cur.Store(&Snapshot{g: g, epoch: 1})
	return st
}

// Current returns the latest published snapshot. The returned snapshot is
// immutable and remains valid (and consistent) indefinitely; callers
// serving a request should call Current once and use that snapshot for
// every read of the request.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// ApplyResult reports what an Apply did.
type ApplyResult struct {
	// Snapshot is the snapshot current after the call: the freshly
	// published epoch, or the previous one when the delta was a no-op.
	Snapshot *Snapshot
	// Prev is the epoch the delta was applied against, read under the
	// same lock that published Snapshot — so Prev+1 == Snapshot.Epoch()
	// whenever Changed. Callers carrying caches across the update MUST
	// key the carry on Prev, never on an epoch they read before calling
	// Apply: two racing updates can both observe the same pre-apply
	// epoch, and the later one would then carry entries across the
	// earlier delta using only its own Unaffected predicate, silently
	// skipping the earlier delta's effects.
	Prev uint64
	// Added and Deleted count effective operations (duplicates and
	// absent deletions excluded).
	Added, Deleted int
	// Changed reports whether a new epoch was published.
	Changed bool
	// Unaffected reports whether a node's weakly-connected component —
	// over the union of the previous epoch's edges and the added edges —
	// contains no endpoint of an effective delta triple. Every Table 2
	// extraction rule walks edges from the focus node, so both B(v,G,φ)
	// and v's conformance depend only on v's component: an Unaffected
	// node has the identical neighborhood and verdict in both epochs,
	// which is what lets a cache carry its entries forward. IDs must
	// come from the new snapshot's dictionary (the previous epoch's IDs
	// are valid there too). Unaffected is safe for concurrent use.
	Unaffected func(ID) bool
}

// Apply builds and publishes the next epoch from the current one. A no-op
// delta publishes nothing and returns the current snapshot with
// Changed=false. Apply never blocks readers: they keep resolving Current
// against the old epoch until the new pointer is stored.
func (st *Store) Apply(d Delta) ApplyResult {
	st.mu.Lock()
	defer st.mu.Unlock()

	old := st.cur.Load()
	ng := old.g.CloneCOW()
	var added, deleted int
	var touched []ID
	for _, t := range d.Del {
		s := ng.LookupTerm(t.S)
		p := ng.LookupTerm(t.P)
		o := ng.LookupTerm(t.O)
		if s == NoID || p == NoID || o == NoID {
			continue
		}
		if ng.RemoveIDs(s, p, o) {
			deleted++
			touched = append(touched, s, o)
		}
	}
	type addedEdge struct{ s, o ID }
	var newEdges []addedEdge
	for _, t := range d.Add {
		s := ng.TermID(t.S)
		p := ng.TermID(t.P)
		o := ng.TermID(t.O)
		if ng.AddIDs(s, p, o) {
			added++
			touched = append(touched, s, o)
			newEdges = append(newEdges, addedEdge{s, o})
		}
	}
	if added == 0 && deleted == 0 {
		// No state was mutated (duplicate adds and absent deletions
		// return before touching any index), so the clone is discarded.
		return ApplyResult{
			Snapshot:   old,
			Prev:       old.epoch,
			Unaffected: func(ID) bool { return true },
		}
	}

	// Components over old edges ∪ added edges: old edges keep nodes that
	// could reach a deleted triple connected to it, added edges connect
	// previously separate components the new triples now bridge.
	uf := NewComponents(ng.Dict().Len())
	old.g.EachTriple(func(s, _, o ID) { uf.Union(s, o) })
	for _, e := range newEdges {
		uf.Union(e.s, e.o)
	}
	dirty := uf.DirtySet(touched)

	ng.Freeze()
	snap := &Snapshot{g: ng, epoch: old.epoch + 1}
	st.cur.Store(snap)
	return ApplyResult{
		Snapshot:   snap,
		Prev:       old.epoch,
		Added:      added,
		Deleted:    deleted,
		Changed:    true,
		Unaffected: uf.Unaffected(dirty),
	}
}

// AffectedNodes filters nodes down to those the delta's components touch:
// the inversion of Unaffected into the worklist incremental re-extraction
// runs over. Pass the new snapshot's NodeIDs to get the focus nodes whose
// neighborhood or verdict may have changed (new nodes introduced by the
// delta are endpoints of effective triples, so they always qualify); nodes
// a deletion removed from N(G) are absent from that list and must be
// handled by the caller (their neighborhoods are empty in the new epoch).
func (res ApplyResult) AffectedNodes(nodes []ID) []ID {
	if !res.Changed {
		return nil
	}
	var out []ID
	for _, id := range nodes {
		if !res.Unaffected(id) {
			out = append(out, id)
		}
	}
	return out
}

// Components is a disjoint-set forest over dense IDs, used by the snapshot
// stores to decide which weakly-connected components a delta touches. It
// must be built over the *whole* graph a reader can observe: the sharded
// backend unions edges from every shard before asking for roots, because a
// component — and therefore a neighborhood B(v, G, φ) — freely spans shard
// boundaries even though each triple is stored on exactly one shard.
type Components struct {
	parent []ID
}

// NewComponents returns a forest of n singleton components.
func NewComponents(n int) *Components {
	uf := &Components{parent: make([]ID, n)}
	for i := range uf.parent {
		uf.parent[i] = ID(i)
	}
	return uf
}

func (uf *Components) find(x ID) ID {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the components of a and b.
func (uf *Components) Union(a, b ID) {
	ra, rb := uf.find(a), uf.find(b)
	if ra != rb {
		uf.parent[ra] = rb
	}
}

// Compress points every element directly at its root; afterwards Root does
// no writes and may be called from any number of goroutines.
func (uf *Components) Compress() {
	for i := range uf.parent {
		uf.parent[ID(i)] = uf.find(ID(i))
	}
}

// Root returns the component representative of x. Call Compress first when
// Root will be used concurrently.
func (uf *Components) Root(x ID) ID { return uf.parent[x] }

// DirtySet compresses the forest and returns the set of component roots
// touched by the given IDs (typically every endpoint of an effective delta
// triple).
func (uf *Components) DirtySet(touched []ID) map[ID]struct{} {
	uf.Compress()
	dirty := make(map[ID]struct{}, len(touched))
	for _, id := range touched {
		dirty[uf.Root(id)] = struct{}{}
	}
	return dirty
}

// Unaffected returns the predicate ApplyResult carries: true iff the ID is
// in range and its component root is not in dirty. The forest must already
// be compressed (DirtySet does this); the returned func is then safe for
// concurrent use.
func (uf *Components) Unaffected(dirty map[ID]struct{}) func(ID) bool {
	return func(id ID) bool {
		if int(id) < 0 || int(id) >= len(uf.parent) {
			return false
		}
		_, hit := dirty[uf.Root(id)]
		return !hit
	}
}
