// Package sparql implements the SPARQL query-algebra substrate used to
// compute neighborhoods by translation (Section 5.1 of the paper): solution
// mappings, an algebra with basic graph patterns (including property
// paths), join, union, optional (left join), minus, filter (with EXISTS),
// extend, distinct, project and grouping with counting — plus the
// path-trace operator realizing the query Q_E of Lemma 5.1, which returns
// the subgraph graph(paths(E, G, a, b)) traced out by path expressions.
//
// Queries are built programmatically as algebra trees; Render produces
// SPARQL concrete syntax for display. Evaluation is "lateral": every
// operator maps a set of input solutions to output solutions, so
// correlated subqueries (EXISTS, nested selects over bound focus nodes)
// evaluate efficiently without a dedicated optimizer.
package sparql

import (
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
)

// Binding is a solution mapping μ: a partial map from variable names to
// terms. Bindings are treated as immutable; extend copies.
type Binding map[string]rdf.Term

// extend returns b extended with var→t, or nil when incompatible.
func (b Binding) extend(v string, t rdf.Term) Binding {
	if old, ok := b[v]; ok {
		if old == t {
			return b
		}
		return nil
	}
	out := make(Binding, len(b)+1)
	for k, val := range b {
		out[k] = val
	}
	out[v] = t
	return out
}

// compatible reports whether two bindings agree on their shared variables.
func compatible(a, b Binding) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for k, v := range a {
		if w, ok := b[k]; ok && w != v {
			return false
		}
	}
	return true
}

// sharesVar reports whether the domains of a and b intersect.
func sharesVar(a, b Binding) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for k := range a {
		if _, ok := b[k]; ok {
			return true
		}
	}
	return false
}

// merge returns the union of two compatible bindings, or nil on conflict.
func merge(a, b Binding) Binding {
	out := make(Binding, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if old, ok := out[k]; ok && old != v {
			return nil
		}
		out[k] = v
	}
	return out
}

// TermOrVar is a triple pattern position: either a constant term or a
// variable (Var non-empty).
type TermOrVar struct {
	Var  string
	Term rdf.Term
}

// V makes a variable position.
func V(name string) TermOrVar { return TermOrVar{Var: name} }

// C makes a constant position.
func C(t rdf.Term) TermOrVar { return TermOrVar{Term: t} }

// IsVar reports whether the position is a variable.
func (tv TermOrVar) IsVar() bool { return tv.Var != "" }

// TriplePattern matches triples; Path, when non-nil, replaces the predicate
// with a property path (SPARQL property path patterns).
type TriplePattern struct {
	S    TermOrVar
	P    TermOrVar  // used when Path is nil
	Path paths.Expr // property path; nil for a plain predicate
	O    TermOrVar
}

// Op is a node of the query algebra.
type Op interface{ isOp() }

// BGP is a basic graph pattern: a conjunction of triple patterns.
type BGP struct {
	Patterns []TriplePattern
}

// Join is the natural (compatibility) join of two patterns.
type Join struct {
	L, R Op
}

// LeftJoin is OPTIONAL: solutions of L extended by compatible R solutions
// when any exist, kept bare otherwise.
type LeftJoin struct {
	L, R Op
}

// Union concatenates the solutions of both sides.
type Union struct {
	L, R Op
}

// Minus removes L-solutions for which a compatible R-solution sharing at
// least one variable exists (SPARQL MINUS).
type Minus struct {
	L, R Op
}

// Filter keeps solutions whose condition evaluates to true.
type Filter struct {
	Inner Op
	Cond  Expr
}

// Extend binds a new variable to the value of an expression (SELECT ... AS).
// Solutions where the expression errors keep the variable unbound.
type Extend struct {
	Inner Op
	Var   string
	E     Expr
}

// Project restricts solutions to the given variables.
type Project struct {
	Inner Op
	Vars  []string
}

// Distinct removes duplicate solutions.
type Distinct struct {
	Inner Op
}

// GroupCount groups by the given variables and binds CountVar to the group
// size (COUNT(*)).
type GroupCount struct {
	Inner    Op
	By       []string
	CountVar string
}

// Table is an inline list of solutions (SPARQL VALUES).
type Table struct {
	Rows []Binding
}

// AllNodes binds Var to every node of the graph, N(G): every subject or
// object of some triple. It renders as
// {SELECT DISTINCT ?v WHERE {{?v ?p ?o} UNION {?s ?p ?v}}}.
type AllNodes struct {
	Var string
}

// PathTrace is the triple-returning part of the query Q_E of Lemma 5.1:
// it binds (TVar, SVar, PVar, OVar, HVar) such that, for every pair
// (a, b) ∈ ⟦E⟧G restricted to N(G) (or further restricted by input
// bindings), the rows with TVar=a, HVar=b enumerate exactly
// graph(paths(E, G, a, b)).
//
// Pair rows (s, p, o left unbound) are additionally emitted when WithPairs
// is set, making the operator exactly the Q_E of the lemma; neighborhood
// queries use the triples-only form and a separate BGP path pattern for
// reachability.
type PathTrace struct {
	Path                         paths.Expr
	TVar, SVar, PVar, OVar, HVar string
	WithPairs                    bool
}

func (*BGP) isOp()        {}
func (*Join) isOp()       {}
func (*LeftJoin) isOp()   {}
func (*Union) isOp()      {}
func (*Minus) isOp()      {}
func (*Filter) isOp()     {}
func (*Extend) isOp()     {}
func (*Project) isOp()    {}
func (*Distinct) isOp()   {}
func (*GroupCount) isOp() {}
func (*Table) isOp()      {}
func (*AllNodes) isOp()   {}
func (*PathTrace) isOp()  {}

// UnionOf folds operands into nested unions; empty input yields an empty
// table.
func UnionOf(ops ...Op) Op {
	if len(ops) == 0 {
		return &Table{}
	}
	out := ops[0]
	for _, op := range ops[1:] {
		out = &Union{L: out, R: op}
	}
	return out
}

// JoinOf folds operands into nested joins; empty input yields the unit
// table (one empty solution).
func JoinOf(ops ...Op) Op {
	if len(ops) == 0 {
		return &Table{Rows: []Binding{{}}}
	}
	out := ops[0]
	for _, op := range ops[1:] {
		out = &Join{L: out, R: op}
	}
	return out
}
