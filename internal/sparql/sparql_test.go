package sparql

import (
	"math/rand"
	"strings"
	"testing"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
	"shaclfrag/internal/turtle"
)

const base = "http://x/"

func iri(s string) rdf.Term { return rdf.NewIRI(base + s) }

func mustGraph(t *testing.T, src string) *rdfgraph.Graph {
	t.Helper()
	g, err := turtle.Parse("@prefix ex: <" + base + "> .\n" + src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBGPSingleVar(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:a ex:p ex:c . ex:z ex:q ex:b .`)
	rows := Select(&BGP{Patterns: []TriplePattern{
		{S: C(iri("a")), P: C(iri("p")), O: V("o")},
	}}, g, "o")
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2", rows)
	}
}

func TestBGPJoinOverSharedVar(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:p ex:b . ex:b ex:q ex:c .
ex:a ex:p ex:d . ex:d ex:q ex:e .
ex:a ex:p ex:lonely .
`)
	rows := Select(&BGP{Patterns: []TriplePattern{
		{S: V("x"), P: C(iri("p")), O: V("y")},
		{S: V("y"), P: C(iri("q")), O: V("z")},
	}}, g, "x", "z")
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2", rows)
	}
}

func TestBGPAllPositionsVariable(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:c ex:q ex:d .`)
	rows := Select(&BGP{Patterns: []TriplePattern{
		{S: V("s"), P: V("p"), O: V("o")},
	}}, g, "s", "p", "o")
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2", rows)
	}
}

func TestBGPVariablePredicate(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:a ex:q ex:b . ex:a ex:p ex:c .`)
	rows := Select(&BGP{Patterns: []TriplePattern{
		{S: C(iri("a")), P: V("p"), O: C(iri("b"))},
	}}, g, "p")
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want p and q", rows)
	}
}

func TestBGPPathPattern(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:p ex:c .`)
	star := paths.Star{X: paths.P(base + "p")}
	rows := Select(&BGP{Patterns: []TriplePattern{
		{S: C(iri("a")), Path: star, O: V("o")},
	}}, g, "o")
	if len(rows) != 3 { // a, b, c
		t.Fatalf("rows = %v, want 3", rows)
	}
	// Object bound: inverse evaluation.
	rows = Select(&BGP{Patterns: []TriplePattern{
		{S: V("s"), Path: paths.P(base + "p"), O: C(iri("c"))},
	}}, g, "s")
	if len(rows) != 1 || rows[0]["s"] != iri("b") {
		t.Fatalf("rows = %v, want b", rows)
	}
	// Both free: all pairs.
	rows = Select(&BGP{Patterns: []TriplePattern{
		{S: V("s"), Path: paths.P(base + "p"), O: V("o")},
	}}, g, "s", "o")
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2", rows)
	}
}

func TestUnionAndDistinct(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:a ex:q ex:b .`)
	op := UnionOf(
		&BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("p")), O: V("o")}}},
		&BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("q")), O: V("o")}}},
	)
	if rows := Eval(op, g); len(rows) != 2 {
		t.Fatalf("union rows = %v", rows)
	}
	if rows := Select(op, g, "s", "o"); len(rows) != 1 {
		t.Fatalf("distinct rows = %v", rows)
	}
}

func TestLeftJoin(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:name "A" . ex:a ex:age 30 .
ex:b ex:name "B" .
`)
	op := &LeftJoin{
		L: &BGP{Patterns: []TriplePattern{{S: V("x"), P: C(iri("name")), O: V("n")}}},
		R: &BGP{Patterns: []TriplePattern{{S: V("x"), P: C(iri("age")), O: V("a")}}},
	}
	rows := Eval(op, g)
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2", rows)
	}
	bound := 0
	for _, r := range rows {
		if _, ok := r["a"]; ok {
			bound++
		}
	}
	if bound != 1 {
		t.Fatalf("exactly one row should have ?a bound: %v", rows)
	}
}

func TestMinus(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:p ex:x . ex:b ex:p ex:x .
ex:a ex:bad ex:y .
`)
	op := &Minus{
		L: &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("p")), O: V("x")}}},
		R: &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("bad")), O: V("y")}}},
	}
	rows := Eval(op, g)
	if len(rows) != 1 || rows[0]["s"] != iri("b") {
		t.Fatalf("rows = %v, want only b", rows)
	}
}

func TestMinusNoSharedVars(t *testing.T) {
	// MINUS with disjoint domains removes nothing.
	g := mustGraph(t, `ex:a ex:p ex:x .`)
	op := &Minus{
		L: &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("p")), O: V("x")}}},
		R: &BGP{Patterns: []TriplePattern{{S: V("other"), P: C(iri("p")), O: V("x2")}}},
	}
	if rows := Eval(op, g); len(rows) != 1 {
		t.Fatalf("rows = %v, want 1 (no shared vars)", rows)
	}
}

func TestFilterComparisons(t *testing.T) {
	g := mustGraph(t, `ex:a ex:v 1 . ex:b ex:v 5 . ex:c ex:v 9 .`)
	op := &Filter{
		Inner: &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("v")), O: V("x")}}},
		Cond:  &Cmp{Op: CmpLess, L: Vx("x"), R: Cx(rdf.NewInteger(5))},
	}
	rows := Eval(op, g)
	if len(rows) != 1 || rows[0]["s"] != iri("a") {
		t.Fatalf("rows = %v", rows)
	}
}

func TestFilterExists(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:p ex:x . ex:x ex:ok ex:yes .
ex:b ex:p ex:y .
`)
	op := &Filter{
		Inner: &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("p")), O: V("o")}}},
		Cond: &ExistsExpr{Op: &BGP{Patterns: []TriplePattern{
			{S: V("o"), P: C(iri("ok")), O: V("any")},
		}}},
	}
	rows := Eval(op, g)
	if len(rows) != 1 || rows[0]["s"] != iri("a") {
		t.Fatalf("EXISTS rows = %v", rows)
	}
	op.Cond = &ExistsExpr{Neg: true, Op: &BGP{Patterns: []TriplePattern{
		{S: V("o"), P: C(iri("ok")), O: V("any")},
	}}}
	rows = Eval(op, g)
	if len(rows) != 1 || rows[0]["s"] != iri("b") {
		t.Fatalf("NOT EXISTS rows = %v", rows)
	}
}

func TestFilterInAndBound(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:x . ex:a ex:q ex:y .`)
	op := &Filter{
		Inner: &BGP{Patterns: []TriplePattern{{S: V("s"), P: V("p"), O: V("o")}}},
		Cond:  &InExpr{X: Vx("p"), Terms: []rdf.Term{iri("p")}, Neg: true},
	}
	rows := Eval(op, g)
	if len(rows) != 1 || rows[0]["p"] != iri("q") {
		t.Fatalf("NOT IN rows = %v", rows)
	}
	// bound() on an optional variable.
	opt := &Filter{
		Inner: &LeftJoin{
			L: &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("p")), O: V("x")}}},
			R: &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("nosuch")), O: V("y")}}},
		},
		Cond: &NotExpr{X: &BoundExpr{Name: "y"}},
	}
	if rows := Eval(opt, g); len(rows) != 1 {
		t.Fatalf("!bound rows = %v", rows)
	}
}

func TestExtendAndProject(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	op := &Project{
		Inner: &Extend{
			Inner: &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("p")), O: V("o")}}},
			Var:   "copy",
			E:     Vx("s"),
		},
		Vars: []string{"copy"},
	}
	rows := Eval(op, g)
	if len(rows) != 1 || rows[0]["copy"] != iri("a") || len(rows[0]) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGroupCount(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:p ex:x , ex:y , ex:z .
ex:b ex:p ex:x .
`)
	op := &GroupCount{
		Inner:    &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("p")), O: V("o")}}},
		By:       []string{"s"},
		CountVar: "n",
	}
	rows := Eval(op, g)
	counts := map[rdf.Term]int{}
	for _, r := range rows {
		n, ok := CountLiteral(r["n"])
		if !ok {
			t.Fatalf("bad count literal %v", r["n"])
		}
		counts[r["s"]] = n
	}
	if counts[iri("a")] != 3 || counts[iri("b")] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestAllNodes(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:q "lit" .`)
	rows := Select(&AllNodes{Var: "v"}, g, "v")
	if len(rows) != 3 { // a, b, "lit" — p and q are not nodes
		t.Fatalf("N(G) = %v, want 3", rows)
	}
	// With the variable pre-bound, AllNodes acts as a membership filter.
	op := &Join{L: &Table{Rows: []Binding{{"v": iri("a")}, {"v": iri("ghost")}}}, R: &AllNodes{Var: "v"}}
	rows = Eval(op, g)
	if len(rows) != 1 || rows[0]["v"] != iri("a") {
		t.Fatalf("filtered rows = %v", rows)
	}
}

func TestTableJoin(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	op := &Join{
		L: &Table{Rows: []Binding{{"s": iri("a")}}},
		R: &BGP{Patterns: []TriplePattern{{S: V("s"), P: C(iri("p")), O: V("o")}}},
	}
	rows := Eval(op, g)
	if len(rows) != 1 || rows[0]["o"] != iri("b") {
		t.Fatalf("rows = %v", rows)
	}
}

// Property: PathTrace triple rows agree with paths.Trace for every endpoint
// pair, and pair rows agree with the path relation (Lemma 5.1).
func TestPathTraceAgainstDirectTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		g := shapetest.RandomGraph(rng, 10)
		e := shapetest.RandomPath(rng, 2)
		op := &PathTrace{Path: e, TVar: "t", SVar: "s", PVar: "p", OVar: "o", HVar: "h", WithPairs: true}
		rows := Eval(op, g)

		pe := paths.NewEvaluator(e, g)
		wantPairs := make(map[[2]rdf.Term]bool)
		wantTriples := make(map[[2]rdf.Term]map[rdf.Triple]bool)
		for _, a := range g.NodeIDs() {
			for _, b := range pe.Eval(a) {
				key := [2]rdf.Term{g.Term(a), g.Term(b)}
				wantPairs[key] = true
				m := make(map[rdf.Triple]bool)
				for _, tr := range pe.Trace(a, b) {
					m[tr] = true
				}
				wantTriples[key] = m
			}
		}
		gotPairs := make(map[[2]rdf.Term]bool)
		gotTriples := make(map[[2]rdf.Term]map[rdf.Triple]bool)
		for _, r := range rows {
			key := [2]rdf.Term{r["t"], r["h"]}
			if _, ok := r["s"]; !ok {
				gotPairs[key] = true
				continue
			}
			if gotTriples[key] == nil {
				gotTriples[key] = make(map[rdf.Triple]bool)
			}
			gotTriples[key][rdf.T(r["s"], r["p"], r["o"])] = true
		}
		if len(gotPairs) != len(wantPairs) {
			t.Fatalf("trial %d: pair sets differ for %s: got %d want %d", trial, e, len(gotPairs), len(wantPairs))
		}
		for key := range wantPairs {
			if !gotPairs[key] {
				t.Fatalf("trial %d: missing pair %v for %s", trial, key, e)
			}
			got := gotTriples[key]
			want := wantTriples[key]
			if len(got) != len(want) {
				t.Fatalf("trial %d: triple sets differ at %v for %s:\ngot %v\nwant %v", trial, key, e, got, want)
			}
			for tr := range want {
				if !got[tr] {
					t.Fatalf("trial %d: missing triple %v at %v for %s", trial, tr, key, e)
				}
			}
		}
	}
}

func TestPathTraceWithBoundEndpoints(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:p ex:c . ex:z ex:p ex:c .`)
	e := paths.Star{X: paths.P(base + "p")}
	// t bound.
	op := &PathTrace{Path: e, TVar: "t", SVar: "s", PVar: "p", OVar: "o", HVar: "h"}
	rows := Eval(&Join{L: &Table{Rows: []Binding{{"t": iri("a")}}}, R: op}, g)
	for _, r := range rows {
		if r["t"] != iri("a") {
			t.Fatalf("unexpected t: %v", r)
		}
		if r["s"] == iri("z") {
			t.Fatalf("z edge must not be traced from a: %v", r)
		}
	}
	// h bound.
	rows = Eval(&Join{L: &Table{Rows: []Binding{{"h": iri("c")}}}, R: op}, g)
	seenZ := false
	for _, r := range rows {
		if r["h"] != iri("c") {
			t.Fatalf("unexpected h: %v", r)
		}
		if r["s"] == iri("z") {
			seenZ = true
		}
	}
	if !seenZ {
		t.Fatal("trace into c must include the z edge")
	}
}

func TestEffectiveBool(t *testing.T) {
	cases := []struct {
		t    rdf.Term
		want bool
		err  bool
	}{
		{rdf.NewBoolean(true), true, false},
		{rdf.NewBoolean(false), false, false},
		{rdf.NewString(""), false, false},
		{rdf.NewString("x"), true, false},
		{rdf.NewInteger(0), false, false},
		{rdf.NewInteger(7), true, false},
		{iri("a"), false, true},
		{rdf.NewTypedLiteral("junk", rdf.XSDDateTime), false, true},
	}
	for _, c := range cases {
		got, err := effectiveBool(c.t)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("effectiveBool(%v) = %v, %v", c.t, got, err)
		}
	}
}

func TestRenderSmoke(t *testing.T) {
	e := paths.Seq{Left: paths.P(base + "q"), Right: paths.Star{X: paths.P(base + "r")}}
	op := &Filter{
		Inner: &Join{
			L: &AllNodes{Var: "v"},
			R: &Union{
				L: &BGP{Patterns: []TriplePattern{{S: V("v"), P: C(iri("p")), O: V("o")}}},
				R: &PathTrace{Path: e, TVar: "v", SVar: "s", PVar: "p2", OVar: "o2", HVar: "h"},
			},
		},
		Cond: AndOf(
			&Cmp{Op: CmpNeq, L: Vx("v"), R: Cx(iri("x"))},
			&ExistsExpr{Neg: true, Op: &BGP{Patterns: []TriplePattern{{S: V("v"), P: C(iri("bad")), O: V("b")}}}},
			&NodeTestExpr{Name: "v", Test: shape.IsIRI{}},
		),
	}
	out := Render(op, "v")
	for _, want := range []string{"SELECT ?v", "UNION", "NOT EXISTS", "isIRI(?v)", "Lemma 5.1", "FILTER"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// Rendering must be deterministic modulo the fresh-variable counter.
	if out2 := Render(op, "v"); out != out2 {
		t.Error("rendering not deterministic")
	}
}

func TestBindingHelpers(t *testing.T) {
	b := Binding{"x": iri("a")}
	if b.extend("x", iri("b")) != nil {
		t.Error("conflicting extend must fail")
	}
	if nb := b.extend("x", iri("a")); nb == nil || len(nb) != 1 {
		t.Error("same-value extend keeps binding")
	}
	if !compatible(Binding{"x": iri("a")}, Binding{"y": iri("b")}) {
		t.Error("disjoint bindings are compatible")
	}
	if compatible(Binding{"x": iri("a")}, Binding{"x": iri("b")}) {
		t.Error("conflicting bindings are incompatible")
	}
	if sharesVar(Binding{"x": iri("a")}, Binding{"y": iri("b")}) {
		t.Error("no shared vars")
	}
	if m := merge(Binding{"x": iri("a")}, Binding{"x": iri("b")}); m != nil {
		t.Error("conflicting merge must fail")
	}
}
