package sparql

import (
	"errors"
	"strings"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shape"
)

// errUnbound signals evaluation over an unbound variable; filters treat it
// as false (SPARQL error semantics), Extend leaves the target unbound.
var errUnbound = errors.New("sparql: unbound variable")

// Expr is a filter/select expression.
type Expr interface{ isExpr() }

// VarExpr references a variable.
type VarExpr struct{ Name string }

// ConstExpr is a constant term.
type ConstExpr struct{ Term rdf.Term }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLess      // semantic < on literals (rdf.Less)
	CmpLessEq    // semantic ≤
	CmpNotLess   // ¬(a < b); distinct from b ≤ a on incomparable values
	CmpNotLessEq // ¬(a ≤ b)
)

// Cmp compares two expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// AndExpr is logical conjunction (&& with SPARQL error semantics).
type AndExpr struct{ Xs []Expr }

// OrExpr is logical disjunction.
type OrExpr struct{ Xs []Expr }

// NotExpr is logical negation.
type NotExpr struct{ X Expr }

// BoundExpr is bound(?v).
type BoundExpr struct{ Name string }

// SameLangExpr is lang(?x) = lang(?y) && lang(?x) != "".
type SameLangExpr struct{ L, R Expr }

// InExpr tests membership of an expression's value in a constant list; Neg
// flips it (NOT IN).
type InExpr struct {
	X     Expr
	Terms []rdf.Term
	Neg   bool
}

// ExistsExpr is EXISTS { op } evaluated with the current solution as input
// (correlated). Neg flips it (NOT EXISTS).
type ExistsExpr struct {
	Op  Op
	Neg bool
}

// NodeTestExpr applies a node test from the shape algebra to the value of a
// variable. It renders as the corresponding SPARQL filter function.
type NodeTestExpr struct {
	Name string
	Test shape.NodeTest
}

func (*VarExpr) isExpr()      {}
func (*ConstExpr) isExpr()    {}
func (*Cmp) isExpr()          {}
func (*AndExpr) isExpr()      {}
func (*OrExpr) isExpr()       {}
func (*NotExpr) isExpr()      {}
func (*BoundExpr) isExpr()    {}
func (*SameLangExpr) isExpr() {}
func (*InExpr) isExpr()       {}
func (*ExistsExpr) isExpr()   {}
func (*NodeTestExpr) isExpr() {}

// Vx is shorthand for a variable expression.
func Vx(name string) Expr { return &VarExpr{Name: name} }

// Cx is shorthand for a constant expression.
func Cx(t rdf.Term) Expr { return &ConstExpr{Term: t} }

// AndOf builds a conjunction, flattening and dropping nils.
func AndOf(xs ...Expr) Expr {
	var flat []Expr
	for _, x := range xs {
		if x == nil {
			continue
		}
		if a, ok := x.(*AndExpr); ok {
			flat = append(flat, a.Xs...)
			continue
		}
		flat = append(flat, x)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &AndExpr{Xs: flat}
}

// evalTerm evaluates an expression to a term.
func (e *evaluator) evalTerm(x Expr, b Binding) (rdf.Term, error) {
	switch ex := x.(type) {
	case *VarExpr:
		if t, ok := b[ex.Name]; ok {
			return t, nil
		}
		return rdf.Term{}, errUnbound
	case *ConstExpr:
		return ex.Term, nil
	default:
		v, err := e.evalBool(x, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(v), nil
	}
}

// evalBool evaluates an expression under SPARQL effective-boolean-value
// semantics; errors propagate and are treated as false by Filter.
func (e *evaluator) evalBool(x Expr, b Binding) (bool, error) {
	switch ex := x.(type) {
	case *VarExpr, *ConstExpr:
		t, err := e.evalTerm(x, b)
		if err != nil {
			return false, err
		}
		return effectiveBool(t)
	case *Cmp:
		l, err := e.evalTerm(ex.L, b)
		if err != nil {
			return false, err
		}
		r, err := e.evalTerm(ex.R, b)
		if err != nil {
			return false, err
		}
		switch ex.Op {
		case CmpEq:
			return l == r, nil
		case CmpNeq:
			return l != r, nil
		case CmpLess:
			return rdf.Less(l, r), nil
		case CmpLessEq:
			return rdf.LessEq(l, r), nil
		case CmpNotLess:
			return !rdf.Less(l, r), nil
		case CmpNotLessEq:
			return !rdf.LessEq(l, r), nil
		}
		return false, errors.New("sparql: unknown comparison")
	case *AndExpr:
		for _, c := range ex.Xs {
			v, err := e.evalBool(c, b)
			if err != nil {
				return false, err
			}
			if !v {
				return false, nil
			}
		}
		return true, nil
	case *OrExpr:
		for _, c := range ex.Xs {
			v, err := e.evalBool(c, b)
			if err == nil && v {
				return true, nil
			}
		}
		return false, nil
	case *NotExpr:
		v, err := e.evalBool(ex.X, b)
		if err != nil {
			return false, err
		}
		return !v, nil
	case *BoundExpr:
		_, ok := b[ex.Name]
		return ok, nil
	case *SameLangExpr:
		l, err := e.evalTerm(ex.L, b)
		if err != nil {
			return false, err
		}
		r, err := e.evalTerm(ex.R, b)
		if err != nil {
			return false, err
		}
		return rdf.SameLang(l, r), nil
	case *InExpr:
		t, err := e.evalTerm(ex.X, b)
		if err != nil {
			return false, err
		}
		found := false
		for _, c := range ex.Terms {
			if c == t {
				found = true
				break
			}
		}
		return found != ex.Neg, nil
	case *ExistsExpr:
		rows := e.eval(ex.Op, []Binding{b})
		return (len(rows) > 0) != ex.Neg, nil
	case *NodeTestExpr:
		t, ok := b[ex.Name]
		if !ok {
			return false, errUnbound
		}
		return ex.Test.Holds(t), nil
	}
	return false, errors.New("sparql: unknown expression")
}

// effectiveBool implements SPARQL's effective boolean value for terms.
func effectiveBool(t rdf.Term) (bool, error) {
	if !t.IsLiteral() {
		return false, errors.New("sparql: EBV of non-literal")
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.Value == "true" || t.Value == "1", nil
	case rdf.XSDString, "", rdf.RDFLangString:
		return t.Value != "", nil
	default:
		if f, ok := t.NumericValue(); ok {
			return f != 0, nil
		}
		return false, errors.New("sparql: EBV of " + strings.TrimSpace(t.String()))
	}
}
