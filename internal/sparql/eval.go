package sparql

import (
	"sort"
	"strconv"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// Eval evaluates an algebra tree against a graph and returns its solutions.
// The result order is deterministic for deterministic trees (it follows the
// graph's canonical node order).
func Eval(op Op, g rdfgraph.Reader) []Binding {
	e := newEvaluator(g)
	return e.eval(op, []Binding{{}})
}

// Select evaluates op and projects the given variables, deduplicating rows
// and returning them in a canonical order.
func Select(op Op, g rdfgraph.Reader, vars ...string) []Binding {
	rows := Eval(&Distinct{Inner: &Project{Inner: op, Vars: vars}}, g)
	sort.Slice(rows, func(i, j int) bool { return bindingKey(rows[i]) < bindingKey(rows[j]) })
	return rows
}

type evaluator struct {
	g         rdfgraph.Reader
	pathEvals map[paths.Expr]*paths.Evaluator
}

func newEvaluator(g rdfgraph.Reader) *evaluator {
	return &evaluator{g: g, pathEvals: make(map[paths.Expr]*paths.Evaluator)}
}

func (e *evaluator) pathEval(p paths.Expr) *paths.Evaluator {
	pe, ok := e.pathEvals[p]
	if !ok {
		pe = paths.NewEvaluator(p, e.g)
		e.pathEvals[p] = pe
	}
	return pe
}

// eval computes the solutions of op laterally: input solutions are extended
// rather than joined after the fact, which makes correlated subpatterns
// (EXISTS, trace queries over bound focus nodes) efficient.
func (e *evaluator) eval(op Op, input []Binding) []Binding {
	switch o := op.(type) {
	case *BGP:
		rows := input
		for _, p := range o.Patterns {
			rows = e.matchPattern(p, rows)
		}
		return rows

	case *Join:
		return e.eval(o.R, e.eval(o.L, input))

	case *LeftJoin:
		var out []Binding
		for _, l := range e.eval(o.L, input) {
			rs := e.eval(o.R, []Binding{l})
			if len(rs) == 0 {
				out = append(out, l)
			} else {
				out = append(out, rs...)
			}
		}
		return out

	case *Union:
		out := append([]Binding{}, e.eval(o.L, input)...)
		return append(out, e.eval(o.R, input)...)

	case *Minus:
		ls := e.eval(o.L, input)
		rs := e.eval(o.R, []Binding{{}})
		var out []Binding
		for _, l := range ls {
			removed := false
			for _, r := range rs {
				if sharesVar(l, r) && compatible(l, r) {
					removed = true
					break
				}
			}
			if !removed {
				out = append(out, l)
			}
		}
		return out

	case *Filter:
		var out []Binding
		for _, b := range e.eval(o.Inner, input) {
			if v, err := e.evalBool(o.Cond, b); err == nil && v {
				out = append(out, b)
			}
		}
		return out

	case *Extend:
		var out []Binding
		for _, b := range e.eval(o.Inner, input) {
			t, err := e.evalTerm(o.E, b)
			if err != nil {
				out = append(out, b) // expression error: variable stays unbound
				continue
			}
			if nb := b.extend(o.Var, t); nb != nil {
				out = append(out, nb)
			}
		}
		return out

	case *Project:
		// Lateral projection: inner variables outside Vars are dropped, but
		// the variables already bound by the *input* solution survive, so
		// that eval(Project, input) = join(input, project(eval(inner))).
		var out []Binding
		for _, b := range input {
			for _, row := range e.eval(o.Inner, []Binding{b}) {
				nb := make(Binding, len(b)+len(o.Vars))
				for k, v := range b {
					nb[k] = v
				}
				ok := true
				for _, v := range o.Vars {
					if t, bound := row[v]; bound {
						if old, exists := nb[v]; exists && old != t {
							ok = false
							break
						}
						nb[v] = t
					}
				}
				if ok {
					out = append(out, nb)
				}
			}
		}
		return out

	case *Distinct:
		seen := make(map[string]struct{})
		var out []Binding
		for _, b := range e.eval(o.Inner, input) {
			k := bindingKey(b)
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, b)
			}
		}
		return out

	case *GroupCount:
		// Grouping is lateral as well: groups form within each input
		// solution, whose bindings survive into the output rows.
		var out []Binding
		for _, in := range input {
			groups := make(map[string]Binding)
			counts := make(map[string]int)
			var order []string
			for _, b := range e.eval(o.Inner, []Binding{in}) {
				proj := make(Binding, len(o.By))
				for _, v := range o.By {
					if t, ok := b[v]; ok {
						proj[v] = t
					}
				}
				k := bindingKey(proj)
				if _, ok := groups[k]; !ok {
					groups[k] = proj
					order = append(order, k)
				}
				counts[k]++
			}
			for _, k := range order {
				row := groups[k].extend(o.CountVar, rdf.NewInteger(int64(counts[k])))
				if m := merge(in, row); m != nil {
					out = append(out, m)
				}
			}
		}
		return out

	case *Table:
		var out []Binding
		for _, b := range input {
			for _, row := range o.Rows {
				if m := merge(b, row); m != nil {
					out = append(out, m)
				}
			}
		}
		return out

	case *AllNodes:
		nodes := e.g.NodeIDs()
		var out []Binding
		for _, b := range input {
			if t, bound := b[o.Var]; bound {
				if id := e.g.LookupTerm(t); id != rdfgraph.NoID && e.g.IsNode(id) {
					out = append(out, b)
				}
				continue
			}
			for _, n := range nodes {
				out = append(out, mustExtend(b, o.Var, e.g.Term(n)))
			}
		}
		return out

	case *PathTrace:
		return e.evalPathTrace(o, input)
	}
	panic("sparql: unknown operator")
}

func mustExtend(b Binding, v string, t rdf.Term) Binding {
	nb := b.extend(v, t)
	if nb == nil {
		panic("sparql: conflicting extend")
	}
	return nb
}

// matchPattern extends each input solution with all matches of one triple
// pattern (plain predicate or property path).
func (e *evaluator) matchPattern(p TriplePattern, input []Binding) []Binding {
	var out []Binding
	for _, b := range input {
		if p.Path != nil {
			out = e.matchPath(p, b, out)
			continue
		}
		out = e.matchPlain(p, b, out)
	}
	return out
}

// resolve returns the constant value of a position under a binding, if any.
func resolve(tv TermOrVar, b Binding) (rdf.Term, bool) {
	if !tv.IsVar() {
		return tv.Term, true
	}
	t, ok := b[tv.Var]
	return t, ok
}

func (e *evaluator) matchPlain(p TriplePattern, b Binding, out []Binding) []Binding {
	g := e.g
	s, sOK := resolve(p.S, b)
	pr, pOK := resolve(p.P, b)
	o, oOK := resolve(p.O, b)

	emit := func(st, pt, ot rdf.Term) {
		nb := b
		if p.S.IsVar() {
			if nb = nb.extend(p.S.Var, st); nb == nil {
				return
			}
		}
		if p.P.IsVar() {
			if nb = nb.extend(p.P.Var, pt); nb == nil {
				return
			}
		}
		if p.O.IsVar() {
			if nb = nb.extend(p.O.Var, ot); nb == nil {
				return
			}
		}
		out = append(out, nb)
	}

	switch {
	case sOK && pOK && oOK:
		if g.Has(rdf.T(s, pr, o)) {
			emit(s, pr, o)
		}
	case sOK && pOK:
		sid, pid := g.LookupTerm(s), g.LookupTerm(pr)
		if sid == rdfgraph.NoID || pid == rdfgraph.NoID {
			return out
		}
		var objs []rdfgraph.ID
		g.Objects(sid, pid, func(oid rdfgraph.ID) { objs = append(objs, oid) })
		sortIDs(objs)
		for _, oid := range objs {
			emit(s, pr, g.Term(oid))
		}
	case pOK && oOK:
		pid, oid := g.LookupTerm(pr), g.LookupTerm(o)
		if pid == rdfgraph.NoID || oid == rdfgraph.NoID {
			return out
		}
		var subs []rdfgraph.ID
		g.Subjects(pid, oid, func(sid rdfgraph.ID) { subs = append(subs, sid) })
		sortIDs(subs)
		for _, sid := range subs {
			emit(g.Term(sid), pr, o)
		}
	case pOK:
		pid := g.LookupTerm(pr)
		if pid == rdfgraph.NoID {
			return out
		}
		for _, edge := range g.EdgesByPredicate(pid) {
			emit(g.Term(edge.S), pr, g.Term(edge.O))
		}
	case sOK:
		sid := g.LookupTerm(s)
		if sid == rdfgraph.NoID {
			return out
		}
		g.PredicatesFrom(sid, func(pid, oid rdfgraph.ID) {
			emit(s, g.Term(pid), g.Term(oid))
		})
	case oOK:
		oid := g.LookupTerm(o)
		if oid == rdfgraph.NoID {
			return out
		}
		g.PredicatesTo(oid, func(sid, pid rdfgraph.ID) {
			emit(g.Term(sid), g.Term(pid), o)
		})
	default:
		g.EachTriple(func(sid, pid, oid rdfgraph.ID) {
			emit(g.Term(sid), g.Term(pid), g.Term(oid))
		})
	}
	return out
}

func (e *evaluator) matchPath(p TriplePattern, b Binding, out []Binding) []Binding {
	g := e.g
	s, sOK := resolve(p.S, b)
	o, oOK := resolve(p.O, b)
	pe := e.pathEval(p.Path)

	emit := func(st, ot rdf.Term) {
		nb := b
		if p.S.IsVar() {
			if nb = nb.extend(p.S.Var, st); nb == nil {
				return
			}
		}
		if p.O.IsVar() {
			if nb = nb.extend(p.O.Var, ot); nb == nil {
				return
			}
		}
		out = append(out, nb)
	}

	switch {
	case sOK:
		for _, oid := range pe.Eval(g.TermID(s)) {
			ot := g.Term(oid)
			if oOK && ot != o {
				continue
			}
			emit(s, ot)
		}
	case oOK:
		inv := e.pathEval(paths.Inverse{X: p.Path})
		for _, sid := range inv.Eval(g.TermID(o)) {
			emit(g.Term(sid), o)
		}
	default:
		pe.AllPairs(func(a, bID rdfgraph.ID) {
			emit(g.Term(a), g.Term(bID))
		})
	}
	return out
}

// evalPathTrace implements Q_E (Lemma 5.1): pair rows relate ⟦E⟧G
// endpoints, triple rows enumerate graph(paths(E, G, a, b)) per endpoint
// pair.
func (e *evaluator) evalPathTrace(o *PathTrace, input []Binding) []Binding {
	g := e.g
	pe := e.pathEval(o.Path)
	var out []Binding
	for _, b := range input {
		tTerm, tOK := b[o.TVar]
		hTerm, hOK := b[o.HVar]

		var sources []rdfgraph.ID
		if tOK {
			sources = []rdfgraph.ID{g.TermID(tTerm)}
		} else if hOK {
			// Only the head is bound: find sources via the inverse path.
			inv := e.pathEval(paths.Inverse{X: o.Path})
			sources = inv.Eval(g.TermID(hTerm))
		} else {
			sources = g.NodeIDs()
		}
		for _, a := range sources {
			row := b
			if !tOK {
				if row = row.extend(o.TVar, g.Term(a)); row == nil {
					continue
				}
			}
			for _, h := range pe.Eval(a) {
				ht := g.Term(h)
				if hOK && ht != hTerm {
					continue
				}
				pairRow := row
				if !hOK {
					if pairRow = pairRow.extend(o.HVar, ht); pairRow == nil {
						continue
					}
				}
				if o.WithPairs {
					out = append(out, pairRow)
				}
				for _, tr := range pe.Trace(a, h) {
					tb := pairRow.extend(o.SVar, tr.S)
					if tb == nil {
						continue
					}
					if tb = tb.extend(o.PVar, tr.P); tb == nil {
						continue
					}
					if tb = tb.extend(o.OVar, tr.O); tb == nil {
						continue
					}
					out = append(out, tb)
				}
			}
		}
	}
	return out
}

func sortIDs(ids []rdfgraph.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// bindingKey canonically serializes a binding for dedup and sorting.
func bindingKey(b Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(b[k].String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// CountLiteral parses a COUNT result produced by GroupCount.
func CountLiteral(t rdf.Term) (int, bool) {
	if !t.IsLiteral() || t.Datatype != rdf.XSDInteger {
		return 0, false
	}
	n, err := strconv.Atoi(t.Value)
	return n, err == nil
}
