package sparql

import (
	"fmt"
	"sort"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/shape"
)

// Render produces SPARQL concrete syntax for a query that selects the given
// variables from the algebra tree. Path-trace operators are expanded into
// the recursive construction of Lemma 5.1, which is why generated queries
// can run to hundreds of lines, exactly as the paper reports for its own
// translation.
func Render(op Op, vars ...string) string {
	r := &renderer{}
	var b strings.Builder
	b.WriteString("SELECT")
	if len(vars) == 0 {
		b.WriteString(" *")
	}
	for _, v := range vars {
		b.WriteString(" ?")
		b.WriteString(v)
	}
	b.WriteString(" WHERE {\n")
	r.render(&b, op, 1)
	b.WriteString("}\n")
	return b.String()
}

type renderer struct {
	fresh int
}

func (r *renderer) freshVar(prefix string) string {
	r.fresh++
	return fmt.Sprintf("%s_%d", prefix, r.fresh)
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (r *renderer) render(b *strings.Builder, op Op, depth int) {
	switch o := op.(type) {
	case *BGP:
		for _, p := range o.Patterns {
			indent(b, depth)
			b.WriteString(renderPosition(p.S))
			b.WriteByte(' ')
			if p.Path != nil {
				b.WriteString(p.Path.String())
			} else {
				b.WriteString(renderPosition(p.P))
			}
			b.WriteByte(' ')
			b.WriteString(renderPosition(p.O))
			b.WriteString(" .\n")
		}
	case *Join:
		r.render(b, o.L, depth)
		r.render(b, o.R, depth)
	case *LeftJoin:
		r.render(b, o.L, depth)
		indent(b, depth)
		b.WriteString("OPTIONAL {\n")
		r.render(b, o.R, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *Union:
		indent(b, depth)
		b.WriteString("{\n")
		r.render(b, o.L, depth+1)
		indent(b, depth)
		b.WriteString("} UNION {\n")
		r.render(b, o.R, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *Minus:
		r.render(b, o.L, depth)
		indent(b, depth)
		b.WriteString("MINUS {\n")
		r.render(b, o.R, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *Filter:
		r.render(b, o.Inner, depth)
		indent(b, depth)
		b.WriteString("FILTER (")
		r.renderExpr(b, o.Cond, depth)
		b.WriteString(")\n")
	case *Extend:
		r.render(b, o.Inner, depth)
		indent(b, depth)
		b.WriteString("BIND (")
		r.renderExpr(b, o.E, depth)
		b.WriteString(" AS ?")
		b.WriteString(o.Var)
		b.WriteString(")\n")
	case *Project:
		indent(b, depth)
		b.WriteString("{ SELECT")
		for _, v := range o.Vars {
			b.WriteString(" ?")
			b.WriteString(v)
		}
		b.WriteString(" WHERE {\n")
		r.render(b, o.Inner, depth+1)
		indent(b, depth)
		b.WriteString("} }\n")
	case *Distinct:
		indent(b, depth)
		b.WriteString("{ SELECT DISTINCT * WHERE {\n")
		r.render(b, o.Inner, depth+1)
		indent(b, depth)
		b.WriteString("} }\n")
	case *GroupCount:
		indent(b, depth)
		b.WriteString("{ SELECT")
		for _, v := range o.By {
			b.WriteString(" ?")
			b.WriteString(v)
		}
		fmt.Fprintf(b, " (COUNT(*) AS ?%s) WHERE {\n", o.CountVar)
		r.render(b, o.Inner, depth+1)
		indent(b, depth)
		b.WriteString("} GROUP BY")
		for _, v := range o.By {
			b.WriteString(" ?")
			b.WriteString(v)
		}
		b.WriteString(" }\n")
	case *Table:
		indent(b, depth)
		if len(o.Rows) == 0 {
			b.WriteString("VALUES () { }\n")
			return
		}
		var vars []string
		for v := range o.Rows[0] {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		b.WriteString("VALUES (")
		for i, v := range vars {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString("?" + v)
		}
		b.WriteString(") {")
		for _, row := range o.Rows {
			b.WriteString(" (")
			for i, v := range vars {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(row[v].String())
			}
			b.WriteString(")")
		}
		b.WriteString(" }\n")
	case *AllNodes:
		p1, o1, s2, p2 := r.freshVar("p"), r.freshVar("o"), r.freshVar("s"), r.freshVar("p")
		indent(b, depth)
		fmt.Fprintf(b, "{ SELECT DISTINCT ?%s WHERE { { ?%s ?%s ?%s } UNION { ?%s ?%s ?%s } } }\n",
			o.Var, o.Var, p1, o1, s2, p2, o.Var)
	case *PathTrace:
		r.renderTrace(b, o.Path, o.TVar, o.SVar, o.PVar, o.OVar, o.HVar, o.WithPairs, depth)
	default:
		panic("sparql: unknown operator in render")
	}
}

func renderPosition(tv TermOrVar) string {
	if tv.IsVar() {
		return "?" + tv.Var
	}
	return tv.Term.String()
}

func (r *renderer) renderExpr(b *strings.Builder, e Expr, depth int) {
	switch x := e.(type) {
	case *VarExpr:
		b.WriteString("?" + x.Name)
	case *ConstExpr:
		b.WriteString(x.Term.String())
	case *Cmp:
		ops := map[CmpOp]string{
			CmpEq: " = ", CmpNeq: " != ", CmpLess: " < ", CmpLessEq: " <= ",
			CmpNotLess: " < ", CmpNotLessEq: " <= ",
		}
		if x.Op == CmpNotLess || x.Op == CmpNotLessEq {
			b.WriteString("!(")
		}
		r.renderExpr(b, x.L, depth)
		b.WriteString(ops[x.Op])
		r.renderExpr(b, x.R, depth)
		if x.Op == CmpNotLess || x.Op == CmpNotLessEq {
			b.WriteString(")")
		}
	case *AndExpr:
		for i, c := range x.Xs {
			if i > 0 {
				b.WriteString(" && ")
			}
			b.WriteString("(")
			r.renderExpr(b, c, depth)
			b.WriteString(")")
		}
	case *OrExpr:
		for i, c := range x.Xs {
			if i > 0 {
				b.WriteString(" || ")
			}
			b.WriteString("(")
			r.renderExpr(b, c, depth)
			b.WriteString(")")
		}
	case *NotExpr:
		b.WriteString("!(")
		r.renderExpr(b, x.X, depth)
		b.WriteString(")")
	case *BoundExpr:
		b.WriteString("bound(?" + x.Name + ")")
	case *SameLangExpr:
		b.WriteString("lang(")
		r.renderExpr(b, x.L, depth)
		b.WriteString(") = lang(")
		r.renderExpr(b, x.R, depth)
		b.WriteString(") && lang(")
		r.renderExpr(b, x.L, depth)
		b.WriteString(`) != ""`)
	case *InExpr:
		r.renderExpr(b, x.X, depth)
		if x.Neg {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		for i, t := range x.Terms {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
		b.WriteString(")")
	case *ExistsExpr:
		if x.Neg {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS {\n")
		r.render(b, x.Op, depth+1)
		indent(b, depth)
		b.WriteString("}")
	case *NodeTestExpr:
		b.WriteString(renderNodeTest(x.Name, x.Test))
	default:
		panic("sparql: unknown expression in render")
	}
}

// renderNodeTest maps shape node tests to SPARQL filter functions.
func renderNodeTest(v string, t shape.NodeTest) string {
	q := "?" + v
	switch x := t.(type) {
	case shape.IsIRI:
		return "isIRI(" + q + ")"
	case shape.IsLiteral:
		return "isLiteral(" + q + ")"
	case shape.IsBlank:
		return "isBlank(" + q + ")"
	case shape.Datatype:
		return "datatype(" + q + ") = <" + x.IRI + ">"
	case shape.HasLang:
		return `langMatches(lang(` + q + `), "` + x.Tag + `")`
	case *shape.Pattern:
		return `regex(str(` + q + `), "` + strings.ReplaceAll(x.Source, `"`, `\"`) + `")`
	case shape.MinLength:
		return fmt.Sprintf("strlen(str(%s)) >= %d", q, x.N)
	case shape.MaxLength:
		return fmt.Sprintf("strlen(str(%s)) <= %d", q, x.N)
	case shape.MinExclusive:
		return q + " > " + x.Bound.String()
	case shape.MaxExclusive:
		return q + " < " + x.Bound.String()
	case shape.MinInclusive:
		return q + " >= " + x.Bound.String()
	case shape.MaxInclusive:
		return q + " <= " + x.Bound.String()
	case shape.AnyOf:
		parts := make([]string, len(x.Tests))
		for i, nt := range x.Tests {
			parts[i] = renderNodeTest(v, nt)
		}
		return "(" + strings.Join(parts, " || ") + ")"
	default:
		return "true # unrenderable node test: " + t.String()
	}
}

// renderTrace expands the recursive construction of Q_E from the proof of
// Lemma 5.1 into SPARQL text.
func (r *renderer) renderTrace(b *strings.Builder, e paths.Expr, t, s, p, o, h string, withPairs bool, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "# Q_E for E = %s (Lemma 5.1)\n", e)
	r.renderTraceInner(b, e, t, s, p, o, h, depth)
	if withPairs {
		indent(b, depth)
		b.WriteString("# plus endpoint pairs:\n")
		indent(b, depth)
		fmt.Fprintf(b, "{ ?%s %s ?%s }\n", t, e, h)
	}
}

func (r *renderer) renderTraceInner(b *strings.Builder, e paths.Expr, t, s, p, o, h string, depth int) {
	switch x := e.(type) {
	case paths.Prop:
		indent(b, depth)
		fmt.Fprintf(b, "{ SELECT (?%s AS ?%s) ?%s (%s AS ?%s) ?%s (?%s AS ?%s) WHERE { ?%s <%s> ?%s } }\n",
			s, t, s, paths.P(x.IRI), p, o, o, h, s, x.IRI, o)
	case paths.Inverse:
		t2, h2 := r.freshVar("t"), r.freshVar("h")
		indent(b, depth)
		fmt.Fprintf(b, "{ SELECT (?%s AS ?%s) ?%s ?%s ?%s (?%s AS ?%s) WHERE {\n", h2, t, s, p, o, t2, h)
		r.renderTraceInner(b, x.X, t2, s, p, o, h2, depth+1)
		indent(b, depth)
		b.WriteString("} }\n")
	case paths.Seq:
		mid := r.freshVar("m")
		indent(b, depth)
		b.WriteString("{\n")
		// Triples contributed by the left component...
		r.renderTraceInner(b, x.Left, t, s, p, o, mid, depth+1)
		indent(b, depth+1)
		fmt.Fprintf(b, "?%s %s ?%s .\n", mid, x.Right, h)
		indent(b, depth)
		b.WriteString("} UNION {\n")
		// ...and by the right component.
		indent(b, depth+1)
		fmt.Fprintf(b, "?%s %s ?%s .\n", t, x.Left, mid)
		r.renderTraceInner(b, x.Right, mid, s, p, o, h, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case paths.Alt:
		indent(b, depth)
		b.WriteString("{\n")
		r.renderTraceInner(b, x.Left, t, s, p, o, h, depth+1)
		indent(b, depth)
		b.WriteString("} UNION {\n")
		r.renderTraceInner(b, x.Right, t, s, p, o, h, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case paths.Star:
		x1, x2 := r.freshVar("x"), r.freshVar("x")
		indent(b, depth)
		fmt.Fprintf(b, "?%s %s ?%s . ?%s %s ?%s .\n", t, e, x1, x2, e, h)
		r.renderTraceInner(b, x.X, x1, s, p, o, x2, depth)
	case paths.ZeroOrOne:
		r.renderTraceInner(b, x.X, t, s, p, o, h, depth)
	default:
		panic("sparql: unknown path expression in trace rendering")
	}
}
