package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Tracer receives named stage durations. internal/core emits extraction
// sub-stages through this interface so it needs no knowledge of HTTP,
// headers, or logging; a nil *Trace is a valid no-op Tracer, so call
// sites never branch on instrumentation being present.
type Tracer interface {
	Observe(stage string, d time.Duration)
}

// Stage is one named timing within a Trace.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Trace records the stage timings of one request in observation order.
// Create one per request (fragserver's observability middleware does),
// pass it down via NewContext, and render it as a Server-Timing header or
// structured log fields at the end. A Trace is safe for concurrent
// Observe calls; repeated observations of the same stage name accumulate
// into one entry, which is what parallel workers contributing to the same
// logical stage want.
type Trace struct {
	mu     sync.Mutex
	stages []Stage
	index  map[string]int

	// root is the request's span tree when the request was sampled for
	// hierarchical tracing, nil otherwise. Set once before the handler
	// runs (SetRoot), read concurrently afterwards — the *Span methods
	// are themselves concurrency-safe and nil-safe.
	root *Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{index: make(map[string]int)}
}

// SetRoot attaches the request's span tree root. Call before handing the
// trace to concurrent code; a nil root (unsampled request) is fine.
func (t *Trace) SetRoot(sp *Span) {
	if t == nil {
		return
	}
	t.root = sp
}

// Root returns the span-tree root for sampled requests, nil otherwise
// (including on a nil Trace) — and nil *Span methods no-op, so the
// result is usable unconditionally.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Observe adds d to the named stage, creating it on first observation.
// Observe on a nil Trace is a no-op.
func (t *Trace) Observe(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index[stage]; ok {
		t.stages[i].Dur += d
		return
	}
	t.index[stage] = len(t.stages)
	t.stages = append(t.stages, Stage{Name: stage, Dur: d})
}

// Start begins timing the named stage and returns the function that
// stops it: `defer tr.Start("extract")()` brackets a whole function,
// while assigning the stop to a variable brackets a region. Start on a
// nil Trace returns a no-op stop.
func (t *Trace) Start(stage string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.Observe(stage, time.Since(begin)) }
}

// StartSpan brackets a stage like Start while additionally opening a
// child span under the trace's root (when the request is sampled): the
// returned span is nil-safe and may be handed to deeper layers as a
// parent; the stop function ends the span and records the flat stage in
// one call. On a nil or unsampled trace the span is nil and stop only
// feeds the flat stage list (or nothing, on a nil trace).
func (t *Trace) StartSpan(stage string) (*Span, func()) {
	if t == nil {
		return nil, func() {}
	}
	sp := t.root.StartChild(stage)
	begin := time.Now()
	return sp, func() {
		t.Observe(stage, time.Since(begin))
		sp.End()
	}
}

// Stages returns a copy of the recorded stages in first-observation order.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Stage(nil), t.stages...)
}

// ServerTiming renders the trace as a Server-Timing header value
// (RFC-style `name;dur=millis` items, comma-separated), e.g.
//
//	parse;dur=0.11, extract;dur=41.52, serialize;dur=3.90
//
// Returns "" for an empty or nil trace, so callers can skip the header.
//
// Stage names are sanitized to RFC 9110 token characters before they
// reach the header: a name containing ';', '"', ',' or control bytes
// could otherwise inject extra Server-Timing parameters or split the
// header value, so every non-token byte is replaced with '_'.
func (t *Trace) ServerTiming() string {
	stages := t.Stages()
	if len(stages) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range stages {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.2f", sanitizeToken(s.Name), float64(s.Dur)/float64(time.Millisecond))
	}
	return b.String()
}

// sanitizeToken maps a stage name onto the header-token alphabet
// [A-Za-z0-9_.-], replacing everything else (';', '"', ',', spaces,
// control bytes) with '_'. Names that are already tokens — every stage
// the serving stack emits — come back unchanged without allocating.
func sanitizeToken(name string) string {
	clean := func(c byte) bool {
		return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
	}
	for i := 0; i < len(name); i++ {
		if clean(name[i]) {
			continue
		}
		out := []byte(name)
		for j := i; j < len(out); j++ {
			if !clean(out[j]) {
				out[j] = '_'
			}
		}
		return string(out)
	}
	return name
}

// LogArgs renders the trace as alternating key/value pairs for slog
// (`<stage>_ms` keys, millisecond float values), appendable to an access
// log line's argument list.
func (t *Trace) LogArgs() []any {
	stages := t.Stages()
	out := make([]any, 0, 2*len(stages))
	for _, s := range stages {
		out = append(out, s.Name+"_ms", float64(s.Dur)/float64(time.Millisecond))
	}
	return out
}

type traceCtxKey struct{}

// NewContext returns ctx carrying tr.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// FromContext returns the Trace carried by ctx, or nil — and since a nil
// Trace's methods are no-ops, the result is usable unconditionally.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}
