package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Tracer receives named stage durations. internal/core emits extraction
// sub-stages through this interface so it needs no knowledge of HTTP,
// headers, or logging; a nil *Trace is a valid no-op Tracer, so call
// sites never branch on instrumentation being present.
type Tracer interface {
	Observe(stage string, d time.Duration)
}

// Stage is one named timing within a Trace.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Trace records the stage timings of one request in observation order.
// Create one per request (fragserver's observability middleware does),
// pass it down via NewContext, and render it as a Server-Timing header or
// structured log fields at the end. A Trace is safe for concurrent
// Observe calls; repeated observations of the same stage name accumulate
// into one entry, which is what parallel workers contributing to the same
// logical stage want.
type Trace struct {
	mu     sync.Mutex
	stages []Stage
	index  map[string]int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{index: make(map[string]int)}
}

// Observe adds d to the named stage, creating it on first observation.
// Observe on a nil Trace is a no-op.
func (t *Trace) Observe(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index[stage]; ok {
		t.stages[i].Dur += d
		return
	}
	t.index[stage] = len(t.stages)
	t.stages = append(t.stages, Stage{Name: stage, Dur: d})
}

// Start begins timing the named stage and returns the function that
// stops it: `defer tr.Start("extract")()` brackets a whole function,
// while assigning the stop to a variable brackets a region. Start on a
// nil Trace returns a no-op stop.
func (t *Trace) Start(stage string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.Observe(stage, time.Since(begin)) }
}

// Stages returns a copy of the recorded stages in first-observation order.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Stage(nil), t.stages...)
}

// ServerTiming renders the trace as a Server-Timing header value
// (RFC-style `name;dur=millis` items, comma-separated), e.g.
//
//	parse;dur=0.11, extract;dur=41.52, serialize;dur=3.90
//
// Returns "" for an empty or nil trace, so callers can skip the header.
func (t *Trace) ServerTiming() string {
	stages := t.Stages()
	if len(stages) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range stages {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.2f", s.Name, float64(s.Dur)/float64(time.Millisecond))
	}
	return b.String()
}

// LogArgs renders the trace as alternating key/value pairs for slog
// (`<stage>_ms` keys, millisecond float values), appendable to an access
// log line's argument list.
func (t *Trace) LogArgs() []any {
	stages := t.Stages()
	out := make([]any, 0, 2*len(stages))
	for _, s := range stages {
		out = append(out, s.Name+"_ms", float64(s.Dur)/float64(time.Millisecond))
	}
	return out
}

type traceCtxKey struct{}

// NewContext returns ctx carrying tr.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// FromContext returns the Trace carried by ctx, or nil — and since a nil
// Trace's methods are no-ops, the result is usable unconditionally.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}
