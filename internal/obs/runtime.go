package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSamples names the runtime/metrics series the collector exports
// and the registry series each feeds. GC pauses arrive as a float64
// histogram; its count is exact and its sum is approximated from bucket
// midpoints (the runtime does not expose the exact total here).
var runtimeSamples = []struct {
	src  string
	name string
	help string
	kind string // "gauge" or "counter"
}{
	{"/sched/goroutines:goroutines", "runtime_goroutines",
		"Live goroutines, sampled at scrape time.", "gauge"},
	{"/memory/classes/heap/objects:bytes", "runtime_heap_objects_bytes",
		"Bytes occupied by live heap objects plus not-yet-reclaimed dead ones.", "gauge"},
	{"/memory/classes/total:bytes", "runtime_memory_total_bytes",
		"All memory mapped by the Go runtime (heap, stacks, metadata).", "gauge"},
	{"/gc/heap/allocs:bytes", "runtime_heap_allocs_bytes_total",
		"Cumulative bytes allocated on the heap since process start.", "counter"},
	{"/gc/cycles/total:gc-cycles", "runtime_gc_cycles_total",
		"Completed GC cycles since process start.", "counter"},
	{"/gc/pauses:seconds", "runtime_gc_pauses_total",
		"Stop-the-world GC pauses since process start.", "counter"},
	{"/gc/pauses:seconds", "runtime_gc_pause_seconds_total",
		"Approximate total stop-the-world GC pause seconds (histogram bucket midpoints).", "counter"},
}

// runtimeCollector reads the runtime/metrics samples at most once per
// refresh interval, so a registry with seven runtime series costs one
// metrics.Read per scrape rather than seven.
type runtimeCollector struct {
	mu      sync.Mutex
	samples []metrics.Sample
	last    time.Time
}

const runtimeRefresh = 250 * time.Millisecond

func (c *runtimeCollector) value(i int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.last) > runtimeRefresh {
		metrics.Read(c.samples)
		c.last = now
	}
	s := c.samples[i]
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	case metrics.KindFloat64Histogram:
		h := s.Value.Float64Histogram()
		if runtimeSamples[i].name == "runtime_gc_pauses_total" {
			var n uint64
			for _, c := range h.Counts {
				n += c
			}
			return float64(n)
		}
		// Approximate sum: counts × bucket midpoints. Buckets are
		// (Buckets[j], Buckets[j+1]] with possibly infinite outer edges;
		// clamp those to the adjacent finite edge.
		var sum float64
		for j, cnt := range h.Counts {
			if cnt == 0 {
				continue
			}
			lo, hi := h.Buckets[j], h.Buckets[j+1]
			mid := (lo + hi) / 2
			if isInf(lo) {
				mid = hi
			} else if isInf(hi) {
				mid = lo
			}
			sum += float64(cnt) * mid
		}
		return sum
	default:
		return 0
	}
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }

// RegisterRuntimeMetrics registers always-on process telemetry in the
// registry: goroutine count, heap and total memory gauges, cumulative
// allocation bytes, and GC cycle/pause counters, all sampled from
// runtime/metrics at scrape time. Unsupported series on older runtimes
// are skipped rather than exported as zeros.
func RegisterRuntimeMetrics(reg *Registry) {
	known := make(map[string]bool)
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	c := &runtimeCollector{samples: make([]metrics.Sample, len(runtimeSamples))}
	for i, rs := range runtimeSamples {
		c.samples[i].Name = rs.src
	}
	for i, rs := range runtimeSamples {
		if !known[rs.src] {
			continue
		}
		i := i
		fn := func() float64 { return c.value(i) }
		if rs.kind == "counter" {
			reg.CounterFunc(rs.name, rs.help, fn)
		} else {
			reg.GaugeFunc(rs.name, rs.help, fn)
		}
	}
}
