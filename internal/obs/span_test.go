package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestParseTraceparent tables the W3C validation rules: accepted values
// round-trip their IDs, rejected ones come back ok=false.
func TestParseTraceparent(t *testing.T) {
	const (
		tid = "4bf92f3577b34da6a3ce929d0e0e4736"
		sid = "00f067aa0ba902b7"
	)
	cases := []struct {
		name    string
		in      string
		ok      bool
		sampled bool
	}{
		{"valid sampled", "00-" + tid + "-" + sid + "-01", true, true},
		{"valid unsampled", "00-" + tid + "-" + sid + "-00", true, false},
		{"surrounding space", "  00-" + tid + "-" + sid + "-01  ", true, true},
		{"flags with extra bits", "00-" + tid + "-" + sid + "-09", true, true},
		{"future version", "cc-" + tid + "-" + sid + "-01", true, true},
		{"future version extra field", "cc-" + tid + "-" + sid + "-01-extra", true, true},
		{"version ff reserved", "ff-" + tid + "-" + sid + "-01", false, false},
		{"version 00 extra field", "00-" + tid + "-" + sid + "-01-extra", false, false},
		{"all-zero trace id", "00-00000000000000000000000000000000-" + sid + "-01", false, false},
		{"all-zero span id", "00-" + tid + "-0000000000000000-01", false, false},
		{"short trace id", "00-4bf92f3577b34da6-" + sid + "-01", false, false},
		{"long span id", "00-" + tid + "-" + sid + "ff-01", false, false},
		{"non-hex trace id", "00-" + strings.Repeat("zz", 16) + "-" + sid + "-01", false, false},
		{"non-hex version", "0x-" + tid + "-" + sid + "-01", false, false},
		{"non-hex flags", "00-" + tid + "-" + sid + "-zz", false, false},
		{"too few fields", "00-" + tid + "-" + sid, false, false},
		{"empty", "", false, false},
		{"garbage", "hello world", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := ParseTraceparent(tc.in)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			}
			if !ok {
				return
			}
			if sc.TraceID.String() != tid || sc.SpanID.String() != sid {
				t.Errorf("IDs = %s/%s, want %s/%s", sc.TraceID, sc.SpanID, tid, sid)
			}
			if sc.Sampled != tc.sampled {
				t.Errorf("sampled = %v, want %v", sc.Sampled, tc.sampled)
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, ok := ParseTraceparent(in)
	if !ok {
		t.Fatal("valid header rejected")
	}
	if got := sc.Traceparent(); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
}

// TestSpanTraceContinuation checks that a parent context threads through:
// the trace inherits the caller's trace ID and the root span points back
// at the caller's span.
func TestSpanTraceContinuation(t *testing.T) {
	sc, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	st := NewSpanTrace("req", sc)
	if st.ID() != sc.TraceID {
		t.Errorf("trace ID = %s, want inherited %s", st.ID(), sc.TraceID)
	}
	if st.Root().parent != sc.SpanID {
		t.Errorf("root parent = %s, want caller span %s", st.Root().parent, sc.SpanID)
	}
	if !strings.Contains(st.Traceparent(), sc.TraceID.String()) {
		t.Errorf("response traceparent %q must carry the inherited trace ID", st.Traceparent())
	}

	// Without a parent, a fresh non-zero trace ID is generated.
	st2 := NewSpanTrace("req", SpanContext{})
	if st2.ID().IsZero() {
		t.Error("fresh trace must not have the all-zero ID")
	}
	if st2.ID() == st.ID() {
		t.Error("fresh trace must not collide with the inherited one")
	}
}

func TestSpanTree(t *testing.T) {
	st := NewSpanTrace("req", SpanContext{})
	root := st.Root()
	a := root.StartChild("a")
	b := root.StartChild("b")
	ab := a.StartChild("a.1")
	ab.Add(3 * time.Millisecond)
	ab.End() // End after Add: both contribute
	a.End()
	b.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "a" || kids[1].Name() != "b" {
		t.Fatalf("children = %v, want [a b] in creation order", kids)
	}
	if got := kids[0].Children(); len(got) != 1 || got[0].Name() != "a.1" {
		t.Fatalf("grandchildren = %v", got)
	}
	if d := kids[0].Children()[0].Duration(); d < 3*time.Millisecond {
		t.Errorf("a.1 duration = %v, want >= 3ms (Add + End accumulate)", d)
	}
	if st.NumSpans() != 4 {
		t.Errorf("NumSpans = %d, want 4", st.NumSpans())
	}

	// Double End must not double-count.
	d := a.Duration()
	a.End()
	if a.Duration() != d {
		t.Error("second End must be a no-op")
	}

	// Span IDs are unique and non-zero across the tree.
	seen := map[SpanID]bool{}
	for _, s := range []*Span{root, a, b, ab} {
		if s.ID().IsZero() || seen[s.ID()] {
			t.Errorf("span %s has zero/duplicate ID %s", s.Name(), s.ID())
		}
		seen[s.ID()] = true
	}
}

// TestSpanConcurrentChildren opens children of one parent from many
// goroutines at once — under -race this proves the CAS sibling list and
// the Observe get-or-create path are sound.
func TestSpanConcurrentChildren(t *testing.T) {
	const goroutines, perG = 8, 200
	st := NewSpanTrace("req", SpanContext{})
	root := st.Root()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c := root.StartChild("unit")
				c.Add(time.Microsecond)
				c.End()
				root.Observe("accum", time.Microsecond)
				root.AddAttrInt("units", 1)
			}
		}()
	}
	wg.Wait()

	kids := root.Children()
	if want := goroutines*perG + 1; len(kids) != want {
		t.Errorf("children = %d, want %d (units + one accum)", len(kids), want)
	}
	var accum *Span
	for _, c := range kids {
		if c.Name() == "accum" {
			if accum != nil {
				t.Fatal("Observe must accumulate into a single child")
			}
			accum = c
		}
	}
	if accum == nil {
		t.Fatal("no accum child")
	}
	if got := accum.Duration(); got != goroutines*perG*time.Microsecond {
		t.Errorf("accum duration = %v, want %v", got, goroutines*perG*time.Microsecond)
	}
	attrs := root.Attrs()
	if len(attrs) != 1 || attrs[0].Int != goroutines*perG {
		t.Errorf("units attr = %v, want %d", attrs, goroutines*perG)
	}
}

// TestSpanNilSafety drives every method through a nil *Span.
func TestSpanNilSafety(t *testing.T) {
	var s *Span
	if c := s.StartChild("x"); c != nil {
		t.Error("nil span must return nil children")
	}
	s.End()
	s.Add(time.Second)
	s.Observe("x", time.Second)
	s.SetAttr("k", "v")
	s.SetAttrInt("k", 1)
	s.AddAttrInt("k", 1)
	if s.Attrs() != nil || s.Children() != nil {
		t.Error("nil span must have no attrs or children")
	}
	if s.Name() != "" || !s.ID().IsZero() || s.Duration() != 0 || !s.Start().IsZero() {
		t.Error("nil span accessors must return zero values")
	}
	var tracer Tracer = s
	tracer.Observe("x", time.Second)
}

func TestTopSpansAndWriteTree(t *testing.T) {
	st := NewSpanTrace("req", SpanContext{})
	root := st.Root()
	for _, c := range []struct {
		name string
		d    time.Duration
	}{{"fast", time.Millisecond}, {"slow", 30 * time.Millisecond}, {"mid", 10 * time.Millisecond}} {
		sp := root.StartChild(c.name)
		sp.Add(c.d)
	}
	root.End()

	top := st.TopSpans(2)
	if len(top) != 2 || !strings.HasPrefix(top[0], "slow=") || !strings.HasPrefix(top[1], "mid=") {
		t.Errorf("TopSpans = %v, want [slow mid]", top)
	}

	var b strings.Builder
	st.WriteTree(&b)
	out := b.String()
	for _, want := range []string{"trace " + st.ID().String(), "req", "  slow", "  mid", "  fast"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTree output missing %q:\n%s", want, out)
		}
	}
}
