package obs

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race (make race) this doubles as the data-race proof for the
// atomic metric types.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 5000
	var c Counter
	var g Gauge
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := h.Sum(); got != goroutines*perG {
		t.Errorf("histogram sum = %g, want %d", got, goroutines*perG)
	}
}

// TestHistogramBounds pins the bucket boundary semantics: le is an
// inclusive upper bound, values beyond the last bound land in +Inf only.
func TestHistogramBounds(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{
		0.05, // < first bound        → bucket 0
		0.1,  // == first bound       → bucket 0 (inclusive)
		0.2,  // between bounds       → bucket 1
		1,    // == second bound      → bucket 1
		10,   // == last bound        → bucket 2
		11,   // beyond last bound    → +Inf only
	} {
		h.Observe(v)
	}
	want := []uint64{2, 4, 5, 6} // cumulative per le=0.1, 1, 10, +Inf
	got := h.Cumulative()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	const wantSum = 0.05 + 0.1 + 0.2 + 1 + 10 + 11
	if diff := h.Sum() - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds must panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{0.5, 2})
	h.ObserveDuration(time.Second)
	if got := h.Cumulative(); got[0] != 0 || got[1] != 1 {
		t.Errorf("1s observation landed wrong: %v", got)
	}
}

// TestRegistryGolden renders a registry with deterministic values and
// compares the whole Prometheus text output byte for byte.
func TestRegistryGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", L("route", "/fragment"), L("status", "200")).Add(3)
	r.Counter("app_requests_total", "Requests served.", L("route", "/node"), L("status", "404")).Inc()
	r.Gauge("app_inflight", "Requests in flight.").Set(2)
	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() float64 { return 42.5 })
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{route="/fragment",status="200"} 3
app_requests_total{route="/node",status="404"} 1
# HELP app_inflight Requests in flight.
# TYPE app_inflight gauge
app_inflight 2
# HELP app_uptime_seconds Uptime.
# TYPE app_uptime_seconds gauge
app_uptime_seconds 42.5
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 1
app_latency_seconds_bucket{le="0.1"} 3
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 5.105
app_latency_seconds_count 4
`
	if b.String() != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.")
	b := r.Counter("x_total", "X.")
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("aliased counters must share state")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Esc.", L("q", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{q="a\"b\\c\nd"} 1`) {
		t.Errorf("label escaping wrong:\n%s", b.String())
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "H.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("handler body missing metric:\n%s", rec.Body.String())
	}
}

// TestPublishExpvar publishes two registries under one name: the second
// must win without panicking (expvar itself forbids double Publish).
func TestPublishExpvar(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("gen_total", "G.").Inc()
	r1.PublishExpvar("obs_test_registry")
	r2 := NewRegistry()
	r2.Counter("gen_total", "G.").Add(7)
	r2.PublishExpvar("obs_test_registry")

	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not JSON: %v", err)
	}
	if got, ok := snap["gen_total"].(float64); !ok || got != 7 {
		t.Errorf("expvar gen_total = %v, want 7 (latest registry must win)", snap["gen_total"])
	}
}
