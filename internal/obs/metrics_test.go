package obs

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race (make race) this doubles as the data-race proof for the
// atomic metric types.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 5000
	var c Counter
	var g Gauge
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := h.Sum(); got != goroutines*perG {
		t.Errorf("histogram sum = %g, want %d", got, goroutines*perG)
	}
}

// TestHistogramBounds pins the bucket boundary semantics: le is an
// inclusive upper bound, values beyond the last bound land in +Inf only.
func TestHistogramBounds(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{
		0.05, // < first bound        → bucket 0
		0.1,  // == first bound       → bucket 0 (inclusive)
		0.2,  // between bounds       → bucket 1
		1,    // == second bound      → bucket 1
		10,   // == last bound        → bucket 2
		11,   // beyond last bound    → +Inf only
	} {
		h.Observe(v)
	}
	want := []uint64{2, 4, 5, 6} // cumulative per le=0.1, 1, 10, +Inf
	got := h.Cumulative()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	const wantSum = 0.05 + 0.1 + 0.2 + 1 + 10 + 11
	if diff := h.Sum() - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds must panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{0.5, 2})
	h.ObserveDuration(time.Second)
	if got := h.Cumulative(); got[0] != 0 || got[1] != 1 {
		t.Errorf("1s observation landed wrong: %v", got)
	}
}

// TestRegistryGolden renders a registry with deterministic values and
// compares the whole Prometheus text output byte for byte. Families are
// rendered in sorted name order regardless of registration order — the
// registry is populated "latency before inflight" here on purpose.
func TestRegistryGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	r.Counter("app_requests_total", "Requests served.", L("route", "/fragment"), L("status", "200")).Add(3)
	r.Counter("app_requests_total", "Requests served.", L("route", "/node"), L("status", "404")).Inc()
	r.Gauge("app_inflight", "Requests in flight.").Set(2)
	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() float64 { return 42.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_inflight Requests in flight.
# TYPE app_inflight gauge
app_inflight 2
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 1
app_latency_seconds_bucket{le="0.1"} 3
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 5.105
app_latency_seconds_count 4
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{route="/fragment",status="200"} 3
app_requests_total{route="/node",status="404"} 1
# HELP app_uptime_seconds Uptime.
# TYPE app_uptime_seconds gauge
app_uptime_seconds 42.5
`
	if b.String() != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestOpenMetricsGolden pins the OpenMetrics exposition: counter TYPE
// lines under the base name (no _total), exemplar suffixes on buckets
// that have one, and the # EOF terminator.
func TestOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("om_requests_total", "Requests served.").Add(2)
	h := r.Histogram("om_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.ObserveExemplar(0.005, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveExemplar(0.05, "00f067aa0ba902b700f067aa0ba902b7")
	h.Observe(0.05) // no exemplar: earlier one must survive
	h.ObserveExemplar(5, "")

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP om_latency_seconds Request latency.
# TYPE om_latency_seconds histogram
om_latency_seconds_bucket{le="0.01"} 1 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.005
om_latency_seconds_bucket{le="0.1"} 3 # {trace_id="00f067aa0ba902b700f067aa0ba902b7"} 0.05
om_latency_seconds_bucket{le="1"} 3
om_latency_seconds_bucket{le="+Inf"} 4
om_latency_seconds_sum 5.105
om_latency_seconds_count 4
# HELP om_requests Requests served.
# TYPE om_requests counter
om_requests_total 2
# EOF
`
	if b.String() != want {
		t.Errorf("openmetrics text mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestHandlerNegotiation checks that the /metrics handler serves
// OpenMetrics (with exemplars) only when the scraper asks for it.
func TestHandlerNegotiation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("neg_latency_seconds", "L.", []float64{1})
	h.ObserveExemplar(0.5, "4bf92f3577b34da6a3ce929d0e0e4736")

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;q=0.5")
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("Content-Type = %q, want openmetrics", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.5`) {
		t.Errorf("openmetrics body missing exemplar:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("openmetrics body missing EOF terminator:\n%s", body)
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body = rec.Body.String()
	if strings.Contains(body, "trace_id") || strings.Contains(body, "# EOF") {
		t.Errorf("classic exposition must not carry exemplars or EOF:\n%s", body)
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.")
	b := r.Counter("x_total", "X.")
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("aliased counters must share state")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Esc.", L("q", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{q="a\"b\\c\nd"} 1`) {
		t.Errorf("label escaping wrong:\n%s", b.String())
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "H.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("handler body missing metric:\n%s", rec.Body.String())
	}
}

// TestPublishExpvar publishes two registries under one name: the second
// must win without panicking (expvar itself forbids double Publish).
func TestPublishExpvar(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("gen_total", "G.").Inc()
	r1.PublishExpvar("obs_test_registry")
	r2 := NewRegistry()
	r2.Counter("gen_total", "G.").Add(7)
	r2.PublishExpvar("obs_test_registry")

	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not JSON: %v", err)
	}
	if got, ok := snap["gen_total"].(float64); !ok || got != 7 {
		t.Errorf("expvar gen_total = %v, want 7 (latest registry must win)", snap["gen_total"])
	}
}
