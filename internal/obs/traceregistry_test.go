package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func finishedTrace(name string) *SpanTrace {
	st := NewSpanTrace(name, SpanContext{})
	sp := st.Root().StartChild("work")
	sp.Add(time.Millisecond)
	sp.End()
	st.Root().End()
	return st
}

// TestRegistryEviction fills the ring past capacity and checks that the
// oldest routine trace goes first while notable traces survive.
func TestRegistryEviction(t *testing.T) {
	r := NewTraceRegistry(3)
	notable := finishedTrace("err")
	r.Keep(notable, true)
	var routine []*SpanTrace
	for i := 0; i < 4; i++ {
		st := finishedTrace(fmt.Sprintf("ok-%d", i))
		routine = append(routine, st)
		r.Keep(st, false)
	}

	stats := r.Stats()
	if stats.Kept != 3 || stats.Sampled != 5 || stats.Evicted != 2 {
		t.Errorf("stats = %+v, want kept=3 sampled=5 evicted=2", stats)
	}
	// The notable trace outlives every routine one.
	if _, ok := r.Get(notable.ID().String()); !ok {
		t.Error("notable trace evicted before routine ones")
	}
	// Oldest routine traces went first: ok-0 and ok-1 gone, ok-2/ok-3 kept.
	for i, st := range routine {
		_, ok := r.Get(st.ID().String())
		if want := i >= 2; ok != want {
			t.Errorf("routine trace %d kept=%v, want %v (oldest evicted first)", i, ok, want)
		}
	}

	// A ring full of notable traces evicts the oldest notable.
	r2 := NewTraceRegistry(2)
	first := finishedTrace("n0")
	r2.Keep(first, true)
	r2.Keep(finishedTrace("n1"), true)
	r2.Keep(finishedTrace("n2"), true)
	if _, ok := r2.Get(first.ID().String()); ok {
		t.Error("oldest notable must be evicted when only notables remain")
	}
}

func TestRegistryStatsAndNil(t *testing.T) {
	var r *TraceRegistry
	r.Keep(finishedTrace("x"), false) // no-ops
	r.MarkDropped()
	if s := r.Stats(); s != (TraceStats{}) {
		t.Errorf("nil registry stats = %+v", s)
	}
	if _, ok := r.Get("deadbeef"); ok {
		t.Error("nil registry must hold nothing")
	}
	if r.Summaries() != nil {
		t.Error("nil registry must list nothing")
	}

	r2 := NewTraceRegistry(0) // default capacity
	r2.Keep(finishedTrace("a"), false)
	r2.MarkDropped()
	r2.MarkDropped()
	s := r2.Stats()
	if s.Cap != 128 || s.Sampled != 1 || s.Dropped != 2 || s.Kept != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestRegistryHandlerJSON exercises both handler modes: the listing
// (summaries newest-first plus stats) and the OTLP-shaped single fetch.
func TestRegistryHandlerJSON(t *testing.T) {
	r := NewTraceRegistry(8)
	old := finishedTrace("old")
	r.Keep(old, false)
	st := NewSpanTrace("GET /fragment", SpanContext{})
	sh := st.Root().StartChild("shard[0]")
	sh.SetAttrInt("units", 7)
	sh.Add(2 * time.Millisecond)
	sh.End()
	st.Root().End()
	r.Keep(st, true)

	h := r.Handler("fragserver")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var list struct {
		Traces []TraceSummary `json:"traces"`
		Stats  TraceStats     `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("listing is not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(list.Traces) != 2 || list.Traces[0].Name != "GET /fragment" || !list.Traces[0].Notable {
		t.Errorf("listing = %+v, want newest-first with notable flag", list.Traces)
	}
	if list.Traces[0].Spans != 2 || list.Stats.Kept != 2 {
		t.Errorf("listing spans/stats wrong: %+v / %+v", list.Traces[0], list.Stats)
	}

	// Fetch by path segment.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+st.ID().String(), nil))
	var otlp struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &otlp); err != nil {
		t.Fatalf("trace fetch is not JSON: %v\n%s", err, rec.Body.String())
	}
	spans := otlp.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 2 {
		t.Fatalf("OTLP spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "GET /fragment" || spans[0].TraceID != st.ID().String() {
		t.Errorf("root OTLP span = %+v", spans[0])
	}
	if spans[1].Name != "shard[0]" || spans[1].ParentSpanID != spans[0].SpanID {
		t.Errorf("child OTLP span = %+v, want parent link to root", spans[1])
	}

	// Fetch by query parameter and a miss.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+old.ID().String(), nil))
	if rec.Code != 200 {
		t.Errorf("?id= fetch status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+"0123456789abcdef0123456789abcdef", nil))
	if rec.Code != 404 {
		t.Errorf("unknown trace status = %d, want 404", rec.Code)
	}
}
