package obs

import (
	"encoding/json"
	"net/http"
	"path"
	"strconv"
	"sync"
	"time"
)

// TraceRegistry is a bounded in-memory ring of recently completed traces,
// served over HTTP as /debug/traces. Keep admits a finished trace;
// once the ring is full the oldest non-notable trace is evicted first
// (notable traces — errors, slow requests — outlive routine ones, and
// only evict each other). All methods are safe for concurrent use and
// nil-safe, so a server without tracing configured can skip every branch.
type TraceRegistry struct {
	mu   sync.Mutex
	cap  int
	kept []keptTrace // oldest first

	sampled uint64 // traces admitted via Keep
	dropped uint64 // requests that ran untraced (head sampling said no)
	evicted uint64 // traces pushed out of the ring
}

type keptTrace struct {
	t       *SpanTrace
	notable bool
	end     time.Time
}

// NewTraceRegistry returns a registry keeping up to n traces; n <= 0
// selects the default of 128.
func NewTraceRegistry(n int) *TraceRegistry {
	if n <= 0 {
		n = 128
	}
	return &TraceRegistry{cap: n}
}

// Keep admits a completed trace. notable marks traces that should
// outlive routine ones in the ring (errors, slow requests). The trace
// must not gain spans after Keep — readers walk it lock-free.
func (r *TraceRegistry) Keep(t *SpanTrace, notable bool) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sampled++
	if len(r.kept) >= r.cap {
		victim := 0
		for i, k := range r.kept {
			if !k.notable {
				victim = i
				break
			}
		}
		r.kept = append(r.kept[:victim], r.kept[victim+1:]...)
		r.evicted++
	}
	r.kept = append(r.kept, keptTrace{t: t, notable: notable, end: time.Now()})
}

// MarkDropped counts a request that ran untraced because head sampling
// declined it — the denominator half of the sampled-percentage stat.
func (r *TraceRegistry) MarkDropped() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.dropped++
	r.mu.Unlock()
}

// TraceStats is a point-in-time summary of the registry.
type TraceStats struct {
	// Kept is how many traces the ring currently holds (≤ Cap).
	Kept int
	// Cap is the ring capacity.
	Cap int
	// Sampled and Dropped count requests that did / did not record a
	// trace; Sampled/(Sampled+Dropped) is the effective sampling rate.
	Sampled, Dropped uint64
	// Evicted counts traces pushed out of the full ring.
	Evicted uint64
}

// Stats returns current registry statistics.
func (r *TraceRegistry) Stats() TraceStats {
	if r == nil {
		return TraceStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return TraceStats{Kept: len(r.kept), Cap: r.cap, Sampled: r.sampled, Dropped: r.dropped, Evicted: r.evicted}
}

// Get returns the kept trace with the given hex ID.
func (r *TraceRegistry) Get(id string) (*SpanTrace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.kept) - 1; i >= 0; i-- {
		if r.kept[i].t.ID().String() == id {
			return r.kept[i].t, true
		}
	}
	return nil, false
}

// TraceSummary is one row of the /debug/traces listing.
type TraceSummary struct {
	TraceID    string  `json:"traceId"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMs float64 `json:"durationMs"`
	Spans      int     `json:"spans"`
	Notable    bool    `json:"notable"`
}

// Summaries lists the kept traces, newest first.
func (r *TraceRegistry) Summaries() []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSummary, 0, len(r.kept))
	for i := len(r.kept) - 1; i >= 0; i-- {
		k := r.kept[i]
		out = append(out, TraceSummary{
			TraceID:    k.t.ID().String(),
			Name:       k.t.Root().Name(),
			Start:      k.t.Root().Start().UTC().Format(time.RFC3339Nano),
			DurationMs: float64(k.t.Duration()) / 1e6,
			Spans:      k.t.NumSpans(),
			Notable:    k.notable,
		})
	}
	return out
}

// otlpSpan mirrors the OTLP/JSON span shape (trace.v1.Span) closely
// enough for OTLP-aware tooling to ingest the output.
type otlpSpan struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []otlpAttr `json:"attributes,omitempty"`
}

type otlpAttr struct {
	Key   string       `json:"key"`
	Value otlpAttrView `json:"value"`
}

type otlpAttrView struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
}

// OTLP renders the trace in the OTLP/JSON resourceSpans shape, flat span
// list with parentSpanId links (how OTLP encodes the tree).
func (t *SpanTrace) OTLP(service string) map[string]any {
	var spans []otlpSpan
	var walk func(*Span)
	walk = func(s *Span) {
		start := s.Start().UnixNano()
		end := start + int64(s.Duration())
		os := otlpSpan{
			TraceID:           t.ID().String(),
			SpanID:            s.ID().String(),
			Name:              s.Name(),
			StartTimeUnixNano: strconv.FormatInt(start, 10),
			EndTimeUnixNano:   strconv.FormatInt(end, 10),
		}
		if !s.parent.IsZero() {
			os.ParentSpanID = s.parent.String()
		}
		for _, a := range s.Attrs() {
			v := otlpAttrView{StringValue: a.Str}
			if a.IsInt {
				v = otlpAttrView{IntValue: strconv.FormatInt(a.Int, 10)}
			}
			os.Attributes = append(os.Attributes, otlpAttr{Key: a.Key, Value: v})
		}
		spans = append(spans, os)
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(t.root)
	return map[string]any{
		"resourceSpans": []any{map[string]any{
			"resource": map[string]any{
				"attributes": []any{map[string]any{
					"key":   "service.name",
					"value": map[string]any{"stringValue": service},
				}},
			},
			"scopeSpans": []any{map[string]any{
				"scope": map[string]any{"name": service},
				"spans": spans,
			}},
		}},
	}
}

// Handler serves the registry over HTTP: the bare path lists trace
// summaries plus stats; a trailing /<traceID> path segment (or ?id=
// parameter) fetches one trace as OTLP-shaped JSON. service names the
// process in the OTLP resource attributes.
func (r *TraceRegistry) Handler(service string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		id := req.URL.Query().Get("id")
		if id == "" {
			if seg := path.Base(req.URL.Path); len(seg) == 32 && isHex(seg) {
				id = seg
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if id == "" {
			enc.Encode(map[string]any{ //nolint:errcheck — nothing to do about a failed write
				"traces": r.Summaries(),
				"stats":  r.Stats(),
			})
			return
		}
		t, ok := r.Get(id)
		if !ok {
			http.Error(w, "no kept trace with id "+id, http.StatusNotFound)
			return
		}
		enc.Encode(t.OTLP(service)) //nolint:errcheck — nothing to do about a failed write
	})
}
