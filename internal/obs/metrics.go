package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down. The zero value is
// ready to use; all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets in seconds: 100µs to 10s in
// a 1-2.5-5 progression, a spread wide enough to cover both cache hits
// and whole-graph parallel extractions.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets with inclusive upper
// bounds (Prometheus "le" semantics) plus an implicit +Inf bucket, and
// tracks the running sum. Create with NewHistogram or Registry.Histogram;
// all methods are safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, updated by CAS
	total  atomic.Uint64

	// exemplars holds the most recent exemplar-carrying observation per
	// bucket (nil until one lands). Swapped whole via atomic pointers so
	// renders never see a torn (value, trace) pair.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one concrete observation to the trace that produced it,
// rendered in OpenMetrics exemplar syntax after the bucket's sample.
type Exemplar struct {
	TraceID string
	Value   float64
}

// NewHistogram returns a histogram over the given ascending upper bounds;
// nil or empty bounds select DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucket(v)].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// bucket returns the index of the bucket v lands in. Linear scan: bucket
// counts are small and fixed, and the scan is branch-predictable; a
// binary search would not pay for itself.
func (h *Histogram) bucket(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// ObserveExemplar records one value and remembers traceID as the
// bucket's exemplar: the last sampled request to land in each latency
// bucket stays linked from /metrics to /debug/traces. An empty traceID
// degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	h.exemplars[h.bucket(v)].Store(&Exemplar{TraceID: traceID, Value: v})
}

// Exemplars returns the current per-bucket exemplars, aligned with
// Cumulative (nil entries where no exemplar has landed).
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Cumulative returns the cumulative count of observations <= bound for
// each configured bound, ending with the +Inf bucket (== Count()).
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Label is one name=value pair attached to a metric.
type Label struct{ Key, Value string }

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled series within a family: exactly one of the value
// fields is set. fn-backed series are sampled at render time, which is
// how externally owned state (cache statistics, uptime) joins the
// registry without double bookkeeping.
type child struct {
	labels  string // rendered `{k="v",…}` form, also the identity key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

type family struct {
	name, help string
	kind       metricKind
	children   map[string]*child
}

// Registry is a named collection of metrics that renders the Prometheus
// text exposition format (version 0.0.4) and snapshots to expvar-friendly
// JSON. Get-or-create accessors make registration idempotent: asking for
// the same (name, labels) twice returns the same metric, so callers need
// no init ordering. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order of family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series returns the child for (name, labels), creating family and child
// as needed. Re-registering a name with a different kind is a programming
// error and panics.
func (r *Registry) series(name, help string, kind metricKind, labels []Label) *child {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, kind, f.kind))
	}
	key := renderLabels(labels)
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: key}
		f.children[key] = c
	}
	return c
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.series(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.series(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// GaugeFunc registers a gauge whose value is sampled from fn at render
// time — the bridge for state owned elsewhere (cache sizes, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.series(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c.fn = fn
}

// CounterFunc registers a counter sampled from fn at render time; fn must
// be monotonically non-decreasing for the series to be a valid counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.series(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c.fn = fn
}

// Histogram returns the histogram for (name, labels), creating it over
// the given bounds on first use (nil bounds select DefBuckets). Bounds of
// an existing histogram are not changed.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	c := r.series(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.hist == nil {
		c.hist = NewHistogram(bounds)
	}
	return c.hist
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderFamily is a consistent point-in-time copy of one family taken
// under the registry lock, for rendering after the lock is released.
type renderFamily struct {
	f        *family
	children []*child
}

// renderSnapshot copies the families in sorted name order with children
// in sorted label order. Sorting by name (rather than registration
// order) makes the exposition byte-for-byte deterministic regardless of
// which code path touched the registry first — registration order
// depends on request interleaving, which made scrape diffs noisy.
func (r *Registry) renderSnapshot() []renderFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]renderFamily, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		fams = append(fams, renderFamily{f: f, children: children})
	}
	return fams
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format: families in sorted name order, series within a
// family in sorted label order, histograms with cumulative le buckets
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, rf := range r.renderSnapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			rf.f.name, rf.f.help, rf.f.name, rf.f.kind); err != nil {
			return err
		}
		for _, c := range rf.children {
			if err := writeSeries(w, rf.f.name, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteOpenMetrics renders the registry in the OpenMetrics text format:
// the same samples as WritePrometheus plus exemplar annotations on
// histogram buckets, counter families declared under their base name
// (the `_total` suffix moves to the sample line, as the spec requires),
// and the mandatory `# EOF` terminator. Exemplars are what link a
// latency bucket to the trace ID of the last sampled request that
// landed in it.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	for _, rf := range r.renderSnapshot() {
		base := rf.f.name
		if rf.f.kind == kindCounter {
			base = strings.TrimSuffix(base, "_total")
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			base, rf.f.help, base, rf.f.kind); err != nil {
			return err
		}
		for _, c := range rf.children {
			var err error
			if c.hist != nil {
				err = writeHistogramOM(w, rf.f.name, c)
			} else {
				err = writeSeries(w, rf.f.name, c)
			}
			if err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func writeSeries(w io.Writer, name string, c *child) error {
	switch {
	case c.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, c.labels, formatFloat(c.fn()))
		return err
	case c.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.counter.Value())
		return err
	case c.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.gauge.Value())
		return err
	case c.hist != nil:
		return writeHistogram(w, name, c)
	}
	return nil
}

// writeHistogram renders one histogram series. The le label is appended
// to the series' own labels (which are rendered with a trailing '}'), so
// the brace is spliced rather than re-rendered.
func writeHistogram(w io.Writer, name string, c *child) error {
	cum := c.hist.Cumulative()
	open := "{"
	if c.labels != "" {
		open = strings.TrimSuffix(c.labels, "}") + ","
	}
	for i, bound := range c.hist.bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"%s\"} %d\n",
			name, open, formatFloat(bound), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n",
		name, open, cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
		name, c.labels, formatFloat(c.hist.Sum()), name, c.labels, c.hist.Count()); err != nil {
		return err
	}
	return nil
}

// writeHistogramOM renders one histogram series in OpenMetrics form:
// identical to writeHistogram except that buckets carrying an exemplar
// get the `# {trace_id="…"} value` suffix. Exemplar timestamps are
// omitted (they are optional in the spec) so the output stays
// deterministic for a fixed set of observations.
func writeHistogramOM(w io.Writer, name string, c *child) error {
	cum := c.hist.Cumulative()
	ex := c.hist.Exemplars()
	open := "{"
	if c.labels != "" {
		open = strings.TrimSuffix(c.labels, "}") + ","
	}
	writeBucket := func(le string, i int) error {
		suffix := ""
		if e := ex[i]; e != nil {
			suffix = fmt.Sprintf(" # {trace_id=\"%s\"} %s", e.TraceID, formatFloat(e.Value))
		}
		_, err := fmt.Fprintf(w, "%s_bucket%sle=\"%s\"} %d%s\n", name, open, le, cum[i], suffix)
		return err
	}
	for i, bound := range c.hist.bounds {
		if err := writeBucket(formatFloat(bound), i); err != nil {
			return err
		}
	}
	if err := writeBucket("+Inf", len(cum)-1); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
		name, c.labels, formatFloat(c.hist.Sum()), name, c.labels, c.hist.Count())
	return err
}

// openMetricsContentType is the content type the OpenMetrics exposition
// is served under when the scraper negotiates for it.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler returns an http.Handler serving the registry — mount it as
// /metrics. Scrapers that send `Accept: application/openmetrics-text`
// (Prometheus does when exemplar storage is on) get the OpenMetrics
// exposition with exemplars; everyone else gets the classic text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", openMetricsContentType)
			r.WriteOpenMetrics(w) //nolint:errcheck — nothing to do about a failed write
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck — nothing to do about a failed write
	})
}

// Snapshot returns the registry as a JSON-marshalable map: counters and
// gauges as numbers keyed by name+labels, histograms as {count, sum}.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any)
	for _, name := range r.order {
		for _, c := range r.families[name].children {
			key := name + c.labels
			switch {
			case c.fn != nil:
				out[key] = c.fn()
			case c.counter != nil:
				out[key] = c.counter.Value()
			case c.gauge != nil:
				out[key] = c.gauge.Value()
			case c.hist != nil:
				out[key] = map[string]any{"count": c.hist.Count(), "sum": c.hist.Sum()}
			}
		}
	}
	return out
}

// expvarTargets routes published expvar names to their current registry.
// expvar has no unpublish, so re-publishing a name (a fresh Server in the
// same process, common in tests) swaps the target the published Func
// reads instead of panicking inside expvar.
var (
	expvarMu      sync.Mutex
	expvarTargets = make(map[string]*Registry)
)

// PublishExpvar publishes the registry's Snapshot under name in the
// process-wide expvar namespace (GET /debug/vars). Safe to call more than
// once and with successive registries: the last registry published under
// a name wins.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarTargets[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			target := expvarTargets[name]
			expvarMu.Unlock()
			return target.Snapshot()
		}))
	}
	expvarTargets[name] = r
}
