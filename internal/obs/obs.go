// Package obs is the stdlib-only observability layer of the serving
// stack: atomic counters and gauges, fixed-bucket latency histograms, a
// labeled metric Registry that renders the Prometheus and OpenMetrics
// text exposition formats (the latter with trace exemplars) and
// publishes itself through expvar, a lightweight per-request Trace that
// records named stage durations (parse → target → extract → serialize)
// for Server-Timing headers and structured log fields, and a
// hierarchical span tree (SpanTrace / Span) for sampled requests with
// W3C traceparent propagation, a bounded TraceRegistry served as
// /debug/traces in OTLP-compatible JSON, and always-on runtime
// telemetry sampled from runtime/metrics.
//
// The package exists so that performance claims about fragment serving
// are measured by the server itself rather than by ad-hoc external
// benchmarks: internal/fragserver threads a Registry and per-request
// Traces through its handler chain, and internal/core emits extraction
// sub-stage timings into the same Trace via the Tracer interface. When
// a request is head-sampled, the flat Trace additionally carries a span
// tree root (Trace.SetRoot / Trace.StartSpan), and deeper layers open
// per-shard and per-stage child spans under it; exemplar-aware
// histograms then link each latency bucket to the trace ID of the last
// sampled request that landed in it.
//
// # Concurrency
//
// Every metric type is safe for concurrent use without external locking:
// Counter, Gauge and Histogram update via sync/atomic, and the Registry
// guards its name table with a mutex while reads of registered metrics
// are lock-free. A Trace serializes its own stage list internally, so one
// request's handler and the worker goroutines it fans out may observe
// stages into the same Trace concurrently. Rendering (WritePrometheus,
// Snapshot, ServerTiming) takes point-in-time snapshots and may run while
// updates continue.
//
// # Costs
//
// A counter increment is one atomic add; a histogram observation is two
// atomic adds plus a branchless bucket search over a small fixed bound
// slice. Nothing allocates on the hot path, so instrumented serving code
// can leave metrics enabled unconditionally. Span methods are nil-safe
// no-ops: an unsampled request carries nil spans and pays one branch per
// call, while sampled requests pay lock-free CAS publication for child
// spans and atomic adds for duration accumulation.
package obs
