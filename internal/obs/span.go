package obs

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C Trace Context trace identifier: 16 bytes, rendered as
// 32 lowercase hex digits. The all-zero ID is invalid.
type TraceID [16]byte

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// SpanID is a W3C Trace Context span identifier: 8 bytes, rendered as 16
// lowercase hex digits. The all-zero ID is invalid.
type SpanID [8]byte

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// SpanContext is the propagated part of a trace: the IDs an external
// caller handed us in a traceparent header (or that we hand back).
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID // the caller's span, parent of our root
	Sampled bool
}

// ParseTraceparent parses a W3C traceparent header value
// (version-traceid-spanid-flags, e.g.
// 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01).
// It returns ok=false for malformed values: wrong field lengths,
// non-hex digits, all-zero trace or span IDs, or the reserved version
// ff. Unknown future versions are accepted as long as the first four
// fields parse (the spec requires forward compatibility); version 00
// must have exactly four fields.
func ParseTraceparent(s string) (SpanContext, bool) {
	s = strings.TrimSpace(s)
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	ver, tid, sid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isHex(ver) || strings.EqualFold(ver, "ff") {
		return SpanContext{}, false
	}
	if ver == "00" && len(parts) != 4 {
		return SpanContext{}, false
	}
	if len(tid) != 32 || len(sid) != 16 || len(flags) != 2 {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(tid)); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(sid)); err != nil {
		return SpanContext{}, false
	}
	fb, err := strconv.ParseUint(flags, 16, 8)
	if err != nil {
		return SpanContext{}, false
	}
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return SpanContext{}, false
	}
	sc.Sampled = fb&0x01 != 0
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// Traceparent renders the context as a traceparent header value.
func (c SpanContext) Traceparent() string {
	flags := "00"
	if c.Sampled {
		flags = "01"
	}
	return "00-" + c.TraceID.String() + "-" + c.SpanID.String() + "-" + flags
}

// Attr is one key=value annotation on a span. Exactly one of Str and Int
// is meaningful, selected by IsInt; integer attributes support atomic
// accumulation (AddAttrInt) so concurrent workers can contribute counts
// to a shared span.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

func (a Attr) String() string {
	if a.IsInt {
		return a.Key + "=" + strconv.FormatInt(a.Int, 10)
	}
	return a.Key + "=" + a.Str
}

// attrNode is the internal attribute representation: int values live in
// an atomic so AddAttrInt is contention-safe once the node exists.
type attrNode struct {
	key   string
	str   string
	num   atomic.Int64
	isInt bool
}

// Span is one timed operation in a trace's tree: a name, a start time, an
// accumulated duration, key=value attributes, and child spans. All
// methods are nil-safe no-ops, so call sites never branch on tracing
// being enabled — an unsampled request carries a nil span and pays one
// nil check per call.
//
// Concurrency: StartChild and Add are lock-free (child publication is a
// CAS onto a sibling list; duration is an atomic add), so fan-out workers
// can open children of one parent span without serializing the hot path.
// Observe and the attribute setters serialize on a per-span mutex; they
// run at stage boundaries, not per triple.
type Span struct {
	name   string
	tr     *SpanTrace
	id     SpanID
	parent SpanID
	start  time.Time
	dur    atomic.Int64 // accumulated nanoseconds
	ended  atomic.Bool

	// children is a lock-free LIFO list: StartChild CAS-prepends, and
	// Children() reverses back to creation order.
	children atomic.Pointer[Span]
	sibling  *Span

	mu    sync.Mutex // guards attrs and Observe's get-or-create
	attrs []*attrNode
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's ID (zero for nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Start returns the span's start time (zero for nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the duration accumulated so far: End's wall-clock
// bracket, plus anything contributed through Add.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.dur.Load())
}

// StartChild opens a child span. Safe to call from many goroutines
// concurrently; each child must be ended (or accumulated into via Add)
// by whoever holds it. On a nil span it returns nil, whose methods
// no-op in turn.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, tr: s.tr, id: s.tr.nextSpanID(), parent: s.id, start: time.Now()}
	for {
		head := s.children.Load()
		c.sibling = head
		if s.children.CompareAndSwap(head, c) {
			return c
		}
	}
}

// End stops the span, adding the wall time since StartChild to its
// duration. Only the first End takes effect; Add may still contribute
// afterwards (accumulator children are never "ended" in this sense).
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.dur.Add(int64(time.Since(s.start)))
}

// Add contributes d to the span's duration without reference to wall
// time — the accumulation primitive for spans that aggregate many small
// work units (per-shard extraction time, for example).
func (s *Span) Add(d time.Duration) {
	if s == nil {
		return
	}
	s.dur.Add(int64(d))
}

// AccumChild opens a pure accumulator child: duration grows only through
// Add (and Observe on it), never from wall time — End is already spent.
// Use it for spans that aggregate work stolen by many goroutines, where
// wall-clock bracketing would double-count (per-shard extraction time).
// Unlike Observe, every call creates a fresh child.
func (s *Span) AccumChild(name string) *Span {
	c := s.StartChild(name)
	if c != nil {
		c.ended.Store(true)
	}
	return c
}

// Observe implements the Tracer interface as a get-or-create accumulating
// child: repeated observations of one stage name pile into a single child
// span, mirroring the flat Trace's aggregation semantics. This is the
// migration shim — anything that accepts an obs.Tracer accepts a *Span.
func (s *Span) Observe(stage string, d time.Duration) {
	if s == nil {
		return
	}
	s.accumChild(stage).Add(d)
}

// accumChild returns the child span with the given name, creating it
// (already "ended", duration accumulates via Add) on first use. The
// mutex serializes get-or-create; concurrent StartChild prepends remain
// safe because publication is still the CAS.
func (s *Span) accumChild(name string) *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := s.children.Load(); c != nil; c = c.sibling {
		if c.name == name && c.ended.Load() {
			return c
		}
	}
	c := &Span{name: name, tr: s.tr, id: s.tr.nextSpanID(), parent: s.id, start: time.Now()}
	c.ended.Store(true) // accumulator: End must not add wall time
	for {
		head := s.children.Load()
		c.sibling = head
		if s.children.CompareAndSwap(head, c) {
			return c
		}
	}
}

// SetAttr sets a string attribute, replacing any previous value.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.attr(key)
	n.isInt = false
	n.str = value
}

// SetAttrInt sets an integer attribute, replacing any previous value.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.attr(key)
	n.isInt = true
	n.num.Store(v)
}

// AddAttrInt adds delta to an integer attribute, creating it at zero —
// how concurrent workers contribute counts (memo resets, work units) to
// one shared span.
func (s *Span) AddAttrInt(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	n := s.attr(key)
	n.isInt = true
	s.mu.Unlock()
	n.num.Add(delta)
}

// attr returns the node for key, creating it; callers hold s.mu.
func (s *Span) attr(key string) *attrNode {
	for _, n := range s.attrs {
		if n.key == key {
			return n
		}
	}
	n := &attrNode{key: key}
	s.attrs = append(s.attrs, n)
	return n
}

// Attrs returns a copy of the span's attributes in creation order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	for i, n := range s.attrs {
		out[i] = Attr{Key: n.key, Str: n.str, Int: n.num.Load(), IsInt: n.isInt}
	}
	return out
}

// Children returns the child spans in creation order (the internal list
// is newest-first; this reverses it).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	var out []*Span
	for c := s.children.Load(); c != nil; c = c.sibling {
		out = append(out, c)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// SpanTrace is one trace: a tree of spans under a root, stamped with a
// TraceID. Create with NewSpanTrace per sampled request (or one-shot CLI
// run), hand Root() down the call stack, End the root when the request
// completes, and offer the finished trace to a TraceRegistry.
type SpanTrace struct {
	id     TraceID
	parent SpanID // external caller's span from traceparent, if any
	root   *Span
	seq    atomic.Uint64
}

// NewSpanTrace starts a trace whose root span has the given name. A
// non-zero parent context (from ParseTraceparent) makes this trace a
// continuation: its TraceID is inherited and the root span's parent is
// the caller's span, so the caller's tracing backend can join the two.
func NewSpanTrace(rootName string, parent SpanContext) *SpanTrace {
	t := &SpanTrace{id: parent.TraceID, parent: parent.SpanID}
	for t.id.IsZero() {
		binary.BigEndian.PutUint64(t.id[:8], rand.Uint64())
		binary.BigEndian.PutUint64(t.id[8:], rand.Uint64())
	}
	t.root = &Span{name: rootName, tr: t, id: t.nextSpanID(), parent: parent.SpanID, start: time.Now()}
	return t
}

// nextSpanID derives a fresh span ID from the trace ID and a counter —
// unique within the trace, no per-span rand calls on the hot path.
func (t *SpanTrace) nextSpanID() SpanID {
	n := t.seq.Add(1)
	var id SpanID
	binary.BigEndian.PutUint64(id[:], binary.BigEndian.Uint64(t.id[8:])^(n*0x9e3779b97f4a7c15))
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// ID returns the trace ID.
func (t *SpanTrace) ID() TraceID { return t.id }

// Root returns the root span.
func (t *SpanTrace) Root() *Span { return t.root }

// Duration returns the root span's duration.
func (t *SpanTrace) Duration() time.Duration { return t.root.Duration() }

// Traceparent renders the header value a response (or downstream call)
// should carry: this trace's ID, the root span as parent, sampled set.
func (t *SpanTrace) Traceparent() string {
	return SpanContext{TraceID: t.id, SpanID: t.root.id, Sampled: true}.Traceparent()
}

// NumSpans counts the spans in the tree.
func (t *SpanTrace) NumSpans() int {
	n := 0
	var walk func(*Span)
	walk = func(s *Span) {
		n++
		for c := s.children.Load(); c != nil; c = c.sibling {
			walk(c)
		}
	}
	walk(t.root)
	return n
}

// TopSpans returns the n longest non-root spans as "name=1.234ms"
// strings, longest first — the slow-request log's summary line.
func (t *SpanTrace) TopSpans(n int) []string {
	var all []*Span
	var walk func(*Span)
	walk = func(s *Span) {
		for c := s.children.Load(); c != nil; c = c.sibling {
			all = append(all, c)
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(all, func(i, j int) bool { return all[i].Duration() > all[j].Duration() })
	if len(all) > n {
		all = all[:n]
	}
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = fmt.Sprintf("%s=%.3fms", s.name, float64(s.Duration())/float64(time.Millisecond))
	}
	return out
}

// WriteTree renders the trace as an indented text tree with durations
// and attributes — the `shaclfrag fragment -trace` output and a
// debugging aid in tests.
func (t *SpanTrace) WriteTree(w io.Writer) {
	fmt.Fprintf(w, "trace %s (%d spans)\n", t.id, t.NumSpans())
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		attrs := ""
		for _, a := range s.Attrs() {
			attrs += "  " + a.String()
		}
		fmt.Fprintf(w, "%s%s  %.3fms%s\n",
			strings.Repeat("  ", depth), s.name,
			float64(s.Duration())/float64(time.Millisecond), attrs)
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
}
