package obs

import (
	"runtime"
	"strings"
	"testing"
)

// TestRegisterRuntimeMetrics registers the runtime series and checks the
// exposition carries live values: goroutines must be >= 1 and heap
// allocation bytes > 0 in any running process.
func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"runtime_goroutines",
		"runtime_heap_objects_bytes",
		"runtime_memory_total_bytes",
		"runtime_heap_allocs_bytes_total",
		"runtime_gc_cycles_total",
		"runtime_gc_pauses_total",
		"runtime_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}

	snap := r.Snapshot()
	if g, ok := snap["runtime_goroutines"].(float64); !ok || g < 1 {
		t.Errorf("runtime_goroutines = %v, want >= 1", snap["runtime_goroutines"])
	}
	if a, ok := snap["runtime_heap_allocs_bytes_total"].(float64); !ok || a <= 0 {
		t.Errorf("runtime_heap_allocs_bytes_total = %v, want > 0", snap["runtime_heap_allocs_bytes_total"])
	}

	// Force a GC, then register on a fresh registry (fresh collector, no
	// stale 250ms cache): the cycle counter must see the forced cycle.
	runtime.GC()
	r2 := NewRegistry()
	RegisterRuntimeMetrics(r2)
	if c, ok := r2.Snapshot()["runtime_gc_cycles_total"].(float64); !ok || c < 1 {
		t.Errorf("runtime_gc_cycles_total = %v after runtime.GC(), want >= 1", c)
	}
}
