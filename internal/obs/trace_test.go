package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceAccumulation(t *testing.T) {
	tr := NewTrace()
	tr.Observe("extract", 10*time.Millisecond)
	tr.Observe("parse", 1*time.Millisecond)
	tr.Observe("extract", 5*time.Millisecond) // same stage accumulates
	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2: %v", len(stages), stages)
	}
	if stages[0].Name != "extract" || stages[0].Dur != 15*time.Millisecond {
		t.Errorf("stage 0 = %+v, want extract/15ms (first-observation order)", stages[0])
	}
	if stages[1].Name != "parse" || stages[1].Dur != time.Millisecond {
		t.Errorf("stage 1 = %+v, want parse/1ms", stages[1])
	}
}

func TestTraceServerTiming(t *testing.T) {
	tr := NewTrace()
	tr.Observe("parse", 110*time.Microsecond)
	tr.Observe("extract", 41520*time.Microsecond)
	if got, want := tr.ServerTiming(), "parse;dur=0.11, extract;dur=41.52"; got != want {
		t.Errorf("ServerTiming() = %q, want %q", got, want)
	}
}

// TestTraceServerTimingInjection feeds stage names containing header
// metacharacters: a name like `extract;desc="x"` must not smuggle extra
// Server-Timing parameters into the response header.
func TestTraceServerTimingInjection(t *testing.T) {
	tr := NewTrace()
	tr.Observe(`extract;desc="evil", attack`, time.Millisecond)
	tr.Observe("ok.stage-2", 2*time.Millisecond)
	got := tr.ServerTiming()
	if strings.ContainsAny(got, `";`+"\r\n") && !strings.Contains(got, ";dur=") {
		t.Fatalf("unsanitized header: %q", got)
	}
	want := `extract_desc__evil___attack;dur=1.00, ok.stage-2;dur=2.00`
	if got != want {
		t.Errorf("ServerTiming() = %q, want %q", got, want)
	}
}

func TestSanitizeToken(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"extract", "extract"},
		{"plan-exec.2_x", "plan-exec.2_x"},
		{`a;b"c,d e`, "a_b_c_d_e"},
		{"", ""},
	} {
		if got := sanitizeToken(tc.in); got != tc.want {
			t.Errorf("sanitizeToken(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Observe("x", time.Second) // must not panic
	tr.Start("y")()
	if tr.Stages() != nil {
		t.Error("nil trace must have no stages")
	}
	if tr.ServerTiming() != "" {
		t.Error("nil trace must render empty Server-Timing")
	}
	// And a Tracer interface holding a nil *Trace keeps working too —
	// this is the contract core relies on.
	var tracer Tracer = tr
	tracer.Observe("z", time.Second)
}

func TestTraceStart(t *testing.T) {
	tr := NewTrace()
	stop := tr.Start("work")
	time.Sleep(2 * time.Millisecond)
	stop()
	stages := tr.Stages()
	if len(stages) != 1 || stages[0].Dur <= 0 {
		t.Errorf("Start/stop recorded %v", stages)
	}
}

// TestTraceStartSpan checks the flat-stage + span-tree bridge: with a
// root attached, StartSpan both records the flat stage and grows the
// tree; without one, only the flat stage is recorded.
func TestTraceStartSpan(t *testing.T) {
	tr := NewTrace()
	st := NewSpanTrace("req", SpanContext{})
	tr.SetRoot(st.Root())

	sp, stop := tr.StartSpan("extract")
	if sp == nil {
		t.Fatal("sampled trace must return a live span")
	}
	sp.SetAttrInt("units", 4)
	stop()

	if stages := tr.Stages(); len(stages) != 1 || stages[0].Name != "extract" {
		t.Errorf("flat stages = %v, want [extract]", stages)
	}
	kids := st.Root().Children()
	if len(kids) != 1 || kids[0].Name() != "extract" || kids[0].Duration() <= 0 {
		t.Fatalf("span tree children = %v", kids)
	}
	if attrs := kids[0].Attrs(); len(attrs) != 1 || attrs[0].Key != "units" || attrs[0].Int != 4 {
		t.Errorf("span attrs = %v", attrs)
	}

	// Unsampled: nil root, still records the flat stage.
	tr2 := NewTrace()
	sp2, stop2 := tr2.StartSpan("extract")
	if sp2 != nil {
		t.Error("unsampled trace must return a nil span")
	}
	sp2.SetAttr("k", "v") // nil-safe
	stop2()
	if stages := tr2.Stages(); len(stages) != 1 {
		t.Errorf("unsampled flat stages = %v", stages)
	}

	// Nil trace: everything no-ops.
	var tr3 *Trace
	sp3, stop3 := tr3.StartSpan("x")
	sp3.End()
	stop3()
}

func TestTraceLogArgs(t *testing.T) {
	tr := NewTrace()
	tr.Observe("serialize", 2500*time.Microsecond)
	args := tr.LogArgs()
	if len(args) != 2 || args[0] != "serialize_ms" || args[1].(float64) != 2.5 {
		t.Errorf("LogArgs() = %v", args)
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context must yield nil trace")
	}
	tr := NewTrace()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace lost in context round-trip")
	}
}

// TestTraceConcurrent verifies concurrent Observe calls are safe (teeth
// under -race) and that totals add up.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Observe("extract", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	stages := tr.Stages()
	if len(stages) != 1 || stages[0].Dur != 8000*time.Microsecond {
		t.Errorf("concurrent accumulation = %v, want extract/8ms", stages)
	}
	if !strings.HasPrefix(tr.ServerTiming(), "extract;dur=8") {
		t.Errorf("ServerTiming() = %q", tr.ServerTiming())
	}
}
