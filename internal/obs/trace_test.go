package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceAccumulation(t *testing.T) {
	tr := NewTrace()
	tr.Observe("extract", 10*time.Millisecond)
	tr.Observe("parse", 1*time.Millisecond)
	tr.Observe("extract", 5*time.Millisecond) // same stage accumulates
	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2: %v", len(stages), stages)
	}
	if stages[0].Name != "extract" || stages[0].Dur != 15*time.Millisecond {
		t.Errorf("stage 0 = %+v, want extract/15ms (first-observation order)", stages[0])
	}
	if stages[1].Name != "parse" || stages[1].Dur != time.Millisecond {
		t.Errorf("stage 1 = %+v, want parse/1ms", stages[1])
	}
}

func TestTraceServerTiming(t *testing.T) {
	tr := NewTrace()
	tr.Observe("parse", 110*time.Microsecond)
	tr.Observe("extract", 41520*time.Microsecond)
	if got, want := tr.ServerTiming(), "parse;dur=0.11, extract;dur=41.52"; got != want {
		t.Errorf("ServerTiming() = %q, want %q", got, want)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Observe("x", time.Second) // must not panic
	tr.Start("y")()
	if tr.Stages() != nil {
		t.Error("nil trace must have no stages")
	}
	if tr.ServerTiming() != "" {
		t.Error("nil trace must render empty Server-Timing")
	}
	// And a Tracer interface holding a nil *Trace keeps working too —
	// this is the contract core relies on.
	var tracer Tracer = tr
	tracer.Observe("z", time.Second)
}

func TestTraceStart(t *testing.T) {
	tr := NewTrace()
	stop := tr.Start("work")
	time.Sleep(2 * time.Millisecond)
	stop()
	stages := tr.Stages()
	if len(stages) != 1 || stages[0].Dur <= 0 {
		t.Errorf("Start/stop recorded %v", stages)
	}
}

func TestTraceLogArgs(t *testing.T) {
	tr := NewTrace()
	tr.Observe("serialize", 2500*time.Microsecond)
	args := tr.LogArgs()
	if len(args) != 2 || args[0] != "serialize_ms" || args[1].(float64) != 2.5 {
		t.Errorf("LogArgs() = %v", args)
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context must yield nil trace")
	}
	tr := NewTrace()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace lost in context round-trip")
	}
}

// TestTraceConcurrent verifies concurrent Observe calls are safe (teeth
// under -race) and that totals add up.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Observe("extract", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	stages := tr.Stages()
	if len(stages) != 1 || stages[0].Dur != 8000*time.Microsecond {
		t.Errorf("concurrent accumulation = %v, want extract/8ms", stages)
	}
	if !strings.HasPrefix(tr.ServerTiming(), "extract;dur=8") {
		t.Errorf("ServerTiming() = %q", tr.ServerTiming())
	}
}
