// Package shapelint is a static-analysis pass over shape schemas: it
// walks the formal shape AST (internal/shape) of every definition in a
// schema (internal/schema) and reports positioned, severity-ranked
// findings with stable SL-codes, without ever touching a data graph.
//
// The pipeline is parse → translate → NNF → analyze: schemas arrive
// already translated (internal/shaclsyn preserves the shapes-graph IRIs
// as definition names, so findings point back at real SHACL shapes), each
// definition body is put in negation normal form, and two cooperating
// analyses run over it:
//
//   - constant folding (fold.go): a sound, incomplete rewriting toward
//     ⊤/⊥ that inlines hasShape references and collapses contradictory
//     conjunctions — cardinality clashes, incompatible node tests,
//     closed-shape/required-property combinations, eq/disj pairs. A body
//     folded to ⊥ is unsatisfiable on every graph; one folded to ⊤
//     constrains nothing.
//   - a syntactic walk for findings that are not about satisfiability:
//     unbounded *-paths in universal or negated positions (which blow up
//     product-automaton path tracing in internal/paths), and hasShape
//     references to undefined names (silently ⊤ at evaluation time).
//
// A final reachability pass flags dead definitions: shapes with no
// satisfiable target that no targeted definition (transitively)
// references — they can never select or constrain a focus node.
//
// Every diagnostic carries a stable code (SL001…SL011) suitable for
// golden tests and CI gating. internal/fragserver runs this pass at
// schema load time, refusing hard-error schemas and exporting finding
// counts per severity through internal/obs; the shaclfrag CLI exposes it
// as the lint subcommand. The subsumption diagnostics SL010/SL011 are
// produced by internal/contain (which builds on this package's folder
// via Fold) and merged into the same diagnostic stream by callers.
package shapelint

import (
	"fmt"
	"sort"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// Severity ranks findings. Errors describe schemas that cannot behave as
// written (unsatisfiable or contradictory shapes); warnings describe
// schemas that work but are almost certainly not what the author meant
// (dead shapes, vacuous shapes, shadowed disjuncts, expensive paths).
type Severity int

const (
	// Info findings are advisory.
	Info Severity = iota
	// Warning findings indicate probable authoring mistakes or serving
	// hazards that do not make the schema wrong.
	Warning
	// Error findings indicate defects that guarantee wasted or misleading
	// work at serving time, such as unsatisfiable shapes.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Stable diagnostic codes. Codes are append-only: a code's meaning never
// changes once released, so golden tests and CI filters can match on them.
const (
	// CodeUnsat: the definition's shape expression folds to ⊥ — no node
	// on any graph can conform, so every targeted node is a violation and
	// every fragment of the shape is empty.
	CodeUnsat = "SL001"
	// CodeTrivial: the shape expression folds to ⊤ — the definition
	// constrains nothing.
	CodeTrivial = "SL002"
	// CodeCardinality: a conjunction requires more values on a path than
	// it allows (count≥m ∧ count≤n with m>n, or a required count whose
	// values cannot satisfy a universal constraint on the same path).
	CodeCardinality = "SL003"
	// CodeContradiction: a conjunction combines constraints no single
	// node can satisfy (incompatible node tests, distinct hasValue
	// constants, φ ∧ ¬φ, eq/disj clashes).
	CodeContradiction = "SL004"
	// CodeClosed: a closed shape forbids the very property another
	// conjunct requires values through.
	CodeClosed = "SL005"
	// CodeDead: the definition has no satisfiable target and is not
	// referenced (transitively) by any targeted definition — it can never
	// select or constrain a focus node.
	CodeDead = "SL006"
	// CodeShadowed: a disjunct can never matter — it is unsatisfiable, a
	// duplicate of an earlier alternative, or trivially true (making the
	// whole disjunction vacuous).
	CodeShadowed = "SL007"
	// CodeExpensivePath: an unbounded path (containing *) sits in a
	// universal or negated position (≤n, ∀, pair constraints), where
	// extraction must trace every path through the product automaton.
	CodeExpensivePath = "SL008"
	// CodeUndefinedRef: hasShape names a shape the schema does not
	// define; evaluation silently treats it as ⊤.
	CodeUndefinedRef = "SL009"
	// CodeRedundant: the definition is subsumed by another definition —
	// every node it targets is also targeted by the other, whose shape is
	// at least as strong, so removing the definition changes no validation
	// verdict. Emitted by internal/contain's subsumption analysis.
	CodeRedundant = "SL010"
	// CodeImpliedConjunct: a conjunct is implied by a sibling conjunct of
	// the same conjunction and therefore constrains nothing on its own.
	// Emitted by internal/contain's subsumption analysis.
	CodeImpliedConjunct = "SL011"
)

// Diagnostic is one positioned lint finding.
type Diagnostic struct {
	// Code is the stable SL-code of the finding class.
	Code string
	// Severity ranks the finding.
	Severity Severity
	// Shape names the definition the finding is positioned in. For
	// schemas translated from real SHACL this is the shapes-graph IRI (or
	// blank node) of the offending shape.
	Shape rdf.Term
	// Detail renders the offending subexpression(s) in the paper's shape
	// syntax, or is empty for whole-definition findings.
	Detail string
	// Message states the defect.
	Message string
}

// String renders "CODE severity shape: message (at detail)".
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s %s %s: %s", d.Code, d.Severity, d.Shape, d.Message)
	if d.Detail != "" {
		s += " (at " + d.Detail + ")"
	}
	return s
}

// Run lints a schema and returns its findings sorted by (shape, code,
// position) — see Sort. Run never touches a data graph; its cost is
// linear in the schema size times the conjunction widths. A nil schema
// has no findings.
func Run(h *schema.Schema) []Diagnostic {
	if h == nil {
		return nil
	}
	l := &linter{h: h, defIdx: make(map[rdf.Term]int, h.Len())}
	l.f = newFolder(l)
	defs := h.Definitions()
	for i, d := range defs {
		l.defIdx[d.Name] = i
	}

	// Fold every definition in declaration order. Folding emits the
	// positioned conjunction/disjunction findings as it goes and yields
	// the per-definition constant verdicts.
	folded := make([]shape.Shape, len(defs))
	for _, d := range defs {
		folded[l.defIdx[d.Name]], _ = l.f.foldDef(d.Name)
	}
	for i, d := range defs {
		switch {
		case isFalse(folded[i]):
			l.emit(d.Name, CodeUnsat, Error, "",
				"shape is unsatisfiable: no node on any graph can conform, and its fragments are always empty")
		case isTrue(folded[i]):
			l.emit(d.Name, CodeTrivial, Warning, "",
				"shape is trivially satisfied and constrains nothing")
		}
	}

	// Syntactic walks: expensive paths and undefined references.
	for _, d := range defs {
		l.walkCost(d.Name, shape.NNF(d.Shape), false)
		l.checkRefs(d.Name, d.Shape, d.Target)
	}

	// Dead definitions: unreachable from any satisfiable target.
	l.deadShapes(defs, folded)

	Sort(l.diags)
	return l.diags
}

// Sort orders diagnostics deterministically by (shape IRI, code,
// position), with the detail string standing in for the position inside
// the shape and the message as the final tiebreaker. The order depends
// only on the findings themselves — never on definition declaration
// order or map iteration — so lint output is stable across runs and
// across analyses that merge findings from several passes.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if c := rdf.Compare(a.Shape, b.Shape); c != 0 {
			return c < 0
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return a.Message < b.Message
	})
}

// Errors returns the error-severity findings.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Count returns how many findings have the given severity.
func Count(diags []Diagnostic, sev Severity) int {
	n := 0
	for _, d := range diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

type linter struct {
	h      *schema.Schema
	f      *folder
	defIdx map[rdf.Term]int
	diags  []Diagnostic

	// seen dedupes findings that several syntactic positions would repeat
	// verbatim (e.g. the same star path in two constraints).
	seen map[string]bool
}

func (l *linter) emit(name rdf.Term, code string, sev Severity, detail, message string) {
	if l.seen == nil {
		l.seen = make(map[string]bool)
	}
	k := name.String() + "\x00" + code + "\x00" + detail + "\x00" + message
	if l.seen[k] {
		return
	}
	l.seen[k] = true
	l.diags = append(l.diags, Diagnostic{
		Code:     code,
		Severity: sev,
		Shape:    name,
		Detail:   detail,
		Message:  message,
	})
}

// walkCost flags unbounded paths in positions where provenance tracing
// must enumerate every path: ≤n and ∀ (the negative quantifiers after
// NNF), the pair constraints (eq, disj, order comparisons, uniqueLang),
// and any atom under a residual negation.
func (l *linter) walkCost(name rdf.Term, phi shape.Shape, negated bool) {
	warn := func(e paths.Expr, construct string) {
		if e != nil && hasStar(e) {
			l.emit(name, CodeExpensivePath, Warning, e.String(),
				fmt.Sprintf("unbounded path in %s forces full product-automaton tracing of every matching walk", construct))
		}
	}
	switch x := phi.(type) {
	case *shape.Not:
		l.walkCost(name, x.X, true)
	case *shape.And:
		for _, c := range x.Xs {
			l.walkCost(name, c, negated)
		}
	case *shape.Or:
		for _, c := range x.Xs {
			l.walkCost(name, c, negated)
		}
	case *shape.MinCount:
		if negated {
			warn(x.Path, "a negated ≥n constraint")
		}
		l.walkCost(name, x.X, negated)
	case *shape.MaxCount:
		warn(x.Path, "a ≤n constraint")
		l.walkCost(name, x.X, negated)
	case *shape.Forall:
		warn(x.Path, "a ∀ constraint")
		l.walkCost(name, x.X, negated)
	case *shape.Eq:
		warn(x.Path, "an eq constraint")
	case *shape.Disj:
		warn(x.Path, "a disj constraint")
	case *shape.LessThan:
		warn(x.Path, "a lessThan constraint")
	case *shape.LessThanEq:
		warn(x.Path, "a lessThanEq constraint")
	case *shape.MoreThan:
		warn(x.Path, "a moreThan constraint")
	case *shape.MoreThanEq:
		warn(x.Path, "a moreThanEq constraint")
	case *shape.UniqueLang:
		warn(x.Path, "a uniqueLang constraint")
	}
}

func hasStar(e paths.Expr) bool {
	switch x := e.(type) {
	case paths.Star:
		return true
	case paths.Inverse:
		return hasStar(x.X)
	case paths.Seq:
		return hasStar(x.Left) || hasStar(x.Right)
	case paths.Alt:
		return hasStar(x.Left) || hasStar(x.Right)
	case paths.ZeroOrOne:
		return hasStar(x.X)
	}
	return false
}

// checkRefs reports hasShape references to names the schema does not
// define, in the shape or the target.
func (l *linter) checkRefs(name rdf.Term, body, target shape.Shape) {
	for _, sh := range []shape.Shape{body, target} {
		if sh == nil {
			continue
		}
		for _, ref := range shape.ShapeRefs(sh) {
			if _, ok := l.h.Def(ref); !ok {
				l.emit(name, CodeUndefinedRef, Warning, "hasShape("+ref.String()+")",
					"reference to undefined shape "+ref.String()+" is silently treated as ⊤")
			}
		}
	}
}

// deadShapes flags definitions unreachable from any definition with a
// satisfiable target: they never select a focus node themselves and no
// validated shape depends on them.
func (l *linter) deadShapes(defs []schema.Definition, folded []shape.Shape) {
	reachable := make([]bool, len(defs))
	var queue []int
	for i, d := range defs {
		if d.Target == nil {
			continue
		}
		if !isFalse(l.f.probe(shape.NNF(d.Target))) {
			reachable[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		refs := shape.ShapeRefs(defs[i].Shape)
		refs = append(refs, shape.ShapeRefs(defs[i].Target)...)
		for _, ref := range refs {
			if j, ok := l.defIdx[ref]; ok && !reachable[j] {
				reachable[j] = true
				queue = append(queue, j)
			}
		}
	}
	for i, d := range defs {
		if !reachable[i] {
			l.emit(d.Name, CodeDead, Warning, "",
				"dead shape: no satisfiable target and no targeted definition references it")
		}
	}
}
